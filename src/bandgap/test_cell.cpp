#include "icvbe/bandgap/test_cell.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "icvbe/common/constants.hpp"
#include "icvbe/common/error.hpp"
#include "icvbe/physics/vbe_model.hpp"
#include "icvbe/spice/dc_solver.hpp"

namespace icvbe::bandgap {

namespace {
constexpr double kMinTrim = 1e-6;  // ohm; "zero" trim without a topology change
}

TestCellHandles build_test_cell(spice::Circuit& circuit,
                                const TestCellParams& params) {
  ICVBE_REQUIRE(params.area_ratio > 1.0,
                "build_test_cell: area ratio must exceed 1 (paper: p != 1)");
  ICVBE_REQUIRE(params.qa_model.type == spice::BjtModel::Type::kPnp &&
                    params.qb_model.type == spice::BjtModel::Type::kPnp,
                "build_test_cell: the paper's cell uses PNP devices");

  TestCellHandles h;
  h.vref = circuit.node("vref");
  h.a = circuit.node("a");
  h.btop = circuit.node("btop");
  h.be = circuit.node("be");
  h.qac = circuit.node("qac");
  h.qbc = circuit.node("qbc");
  const spice::NodeId qac = h.qac;
  const spice::NodeId qbc = h.qbc;

  circuit.add_resistor("RX1", h.vref, h.a, params.rx1, params.resistor_tc1,
                       params.resistor_tc2);
  circuit.add_resistor("RX2", h.vref, h.btop, params.rx2, params.resistor_tc1,
                       params.resistor_tc2);
  circuit.add_resistor("RB", h.btop, h.be, params.rb, params.resistor_tc1,
                       params.resistor_tc2);

  // Emitter-up PNPs with grounded collectors, bases returned to ground
  // through the trim legs. With the trims at zero this is the
  // diode-connected, VCB = 0 "limit of the saturation" bias; a k-ohm trim
  // carries only the base current, so it injects the millivolt-scale,
  // temperature-growing correction the paper dials in with RadjA (the full
  // branch current through a trim would swing VREF by hundreds of mV).
  circuit.add_bjt(h.qa, spice::kGround, qac, h.a, params.qa_model, 1.0,
                  spice::kGround);
  circuit.add_bjt(h.qb, spice::kGround, qbc, h.be, params.qb_model,
                  params.area_ratio, spice::kGround);
  circuit.add_resistor(h.radjb, qac, spice::kGround,
                       std::max(params.radjb, kMinTrim));
  circuit.add_resistor(h.radja, qbc, spice::kGround,
                       std::max(params.radja, kMinTrim));

  // Negative feedback: branch B has the larger small-signal divide ratio, so
  // btop drives the inverting input.
  circuit.add_opamp("U1", h.vref, h.a, h.btop, params.opamp_gain,
                    params.opamp_offset);
  return h;
}

spice::Unknowns cell_initial_guess(spice::Circuit& circuit,
                                   const TestCellHandles& handles,
                                   double t_die_kelvin) {
  // The cell -- like every real bandgap -- has a degenerate all-off DC
  // solution, and plain Newton can slide into its basin (where the matrix
  // finally goes singular). A real chip carries a startup circuit; the
  // simulation equivalent is a warm start built from the cell's own ideal
  // equations at this temperature, which lands within millivolts of the
  // operating point for any temperature in the military range.
  const int n = circuit.assign_unknowns();
  const auto& qa_dev = circuit.get<spice::Bjt>(handles.qa);
  const auto& qb_dev = circuit.get<spice::Bjt>(handles.qb);
  const auto& rb = circuit.get<spice::Resistor>("RB");
  const auto& rx1 = circuit.get<spice::Resistor>("RX1");
  const double vt = thermal_voltage(t_die_kelvin);
  const double ratio = qb_dev.area() / qa_dev.area();
  const double i_ptat = vt * std::log(ratio) / rb.resistance();
  const double vbe_a =
      vt * std::log(std::max(i_ptat / qa_dev.is_at_temperature(), 10.0));

  spice::Unknowns guess(static_cast<std::size_t>(n));
  auto set_node = [&](spice::NodeId node, double v) {
    if (node != spice::kGround) {
      guess.raw()[static_cast<std::size_t>(node - 1)] = v;
    }
  };
  set_node(handles.a, vbe_a);
  set_node(handles.btop, vbe_a);
  set_node(handles.be, vbe_a - vt * std::log(ratio));
  set_node(handles.vref, vbe_a + i_ptat * rx1.resistance());
  return guess;
}

namespace {

CellObservation observe_cell(const spice::Circuit& circuit,
                             const TestCellHandles& handles,
                             const spice::Unknowns& x, double t_die_kelvin) {
  CellObservation obs;
  obs.t_die = t_die_kelvin;
  obs.vref = x.node_voltage(handles.vref);
  obs.vbe_qa = x.node_voltage(handles.a);
  obs.vbe_qb = x.node_voltage(handles.be);
  obs.delta_vbe = obs.vbe_qa - obs.vbe_qb;
  const auto& qa = circuit.get<spice::Bjt>(handles.qa);
  const auto& qb = circuit.get<spice::Bjt>(handles.qb);
  obs.ic_qa = std::abs(qa.currents(x).ic);
  obs.ic_qb = std::abs(qb.currents(x).ic);
  obs.power = circuit.total_power(x);
  return obs;
}

}  // namespace

CellObservation solve_cell_at(spice::Circuit& circuit,
                              const TestCellHandles& handles,
                              double t_die_kelvin) {
  spice::SimSession session(circuit);
  return solve_cell_at(session, handles, t_die_kelvin);
}

CellObservation solve_cell_at(spice::SimSession& session,
                              const TestCellHandles& handles,
                              double t_die_kelvin) {
  spice::Circuit& circuit = session.circuit();
  circuit.set_temperature(t_die_kelvin);
  const spice::Unknowns& x = session.solve_warm_or(
      [&] { return cell_initial_guess(circuit, handles, t_die_kelvin); });
  return observe_cell(circuit, handles, x, t_die_kelvin);
}

double ideal_vref(const TestCellParams& params, double t_kelvin,
                  double vbe_t0, double t0, double eg, double xti) {
  physics::VbeModelParams p;
  p.eg = eg;
  p.xti = xti;
  p.t0 = t0;
  p.vbe_t0 = vbe_t0;
  const double vbe = physics::vbe_of_t(p, t_kelvin);
  const double dvbe =
      physics::delta_vbe_ptat(t_kelvin, params.area_ratio);
  return vbe + (params.rx2 / params.rb) * dvbe;
}

TrimResult trim_radja(spice::Circuit& circuit, const TestCellHandles& handles,
                      const std::vector<double>& t_kelvin, double radja_max,
                      int steps) {
  spice::SimSession session(circuit);
  return trim_radja(session, handles, t_kelvin, radja_max, steps);
}

TrimResult trim_radja(spice::SimSession& session,
                      const TestCellHandles& handles,
                      const std::vector<double>& t_kelvin, double radja_max,
                      int steps) {
  ICVBE_REQUIRE(steps >= 2, "trim_radja: need >= 2 steps");
  ICVBE_REQUIRE(!t_kelvin.empty(), "trim_radja: empty temperature grid");
  auto& radja = session.circuit().get<spice::Resistor>(handles.radja);

  TrimResult best;
  best.vref_spread = std::numeric_limits<double>::infinity();
  for (int s = 0; s < steps; ++s) {
    const double r = std::max(
        radja_max * static_cast<double>(s) / static_cast<double>(steps - 1),
        kMinTrim);
    radja.set_nominal_resistance(r);
    double vmin = std::numeric_limits<double>::infinity();
    double vmax = -vmin;
    double sum = 0.0;
    for (double t : t_kelvin) {
      const CellObservation obs = solve_cell_at(session, handles, t);
      vmin = std::min(vmin, obs.vref);
      vmax = std::max(vmax, obs.vref);
      sum += obs.vref;
    }
    const double spread = vmax - vmin;
    if (spread < best.vref_spread) {
      best.vref_spread = spread;
      best.radja = r;
      best.vref_mean = sum / static_cast<double>(t_kelvin.size());
    }
  }
  radja.set_nominal_resistance(std::max(best.radja, kMinTrim));
  return best;
}

}  // namespace icvbe::bandgap
