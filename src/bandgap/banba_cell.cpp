#include "icvbe/bandgap/banba_cell.hpp"

#include <algorithm>
#include <cmath>

#include "icvbe/common/constants.hpp"
#include "icvbe/common/error.hpp"
#include "icvbe/physics/vbe_model.hpp"
#include "icvbe/spice/dc_solver.hpp"

namespace icvbe::bandgap {

spice::MosfetModel banba_default_pmos() {
  spice::MosfetModel m;
  m.type = spice::MosfetModel::Type::kPmos;
  m.vto = 0.45;   // low-VT flavour for ~1 V supplies
  m.kp = 25e-6;
  m.lambda = 0.04;
  m.tnom = 298.15;
  return m;
}

BanbaHandles build_banba_cell(spice::Circuit& c, const BanbaCellParams& p,
                              const std::string& prefix) {
  ICVBE_REQUIRE(p.vdd > 0.8, "build_banba_cell: VDD too low even for Banba");
  ICVBE_REQUIRE(p.area_ratio > 1.0,
                "build_banba_cell: area ratio must exceed 1");
  ICVBE_REQUIRE(p.qa_model.type == spice::BjtModel::Type::kPnp &&
                    p.qb_model.type == spice::BjtModel::Type::kPnp,
                "build_banba_cell: PNP devices required");

  BanbaHandles h;
  h.vdd = c.node(prefix + ".vdd");
  h.n1 = c.node(prefix + ".n1");
  h.n2 = c.node(prefix + ".n2");
  h.vref = c.node(prefix + ".vref");
  h.gate = c.node(prefix + ".gate");
  const spice::NodeId n2e = c.node(prefix + ".n2e");

  c.add_vsource(prefix + ".VDD", h.vdd, spice::kGround, p.vdd);

  // Matched PMOS mirror.
  c.add_mosfet(prefix + ".M1", h.n1, h.gate, h.vdd, p.pmos, p.mirror_wl);
  c.add_mosfet(prefix + ".M2", h.n2, h.gate, h.vdd, p.pmos, p.mirror_wl);
  c.add_mosfet(prefix + ".M3", h.vref, h.gate, h.vdd, p.pmos, p.mirror_wl);

  // Branch 1: R1 || Q1.
  c.add_resistor(prefix + ".R1A", h.n1, spice::kGround, p.r1,
                 p.resistor_tc1, p.resistor_tc2);
  c.add_bjt(prefix + ".Q1", spice::kGround, spice::kGround, h.n1, p.qa_model,
            1.0, spice::kGround);

  // Branch 2: R1 || (R0 + Q2).
  c.add_resistor(prefix + ".R1B", h.n2, spice::kGround, p.r1,
                 p.resistor_tc1, p.resistor_tc2);
  c.add_resistor(prefix + ".R0", h.n2, n2e, p.r0, p.resistor_tc1,
                 p.resistor_tc2);
  c.add_bjt(prefix + ".Q2", spice::kGround, spice::kGround, n2e, p.qb_model,
            p.area_ratio, spice::kGround);

  // Output branch.
  c.add_resistor(prefix + ".R2", h.vref, spice::kGround, p.r2,
                 p.resistor_tc1, p.resistor_tc2);

  // Feedback: branch 2 is the stiffer load, so its head drives the
  // non-inverting input (raising V(n2) must raise the gate and throttle
  // the mirror).
  c.add_opamp(prefix + ".U1", h.gate, h.n2, h.n1, p.opamp_gain,
              p.opamp_offset);
  return h;
}

spice::Unknowns banba_initial_guess(spice::Circuit& c, const BanbaHandles& h,
                                    const BanbaCellParams& p,
                                    double t_die_kelvin) {
  // Analytic warm start (same philosophy as the classic cell): estimate
  // VBE from Q1's IS(T) at the expected branch current, then place every
  // node of the live solution.
  auto& q1 = c.get<spice::Bjt>("bgb.Q1");
  const double vt = thermal_voltage(t_die_kelvin);
  const double dvbe = vt * std::log(p.area_ratio);
  double vbe_est = 0.62;
  for (int pass = 0; pass < 4; ++pass) {
    const double i_est = vbe_est / p.r1 + dvbe / p.r0;
    const double junction =
        std::max(i_est - vbe_est / p.r1, 1e-9);  // current into Q1
    vbe_est = vt * std::log(std::max(
                       junction / q1.is_at_temperature(), 10.0));
  }
  const double i_est = vbe_est / p.r1 + dvbe / p.r0;

  const int n = c.assign_unknowns();
  spice::Unknowns guess(static_cast<std::size_t>(n));
  auto set = [&](spice::NodeId node, double v) {
    if (node != spice::kGround) guess.raw()[node - 1] = v;
  };
  set(h.vdd, p.vdd);
  set(h.n1, vbe_est);
  set(h.n2, vbe_est);
  set(c.node("bgb.n2e"), vbe_est - dvbe);
  set(h.vref, std::min(p.r2 * i_est, p.vdd - 0.05));
  // Gate: source-gate drop for the mirror at the estimated current.
  const double vov =
      std::sqrt(std::max(2.0 * i_est / (25e-6 * 120.0), 1e-4));
  set(h.gate, p.vdd - 0.45 - vov);
  return guess;
}

namespace {

BanbaObservation observe_banba(const spice::Circuit& c, const BanbaHandles& h,
                               const spice::Unknowns& x,
                               double t_die_kelvin) {
  BanbaObservation obs;
  obs.t_die = t_die_kelvin;
  obs.vref = x.node_voltage(h.vref);
  obs.v_branch = x.node_voltage(h.n1);
  obs.i_mirror = obs.vref / c.get<spice::Resistor>("bgb.R2").resistance();
  return obs;
}

}  // namespace

BanbaObservation solve_banba_at(spice::Circuit& c, const BanbaHandles& h,
                                const BanbaCellParams& p,
                                double t_die_kelvin) {
  spice::NewtonOptions opt;
  opt.max_iterations = 400;
  spice::SimSession session(c, opt);
  return solve_banba_at(session, h, p, t_die_kelvin);
}

BanbaObservation solve_banba_at(spice::SimSession& session,
                                const BanbaHandles& h,
                                const BanbaCellParams& p,
                                double t_die_kelvin) {
  spice::Circuit& c = session.circuit();
  c.set_temperature(t_die_kelvin);
  const spice::Unknowns& x = session.solve_warm_or(
      [&] { return banba_initial_guess(c, h, p, t_die_kelvin); });
  return observe_banba(c, h, x, t_die_kelvin);
}

double banba_ideal_vref(const BanbaCellParams& p, double vbe,
                        double t_kelvin) {
  const double dvbe = physics::delta_vbe_ptat(t_kelvin, p.area_ratio);
  return (p.r2 / p.r1) * (vbe + (p.r1 / p.r0) * dvbe);
}

}  // namespace icvbe::bandgap
