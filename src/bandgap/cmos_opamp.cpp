#include "icvbe/bandgap/cmos_opamp.hpp"

#include <cmath>

#include "icvbe/common/error.hpp"
#include "icvbe/spice/dc_solver.hpp"

namespace icvbe::bandgap {

spice::MosfetModel default_nmos() {
  spice::MosfetModel m;
  m.type = spice::MosfetModel::Type::kNmos;
  m.vto = 0.75;
  m.kp = 55e-6;
  m.lambda = 0.03;
  m.tnom = 298.15;
  return m;
}

spice::MosfetModel default_pmos() {
  spice::MosfetModel m;
  m.type = spice::MosfetModel::Type::kPmos;
  m.vto = 0.80;
  m.kp = 20e-6;
  m.lambda = 0.05;
  m.tnom = 298.15;
  return m;
}

std::string build_cmos_opamp(spice::Circuit& c, const std::string& prefix,
                             spice::NodeId out, spice::NodeId inp,
                             spice::NodeId inn, const CmosOpAmpParams& p) {
  ICVBE_REQUIRE(p.vdd > 1.0, "build_cmos_opamp: VDD too low");
  ICVBE_REQUIRE(p.bias_current > 0.0,
                "build_cmos_opamp: bias current must be > 0");

  const spice::NodeId vdd = c.node(prefix + ".vdd");
  const spice::NodeId tail = c.node(prefix + ".tail");
  const spice::NodeId d1 = c.node(prefix + ".d1");   // mirror input side
  const spice::NodeId d2 = c.node(prefix + ".d2");   // first-stage output
  const spice::NodeId bias = c.node(prefix + ".bias");

  const std::string supply = prefix + ".VDD";
  c.add_vsource(supply, vdd, spice::kGround, p.vdd);

  // Tail and second-stage load bias: a PMOS mirror programmed by a
  // resistor-set reference current.
  spice::MosfetModel pm = p.pmos;
  spice::MosfetModel nm = p.nmos;

  // Bias leg: M8 diode-connected PMOS + R sets ~bias_current.
  c.add_mosfet(prefix + ".M8", bias, bias, vdd, pm, 20.0);
  // Resistor sized for the requested current with ~1 V overdrive headroom.
  const double r_bias =
      std::max((p.vdd - pm.vto - 0.45) / p.bias_current, 1.0e3);
  c.add_resistor(prefix + ".RB", bias, spice::kGround, r_bias);

  // M5: tail source (mirrors the bias leg).
  c.add_mosfet(prefix + ".M5", tail, bias, vdd, pm, 20.0);

  // Input pair (PMOS). The mirror diode sits on M1's drain and the second
  // stage inverts, so M1's gate is the *inverting* input and M2's gate the
  // non-inverting one. A threshold skew on M1 models the input offset.
  spice::MosfetModel pm_skew = pm;
  pm_skew.vto += p.vth_mismatch;
  c.add_mosfet(prefix + ".M1", d1, inn, tail, pm_skew, p.wl_pair);
  c.add_mosfet(prefix + ".M2", d2, inp, tail, pm, p.wl_pair);

  // NMOS mirror load.
  c.add_mosfet(prefix + ".M3", d1, d1, spice::kGround, nm, p.wl_mirror);
  c.add_mosfet(prefix + ".M4", d2, d1, spice::kGround, nm, p.wl_mirror);

  // Second stage: NMOS common source driven by d2, PMOS mirror load.
  c.add_mosfet(prefix + ".M6", out, d2, spice::kGround, nm, p.wl_cs);
  c.add_mosfet(prefix + ".M7", out, bias, vdd, pm, 40.0);

  return supply;
}

double measure_open_loop_gain(const CmosOpAmpParams& params) {
  // Bias the amplifier as a unity follower to find its operating input
  // level, then break the loop with a VCVS-buffered copy... DC-only
  // shortcut: drive inn with a source, close out->inn through a unity
  // VCVS, and finite-difference the +input around that point.
  auto solve_out = [&](double v_inp, double v_inn) {
    spice::Circuit c;
    const spice::NodeId out = c.node("out");
    const spice::NodeId inp = c.node("inp");
    const spice::NodeId inn = c.node("inn");
    c.add_vsource("VP", inp, spice::kGround, v_inp);
    c.add_vsource("VN", inn, spice::kGround, v_inn);
    build_cmos_opamp(c, "oa", out, inp, inn, params);
    spice::NewtonOptions opt;
    opt.max_iterations = 400;
    const spice::Unknowns x = spice::solve_dc_or_throw(c, opt);
    return x.node_voltage(out);
  };
  // Find the input level (common mode ~ vdd/2 region) where the output
  // crosses vdd/2, by bisection on the differential input.
  const double vcm = params.vdd * 0.5;
  double lo = -5e-3, hi = 5e-3;
  const double target = params.vdd * 0.5;
  double f_lo = solve_out(vcm + lo, vcm) - target;
  for (int i = 0; i < 60; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double f_mid = solve_out(vcm + mid, vcm) - target;
    if ((f_mid > 0.0) == (f_lo > 0.0)) {
      lo = mid;
      f_lo = f_mid;
    } else {
      hi = mid;
    }
  }
  const double v0 = 0.5 * (lo + hi);
  const double h = 20e-6;
  const double up = solve_out(vcm + v0 + h, vcm);
  const double dn = solve_out(vcm + v0 - h, vcm);
  return (up - dn) / (2.0 * h);
}

}  // namespace icvbe::bandgap
