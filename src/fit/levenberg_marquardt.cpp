#include "icvbe/fit/levenberg_marquardt.hpp"

#include <algorithm>
#include <cmath>

#include "icvbe/common/error.hpp"
#include "icvbe/linalg/solve.hpp"

namespace icvbe::fit {

namespace {

void numeric_jacobian(const ResidualFn& residuals, const linalg::Vector& p,
                      const linalg::Vector& r0, double fd_step,
                      linalg::Matrix& jac) {
  const std::size_t m = r0.size();
  const std::size_t n = p.size();
  linalg::Vector pp = p;
  linalg::Vector r1(m);
  for (std::size_t j = 0; j < n; ++j) {
    const double h = fd_step * std::max(std::abs(p[j]), 1.0);
    pp[j] = p[j] + h;
    residuals(pp, r1);
    pp[j] = p[j];
    for (std::size_t i = 0; i < m; ++i) jac(i, j) = (r1[i] - r0[i]) / h;
  }
}

double half_sq_norm(const linalg::Vector& r) {
  double acc = 0.0;
  for (double v : r) acc += v * v;
  return 0.5 * acc;
}

}  // namespace

LmResult levenberg_marquardt(const ResidualFn& residuals,
                             std::size_t residual_count, linalg::Vector p0,
                             const LmOptions& options,
                             const JacobianFn& jacobian) {
  const std::size_t n = p0.size();
  const std::size_t m = residual_count;
  ICVBE_REQUIRE(n > 0, "LM: no parameters");
  ICVBE_REQUIRE(m >= n, "LM: fewer residuals than parameters");

  LmResult out;
  out.parameters = std::move(p0);

  linalg::Vector r(m);
  residuals(out.parameters, r);
  double cost = half_sq_norm(r);

  linalg::Matrix jac(m, n);
  double lambda = options.initial_lambda;

  for (out.iterations = 0; out.iterations < options.max_iterations;
       ++out.iterations) {
    if (jacobian) {
      jacobian(out.parameters, jac);
    } else {
      numeric_jacobian(residuals, out.parameters, r, options.fd_step, jac);
    }

    // Normal equations pieces: g = J^T r, H = J^T J.
    linalg::Vector g(n, 0.0);
    linalg::Matrix h(n, n, 0.0);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t a = 0; a < n; ++a) {
        g[a] += jac(i, a) * r[i];
        for (std::size_t b = a; b < n; ++b) h(a, b) += jac(i, a) * jac(i, b);
      }
    }
    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = 0; b < a; ++b) h(a, b) = h(b, a);
    }

    if (linalg::norm_inf(g) < options.gradient_tol) {
      out.converged = true;
      out.stop_reason = "gradient below tolerance";
      break;
    }

    bool stepped = false;
    while (lambda <= options.max_lambda) {
      // Marquardt scaling: damp with lambda * diag(H).
      linalg::Matrix hd = h;
      for (std::size_t a = 0; a < n; ++a) {
        hd(a, a) += lambda * std::max(h(a, a), 1e-30);
      }
      linalg::Vector step;
      try {
        linalg::Vector neg_g(n);
        for (std::size_t a = 0; a < n; ++a) neg_g[a] = -g[a];
        step = linalg::lu_solve(hd, neg_g);
      } catch (const NumericalError&) {
        lambda *= options.lambda_up;
        continue;
      }
      linalg::Vector p_try = linalg::axpy(out.parameters, 1.0, step);
      linalg::Vector r_try(m);
      residuals(p_try, r_try);
      const double cost_try = half_sq_norm(r_try);
      if (std::isfinite(cost_try) && cost_try < cost) {
        const double rel_step =
            linalg::norm2(step) /
            std::max(linalg::norm2(out.parameters), 1e-30);
        const double rel_improve = (cost - cost_try) / std::max(cost, 1e-300);
        out.parameters = std::move(p_try);
        r = std::move(r_try);
        cost = cost_try;
        lambda = std::max(lambda * options.lambda_down, 1e-15);
        stepped = true;
        if (rel_step < options.step_tol) {
          out.converged = true;
          out.stop_reason = "step below tolerance";
        } else if (rel_improve < options.cost_tol) {
          out.converged = true;
          out.stop_reason = "cost improvement below tolerance";
        }
        break;
      }
      lambda *= options.lambda_up;
    }
    if (!stepped) {
      out.converged = linalg::norm_inf(g) < 1e-6;
      out.stop_reason = out.converged ? "stalled at small gradient"
                                      : "lambda exceeded maximum";
      break;
    }
    if (out.converged) break;
  }
  if (out.stop_reason.empty()) {
    out.stop_reason = "max iterations reached";
  }
  out.cost = cost;

  // Covariance at the solution: sigma^2 (J^T J)^-1.
  if (jacobian) {
    jacobian(out.parameters, jac);
  } else {
    residuals(out.parameters, r);
    numeric_jacobian(residuals, out.parameters, r, options.fd_step, jac);
  }
  linalg::Matrix h(n, n, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = 0; b < n; ++b) h(a, b) += jac(i, a) * jac(i, b);
    }
  }
  const double dof = static_cast<double>(m > n ? m - n : 1);
  const double sigma2 = 2.0 * cost / dof;
  out.covariance.resize(n, n, 0.0);
  try {
    linalg::LuFactorization lu(h);
    linalg::Vector e(n, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      std::fill(e.begin(), e.end(), 0.0);
      e[j] = 1.0;
      linalg::Vector col = lu.solve(e);
      for (std::size_t i = 0; i < n; ++i) out.covariance(i, j) = sigma2 * col[i];
    }
  } catch (const NumericalError&) {
    // leave zero covariance; caller sees it as "unavailable"
  }
  return out;
}

}  // namespace icvbe::fit
