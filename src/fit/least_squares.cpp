#include "icvbe/fit/least_squares.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "icvbe/common/error.hpp"
#include "icvbe/linalg/solve.hpp"

namespace icvbe::fit {

double LinearFitResult::param_sigma(std::size_t i) const {
  return std::sqrt(std::max(covariance(i, i), 0.0));
}

namespace {

LinearFitResult finish_fit(const linalg::Matrix& a, const linalg::Vector& y,
                           linalg::Vector x) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  LinearFitResult out;
  out.parameters = std::move(x);
  out.residuals = linalg::subtract(y, a.multiply(out.parameters));
  out.rss = linalg::dot(out.residuals, out.residuals);
  const double dof = static_cast<double>(m > n ? m - n : 1);
  out.rmse = std::sqrt(out.rss / dof);

  double mean = 0.0;
  for (double v : y) mean += v;
  mean /= static_cast<double>(m);
  double tss = 0.0;
  for (double v : y) tss += (v - mean) * (v - mean);
  out.r_squared = (tss > 0.0) ? 1.0 - out.rss / tss : 1.0;

  // Covariance sigma^2 (A^T A)^-1 via LU on the normal matrix (n is tiny).
  linalg::Matrix ata = a.transposed().multiply(a);
  const double sigma2 = out.rss / dof;
  try {
    linalg::LuFactorization lu(ata);
    out.covariance.resize(n, n);
    linalg::Vector e(n, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      std::fill(e.begin(), e.end(), 0.0);
      e[j] = 1.0;
      linalg::Vector col = lu.solve(e);
      for (std::size_t i = 0; i < n; ++i) out.covariance(i, j) = sigma2 * col[i];
    }
    out.condition_number = lu.condition_estimate();
  } catch (const NumericalError&) {
    // Nearly singular normal matrix: report infinite conditioning; the
    // covariance stays zero-sized which param_sigma callers must expect.
    out.condition_number = std::numeric_limits<double>::infinity();
    out.covariance.resize(n, n, 0.0);
  }

  out.correlation.resize(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double d = std::sqrt(std::max(out.covariance(i, i), 0.0) *
                                 std::max(out.covariance(j, j), 0.0));
      out.correlation(i, j) = (d > 0.0) ? out.covariance(i, j) / d
                                        : (i == j ? 1.0 : 0.0);
    }
  }
  return out;
}

}  // namespace

LinearFitResult linear_least_squares(const linalg::Matrix& a,
                                     const linalg::Vector& y) {
  ICVBE_REQUIRE(a.rows() == y.size(),
                "linear_least_squares: row/observation mismatch");
  ICVBE_REQUIRE(a.rows() >= a.cols(),
                "linear_least_squares: underdetermined system");
  linalg::QrFactorization qr(a);
  return finish_fit(a, y, qr.solve_least_squares(y));
}

LinearFitResult weighted_linear_least_squares(const linalg::Matrix& a,
                                              const linalg::Vector& y,
                                              const linalg::Vector& weights) {
  ICVBE_REQUIRE(a.rows() == y.size() && y.size() == weights.size(),
                "weighted_linear_least_squares: size mismatch");
  linalg::Matrix aw(a.rows(), a.cols());
  linalg::Vector yw(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) {
    ICVBE_REQUIRE(weights[i] > 0.0, "weights must be positive");
    const double s = std::sqrt(weights[i]);
    for (std::size_t j = 0; j < a.cols(); ++j) aw(i, j) = s * a(i, j);
    yw[i] = s * y[i];
  }
  linalg::QrFactorization qr(aw);
  return finish_fit(aw, yw, qr.solve_least_squares(yw));
}

linalg::Matrix design_matrix(
    const std::vector<double>& x,
    const std::vector<std::function<double(double)>>& basis) {
  ICVBE_REQUIRE(!basis.empty(), "design_matrix: no basis functions");
  linalg::Matrix a(x.size(), basis.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    for (std::size_t j = 0; j < basis.size(); ++j) a(i, j) = basis[j](x[i]);
  }
  return a;
}

LinearFitResult polynomial_fit(const std::vector<double>& x,
                               const std::vector<double>& y, int degree) {
  ICVBE_REQUIRE(degree >= 0, "polynomial_fit: negative degree");
  ICVBE_REQUIRE(x.size() == y.size(), "polynomial_fit: size mismatch");
  linalg::Matrix a(x.size(), static_cast<std::size_t>(degree) + 1);
  for (std::size_t i = 0; i < x.size(); ++i) {
    double p = 1.0;
    for (int j = 0; j <= degree; ++j) {
      a(i, static_cast<std::size_t>(j)) = p;
      p *= x[i];
    }
  }
  return linear_least_squares(a, y);
}

double polyval(const linalg::Vector& coeffs, double x) {
  double acc = 0.0;
  for (std::size_t i = coeffs.size(); i-- > 0;) acc = acc * x + coeffs[i];
  return acc;
}

LineFit fit_line(const std::vector<double>& x, const std::vector<double>& y) {
  LinearFitResult r = polynomial_fit(x, y, 1);
  LineFit out;
  out.intercept = r.parameters[0];
  out.slope = r.parameters[1];
  out.r_squared = r.r_squared;
  out.sigma_intercept = r.param_sigma(0);
  out.sigma_slope = r.param_sigma(1);
  return out;
}

}  // namespace icvbe::fit
