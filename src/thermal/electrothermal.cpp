#include "icvbe/thermal/electrothermal.hpp"

#include <cmath>

#include "icvbe/common/error.hpp"

namespace icvbe::thermal {

ElectroThermalResult solve_electrothermal(spice::Circuit& circuit,
                                          const ChipThermal& chip,
                                          double t_ambient_kelvin,
                                          const ElectroThermalOptions& options) {
  ICVBE_REQUIRE(t_ambient_kelvin > 0.0,
                "solve_electrothermal: ambient must be > 0 K");
  ICVBE_REQUIRE(chip.rth_die >= 0.0 && chip.aux_power >= 0.0,
                "solve_electrothermal: thermal parameters must be >= 0");

  ElectroThermalResult out;
  out.die_temperature = t_ambient_kelvin;
  for (const auto& d : chip.devices) {
    out.device_temperature[d.device] = t_ambient_kelvin;
  }

  // One session for the whole fixed-point loop: the workspace is assembled
  // once and every electrical solve warm-starts from the previous pass.
  spice::SimSession session(circuit, options.newton);

  for (out.iterations = 1; out.iterations <= options.max_iterations;
       ++out.iterations) {
    // Electrical solve at the current temperature assignment.
    circuit.set_temperature(out.die_temperature);
    for (const auto& [name, temp] : out.device_temperature) {
      circuit.set_device_temperature(name, temp);
    }
    const spice::DcResult& dc = session.solve();
    if (!dc.converged) {
      out.converged = false;
      return out;
    }

    // Thermal update.
    out.total_power = circuit.total_power(dc.solution) + chip.aux_power;
    const double t_die_new =
        t_ambient_kelvin + chip.rth_die * out.total_power;
    double max_change = std::abs(t_die_new - out.die_temperature);
    out.die_temperature += options.damping * (t_die_new - out.die_temperature);

    for (const auto& d : chip.devices) {
      spice::Device* dev = circuit.find(d.device);
      if (dev == nullptr) {
        throw CircuitError(
            "solve_electrothermal: thermal spec names unknown device '" +
            d.device + "'");
      }
      const double p_dev = dev->power(dc.solution);
      const double t_new = t_die_new + d.rth_self * p_dev;
      double& t_cur = out.device_temperature[d.device];
      max_change = std::max(max_change, std::abs(t_new - t_cur));
      t_cur += options.damping * (t_new - t_cur);
    }

    out.solution = dc.solution;
    if (max_change < options.temp_tol) {
      out.converged = true;
      return out;
    }
  }
  out.converged = false;
  return out;
}

}  // namespace icvbe::thermal
