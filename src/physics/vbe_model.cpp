#include "icvbe/physics/vbe_model.hpp"

#include <cmath>
#include <limits>

#include "icvbe/common/error.hpp"

namespace icvbe::physics {

double vbe_of_t(const VbeModelParams& p, double t_kelvin, double ic_ratio) {
  ICVBE_REQUIRE(t_kelvin > 0.0 && p.t0 > 0.0, "vbe_of_t: T, T0 must be > 0");
  ICVBE_REQUIRE(ic_ratio > 0.0, "vbe_of_t: current ratio must be > 0");
  const double r = t_kelvin / p.t0;
  const double vt = thermal_voltage(t_kelvin);
  return p.eg * (1.0 - r) + r * p.vbe_t0 - p.xti * vt * std::log(r) +
         vt * std::log(ic_ratio);
}

double dvbe_dt(const VbeModelParams& p, double t_kelvin) {
  // Analytic derivative of vbe_of_t at constant current (ic_ratio == 1):
  // d/dT [ EG(1-T/T0) + (T/T0)VBE0 - XTI (kT/q) ln(T/T0) ]
  //   = -EG/T0 + VBE0/T0 - XTI (k/q)(ln(T/T0) + 1).
  ICVBE_REQUIRE(t_kelvin > 0.0, "dvbe_dt: T must be > 0");
  const double k_over_q = kBoltzmannEv;
  return (p.vbe_t0 - p.eg) / p.t0 -
         p.xti * k_over_q * (std::log(t_kelvin / p.t0) + 1.0);
}

double delta_vbe_ptat(double t_kelvin, double area_ratio) {
  ICVBE_REQUIRE(area_ratio > 0.0, "delta_vbe_ptat: area ratio must be > 0");
  return thermal_voltage(t_kelvin) * std::log(area_ratio);
}

double delta_vbe_general(double t_kelvin, double area_ratio, double ic_a,
                         double ic_b) {
  ICVBE_REQUIRE(ic_a > 0.0 && ic_b > 0.0,
                "delta_vbe_general: currents must be > 0");
  return thermal_voltage(t_kelvin) * std::log(area_ratio * ic_a / ic_b);
}

double early_correction(double var_volts, double vbe_t0, double vbe_t) {
  if (!std::isfinite(var_volts)) return 1.0;
  ICVBE_REQUIRE(var_volts > vbe_t0 && var_volts > vbe_t,
                "early_correction: VAR must exceed VBE");
  return (var_volts - vbe_t0) / (var_volts - vbe_t);
}

MeijerEquation meijer_equation(double t_a, double vbe_a, double t_b,
                               double vbe_b) {
  ICVBE_REQUIRE(t_a > 0.0 && t_b > 0.0, "meijer_equation: T must be > 0");
  ICVBE_REQUIRE(t_a != t_b, "meijer_equation: temperatures must differ");
  MeijerEquation eq;
  eq.lhs = t_b * vbe_a - t_a * vbe_b;
  eq.coeff_eg = t_b - t_a;
  eq.coeff_xti = kBoltzmannEv * t_a * t_b * std::log(t_b / t_a);
  return eq;
}

}  // namespace icvbe::physics
