#include "icvbe/physics/saturation_current.hpp"

#include <cmath>

#include "icvbe/common/constants.hpp"
#include "icvbe/common/error.hpp"

namespace icvbe::physics {

double spice_is(double is_t0, double eg_ev, double xti, double t_kelvin,
                double t0) {
  return is_t0 * std::exp(spice_log_is(0.0, eg_ev, xti, t_kelvin, t0));
}

double spice_log_is(double log_is_t0, double eg_ev, double xti,
                    double t_kelvin, double t0) {
  ICVBE_REQUIRE(t_kelvin > 0.0 && t0 > 0.0, "spice_is: T, T0 must be > 0");
  // ln IS(T) = ln IS(T0) + XTI ln(T/T0) + (EG/k)(1/T0 - 1/T), EG in eV,
  // k in eV/K  -- exactly eq. (1).
  return log_is_t0 + xti * std::log(t_kelvin / t0) +
         (eg_ev / kBoltzmannEv) * (1.0 / t0 - 1.0 / t_kelvin);
}

SpiceIsParams identify_spice_params(double eg0_ev, double delta_eg_bgn_ev,
                                    double en, double erho,
                                    double b_ev_per_k) {
  SpiceIsParams p;
  p.eg = eg0_ev - delta_eg_bgn_ev;              // eq. (12), first line
  p.xti = 4.0 - en - erho - b_ev_per_k / kBoltzmannEv;  // eq. (12), second
  return p;
}

GummelPoonIsModel::GummelPoonIsModel(LogEgModel eg_model,
                                     double delta_eg_bgn_ev,
                                     BaseTransport transport,
                                     double emitter_area_cm2)
    : eg_model_(std::move(eg_model)),
      delta_eg_bgn_ev_(delta_eg_bgn_ev),
      transport_(transport),
      area_cm2_(emitter_area_cm2) {
  ICVBE_REQUIRE(emitter_area_cm2 > 0.0,
                "GummelPoonIsModel: emitter area must be > 0");
  ICVBE_REQUIRE(delta_eg_bgn_ev >= 0.0,
                "GummelPoonIsModel: narrowing must be >= 0");
}

double GummelPoonIsModel::is(double t_kelvin) const {
  // eq. (2): IS = q Ae nie^2 Dnb / NG.
  const double nie2 = nie_squared(eg_model_, t_kelvin, delta_eg_bgn_ev_);
  return kElementaryCharge * area_cm2_ * nie2 * transport_.dnb(t_kelvin) /
         transport_.gummel_number(t_kelvin);
}

double GummelPoonIsModel::is_ratio_closed_form(double t_kelvin) const {
  // eq. (11): IS(T)/IS(T0) = (T/T0)^(4 - EN - Erho - b/k)
  //                          exp( -((EG(0)-dEGbgn)/k)(1/T - 1/T0) ).
  const double t0 = transport_.t0;
  const double xti =
      4.0 - transport_.en - transport_.erho - eg_model_.b() / kBoltzmannEv;
  const double eg_eff = eg_model_.eg0() - delta_eg_bgn_ev_;
  return std::pow(t_kelvin / t0, xti) *
         std::exp(-(eg_eff / kBoltzmannEv) * (1.0 / t_kelvin - 1.0 / t0));
}

SpiceIsParams GummelPoonIsModel::spice_params() const {
  return identify_spice_params(eg_model_.eg0(), delta_eg_bgn_ev_,
                               transport_.en, transport_.erho,
                               eg_model_.b());
}

double GummelPoonIsModel::relative_sensitivity(double t_kelvin) const {
  // d ln IS / dT = XTI / T + EG_eff / (k T^2)  (from eq. 11).
  const SpiceIsParams p = spice_params();
  return p.xti / t_kelvin + p.eg / (kBoltzmannEv * t_kelvin * t_kelvin);
}

}  // namespace icvbe::physics
