#include "icvbe/physics/carrier.hpp"

#include <cmath>

#include "icvbe/common/constants.hpp"
#include "icvbe/common/error.hpp"

namespace icvbe::physics {

double ni_squared(const EgModel& eg, double t_kelvin) {
  ICVBE_REQUIRE(t_kelvin > 0.0, "ni_squared: T must be > 0");
  const double t0 = 300.0;
  const double kt = kBoltzmannEv * t_kelvin;   // kT/q in eV
  const double kt0 = kBoltzmannEv * t0;
  // eq. (6) anchored at T0 = 300 K.
  const double exponent = -(eg.eg(t_kelvin) / kt - eg.eg(t0) / kt0);
  const double ratio3 = std::pow(t_kelvin / t0, 3.0);
  return kNi300 * kNi300 * ratio3 * std::exp(exponent);
}

double nie_squared(const EgModel& eg, double t_kelvin,
                   double delta_eg_bgn_ev) {
  ICVBE_REQUIRE(delta_eg_bgn_ev >= 0.0,
                "nie_squared: narrowing must be >= 0");
  const double kt = kBoltzmannEv * t_kelvin;
  // eq. (3): narrowing raises the effective intrinsic concentration.
  return ni_squared(eg, t_kelvin) * std::exp(delta_eg_bgn_ev / kt);
}

double slotboom_bandgap_narrowing(double na_cm3) {
  ICVBE_REQUIRE(na_cm3 > 0.0, "slotboom: doping must be > 0");
  constexpr double kV1 = 9.0e-3;   // eV
  constexpr double kN0 = 1.0e17;   // cm^-3
  if (na_cm3 <= kN0) return 0.0;
  const double l = std::log(na_cm3 / kN0);
  return kV1 * (l + std::sqrt(l * l + 0.5));
}

double BaseTransport::dnb(double t_kelvin) const {
  ICVBE_REQUIRE(t_kelvin > 0.0, "BaseTransport::dnb: T must be > 0");
  // eq. (4): D = (kT/q) mu, mu ~ T^-EN  =>  D ~ T^(1-EN).
  return dnb_t0 * std::pow(t_kelvin / t0, 1.0 - en);
}

double BaseTransport::gummel_number(double t_kelvin) const {
  ICVBE_REQUIRE(t_kelvin > 0.0,
                "BaseTransport::gummel_number: T must be > 0");
  // eq. (5): neutral-base impurity integral varies as T^Erho (bias-dependent
  // base-width modulation folded into the exponent).
  return gummel_t0 * std::pow(t_kelvin / t0, erho);
}

}  // namespace icvbe::physics
