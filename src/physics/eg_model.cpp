#include "icvbe/physics/eg_model.hpp"

#include <cmath>

#include "icvbe/common/error.hpp"

namespace icvbe::physics {

LinearEgModel::LinearEgModel(double eg_ref, double slope_a, double t_ref,
                             std::string name)
    : eg_ref_(eg_ref), a_(slope_a), t_ref_(t_ref), name_(std::move(name)) {
  ICVBE_REQUIRE(eg_ref > 0.0, "LinearEgModel: non-positive EG(ref)");
  ICVBE_REQUIRE(t_ref > 0.0, "LinearEgModel: non-positive reference T");
}

double LinearEgModel::eg(double t_kelvin) const {
  return eg_ref_ - a_ * (t_kelvin - t_ref_);
}

double LinearEgModel::deg_dt(double /*t_kelvin*/) const { return -a_; }

std::unique_ptr<EgModel> LinearEgModel::clone() const {
  return std::make_unique<LinearEgModel>(*this);
}

VarshniEgModel::VarshniEgModel(double eg0, double alpha, double beta,
                               std::string name)
    : eg0_(eg0), alpha_(alpha), beta_(beta), name_(std::move(name)) {
  ICVBE_REQUIRE(eg0 > 0.0, "VarshniEgModel: non-positive EG(0)");
  ICVBE_REQUIRE(beta > 0.0, "VarshniEgModel: non-positive beta");
}

double VarshniEgModel::eg(double t_kelvin) const {
  ICVBE_REQUIRE(t_kelvin >= 0.0, "VarshniEgModel: negative temperature");
  return eg0_ - alpha_ * t_kelvin * t_kelvin / (t_kelvin + beta_);
}

double VarshniEgModel::deg_dt(double t_kelvin) const {
  const double d = t_kelvin + beta_;
  return -alpha_ * t_kelvin * (t_kelvin + 2.0 * beta_) / (d * d);
}

std::unique_ptr<EgModel> VarshniEgModel::clone() const {
  return std::make_unique<VarshniEgModel>(*this);
}

LogEgModel::LogEgModel(double eg0, double a, double b, std::string name)
    : eg0_(eg0), a_(a), b_(b), name_(std::move(name)) {
  ICVBE_REQUIRE(eg0 > 0.0, "LogEgModel: non-positive EG(0)");
}

double LogEgModel::eg(double t_kelvin) const {
  ICVBE_REQUIRE(t_kelvin >= 0.0, "LogEgModel: negative temperature");
  if (t_kelvin == 0.0) return eg0_;  // T ln T -> 0 as T -> 0
  return eg0_ + a_ * t_kelvin + b_ * t_kelvin * std::log(t_kelvin);
}

double LogEgModel::deg_dt(double t_kelvin) const {
  ICVBE_REQUIRE(t_kelvin > 0.0, "LogEgModel::deg_dt: T must be > 0");
  return a_ + b_ * (std::log(t_kelvin) + 1.0);
}

std::unique_ptr<EgModel> LogEgModel::clone() const {
  return std::make_unique<LogEgModel>(*this);
}

PasslerEgModel::PasslerEgModel(double eg0, double alpha, double theta,
                               double p, std::string name)
    : eg0_(eg0), alpha_(alpha), theta_(theta), p_(p), name_(std::move(name)) {
  ICVBE_REQUIRE(eg0 > 0.0, "PasslerEgModel: non-positive EG(0)");
  ICVBE_REQUIRE(theta > 0.0, "PasslerEgModel: non-positive Theta");
  ICVBE_REQUIRE(p > 1.0, "PasslerEgModel: exponent p must exceed 1");
}

double PasslerEgModel::eg(double t_kelvin) const {
  ICVBE_REQUIRE(t_kelvin >= 0.0, "PasslerEgModel: negative temperature");
  const double x = 2.0 * t_kelvin / theta_;
  const double root = std::pow(1.0 + std::pow(x, p_), 1.0 / p_);
  return eg0_ - 0.5 * alpha_ * theta_ * (root - 1.0);
}

double PasslerEgModel::deg_dt(double t_kelvin) const {
  ICVBE_REQUIRE(t_kelvin > 0.0, "PasslerEgModel::deg_dt: T must be > 0");
  const double x = 2.0 * t_kelvin / theta_;
  const double xp = std::pow(x, p_);
  const double root = std::pow(1.0 + xp, 1.0 / p_ - 1.0);
  // d/dT [ (1 + x^p)^(1/p) ] = (1 + x^p)^(1/p - 1) x^(p-1) (2/Theta).
  return -0.5 * alpha_ * theta_ * root * std::pow(x, p_ - 1.0) *
         (2.0 / theta_);
}

std::unique_ptr<EgModel> PasslerEgModel::clone() const {
  return std::make_unique<PasslerEgModel>(*this);
}

PasslerEgModel make_passler_si() {
  return PasslerEgModel(1.1701, 3.23e-4, 446.0, 2.33, "EG Passler (2002)");
}

VarshniEgModel make_eg2() {
  return VarshniEgModel(1.1557, 7.021e-4, 1108.0, "EG2 Varshni [8]");
}

VarshniEgModel make_eg3() {
  return VarshniEgModel(1.170, 4.73e-4, 636.0, "EG3 Varshni [7]");
}

LogEgModel make_eg4() {
  return LogEgModel(1.1663, 6.141e-4, -1.307e-4, "EG4 log [6]");
}

LogEgModel make_eg5() {
  return LogEgModel(1.1774, 3.042e-4, -8.459e-5, "EG5 log [6]");
}

LinearEgModel make_eg1(double t_ref) {
  const LogEgModel eg5 = make_eg5();
  // Tangent to EG5 at t_ref: slope a = -dEG5/dT(t_ref) in the eq. (7) sign
  // convention EG(T) = EG(Tref) - a (T - Tref).
  return LinearEgModel(eg5.eg(t_ref), -eg5.deg_dt(t_ref), t_ref,
                       "EG1 linearised");
}

double eg0_extrapolated(double t_ref) {
  return make_eg5().tangent_intercept_at_zero(t_ref);
}

}  // namespace icvbe::physics
