#include "icvbe/extract/best_fit.hpp"

#include <algorithm>
#include <cmath>

#include "icvbe/common/constants.hpp"
#include "icvbe/common/error.hpp"
#include "icvbe/physics/vbe_model.hpp"

namespace icvbe::extract {

namespace {

/// Resolve VBE(T0): use the supplied value or interpolate from the data.
double resolve_vbe_t0(const std::vector<VbeSample>& data,
                      const BestFitOptions& opt) {
  if (opt.vbe_t0 != 0.0) return opt.vbe_t0;
  Series s("vbe");
  for (const auto& p : data) s.push_back(p.t_kelvin, p.vbe);
  return s.sorted_by_x().interpolate(opt.t0);
}

/// Basis functions of the linearised eq. (13).
double basis_eg(double t, double t0) { return 1.0 - t / t0; }
double basis_xti(double t, double t0) {
  return -kBoltzmannEv * t * std::log(t / t0);
}

void validate(const std::vector<VbeSample>& data) {
  ICVBE_REQUIRE(data.size() >= 3,
                "best_fit: need at least 3 VBE(T) samples");
  double tmin = data.front().t_kelvin, tmax = tmin;
  for (const auto& p : data) {
    ICVBE_REQUIRE(p.t_kelvin > 0.0, "best_fit: non-positive temperature");
    tmin = std::min(tmin, p.t_kelvin);
    tmax = std::max(tmax, p.t_kelvin);
  }
  ICVBE_REQUIRE(tmax - tmin > 1.0,
                "best_fit: temperature span must exceed 1 K");
}

}  // namespace

EgXtiResult best_fit_eg_xti(const std::vector<VbeSample>& data,
                            const BestFitOptions& options) {
  validate(data);
  const double t0 = options.t0;
  const double vbe_t0 = resolve_vbe_t0(data, options);

  linalg::Matrix a(data.size(), 2);
  linalg::Vector y(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    const double t = data[i].t_kelvin;
    a(i, 0) = basis_eg(t, t0);
    a(i, 1) = basis_xti(t, t0);
    double ref_term = (t / t0) * vbe_t0;
    if (options.var_volts > 0.0 && std::isfinite(options.var_volts)) {
      // Printed eq. (13): the VBE(T0) transfer term carries the reverse
      // Early correction (VAR - VBE(T0)) / (VAR - VBE(T)).
      ref_term *= physics::early_correction(options.var_volts, vbe_t0,
                                            data[i].vbe);
    }
    y[i] = data[i].vbe - ref_term;
  }

  const fit::LinearFitResult lsq = fit::linear_least_squares(a, y);
  EgXtiResult out;
  out.eg = lsq.parameters[0];
  out.xti = lsq.parameters[1];
  out.rmse = lsq.rmse;
  out.correlation = lsq.param_correlation(0, 1);
  out.condition = lsq.condition_number;
  out.sigma_eg = lsq.param_sigma(0);
  out.sigma_xti = lsq.param_sigma(1);
  return out;
}

double best_fit_eg_given_xti(const std::vector<VbeSample>& data, double xti,
                             const BestFitOptions& options) {
  validate(data);
  const double t0 = options.t0;
  const double vbe_t0 = resolve_vbe_t0(data, options);
  // 1-D least squares: EG = sum f1 (y - xti f2) / sum f1^2.
  double num = 0.0, den = 0.0;
  for (const auto& p : data) {
    const double f1 = basis_eg(p.t_kelvin, t0);
    const double f2 = basis_xti(p.t_kelvin, t0);
    const double y = p.vbe - (p.t_kelvin / t0) * vbe_t0;
    num += f1 * (y - xti * f2);
    den += f1 * f1;
  }
  ICVBE_REQUIRE(den > 0.0, "best_fit_eg_given_xti: degenerate basis");
  return num / den;
}

CharacteristicStraight characteristic_straight(
    const std::vector<VbeSample>& data, const std::vector<double>& xti_grid,
    const BestFitOptions& options) {
  ICVBE_REQUIRE(xti_grid.size() >= 2,
                "characteristic_straight: need >= 2 XTI values");
  CharacteristicStraight out;
  out.couples = Series("EG(XTI)");
  std::vector<double> xs, ys;
  for (double xti : xti_grid) {
    const double eg = best_fit_eg_given_xti(data, xti, options);
    out.couples.push_back(xti, eg);
    xs.push_back(xti);
    ys.push_back(eg);
  }
  const fit::LineFit line = fit::fit_line(xs, ys);
  out.slope = line.slope;
  out.intercept = line.intercept;
  out.r_squared = line.r_squared;
  return out;
}

double characteristic_slope_theory(double t_low, double t_high) {
  ICVBE_REQUIRE(t_low > 0.0 && t_high > t_low,
                "characteristic_slope_theory: need 0 < t_low < t_high");
  // From eq. (14): EG (T_b - T_a) + XTI (k T_a T_b / q) ln(T_b/T_a) = const
  // along the locus, so dEG/dXTI = -(k T_a T_b / q) ln(T_b/T_a)/(T_b - T_a).
  return -kBoltzmannEv * t_low * t_high * std::log(t_high / t_low) /
         (t_high - t_low);
}

double predict_vbe(const EgXtiResult& result, double t_kelvin, double t0,
                   double vbe_t0) {
  physics::VbeModelParams p;
  p.eg = result.eg;
  p.xti = result.xti;
  p.t0 = t0;
  p.vbe_t0 = vbe_t0;
  return physics::vbe_of_t(p, t_kelvin);
}

}  // namespace icvbe::extract
