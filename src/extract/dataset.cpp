#include "icvbe/extract/dataset.hpp"

#include <cmath>

#include "icvbe/common/error.hpp"

namespace icvbe::extract {

double vbe_at_current(const Series& icvbe_curve, double ic) {
  ICVBE_REQUIRE(ic > 0.0, "vbe_at_current: target current must be > 0");
  ICVBE_REQUIRE(icvbe_curve.size() >= 2,
                "vbe_at_current: need >= 2 points on the curve");
  // Build ln(IC) -> VBE and interpolate: linear in ln(IC) is exact for the
  // ideal diode law and an excellent local model otherwise. Samples at the
  // instrument noise floor repeat the same reading, so keep only strictly
  // increasing currents.
  Series inv("vbe(lnIc)");
  inv.reserve(icvbe_curve.size());
  const Series by_vbe = icvbe_curve.sorted_by_x();
  double last = 0.0;
  for (std::size_t i = 0; i < by_vbe.size(); ++i) {
    const double cur = by_vbe.y(i);
    ICVBE_REQUIRE(cur > 0.0, "vbe_at_current: non-positive current sample");
    if (cur <= last * (1.0 + 1e-12)) continue;
    inv.push_back(std::log(cur), by_vbe.x(i));
    last = cur;
  }
  ICVBE_REQUIRE(inv.size() >= 2,
                "vbe_at_current: too few usable samples above the floor");
  const Series sorted = inv;
  const double target = std::log(ic);
  ICVBE_REQUIRE(target >= sorted.min_x() && target <= sorted.max_x(),
                "vbe_at_current: current outside the measured range");
  return sorted.interpolate(target);
}

std::vector<VbeSample> vbe_vs_t_at_constant_ic(
    const std::vector<Series>& family, const std::vector<double>& t_kelvin,
    double ic) {
  ICVBE_REQUIRE(family.size() == t_kelvin.size(),
                "vbe_vs_t_at_constant_ic: family/temperature size mismatch");
  std::vector<VbeSample> out;
  out.reserve(family.size());
  for (std::size_t i = 0; i < family.size(); ++i) {
    VbeSample s;
    s.t_kelvin = t_kelvin[i];
    s.vbe = vbe_at_current(family[i], ic);
    out.push_back(s);
  }
  return out;
}

std::vector<VbeSample> samples_from_lab(
    const std::vector<lab::VbePoint>& points) {
  std::vector<VbeSample> out;
  out.reserve(points.size());
  for (const auto& p : points) out.push_back({p.t_sensor, p.vbe});
  return out;
}

std::vector<VbeSample> samples_from_lab_true_t(
    const std::vector<lab::VbePoint>& points) {
  std::vector<VbeSample> out;
  out.reserve(points.size());
  for (const auto& p : points) out.push_back({p.t_die_true, p.vbe});
  return out;
}

}  // namespace icvbe::extract
