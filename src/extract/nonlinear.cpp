#include "icvbe/extract/nonlinear.hpp"

#include <algorithm>
#include <cmath>

#include "icvbe/common/constants.hpp"
#include "icvbe/common/error.hpp"
#include "icvbe/fit/least_squares.hpp"
#include "icvbe/fit/levenberg_marquardt.hpp"
#include "icvbe/physics/vbe_model.hpp"

namespace icvbe::extract {

NonlinearFitResult nonlinear_fit_eg_xti(const std::vector<VbeSample>& data,
                                        const NonlinearFitOptions& options) {
  ICVBE_REQUIRE(data.size() >= 4,
                "nonlinear_fit_eg_xti: need >= 4 samples for 3 parameters");
  const double t0 = options.t0;
  ICVBE_REQUIRE(t0 > 0.0, "nonlinear_fit_eg_xti: t0 must be > 0");
  const bool use_var =
      options.var_volts > 0.0 && std::isfinite(options.var_volts);

  // Starting VBE(T0): interpolate from the data.
  Series s("vbe");
  for (const auto& p : data) s.push_back(p.t_kelvin, p.vbe);
  const double vbe0_start = s.sorted_by_x().interpolate(t0);

  fit::ResidualFn residuals = [&](const linalg::Vector& p,
                                  linalg::Vector& r) {
    const double eg = p[0];
    const double xti = p[1];
    const double vbe0 = p[2];
    for (std::size_t i = 0; i < data.size(); ++i) {
      const double t = data[i].t_kelvin;
      double ref_term = (t / t0) * vbe0;
      if (use_var) {
        ref_term *= physics::early_correction(options.var_volts, vbe0,
                                              data[i].vbe);
      }
      const double model = eg * (1.0 - t / t0) + ref_term -
                           xti * thermal_voltage(t) * std::log(t / t0);
      r[i] = model - data[i].vbe;
    }
  };

  fit::LmOptions lm;
  lm.max_iterations = 500;
  const fit::LmResult out = fit::levenberg_marquardt(
      residuals, data.size(),
      {options.eg_start, options.xti_start, vbe0_start}, lm);

  NonlinearFitResult res;
  res.eg = out.parameters[0];
  res.xti = out.parameters[1];
  res.vbe_t0 = out.parameters[2];
  res.rmse = std::sqrt(2.0 * out.cost /
                       static_cast<double>(data.size() > 3 ? data.size() - 3
                                                           : 1));
  res.converged = out.converged;
  res.iterations = out.iterations;
  return res;
}

EgXtiResult robust_fit_eg_xti(const std::vector<VbeSample>& data,
                              const BestFitOptions& options, double huber_k,
                              std::vector<bool>* outlier_mask) {
  ICVBE_REQUIRE(huber_k > 0.0, "robust_fit_eg_xti: huber_k must be > 0");
  ICVBE_REQUIRE(data.size() >= 4,
                "robust_fit_eg_xti: need >= 4 samples to detect outliers");

  // Start from the plain fit, then IRLS with Huber weights.
  EgXtiResult result = best_fit_eg_xti(data, options);
  std::vector<double> weights(data.size(), 1.0);

  const double t0 = options.t0;
  // Resolve VBE(T0) once, exactly as best_fit does.
  Series s("vbe");
  for (const auto& p : data) s.push_back(p.t_kelvin, p.vbe);
  const double vbe0 = options.vbe_t0 != 0.0
                          ? options.vbe_t0
                          : s.sorted_by_x().interpolate(t0);

  for (int iter = 0; iter < 30; ++iter) {
    // Residuals of the current couple.
    std::vector<double> res(data.size());
    std::vector<double> abs_res(data.size());
    for (std::size_t i = 0; i < data.size(); ++i) {
      const double t = data[i].t_kelvin;
      const double model = result.eg * (1.0 - t / t0) + (t / t0) * vbe0 -
                           result.xti * thermal_voltage(t) * std::log(t / t0);
      res[i] = data[i].vbe - model;
      abs_res[i] = std::abs(res[i]);
    }
    // Robust scale: 1.4826 * MAD.
    std::vector<double> sorted = abs_res;
    std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                     sorted.end());
    const double mad = sorted[sorted.size() / 2];
    const double scale = std::max(1.4826 * mad, 1e-9);

    bool changed = false;
    for (std::size_t i = 0; i < data.size(); ++i) {
      const double u = abs_res[i] / (huber_k * scale);
      const double w = (u <= 1.0) ? 1.0 : 1.0 / u;
      if (std::abs(w - weights[i]) > 1e-6) changed = true;
      weights[i] = w;
    }

    // Weighted linear fit with the frozen VBE(T0).
    linalg::Matrix a(data.size(), 2);
    linalg::Vector y(data.size());
    linalg::Vector w(data.size());
    for (std::size_t i = 0; i < data.size(); ++i) {
      const double t = data[i].t_kelvin;
      a(i, 0) = 1.0 - t / t0;
      a(i, 1) = -thermal_voltage(t) * std::log(t / t0);
      y[i] = data[i].vbe - (t / t0) * vbe0;
      w[i] = std::max(weights[i], 1e-6);
    }
    const fit::LinearFitResult lsq =
        fit::weighted_linear_least_squares(a, y, w);
    result.eg = lsq.parameters[0];
    result.xti = lsq.parameters[1];
    result.rmse = lsq.rmse;
    result.correlation = lsq.param_correlation(0, 1);
    result.condition = lsq.condition_number;
    result.sigma_eg = lsq.param_sigma(0);
    result.sigma_xti = lsq.param_sigma(1);
    if (!changed && iter > 0) break;
  }

  if (outlier_mask != nullptr) {
    outlier_mask->assign(data.size(), false);
    for (std::size_t i = 0; i < data.size(); ++i) {
      (*outlier_mask)[i] = weights[i] < 0.67;
    }
  }
  return result;
}

}  // namespace icvbe::extract
