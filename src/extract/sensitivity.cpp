#include "icvbe/extract/sensitivity.hpp"

#include <algorithm>
#include <cmath>

#include "icvbe/common/error.hpp"
#include "icvbe/common/rng.hpp"
#include "icvbe/extract/meijer.hpp"

namespace icvbe::extract {

VbeErrorPropagation propagate_vbe_error(const std::vector<VbeSample>& clean,
                                        double true_eg, double rel_error,
                                        int trials,
                                        const BestFitOptions& options,
                                        std::uint64_t seed) {
  ICVBE_REQUIRE(trials >= 1, "propagate_vbe_error: need >= 1 trial");
  ICVBE_REQUIRE(true_eg > 0.0, "propagate_vbe_error: true EG must be > 0");

  const EgXtiResult base = best_fit_eg_xti(clean, options);
  VbeErrorPropagation out;
  out.vbe_rel_error = rel_error;

  double eg_sq = 0.0, xti_sq = 0.0;
  Rng rng(seed);
  std::vector<VbeSample> noisy = clean;
  for (int t = 0; t < trials; ++t) {
    for (std::size_t i = 0; i < clean.size(); ++i) {
      noisy[i].vbe =
          clean[i].vbe + rng.gaussian(0.0, rel_error * std::abs(clean[i].vbe));
    }
    const EgXtiResult r = best_fit_eg_xti(noisy, options);
    const double eg_rel = std::abs(r.eg - base.eg) / true_eg;
    const double xti_abs = std::abs(r.xti - base.xti);
    eg_sq += eg_rel * eg_rel;
    xti_sq += xti_abs * xti_abs;
    out.eg_rel_max = std::max(out.eg_rel_max, eg_rel);
    out.xti_abs_max = std::max(out.xti_abs_max, xti_abs);
  }
  out.eg_rel_rms = std::sqrt(eg_sq / trials);
  out.xti_abs_rms = std::sqrt(xti_sq / trials);
  return out;
}

std::vector<T2Sensitivity> meijer_t2_sensitivity(
    double t1, double vbe1, double t2, double vbe2, double t3, double vbe3,
    const std::vector<double>& t2_deltas) {
  std::vector<T2Sensitivity> out;
  out.reserve(t2_deltas.size());
  for (double dt : t2_deltas) {
    // An error on the single measured temperature T2 rescales the computed
    // T1 and T3 proportionally (eq. 16 multiplies by T2), which is exactly
    // why the method tolerates it: the Meijer system is nearly invariant
    // under a common temperature scale.
    const double scale = (t2 + dt) / t2;
    T2Sensitivity s;
    s.delta_t2 = dt;
    const EgXtiResult r = meijer_extract(t1 * scale, vbe1, t2 + dt, vbe2,
                                         t3 * scale, vbe3);
    s.eg = r.eg;
    s.xti = r.xti;
    out.push_back(s);
  }
  return out;
}

double worst_case_eg_error(const std::vector<VbeSample>& clean, double true_eg,
                           double rel_error, const BestFitOptions& options) {
  ICVBE_REQUIRE(true_eg > 0.0, "worst_case_eg_error: true EG must be > 0");
  const EgXtiResult base = best_fit_eg_xti(clean, options);
  double worst = 0.0;
  std::vector<VbeSample> bumped = clean;
  for (std::size_t i = 0; i < clean.size(); ++i) {
    for (double sign : {-1.0, 1.0}) {
      bumped = clean;
      bumped[i].vbe = clean[i].vbe * (1.0 + sign * rel_error);
      const EgXtiResult r = best_fit_eg_xti(bumped, options);
      worst = std::max(worst, std::abs(r.eg - base.eg) / true_eg);
    }
  }
  return worst;
}

}  // namespace icvbe::extract
