#include "icvbe/extract/meijer.hpp"

#include <cmath>
#include <limits>

#include "icvbe/common/constants.hpp"
#include "icvbe/common/error.hpp"
#include "icvbe/linalg/solve.hpp"
#include "icvbe/physics/vbe_model.hpp"

namespace icvbe::extract {

double computed_temperature(double dvbe_t, double dvbe_ref,
                            double t_ref_kelvin) {
  ICVBE_REQUIRE(dvbe_ref > 0.0 && dvbe_t > 0.0,
                "computed_temperature: dVBE must be positive");
  ICVBE_REQUIRE(t_ref_kelvin > 0.0,
                "computed_temperature: reference T must be > 0");
  return t_ref_kelvin * dvbe_t / dvbe_ref;  // eq. (16)
}

double current_ratio_x(double ic_a_t, double ic_b_t, double ic_a_ref,
                       double ic_b_ref) {
  ICVBE_REQUIRE(ic_a_t > 0.0 && ic_b_t > 0.0 && ic_a_ref > 0.0 &&
                    ic_b_ref > 0.0,
                "current_ratio_x: currents must be positive");
  return (ic_a_t * ic_b_ref) / (ic_a_ref * ic_b_t);  // eq. (20)
}

double current_correction_coefficient(double t_ref_kelvin, double x_ratio) {
  ICVBE_REQUIRE(x_ratio > 0.0,
                "current_correction_coefficient: X must be positive");
  return thermal_voltage(t_ref_kelvin) * std::log(x_ratio);
}

double computed_temperature_corrected(double dvbe_t, double dvbe_ref,
                                      double t_ref_kelvin, double x_ratio) {
  // dVBE(T) = (kT/q) ln(p r(T));  ln(p r(T)) = ln(p r(Tref)) + ln X
  //   => T = Tref dVBE(T) / (dVBE(Tref) + (k Tref/q) ln X).      (eq. 19)
  const double a = current_correction_coefficient(t_ref_kelvin, x_ratio);
  const double denom = dvbe_ref + a;
  ICVBE_REQUIRE(denom > 0.0,
                "computed_temperature_corrected: corrected dVBE(Tref) <= 0");
  return t_ref_kelvin * dvbe_t / denom;
}

Series meijer_line(double t_a, double vbe_a, double t_b, double vbe_b,
                   const std::vector<double>& xti_grid) {
  ICVBE_REQUIRE(xti_grid.size() >= 2, "meijer_line: need >= 2 XTI values");
  const auto eq = physics::meijer_equation(t_a, vbe_a, t_b, vbe_b);
  Series line("Meijer EG(XTI)");
  line.reserve(xti_grid.size());
  for (double xti : xti_grid) {
    line.push_back(xti, (eq.lhs - xti * eq.coeff_xti) / eq.coeff_eg);
  }
  return line;
}

EgXtiResult meijer_extract(double t1, double vbe1, double t2, double vbe2,
                           double t3, double vbe3) {
  ICVBE_REQUIRE(t1 > 0.0 && t2 > t1 && t3 > t2,
                "meijer_extract: need 0 < T1 < T2 < T3");
  const auto eq12 = physics::meijer_equation(t1, vbe1, t2, vbe2);
  const auto eq23 = physics::meijer_equation(t2, vbe2, t3, vbe3);
  const auto [eg, xti] =
      linalg::solve2x2(eq12.coeff_eg, eq12.coeff_xti, eq23.coeff_eg,
                       eq23.coeff_xti, eq12.lhs, eq23.lhs);
  EgXtiResult out;
  out.eg = eg;
  out.xti = xti;
  // Exactly determined 2x2 system: no residual statistics.
  out.rmse = 0.0;
  out.correlation = -1.0;  // the couple still lies on the characteristic line
  out.condition = std::numeric_limits<double>::quiet_NaN();
  return out;
}

namespace {
const lab::CellPoint& nearest_point(const std::vector<lab::CellPoint>& sweep,
                                    double t_celsius) {
  ICVBE_REQUIRE(!sweep.empty(), "meijer_from_cell: empty sweep");
  const double target = to_kelvin(t_celsius);
  std::size_t best = 0;
  double best_d = std::abs(sweep[0].t_sensor - target);
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    const double d = std::abs(sweep[i].t_sensor - target);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return sweep[best];
}
}  // namespace

MeijerCampaignResult meijer_from_cell(const std::vector<lab::CellPoint>& sweep,
                                      double t1_celsius, double t2_celsius,
                                      double t3_celsius) {
  MeijerCampaignResult r;
  r.p1 = nearest_point(sweep, t1_celsius);
  r.p2 = nearest_point(sweep, t2_celsius);
  r.p3 = nearest_point(sweep, t3_celsius);

  // eq. (16) raw computed temperatures.
  r.t1_computed_uncorrected =
      computed_temperature(r.p1.delta_vbe, r.p2.delta_vbe, r.p2.t_sensor);
  r.t3_computed_uncorrected =
      computed_temperature(r.p3.delta_vbe, r.p2.delta_vbe, r.p2.t_sensor);

  // eqs. (19)-(20) current-ratio correction (weak by design of the cell).
  r.x_ratio_t1 =
      current_ratio_x(r.p1.ic_qa, r.p1.ic_qb, r.p2.ic_qa, r.p2.ic_qb);
  r.x_ratio_t3 =
      current_ratio_x(r.p3.ic_qa, r.p3.ic_qb, r.p2.ic_qa, r.p2.ic_qb);
  r.t1_computed = computed_temperature_corrected(
      r.p1.delta_vbe, r.p2.delta_vbe, r.p2.t_sensor, r.x_ratio_t1);
  r.t3_computed = computed_temperature_corrected(
      r.p3.delta_vbe, r.p2.delta_vbe, r.p2.t_sensor, r.x_ratio_t3);

  // (C2): sensor temperatures everywhere.
  r.with_measured_t =
      meijer_extract(r.p1.t_sensor, r.p1.vbe_qa, r.p2.t_sensor, r.p2.vbe_qa,
                     r.p3.t_sensor, r.p3.vbe_qa);
  // (C3): computed temperatures at T1/T3, measured reference at T2.
  r.with_computed_t =
      meijer_extract(r.t1_computed, r.p1.vbe_qa, r.p2.t_sensor, r.p2.vbe_qa,
                     r.t3_computed, r.p3.vbe_qa);
  return r;
}

TemperatureComparison compare_temperatures(const MeijerCampaignResult& r) {
  TemperatureComparison c;
  c.t1_measured = r.p1.t_sensor;
  c.t2_measured = r.p2.t_sensor;
  c.t3_measured = r.p3.t_sensor;
  c.t1_computed = r.t1_computed;
  c.t3_computed = r.t3_computed;
  return c;
}

}  // namespace icvbe::extract
