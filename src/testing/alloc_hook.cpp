// Counting replacements for the global allocation functions. This TU is
// compiled into its own static library (icvbe_alloc_hook) and linked only
// into binaries that assert allocation behaviour; the icvbe library itself
// never references it.

#include "icvbe/testing/alloc_hook.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

namespace icvbe::testing {

std::uint64_t allocation_count() noexcept {
  return g_allocations.load(std::memory_order_relaxed);
}

}  // namespace icvbe::testing

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}

void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
