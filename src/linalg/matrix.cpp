#include "icvbe/linalg/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "icvbe/common/error.hpp"

namespace icvbe::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    ICVBE_REQUIRE(row.size() == cols_, "Matrix: ragged initializer list");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

double& Matrix::at(std::size_t r, std::size_t c) {
  ICVBE_REQUIRE(r < rows_ && c < cols_, "Matrix::at out of range");
  return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
  ICVBE_REQUIRE(r < rows_ && c < cols_, "Matrix::at out of range");
  return (*this)(r, c);
}

void Matrix::fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Matrix::resize(std::size_t rows, std::size_t cols, double fill) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, fill);
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix Matrix::multiply(const Matrix& other) const {
  ICVBE_REQUIRE(cols_ == other.rows_, "Matrix::multiply dimension mismatch");
  Matrix out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < other.cols_; ++c) {
        out(r, c) += a * other(k, c);
      }
    }
  }
  return out;
}

Vector Matrix::multiply(const Vector& v) const {
  ICVBE_REQUIRE(cols_ == v.size(), "Matrix::multiply(Vector) size mismatch");
  Vector out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += (*this)(r, c) * v[c];
    out[r] = acc;
  }
  return out;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::abs(v));
  return m;
}

double norm2(const Vector& v) {
  double acc = 0.0;
  for (double x : v) acc += x * x;
  return std::sqrt(acc);
}

double norm_inf(const Vector& v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::abs(x));
  return m;
}

double dot(const Vector& a, const Vector& b) {
  ICVBE_REQUIRE(a.size() == b.size(), "dot: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

Vector subtract(const Vector& a, const Vector& b) {
  ICVBE_REQUIRE(a.size() == b.size(), "subtract: size mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vector axpy(const Vector& a, double s, const Vector& b) {
  ICVBE_REQUIRE(a.size() == b.size(), "axpy: size mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + s * b[i];
  return out;
}

}  // namespace icvbe::linalg
