#include "icvbe/linalg/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "icvbe/common/error.hpp"

namespace icvbe::linalg {

template <typename Scalar>
MatrixT<Scalar>::MatrixT(std::size_t rows, std::size_t cols, Scalar fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

template <typename Scalar>
MatrixT<Scalar>::MatrixT(
    std::initializer_list<std::initializer_list<Scalar>> rows) {
  rows_ = rows.size();
  cols_ = rows_ ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    ICVBE_REQUIRE(row.size() == cols_, "Matrix: ragged initializer list");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

template <typename Scalar>
Scalar& MatrixT<Scalar>::at(std::size_t r, std::size_t c) {
  ICVBE_REQUIRE(r < rows_ && c < cols_, "Matrix::at out of range");
  return (*this)(r, c);
}

template <typename Scalar>
Scalar MatrixT<Scalar>::at(std::size_t r, std::size_t c) const {
  ICVBE_REQUIRE(r < rows_ && c < cols_, "Matrix::at out of range");
  return (*this)(r, c);
}

template <typename Scalar>
void MatrixT<Scalar>::fill(Scalar value) {
  std::fill(data_.begin(), data_.end(), value);
}

template <typename Scalar>
void MatrixT<Scalar>::resize(std::size_t rows, std::size_t cols, Scalar fill) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, fill);
}

template <typename Scalar>
MatrixT<Scalar> MatrixT<Scalar>::transposed() const {
  MatrixT t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

template <typename Scalar>
MatrixT<Scalar> MatrixT<Scalar>::multiply(const MatrixT& other) const {
  ICVBE_REQUIRE(cols_ == other.rows_, "Matrix::multiply dimension mismatch");
  MatrixT out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const Scalar a = (*this)(r, k);
      if (a == Scalar{}) continue;
      for (std::size_t c = 0; c < other.cols_; ++c) {
        out(r, c) += a * other(k, c);
      }
    }
  }
  return out;
}

template <typename Scalar>
VectorT<Scalar> MatrixT<Scalar>::multiply(const VectorT<Scalar>& v) const {
  ICVBE_REQUIRE(cols_ == v.size(), "Matrix::multiply(Vector) size mismatch");
  VectorT<Scalar> out(rows_, Scalar{});
  for (std::size_t r = 0; r < rows_; ++r) {
    Scalar acc{};
    for (std::size_t c = 0; c < cols_; ++c) acc += (*this)(r, c) * v[c];
    out[r] = acc;
  }
  return out;
}

template <typename Scalar>
MatrixT<Scalar> MatrixT<Scalar>::identity(std::size_t n) {
  MatrixT m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = Scalar(1.0);
  return m;
}

template <typename Scalar>
double MatrixT<Scalar>::max_abs() const {
  double m = 0.0;
  for (const Scalar& v : data_) m = std::max(m, scalar_abs(v));
  return m;
}

template class MatrixT<double>;
template class MatrixT<Complex>;

double norm2(const Vector& v) {
  double acc = 0.0;
  for (double x : v) acc += x * x;
  return std::sqrt(acc);
}

double norm_inf(const Vector& v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::abs(x));
  return m;
}

double norm_inf(const ComplexVector& v) {
  double m = 0.0;
  for (const Complex& x : v) m = std::max(m, std::abs(x));
  return m;
}

double dot(const Vector& a, const Vector& b) {
  ICVBE_REQUIRE(a.size() == b.size(), "dot: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

Vector subtract(const Vector& a, const Vector& b) {
  ICVBE_REQUIRE(a.size() == b.size(), "subtract: size mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vector axpy(const Vector& a, double s, const Vector& b) {
  ICVBE_REQUIRE(a.size() == b.size(), "axpy: size mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + s * b[i];
  return out;
}

}  // namespace icvbe::linalg
