#include "icvbe/linalg/sparse.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <queue>
#include <set>
#include <string>
#include <type_traits>

#include "icvbe/common/error.hpp"
#include "icvbe/common/simd.hpp"

namespace icvbe::linalg {

namespace {

/// Process-unique pattern stamps, shared across scalar instantiations so a
/// stamp value identifies one frozen CSR no matter which engine holds it.
std::atomic<std::uint64_t> g_next_pattern_stamp{1};

}  // namespace

// ------------------------------------------------------ SparseMatrixT ---

template <typename Scalar>
void SparseMatrixT<Scalar>::resize(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  frozen_ = false;
  coo_coords_.clear();
  coo_values_.clear();
  row_ptr_.clear();
  col_index_.clear();
  values_.clear();
}

template <typename Scalar>
void SparseMatrixT<Scalar>::add_building(std::size_t r, std::size_t c,
                                         Scalar v) {
  ICVBE_REQUIRE(r < rows_ && c < cols_, "SparseMatrix::add: out of range");
  coo_coords_.emplace_back(static_cast<int>(r), static_cast<int>(c));
  coo_values_.push_back(v);
}

template <typename Scalar>
std::size_t SparseMatrixT<Scalar>::slot(std::size_t r, std::size_t c) const {
  ICVBE_REQUIRE(r < rows_ && c < cols_, "SparseMatrix::add: out of range");
  const int* first = col_index_.data() + row_ptr_[r];
  const int* last = col_index_.data() + row_ptr_[r + 1];
  const int* it = std::lower_bound(first, last, static_cast<int>(c));
  if (it == last || *it != static_cast<int>(c)) {
    throw Error("SparseMatrix::add: entry outside the frozen pattern");
  }
  return static_cast<std::size_t>(it - col_index_.data());
}

template <typename Scalar>
void SparseMatrixT<Scalar>::freeze_pattern() {
  if (frozen_) return;

  // Sort the registrations (row, col) and merge duplicates by summation.
  std::vector<std::size_t> order(coo_coords_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [this](std::size_t a, std::size_t b) {
              return coo_coords_[a] < coo_coords_[b];
            });

  row_ptr_.assign(rows_ + 1, 0);
  col_index_.clear();
  values_.clear();
  col_index_.reserve(order.size());
  values_.reserve(order.size());
  int last_r = -1;
  int last_c = -1;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const auto [r, c] = coo_coords_[order[i]];
    const Scalar v = coo_values_[order[i]];
    if (r == last_r && c == last_c) {
      values_.back() += v;  // repeated registration of the same slot
      continue;
    }
    col_index_.push_back(c);
    values_.push_back(v);
    ++row_ptr_[static_cast<std::size_t>(r) + 1];  // per-row count for now
    last_r = r;
    last_c = c;
  }
  for (std::size_t r = 0; r < rows_; ++r) {  // counts -> offsets
    row_ptr_[r + 1] += row_ptr_[r];
  }

  coo_coords_.clear();
  coo_coords_.shrink_to_fit();
  coo_values_.clear();
  coo_values_.shrink_to_fit();
  frozen_ = true;
  pattern_stamp_ = g_next_pattern_stamp.fetch_add(1, std::memory_order_relaxed);
}

template <typename Scalar>
void SparseMatrixT<Scalar>::unfreeze() {
  if (!frozen_) return;
  coo_coords_.clear();
  coo_values_.clear();
  coo_coords_.reserve(values_.size());
  coo_values_.reserve(values_.size());
  for (std::size_t r = 0; r < rows_; ++r) {
    for (int i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      coo_coords_.emplace_back(static_cast<int>(r),
                               col_index_[static_cast<std::size_t>(i)]);
      coo_values_.push_back(values_[static_cast<std::size_t>(i)]);
    }
  }
  row_ptr_.clear();
  col_index_.clear();
  values_.clear();
  frozen_ = false;
}

template <typename Scalar>
void SparseMatrixT<Scalar>::fill(Scalar value) {
  ICVBE_REQUIRE(frozen_, "SparseMatrix::fill: freeze_pattern() first");
  std::fill(values_.begin(), values_.end(), value);
}

template <typename Scalar>
Scalar SparseMatrixT<Scalar>::at(std::size_t r, std::size_t c) const {
  ICVBE_REQUIRE(frozen_, "SparseMatrix::at: freeze_pattern() first");
  ICVBE_REQUIRE(r < rows_ && c < cols_, "SparseMatrix::at: out of range");
  const int* first = col_index_.data() + row_ptr_[r];
  const int* last = col_index_.data() + row_ptr_[r + 1];
  const int* it = std::lower_bound(first, last, static_cast<int>(c));
  if (it == last || *it != static_cast<int>(c)) return Scalar{};
  return values_[static_cast<std::size_t>(it - col_index_.data())];
}

template <typename Scalar>
MatrixT<Scalar> SparseMatrixT<Scalar>::to_dense() const {
  ICVBE_REQUIRE(frozen_, "SparseMatrix::to_dense: freeze_pattern() first");
  MatrixT<Scalar> m(rows_, cols_, Scalar{});
  for (std::size_t r = 0; r < rows_; ++r) {
    for (int i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      m(r, static_cast<std::size_t>(col_index_[static_cast<std::size_t>(i)])) =
          values_[static_cast<std::size_t>(i)];
    }
  }
  return m;
}

template <typename Scalar>
VectorT<Scalar> SparseMatrixT<Scalar>::multiply(
    const VectorT<Scalar>& v) const {
  ICVBE_REQUIRE(frozen_, "SparseMatrix::multiply: freeze_pattern() first");
  ICVBE_REQUIRE(v.size() == cols_, "SparseMatrix::multiply: size mismatch");
  VectorT<Scalar> out(rows_, Scalar{});
  for (std::size_t r = 0; r < rows_; ++r) {
    Scalar acc{};
    for (int i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      acc += values_[static_cast<std::size_t>(i)] *
             v[static_cast<std::size_t>(col_index_[static_cast<std::size_t>(i)])];
    }
    out[r] = acc;
  }
  return out;
}

template <typename Scalar>
double SparseMatrixT<Scalar>::max_abs() const {
  ICVBE_REQUIRE(frozen_, "SparseMatrix::max_abs: freeze_pattern() first");
  double m = 0.0;
  for (const Scalar& v : values_) m = std::max(m, scalar_abs(v));
  return m;
}

template class SparseMatrixT<double>;
template class SparseMatrixT<Complex>;

// ------------------------------------------------- SparseValueBatchT ---

template <typename Scalar>
void SparseValueBatchT<Scalar>::bind(const SparseMatrixT<Scalar>& pattern,
                                     std::size_t lanes) {
  ICVBE_REQUIRE(pattern.frozen(),
                "SparseValueBatch: freeze_pattern() before binding");
  ICVBE_REQUIRE(lanes > 0, "SparseValueBatch: need at least one lane");
  pattern_ = &pattern;
  lanes_ = lanes;
  values_.assign(pattern.nonzeros() * lanes, Scalar{});
}

template <typename Scalar>
const SparseMatrixT<Scalar>& SparseValueBatchT<Scalar>::pattern() const {
  ICVBE_REQUIRE(pattern_ != nullptr, "SparseValueBatch: bind() first");
  return *pattern_;
}

template <typename Scalar>
void SparseValueBatchT<Scalar>::clear_lane(std::size_t lane) {
  ICVBE_REQUIRE(lane < lanes_, "SparseValueBatch: lane out of range");
  // Blocked walk: one running pointer, four slots per trip. The naive
  // v[i * lanes_] form re-derives the address every element and carries a
  // loop-length dependency the compiler cannot break at runtime K; this
  // shape is measurably faster at campaign nnz (K = 8, ~4e5 entries).
  Scalar* v = values_.data() + lane;
  const std::size_t nnz = values_.size() / lanes_;
  const std::size_t k = lanes_;
  std::size_t i = 0;
  for (; i + 4 <= nnz; i += 4, v += 4 * k) {
    v[0] = Scalar{};
    v[k] = Scalar{};
    v[2 * k] = Scalar{};
    v[3 * k] = Scalar{};
  }
  for (; i < nnz; ++i, v += k) *v = Scalar{};
}

template <typename Scalar>
void SparseValueBatchT<Scalar>::load_lane(std::size_t lane,
                                          const SparseMatrixT<Scalar>& m) {
  ICVBE_REQUIRE(lane < lanes_, "SparseValueBatch: lane out of range");
  ICVBE_REQUIRE(pattern_ != nullptr && m.pattern_stamp() == pattern_stamp(),
                "SparseValueBatch::load_lane: pattern mismatch");
  const std::vector<Scalar>& src = m.values();
  Scalar* v = values_.data() + lane;
  const std::size_t k = lanes_;
  std::size_t i = 0;
  for (; i + 4 <= src.size(); i += 4, v += 4 * k) {  // blocked, as above
    v[0] = src[i];
    v[k] = src[i + 1];
    v[2 * k] = src[i + 2];
    v[3 * k] = src[i + 3];
  }
  for (; i < src.size(); ++i, v += k) *v = src[i];
}

template class SparseValueBatchT<double>;
template class SparseValueBatchT<Complex>;

// -------------------------------------------- SparseLuFactorizationT ---

namespace {

/// Relative numeric threshold for the Markowitz-flavoured pivot choice:
/// among candidates within this factor of the largest available pivot the
/// structurally sparsest column wins. SPICE tradition uses 0.1; 0.5 buys
/// roughly two digits of factor accuracy on 1000-node meshes (measured
/// dense-vs-sparse agreement 1e-14 vs 1e-10) for a modest fill increase,
/// which the tight-tolerance equivalence suite relies on.
constexpr double kPivotRelThreshold = 0.5;

/// Hard cap on the dense supernode edge: a B x B Scalar block is
/// materialised (and the batched kernel multiplies that by K lanes), so
/// the kernel stays within a few MB per instance no matter the matrix.
constexpr std::size_t kSupernodeMaxDim = 1024;

/// Symmetrised pattern as sorted, deduplicated adjacency lists (no self
/// loops) -- the graph both fill-reducing orderings run on.
std::vector<std::vector<int>> symmetrized_adjacency(
    const std::vector<int>& row_ptr, const std::vector<int>& col_index,
    std::size_t n) {
  std::vector<std::vector<int>> adj(n);
  for (std::size_t r = 0; r < n; ++r) {
    for (int i = row_ptr[r]; i < row_ptr[r + 1]; ++i) {
      const int c = col_index[static_cast<std::size_t>(i)];
      if (static_cast<std::size_t>(c) != r) {
        adj[r].push_back(c);
        adj[static_cast<std::size_t>(c)].push_back(static_cast<int>(r));
      }
    }
  }
  for (auto& a : adj) {
    std::sort(a.begin(), a.end());
    a.erase(std::unique(a.begin(), a.end()), a.end());
  }
  return adj;
}

/// Exact minimum degree over explicit adjacency sets (the original
/// default's algorithm body, unchanged: one-time cost, so clarity beats
/// the quotient-graph refinements -- which is exactly why it is now the
/// legacy path). Ties break on the smallest node index, keeping the order
/// fully deterministic.
std::vector<int> md_order_core(std::size_t n, std::vector<std::set<int>> adj) {
  std::vector<char> eliminated(n, 0);
  std::vector<int> order;
  order.reserve(n);
  std::vector<int> clique;
  for (std::size_t step = 0; step < n; ++step) {
    int best = -1;
    std::size_t best_deg = n + 1;
    for (std::size_t v = 0; v < n; ++v) {
      if (!eliminated[v] && adj[v].size() < best_deg) {
        best = static_cast<int>(v);
        best_deg = adj[v].size();
      }
    }
    eliminated[static_cast<std::size_t>(best)] = 1;
    order.push_back(best);

    // Eliminating `best` couples its remaining neighbours into a clique.
    clique.assign(adj[static_cast<std::size_t>(best)].begin(),
                  adj[static_cast<std::size_t>(best)].end());
    for (int u : clique) adj[static_cast<std::size_t>(u)].erase(best);
    for (std::size_t i = 0; i < clique.size(); ++i) {
      for (std::size_t j = i + 1; j < clique.size(); ++j) {
        adj[static_cast<std::size_t>(clique[i])].insert(clique[j]);
        adj[static_cast<std::size_t>(clique[j])].insert(clique[i]);
      }
    }
    adj[static_cast<std::size_t>(best)].clear();
  }
  return order;
}

std::vector<int> md_order_graph(std::size_t n,
                                const std::vector<std::vector<int>>& vadj) {
  std::vector<std::set<int>> adj(n);
  for (std::size_t v = 0; v < n; ++v) {
    adj[v].insert(vadj[v].begin(), vadj[v].end());
  }
  return md_order_core(n, std::move(adj));
}

/// Approximate minimum degree on a quotient graph (Amestoy/Davis/Duff
/// shape): eliminated pivots survive as *elements* (their neighbourhood
/// clique represented implicitly), indistinguishable variables merge into
/// *supervariables* (one elimination covers all members), and degrees are
/// the external-degree approximation computed with the |Le \ Lp| counter
/// trick -- each pivot costs work proportional to the size of the
/// structures it touches instead of the clique it would materialise.
///
/// Determinism: pivot selection is exact (degree, index) min via a
/// lazy-deletion heap, supervariable candidates are scanned in sorted
/// (hash, index) order, and each supervariable emits its members in
/// ascending index order. Input adjacency must be sorted/deduplicated
/// (symmetrized_adjacency's output); it is consumed in place.
std::vector<int> amd_order_graph(std::size_t n,
                                 std::vector<std::vector<int>> vadj) {
  std::vector<int> order;
  order.reserve(n);
  if (n == 0) return order;

  std::vector<long long> nv(n, 1);  ///< supervariable weight
  std::vector<char> is_elem(n, 0);
  std::vector<char> absorbed(n, 0);
  std::vector<char> dead_elem(n, 0);
  std::vector<std::vector<int>> eadj(n);   ///< live var -> adjacent elements
  std::vector<std::vector<int>> elist(n);  ///< element -> member variables
  std::vector<long long> esize(n, 0);      ///< element -> live member weight
  std::vector<long long> degree(n, 0);     ///< external-degree approximation
  std::vector<long long> wde(n, -1);       ///< |Le \ Lp| scratch per element
  std::vector<char> mark(n, 0);
  std::vector<int> merge_head(n, -1);      ///< absorbed-children chain...
  std::vector<int> merge_next(n, -1);      ///< ...for supervariable emission
  std::vector<std::uint64_t> hash(n, 0);

  using Entry = std::pair<long long, int>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> pq;
  for (std::size_t v = 0; v < n; ++v) {
    degree[v] = static_cast<long long>(vadj[v].size());
    pq.push({degree[v], static_cast<int>(v)});
  }

  // Sorted-list equality modulo {skip_a, skip_b} and absorbed entries --
  // the indistinguishability test (covers both adjacent supervariable
  // pairs, where each list holds the other, and non-adjacent twins).
  const auto filtered_equal = [&absorbed](const std::vector<int>& a,
                                          const std::vector<int>& b,
                                          int skip_a, int skip_b) {
    std::size_t x = 0;
    std::size_t y = 0;
    while (true) {
      while (x < a.size() &&
             (a[x] == skip_a || a[x] == skip_b ||
              absorbed[static_cast<std::size_t>(a[x])])) {
        ++x;
      }
      while (y < b.size() &&
             (b[y] == skip_a || b[y] == skip_b ||
              absorbed[static_cast<std::size_t>(b[y])])) {
        ++y;
      }
      if (x == a.size() || y == b.size()) {
        return x == a.size() && y == b.size();
      }
      if (a[x] != b[y]) return false;
      ++x;
      ++y;
    }
  };

  std::vector<int> lp;       ///< live neighbourhood of the pivot
  std::vector<int> touched;  ///< elements whose wde is set this round
  std::vector<int> emit;
  long long remaining = static_cast<long long>(n);

  while (order.size() < n) {
    // Lazy-deletion min-heap: entries are pushed on every degree change;
    // one is valid iff its node is live and the degree still matches.
    int p = -1;
    while (!pq.empty()) {
      const auto [d, v] = pq.top();
      pq.pop();
      const std::size_t sv = static_cast<std::size_t>(v);
      if (!is_elem[sv] && !absorbed[sv] && d == degree[sv]) {
        p = v;
        break;
      }
    }
    ICVBE_REQUIRE(p >= 0, "amd_order: no live pivot left");
    const std::size_t sp = static_cast<std::size_t>(p);

    // Lp: the pivot's live neighbourhood -- its variable neighbours plus
    // every live member of its adjacent elements. Each such element's
    // members all land in Lp, so the element is absorbed by the new one.
    lp.clear();
    mark[sp] = 1;
    for (int v : vadj[sp]) {
      const std::size_t sv = static_cast<std::size_t>(v);
      if (absorbed[sv] || is_elem[sv] || mark[sv]) continue;
      mark[sv] = 1;
      lp.push_back(v);
    }
    for (int e : eadj[sp]) {
      const std::size_t se = static_cast<std::size_t>(e);
      if (dead_elem[se]) continue;
      for (int v : elist[se]) {
        const std::size_t sv = static_cast<std::size_t>(v);
        if (absorbed[sv] || is_elem[sv] || mark[sv]) continue;
        mark[sv] = 1;
        lp.push_back(v);
      }
      dead_elem[se] = 1;  // Le is a subset of Lp + pivot: absorbed
      elist[se].clear();
    }
    long long lpw = 0;
    for (int v : lp) lpw += nv[static_cast<std::size_t>(v)];

    // w[e] = |Le \ Lp| in weight for every element adjacent to Lp (the
    // counter trick: start at the element's live weight, subtract each Lp
    // member it contains).
    touched.clear();
    for (int i : lp) {
      for (int e : eadj[static_cast<std::size_t>(i)]) {
        const std::size_t se = static_cast<std::size_t>(e);
        if (dead_elem[se]) continue;
        if (wde[se] < 0) {
          wde[se] = esize[se];
          touched.push_back(e);
        }
        wde[se] -= nv[static_cast<std::size_t>(i)];
      }
    }

    // Per-member update: prune dead state from the quotient graph and
    // recompute the approximate external degree
    //   d(i) ~ |A_i \ Lp| + |Lp \ i| + sum_e |Le \ Lp|,
    // clamped by the exact bounds (remaining weight; old degree + new
    // element contribution).
    for (int i : lp) {
      const std::size_t si = static_cast<std::size_t>(i);
      auto& va = vadj[si];
      std::size_t wv = 0;
      long long aw = 0;
      for (int v : va) {
        const std::size_t sv = static_cast<std::size_t>(v);
        if (absorbed[sv] || is_elem[sv] || mark[sv]) continue;
        va[wv++] = v;
        aw += nv[sv];
      }
      va.resize(wv);
      auto& ea = eadj[si];
      std::size_t we = 0;
      long long esum = 0;
      for (int e : ea) {
        const std::size_t se = static_cast<std::size_t>(e);
        if (dead_elem[se]) continue;
        if (wde[se] == 0) {
          // Everything the element covers is already in Lp: absorbed.
          dead_elem[se] = 1;
          elist[se].clear();
          continue;
        }
        ea[we++] = e;
        esum += wde[se];
      }
      ea.resize(we);
      ea.push_back(p);
      std::sort(ea.begin(), ea.end());
      long long d = aw + (lpw - nv[si]) + esum;
      d = std::min(d, remaining - nv[sp] - nv[si]);
      d = std::min(d, degree[si] + (lpw - nv[si]));
      degree[si] = std::max<long long>(d, 0);
    }

    // Supervariable detection among Lp's members: identical quotient-graph
    // adjacency (modulo each other) means the nodes are indistinguishable
    // and can be eliminated as one. Hash buckets keep the scan cheap; the
    // comparison itself is exact, so a hash miss only costs a merge.
    for (int i : lp) {
      const std::size_t si = static_cast<std::size_t>(i);
      std::uint64_t h =
          0x9e3779b97f4a7c15ull * (vadj[si].size() + 31 * eadj[si].size() + 1);
      for (int v : vadj[si]) {
        h += 0x100000001b3ull * static_cast<std::uint64_t>(v + 1);
      }
      for (int e : eadj[si]) {
        h += 0x100000001b3ull * static_cast<std::uint64_t>(e + 1);
      }
      hash[si] = h;
    }
    std::sort(lp.begin(), lp.end(), [&hash](int a, int b) {
      const std::uint64_t ha = hash[static_cast<std::size_t>(a)];
      const std::uint64_t hb = hash[static_cast<std::size_t>(b)];
      return ha != hb ? ha < hb : a < b;
    });
    for (std::size_t bi = 0; bi < lp.size();) {
      std::size_t bj = bi + 1;
      while (bj < lp.size() &&
             hash[static_cast<std::size_t>(lp[bj])] ==
                 hash[static_cast<std::size_t>(lp[bi])]) {
        ++bj;
      }
      for (std::size_t x = bi; x < bj; ++x) {
        const int i = lp[x];
        const std::size_t si = static_cast<std::size_t>(i);
        if (absorbed[si]) continue;
        for (std::size_t y = x + 1; y < bj; ++y) {
          const int j = lp[y];
          const std::size_t sj = static_cast<std::size_t>(j);
          if (absorbed[sj]) continue;
          if (eadj[si].size() != eadj[sj].size() ||
              !std::equal(eadj[si].begin(), eadj[si].end(),
                          eadj[sj].begin()) ||
              !filtered_equal(vadj[si], vadj[sj], i, j)) {
            continue;
          }
          // Merge j into i: i's one elimination will cover both.
          nv[si] += nv[sj];
          degree[si] -= nv[sj];
          absorbed[sj] = 1;
          merge_next[j] = merge_head[i];
          merge_head[i] = j;
          vadj[sj].clear();
          eadj[sj].clear();
        }
      }
      bi = bj;
    }

    // Re-queue the surviving members at their new degrees.
    for (int i : lp) {
      const std::size_t si = static_cast<std::size_t>(i);
      if (absorbed[si]) continue;
      pq.push({degree[si], i});
    }

    // The pivot becomes an element whose members are Lp's survivors (the
    // merges conserved the weight).
    is_elem[sp] = 1;
    elist[sp].clear();
    for (int v : lp) {
      if (!absorbed[static_cast<std::size_t>(v)]) elist[sp].push_back(v);
    }
    esize[sp] = lpw;
    vadj[sp].clear();
    eadj[sp].clear();

    // Reset the round's scratch.
    mark[sp] = 0;
    for (int v : lp) mark[static_cast<std::size_t>(v)] = 0;
    for (int e : touched) wde[static_cast<std::size_t>(e)] = -1;

    // Emit the pivot supervariable: p plus everything ever merged into it
    // (transitively), in ascending index order.
    emit.clear();
    emit.push_back(p);
    for (std::size_t head = 0; head < emit.size(); ++head) {
      for (int c = merge_head[emit[head]]; c >= 0; c = merge_next[c]) {
        emit.push_back(c);
      }
    }
    std::sort(emit.begin(), emit.end());
    order.insert(order.end(), emit.begin(), emit.end());
    remaining -= nv[sp];
  }
  return order;
}

}  // namespace

std::vector<int> minimum_degree_order(const std::vector<int>& row_ptr,
                                      const std::vector<int>& col_index,
                                      std::size_t n) {
  std::vector<std::set<int>> adj(n);
  for (std::size_t r = 0; r < n; ++r) {
    for (int i = row_ptr[r]; i < row_ptr[r + 1]; ++i) {
      const int c = col_index[static_cast<std::size_t>(i)];
      if (static_cast<std::size_t>(c) != r) {
        adj[r].insert(c);
        adj[static_cast<std::size_t>(c)].insert(static_cast<int>(r));
      }
    }
  }
  return md_order_core(n, std::move(adj));
}

std::vector<int> amd_order(const std::vector<int>& row_ptr,
                           const std::vector<int>& col_index, std::size_t n) {
  return amd_order_graph(n, symmetrized_adjacency(row_ptr, col_index, n));
}

BtfDecomposition btf_decompose(const std::vector<int>& row_ptr,
                               const std::vector<int>& col_index,
                               std::size_t n) {
  // --- maximum transversal (Kuhn's augmenting paths, iterative) ---------
  std::vector<int> match_col(n, -1);  // column -> matched row
  std::vector<int> match_row(n, -1);  // row -> matched column
  // Cheap pass, diagonal first: MNA rows are structurally diagonal except
  // for source/aux equations, and an identity-heavy matching keeps the
  // row<->matched-column identification (which the per-block ordering
  // eliminates on) close to the matrix's natural symmetric structure.
  // Matching first-free-column instead shifts the whole matching by one
  // along chain topologies and costs ~10% factor fill on ladders.
  for (std::size_t r = 0; r < n; ++r) {
    for (int i = row_ptr[r]; i < row_ptr[r + 1]; ++i) {
      if (col_index[static_cast<std::size_t>(i)] == static_cast<int>(r)) {
        match_col[r] = static_cast<int>(r);
        match_row[r] = static_cast<int>(r);
        break;
      }
    }
  }
  for (std::size_t r = 0; r < n; ++r) {  // then first free column
    if (match_row[r] >= 0) continue;
    for (int i = row_ptr[r]; i < row_ptr[r + 1]; ++i) {
      const int c = col_index[static_cast<std::size_t>(i)];
      if (match_col[static_cast<std::size_t>(c)] < 0) {
        match_col[static_cast<std::size_t>(c)] = static_cast<int>(r);
        match_row[r] = c;
        break;
      }
    }
  }
  std::vector<int> visited(n, -1);  // column -> DFS stamp
  std::vector<std::pair<int, int>> stack;  // (row, entry cursor)
  std::vector<int> via;  // column linking stack[d-1] to stack[d]
  for (std::size_t r0 = 0; r0 < n; ++r0) {
    if (match_row[r0] >= 0) continue;
    const int stamp = static_cast<int>(r0);
    stack.assign(1, {static_cast<int>(r0), row_ptr[r0]});
    via.assign(1, -1);
    bool found = false;
    while (!stack.empty() && !found) {
      auto& fr = stack.back();
      const int r = fr.first;
      if (fr.second >= row_ptr[static_cast<std::size_t>(r) + 1]) {
        stack.pop_back();
        via.pop_back();
        continue;
      }
      const int c = col_index[static_cast<std::size_t>(fr.second++)];
      if (visited[static_cast<std::size_t>(c)] == stamp) continue;
      visited[static_cast<std::size_t>(c)] = stamp;
      if (match_col[static_cast<std::size_t>(c)] < 0) {
        // Free column: flip the alternating path along the DFS stack.
        int col = c;
        for (std::size_t d = stack.size(); d-- > 0;) {
          const int rr = stack[d].first;
          match_row[static_cast<std::size_t>(rr)] = col;
          match_col[static_cast<std::size_t>(col)] = rr;
          if (d > 0) col = via[d];
        }
        found = true;
      } else {
        const int rnext = match_col[static_cast<std::size_t>(c)];
        stack.emplace_back(rnext, row_ptr[static_cast<std::size_t>(rnext)]);
        via.push_back(c);
      }
    }
    if (!found) {
      throw NumericalError(
          "sparse BTF: pattern is structurally singular (no perfect "
          "matching covers row " +
          std::to_string(r0) + ")");
    }
  }

  // --- SCC condensation of the matched graph (iterative Tarjan) ---------
  // Node r's successors are the matched rows of r's columns; an SCC is a
  // diagonal block. Tarjan emits SCCs in reverse topological order, so
  // block id = (count - 1 - emission index) makes every cross-block entry
  // land in a *later* block: block upper triangular.
  std::vector<int> disc(n, -1);
  std::vector<int> low(n, 0);
  std::vector<char> on_stack(n, 0);
  std::vector<int> scc_stack;
  std::vector<int> comp(n, -1);
  std::vector<std::pair<int, int>> frames;  // (row, entry cursor)
  int index = 0;
  int ncomp = 0;
  for (std::size_t r0 = 0; r0 < n; ++r0) {
    if (disc[r0] >= 0) continue;
    disc[r0] = low[r0] = index++;
    scc_stack.push_back(static_cast<int>(r0));
    on_stack[r0] = 1;
    frames.assign(1, {static_cast<int>(r0), row_ptr[r0]});
    while (!frames.empty()) {
      auto& f = frames.back();
      const int r = f.first;
      if (f.second < row_ptr[static_cast<std::size_t>(r) + 1]) {
        const int c = col_index[static_cast<std::size_t>(f.second++)];
        const int s = match_col[static_cast<std::size_t>(c)];
        if (s == r) continue;
        if (disc[static_cast<std::size_t>(s)] < 0) {
          disc[static_cast<std::size_t>(s)] =
              low[static_cast<std::size_t>(s)] = index++;
          scc_stack.push_back(s);
          on_stack[static_cast<std::size_t>(s)] = 1;
          frames.emplace_back(s, row_ptr[static_cast<std::size_t>(s)]);
        } else if (on_stack[static_cast<std::size_t>(s)]) {
          low[static_cast<std::size_t>(r)] =
              std::min(low[static_cast<std::size_t>(r)],
                       disc[static_cast<std::size_t>(s)]);
        }
        continue;
      }
      frames.pop_back();
      if (!frames.empty()) {
        const int parent = frames.back().first;
        low[static_cast<std::size_t>(parent)] =
            std::min(low[static_cast<std::size_t>(parent)],
                     low[static_cast<std::size_t>(r)]);
      }
      if (low[static_cast<std::size_t>(r)] ==
          disc[static_cast<std::size_t>(r)]) {
        while (true) {
          const int v = scc_stack.back();
          scc_stack.pop_back();
          on_stack[static_cast<std::size_t>(v)] = 0;
          comp[static_cast<std::size_t>(v)] = ncomp;
          if (v == r) break;
        }
        ++ncomp;
      }
    }
  }

  BtfDecomposition btf;
  btf.row_block.resize(n);
  for (std::size_t r = 0; r < n; ++r) {
    btf.row_block[r] = ncomp - 1 - comp[r];
  }
  btf.block_ptr.assign(static_cast<std::size_t>(ncomp) + 1, 0);
  for (std::size_t r = 0; r < n; ++r) {
    ++btf.block_ptr[static_cast<std::size_t>(btf.row_block[r]) + 1];
  }
  for (int b = 0; b < ncomp; ++b) {
    btf.block_ptr[static_cast<std::size_t>(b) + 1] +=
        btf.block_ptr[static_cast<std::size_t>(b)];
  }
  btf.row_order.resize(n);
  std::vector<int> cursor(btf.block_ptr.begin(), btf.block_ptr.end() - 1);
  for (std::size_t r = 0; r < n; ++r) {  // ascending row id within a block
    btf.row_order[static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(btf.row_block[r])]++)] =
        static_cast<int>(r);
  }
  btf.match_col = std::move(match_row);
  return btf;
}

template <typename Scalar>
bool SparseLuFactorizationT<Scalar>::pattern_matches(
    const SparseMatrixT<Scalar>& a) const {
  return analyzed_ && n_ == a.rows() && pattern_stamp_ == a.pattern_stamp();
}

template <typename Scalar>
void SparseLuFactorizationT<Scalar>::refactor(const SparseMatrixT<Scalar>& a,
                                              double pivot_tol) {
  ICVBE_REQUIRE(a.frozen(),
                "sparse LU: freeze_pattern() before factoring");
  ICVBE_REQUIRE(a.rows() == a.cols(), "sparse LU: matrix must be square");
  ICVBE_REQUIRE(a.rows() > 0, "sparse LU: empty matrix");

  // Deterministic input screening: a NaN would otherwise win or lose every
  // pivot comparison silently and only surface at the first solve. The
  // same pass fills the per-column maxima the column-relative pivot test
  // uses (AC systems legitimately span many decades across columns, so a
  // global max|A| threshold would misdiagnose them as singular).
  double amax = 0.0;
  bool finite = true;
  colmax_.assign(a.cols(), 0.0);
  {
    const std::vector<int>& cols = a.col_index();
    const std::vector<Scalar>& vals = a.values();
    for (std::size_t i = 0; i < vals.size(); ++i) {
      if (!scalar_is_finite(vals[i])) finite = false;
      const double v = scalar_abs(vals[i]);
      amax = std::max(amax, v);
      double& cm = colmax_[static_cast<std::size_t>(cols[i])];
      cm = std::max(cm, v);
    }
  }
  if (!finite) {
    throw NumericalError("sparse LU: matrix has non-finite entries");
  }
  if (amax == 0.0) {
    // Maximally singular, not API misuse: stay inside the Newton fallback
    // machinery like any other singular Jacobian (dense engine agrees).
    throw NumericalError("sparse LU: zero matrix");
  }

  if (!(pattern_matches(a) && refactor_frozen(a, pivot_tol, amax))) {
    // First factorisation, new pattern, or a frozen pivot collapsed: run
    // the full analysis with fresh pivoting.
    analyze(a, pivot_tol);
    if (sn_start_ < n_) {
      // Rewrite the factors through the frozen kernel so the stored
      // values never depend on which pass produced them: the dense
      // supernode's structural-zero arithmetic can flip the sign of an
      // exact zero relative to the analysis's sparse pass, and the batch
      // bit-identity contract compares lanes against frozen-kernel
      // output. Magnitudes are identical by construction, so the screens
      // the analysis just passed are not re-judged.
      (void)refactor_frozen(a, pivot_tol, amax, /*enforce_screens=*/false);
    }
  }

  // 1-norm of A for condition_estimate(). perm_ (sized by the analysis
  // above) is free between solves -- solve_in_place overwrites it fully --
  // so borrowing it keeps refactor() allocation-free. Magnitude sums are
  // non-negative reals, so they live in the scalar's real part.
  std::fill(perm_.begin(), perm_.end(), Scalar{});
  const std::vector<int>& cols = a.col_index();
  const std::vector<Scalar>& vals = a.values();
  for (std::size_t i = 0; i < cols.size(); ++i) {
    perm_[static_cast<std::size_t>(cols[i])] += Scalar(scalar_abs(vals[i]));
  }
  a_norm1_ = 0.0;
  for (const Scalar& s : perm_) a_norm1_ = std::max(a_norm1_, scalar_abs(s));
}

template <typename Scalar>
void SparseLuFactorizationT<Scalar>::analyze(const SparseMatrixT<Scalar>& a,
                                             double pivot_tol) {
  const std::size_t n = a.rows();
  const std::vector<int>& row_ptr = a.row_ptr();
  const std::vector<int>& col_index = a.col_index();
  const std::vector<Scalar>& values = a.values();

  analyzed_ = false;
  n_ = n;

  // --- symbolic pre-order ------------------------------------------------
  // With BTF on, the matching rejects structurally singular patterns
  // before any numeric work, rows are grouped block by block (so LU never
  // fills across blocks), and the fill-reducing order runs per diagonal
  // block on the matched row<->column identification. With BTF off, one
  // global order over the whole symmetrised pattern (the original path).
  std::vector<int> row_block;  // block id per row (pivot confinement)
  std::vector<int> col_block;  // block id per column
  bool use_blocks = false;
  if (options_.btf) {
    const BtfDecomposition btf = btf_decompose(row_ptr, col_index, n);
    btf_blocks_ = btf.block_count();
    use_blocks = btf_blocks_ > 1;
    row_block = btf.row_block;
    col_block.assign(n, 0);
    for (std::size_t r = 0; r < n; ++r) {
      col_block[static_cast<std::size_t>(btf.match_col[r])] =
          btf.row_block[r];
    }
    rperm_.clear();
    rperm_.reserve(n);
    std::vector<int> local_of_col(n, -1);
    std::vector<std::vector<int>> adj;
    std::vector<int> block_rows;
    for (std::size_t b = 0; b < btf.block_count(); ++b) {
      const int lo = btf.block_ptr[b];
      const int hi = btf.block_ptr[b + 1];
      const std::size_t m = static_cast<std::size_t>(hi - lo);
      if (m == 1) {
        rperm_.push_back(btf.row_order[static_cast<std::size_t>(lo)]);
        continue;
      }
      block_rows.assign(btf.row_order.begin() + lo,
                        btf.row_order.begin() + hi);
      for (std::size_t k = 0; k < m; ++k) {
        local_of_col[static_cast<std::size_t>(
            btf.match_col[static_cast<std::size_t>(block_rows[k])])] =
            static_cast<int>(k);
      }
      // Local symmetrised graph: row k of the block is identified with
      // its matched column (the vertex the elimination merges them into).
      adj.assign(m, {});
      for (std::size_t k = 0; k < m; ++k) {
        const std::size_t r = static_cast<std::size_t>(block_rows[k]);
        for (int i = row_ptr[r]; i < row_ptr[r + 1]; ++i) {
          const int lc =
              local_of_col[static_cast<std::size_t>(col_index[i])];
          if (lc >= 0 && lc != static_cast<int>(k)) {
            adj[k].push_back(lc);
            adj[static_cast<std::size_t>(lc)].push_back(static_cast<int>(k));
          }
        }
      }
      for (auto& al : adj) {
        std::sort(al.begin(), al.end());
        al.erase(std::unique(al.begin(), al.end()), al.end());
      }
      const std::vector<int> local =
          options_.ordering == SparseOrdering::kAmd
              ? amd_order_graph(m, std::move(adj))
              : md_order_graph(m, adj);
      for (int v : local) {
        rperm_.push_back(block_rows[static_cast<std::size_t>(v)]);
      }
      for (std::size_t k = 0; k < m; ++k) {
        local_of_col[static_cast<std::size_t>(
            btf.match_col[static_cast<std::size_t>(block_rows[k])])] = -1;
      }
    }
    // Blocks occupy contiguous step ranges (rperm_ was emitted block by
    // block), so the BTF block offsets are the solve-time step fences.
    bstep_ptr_.assign(btf.block_ptr.begin(), btf.block_ptr.end());
  } else {
    btf_blocks_ = 1;
    rperm_ = options_.ordering == SparseOrdering::kAmd
                 ? amd_order(row_ptr, col_index, n)
                 : minimum_degree_order(row_ptr, col_index, n);
    bstep_ptr_ = {0, static_cast<int>(n)};
  }

  cstep_.assign(n, -1);
  cperm_.assign(n, -1);
  udiag_.assign(n, Scalar{});

  // Static column degrees of A: the sparsity half of the Markowitz cost.
  std::vector<int> coldeg(n, 0);
  for (int c : col_index) ++coldeg[static_cast<std::size_t>(c)];

  // Growing factor rows; frozen into flat arrays afterwards.
  std::vector<std::vector<std::pair<int, Scalar>>> lrows(n);  // (step, mult)
  std::vector<std::vector<std::pair<int, Scalar>>> urows(n);  // (col, val)

  std::vector<Scalar> w(n, Scalar{});  // dense scatter row, by column id
  std::vector<char> inpat(n, 0);
  std::vector<int> pattern;
  std::vector<char> step_seen(n, 0);
  std::vector<int> steps_touched;
  std::priority_queue<int, std::vector<int>, std::greater<int>> heap;

  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t r = static_cast<std::size_t>(rperm_[k]);
    // With blocks, only the row's own BTF block participates: its columns
    // are exactly what its rows can eliminate (earlier blocks are fully
    // pivoted, later blocks belong to later rows), so filtering the
    // scatter below confines the pattern -- and hence the pivot search --
    // to the block.
    const int cur_block = use_blocks ? row_block[r] : 0;
    // Scatter row r of A. Entries whose column belongs to a *later* BTF
    // block stay out of the elimination entirely (block-diagonal factor;
    // they are applied raw during block back-substitution), so neither
    // they nor any fill they would cascade ever enter the pattern.
    for (int i = row_ptr[r]; i < row_ptr[r + 1]; ++i) {
      const int c = col_index[static_cast<std::size_t>(i)];
      if (use_blocks && col_block[static_cast<std::size_t>(c)] != cur_block) {
        continue;
      }
      inpat[static_cast<std::size_t>(c)] = 1;
      pattern.push_back(c);
      w[static_cast<std::size_t>(c)] = values[static_cast<std::size_t>(i)];
      const int js = cstep_[static_cast<std::size_t>(c)];
      if (js >= 0 && !step_seen[static_cast<std::size_t>(js)]) {
        step_seen[static_cast<std::size_t>(js)] = 1;
        steps_touched.push_back(js);
        heap.push(js);
      }
    }

    // Eliminate against earlier pivot rows in ascending step order. An
    // update from step j only reaches steps > j, so the heap pops each
    // dependency exactly when its value is final.
    while (!heap.empty()) {
      const int j = heap.top();
      heap.pop();
      const std::size_t cj = static_cast<std::size_t>(cperm_[j]);
      const Scalar lv = w[cj] / udiag_[static_cast<std::size_t>(j)];
      w[cj] = lv;  // L multiplier, kept in place for the gather below
      lrows[k].emplace_back(j, lv);
      for (const auto& [uc, uv] : urows[static_cast<std::size_t>(j)]) {
        const std::size_t u = static_cast<std::size_t>(uc);
        if (!inpat[u]) {
          inpat[u] = 1;
          pattern.push_back(uc);
          w[u] = Scalar{};
          const int us = cstep_[u];
          if (us >= 0 && !step_seen[static_cast<std::size_t>(us)]) {
            step_seen[static_cast<std::size_t>(us)] = 1;
            steps_touched.push_back(us);
            heap.push(us);
          }
        }
        w[u] -= lv * uv;
      }
    }

    // Pivot choice among the not-yet-pivoted columns: numerically
    // acceptable (column-relative magnitude floor, then threshold partial
    // pivoting against the largest acceptable candidate), then
    // structurally sparsest. The inverted comparisons reject NaN, and
    // 0 > 0 being false keeps an exactly zero pivot out even when the
    // tolerance product underflows to 0.
    double umax = 0.0;
    for (int c : pattern) {
      const std::size_t ci = static_cast<std::size_t>(c);
      if (cstep_[ci] >= 0) continue;
      if (!(scalar_abs(w[ci]) > pivot_tol * colmax_[ci])) continue;
      umax = std::max(umax, scalar_abs(w[ci]));
    }
    if (!(umax > 0.0)) {
      throw NumericalError(
          "sparse LU: matrix is singular to working precision at "
          "elimination step " +
          std::to_string(k) + " of " + std::to_string(n));
    }
    int best_col = -1;
    for (int c : pattern) {
      const std::size_t ci = static_cast<std::size_t>(c);
      if (cstep_[ci] >= 0) continue;
      if (!(scalar_abs(w[ci]) > pivot_tol * colmax_[ci])) continue;
      if (scalar_abs(w[ci]) < kPivotRelThreshold * umax) continue;
      if (best_col < 0 ||
          coldeg[ci] < coldeg[static_cast<std::size_t>(best_col)] ||
          (coldeg[ci] == coldeg[static_cast<std::size_t>(best_col)] &&
           c < best_col)) {
        best_col = c;
      }
    }
    cstep_[static_cast<std::size_t>(best_col)] = static_cast<int>(k);
    cperm_[k] = best_col;
    udiag_[k] = w[static_cast<std::size_t>(best_col)];

    // Record this row's U part -- every pattern position, including exact
    // numeric zeros: the fill pattern must not depend on the operating
    // point the analysis happened to run at.
    for (int c : pattern) {
      if (cstep_[static_cast<std::size_t>(c)] < 0) {
        urows[k].emplace_back(c, w[static_cast<std::size_t>(c)]);
      }
    }

    // Reset scratch state for the next row.
    for (int c : pattern) {
      inpat[static_cast<std::size_t>(c)] = 0;
      w[static_cast<std::size_t>(c)] = Scalar{};
    }
    pattern.clear();
    for (int s : steps_touched) step_seen[static_cast<std::size_t>(s)] = 0;
    steps_touched.clear();
  }

  // Freeze into flat step-space arrays for the allocation-free refactor.
  l_ptr_.assign(n + 1, 0);
  u_ptr_.assign(n + 1, 0);
  std::size_t l_nnz = 0;
  std::size_t u_nnz = 0;
  for (std::size_t k = 0; k < n; ++k) {
    l_nnz += lrows[k].size();
    u_nnz += urows[k].size();
    l_ptr_[k + 1] = static_cast<int>(l_nnz);
    u_ptr_[k + 1] = static_cast<int>(u_nnz);
  }
  l_step_.resize(l_nnz);
  l_val_.resize(l_nnz);
  u_step_.resize(u_nnz);
  u_val_.resize(u_nnz);
  std::vector<std::pair<int, Scalar>> urow_steps;
  for (std::size_t k = 0; k < n; ++k) {
    // L rows were emitted in ascending step order already.
    for (std::size_t i = 0; i < lrows[k].size(); ++i) {
      l_step_[static_cast<std::size_t>(l_ptr_[k]) + i] = lrows[k][i].first;
      l_val_[static_cast<std::size_t>(l_ptr_[k]) + i] = lrows[k][i].second;
    }
    // U rows were recorded by column id; remap to the (now complete) pivot
    // steps and sort ascending.
    urow_steps.clear();
    for (const auto& [c, v] : urows[k]) {
      urow_steps.emplace_back(cstep_[static_cast<std::size_t>(c)], v);
    }
    std::sort(urow_steps.begin(), urow_steps.end(),
              [](const auto& x, const auto& y) { return x.first < y.first; });
    for (std::size_t i = 0; i < urow_steps.size(); ++i) {
      u_step_[static_cast<std::size_t>(u_ptr_[k]) + i] = urow_steps[i].first;
      u_val_[static_cast<std::size_t>(u_ptr_[k]) + i] = urow_steps[i].second;
    }
  }

  // Scatter map: A entry i lands in step-space slot astep_[i]. Cross-block
  // entries get a -1 sentinel (the scatter skips them) and are indexed per
  // step for the raw copy + solve-time application instead.
  astep_.resize(col_index.size());
  for (std::size_t i = 0; i < col_index.size(); ++i) {
    astep_[i] = cstep_[static_cast<std::size_t>(col_index[i])];
  }
  off_ptr_.assign(n + 1, 0);
  off_a_idx_.clear();
  off_step_.clear();
  off_val_.clear();
  if (use_blocks) {
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t r = static_cast<std::size_t>(rperm_[k]);
      const int b = row_block[r];
      for (int i = row_ptr[r]; i < row_ptr[r + 1]; ++i) {
        const std::size_t c = static_cast<std::size_t>(col_index[i]);
        if (col_block[c] == b) continue;
        astep_[static_cast<std::size_t>(i)] = -1;
        off_a_idx_.push_back(i);
        off_step_.push_back(cstep_[c]);
        off_val_.push_back(values[static_cast<std::size_t>(i)]);
      }
      off_ptr_[k + 1] = static_cast<int>(off_a_idx_.size());
    }
  }

  // --- trailing dense supernode -----------------------------------------
  // Factors of fill-heavy systems end dense: the last columns of the
  // elimination accumulate nearly every remaining position. Find the
  // largest trailing step range [s, n) whose factor density qualifies and
  // route it through the dense microkernel; mirror maps let the numeric
  // passes copy the pattern positions back so solve / condition paths
  // never know. D(s) counts factor entries with both coordinates >= s,
  // accumulated by suffix scan: row s contributes its diagonal, its whole
  // U row (steps > s), and every L entry *at* step s (their rows are > s).
  sn_start_ = n;
  sn_val_.clear();
  sn_val_b_.clear();
  sn_l_idx_.clear();
  sn_l_pos_.clear();
  sn_u_idx_.clear();
  sn_u_pos_.clear();
  if (options_.supernode_min > 0) {
    const std::size_t min_b =
        std::max<std::size_t>(static_cast<std::size_t>(options_.supernode_min),
                              2);
    std::vector<long long> l_hist(n, 0);
    for (int j : l_step_) ++l_hist[static_cast<std::size_t>(j)];
    long long inblk = 0;
    std::size_t best = n;
    for (std::size_t s = n; s-- > 0;) {
      inblk += 1 + (u_ptr_[s + 1] - u_ptr_[s]) + l_hist[s];
      const std::size_t b = n - s;
      if (b > kSupernodeMaxDim) break;
      if (b < min_b) continue;
      if (static_cast<double>(inblk) >= options_.supernode_density *
                                            static_cast<double>(b) *
                                            static_cast<double>(b)) {
        best = s;  // keep scanning: prefer the largest qualifying block
      }
    }
    if (best < n) {
      sn_start_ = best;
      const std::size_t bdim = n - best;
      sn_val_.assign(bdim * bdim, Scalar{});
      for (std::size_t k = best; k < n; ++k) {
        const std::size_t kb = k - best;
        for (int li = l_ptr_[k]; li < l_ptr_[k + 1]; ++li) {
          const int j = l_step_[static_cast<std::size_t>(li)];
          if (j < static_cast<int>(best)) continue;
          sn_l_idx_.push_back(li);
          sn_l_pos_.push_back(static_cast<int>(
              kb * bdim + (static_cast<std::size_t>(j) - best)));
        }
        for (int ui = u_ptr_[k]; ui < u_ptr_[k + 1]; ++ui) {
          sn_u_idx_.push_back(ui);
          sn_u_pos_.push_back(static_cast<int>(
              kb * bdim +
              (static_cast<std::size_t>(u_step_[static_cast<std::size_t>(ui)]) -
               best)));
        }
      }
    }
  }

  work_.assign(n, Scalar{});
  perm_.assign(n, Scalar{});
  pattern_stamp_ = a.pattern_stamp();
  analyzed_ = true;
  ++analysis_count_;
}

template <typename Scalar>
bool SparseLuFactorizationT<Scalar>::refactor_frozen(
    const SparseMatrixT<Scalar>& a, double pivot_tol, double amax,
    bool enforce_screens) {
  const std::size_t n = n_;
  const std::size_t sn = sn_start_;
  const std::size_t bdim = n - sn;
  const std::vector<int>& row_ptr = a.row_ptr();
  const std::vector<Scalar>& values = a.values();

  // Element-growth guard: with the pivot order frozen there is no
  // numerical pivoting left, so a restamp whose value distribution differs
  // wildly from the analysed one (a transient step's huge companion
  // conductances, or an AC restamp decades away in frequency, say) can
  // blow the factors up and yield a finite but garbage solution. Growth
  // beyond this factor over max|A| aborts the frozen pass; the caller
  // re-analyses with fresh pivoting (partial pivoting keeps growth within
  // ~2^n theory, single digits in practice).
  constexpr double kGrowthLimit = 1e8;
  const double growth_cap = kGrowthLimit * amax;
  double gmax = 0.0;

  // Cross-block entries never join the elimination: refresh their raw
  // copies for the solve's block back-substitution and skip them below
  // (their astep_ is -1).
  for (std::size_t t = 0; t < off_a_idx_.size(); ++t) {
    off_val_[t] = values[static_cast<std::size_t>(off_a_idx_[t])];
  }

  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t r = static_cast<std::size_t>(rperm_[k]);
    for (int i = row_ptr[r]; i < row_ptr[r + 1]; ++i) {
      const int s = astep_[static_cast<std::size_t>(i)];
      if (s >= 0) work_[static_cast<std::size_t>(s)] += values[static_cast<std::size_t>(i)];
    }
    if (k < sn) {
      // Sparse replay along the cached pattern.
      for (int li = l_ptr_[k]; li < l_ptr_[k + 1]; ++li) {
        const std::size_t j =
            static_cast<std::size_t>(l_step_[static_cast<std::size_t>(li)]);
        const Scalar lv = work_[j] / udiag_[j];
        l_val_[static_cast<std::size_t>(li)] = lv;
        work_[j] = Scalar{};
        for (int ui = u_ptr_[j]; ui < u_ptr_[j + 1]; ++ui) {
          work_[static_cast<std::size_t>(
              u_step_[static_cast<std::size_t>(ui)])] -=
              lv * u_val_[static_cast<std::size_t>(ui)];
        }
      }
      const Scalar d = work_[k];
      work_[k] = Scalar{};
      gmax = std::max(gmax, scalar_abs(d));
      for (int ui = u_ptr_[k]; ui < u_ptr_[k + 1]; ++ui) {
        const std::size_t us =
            static_cast<std::size_t>(u_step_[static_cast<std::size_t>(ui)]);
        const Scalar uv = work_[us];
        u_val_[static_cast<std::size_t>(ui)] = uv;
        gmax = std::max(gmax, scalar_abs(uv));
        work_[us] = Scalar{};
      }
      const double tol =
          pivot_tol * colmax_[static_cast<std::size_t>(cperm_[k])];
      if (enforce_screens && (!(scalar_abs(d) > tol) || gmax > growth_cap)) {
        // Frozen pivot collapsed (judged against its own column's current
        // scale) or the factors are blowing up (the matrix may still be
        // fine under a different order); work_ is already clean for the
        // re-analysis -- both checks run after this row's gather.
        return false;
      }
      udiag_[k] = d;
    } else {
      // Dense supernode row: replay the out-of-block L prefix sparsely
      // (ascending steps, so the prefix ends at the first in-block entry),
      // then eliminate inside the B x B block with contiguous loops. The
      // per-position arithmetic matches the sparse replay exactly except
      // on structural zeros, where only the sign of an exact zero can
      // differ -- which is why every stored factor value comes from this
      // kernel (see the post-analysis pass in refactor()).
      const std::size_t kb = k - sn;
      for (int li = l_ptr_[k]; li < l_ptr_[k + 1]; ++li) {
        const std::size_t j =
            static_cast<std::size_t>(l_step_[static_cast<std::size_t>(li)]);
        if (j >= sn) break;
        const Scalar lv = work_[j] / udiag_[j];
        l_val_[static_cast<std::size_t>(li)] = lv;
        work_[j] = Scalar{};
        for (int ui = u_ptr_[j]; ui < u_ptr_[j + 1]; ++ui) {
          work_[static_cast<std::size_t>(
              u_step_[static_cast<std::size_t>(ui)])] -=
              lv * u_val_[static_cast<std::size_t>(ui)];
        }
      }
      Scalar* drow = sn_val_.data() + kb * bdim;
      for (std::size_t t = 0; t < bdim; ++t) {
        drow[t] = work_[sn + t];
        work_[sn + t] = Scalar{};
      }
      if constexpr (std::is_same_v<Scalar, double>) {
        // Phase-split replay: multipliers and the leading (t < kb) updates
        // stay j-outer, then the trailing columns run t-outer with the
        // element kept in pack registers across the whole jb sweep -- each
        // element's subtractions remain in ascending-jb order, so the tiled
        // kernel is bit-identical to the plain j-outer loop while touching
        // each trailing element once instead of once per jb.
        for (std::size_t jb = 0; jb < kb; ++jb) {
          const double lv = drow[jb] / sn_val_[jb * bdim + jb];
          drow[jb] = lv;
          const double* urow = sn_val_.data() + jb * bdim;
          for (std::size_t t = jb + 1; t < kb; ++t) drow[t] -= lv * urow[t];
        }
        using P = common::DPack;
        constexpr std::size_t W = common::kPackWidth;
        std::size_t t = kb;
        for (; t + 2 * W <= bdim; t += 2 * W) {
          P a0 = P::load(drow + t);
          P a1 = P::load(drow + t + W);
          for (std::size_t jb = 0; jb < kb; ++jb) {
            const P lv = P::broadcast(drow[jb]);
            const double* urow = sn_val_.data() + jb * bdim;
            a0 = a0 - lv * P::load(urow + t);
            a1 = a1 - lv * P::load(urow + t + W);
          }
          a0.store(drow + t);
          a1.store(drow + t + W);
        }
        for (; t < bdim; ++t) {
          double acc = drow[t];
          for (std::size_t jb = 0; jb < kb; ++jb) {
            acc -= drow[jb] * sn_val_[jb * bdim + t];
          }
          drow[t] = acc;
        }
      } else {
        for (std::size_t jb = 0; jb < kb; ++jb) {
          const Scalar lv = drow[jb] / sn_val_[jb * bdim + jb];
          drow[jb] = lv;
          const Scalar* urow = sn_val_.data() + jb * bdim;
          for (std::size_t t = jb + 1; t < bdim; ++t) {
            drow[t] -= lv * urow[t];
          }
        }
      }
      const Scalar d = drow[kb];
      gmax = std::max(gmax, scalar_abs(d));
      for (std::size_t t = kb + 1; t < bdim; ++t) {
        gmax = std::max(gmax, scalar_abs(drow[t]));
      }
      const double tol =
          pivot_tol * colmax_[static_cast<std::size_t>(cperm_[k])];
      if (enforce_screens && (!(scalar_abs(d) > tol) || gmax > growth_cap)) {
        return false;  // work_ is clean: the block's dirt lives in sn_val_
      }
      udiag_[k] = d;
    }
  }
  // Mirror the dense block's pattern positions back into the flat factor
  // arrays: the solve / condition / diagnostic paths stay oblivious to
  // the supernode.
  for (std::size_t t = 0; t < sn_l_idx_.size(); ++t) {
    l_val_[static_cast<std::size_t>(sn_l_idx_[t])] =
        sn_val_[static_cast<std::size_t>(sn_l_pos_[t])];
  }
  for (std::size_t t = 0; t < sn_u_idx_.size(); ++t) {
    u_val_[static_cast<std::size_t>(sn_u_idx_[t])] =
        sn_val_[static_cast<std::size_t>(sn_u_pos_[t])];
  }
  return true;
}

namespace {

/// Lane-op policy: the original runtime-K scalar-lane loops of the batched
/// kernel, preserved verbatim. This is the measurable baseline the
/// explicit-SIMD policy is gated against (set_batch_simd(false) routes the
/// batched kernels through it), and the only policy the Complex
/// instantiation uses. Each op is one of the batched kernel's inner loops.
template <typename Scalar>
struct ScalarLaneOps {
  /// Straight row-major supernode replay (no register tiling).
  static constexpr bool kTiled = false;

  static void copy(Scalar* dst, const Scalar* src, std::size_t K) noexcept {
    for (std::size_t l = 0; l < K; ++l) dst[l] = src[l];
  }
  /// dst[l] += src[l] -- the scatter accumulation.
  static void add(Scalar* dst, const Scalar* src, std::size_t K) noexcept {
    for (std::size_t l = 0; l < K; ++l) dst[l] += src[l];
  }
  /// dst[t] = src[t]; src[t] = 0 over a flat range (the supernode row
  /// harvest, length bdim * K).
  static void take_flat(Scalar* dst, Scalar* src, std::size_t len) noexcept {
    for (std::size_t t = 0; t < len; ++t) {
      dst[t] = src[t];
      src[t] = Scalar{};
    }
  }
  /// lv[l] = wj[l] / dj[l]; wj[l] = 0 -- multiplier harvest.
  static void div_take(Scalar* lv, Scalar* wj, const Scalar* dj,
                       std::size_t K) noexcept {
    for (std::size_t l = 0; l < K; ++l) {
      lv[l] = wj[l] / dj[l];
      wj[l] = Scalar{};
    }
  }
  /// w[l] -= lv[l] * uv[l] -- the elimination update.
  static void submul(Scalar* w, const Scalar* lv, const Scalar* uv,
                     std::size_t K) noexcept {
    for (std::size_t l = 0; l < K; ++l) w[l] -= lv[l] * uv[l];
  }
  static void div_inplace(Scalar* p, const Scalar* d,
                          std::size_t K) noexcept {
    for (std::size_t l = 0; l < K; ++l) p[l] /= d[l];
  }
  /// dst[l] = src[l]; src[l] = 0; g[l] = max(g[l], |dst[l]|) -- diagonal
  /// and U-row harvest with the growth tracker.
  static void take_absmax(Scalar* dst, Scalar* src, double* g,
                          std::size_t K) noexcept {
    for (std::size_t l = 0; l < K; ++l) {
      dst[l] = src[l];
      src[l] = Scalar{};
      g[l] = std::max(g[l], scalar_abs(dst[l]));
    }
  }
  static void copy_absmax(Scalar* dst, const Scalar* src, double* g,
                          std::size_t K) noexcept {
    for (std::size_t l = 0; l < K; ++l) {
      dst[l] = src[l];
      g[l] = std::max(g[l], scalar_abs(dst[l]));
    }
  }
  static void absmax(double* g, const Scalar* x, std::size_t K) noexcept {
    for (std::size_t l = 0; l < K; ++l) {
      g[l] = std::max(g[l], scalar_abs(x[l]));
    }
  }
  /// Input screen: finiteness into ok, magnitude maxima into amax / cm.
  static void screen_input(unsigned char* ok, const Scalar* v, double* amax,
                           double* cm, std::size_t K) noexcept {
    for (std::size_t l = 0; l < K; ++l) {
      ok[l] = static_cast<unsigned char>(
          ok[l] & static_cast<unsigned char>(scalar_is_finite(v[l])));
      const double m = scalar_abs(v[l]);
      amax[l] = std::max(amax[l], m);
      cm[l] = std::max(cm[l], m);
    }
  }
  /// Per-step acceptance: pivot above its column's scale, growth bounded.
  /// The inverted comparison rejects NaN.
  static void screen_pivot(unsigned char* ok, const Scalar* dk,
                           const double* cm, const double* g,
                           const double* cap, double pivot_tol,
                           std::size_t K) noexcept {
    for (std::size_t l = 0; l < K; ++l) {
      ok[l] = static_cast<unsigned char>(
          ok[l] &
          static_cast<unsigned char>(scalar_abs(dk[l]) > pivot_tol * cm[l]) &
          static_cast<unsigned char>(!(g[l] > cap[l])));
    }
  }
};

/// Lane-op policy: explicit SIMD over the lane-fastest planes, double
/// scalar only. Each op walks the lane dimension in DPack packs with a
/// scalar tail; all pack arithmetic is elementwise and FMA-free (see
/// simd.hpp), so every lane's FP sequence is exactly ScalarLaneOps' and
/// the planes come out bit-identical.
///
/// KC > 0 pins the lane count at compile time: refactor_batch dispatches
/// the common K = 4 / 8 / 16 shapes so these loops fully unroll. At
/// bandgap-cell sizes (n ~ 7, rows of 2-3 entries) the runtime-K loop
/// control -- counter, compare, and the alias versioning the
/// auto-vectorizer has to emit -- costs as much as the arithmetic, and
/// unrolling is where most of the batched SIMD win comes from. KC == 0
/// serves any other lane count.
template <std::size_t KC>
struct PackLaneOps {
  /// Supernode rows run the register-tiled phase-split replay.
  static constexpr bool kTiled = true;
  using P = common::DPack;
  static constexpr std::size_t W = common::kPackWidth;

  static constexpr std::size_t lanes(std::size_t K) noexcept {
    return KC != 0 ? KC : K;
  }
  static constexpr std::size_t packed(std::size_t K) noexcept {
    return lanes(K) & ~(W - 1);
  }

  static void copy(double* dst, const double* src, std::size_t K) noexcept {
    const std::size_t n = lanes(K);
    const std::size_t m = packed(K);
    for (std::size_t p = 0; p < m; p += W) P::load(src + p).store(dst + p);
    for (std::size_t l = m; l < n; ++l) dst[l] = src[l];
  }
  static void add(double* dst, const double* src, std::size_t K) noexcept {
    const std::size_t n = lanes(K);
    const std::size_t m = packed(K);
    for (std::size_t p = 0; p < m; p += W) {
      (P::load(dst + p) + P::load(src + p)).store(dst + p);
    }
    for (std::size_t l = m; l < n; ++l) dst[l] += src[l];
  }
  static void take_flat(double* dst, double* src, std::size_t len) noexcept {
    const std::size_t m = len & ~(W - 1);
    const P z = P::zero();
    for (std::size_t t = 0; t < m; t += W) {
      P::load(src + t).store(dst + t);
      z.store(src + t);
    }
    for (std::size_t t = m; t < len; ++t) {
      dst[t] = src[t];
      src[t] = 0.0;
    }
  }
  static void div_take(double* lv, double* wj, const double* dj,
                       std::size_t K) noexcept {
    const std::size_t n = lanes(K);
    const std::size_t m = packed(K);
    const P z = P::zero();
    for (std::size_t p = 0; p < m; p += W) {
      (P::load(wj + p) / P::load(dj + p)).store(lv + p);
      z.store(wj + p);
    }
    for (std::size_t l = m; l < n; ++l) {
      lv[l] = wj[l] / dj[l];
      wj[l] = 0.0;
    }
  }
  static void submul(double* w, const double* lv, const double* uv,
                     std::size_t K) noexcept {
    const std::size_t n = lanes(K);
    const std::size_t m = packed(K);
    for (std::size_t p = 0; p < m; p += W) {
      (P::load(w + p) - P::load(lv + p) * P::load(uv + p)).store(w + p);
    }
    for (std::size_t l = m; l < n; ++l) w[l] -= lv[l] * uv[l];
  }
  static void div_inplace(double* p, const double* d,
                          std::size_t K) noexcept {
    const std::size_t n = lanes(K);
    const std::size_t m = packed(K);
    for (std::size_t q = 0; q < m; q += W) {
      (P::load(p + q) / P::load(d + q)).store(p + q);
    }
    for (std::size_t l = m; l < n; ++l) p[l] /= d[l];
  }
  static void take_absmax(double* dst, double* src, double* g,
                          std::size_t K) noexcept {
    const std::size_t n = lanes(K);
    const std::size_t m = packed(K);
    const P z = P::zero();
    for (std::size_t p = 0; p < m; p += W) {
      const P v = P::load(src + p);
      v.store(dst + p);
      z.store(src + p);
      P::max(P::load(g + p), P::abs(v)).store(g + p);
    }
    for (std::size_t l = m; l < n; ++l) {
      dst[l] = src[l];
      src[l] = 0.0;
      g[l] = std::max(g[l], std::abs(dst[l]));
    }
  }
  static void copy_absmax(double* dst, const double* src, double* g,
                          std::size_t K) noexcept {
    const std::size_t n = lanes(K);
    const std::size_t m = packed(K);
    for (std::size_t p = 0; p < m; p += W) {
      const P v = P::load(src + p);
      v.store(dst + p);
      P::max(P::load(g + p), P::abs(v)).store(g + p);
    }
    for (std::size_t l = m; l < n; ++l) {
      dst[l] = src[l];
      g[l] = std::max(g[l], std::abs(dst[l]));
    }
  }
  static void absmax(double* g, const double* x, std::size_t K) noexcept {
    const std::size_t n = lanes(K);
    const std::size_t m = packed(K);
    for (std::size_t p = 0; p < m; p += W) {
      P::max(P::load(g + p), P::abs(P::load(x + p))).store(g + p);
    }
    for (std::size_t l = m; l < n; ++l) {
      g[l] = std::max(g[l], std::abs(x[l]));
    }
  }
  static void screen_input(unsigned char* ok, const double* v, double* amax,
                           double* cm, std::size_t K) noexcept {
    const std::size_t n = lanes(K);
    const std::size_t m = packed(K);
    constexpr double kInf = std::numeric_limits<double>::infinity();
    for (std::size_t p = 0; p < m; p += W) {
      const P a = P::abs(P::load(v + p));
      P::max(P::load(amax + p), a).store(amax + p);
      P::max(P::load(cm + p), a).store(cm + p);
      for (std::size_t i = 0; i < W; ++i) {
        // |v| < inf is the finiteness test (|NaN| < inf is false).
        ok[p + i] = static_cast<unsigned char>(
            ok[p + i] & static_cast<unsigned char>(a[i] < kInf));
      }
    }
    for (std::size_t l = m; l < n; ++l) {
      ok[l] = static_cast<unsigned char>(
          ok[l] & static_cast<unsigned char>(std::isfinite(v[l])));
      const double x = std::abs(v[l]);
      amax[l] = std::max(amax[l], x);
      cm[l] = std::max(cm[l], x);
    }
  }
  static void screen_pivot(unsigned char* ok, const double* dk,
                           const double* cm, const double* g,
                           const double* cap, double pivot_tol,
                           std::size_t K) noexcept {
    // Once per elimination step, result is bytes: scalar is the right tool.
    const std::size_t n = lanes(K);
    for (std::size_t l = 0; l < n; ++l) {
      ok[l] = static_cast<unsigned char>(
          ok[l] &
          static_cast<unsigned char>(std::abs(dk[l]) > pivot_tol * cm[l]) &
          static_cast<unsigned char>(!(g[l] > cap[l])));
    }
  }

  /// Register-tiled trailing supernode update (t >= kb), the BLAS-3-style
  /// half of the phase-split replay: t-outer / jb-inner with the row kept
  /// in pack accumulators across the whole jb sweep, so each element is
  /// loaded and stored once instead of once per jb. Per element the
  /// subtraction sequence is jb ascending -- exactly the j-outer loop's
  /// order -- so the phase split does not move a single rounding.
  static void supernode_trailing(double* drow, const double* snb,
                                 std::size_t kb, std::size_t bdim,
                                 std::size_t K) noexcept {
    if constexpr (KC != 0) {
      static_assert(KC % W == 0);
      constexpr std::size_t Q = KC / W;
      // 2-wide t-tile: each multiplier pack serves two output elements, so
      // the jb sweep loads lv once instead of twice. Lanes stay elementwise
      // and each element's jb order is still ascending -- no rounding moves.
      std::size_t t = kb;
      for (; t + 2 <= bdim; t += 2) {
        double* w0 = drow + t * KC;
        double* w1 = w0 + KC;
        P a0[Q];
        P a1[Q];
        for (std::size_t q = 0; q < Q; ++q) {
          a0[q] = P::load(w0 + q * W);
          a1[q] = P::load(w1 + q * W);
        }
        for (std::size_t jb = 0; jb < kb; ++jb) {
          const double* lv = drow + jb * KC;
          const double* uv = snb + (jb * bdim + t) * KC;
          for (std::size_t q = 0; q < Q; ++q) {
            const P m = P::load(lv + q * W);
            a0[q] = a0[q] - m * P::load(uv + q * W);
            a1[q] = a1[q] - m * P::load(uv + KC + q * W);
          }
        }
        for (std::size_t q = 0; q < Q; ++q) {
          a0[q].store(w0 + q * W);
          a1[q].store(w1 + q * W);
        }
      }
      for (; t < bdim; ++t) {
        double* wt = drow + t * KC;
        P acc[Q];
        for (std::size_t q = 0; q < Q; ++q) acc[q] = P::load(wt + q * W);
        for (std::size_t jb = 0; jb < kb; ++jb) {
          const double* lv = drow + jb * KC;
          const double* uv = snb + (jb * bdim + t) * KC;
          for (std::size_t q = 0; q < Q; ++q) {
            acc[q] = acc[q] - P::load(lv + q * W) * P::load(uv + q * W);
          }
        }
        for (std::size_t q = 0; q < Q; ++q) acc[q].store(wt + q * W);
      }
    } else {
      // Runtime K: no compile-time accumulator count, so accumulate in
      // place -- same per-element op order, one extra load/store per jb.
      for (std::size_t t = kb; t < bdim; ++t) {
        double* wt = drow + t * K;
        for (std::size_t jb = 0; jb < kb; ++jb) {
          submul(wt, drow + jb * K, snb + (jb * bdim + t) * K, K);
        }
      }
    }
  }
};

}  // namespace

template <typename Scalar>
void SparseLuFactorizationT<Scalar>::refactor_batch(
    const SparseValueBatchT<Scalar>& batch,
    std::vector<unsigned char>& lane_ok, double pivot_tol) {
  ICVBE_REQUIRE(batch.bound(), "sparse LU batch: bind the value batch first");
  ICVBE_REQUIRE(analyzed_ && pattern_stamp_ == batch.pattern_stamp() &&
                    n_ == batch.rows(),
                "sparse LU batch: refactor() a reference matrix sharing the "
                "batch's pattern before refactor_batch()");
  const std::size_t K = batch.lanes();
  ICVBE_REQUIRE(lane_ok.size() == K,
                "sparse LU batch: lane_ok size must equal the lane count");

  // (Re)shape the lane planes; steady state re-enters with the same
  // (analysis, K) and never allocates.
  if (batch_lanes_ != K || l_val_b_.size() != l_val_.size() * K ||
      u_val_b_.size() != u_val_.size() * K || udiag_b_.size() != n_ * K ||
      sn_val_b_.size() != sn_val_.size() * K ||
      off_val_b_.size() != off_val_.size() * K) {
    batch_lanes_ = K;
    l_val_b_.resize(l_val_.size() * K);
    u_val_b_.resize(u_val_.size() * K);
    udiag_b_.resize(n_ * K);
    sn_val_b_.resize(sn_val_.size() * K);
    off_val_b_.resize(off_val_.size() * K);
    work_b_.resize(n_ * K);
    colmax_b_.resize(n_ * K);
    amax_b_.resize(K);
    gmax_b_.resize(K);
    perm_b_.resize(n_ * K);
  }
  // Failed lanes may have left garbage in the scatter planes last call
  // (the scalar pass keeps work_ clean by construction; an aborted lane
  // cannot).
  std::fill(work_b_.begin(), work_b_.end(), Scalar{});
  std::fill(colmax_b_.begin(), colmax_b_.end(), 0.0);
  std::fill(amax_b_.begin(), amax_b_.end(), 0.0);
  std::fill(gmax_b_.begin(), gmax_b_.end(), 0.0);

  // Kernel selection. Real-valued batches take the pack policy (explicit
  // SIMD across the lane planes) with the common lane counts pinned at
  // compile time so the per-slot K-loops unroll flat -- at bandgap-cell
  // row sizes the loop control would otherwise cost as much as the
  // arithmetic. Complex batches and the runtime A/B baseline
  // (set_batch_simd(false)) take the scalar-lane policy, which is the
  // pre-SIMD kernel verbatim. Both policies run the identical per-lane FP
  // sequence, so the choice never changes a bit of the factors.
  if constexpr (std::is_same_v<Scalar, double>) {
    if (batch_simd_) {
      switch (K) {
        case 4:
          refactor_batch_kernel<PackLaneOps<4>>(batch, lane_ok, pivot_tol);
          return;
        case 8:
          refactor_batch_kernel<PackLaneOps<8>>(batch, lane_ok, pivot_tol);
          return;
        case 16:
          refactor_batch_kernel<PackLaneOps<16>>(batch, lane_ok, pivot_tol);
          return;
        default:
          refactor_batch_kernel<PackLaneOps<0>>(batch, lane_ok, pivot_tol);
          return;
      }
    }
  }
  refactor_batch_kernel<ScalarLaneOps<Scalar>>(batch, lane_ok, pivot_tol);
}

template <typename Scalar>
template <typename Ops>
void SparseLuFactorizationT<Scalar>::refactor_batch_kernel(
    const SparseValueBatchT<Scalar>& batch,
    std::vector<unsigned char>& lane_ok, double pivot_tol) {
  const std::size_t K = batch.lanes();
  // Per-lane input screen: the batched twin of refactor()'s prologue.
  // Non-finite values or an all-zero matrix fail the lane (where the
  // scalar path throws); the same pass fills the per-lane column maxima
  // for the column-relative pivot test.
  const std::vector<int>& cols = batch.pattern().col_index();
  const std::vector<Scalar>& vals = batch.values();
  const std::size_t nnz = vals.size() / K;
  for (std::size_t i = 0; i < nnz; ++i) {
    Ops::screen_input(
        lane_ok.data(), vals.data() + i * K, amax_b_.data(),
        colmax_b_.data() + static_cast<std::size_t>(cols[i]) * K, K);
  }
  for (std::size_t l = 0; l < K; ++l) {
    lane_ok[l] =
        static_cast<unsigned char>(lane_ok[l] & (amax_b_[l] > 0.0 ? 1 : 0));
    // The growth cap repurposes amax_b_ in place (amax is not needed
    // beyond this point).
    amax_b_[l] *= 1e8;  // kGrowthLimit, as in refactor_frozen
  }

  // Frozen numeric pass, all K lanes per elimination step. Each lane's
  // per-slot operation sequence is exactly refactor_frozen's, so a lane
  // that passes produces bit-identical factors to a scalar refactor of
  // the same values under this analysis. Lanes are arithmetically
  // independent: a rejected pivot only poisons its own plane.
  const std::vector<int>& row_ptr = batch.pattern().row_ptr();
  const std::size_t sn = sn_start_;
  const std::size_t bdim = n_ - sn;
  // Raw per-lane copies of the unfactored cross-block entries.
  for (std::size_t t = 0; t < off_a_idx_.size(); ++t) {
    Ops::copy(off_val_b_.data() + t * K,
              vals.data() + static_cast<std::size_t>(off_a_idx_[t]) * K, K);
  }
  for (std::size_t k = 0; k < n_; ++k) {
    const std::size_t r = static_cast<std::size_t>(rperm_[k]);
    for (int i = row_ptr[r]; i < row_ptr[r + 1]; ++i) {
      const int s = astep_[static_cast<std::size_t>(i)];
      if (s < 0) continue;
      Ops::add(work_b_.data() + static_cast<std::size_t>(s) * K,
               vals.data() + static_cast<std::size_t>(i) * K, K);
    }
    Scalar* dk = udiag_b_.data() + k * K;
    if (k < sn) {
      for (int li = l_ptr_[k]; li < l_ptr_[k + 1]; ++li) {
        const std::size_t j =
            static_cast<std::size_t>(l_step_[static_cast<std::size_t>(li)]);
        Scalar* lv = l_val_b_.data() + static_cast<std::size_t>(li) * K;
        Ops::div_take(lv, work_b_.data() + j * K, udiag_b_.data() + j * K,
                      K);
        for (int ui = u_ptr_[j]; ui < u_ptr_[j + 1]; ++ui) {
          Ops::submul(
              work_b_.data() +
                  static_cast<std::size_t>(
                      u_step_[static_cast<std::size_t>(ui)]) *
                      K,
              lv, u_val_b_.data() + static_cast<std::size_t>(ui) * K, K);
        }
      }
      Ops::take_absmax(dk, work_b_.data() + k * K, gmax_b_.data(), K);
      for (int ui = u_ptr_[k]; ui < u_ptr_[k + 1]; ++ui) {
        Ops::take_absmax(
            u_val_b_.data() + static_cast<std::size_t>(ui) * K,
            work_b_.data() +
                static_cast<std::size_t>(
                    u_step_[static_cast<std::size_t>(ui)]) *
                    K,
            gmax_b_.data(), K);
      }
    } else {
      // Dense supernode row, K lanes in lockstep -- per lane this is
      // exactly the scalar dense path's operation sequence, which is what
      // keeps batch factors bit-identical to scalar refactors.
      const std::size_t kb = k - sn;
      for (int li = l_ptr_[k]; li < l_ptr_[k + 1]; ++li) {
        const std::size_t j =
            static_cast<std::size_t>(l_step_[static_cast<std::size_t>(li)]);
        if (j >= sn) break;
        Scalar* lv = l_val_b_.data() + static_cast<std::size_t>(li) * K;
        Ops::div_take(lv, work_b_.data() + j * K, udiag_b_.data() + j * K,
                      K);
        for (int ui = u_ptr_[j]; ui < u_ptr_[j + 1]; ++ui) {
          Ops::submul(
              work_b_.data() +
                  static_cast<std::size_t>(
                      u_step_[static_cast<std::size_t>(ui)]) *
                      K,
              lv, u_val_b_.data() + static_cast<std::size_t>(ui) * K, K);
        }
      }
      Scalar* drow = sn_val_b_.data() + kb * bdim * K;
      Ops::take_flat(drow, work_b_.data() + sn * K, bdim * K);
      if constexpr (Ops::kTiled) {
        // Phase-split replay: multipliers and the leading (t < kb) updates
        // j-outer as before, then the trailing block register-tiled
        // t-outer (see supernode_trailing for the bit-identity argument).
        for (std::size_t jb = 0; jb < kb; ++jb) {
          Scalar* lv = drow + jb * K;
          Ops::div_inplace(lv, sn_val_b_.data() + (jb * bdim + jb) * K, K);
          const Scalar* urow = sn_val_b_.data() + jb * bdim * K;
          for (std::size_t t = jb + 1; t < kb; ++t) {
            Ops::submul(drow + t * K, lv, urow + t * K, K);
          }
        }
        Ops::supernode_trailing(drow, sn_val_b_.data(), kb, bdim, K);
      } else {
        for (std::size_t jb = 0; jb < kb; ++jb) {
          Scalar* lv = drow + jb * K;
          Ops::div_inplace(lv, sn_val_b_.data() + (jb * bdim + jb) * K, K);
          const Scalar* urow = sn_val_b_.data() + jb * bdim * K;
          for (std::size_t t = jb + 1; t < bdim; ++t) {
            Ops::submul(drow + t * K, lv, urow + t * K, K);
          }
        }
      }
      Ops::copy_absmax(dk, drow + kb * K, gmax_b_.data(), K);
      for (std::size_t t = kb + 1; t < bdim; ++t) {
        Ops::absmax(gmax_b_.data(), drow + t * K, K);
      }
    }
    // Same acceptance as the scalar frozen pass: pivot above its own
    // column's scale, growth bounded (amax_b_ now holds the cap).
    Ops::screen_pivot(lane_ok.data(), dk,
                      colmax_b_.data() +
                          static_cast<std::size_t>(cperm_[k]) * K,
                      gmax_b_.data(), amax_b_.data(), pivot_tol, K);
  }
  // Mirror the dense block planes back into the flat factor planes, as
  // the scalar frozen pass does for its factor arrays.
  for (std::size_t t = 0; t < sn_l_idx_.size(); ++t) {
    Ops::copy(l_val_b_.data() + static_cast<std::size_t>(sn_l_idx_[t]) * K,
              sn_val_b_.data() + static_cast<std::size_t>(sn_l_pos_[t]) * K,
              K);
  }
  for (std::size_t t = 0; t < sn_u_idx_.size(); ++t) {
    Ops::copy(u_val_b_.data() + static_cast<std::size_t>(sn_u_idx_[t]) * K,
              sn_val_b_.data() + static_cast<std::size_t>(sn_u_pos_[t]) * K,
              K);
  }
}

template <typename Scalar>
void SparseLuFactorizationT<Scalar>::solve_batch(
    std::vector<Scalar>& rhs) const {
  ICVBE_REQUIRE(batch_lanes_ > 0, "sparse LU batch: refactor_batch() first");
  ICVBE_REQUIRE(rhs.size() == n_ * batch_lanes_,
                "sparse LU batch solve: rhs size mismatch");
  // Same kernel selection as refactor_batch (see the comment there).
  if constexpr (std::is_same_v<Scalar, double>) {
    if (batch_simd_) {
      switch (batch_lanes_) {
        case 4:
          solve_batch_kernel<PackLaneOps<4>>(rhs);
          return;
        case 8:
          solve_batch_kernel<PackLaneOps<8>>(rhs);
          return;
        case 16:
          solve_batch_kernel<PackLaneOps<16>>(rhs);
          return;
        default:
          solve_batch_kernel<PackLaneOps<0>>(rhs);
          return;
      }
    }
  }
  solve_batch_kernel<ScalarLaneOps<Scalar>>(rhs);
}

template <typename Scalar>
template <typename Ops>
void SparseLuFactorizationT<Scalar>::solve_batch_kernel(
    std::vector<Scalar>& rhs) const {
  const std::size_t K = batch_lanes_;
  // Per lane this is exactly solve_in_place's operation sequence (the
  // running accumulator becomes in-place updates applied in the same
  // order, which is the same FP sequence).
  for (std::size_t k = 0; k < n_; ++k) {
    Ops::copy(perm_b_.data() + k * K,
              rhs.data() + static_cast<std::size_t>(rperm_[k]) * K, K);
  }
  // Block back-substitution mirroring solve_in_place, K lanes per step.
  for (std::size_t b = bstep_ptr_.size() - 1; b-- > 0;) {
    const std::size_t lo = static_cast<std::size_t>(bstep_ptr_[b]);
    const std::size_t hi = static_cast<std::size_t>(bstep_ptr_[b + 1]);
    for (std::size_t k = lo; k < hi; ++k) {
      Scalar* pk = perm_b_.data() + k * K;
      for (int t = off_ptr_[k]; t < off_ptr_[k + 1]; ++t) {
        Ops::submul(
            pk, off_val_b_.data() + static_cast<std::size_t>(t) * K,
            perm_b_.data() +
                static_cast<std::size_t>(
                    off_step_[static_cast<std::size_t>(t)]) *
                    K,
            K);
      }
    }
    for (std::size_t k = lo; k < hi; ++k) {
      Scalar* pk = perm_b_.data() + k * K;
      for (int li = l_ptr_[k]; li < l_ptr_[k + 1]; ++li) {
        Ops::submul(
            pk, l_val_b_.data() + static_cast<std::size_t>(li) * K,
            perm_b_.data() +
                static_cast<std::size_t>(
                    l_step_[static_cast<std::size_t>(li)]) *
                    K,
            K);
      }
    }
    for (std::size_t ki = hi; ki-- > lo;) {
      Scalar* pk = perm_b_.data() + ki * K;
      for (int ui = u_ptr_[ki]; ui < u_ptr_[ki + 1]; ++ui) {
        Ops::submul(
            pk, u_val_b_.data() + static_cast<std::size_t>(ui) * K,
            perm_b_.data() +
                static_cast<std::size_t>(
                    u_step_[static_cast<std::size_t>(ui)]) *
                    K,
            K);
      }
      Ops::div_inplace(pk, udiag_b_.data() + ki * K, K);
    }
  }
  for (std::size_t k = 0; k < n_; ++k) {
    Ops::copy(rhs.data() + static_cast<std::size_t>(cperm_[k]) * K,
              perm_b_.data() + k * K, K);
  }
}

template <typename Scalar>
void SparseLuFactorizationT<Scalar>::solve_in_place(
    VectorT<Scalar>& rhs) const {
  ICVBE_REQUIRE(analyzed_, "sparse LU: refactor() before solving");
  ICVBE_REQUIRE(rhs.size() == n_, "sparse LU solve: rhs size mismatch");
  // z = P b (step space).
  for (std::size_t k = 0; k < n_; ++k) {
    perm_[k] = rhs[static_cast<std::size_t>(rperm_[k])];
  }
  // Block back-substitution, last block first: the factor is
  // block-diagonal, so each block is an independent L/U solve once the
  // raw cross-block entries (columns of *later* blocks, whose x is final
  // by then) are deducted from its right-hand side. A single block is
  // exactly the classic forward/backward pass.
  for (std::size_t b = bstep_ptr_.size() - 1; b-- > 0;) {
    const std::size_t lo = static_cast<std::size_t>(bstep_ptr_[b]);
    const std::size_t hi = static_cast<std::size_t>(bstep_ptr_[b + 1]);
    for (std::size_t k = lo; k < hi; ++k) {
      Scalar acc = perm_[k];
      for (int t = off_ptr_[k]; t < off_ptr_[k + 1]; ++t) {
        acc -= off_val_[static_cast<std::size_t>(t)] *
               perm_[static_cast<std::size_t>(
                   off_step_[static_cast<std::size_t>(t)])];
      }
      perm_[k] = acc;
    }
    // Forward substitution with unit-lower L.
    for (std::size_t k = lo; k < hi; ++k) {
      Scalar acc = perm_[k];
      for (int li = l_ptr_[k]; li < l_ptr_[k + 1]; ++li) {
        acc -= l_val_[static_cast<std::size_t>(li)] *
               perm_[static_cast<std::size_t>(
                   l_step_[static_cast<std::size_t>(li)])];
      }
      perm_[k] = acc;
    }
    // Back substitution with U.
    for (std::size_t ki = hi; ki-- > lo;) {
      Scalar acc = perm_[ki];
      for (int ui = u_ptr_[ki]; ui < u_ptr_[ki + 1]; ++ui) {
        acc -= u_val_[static_cast<std::size_t>(ui)] *
               perm_[static_cast<std::size_t>(
                   u_step_[static_cast<std::size_t>(ui)])];
      }
      perm_[ki] = acc / udiag_[ki];
    }
  }
  // x = Q w (undo the column permutation).
  for (std::size_t k = 0; k < n_; ++k) {
    rhs[static_cast<std::size_t>(cperm_[k])] = perm_[k];
  }
}

template <typename Scalar>
VectorT<Scalar> SparseLuFactorizationT<Scalar>::solve(
    const VectorT<Scalar>& b) const {
  VectorT<Scalar> x = b;
  solve_in_place(x);
  return x;
}

template <typename Scalar>
double SparseLuFactorizationT<Scalar>::condition_estimate() const {
  ICVBE_REQUIRE(analyzed_, "sparse LU: refactor() before condition_estimate");
  // Probe |A^-1| by solving against the same +/-1 vectors the dense
  // LuFactorizationT uses and taking the largest column-sum growth; cheap
  // and adequate for diagnostics, and directly comparable across engines.
  double inv_norm = 0.0;
  VectorT<Scalar> e(n_, Scalar(1.0));
  for (int probe = 0; probe < 2; ++probe) {
    for (std::size_t i = 0; i < n_; ++i) {
      e[i] = (probe == 0) ? Scalar(1.0)
                          : ((i % 2) ? Scalar(-1.0) : Scalar(1.0));
    }
    const VectorT<Scalar> x = solve(e);
    double s = 0.0;
    for (const Scalar& v : x) s += scalar_abs(v);
    inv_norm = std::max(inv_norm, s / static_cast<double>(n_));
  }
  return a_norm1_ * inv_norm;
}

template class SparseLuFactorizationT<double>;
template class SparseLuFactorizationT<Complex>;

}  // namespace icvbe::linalg
