#include "icvbe/linalg/sparse.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <queue>
#include <set>
#include <string>

#include "icvbe/common/error.hpp"

namespace icvbe::linalg {

namespace {

/// Process-unique pattern stamps, shared across scalar instantiations so a
/// stamp value identifies one frozen CSR no matter which engine holds it.
std::atomic<std::uint64_t> g_next_pattern_stamp{1};

}  // namespace

// ------------------------------------------------------ SparseMatrixT ---

template <typename Scalar>
void SparseMatrixT<Scalar>::resize(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  frozen_ = false;
  coo_coords_.clear();
  coo_values_.clear();
  row_ptr_.clear();
  col_index_.clear();
  values_.clear();
}

template <typename Scalar>
void SparseMatrixT<Scalar>::add_building(std::size_t r, std::size_t c,
                                         Scalar v) {
  ICVBE_REQUIRE(r < rows_ && c < cols_, "SparseMatrix::add: out of range");
  coo_coords_.emplace_back(static_cast<int>(r), static_cast<int>(c));
  coo_values_.push_back(v);
}

template <typename Scalar>
std::size_t SparseMatrixT<Scalar>::slot(std::size_t r, std::size_t c) const {
  ICVBE_REQUIRE(r < rows_ && c < cols_, "SparseMatrix::add: out of range");
  const int* first = col_index_.data() + row_ptr_[r];
  const int* last = col_index_.data() + row_ptr_[r + 1];
  const int* it = std::lower_bound(first, last, static_cast<int>(c));
  if (it == last || *it != static_cast<int>(c)) {
    throw Error("SparseMatrix::add: entry outside the frozen pattern");
  }
  return static_cast<std::size_t>(it - col_index_.data());
}

template <typename Scalar>
void SparseMatrixT<Scalar>::freeze_pattern() {
  if (frozen_) return;

  // Sort the registrations (row, col) and merge duplicates by summation.
  std::vector<std::size_t> order(coo_coords_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [this](std::size_t a, std::size_t b) {
              return coo_coords_[a] < coo_coords_[b];
            });

  row_ptr_.assign(rows_ + 1, 0);
  col_index_.clear();
  values_.clear();
  col_index_.reserve(order.size());
  values_.reserve(order.size());
  int last_r = -1;
  int last_c = -1;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const auto [r, c] = coo_coords_[order[i]];
    const Scalar v = coo_values_[order[i]];
    if (r == last_r && c == last_c) {
      values_.back() += v;  // repeated registration of the same slot
      continue;
    }
    col_index_.push_back(c);
    values_.push_back(v);
    ++row_ptr_[static_cast<std::size_t>(r) + 1];  // per-row count for now
    last_r = r;
    last_c = c;
  }
  for (std::size_t r = 0; r < rows_; ++r) {  // counts -> offsets
    row_ptr_[r + 1] += row_ptr_[r];
  }

  coo_coords_.clear();
  coo_coords_.shrink_to_fit();
  coo_values_.clear();
  coo_values_.shrink_to_fit();
  frozen_ = true;
  pattern_stamp_ = g_next_pattern_stamp.fetch_add(1, std::memory_order_relaxed);
}

template <typename Scalar>
void SparseMatrixT<Scalar>::unfreeze() {
  if (!frozen_) return;
  coo_coords_.clear();
  coo_values_.clear();
  coo_coords_.reserve(values_.size());
  coo_values_.reserve(values_.size());
  for (std::size_t r = 0; r < rows_; ++r) {
    for (int i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      coo_coords_.emplace_back(static_cast<int>(r),
                               col_index_[static_cast<std::size_t>(i)]);
      coo_values_.push_back(values_[static_cast<std::size_t>(i)]);
    }
  }
  row_ptr_.clear();
  col_index_.clear();
  values_.clear();
  frozen_ = false;
}

template <typename Scalar>
void SparseMatrixT<Scalar>::fill(Scalar value) {
  ICVBE_REQUIRE(frozen_, "SparseMatrix::fill: freeze_pattern() first");
  std::fill(values_.begin(), values_.end(), value);
}

template <typename Scalar>
Scalar SparseMatrixT<Scalar>::at(std::size_t r, std::size_t c) const {
  ICVBE_REQUIRE(frozen_, "SparseMatrix::at: freeze_pattern() first");
  ICVBE_REQUIRE(r < rows_ && c < cols_, "SparseMatrix::at: out of range");
  const int* first = col_index_.data() + row_ptr_[r];
  const int* last = col_index_.data() + row_ptr_[r + 1];
  const int* it = std::lower_bound(first, last, static_cast<int>(c));
  if (it == last || *it != static_cast<int>(c)) return Scalar{};
  return values_[static_cast<std::size_t>(it - col_index_.data())];
}

template <typename Scalar>
MatrixT<Scalar> SparseMatrixT<Scalar>::to_dense() const {
  ICVBE_REQUIRE(frozen_, "SparseMatrix::to_dense: freeze_pattern() first");
  MatrixT<Scalar> m(rows_, cols_, Scalar{});
  for (std::size_t r = 0; r < rows_; ++r) {
    for (int i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      m(r, static_cast<std::size_t>(col_index_[static_cast<std::size_t>(i)])) =
          values_[static_cast<std::size_t>(i)];
    }
  }
  return m;
}

template <typename Scalar>
VectorT<Scalar> SparseMatrixT<Scalar>::multiply(
    const VectorT<Scalar>& v) const {
  ICVBE_REQUIRE(frozen_, "SparseMatrix::multiply: freeze_pattern() first");
  ICVBE_REQUIRE(v.size() == cols_, "SparseMatrix::multiply: size mismatch");
  VectorT<Scalar> out(rows_, Scalar{});
  for (std::size_t r = 0; r < rows_; ++r) {
    Scalar acc{};
    for (int i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      acc += values_[static_cast<std::size_t>(i)] *
             v[static_cast<std::size_t>(col_index_[static_cast<std::size_t>(i)])];
    }
    out[r] = acc;
  }
  return out;
}

template <typename Scalar>
double SparseMatrixT<Scalar>::max_abs() const {
  ICVBE_REQUIRE(frozen_, "SparseMatrix::max_abs: freeze_pattern() first");
  double m = 0.0;
  for (const Scalar& v : values_) m = std::max(m, scalar_abs(v));
  return m;
}

template class SparseMatrixT<double>;
template class SparseMatrixT<Complex>;

// ------------------------------------------------- SparseValueBatchT ---

template <typename Scalar>
void SparseValueBatchT<Scalar>::bind(const SparseMatrixT<Scalar>& pattern,
                                     std::size_t lanes) {
  ICVBE_REQUIRE(pattern.frozen(),
                "SparseValueBatch: freeze_pattern() before binding");
  ICVBE_REQUIRE(lanes > 0, "SparseValueBatch: need at least one lane");
  pattern_ = &pattern;
  lanes_ = lanes;
  values_.assign(pattern.nonzeros() * lanes, Scalar{});
}

template <typename Scalar>
const SparseMatrixT<Scalar>& SparseValueBatchT<Scalar>::pattern() const {
  ICVBE_REQUIRE(pattern_ != nullptr, "SparseValueBatch: bind() first");
  return *pattern_;
}

template <typename Scalar>
void SparseValueBatchT<Scalar>::clear_lane(std::size_t lane) {
  ICVBE_REQUIRE(lane < lanes_, "SparseValueBatch: lane out of range");
  Scalar* v = values_.data() + lane;
  const std::size_t nnz = values_.size() / lanes_;
  for (std::size_t i = 0; i < nnz; ++i) v[i * lanes_] = Scalar{};
}

template <typename Scalar>
void SparseValueBatchT<Scalar>::load_lane(std::size_t lane,
                                          const SparseMatrixT<Scalar>& m) {
  ICVBE_REQUIRE(lane < lanes_, "SparseValueBatch: lane out of range");
  ICVBE_REQUIRE(pattern_ != nullptr && m.pattern_stamp() == pattern_stamp(),
                "SparseValueBatch::load_lane: pattern mismatch");
  const std::vector<Scalar>& src = m.values();
  Scalar* v = values_.data() + lane;
  for (std::size_t i = 0; i < src.size(); ++i) v[i * lanes_] = src[i];
}

template class SparseValueBatchT<double>;
template class SparseValueBatchT<Complex>;

// -------------------------------------------- SparseLuFactorizationT ---

namespace {

/// Relative numeric threshold for the Markowitz-flavoured pivot choice:
/// among candidates within this factor of the largest available pivot the
/// structurally sparsest column wins. SPICE tradition uses 0.1; 0.5 buys
/// roughly two digits of factor accuracy on 1000-node meshes (measured
/// dense-vs-sparse agreement 1e-14 vs 1e-10) for a modest fill increase,
/// which the tight-tolerance equivalence suite relies on.
constexpr double kPivotRelThreshold = 0.5;

/// Fill-reducing minimum-degree ordering over the symmetrised pattern
/// (the textbook algorithm with explicit fill edges -- one-time cost, so
/// clarity beats the quotient-graph refinements). Purely structural, so it
/// is shared by both scalar instantiations. Ties break on the smallest
/// node index, keeping the order fully deterministic.
std::vector<int> minimum_degree_order(const std::vector<int>& row_ptr,
                                      const std::vector<int>& col_index,
                                      std::size_t n) {
  std::vector<std::set<int>> adj(n);
  for (std::size_t r = 0; r < n; ++r) {
    for (int i = row_ptr[r]; i < row_ptr[r + 1]; ++i) {
      const int c = col_index[static_cast<std::size_t>(i)];
      if (static_cast<std::size_t>(c) != r) {
        adj[r].insert(c);
        adj[static_cast<std::size_t>(c)].insert(static_cast<int>(r));
      }
    }
  }

  std::vector<char> eliminated(n, 0);
  std::vector<int> order;
  order.reserve(n);
  std::vector<int> clique;
  for (std::size_t step = 0; step < n; ++step) {
    int best = -1;
    std::size_t best_deg = n + 1;
    for (std::size_t v = 0; v < n; ++v) {
      if (!eliminated[v] && adj[v].size() < best_deg) {
        best = static_cast<int>(v);
        best_deg = adj[v].size();
      }
    }
    eliminated[static_cast<std::size_t>(best)] = 1;
    order.push_back(best);

    // Eliminating `best` couples its remaining neighbours into a clique.
    clique.assign(adj[static_cast<std::size_t>(best)].begin(),
                  adj[static_cast<std::size_t>(best)].end());
    for (int u : clique) adj[static_cast<std::size_t>(u)].erase(best);
    for (std::size_t i = 0; i < clique.size(); ++i) {
      for (std::size_t j = i + 1; j < clique.size(); ++j) {
        adj[static_cast<std::size_t>(clique[i])].insert(clique[j]);
        adj[static_cast<std::size_t>(clique[j])].insert(clique[i]);
      }
    }
    adj[static_cast<std::size_t>(best)].clear();
  }
  return order;
}

}  // namespace

template <typename Scalar>
bool SparseLuFactorizationT<Scalar>::pattern_matches(
    const SparseMatrixT<Scalar>& a) const {
  return analyzed_ && n_ == a.rows() && pattern_stamp_ == a.pattern_stamp();
}

template <typename Scalar>
void SparseLuFactorizationT<Scalar>::refactor(const SparseMatrixT<Scalar>& a,
                                              double pivot_tol) {
  ICVBE_REQUIRE(a.frozen(),
                "sparse LU: freeze_pattern() before factoring");
  ICVBE_REQUIRE(a.rows() == a.cols(), "sparse LU: matrix must be square");
  ICVBE_REQUIRE(a.rows() > 0, "sparse LU: empty matrix");

  // Deterministic input screening: a NaN would otherwise win or lose every
  // pivot comparison silently and only surface at the first solve. The
  // same pass fills the per-column maxima the column-relative pivot test
  // uses (AC systems legitimately span many decades across columns, so a
  // global max|A| threshold would misdiagnose them as singular).
  double amax = 0.0;
  bool finite = true;
  colmax_.assign(a.cols(), 0.0);
  {
    const std::vector<int>& cols = a.col_index();
    const std::vector<Scalar>& vals = a.values();
    for (std::size_t i = 0; i < vals.size(); ++i) {
      if (!scalar_is_finite(vals[i])) finite = false;
      const double v = scalar_abs(vals[i]);
      amax = std::max(amax, v);
      double& cm = colmax_[static_cast<std::size_t>(cols[i])];
      cm = std::max(cm, v);
    }
  }
  if (!finite) {
    throw NumericalError("sparse LU: matrix has non-finite entries");
  }
  if (amax == 0.0) {
    // Maximally singular, not API misuse: stay inside the Newton fallback
    // machinery like any other singular Jacobian (dense engine agrees).
    throw NumericalError("sparse LU: zero matrix");
  }

  if (!(pattern_matches(a) && refactor_frozen(a, pivot_tol, amax))) {
    // First factorisation, new pattern, or a frozen pivot collapsed: run
    // the full analysis with fresh pivoting.
    analyze(a, pivot_tol);
  }

  // 1-norm of A for condition_estimate(). perm_ (sized by the analysis
  // above) is free between solves -- solve_in_place overwrites it fully --
  // so borrowing it keeps refactor() allocation-free. Magnitude sums are
  // non-negative reals, so they live in the scalar's real part.
  std::fill(perm_.begin(), perm_.end(), Scalar{});
  const std::vector<int>& cols = a.col_index();
  const std::vector<Scalar>& vals = a.values();
  for (std::size_t i = 0; i < cols.size(); ++i) {
    perm_[static_cast<std::size_t>(cols[i])] += Scalar(scalar_abs(vals[i]));
  }
  a_norm1_ = 0.0;
  for (const Scalar& s : perm_) a_norm1_ = std::max(a_norm1_, scalar_abs(s));
}

template <typename Scalar>
void SparseLuFactorizationT<Scalar>::analyze(const SparseMatrixT<Scalar>& a,
                                             double pivot_tol) {
  const std::size_t n = a.rows();
  const std::vector<int>& row_ptr = a.row_ptr();
  const std::vector<int>& col_index = a.col_index();
  const std::vector<Scalar>& values = a.values();

  analyzed_ = false;
  n_ = n;

  rperm_ = minimum_degree_order(row_ptr, col_index, n);
  cstep_.assign(n, -1);
  cperm_.assign(n, -1);
  udiag_.assign(n, Scalar{});

  // Static column degrees of A: the sparsity half of the Markowitz cost.
  std::vector<int> coldeg(n, 0);
  for (int c : col_index) ++coldeg[static_cast<std::size_t>(c)];

  // Growing factor rows; frozen into flat arrays afterwards.
  std::vector<std::vector<std::pair<int, Scalar>>> lrows(n);  // (step, mult)
  std::vector<std::vector<std::pair<int, Scalar>>> urows(n);  // (col, val)

  std::vector<Scalar> w(n, Scalar{});  // dense scatter row, by column id
  std::vector<char> inpat(n, 0);
  std::vector<int> pattern;
  std::vector<char> step_seen(n, 0);
  std::vector<int> steps_touched;
  std::priority_queue<int, std::vector<int>, std::greater<int>> heap;

  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t r = static_cast<std::size_t>(rperm_[k]);
    // Scatter row r of A.
    for (int i = row_ptr[r]; i < row_ptr[r + 1]; ++i) {
      const int c = col_index[static_cast<std::size_t>(i)];
      inpat[static_cast<std::size_t>(c)] = 1;
      pattern.push_back(c);
      w[static_cast<std::size_t>(c)] = values[static_cast<std::size_t>(i)];
      const int js = cstep_[static_cast<std::size_t>(c)];
      if (js >= 0 && !step_seen[static_cast<std::size_t>(js)]) {
        step_seen[static_cast<std::size_t>(js)] = 1;
        steps_touched.push_back(js);
        heap.push(js);
      }
    }

    // Eliminate against earlier pivot rows in ascending step order. An
    // update from step j only reaches steps > j, so the heap pops each
    // dependency exactly when its value is final.
    while (!heap.empty()) {
      const int j = heap.top();
      heap.pop();
      const std::size_t cj = static_cast<std::size_t>(cperm_[j]);
      const Scalar lv = w[cj] / udiag_[static_cast<std::size_t>(j)];
      w[cj] = lv;  // L multiplier, kept in place for the gather below
      lrows[k].emplace_back(j, lv);
      for (const auto& [uc, uv] : urows[static_cast<std::size_t>(j)]) {
        const std::size_t u = static_cast<std::size_t>(uc);
        if (!inpat[u]) {
          inpat[u] = 1;
          pattern.push_back(uc);
          w[u] = Scalar{};
          const int us = cstep_[u];
          if (us >= 0 && !step_seen[static_cast<std::size_t>(us)]) {
            step_seen[static_cast<std::size_t>(us)] = 1;
            steps_touched.push_back(us);
            heap.push(us);
          }
        }
        w[u] -= lv * uv;
      }
    }

    // Pivot choice among the not-yet-pivoted columns: numerically
    // acceptable (column-relative magnitude floor, then threshold partial
    // pivoting against the largest acceptable candidate), then
    // structurally sparsest. The inverted comparisons reject NaN, and
    // 0 > 0 being false keeps an exactly zero pivot out even when the
    // tolerance product underflows to 0.
    double umax = 0.0;
    for (int c : pattern) {
      const std::size_t ci = static_cast<std::size_t>(c);
      if (cstep_[ci] >= 0) continue;
      if (!(scalar_abs(w[ci]) > pivot_tol * colmax_[ci])) continue;
      umax = std::max(umax, scalar_abs(w[ci]));
    }
    if (!(umax > 0.0)) {
      throw NumericalError(
          "sparse LU: matrix is singular to working precision at "
          "elimination step " +
          std::to_string(k) + " of " + std::to_string(n));
    }
    int best_col = -1;
    for (int c : pattern) {
      const std::size_t ci = static_cast<std::size_t>(c);
      if (cstep_[ci] >= 0) continue;
      if (!(scalar_abs(w[ci]) > pivot_tol * colmax_[ci])) continue;
      if (scalar_abs(w[ci]) < kPivotRelThreshold * umax) continue;
      if (best_col < 0 ||
          coldeg[ci] < coldeg[static_cast<std::size_t>(best_col)] ||
          (coldeg[ci] == coldeg[static_cast<std::size_t>(best_col)] &&
           c < best_col)) {
        best_col = c;
      }
    }
    cstep_[static_cast<std::size_t>(best_col)] = static_cast<int>(k);
    cperm_[k] = best_col;
    udiag_[k] = w[static_cast<std::size_t>(best_col)];

    // Record this row's U part -- every pattern position, including exact
    // numeric zeros: the fill pattern must not depend on the operating
    // point the analysis happened to run at.
    for (int c : pattern) {
      if (cstep_[static_cast<std::size_t>(c)] < 0) {
        urows[k].emplace_back(c, w[static_cast<std::size_t>(c)]);
      }
    }

    // Reset scratch state for the next row.
    for (int c : pattern) {
      inpat[static_cast<std::size_t>(c)] = 0;
      w[static_cast<std::size_t>(c)] = Scalar{};
    }
    pattern.clear();
    for (int s : steps_touched) step_seen[static_cast<std::size_t>(s)] = 0;
    steps_touched.clear();
  }

  // Freeze into flat step-space arrays for the allocation-free refactor.
  l_ptr_.assign(n + 1, 0);
  u_ptr_.assign(n + 1, 0);
  std::size_t l_nnz = 0;
  std::size_t u_nnz = 0;
  for (std::size_t k = 0; k < n; ++k) {
    l_nnz += lrows[k].size();
    u_nnz += urows[k].size();
    l_ptr_[k + 1] = static_cast<int>(l_nnz);
    u_ptr_[k + 1] = static_cast<int>(u_nnz);
  }
  l_step_.resize(l_nnz);
  l_val_.resize(l_nnz);
  u_step_.resize(u_nnz);
  u_val_.resize(u_nnz);
  std::vector<std::pair<int, Scalar>> urow_steps;
  for (std::size_t k = 0; k < n; ++k) {
    // L rows were emitted in ascending step order already.
    for (std::size_t i = 0; i < lrows[k].size(); ++i) {
      l_step_[static_cast<std::size_t>(l_ptr_[k]) + i] = lrows[k][i].first;
      l_val_[static_cast<std::size_t>(l_ptr_[k]) + i] = lrows[k][i].second;
    }
    // U rows were recorded by column id; remap to the (now complete) pivot
    // steps and sort ascending.
    urow_steps.clear();
    for (const auto& [c, v] : urows[k]) {
      urow_steps.emplace_back(cstep_[static_cast<std::size_t>(c)], v);
    }
    std::sort(urow_steps.begin(), urow_steps.end(),
              [](const auto& x, const auto& y) { return x.first < y.first; });
    for (std::size_t i = 0; i < urow_steps.size(); ++i) {
      u_step_[static_cast<std::size_t>(u_ptr_[k]) + i] = urow_steps[i].first;
      u_val_[static_cast<std::size_t>(u_ptr_[k]) + i] = urow_steps[i].second;
    }
  }

  // Scatter map: A entry i lands in step-space slot astep_[i].
  astep_.resize(col_index.size());
  for (std::size_t i = 0; i < col_index.size(); ++i) {
    astep_[i] = cstep_[static_cast<std::size_t>(col_index[i])];
  }

  work_.assign(n, Scalar{});
  perm_.assign(n, Scalar{});
  pattern_stamp_ = a.pattern_stamp();
  analyzed_ = true;
  ++analysis_count_;
}

template <typename Scalar>
bool SparseLuFactorizationT<Scalar>::refactor_frozen(
    const SparseMatrixT<Scalar>& a, double pivot_tol, double amax) {
  const std::size_t n = n_;
  const std::vector<int>& row_ptr = a.row_ptr();
  const std::vector<Scalar>& values = a.values();

  // Element-growth guard: with the pivot order frozen there is no
  // numerical pivoting left, so a restamp whose value distribution differs
  // wildly from the analysed one (a transient step's huge companion
  // conductances, or an AC restamp decades away in frequency, say) can
  // blow the factors up and yield a finite but garbage solution. Growth
  // beyond this factor over max|A| aborts the frozen pass; the caller
  // re-analyses with fresh pivoting (partial pivoting keeps growth within
  // ~2^n theory, single digits in practice).
  constexpr double kGrowthLimit = 1e8;
  const double growth_cap = kGrowthLimit * amax;
  double gmax = 0.0;

  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t r = static_cast<std::size_t>(rperm_[k]);
    for (int i = row_ptr[r]; i < row_ptr[r + 1]; ++i) {
      work_[static_cast<std::size_t>(astep_[static_cast<std::size_t>(i)])] +=
          values[static_cast<std::size_t>(i)];
    }
    for (int li = l_ptr_[k]; li < l_ptr_[k + 1]; ++li) {
      const std::size_t j =
          static_cast<std::size_t>(l_step_[static_cast<std::size_t>(li)]);
      const Scalar lv = work_[j] / udiag_[j];
      l_val_[static_cast<std::size_t>(li)] = lv;
      work_[j] = Scalar{};
      for (int ui = u_ptr_[j]; ui < u_ptr_[j + 1]; ++ui) {
        work_[static_cast<std::size_t>(u_step_[static_cast<std::size_t>(ui)])] -=
            lv * u_val_[static_cast<std::size_t>(ui)];
      }
    }
    const Scalar d = work_[k];
    work_[k] = Scalar{};
    gmax = std::max(gmax, scalar_abs(d));
    for (int ui = u_ptr_[k]; ui < u_ptr_[k + 1]; ++ui) {
      const std::size_t us =
          static_cast<std::size_t>(u_step_[static_cast<std::size_t>(ui)]);
      const Scalar uv = work_[us];
      u_val_[static_cast<std::size_t>(ui)] = uv;
      gmax = std::max(gmax, scalar_abs(uv));
      work_[us] = Scalar{};
    }
    const double tol =
        pivot_tol * colmax_[static_cast<std::size_t>(cperm_[k])];
    if (!(scalar_abs(d) > tol) || gmax > growth_cap) {
      // Frozen pivot collapsed (judged against its own column's current
      // scale) or the factors are blowing up (the matrix may still be
      // fine under a different order); work_ is already clean for the
      // re-analysis -- both checks run after this row's gather.
      return false;
    }
    udiag_[k] = d;
  }
  return true;
}

template <typename Scalar>
void SparseLuFactorizationT<Scalar>::refactor_batch(
    const SparseValueBatchT<Scalar>& batch,
    std::vector<unsigned char>& lane_ok, double pivot_tol) {
  ICVBE_REQUIRE(batch.bound(), "sparse LU batch: bind the value batch first");
  ICVBE_REQUIRE(analyzed_ && pattern_stamp_ == batch.pattern_stamp() &&
                    n_ == batch.rows(),
                "sparse LU batch: refactor() a reference matrix sharing the "
                "batch's pattern before refactor_batch()");
  const std::size_t K = batch.lanes();
  ICVBE_REQUIRE(lane_ok.size() == K,
                "sparse LU batch: lane_ok size must equal the lane count");

  // (Re)shape the lane planes; steady state re-enters with the same
  // (analysis, K) and never allocates.
  if (batch_lanes_ != K || l_val_b_.size() != l_val_.size() * K ||
      u_val_b_.size() != u_val_.size() * K || udiag_b_.size() != n_ * K) {
    batch_lanes_ = K;
    l_val_b_.resize(l_val_.size() * K);
    u_val_b_.resize(u_val_.size() * K);
    udiag_b_.resize(n_ * K);
    work_b_.resize(n_ * K);
    colmax_b_.resize(n_ * K);
    amax_b_.resize(K);
    gmax_b_.resize(K);
    perm_b_.resize(n_ * K);
  }
  // Failed lanes may have left garbage in the scatter planes last call
  // (the scalar pass keeps work_ clean by construction; an aborted lane
  // cannot).
  std::fill(work_b_.begin(), work_b_.end(), Scalar{});
  std::fill(colmax_b_.begin(), colmax_b_.end(), 0.0);
  std::fill(amax_b_.begin(), amax_b_.end(), 0.0);
  std::fill(gmax_b_.begin(), gmax_b_.end(), 0.0);

  // Per-lane input screen: the batched twin of refactor()'s prologue.
  // Non-finite values or an all-zero matrix fail the lane (where the
  // scalar path throws); the same pass fills the per-lane column maxima
  // for the column-relative pivot test.
  const std::vector<int>& cols = batch.pattern().col_index();
  const std::vector<Scalar>& vals = batch.values();
  const std::size_t nnz = vals.size() / K;
  for (std::size_t i = 0; i < nnz; ++i) {
    const Scalar* v = vals.data() + i * K;
    double* cm = colmax_b_.data() + static_cast<std::size_t>(cols[i]) * K;
    for (std::size_t l = 0; l < K; ++l) {
      lane_ok[l] = static_cast<unsigned char>(
          lane_ok[l] & static_cast<unsigned char>(scalar_is_finite(v[l])));
      const double m = scalar_abs(v[l]);
      amax_b_[l] = std::max(amax_b_[l], m);
      cm[l] = std::max(cm[l], m);
    }
  }
  for (std::size_t l = 0; l < K; ++l) {
    lane_ok[l] =
        static_cast<unsigned char>(lane_ok[l] & (amax_b_[l] > 0.0 ? 1 : 0));
    // The growth cap repurposes amax_b_ in place (amax is not needed
    // beyond this point).
    amax_b_[l] *= 1e8;  // kGrowthLimit, as in refactor_frozen
  }

  // Frozen numeric pass, all K lanes per elimination step. Each lane's
  // per-slot operation sequence is exactly refactor_frozen's, so a lane
  // that passes produces bit-identical factors to a scalar refactor of
  // the same values under this analysis. Lanes are arithmetically
  // independent: a rejected pivot only poisons its own plane.
  const std::vector<int>& row_ptr = batch.pattern().row_ptr();
  for (std::size_t k = 0; k < n_; ++k) {
    const std::size_t r = static_cast<std::size_t>(rperm_[k]);
    for (int i = row_ptr[r]; i < row_ptr[r + 1]; ++i) {
      Scalar* w =
          work_b_.data() +
          static_cast<std::size_t>(astep_[static_cast<std::size_t>(i)]) * K;
      const Scalar* v = vals.data() + static_cast<std::size_t>(i) * K;
      for (std::size_t l = 0; l < K; ++l) w[l] += v[l];
    }
    for (int li = l_ptr_[k]; li < l_ptr_[k + 1]; ++li) {
      const std::size_t j =
          static_cast<std::size_t>(l_step_[static_cast<std::size_t>(li)]);
      Scalar* wj = work_b_.data() + j * K;
      Scalar* lv = l_val_b_.data() + static_cast<std::size_t>(li) * K;
      const Scalar* dj = udiag_b_.data() + j * K;
      for (std::size_t l = 0; l < K; ++l) {
        lv[l] = wj[l] / dj[l];
        wj[l] = Scalar{};
      }
      for (int ui = u_ptr_[j]; ui < u_ptr_[j + 1]; ++ui) {
        Scalar* wu =
            work_b_.data() +
            static_cast<std::size_t>(u_step_[static_cast<std::size_t>(ui)]) *
                K;
        const Scalar* uv =
            u_val_b_.data() + static_cast<std::size_t>(ui) * K;
        for (std::size_t l = 0; l < K; ++l) wu[l] -= lv[l] * uv[l];
      }
    }
    Scalar* wd = work_b_.data() + k * K;
    Scalar* dk = udiag_b_.data() + k * K;
    for (std::size_t l = 0; l < K; ++l) {
      dk[l] = wd[l];
      wd[l] = Scalar{};
      gmax_b_[l] = std::max(gmax_b_[l], scalar_abs(dk[l]));
    }
    for (int ui = u_ptr_[k]; ui < u_ptr_[k + 1]; ++ui) {
      Scalar* wu =
          work_b_.data() +
          static_cast<std::size_t>(u_step_[static_cast<std::size_t>(ui)]) * K;
      Scalar* uv = u_val_b_.data() + static_cast<std::size_t>(ui) * K;
      for (std::size_t l = 0; l < K; ++l) {
        uv[l] = wu[l];
        gmax_b_[l] = std::max(gmax_b_[l], scalar_abs(uv[l]));
        wu[l] = Scalar{};
      }
    }
    const double* cm =
        colmax_b_.data() + static_cast<std::size_t>(cperm_[k]) * K;
    for (std::size_t l = 0; l < K; ++l) {
      // Same acceptance as the scalar frozen pass: pivot above its own
      // column's scale, growth bounded (amax_b_ now holds the cap). The
      // inverted comparison rejects NaN.
      lane_ok[l] = static_cast<unsigned char>(
          lane_ok[l] &
          static_cast<unsigned char>(scalar_abs(dk[l]) >
                                     pivot_tol * cm[l]) &
          static_cast<unsigned char>(!(gmax_b_[l] > amax_b_[l])));
    }
  }
}

template <typename Scalar>
void SparseLuFactorizationT<Scalar>::solve_batch(
    std::vector<Scalar>& rhs) const {
  ICVBE_REQUIRE(batch_lanes_ > 0, "sparse LU batch: refactor_batch() first");
  ICVBE_REQUIRE(rhs.size() == n_ * batch_lanes_,
                "sparse LU batch solve: rhs size mismatch");
  const std::size_t K = batch_lanes_;
  // Per lane this is exactly solve_in_place's operation sequence (the
  // running accumulator becomes in-place updates applied in the same
  // order, which is the same FP sequence).
  for (std::size_t k = 0; k < n_; ++k) {
    const Scalar* src =
        rhs.data() + static_cast<std::size_t>(rperm_[k]) * K;
    Scalar* dst = perm_b_.data() + k * K;
    for (std::size_t l = 0; l < K; ++l) dst[l] = src[l];
  }
  for (std::size_t k = 0; k < n_; ++k) {
    Scalar* pk = perm_b_.data() + k * K;
    for (int li = l_ptr_[k]; li < l_ptr_[k + 1]; ++li) {
      const Scalar* lv =
          l_val_b_.data() + static_cast<std::size_t>(li) * K;
      const Scalar* pj =
          perm_b_.data() +
          static_cast<std::size_t>(l_step_[static_cast<std::size_t>(li)]) * K;
      for (std::size_t l = 0; l < K; ++l) pk[l] -= lv[l] * pj[l];
    }
  }
  for (std::size_t ki = n_; ki-- > 0;) {
    Scalar* pk = perm_b_.data() + ki * K;
    for (int ui = u_ptr_[ki]; ui < u_ptr_[ki + 1]; ++ui) {
      const Scalar* uv =
          u_val_b_.data() + static_cast<std::size_t>(ui) * K;
      const Scalar* pu =
          perm_b_.data() +
          static_cast<std::size_t>(u_step_[static_cast<std::size_t>(ui)]) * K;
      for (std::size_t l = 0; l < K; ++l) pk[l] -= uv[l] * pu[l];
    }
    const Scalar* dk = udiag_b_.data() + ki * K;
    for (std::size_t l = 0; l < K; ++l) pk[l] /= dk[l];
  }
  for (std::size_t k = 0; k < n_; ++k) {
    const Scalar* src = perm_b_.data() + k * K;
    Scalar* dst = rhs.data() + static_cast<std::size_t>(cperm_[k]) * K;
    for (std::size_t l = 0; l < K; ++l) dst[l] = src[l];
  }
}

template <typename Scalar>
void SparseLuFactorizationT<Scalar>::solve_in_place(
    VectorT<Scalar>& rhs) const {
  ICVBE_REQUIRE(analyzed_, "sparse LU: refactor() before solving");
  ICVBE_REQUIRE(rhs.size() == n_, "sparse LU solve: rhs size mismatch");
  // z = P b (step space).
  for (std::size_t k = 0; k < n_; ++k) {
    perm_[k] = rhs[static_cast<std::size_t>(rperm_[k])];
  }
  // Forward substitution with unit-lower L.
  for (std::size_t k = 0; k < n_; ++k) {
    Scalar acc = perm_[k];
    for (int li = l_ptr_[k]; li < l_ptr_[k + 1]; ++li) {
      acc -= l_val_[static_cast<std::size_t>(li)] *
             perm_[static_cast<std::size_t>(l_step_[static_cast<std::size_t>(li)])];
    }
    perm_[k] = acc;
  }
  // Back substitution with U.
  for (std::size_t ki = n_; ki-- > 0;) {
    Scalar acc = perm_[ki];
    for (int ui = u_ptr_[ki]; ui < u_ptr_[ki + 1]; ++ui) {
      acc -= u_val_[static_cast<std::size_t>(ui)] *
             perm_[static_cast<std::size_t>(u_step_[static_cast<std::size_t>(ui)])];
    }
    perm_[ki] = acc / udiag_[ki];
  }
  // x = Q w (undo the column permutation).
  for (std::size_t k = 0; k < n_; ++k) {
    rhs[static_cast<std::size_t>(cperm_[k])] = perm_[k];
  }
}

template <typename Scalar>
VectorT<Scalar> SparseLuFactorizationT<Scalar>::solve(
    const VectorT<Scalar>& b) const {
  VectorT<Scalar> x = b;
  solve_in_place(x);
  return x;
}

template <typename Scalar>
double SparseLuFactorizationT<Scalar>::condition_estimate() const {
  ICVBE_REQUIRE(analyzed_, "sparse LU: refactor() before condition_estimate");
  // Probe |A^-1| by solving against the same +/-1 vectors the dense
  // LuFactorizationT uses and taking the largest column-sum growth; cheap
  // and adequate for diagnostics, and directly comparable across engines.
  double inv_norm = 0.0;
  VectorT<Scalar> e(n_, Scalar(1.0));
  for (int probe = 0; probe < 2; ++probe) {
    for (std::size_t i = 0; i < n_; ++i) {
      e[i] = (probe == 0) ? Scalar(1.0)
                          : ((i % 2) ? Scalar(-1.0) : Scalar(1.0));
    }
    const VectorT<Scalar> x = solve(e);
    double s = 0.0;
    for (const Scalar& v : x) s += scalar_abs(v);
    inv_norm = std::max(inv_norm, s / static_cast<double>(n_));
  }
  return a_norm1_ * inv_norm;
}

template class SparseLuFactorizationT<double>;
template class SparseLuFactorizationT<Complex>;

}  // namespace icvbe::linalg
