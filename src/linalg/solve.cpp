#include "icvbe/linalg/solve.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "icvbe/common/error.hpp"

namespace icvbe::linalg {

template <typename Scalar>
LuFactorizationT<Scalar>::LuFactorizationT(MatrixT<Scalar> a,
                                           double pivot_tol)
    : lu_(std::move(a)), piv_(lu_.rows()) {
  factor_in_place(pivot_tol);
}

template <typename Scalar>
void LuFactorizationT<Scalar>::refactor(const MatrixT<Scalar>& a,
                                        double pivot_tol) {
  lu_ = a;              // same-size assignment reuses the existing storage
  piv_.resize(lu_.rows());
  a_norm1_ = 0.0;
  pivot_sign_ = 1;
  factor_in_place(pivot_tol);
}

template <typename Scalar>
void LuFactorizationT<Scalar>::factor_in_place(double pivot_tol) {
  ICVBE_REQUIRE(lu_.rows() == lu_.cols(), "LU: matrix must be square");
  const std::size_t n = lu_.rows();
  ICVBE_REQUIRE(n > 0, "LU: empty matrix");

  // 1-norm of A, kept for the condition estimate. The column sums double
  // as a deterministic non-finite screen: a NaN loses every pivot
  // comparison and an Inf wins them all, so either would otherwise factor
  // "successfully" and only surface at the first solve. (Complex scalars:
  // scalar_abs of a non-finite component is NaN or Inf, so the same sum
  // catches them.) The per-column maxima feed the singularity test below:
  // AC systems legitimately span many decades across columns (a
  // loop-break inductor's j*omega*L next to microsiemens conductances),
  // so a pivot is judged against its own column's scale, never the global
  // max|A|. colmax_ is a member so the pass stays allocation-free on
  // workspace reuse.
  colmax_.resize(n);
  for (std::size_t c = 0; c < n; ++c) {
    double col = 0.0;
    double cmax = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      const double v = scalar_abs(lu_(r, c));
      col += v;
      cmax = std::max(cmax, v);
    }
    if (!std::isfinite(col)) {
      throw NumericalError("LU: matrix has non-finite entries");
    }
    a_norm1_ = std::max(a_norm1_, col);
    colmax_[c] = cmax;
  }

  if (lu_.max_abs() == 0.0) {
    // A numerically zero matrix is a (maximally) singular system, not an
    // API misuse: NumericalError keeps it inside the Newton fallback
    // machinery, same as any other singular Jacobian.
    throw NumericalError("LU: zero matrix");
  }

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot: largest magnitude in column k at/below the diagonal.
    std::size_t p = k;
    double best = scalar_abs(lu_(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double v = scalar_abs(lu_(r, k));
      if (v > best) {
        best = v;
        p = r;
      }
    }
    // Deterministic singularity detection at factor time, relative to the
    // pivot column's own original scale (see the colmax_ comment). The
    // inverted comparison (!(best > tol)) rejects a NaN pivot and,
    // because 0 > 0 is false, also closes the denormal-range hole where
    // pivot_tol * colmax underflows to 0.0 and an exactly zero pivot
    // would previously sail through (old test: best < tol) until the
    // first solve divided by it. An all-zero column has colmax 0, so
    // best = 0 still fails the test.
    if (!(best > pivot_tol * colmax_[k])) {
      throw NumericalError("LU: matrix is singular to working precision");
    }
    piv_[k] = p;
    if (p != k) {
      pivot_sign_ = -pivot_sign_;
      for (std::size_t c = 0; c < n; ++c) std::swap(lu_(k, c), lu_(p, c));
    }
    const Scalar pivot = lu_(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const Scalar m = lu_(r, k) / pivot;
      lu_(r, k) = m;
      if (m == Scalar{}) continue;
      for (std::size_t c = k + 1; c < n; ++c) lu_(r, c) -= m * lu_(k, c);
    }
  }
}

template <typename Scalar>
VectorT<Scalar> LuFactorizationT<Scalar>::solve(
    const VectorT<Scalar>& b) const {
  VectorT<Scalar> x = b;
  solve_in_place(x);
  return x;
}

template <typename Scalar>
void LuFactorizationT<Scalar>::solve_in_place(VectorT<Scalar>& rhs) const {
  const std::size_t n = lu_.rows();
  ICVBE_REQUIRE(rhs.size() == n, "LU::solve: rhs size mismatch");
  VectorT<Scalar>& x = rhs;
  for (std::size_t k = 0; k < n; ++k) {
    if (piv_[k] != k) std::swap(x[k], x[piv_[k]]);
  }
  // Forward substitution with unit-lower L.
  for (std::size_t r = 1; r < n; ++r) {
    Scalar acc = x[r];
    for (std::size_t c = 0; c < r; ++c) acc -= lu_(r, c) * x[c];
    x[r] = acc;
  }
  // Back substitution with U.
  for (std::size_t ri = n; ri-- > 0;) {
    Scalar acc = x[ri];
    for (std::size_t c = ri + 1; c < n; ++c) acc -= lu_(ri, c) * x[c];
    x[ri] = acc / lu_(ri, ri);
  }
}

template <typename Scalar>
Scalar LuFactorizationT<Scalar>::determinant() const {
  Scalar det = Scalar(static_cast<double>(pivot_sign_));
  for (std::size_t i = 0; i < lu_.rows(); ++i) det *= lu_(i, i);
  return det;
}

template <typename Scalar>
double LuFactorizationT<Scalar>::condition_estimate() const {
  // Probe |A^-1| by solving against a handful of +/-1 vectors and taking
  // the largest column-sum growth. Cheap and adequate for diagnostics.
  const std::size_t n = lu_.rows();
  double inv_norm = 0.0;
  VectorT<Scalar> e(n, Scalar(1.0));
  for (int probe = 0; probe < 2; ++probe) {
    for (std::size_t i = 0; i < n; ++i) {
      e[i] = (probe == 0) ? Scalar(1.0)
                          : ((i % 2) ? Scalar(-1.0) : Scalar(1.0));
    }
    VectorT<Scalar> x = solve(e);
    double s = 0.0;
    for (const Scalar& v : x) s += scalar_abs(v);
    inv_norm = std::max(inv_norm, s / static_cast<double>(n));
  }
  return a_norm1_ * inv_norm;
}

template class LuFactorizationT<double>;
template class LuFactorizationT<Complex>;

Vector lu_solve(Matrix a, const Vector& b) {
  return LuFactorization(std::move(a)).solve(b);
}

ComplexVector lu_solve(ComplexMatrix a, const ComplexVector& b) {
  return ComplexLuFactorization(std::move(a)).solve(b);
}

QrFactorization::QrFactorization(Matrix a) : qr_(std::move(a)) {
  const std::size_t m = qr_.rows();
  const std::size_t n = qr_.cols();
  ICVBE_REQUIRE(m >= n && n > 0, "QR: need m >= n >= 1");
  beta_.assign(n, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    // Householder vector for column k.
    double norm = 0.0;
    for (std::size_t r = k; r < m; ++r) norm += qr_(r, k) * qr_(r, k);
    norm = std::sqrt(norm);
    if (norm == 0.0) {
      beta_[k] = 0.0;  // column already zero below (and at) the diagonal
      continue;
    }
    const double alpha = (qr_(k, k) >= 0.0) ? -norm : norm;
    double v0 = qr_(k, k) - alpha;
    // Normalise the Householder vector so its k-th entry is 1.
    beta_[k] = -v0 / alpha;  // = 2 / (v^T v) * v0^2 ... classic LAPACK form
    for (std::size_t r = k + 1; r < m; ++r) qr_(r, k) /= v0;
    qr_(k, k) = alpha;
    // Apply H_k = I - beta v v^T to the trailing columns.
    for (std::size_t c = k + 1; c < n; ++c) {
      double s = qr_(k, c);
      for (std::size_t r = k + 1; r < m; ++r) s += qr_(r, k) * qr_(r, c);
      s *= beta_[k];
      qr_(k, c) -= s;
      for (std::size_t r = k + 1; r < m; ++r) qr_(r, c) -= s * qr_(r, k);
    }
  }
}

Vector QrFactorization::apply_qt(const Vector& b) const {
  const std::size_t m = qr_.rows();
  const std::size_t n = qr_.cols();
  ICVBE_REQUIRE(b.size() == m, "QR::apply_qt: size mismatch");
  Vector y = b;
  for (std::size_t k = 0; k < n; ++k) {
    if (beta_[k] == 0.0) continue;
    double s = y[k];
    for (std::size_t r = k + 1; r < m; ++r) s += qr_(r, k) * y[r];
    s *= beta_[k];
    y[k] -= s;
    for (std::size_t r = k + 1; r < m; ++r) y[r] -= s * qr_(r, k);
  }
  return y;
}

Vector QrFactorization::solve_r(const Vector& y, double rank_tol) const {
  const std::size_t n = qr_.cols();
  ICVBE_REQUIRE(y.size() >= n, "QR::solve_r: rhs too short");
  const double r00 = std::abs(qr_(0, 0));
  Vector x(n, 0.0);
  for (std::size_t ki = n; ki-- > 0;) {
    if (std::abs(qr_(ki, ki)) < rank_tol * std::max(r00, 1e-300)) {
      throw NumericalError("QR: rank-deficient system (|R(k,k)| ~ 0)");
    }
    double acc = y[ki];
    for (std::size_t c = ki + 1; c < n; ++c) acc -= qr_(ki, c) * x[c];
    x[ki] = acc / qr_(ki, ki);
  }
  return x;
}

Vector QrFactorization::solve_least_squares(const Vector& b,
                                            double rank_tol) const {
  return solve_r(apply_qt(b), rank_tol);
}

Vector QrFactorization::r_diagonal() const {
  const std::size_t n = qr_.cols();
  Vector d(n);
  for (std::size_t i = 0; i < n; ++i) d[i] = qr_(i, i);
  return d;
}

Vector qr_least_squares(Matrix a, const Vector& b) {
  return QrFactorization(std::move(a)).solve_least_squares(b);
}

std::pair<double, double> solve2x2(double a11, double a12, double a21,
                                   double a22, double b1, double b2) {
  const double det = a11 * a22 - a12 * a21;
  const double scale = std::max({std::abs(a11), std::abs(a12), std::abs(a21),
                                 std::abs(a22)});
  if (scale == 0.0 || std::abs(det) < 1e-14 * scale * scale) {
    throw NumericalError("solve2x2: singular system");
  }
  return {(b1 * a22 - b2 * a12) / det, (a11 * b2 - a21 * b1) / det};
}

}  // namespace icvbe::linalg
