#include "icvbe/common/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>

#include "icvbe/common/error.hpp"
#include "icvbe/common/table.hpp"

namespace icvbe {

namespace {
constexpr char kPalette[] = {'*', '+', 'o', 'x', '#', '@', '%', '&', '~', '='};
}

AsciiPlot::AsciiPlot(AsciiPlotOptions options) : options_(std::move(options)) {
  ICVBE_REQUIRE(options_.width >= 16 && options_.height >= 4,
                "AsciiPlot: chart area too small");
}

void AsciiPlot::add(const Series& series, char glyph) {
  if (glyph == '\0') {
    glyph = kPalette[series_.size() % (sizeof kPalette)];
  }
  series_.push_back(series);
  glyphs_.push_back(glyph);
}

void AsciiPlot::print(std::ostream& os) const {
  if (series_.empty()) {
    os << "(empty plot)\n";
    return;
  }
  double xmin = std::numeric_limits<double>::infinity();
  double xmax = -xmin, ymin = xmin, ymax = -xmin;
  auto y_of = [&](double y) {
    return options_.log_y ? std::log10(std::max(y, 1e-300)) : y;
  };
  for (const auto& s : series_) {
    for (std::size_t i = 0; i < s.size(); ++i) {
      xmin = std::min(xmin, s.x(i));
      xmax = std::max(xmax, s.x(i));
      const double yv = y_of(s.y(i));
      ymin = std::min(ymin, yv);
      ymax = std::max(ymax, yv);
    }
  }
  if (xmax <= xmin) xmax = xmin + 1.0;
  if (ymax <= ymin) ymax = ymin + 1.0;

  const int W = options_.width;
  const int H = options_.height;
  std::vector<std::string> grid(static_cast<std::size_t>(H),
                                std::string(static_cast<std::size_t>(W), ' '));
  for (std::size_t k = 0; k < series_.size(); ++k) {
    const auto& s = series_[k];
    for (std::size_t i = 0; i < s.size(); ++i) {
      const int cx = static_cast<int>(
          std::lround((s.x(i) - xmin) / (xmax - xmin) * (W - 1)));
      const int cy = static_cast<int>(
          std::lround((y_of(s.y(i)) - ymin) / (ymax - ymin) * (H - 1)));
      if (cx >= 0 && cx < W && cy >= 0 && cy < H) {
        grid[static_cast<std::size_t>(H - 1 - cy)]
            [static_cast<std::size_t>(cx)] = glyphs_[k];
      }
    }
  }

  if (!options_.title.empty()) os << options_.title << '\n';
  if (!options_.y_label.empty()) {
    os << (options_.log_y ? "log10(" + options_.y_label + ")"
                          : options_.y_label)
       << '\n';
  }
  for (int r = 0; r < H; ++r) {
    const double yv = ymax - (ymax - ymin) * r / (H - 1);
    os << format_sig(yv, 4);
    for (std::size_t p = format_sig(yv, 4).size(); p < 11; ++p) os << ' ';
    os << '|' << grid[static_cast<std::size_t>(r)] << '\n';
  }
  os << std::string(11, ' ') << '+' << std::string(static_cast<std::size_t>(W), '-')
     << '\n';
  os << std::string(12, ' ') << format_sig(xmin, 4);
  const std::string right = format_sig(xmax, 4);
  const int pad = W - static_cast<int>(format_sig(xmin, 4).size()) -
                  static_cast<int>(right.size());
  for (int p = 0; p < pad; ++p) os << ' ';
  os << right << '\n';
  if (!options_.x_label.empty()) {
    os << std::string(12, ' ') << options_.x_label << '\n';
  }
  os << "legend:";
  for (std::size_t k = 0; k < series_.size(); ++k) {
    os << "  [" << glyphs_[k] << "] " << series_[k].name();
  }
  os << '\n';
}

}  // namespace icvbe
