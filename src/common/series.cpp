#include "icvbe/common/series.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "icvbe/common/error.hpp"

namespace icvbe {

Series::Series(std::string name, std::vector<double> x, std::vector<double> y)
    : name_(std::move(name)), x_(std::move(x)), y_(std::move(y)) {
  ICVBE_REQUIRE(x_.size() == y_.size(),
                "Series: x and y must have equal length");
}

void Series::push_back(double x, double y) {
  x_.push_back(x);
  y_.push_back(y);
}

void Series::reserve(std::size_t n) {
  x_.reserve(n);
  y_.reserve(n);
}

void Series::clear() {
  x_.clear();
  y_.clear();
}

bool Series::x_strictly_increasing() const noexcept {
  for (std::size_t i = 1; i < x_.size(); ++i) {
    if (x_[i] <= x_[i - 1]) return false;
  }
  return true;
}

double Series::interpolate(double at_x) const {
  ICVBE_REQUIRE(x_.size() >= 2, "Series::interpolate needs >= 2 samples");
  ICVBE_REQUIRE(x_strictly_increasing(),
                "Series::interpolate needs strictly increasing x");
  // Find the first knot >= at_x; clamp to the interior for extrapolation.
  auto it = std::lower_bound(x_.begin(), x_.end(), at_x);
  std::size_t hi = static_cast<std::size_t>(it - x_.begin());
  if (hi == 0) hi = 1;
  if (hi >= x_.size()) hi = x_.size() - 1;
  const std::size_t lo = hi - 1;
  const double t = (at_x - x_[lo]) / (x_[hi] - x_[lo]);
  return y_[lo] + t * (y_[hi] - y_[lo]);
}

std::size_t Series::nearest_index(double at_x) const {
  ICVBE_REQUIRE(!x_.empty(), "Series::nearest_index on empty series");
  std::size_t best = 0;
  double best_d = std::abs(x_[0] - at_x);
  for (std::size_t i = 1; i < x_.size(); ++i) {
    const double d = std::abs(x_[i] - at_x);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

double Series::min_y() const {
  ICVBE_REQUIRE(!y_.empty(), "Series::min_y on empty series");
  return *std::min_element(y_.begin(), y_.end());
}

double Series::max_y() const {
  ICVBE_REQUIRE(!y_.empty(), "Series::max_y on empty series");
  return *std::max_element(y_.begin(), y_.end());
}

double Series::min_x() const {
  ICVBE_REQUIRE(!x_.empty(), "Series::min_x on empty series");
  return *std::min_element(x_.begin(), x_.end());
}

double Series::max_x() const {
  ICVBE_REQUIRE(!x_.empty(), "Series::max_x on empty series");
  return *std::max_element(x_.begin(), x_.end());
}

Series Series::log_y() const {
  Series out(name_ + " (log)");
  out.reserve(size());
  for (std::size_t i = 0; i < size(); ++i) {
    ICVBE_REQUIRE(y_[i] > 0.0, "Series::log_y requires positive y");
    out.push_back(x_[i], std::log(y_[i]));
  }
  return out;
}

Series Series::sorted_by_x() const {
  std::vector<std::size_t> idx(size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::stable_sort(idx.begin(), idx.end(),
                   [this](std::size_t a, std::size_t b) { return x_[a] < x_[b]; });
  Series out(name_);
  out.reserve(size());
  for (std::size_t i : idx) out.push_back(x_[i], y_[i]);
  return out;
}

}  // namespace icvbe
