#include "icvbe/common/thread_pool.hpp"

#include <exception>
#include <utility>

#include "icvbe/common/error.hpp"

namespace icvbe::common {

unsigned resolve_thread_count(unsigned requested) noexcept {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1u : hw;
}

void fan_out(unsigned threads, const std::function<void()>& worker) {
  if (threads <= 1) {
    worker();
    return;
  }
  std::mutex error_mutex;
  std::exception_ptr first_error;
  auto guarded = [&]() {
    try {
      worker();
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(guarded);
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned n = resolve_thread_count(threads);
  workers_.reserve(n);
  for (unsigned t = 0; t < n; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { stop_and_join(); }

void ThreadPool::submit(std::function<void()> job) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) throw Error("ThreadPool: submit after stop");
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
}

std::size_t ThreadPool::queued() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void ThreadPool::stop_and_join() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  // Serialise concurrent stop_and_join() callers (stop() racing the
  // destructor): join() on the same std::thread twice is UB.
  const std::lock_guard<std::mutex> join_lock(join_mutex_);
  for (auto& t : workers_) {
    if (t.joinable()) t.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain the queue even when stopping: queued runs still owe their
      // clients a terminal frame.
      if (queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
      running_.fetch_add(1, std::memory_order_relaxed);
    }
    try {
      job();
    } catch (...) {
      // Jobs own their error reporting; a throwing job must not take the
      // worker down.
    }
    running_.fetch_sub(1, std::memory_order_relaxed);
  }
}

}  // namespace icvbe::common
