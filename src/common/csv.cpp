#include "icvbe/common/csv.hpp"

#include <ostream>

#include "icvbe/common/error.hpp"
#include "icvbe/common/table.hpp"

namespace icvbe::csv {

void write_columns(std::ostream& os, const std::vector<std::string>& header,
                   const std::vector<const std::vector<double>*>& columns) {
  ICVBE_REQUIRE(header.size() == columns.size(),
                "csv::write_columns: header/column count mismatch");
  ICVBE_REQUIRE(!columns.empty(), "csv::write_columns: no columns");
  const std::size_t rows = columns.front()->size();
  for (const auto* col : columns) {
    ICVBE_REQUIRE(col != nullptr && col->size() == rows,
                  "csv::write_columns: ragged columns");
  }
  for (std::size_t c = 0; c < header.size(); ++c) {
    os << (c == 0 ? "" : ",") << header[c];
  }
  os << '\n';
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < columns.size(); ++c) {
      os << (c == 0 ? "" : ",") << format_sig((*columns[c])[r], 6);
    }
    os << '\n';
  }
}

void write_series(std::ostream& os, const Series& series,
                  const std::string& x_label, const std::string& y_label) {
  write_columns(os, {x_label, y_label}, {&series.xs(), &series.ys()});
}

}  // namespace icvbe::csv
