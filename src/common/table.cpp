#include "icvbe/common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "icvbe/common/error.hpp"

namespace icvbe {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  ICVBE_REQUIRE(!header_.empty(), "Table header must not be empty");
}

void Table::add_row(std::vector<std::string> row) {
  ICVBE_REQUIRE(row.size() == header_.size(),
                "Table row width must match header");
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c];
      for (std::size_t p = row[c].size(); p < width[c]; ++p) os << ' ';
      os << " |";
    }
    os << '\n';
  };
  print_row(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    for (std::size_t p = 0; p < width[c] + 2; ++p) os << '-';
    os << '|';
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

namespace {
void print_csv_cell(std::ostream& os, const std::string& cell) {
  if (cell.find(',') != std::string::npos ||
      cell.find('"') != std::string::npos) {
    os << '"';
    for (char ch : cell) {
      if (ch == '"') os << '"';
      os << ch;
    }
    os << '"';
  } else {
    os << cell;
  }
}
}  // namespace

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      print_csv_cell(os, row[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

void Table::write_csv(const std::string& path) const {
  std::ofstream f(path);
  ICVBE_REQUIRE(f.good(), "Table::write_csv: cannot open " + path);
  print_csv(f);
}

std::string format_fixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

std::string format_sig(double v, int significant) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", significant, v);
  return buf;
}

std::string format_sci(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", decimals, v);
  return buf;
}

}  // namespace icvbe
