#include "icvbe/spice/diode.hpp"

#include <cmath>

#include "icvbe/common/constants.hpp"
#include "icvbe/common/error.hpp"
#include "icvbe/physics/saturation_current.hpp"
#include "icvbe/spice/junction.hpp"

namespace icvbe::spice {

Diode::Diode(std::string name, NodeId anode, NodeId cathode, DiodeModel model,
             double area)
    : Device(std::move(name)),
      anode_(anode),
      cathode_(cathode),
      model_(model),
      area_(area),
      is_t_(model.is * area),
      vt_(model.n * thermal_voltage(model.tnom)),
      vcrit_(junction_vcrit(vt_, is_t_)),
      v_state_(0.0) {
  ICVBE_REQUIRE(area > 0.0, "Diode: area must be > 0");
  ICVBE_REQUIRE(model.is > 0.0, "Diode: IS must be > 0");
  ICVBE_REQUIRE(model.n > 0.0, "Diode: N must be > 0");
}

std::unique_ptr<Device> Diode::clone() const {
  auto d = std::make_unique<Diode>(name(), anode_, cathode_, model_, area_);
  d->is_t_ = is_t_;
  d->vt_ = vt_;
  d->vcrit_ = vcrit_;
  d->v_state_ = v_state_;
  return d;
}

void Diode::set_temperature(double t_kelvin) {
  // eq. (1) with the emission coefficient folded in as in SPICE3:
  // IS(T) = IS (T/tnom)^(XTI/N) exp( (EG/(N k)) (1/tnom - 1/T) ).
  const double ratio_term =
      (model_.xti / model_.n) * std::log(t_kelvin / model_.tnom);
  const double act_term = (model_.eg / (model_.n * kBoltzmannEv)) *
                          (1.0 / model_.tnom - 1.0 / t_kelvin);
  is_t_ = area_ * model_.is * std::exp(ratio_term + act_term);
  vt_ = model_.n * thermal_voltage(t_kelvin);
  vcrit_ = junction_vcrit(vt_, is_t_);
}

void Diode::reset_state() { v_state_ = 0.0; }

double Diode::conductance_from_exp(double e) const {
  return is_t_ * e / vt_ + 1e-15;  // floor keeps the matrix regular
}

void Diode::stamp(Stamper& stamper, const Unknowns& prev) {
  double v = prev.node_voltage(anode_) - prev.node_voltage(cathode_);
  v = pnjlim(v, v_state_, vt_, vcrit_);
  v_state_ = v;
  stamp_with_exps(stamper, prev, nullptr);
}

void Diode::collect_exp_args(const Unknowns& prev, double* out) {
  // stamp()'s limiting prologue; stamp_with_exps reads v_state_ back.
  double v = prev.node_voltage(anode_) - prev.node_voltage(cathode_);
  v = pnjlim(v, v_state_, vt_, vcrit_);
  v_state_ = v;
  out[0] = v / vt_;
}

void Diode::stamp_with_exps(Stamper& stamper, const Unknowns& /*prev*/,
                            const double* exps) {
  const double v = v_state_;
  const double e = exps ? exps[0] : safe_exp(v / vt_);
  const double i = is_t_ * (e - 1.0);
  const double g = conductance_from_exp(e);
  stamper.stamp_companion(anode_, cathode_, g, i - g * v);
}

void Diode::stamp_ac(AcStamper& ac, const Unknowns& op) const {
  // Small-signal conductance at the committed operating point: the same
  // conductance_from_exp() the large-signal stamp() linearises with,
  // minus the junction limiting (the OP is converged, so limiting is a
  // no-op).
  const double v = op.node_voltage(anode_) - op.node_voltage(cathode_);
  ac.add_conductance(anode_, cathode_,
                     linalg::Complex(conductance_from_exp(safe_exp(v / vt_))));
}

double Diode::current(const Unknowns& x) const {
  const double v = x.node_voltage(anode_) - x.node_voltage(cathode_);
  return is_t_ * (safe_exp(v / vt_) - 1.0);
}

double Diode::power(const Unknowns& x) const {
  const double v = x.node_voltage(anode_) - x.node_voltage(cathode_);
  return std::abs(v * current(x));
}

}  // namespace icvbe::spice
