#include "icvbe/spice/linear_devices.hpp"

#include <cmath>

#include "icvbe/common/error.hpp"

namespace icvbe::spice {

namespace {

/// "AC <mag> <phase_deg>" as a phasor.
linalg::Complex ac_phasor(double magnitude, double phase_deg) {
  return std::polar(magnitude, phase_deg * M_PI / 180.0);
}

}  // namespace

Resistor::Resistor(std::string name, NodeId a, NodeId b, double ohms,
                   double tc1, double tc2, double tnom_kelvin)
    : Device(std::move(name)),
      a_(a),
      b_(b),
      r0_(ohms),
      tc1_(tc1),
      tc2_(tc2),
      tnom_(tnom_kelvin),
      r_now_(ohms) {
  ICVBE_REQUIRE(ohms > 0.0, "Resistor: resistance must be > 0");
  ICVBE_REQUIRE(a != b, "Resistor: terminals must differ");
}

void Resistor::set_temperature(double t_kelvin) {
  const double dt = t_kelvin - tnom_;
  const double factor = 1.0 + tc1_ * dt + tc2_ * dt * dt;
  ICVBE_REQUIRE(factor > 0.0, "Resistor: temperature model gives R <= 0");
  r_now_ = r0_ * factor;
}

void Resistor::set_nominal_resistance(double ohms) {
  ICVBE_REQUIRE(ohms > 0.0, "Resistor: resistance must be > 0");
  r0_ = ohms;
  r_now_ = ohms;  // callers re-run set_temperature before solving
}

std::unique_ptr<Device> Resistor::clone() const {
  auto d = std::make_unique<Resistor>(name(), a_, b_, r0_, tc1_, tc2_, tnom_);
  d->r_now_ = r_now_;
  return d;
}

void Resistor::stamp(Stamper& stamper, const Unknowns& /*prev*/) {
  stamper.add_conductance(a_, b_, 1.0 / r_now_);
}

void Resistor::stamp_ac(AcStamper& ac, const Unknowns& /*op*/) const {
  ac.add_conductance(a_, b_, linalg::Complex(1.0 / r_now_));
}

double Resistor::current(const Unknowns& x) const {
  return (x.node_voltage(a_) - x.node_voltage(b_)) / r_now_;
}

double Resistor::power(const Unknowns& x) const {
  const double v = x.node_voltage(a_) - x.node_voltage(b_);
  return v * v / r_now_;
}

VoltageSource::VoltageSource(std::string name, NodeId p, NodeId m,
                             double volts)
    : Device(std::move(name)), p_(p), m_(m), volts_(volts) {
  ICVBE_REQUIRE(p != m, "VoltageSource: terminals must differ");
}

void VoltageSource::stamp(Stamper& stamper, const Unknowns& /*prev*/) {
  const int k = first_aux();
  ICVBE_ASSERT(k >= 0, "VoltageSource: aux index not assigned");
  const int ip = stamper.node_index(p_);
  const int im = stamper.node_index(m_);
  stamper.add_entry(ip, k, 1.0);
  stamper.add_entry(im, k, -1.0);
  stamper.add_entry(k, ip, 1.0);
  stamper.add_entry(k, im, -1.0);
  stamper.add_rhs(k, volts_);
}

void VoltageSource::stamp_ac(AcStamper& ac, const Unknowns& /*op*/) const {
  const int k = first_aux();
  ICVBE_ASSERT(k >= 0, "VoltageSource: aux index not assigned");
  const int ip = ac.node_index(p_);
  const int im = ac.node_index(m_);
  const linalg::Complex one(1.0);
  ac.add_entry(ip, k, one);
  ac.add_entry(im, k, -one);
  ac.add_entry(k, ip, one);
  ac.add_entry(k, im, -one);
  ac.add_rhs(k, ac_phasor(ac_magnitude_, ac_phase_deg_));
}

double VoltageSource::current(const Unknowns& x) const {
  return x.aux(first_aux());
}

double VoltageSource::power(const Unknowns& /*x*/) const {
  // Sources deliver power into the circuit; they do not dissipate it on
  // the die, so they contribute nothing to the self-heating budget.
  return 0.0;
}

std::unique_ptr<Device> VoltageSource::clone() const {
  auto d = std::make_unique<VoltageSource>(name(), p_, m_, volts_);
  d->waveform_ = waveform_;
  d->ac_magnitude_ = ac_magnitude_;
  d->ac_phase_deg_ = ac_phase_deg_;
  return d;
}

CurrentSource::CurrentSource(std::string name, NodeId p, NodeId m,
                             double amps)
    : Device(std::move(name)), p_(p), m_(m), amps_(amps) {
  ICVBE_REQUIRE(p != m, "CurrentSource: terminals must differ");
}

void CurrentSource::stamp(Stamper& stamper, const Unknowns& /*prev*/) {
  // amps_ flows p -> m inside the source: extracted from p, injected at m.
  stamper.add_current_into(p_, -amps_);
  stamper.add_current_into(m_, amps_);
}

void CurrentSource::stamp_ac(AcStamper& ac, const Unknowns& /*op*/) const {
  // The AC stimulus flows p -> m inside the source, like the DC value.
  const linalg::Complex j = ac_phasor(ac_magnitude_, ac_phase_deg_);
  ac.add_current_into(p_, -j);
  ac.add_current_into(m_, j);
}

std::unique_ptr<Device> CurrentSource::clone() const {
  auto d = std::make_unique<CurrentSource>(name(), p_, m_, amps_);
  d->waveform_ = waveform_;
  d->ac_magnitude_ = ac_magnitude_;
  d->ac_phase_deg_ = ac_phase_deg_;
  return d;
}

Vcvs::Vcvs(std::string name, NodeId p, NodeId m, NodeId cp, NodeId cm,
           double gain)
    : Device(std::move(name)), p_(p), m_(m), cp_(cp), cm_(cm), gain_(gain) {
  ICVBE_REQUIRE(p != m, "Vcvs: output terminals must differ");
}

void Vcvs::stamp(Stamper& stamper, const Unknowns& /*prev*/) {
  const int k = first_aux();
  ICVBE_ASSERT(k >= 0, "Vcvs: aux index not assigned");
  const int ip = stamper.node_index(p_);
  const int im = stamper.node_index(m_);
  stamper.add_entry(ip, k, 1.0);
  stamper.add_entry(im, k, -1.0);
  // Row: V(p) - V(m) - gain (V(cp) - V(cm)) = 0.
  stamper.add_entry(k, ip, 1.0);
  stamper.add_entry(k, im, -1.0);
  stamper.add_entry(k, stamper.node_index(cp_), -gain_);
  stamper.add_entry(k, stamper.node_index(cm_), gain_);
}

void Vcvs::stamp_ac(AcStamper& ac, const Unknowns& /*op*/) const {
  const int k = first_aux();
  ICVBE_ASSERT(k >= 0, "Vcvs: aux index not assigned");
  const int ip = ac.node_index(p_);
  const int im = ac.node_index(m_);
  const linalg::Complex one(1.0);
  ac.add_entry(ip, k, one);
  ac.add_entry(im, k, -one);
  ac.add_entry(k, ip, one);
  ac.add_entry(k, im, -one);
  ac.add_entry(k, ac.node_index(cp_), linalg::Complex(-gain_));
  ac.add_entry(k, ac.node_index(cm_), linalg::Complex(gain_));
}

double Vcvs::current(const Unknowns& x) const { return x.aux(first_aux()); }

std::unique_ptr<Device> Vcvs::clone() const {
  return std::make_unique<Vcvs>(name(), p_, m_, cp_, cm_, gain_);
}

OpAmp::OpAmp(std::string name, NodeId out, NodeId inp, NodeId inn,
             double gain, double offset_volts)
    : Device(std::move(name)),
      out_(out),
      inp_(inp),
      inn_(inn),
      gain_(gain),
      offset_(offset_volts) {
  ICVBE_REQUIRE(gain > 0.0, "OpAmp: gain must be > 0");
}

void OpAmp::stamp(Stamper& stamper, const Unknowns& /*prev*/) {
  const int k = first_aux();
  ICVBE_ASSERT(k >= 0, "OpAmp: aux index not assigned");
  const int io = stamper.node_index(out_);
  stamper.add_entry(io, k, 1.0);
  // Row: V(out)/gain - (V(inp) + offset - V(inn)) = 0, i.e. the ideal
  // V(out) = gain (V(inp) + offset - V(inn)) normalised by the gain so the
  // matrix entries stay O(1) (a raw 1e6 entry next to gmin-sized
  // conductances fails the LU pivot threshold).
  stamper.add_entry(k, io, 1.0 / gain_);
  stamper.add_entry(k, stamper.node_index(inp_), -1.0);
  stamper.add_entry(k, stamper.node_index(inn_), 1.0);
  stamper.add_rhs(k, offset_);
}

void OpAmp::stamp_ac(AcStamper& ac, const Unknowns& /*op*/) const {
  const int k = first_aux();
  ICVBE_ASSERT(k >= 0, "OpAmp: aux index not assigned");
  const int io = ac.node_index(out_);
  const linalg::Complex one(1.0);
  ac.add_entry(io, k, one);
  // Same gain-normalised row as the DC stamp; the offset is a bias term
  // and contributes nothing to the small-signal system.
  ac.add_entry(k, io, linalg::Complex(1.0 / gain_));
  ac.add_entry(k, ac.node_index(inp_), -one);
  ac.add_entry(k, ac.node_index(inn_), one);
}

std::unique_ptr<Device> OpAmp::clone() const {
  return std::make_unique<OpAmp>(name(), out_, inp_, inn_, gain_, offset_);
}

}  // namespace icvbe::spice
