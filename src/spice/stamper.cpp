#include "icvbe/spice/stamper.hpp"

#include "icvbe/common/error.hpp"

namespace icvbe::spice {

template <typename Scalar>
StamperT<Scalar>::StamperT(linalg::MatrixViewT<Scalar> a,
                           linalg::VectorT<Scalar>& b, int node_unknowns)
    : a_(a), b_(b), node_unknowns_(node_unknowns) {
  ICVBE_REQUIRE(a_.rows() == a_.cols() && a_.rows() == b.size(),
                "Stamper: inconsistent system dimensions");
  ICVBE_REQUIRE(node_unknowns >= 0 &&
                    static_cast<std::size_t>(node_unknowns) <= b.size(),
                "Stamper: bad node unknown count");
}

template <typename Scalar>
void StamperT<Scalar>::add_entry(int row, int col, Scalar v) {
  if (row < 0 || col < 0) return;  // ground row/column is eliminated
  a_.add(static_cast<std::size_t>(row), static_cast<std::size_t>(col), v);
}

template <typename Scalar>
void StamperT<Scalar>::add_rhs(int row, Scalar v) {
  if (row < 0) return;
  b_[static_cast<std::size_t>(row)] += v;
}

template <typename Scalar>
void StamperT<Scalar>::add_conductance(NodeId a, NodeId b, Scalar g) {
  const int ia = node_index(a);
  const int ib = node_index(b);
  add_entry(ia, ia, g);
  add_entry(ib, ib, g);
  add_entry(ia, ib, -g);
  add_entry(ib, ia, -g);
}

template <typename Scalar>
void StamperT<Scalar>::add_current_into(NodeId n, Scalar j) {
  add_rhs(node_index(n), j);
}

template <typename Scalar>
void StamperT<Scalar>::stamp_companion(NodeId p, NodeId m, Scalar g,
                                       Scalar ieq) {
  add_conductance(p, m, g);
  // ieq flows p -> m: extract it from p's injection, add to m's.
  add_rhs(node_index(p), -ieq);
  add_rhs(node_index(m), ieq);
}

template <typename Scalar>
void StamperT<Scalar>::add_transconductance(NodeId out_p, NodeId out_m,
                                            NodeId in_p, NodeId in_m,
                                            Scalar gm) {
  const int op = node_index(out_p);
  const int om = node_index(out_m);
  const int ip = node_index(in_p);
  const int im = node_index(in_m);
  add_entry(op, ip, gm);
  add_entry(op, im, -gm);
  add_entry(om, ip, -gm);
  add_entry(om, im, gm);
}

template class StamperT<double>;
template class StamperT<linalg::Complex>;

}  // namespace icvbe::spice
