#include "icvbe/spice/stamper.hpp"

#include "icvbe/common/error.hpp"

namespace icvbe::spice {

Stamper::Stamper(linalg::MatrixView a, linalg::Vector& b, int node_unknowns)
    : a_(a), b_(b), node_unknowns_(node_unknowns) {
  ICVBE_REQUIRE(a_.rows() == a_.cols() && a_.rows() == b.size(),
                "Stamper: inconsistent system dimensions");
  ICVBE_REQUIRE(node_unknowns >= 0 &&
                    static_cast<std::size_t>(node_unknowns) <= b.size(),
                "Stamper: bad node unknown count");
}

void Stamper::add_entry(int row, int col, double v) {
  if (row < 0 || col < 0) return;  // ground row/column is eliminated
  a_.add(static_cast<std::size_t>(row), static_cast<std::size_t>(col), v);
}

void Stamper::add_rhs(int row, double v) {
  if (row < 0) return;
  b_[static_cast<std::size_t>(row)] += v;
}

void Stamper::add_conductance(NodeId a, NodeId b, double g) {
  const int ia = node_index(a);
  const int ib = node_index(b);
  add_entry(ia, ia, g);
  add_entry(ib, ib, g);
  add_entry(ia, ib, -g);
  add_entry(ib, ia, -g);
}

void Stamper::add_current_into(NodeId n, double j) {
  add_rhs(node_index(n), j);
}

void Stamper::stamp_companion(NodeId p, NodeId m, double g, double ieq) {
  add_conductance(p, m, g);
  // ieq flows p -> m: extract it from p's injection, add to m's.
  add_rhs(node_index(p), -ieq);
  add_rhs(node_index(m), ieq);
}

void Stamper::add_transconductance(NodeId out_p, NodeId out_m, NodeId in_p,
                                   NodeId in_m, double gm) {
  const int op = node_index(out_p);
  const int om = node_index(out_m);
  const int ip = node_index(in_p);
  const int im = node_index(in_m);
  add_entry(op, ip, gm);
  add_entry(op, im, -gm);
  add_entry(om, ip, -gm);
  add_entry(om, im, gm);
}

}  // namespace icvbe::spice
