#include "icvbe/spice/mosfet.hpp"

#include <algorithm>
#include <cmath>

#include "icvbe/common/error.hpp"

namespace icvbe::spice {

Mosfet::Mosfet(std::string name, NodeId drain, NodeId gate, NodeId source,
               MosfetModel model, double w_over_l)
    : Device(std::move(name)),
      d_(drain),
      g_(gate),
      s_(source),
      model_(model),
      w_over_l_(w_over_l),
      sign_(model.type == MosfetModel::Type::kNmos ? 1.0 : -1.0),
      vth_now_(model.vto),
      beta_now_(model.kp * w_over_l) {
  ICVBE_REQUIRE(w_over_l > 0.0, "Mosfet: W/L must be > 0");
  ICVBE_REQUIRE(model.kp > 0.0, "Mosfet: KP must be > 0");
  ICVBE_REQUIRE(model.lambda >= 0.0, "Mosfet: LAMBDA must be >= 0");
  set_temperature(model.tnom);
}

std::unique_ptr<Device> Mosfet::clone() const {
  auto d = std::make_unique<Mosfet>(name(), d_, g_, s_, model_, w_over_l_);
  d->vth_now_ = vth_now_;
  d->beta_now_ = beta_now_;
  return d;
}

void Mosfet::set_temperature(double t_kelvin) {
  ICVBE_REQUIRE(t_kelvin > 0.0, "Mosfet: temperature must be > 0 K");
  const double dt = t_kelvin - model_.tnom;
  // |VTH| shrinks with temperature; mobility degrades as a power law.
  vth_now_ = std::max(model_.vto + model_.vto_tc * dt, 0.05);
  beta_now_ = model_.kp * w_over_l_ *
              std::pow(t_kelvin / model_.tnom, -model_.mobility_exp);
}

Mosfet::Eval Mosfet::evaluate(double vgs, double vds) const {
  // Channel symmetry: for vds < 0 the physical source and drain swap.
  // With u = vgd = vgs - vds and w = -vds, id = -f(u, w) and
  //   d id/d vgs = -f_u,    d id/d vds = f_u + f_w.
  if (vds < 0.0) {
    const Eval fwd = evaluate(vgs - vds, -vds);
    Eval ev{};
    ev.id = -fwd.id;
    ev.gm = -fwd.gm;
    ev.gds = fwd.gm + fwd.gds;
    return ev;
  }

  Eval ev{};
  constexpr double kGminFloor = 1e-12;
  // Smooth overdrive (softplus with a 0.1 mV knee): keeps a tiny current
  // and a nonzero gate gradient below threshold so Newton can find its way
  // out of cutoff; negligible (<1e-4 relative) above ~10 mV overdrive.
  constexpr double kKnee = 1e-4;
  const double vov_raw = vgs - vth_now_;
  const double root = std::sqrt(vov_raw * vov_raw + 4.0 * kKnee * kKnee);
  const double vov = 0.5 * (vov_raw + root);
  const double dvov = 0.5 * (1.0 + vov_raw / root);

  const double clm = 1.0 + model_.lambda * vds;
  if (vds < vov) {
    // Triode.
    ev.id = beta_now_ * (vov - 0.5 * vds) * vds * clm;
    ev.gm = beta_now_ * vds * clm * dvov;
    ev.gds = beta_now_ * ((vov - vds) * clm +
                          (vov - 0.5 * vds) * vds * model_.lambda) +
             kGminFloor;
  } else {
    // Saturation.
    ev.id = 0.5 * beta_now_ * vov * vov * clm;
    ev.gm = beta_now_ * vov * clm * dvov;
    ev.gds = 0.5 * beta_now_ * vov * vov * model_.lambda + kGminFloor;
  }
  return ev;
}

Mosfet::Eval Mosfet::linearise(double& vgs, double& vds) const {
  // Mild limiting keeps the square law from launching Newton; the device
  // is polynomial so a simple clamp is enough (no exponentials here).
  vgs = std::clamp(vgs, -5.0, 5.0);
  vds = std::clamp(vds, -5.0, 10.0);
  return evaluate(vgs, vds);
}

void Mosfet::stamp(Stamper& stamper, const Unknowns& prev) {
  const double s = sign_;
  // Type frame: vgs, vds positive in normal operation for both types.
  double vgs = s * (prev.node_voltage(g_) - prev.node_voltage(s_));
  double vds = s * (prev.node_voltage(d_) - prev.node_voltage(s_));
  const Eval ev = linearise(vgs, vds);

  // Currents leaving nodes: Jd = s*id, Js = -s*id, Jg = 0.
  const int id_ = stamper.node_index(d_);
  const int ig = stamper.node_index(g_);
  const int is = stamper.node_index(s_);

  // dJd/dVg = gm, dJd/dVd = gds, dJd/dVs = -(gm + gds)  (s^2 cancels).
  stamper.add_entry(id_, ig, ev.gm);
  stamper.add_entry(id_, id_, ev.gds);
  stamper.add_entry(id_, is, -(ev.gm + ev.gds));
  stamper.add_entry(is, ig, -ev.gm);
  stamper.add_entry(is, id_, -ev.gds);
  stamper.add_entry(is, is, ev.gm + ev.gds);

  const double jd = s * ev.id;
  const double ieq_d = jd - s * (ev.gm * vgs + ev.gds * vds);
  stamper.add_rhs(id_, -ieq_d);
  stamper.add_rhs(is, ieq_d);
}

void Mosfet::stamp_ac(AcStamper& ac, const Unknowns& op) const {
  // Small-signal gm / gds from the shared linearise() at the committed
  // OP, so the two linearisations are identical even at a railed bias.
  const double s = sign_;
  double vgs = s * (op.node_voltage(g_) - op.node_voltage(s_));
  double vds = s * (op.node_voltage(d_) - op.node_voltage(s_));
  const Eval ev = linearise(vgs, vds);

  const int id_ = ac.node_index(d_);
  const int ig = ac.node_index(g_);
  const int is = ac.node_index(s_);
  ac.add_entry(id_, ig, linalg::Complex(ev.gm));
  ac.add_entry(id_, id_, linalg::Complex(ev.gds));
  ac.add_entry(id_, is, linalg::Complex(-(ev.gm + ev.gds)));
  ac.add_entry(is, ig, linalg::Complex(-ev.gm));
  ac.add_entry(is, id_, linalg::Complex(-ev.gds));
  ac.add_entry(is, is, linalg::Complex(ev.gm + ev.gds));
}

double Mosfet::drain_current(const Unknowns& x) const {
  const double s = sign_;
  const double vgs = s * (x.node_voltage(g_) - x.node_voltage(s_));
  const double vds = s * (x.node_voltage(d_) - x.node_voltage(s_));
  return s * evaluate(vgs, vds).id;
}

double Mosfet::overdrive(const Unknowns& x) const {
  const double s = sign_;
  return s * (x.node_voltage(g_) - x.node_voltage(s_)) - vth_now_;
}

double Mosfet::power(const Unknowns& x) const {
  const double vds = x.node_voltage(d_) - x.node_voltage(s_);
  return std::abs(vds * drain_current(x));
}

}  // namespace icvbe::spice
