#include "icvbe/spice/bjt.hpp"

#include <cmath>

#include "icvbe/common/constants.hpp"
#include "icvbe/common/error.hpp"
#include "icvbe/spice/junction.hpp"

namespace icvbe::spice {

namespace {

/// eq. (1) with emission coefficient n folded in (SPICE3 convention).
double is_temperature(double is_tnom, double eg, double xti, double n,
                      double t, double tnom) {
  const double ratio_term = (xti / n) * std::log(t / tnom);
  const double act_term =
      (eg / (n * kBoltzmannEv)) * (1.0 / tnom - 1.0 / t);
  return is_tnom * std::exp(ratio_term + act_term);
}

}  // namespace

Bjt::Bjt(std::string name, NodeId collector, NodeId base, NodeId emitter,
         BjtModel model, double area, NodeId substrate)
    : Device(std::move(name)),
      c_(collector),
      b_(base),
      e_(emitter),
      s_node_(substrate),
      model_(model),
      area_(area),
      sign_(model.type == BjtModel::Type::kNpn ? 1.0 : -1.0),
      temp_(model.tnom),
      vt_(thermal_voltage(model.tnom)),
      is_t_(0.0),
      ise_t_(0.0),
      isc_t_(0.0),
      iss_t_(0.0),
      iss_e_t_(0.0),
      vcrit_be_(0.0),
      vcrit_bc_(0.0),
      v1_state_(0.0),
      v2_state_(0.0) {
  ICVBE_REQUIRE(area > 0.0, "Bjt: area must be > 0");
  ICVBE_REQUIRE(model.is > 0.0, "Bjt: IS must be > 0");
  ICVBE_REQUIRE(model.bf > 0.0 && model.br > 0.0, "Bjt: BF, BR must be > 0");
  ICVBE_REQUIRE(model.nf > 0.0 && model.nr > 0.0, "Bjt: NF, NR must be > 0");
  set_temperature(model.tnom);
}

std::unique_ptr<Device> Bjt::clone() const {
  auto d = std::make_unique<Bjt>(name(), c_, b_, e_, model_, area_, s_node_);
  d->temp_ = temp_;
  d->vt_ = vt_;
  d->is_t_ = is_t_;
  d->ise_t_ = ise_t_;
  d->isc_t_ = isc_t_;
  d->iss_t_ = iss_t_;
  d->iss_e_t_ = iss_e_t_;
  d->vcrit_be_ = vcrit_be_;
  d->vcrit_bc_ = vcrit_bc_;
  d->v1_state_ = v1_state_;
  d->v2_state_ = v2_state_;
  return d;
}

void Bjt::set_temperature(double t_kelvin) {
  ICVBE_REQUIRE(t_kelvin > 0.0, "Bjt: temperature must be > 0 K");
  temp_ = t_kelvin;
  vt_ = thermal_voltage(t_kelvin);
  const double tn = model_.tnom;
  is_t_ = area_ * is_temperature(model_.is, model_.eg, model_.xti, model_.nf,
                                 t_kelvin, tn);
  ise_t_ = area_ * is_temperature(model_.ise, model_.eg, model_.xti,
                                  model_.ne, t_kelvin, tn);
  isc_t_ = area_ * is_temperature(model_.isc, model_.eg, model_.xti,
                                  model_.nc, t_kelvin, tn);
  iss_t_ = area_ * is_temperature(model_.iss, model_.eg_sub, model_.xti_sub,
                                  model_.ns, t_kelvin, tn);
  iss_e_t_ = area_ * is_temperature(model_.iss_e, model_.eg_sub_e,
                                    model_.xti_sub_e, model_.ns_e, t_kelvin,
                                    tn);
  vcrit_be_ = junction_vcrit(model_.nf * vt_, std::max(is_t_, 1e-30));
  vcrit_bc_ = junction_vcrit(model_.nr * vt_, std::max(is_t_, 1e-30));
}

void Bjt::set_model(const BjtModel& model) {
  ICVBE_REQUIRE(model.type == model_.type,
                "Bjt: set_model cannot change the device type");
  ICVBE_REQUIRE(model.is > 0.0, "Bjt: IS must be > 0");
  ICVBE_REQUIRE(model.bf > 0.0 && model.br > 0.0, "Bjt: BF, BR must be > 0");
  ICVBE_REQUIRE(model.nf > 0.0 && model.nr > 0.0, "Bjt: NF, NR must be > 0");
  model_ = model;
  set_temperature(temp_);
  reset_state();
}

void Bjt::reset_state() {
  v1_state_ = 0.0;
  v2_state_ = 0.0;
}

void Bjt::exp_args(double v1, double v2, double* out) const {
  out[0] = v1 / (model_.nf * vt_);
  out[1] = v2 / (model_.nr * vt_);
  out[2] = v1 / (model_.ne * vt_);
  out[3] = v2 / (model_.nc * vt_);
  out[4] = v2 / (model_.ns * vt_);
  out[5] = v1 / (model_.ns_e * vt_);
}

Bjt::Eval Bjt::evaluate(double v1, double v2) const {
  double args[kExpArgs];
  double exps[kExpArgs];
  exp_args(v1, v2, args);
  for (int i = 0; i < kExpArgs; ++i) exps[i] = safe_exp(args[i]);
  return evaluate_from_exps(v1, v2, exps);
}

Bjt::Eval Bjt::evaluate_from_exps(double v1, double v2,
                                  const double* e) const {
  Eval ev{};
  const double nf_vt = model_.nf * vt_;
  const double nr_vt = model_.nr * vt_;
  const double ne_vt = model_.ne * vt_;
  const double nc_vt = model_.nc * vt_;
  const double ns_vt = model_.ns * vt_;

  const double e1 = e[0];
  const double e2 = e[1];

  // Base-width modulation: 1/qb ~ (1 - v1/VAR - v2/VAF), clamped away from
  // zero so wild iterates cannot flip the sign of the transport current.
  double kqb = 1.0;
  double dkqb_dv1 = 0.0;
  double dkqb_dv2 = 0.0;
  if (std::isfinite(model_.var)) {
    kqb -= v1 / model_.var;
    dkqb_dv1 = -1.0 / model_.var;
  }
  if (std::isfinite(model_.vaf)) {
    kqb -= v2 / model_.vaf;
    dkqb_dv2 = -1.0 / model_.vaf;
  }
  if (kqb < 0.05) {
    kqb = 0.05;
    dkqb_dv1 = dkqb_dv2 = 0.0;
  }

  const double itf = is_t_ * (e1 - 1.0);
  const double itr = is_t_ * (e2 - 1.0);
  ev.it = (itf - itr) * kqb;
  ev.git1 = (is_t_ * e1 / nf_vt) * kqb + (itf - itr) * dkqb_dv1;
  ev.git2 = -(is_t_ * e2 / nr_vt) * kqb + (itf - itr) * dkqb_dv2;

  const double ebe_l = (ise_t_ > 0.0) ? e[2] : 0.0;
  const double ebc_l = (isc_t_ > 0.0) ? e[3] : 0.0;
  ev.ibe = itf / model_.bf + ise_t_ * (ebe_l - 1.0);
  ev.gbe = is_t_ * e1 / (nf_vt * model_.bf) +
           (ise_t_ > 0.0 ? ise_t_ * ebe_l / ne_vt : 0.0) + 1e-15;
  ev.ibc = itr / model_.br + isc_t_ * (ebc_l - 1.0);
  ev.gbc = is_t_ * e2 / (nr_vt * model_.br) +
           (isc_t_ > 0.0 ? isc_t_ * ebc_l / nc_vt : 0.0) + 1e-15;

  if (iss_t_ > 0.0) {
    const double es = e[4];
    ev.isub = iss_t_ * (es - 1.0);
    ev.gsub = iss_t_ * es / ns_vt;
  } else {
    ev.isub = 0.0;
    ev.gsub = 0.0;
  }
  if (iss_e_t_ > 0.0) {
    const double nse_vt = model_.ns_e * vt_;
    const double es = e[5];
    ev.isub_e = iss_e_t_ * (es - 1.0);
    ev.gsub_e = iss_e_t_ * es / nse_vt;
  } else {
    ev.isub_e = 0.0;
    ev.gsub_e = 0.0;
  }
  return ev;
}

Bjt::RowJacobian Bjt::row_jacobian(const Eval& ev) const {
  // Partials of the currents leaving each node in the junction frame
  // (type factor s handled by the callers; s^2 = 1 cancels in every
  // entry). The vertical parasitic collects isub_e into the substrate and
  // returns isub_e/bf_sub through the base (its base is the main device's
  // n-well base).
  const double inv_bf_sub =
      std::isfinite(model_.bf_sub) ? 1.0 / model_.bf_sub : 0.0;
  RowJacobian j;
  j.djc_dv1 = ev.git1;
  j.djc_dv2 = ev.git2 - ev.gbc + ev.gsub;
  j.djb_dv1 = ev.gbe + ev.gsub_e * inv_bf_sub;
  j.djb_dv2 = ev.gbc;
  j.dje_dv1 = -(ev.git1 + ev.gbe + ev.gsub_e * (1.0 + inv_bf_sub));
  j.dje_dv2 = -ev.git2;
  j.djs_dv1 = ev.gsub_e;
  j.djs_dv2 = -ev.gsub;
  return j;
}

void Bjt::stamp(Stamper& stamper, const Unknowns& prev) {
  const double s = sign_;
  double v1 = s * (prev.node_voltage(b_) - prev.node_voltage(e_));
  double v2 = s * (prev.node_voltage(b_) - prev.node_voltage(c_));
  v1 = pnjlim(v1, v1_state_, model_.nf * vt_, vcrit_be_);
  v2 = pnjlim(v2, v2_state_, model_.nr * vt_, vcrit_bc_);
  v1_state_ = v1;
  v2_state_ = v2;
  stamp_core(stamper, v1, v2, evaluate(v1, v2));
}

void Bjt::collect_exp_args(const Unknowns& prev, double* out) {
  // stamp()'s prologue verbatim: limit the junction voltages and commit
  // the limiting state, then emit the exponent arguments the batched
  // safe_exp sweep will evaluate. stamp_with_exps picks the limited
  // voltages back up from v1_state_/v2_state_ -- re-limiting there would
  // not be idempotent once pnjlim has engaged.
  const double s = sign_;
  double v1 = s * (prev.node_voltage(b_) - prev.node_voltage(e_));
  double v2 = s * (prev.node_voltage(b_) - prev.node_voltage(c_));
  v1 = pnjlim(v1, v1_state_, model_.nf * vt_, vcrit_be_);
  v2 = pnjlim(v2, v2_state_, model_.nr * vt_, vcrit_bc_);
  v1_state_ = v1;
  v2_state_ = v2;
  exp_args(v1, v2, out);
}

void Bjt::stamp_with_exps(Stamper& stamper, const Unknowns& /*prev*/,
                          const double* exps) {
  const double v1 = v1_state_;
  const double v2 = v2_state_;
  stamp_core(stamper, v1, v2, evaluate_from_exps(v1, v2, exps));
}

void Bjt::stamp_core(Stamper& stamper, double v1, double v2, const Eval& ev) {
  const double s = sign_;
  // Currents leaving each node (type frame handled by s; s^2 = 1 cancels
  // in all Jacobian entries):
  //   Jc = s (it - ibc + isub)
  //   Jb = s (ibe + ibc + isub_e / bf_sub)
  //   Je = -s (it + ibe + isub_e (1 + 1/bf_sub))
  //   Js = s (isub_e - isub)
  const double inv_bf_sub =
      std::isfinite(model_.bf_sub) ? 1.0 / model_.bf_sub : 0.0;
  const double jc = s * (ev.it - ev.ibc + ev.isub);
  const double jb = s * (ev.ibe + ev.ibc + ev.isub_e * inv_bf_sub);
  const double je =
      -s * (ev.it + ev.ibe + ev.isub_e * (1.0 + inv_bf_sub));
  const double js = s * (ev.isub_e - ev.isub);

  const RowJacobian g = row_jacobian(ev);

  const int ic = stamper.node_index(c_);
  const int ib = stamper.node_index(b_);
  const int ie = stamper.node_index(e_);
  const int is_i = stamper.node_index(s_node_);

  // v1 = s(Vb - Ve), v2 = s(Vb - Vc): dv1/dVb = s, dv1/dVe = -s, etc.
  // Row entries for current J leaving node X: dJ/dVnode. J carries a factor
  // s and the chain rule another, so entries are sign-free.
  struct RowStamp {
    int row;
    double dv1, dv2, j;
  };
  const RowStamp rows[] = {
      {ic, g.djc_dv1, g.djc_dv2, jc},
      {ib, g.djb_dv1, g.djb_dv2, jb},
      {ie, g.dje_dv1, g.dje_dv2, je},
      {is_i, g.djs_dv1, g.djs_dv2, js},
  };
  for (const auto& r : rows) {
    stamper.add_entry(r.row, ib, r.dv1 + r.dv2);
    stamper.add_entry(r.row, ie, -r.dv1);
    stamper.add_entry(r.row, ic, -r.dv2);
    // Companion RHS. The linearisation point is the *limited* (v1, v2):
    //   J(V') = J* + s dv1 (v1' - v1) + s dv2 (v2' - v2),  v1' = s(Vb'-Ve'),
    // so after the matrix terms above the constant left over is
    //   ieq = J* - s (dv1 v1 + dv2 v2),
    // extracted from the node's RHS injection.
    const double ieq = r.j - s * (r.dv1 * v1 + r.dv2 * v2);
    stamper.add_rhs(r.row, -ieq);
  }
}

void Bjt::stamp_ac(AcStamper& ac, const Unknowns& op) const {
  // Small-signal Jacobian at the committed OP: the same row_jacobian()
  // partials stamp() writes (junction limiting skipped -- a converged OP
  // is its own limit), with no companion RHS.
  const double s = sign_;
  const double v1 = s * (op.node_voltage(b_) - op.node_voltage(e_));
  const double v2 = s * (op.node_voltage(b_) - op.node_voltage(c_));
  const RowJacobian g = row_jacobian(evaluate(v1, v2));

  const int ic = ac.node_index(c_);
  const int ib = ac.node_index(b_);
  const int ie = ac.node_index(e_);
  const int is_i = ac.node_index(s_node_);

  const struct {
    int row;
    double dv1, dv2;
  } rows[] = {
      {ic, g.djc_dv1, g.djc_dv2},
      {ib, g.djb_dv1, g.djb_dv2},
      {ie, g.dje_dv1, g.dje_dv2},
      {is_i, g.djs_dv1, g.djs_dv2},
  };
  for (const auto& r : rows) {
    ac.add_entry(r.row, ib, linalg::Complex(r.dv1 + r.dv2));
    ac.add_entry(r.row, ie, linalg::Complex(-r.dv1));
    ac.add_entry(r.row, ic, linalg::Complex(-r.dv2));
  }
}

Bjt::TerminalCurrents Bjt::currents(const Unknowns& x) const {
  const double s = sign_;
  const double v1 = s * (x.node_voltage(b_) - x.node_voltage(e_));
  const double v2 = s * (x.node_voltage(b_) - x.node_voltage(c_));
  const Eval ev = evaluate(v1, v2);
  const double inv_bf_sub =
      std::isfinite(model_.bf_sub) ? 1.0 / model_.bf_sub : 0.0;
  TerminalCurrents tc;
  tc.ic = s * (ev.it - ev.ibc + ev.isub);
  tc.ib = s * (ev.ibe + ev.ibc + ev.isub_e * inv_bf_sub);
  tc.ie = -s * (ev.it + ev.ibe + ev.isub_e * (1.0 + inv_bf_sub));
  tc.isub = s * (ev.isub_e - ev.isub);
  return tc;
}

double Bjt::vbe(const Unknowns& x) const {
  return sign_ * (x.node_voltage(b_) - x.node_voltage(e_));
}

double Bjt::vbc(const Unknowns& x) const {
  return sign_ * (x.node_voltage(b_) - x.node_voltage(c_));
}

double Bjt::power(const Unknowns& x) const {
  const TerminalCurrents tc = currents(x);
  // P = sum over terminals of V * I_into_terminal (ground reference).
  return std::abs(x.node_voltage(c_) * tc.ic + x.node_voltage(b_) * tc.ib +
                  x.node_voltage(e_) * tc.ie +
                  x.node_voltage(s_node_) * tc.isub);
}

}  // namespace icvbe::spice
