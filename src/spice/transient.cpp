#include "icvbe/spice/transient.hpp"

#include <algorithm>
#include <cmath>

#include "icvbe/common/error.hpp"

namespace icvbe::spice {

TransientSolver::TransientSolver(SimSession& session, TransientSpec spec)
    : session_(session), spec_(std::move(spec)) {
  ICVBE_REQUIRE(spec_.tstep > 0.0, "TransientSolver: tstep must be > 0");
  ICVBE_REQUIRE(spec_.tstart >= 0.0, "TransientSolver: tstart must be >= 0");
  ICVBE_REQUIRE(spec_.tstop > spec_.tstart,
                "TransientSolver: tstop must be > tstart");
  ICVBE_REQUIRE(spec_.tmax >= 0.0, "TransientSolver: tmax must be >= 0");
  ICVBE_REQUIRE(spec_.lte_reltol > 0.0 && spec_.lte_abstol > 0.0,
                "TransientSolver: LTE tolerances must be > 0");
  tmax_ = spec_.tmax > 0.0 ? spec_.tmax : spec_.tstep;
  teps_ = 1e-9 * std::max(spec_.tstop, tmax_);
  h0_ = spec_.adaptive ? std::min(spec_.tstep, tmax_) / 10.0 : spec_.tstep;
  hmin_ = std::max(spec_.tstop * 1e-12, 1e-18);
}

TransientSolver::~TransientSolver() {
  if (!began_ || restored_) return;
  for (DynamicDevice* d : dynamic_) d->set_dc_mode();
  const auto& vs = session_.voltage_sources();
  for (std::size_t i = 0; i < vs.size(); ++i) {
    vs[i]->set_voltage(vsource_t0_[i]);
  }
  const auto& is = session_.current_sources();
  for (std::size_t i = 0; i < is.size(); ++i) {
    is[i]->set_current(isource_t0_[i]);
  }
  restored_ = true;
}

void TransientSolver::apply_sources(double t) {
  for (const auto& [src, wf] : vwaves_) src->set_voltage(wf->value_at(t));
  for (const auto& [src, wf] : iwaves_) src->set_current(wf->value_at(t));
}

void TransientSolver::begin() {
  if (began_) return;
  Circuit& circuit = session_.circuit();

  // Discover dynamic devices and waveform-driven sources once.
  dynamic_.clear();
  for (const auto& dev : circuit.devices()) {
    if (auto* d = dynamic_cast<DynamicDevice*>(dev.get())) {
      d->set_dc_mode();
      dynamic_.push_back(d);
    }
  }
  vwaves_.clear();
  iwaves_.clear();
  vsource_t0_.clear();
  isource_t0_.clear();
  for (VoltageSource* v : session_.voltage_sources()) {
    vsource_t0_.push_back(v->voltage());
    if (v->has_waveform()) vwaves_.emplace_back(v, &v->waveform());
  }
  for (CurrentSource* i : session_.current_sources()) {
    isource_t0_.push_back(i->current());
    if (i->has_waveform()) iwaves_.emplace_back(i, &i->waveform());
  }
  began_ = true;  // from here on the destructor restores

  // Breakpoints: waveform corners, deduplicated within teps_.
  breakpoints_.clear();
  for (const auto& [src, wf] : vwaves_) {
    wf->append_breakpoints(spec_.tstop, breakpoints_);
  }
  for (const auto& [src, wf] : iwaves_) {
    wf->append_breakpoints(spec_.tstop, breakpoints_);
  }
  std::sort(breakpoints_.begin(), breakpoints_.end());
  breakpoints_.erase(
      std::unique(breakpoints_.begin(), breakpoints_.end(),
                  [this](double a, double b) { return b - a <= teps_; }),
      breakpoints_.end());
  bp_index_ = 0;

  // Start point: UIC vector or operating point, then .IC overrides.
  apply_sources(0.0);
  const auto n = static_cast<std::size_t>(session_.unknown_count());
  if (spec_.uic) {
    x_now_ = Unknowns(n);
  } else {
    x_now_ = session_.solve_or_throw();  // copy out of session storage
  }
  for (const auto& [node, volts] : spec_.initial_conditions) {
    const NodeId id = circuit.find_node(node);
    if (id <= kGround) {
      throw CircuitError(".IC V(" + node + "): no node with that name");
    }
    x_now_.raw()[static_cast<std::size_t>(id - 1)] = volts;
  }
  for (DynamicDevice* d : dynamic_) d->imprint_ic(x_now_);
  for (DynamicDevice* d : dynamic_) d->init_state(x_now_);
  for (DynamicDevice* d : dynamic_) d->begin_step(spec_.method, h0_);
  session_.seed_warm_start(x_now_);

  t_ = 0.0;
  h_next_ = h0_;
  h_last_ = 0.0;
  for (auto& h : hist_x_) h = Unknowns(n);
  hist_head_ = 0;
  hist_count_ = 0;
  push_history(0.0, x_now_);
}

void TransientSolver::push_history(double t, const Unknowns& x) {
  hist_head_ = (hist_head_ + 1) % 3;
  hist_t_[hist_head_] = t;
  hist_x_[hist_head_] = x;  // same-size copy, no allocation
  if (hist_count_ < 3) ++hist_count_;
}

double TransientSolver::lte_ratio(const Unknowns& candidate, double h) const {
  // k-th newest accepted point (k = 0 is the current time t_).
  const auto at = [this](std::size_t k) -> std::size_t {
    return (hist_head_ + 3 - k) % 3;
  };
  const std::size_t a0 = at(0);
  const std::size_t a1 = at(1);
  const bool third_order = spec_.method == IntegrationMethod::kTrapezoidal;
  const std::size_t a2 = at(2);
  const double tc = t_ + h;
  const double t0 = hist_t_[a0];
  const double t1 = hist_t_[a1];
  const double t2 = third_order ? hist_t_[a2] : 0.0;

  const int nodes = session_.circuit().node_count() - 1;
  double worst = 0.0;
  for (int i = 0; i < nodes; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    const double xc = candidate.raw()[ui];
    const double x0 = hist_x_[a0].raw()[ui];
    const double x1 = hist_x_[a1].raw()[ui];
    const double dd1 = (xc - x0) / (tc - t0);
    const double dd0 = (x0 - x1) / (t0 - t1);
    const double dd2 = (dd1 - dd0) / (tc - t1);
    double err;
    if (third_order) {
      // Trapezoidal: LTE ~ (h^3 / 12) |x'''|, x''' ~ 6 * dd3.
      const double x2 = hist_x_[a2].raw()[ui];
      const double dd0b = (x1 - x2) / (t1 - t2);
      const double dd2b = (dd0 - dd0b) / (t0 - t2);
      const double dd3 = (dd2 - dd2b) / (tc - t2);
      err = 0.5 * h * h * h * std::abs(dd3);
    } else {
      // Backward Euler: LTE ~ (h^2 / 2) |x''|, x'' ~ 2 * dd2.
      err = h * h * std::abs(dd2);
    }
    const double tol = spec_.lte_abstol +
                       spec_.lte_reltol * std::max(std::abs(xc), std::abs(x0));
    worst = std::max(worst, err / tol);
  }
  return worst;
}

bool TransientSolver::advance() {
  ICVBE_REQUIRE(began_, "TransientSolver::advance: call begin() first");
  if (t_ >= spec_.tstop - teps_) return false;

  const double exponent = -1.0 / static_cast<double>(order() + 1);
  double h = h_next_;
  for (int tries = 0; tries < 64; ++tries) {
    h = std::min({h, tmax_, spec_.tstop - t_});
    h = std::max(h, hmin_);
    // Never integrate across a waveform corner: land the step on it.
    bool hit_breakpoint = false;
    if (spec_.adaptive && bp_index_ < breakpoints_.size()) {
      const double bp = breakpoints_[bp_index_];
      if (t_ + h >= bp - teps_) {
        h = bp - t_;
        hit_breakpoint = true;
      }
    }

    const double t_candidate = t_ + h;
    apply_sources(t_candidate);
    // Right after t = 0 and after every breakpoint the committed state
    // derivative is the pre-discontinuity one; trapezoidal would average
    // it in and halve the response. Take that one step with backward
    // Euler, which only uses the state itself (adaptive runs only --
    // fixed-step runs are pure-method by contract, for the closed-form
    // tests).
    const IntegrationMethod step_method =
        (spec_.adaptive && restart_) ? IntegrationMethod::kBackwardEuler
                                     : spec_.method;
    for (DynamicDevice* d : dynamic_) d->begin_step(step_method, h);
    const DcResult& r = session_.solve();
    newton_iterations_ += r.iterations;
    if (!r.converged) {
      if (h <= hmin_ * 1.0001) {
        throw NumericalError(
            "transient: Newton failed to converge at t = " +
            std::to_string(t_candidate) + " s with the minimum step");
      }
      ++rejected_;
      h *= 0.125;
      continue;
    }

    // The divided-difference estimate needs need_history() accepted points
    // besides the candidate: the initial point plus accepted_ steps.
    double ratio = 0.0;
    bool have_ratio = false;
    if (spec_.adaptive &&
        accepted_ + 1 >= static_cast<long>(need_history()) &&
        hist_count_ >= need_history()) {
      ratio = lte_ratio(r.solution, h);
      have_ratio = true;
      if (ratio > 1.0 && h > hmin_ * 1.0001) {
        ++rejected_;
        const double f =
            std::clamp(0.9 * std::pow(ratio, exponent), 0.1, 0.9);
        h = std::max(h * f, hmin_);
        continue;
      }
    }

    // Accept.
    t_ = t_candidate;
    x_now_ = r.solution;  // same-size copy
    for (DynamicDevice* d : dynamic_) d->commit(x_now_);
    push_history(t_, x_now_);
    h_last_ = h;
    ++accepted_;
    restart_ = hit_breakpoint;
    if (!spec_.adaptive) {
      h_next_ = spec_.tstep;
    } else if (hit_breakpoint) {
      ++bp_index_;
      h_next_ = h0_;  // restart small after a slope discontinuity
    } else if (!have_ratio) {
      h_next_ = h0_;  // not enough history to trust the estimate yet
    } else {
      const double f =
          ratio > 0.0
              ? std::clamp(0.9 * std::pow(ratio, exponent), 0.5, 2.0)
              : 2.0;
      h_next_ = std::clamp(h * f, hmin_, tmax_);
    }
    return true;
  }
  throw NumericalError("transient: step control failed to find an "
                       "acceptable step at t = " +
                       std::to_string(t_) + " s");
}

SweepResult TransientSolver::run(const std::vector<Probe>& probes,
                                 RunObserver* observer) {
  ICVBE_REQUIRE(!probes.empty(), "TransientSolver::run: need >= 1 probe");
  begin();

  SweepResult out;
  out.axis_labels_ = {"TIME"};
  out.columns_.resize(probes.size());
  for (const Probe& p : probes) out.probe_labels_.push_back(p.to_string());
  const auto estimate = static_cast<std::size_t>(
      (spec_.tstop - spec_.tstart) / spec_.tstep * 4.0 + 16.0);
  out.inner_.reserve(estimate);
  for (auto& col : out.columns_) col.reserve(estimate);

  // expected_rows = 0: the adaptive controller does not know the
  // accepted-point count up front.
  if (observer != nullptr) {
    observer->on_begin(out.axis_labels_, out.probe_labels_, 0);
  }
  std::vector<double> probe_row(observer != nullptr ? probes.size() : 0, 0.0);

  // Compile once: per-timepoint recording then does no name lookups
  // (same discipline as the DC plan path).
  const CompiledProbeSet compiled(probes, session_.circuit());
  const auto record = [&] {
    out.inner_.push_back(t_);
    for (std::size_t p = 0; p < probes.size(); ++p) {
      out.columns_[p].push_back(compiled.eval(p, x_now_));
    }
    if (observer != nullptr) {
      const std::size_t row = out.inner_.size() - 1;
      for (std::size_t p = 0; p < probes.size(); ++p) {
        probe_row[p] = out.columns_[p][row];
      }
      if (!observer->on_row(row, &out.inner_[row], 1, probe_row.data(),
                            probe_row.size())) {
        throw CancelledError("transient: cancelled by observer at t = " +
                             std::to_string(t_) + " s");
      }
    }
  };
  if (spec_.tstart <= teps_) record();
  while (advance()) {
    if (t_ >= spec_.tstart - teps_) record();
  }
  out.rows_ = out.inner_.size();
  return out;
}

}  // namespace icvbe::spice
