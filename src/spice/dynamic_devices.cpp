#include "icvbe/spice/dynamic_devices.hpp"

#include "icvbe/common/error.hpp"

namespace icvbe::spice {

Capacitor::Capacitor(std::string name, NodeId a, NodeId b, double farads,
                     double ic_volts)
    : DynamicDevice(std::move(name)), a_(a), b_(b), farads_(farads) {
  ICVBE_REQUIRE(farads > 0.0, "Capacitor: capacitance must be > 0");
  ICVBE_REQUIRE(a != b, "Capacitor: terminals must differ");
  ic_ = ic_volts;
}

std::unique_ptr<Device> Capacitor::clone() const {
  auto d = std::make_unique<Capacitor>(name(), a_, b_, farads_, ic_);
  d->transient_ = transient_;
  d->method_ = method_;
  d->h_ = h_;
  d->v_prev_ = v_prev_;
  d->i_prev_ = i_prev_;
  return d;
}

void Capacitor::stamp(Stamper& stamper, const Unknowns& /*prev*/) {
  if (!transient_) {
    // DC: open circuit -- but register the companion's pattern slots so a
    // sparse session bound in DC mode can run transients on the same
    // frozen pattern (zero values still register, see SparseMatrix::add).
    stamper.stamp_companion(a_, b_, 0.0, 0.0);
    return;
  }
  ICVBE_ASSERT(h_ > 0.0, "Capacitor: begin_step not called");
  stamper.stamp_companion(a_, b_, geq(), ieq());
}

void Capacitor::stamp_ac(AcStamper& ac, const Unknowns& /*op*/) const {
  ac.add_conductance(a_, b_, linalg::Complex(0.0, ac.omega() * farads_));
}

double Capacitor::current(const Unknowns& /*x*/) const {
  // The committed companion current of the last accepted timepoint --
  // what a probe evaluated at that point should read. DC blocks.
  return transient_ ? i_prev_ : 0.0;
}

void Capacitor::commit(const Unknowns& x) {
  const double v = x.node_voltage(a_) - x.node_voltage(b_);
  i_prev_ = geq() * v + ieq();  // companion current, pre-update state
  v_prev_ = v;
}

void Capacitor::set_capacitance(double farads) {
  ICVBE_REQUIRE(farads > 0.0, "Capacitor: capacitance must be > 0");
  ICVBE_REQUIRE(!transient_,
                "Capacitor: cannot re-program the value mid-transient");
  farads_ = farads;
}

void Capacitor::init_state(const Unknowns& x) {
  v_prev_ = has_initial_condition()
                ? initial_condition()
                : x.node_voltage(a_) - x.node_voltage(b_);
  i_prev_ = 0.0;  // steady state / t = 0-: no displacement current
}

Inductor::Inductor(std::string name, NodeId p, NodeId m, double henries,
                   double ic_amps)
    : DynamicDevice(std::move(name)), p_(p), m_(m), henries_(henries) {
  ICVBE_REQUIRE(henries > 0.0, "Inductor: inductance must be > 0");
  ICVBE_REQUIRE(p != m, "Inductor: terminals must differ");
  ic_ = ic_amps;
}

std::unique_ptr<Device> Inductor::clone() const {
  auto d = std::make_unique<Inductor>(name(), p_, m_, henries_, ic_);
  d->transient_ = transient_;
  d->method_ = method_;
  d->h_ = h_;
  d->i_prev_ = i_prev_;
  d->v_prev_ = v_prev_;
  return d;
}

void Inductor::stamp(Stamper& stamper, const Unknowns& /*prev*/) {
  const int k = first_aux();
  ICVBE_ASSERT(k >= 0, "Inductor: aux index not assigned");
  const int ip = stamper.node_index(p_);
  const int im = stamper.node_index(m_);
  // KCL: the branch current leaves p and enters m.
  stamper.add_entry(ip, k, 1.0);
  stamper.add_entry(im, k, -1.0);
  // Branch row: V(p) - V(m) - req i = veq.
  stamper.add_entry(k, ip, 1.0);
  stamper.add_entry(k, im, -1.0);
  if (!transient_) {
    // DC: a short (0 V branch). The zero-valued (k, k) entry registers the
    // slot the transient -req coefficient will use.
    stamper.add_entry(k, k, 0.0);
    return;
  }
  ICVBE_ASSERT(h_ > 0.0, "Inductor: begin_step not called");
  const double req =
      (method_ == IntegrationMethod::kTrapezoidal ? 2.0 : 1.0) * henries_ /
      h_;
  const double veq = method_ == IntegrationMethod::kTrapezoidal
                         ? -req * i_prev_ - v_prev_
                         : -req * i_prev_;
  stamper.add_entry(k, k, -req);
  stamper.add_rhs(k, veq);
}

void Inductor::stamp_ac(AcStamper& ac, const Unknowns& /*op*/) const {
  const int k = first_aux();
  ICVBE_ASSERT(k >= 0, "Inductor: aux index not assigned");
  const int ip = ac.node_index(p_);
  const int im = ac.node_index(m_);
  const linalg::Complex one(1.0);
  ac.add_entry(ip, k, one);
  ac.add_entry(im, k, -one);
  // Branch row: V(p) - V(m) - j*omega*L * i = 0.
  ac.add_entry(k, ip, one);
  ac.add_entry(k, im, -one);
  ac.add_entry(k, k, linalg::Complex(0.0, -ac.omega() * henries_));
}

double Inductor::current(const Unknowns& x) const {
  return x.aux(first_aux());
}

void Inductor::commit(const Unknowns& x) {
  i_prev_ = x.aux(first_aux());
  v_prev_ = x.node_voltage(p_) - x.node_voltage(m_);
}

void Inductor::set_inductance(double henries) {
  ICVBE_REQUIRE(henries > 0.0, "Inductor: inductance must be > 0");
  ICVBE_REQUIRE(!transient_,
                "Inductor: cannot re-program the value mid-transient");
  henries_ = henries;
}

void Inductor::init_state(const Unknowns& x) {
  i_prev_ =
      has_initial_condition() ? initial_condition() : x.aux(first_aux());
  v_prev_ = x.node_voltage(p_) - x.node_voltage(m_);
}

void Inductor::imprint_ic(Unknowns& x) const {
  if (has_initial_condition() && first_aux() >= 0) {
    x.raw()[static_cast<std::size_t>(first_aux())] = initial_condition();
  }
}

}  // namespace icvbe::spice
