#include "icvbe/spice/analysis.hpp"

#include <cmath>

#include "icvbe/common/error.hpp"

namespace icvbe::spice {

namespace {

template <typename SetValue>
Series sweep_impl(Circuit& circuit, const std::vector<double>& values,
                  const Probe& probe, const NewtonOptions& options,
                  const SetValue& set_value, const char* what,
                  const Unknowns* initial) {
  SimSession session(circuit, options);
  if (initial != nullptr) session.seed_warm_start(*initial);
  return session.sweep(values, set_value, probe, what);
}

}  // namespace

Series dc_sweep_vsource(Circuit& circuit, const std::string& source_name,
                        const std::vector<double>& values, const Probe& probe,
                        const NewtonOptions& options, const Unknowns* initial) {
  auto& src = circuit.get<VoltageSource>(source_name);
  return sweep_impl(
      circuit, values, probe, options,
      [&src](double v) { src.set_voltage(v); }, "dc_sweep_vsource", initial);
}

Series dc_sweep_isource(Circuit& circuit, const std::string& source_name,
                        const std::vector<double>& values, const Probe& probe,
                        const NewtonOptions& options, const Unknowns* initial) {
  auto& src = circuit.get<CurrentSource>(source_name);
  return sweep_impl(
      circuit, values, probe, options,
      [&src](double v) { src.set_current(v); }, "dc_sweep_isource", initial);
}

Series temperature_sweep(Circuit& circuit, const std::vector<double>& t_kelvin,
                         const Probe& probe, const NewtonOptions& options,
                         const Unknowns* initial) {
  return sweep_impl(
      circuit, t_kelvin, probe, options,
      [&circuit](double t) { circuit.set_temperature(t); },
      "temperature_sweep", initial);
}

Probe probe_node_voltage(Circuit& circuit, const std::string& node_name) {
  const NodeId n = circuit.node(node_name);
  return [n](const Circuit&, const Unknowns& x) { return x.node_voltage(n); };
}

Probe probe_vsource_current(const std::string& device_name) {
  return [device_name](const Circuit& c, const Unknowns& x) {
    return c.get<VoltageSource>(device_name).current(x);
  };
}

std::vector<double> linspace(double first, double last, int n) {
  ICVBE_REQUIRE(n >= 2, "linspace: need at least two points");
  std::vector<double> out(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    out[static_cast<std::size_t>(i)] =
        first + (last - first) * static_cast<double>(i) /
                    static_cast<double>(n - 1);
  }
  return out;
}

std::vector<double> logspace_decades(double first, double last,
                                     int per_decade) {
  ICVBE_REQUIRE(first > 0.0 && last > first,
                "logspace_decades: need 0 < first < last");
  ICVBE_REQUIRE(per_decade >= 1, "logspace_decades: need >= 1 per decade");
  std::vector<double> out;
  const double lf = std::log10(first);
  const double ll = std::log10(last);
  const int steps = static_cast<int>(std::ceil((ll - lf) * per_decade));
  out.reserve(static_cast<std::size_t>(steps + 1));
  for (int i = 0; i <= steps; ++i) {
    out.push_back(std::pow(10.0, lf + (ll - lf) * static_cast<double>(i) /
                                           static_cast<double>(steps)));
  }
  return out;
}

}  // namespace icvbe::spice
