#include "icvbe/spice/analysis.hpp"

#include <cmath>

#include "icvbe/common/error.hpp"

namespace icvbe::spice {

namespace {

/// All three legacy sweeps are the same plan-builder: typed axis, temporary
/// session, optional warm-start seed.
Series axis_sweep(Circuit& circuit, SweepAxis axis, const SweepProbe& probe,
                  const NewtonOptions& options, const char* what,
                  const Unknowns* initial) {
  SimSession session(circuit, options);
  if (initial != nullptr) session.seed_warm_start(*initial);
  return session.sweep(axis, probe, what);
}

}  // namespace

Series dc_sweep_vsource(Circuit& circuit, const std::string& source_name,
                        const std::vector<double>& values,
                        const SweepProbe& probe, const NewtonOptions& options,
                        const Unknowns* initial) {
  return axis_sweep(circuit,
                    SweepAxis::vsource(source_name, SweepGrid::list(values)),
                    probe, options, "dc_sweep_vsource", initial);
}

Series dc_sweep_isource(Circuit& circuit, const std::string& source_name,
                        const std::vector<double>& values,
                        const SweepProbe& probe, const NewtonOptions& options,
                        const Unknowns* initial) {
  return axis_sweep(circuit,
                    SweepAxis::isource(source_name, SweepGrid::list(values)),
                    probe, options, "dc_sweep_isource", initial);
}

Series temperature_sweep(Circuit& circuit, const std::vector<double>& t_kelvin,
                         const SweepProbe& probe, const NewtonOptions& options,
                         const Unknowns* initial) {
  return axis_sweep(circuit,
                    SweepAxis::temperature_kelvin(SweepGrid::list(t_kelvin)),
                    probe, options, "temperature_sweep", initial);
}

Probe probe_node_voltage(const Circuit& circuit,
                         const std::string& node_name) {
  if (circuit.find_node(node_name) < 0) {
    throw CircuitError("probe_node_voltage: no node named '" + node_name +
                       "'");
  }
  return Probe::node_voltage(node_name);
}

Probe probe_vsource_current(const std::string& device_name) {
  return Probe::branch_current(device_name);
}

std::vector<double> linspace(double first, double last, int n) {
  ICVBE_REQUIRE(n >= 2, "linspace: need at least two points");
  std::vector<double> out(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    out[static_cast<std::size_t>(i)] =
        first + (last - first) * static_cast<double>(i) /
                    static_cast<double>(n - 1);
  }
  return out;
}

std::vector<double> logspace_decades(double first, double last,
                                     int per_decade) {
  ICVBE_REQUIRE(first > 0.0 && last > first,
                "logspace_decades: need 0 < first < last");
  ICVBE_REQUIRE(per_decade >= 1, "logspace_decades: need >= 1 per decade");
  std::vector<double> out;
  const double lf = std::log10(first);
  const double ll = std::log10(last);
  const int steps = static_cast<int>(std::ceil((ll - lf) * per_decade));
  out.reserve(static_cast<std::size_t>(steps + 1));
  for (int i = 0; i <= steps; ++i) {
    out.push_back(std::pow(10.0, lf + (ll - lf) * static_cast<double>(i) /
                                           static_cast<double>(steps)));
  }
  return out;
}

}  // namespace icvbe::spice
