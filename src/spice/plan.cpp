#include "icvbe/spice/plan.hpp"

#include "icvbe/spice/batch_session.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cctype>
#include <cstdlib>
#include <exception>
#include <optional>
#include <ostream>
#include <sstream>
#include <utility>

#include "icvbe/common/constants.hpp"
#include "icvbe/common/csv.hpp"
#include "icvbe/common/thread_pool.hpp"
#include "icvbe/spice/analysis.hpp"
#include "icvbe/spice/netlist.hpp"
#include "icvbe/spice/transient.hpp"

namespace icvbe::spice {

// --------------------------------------------------------------- Probe ---

Probe Probe::constant(double value) {
  Probe p;
  p.kind_ = Kind::kConstant;
  p.value_ = value;
  return p;
}

Probe Probe::node_voltage(std::string node, std::string node2) {
  Probe p;
  p.kind_ = Kind::kNodeVoltage;
  p.target_ = std::move(node);
  p.target2_ = std::move(node2);
  return p;
}

Probe Probe::branch_current(std::string device) {
  Probe p;
  p.kind_ = Kind::kBranchCurrent;
  p.target_ = std::move(device);
  return p;
}

Probe Probe::bjt_current(std::string device, BjtTerminal terminal) {
  Probe p;
  p.kind_ = Kind::kBjtCurrent;
  p.target_ = std::move(device);
  p.terminal_ = terminal;
  return p;
}

Probe Probe::ac_voltage(AcQuantity quantity, std::string node,
                        std::string node2) {
  Probe p;
  p.kind_ = Kind::kAcVoltage;
  p.quantity_ = quantity;
  p.target_ = std::move(node);
  p.target2_ = std::move(node2);
  return p;
}

Probe Probe::expression(Op op, Probe lhs, Probe rhs) {
  Probe p;
  p.kind_ = Kind::kExpression;
  p.op_ = op;
  p.children_.reserve(2);
  p.children_.push_back(std::move(lhs));
  p.children_.push_back(std::move(rhs));
  return p;
}

namespace {

/// Device classification for I(dev): resolved once (by eval or at probe
/// compile time), then dispatched without RTTI.
enum class BranchKind { kVsource, kResistor, kDiode, kVcvs, kMosfet,
                        kIsource, kCapacitor, kInductor };

std::optional<BranchKind> classify_branch(const Device& dev) {
  if (dynamic_cast<const VoltageSource*>(&dev)) return BranchKind::kVsource;
  if (dynamic_cast<const Resistor*>(&dev)) return BranchKind::kResistor;
  if (dynamic_cast<const Diode*>(&dev)) return BranchKind::kDiode;
  if (dynamic_cast<const Vcvs*>(&dev)) return BranchKind::kVcvs;
  if (dynamic_cast<const Mosfet*>(&dev)) return BranchKind::kMosfet;
  if (dynamic_cast<const CurrentSource*>(&dev)) return BranchKind::kIsource;
  if (dynamic_cast<const Capacitor*>(&dev)) return BranchKind::kCapacitor;
  if (dynamic_cast<const Inductor*>(&dev)) return BranchKind::kInductor;
  return std::nullopt;
}

double branch_current_of(BranchKind kind, const Device& dev,
                         const Unknowns& x) {
  switch (kind) {
    case BranchKind::kVsource:
      return static_cast<const VoltageSource&>(dev).current(x);
    case BranchKind::kResistor:
      return static_cast<const Resistor&>(dev).current(x);
    case BranchKind::kDiode:
      return static_cast<const Diode&>(dev).current(x);
    case BranchKind::kVcvs:
      return static_cast<const Vcvs&>(dev).current(x);
    case BranchKind::kMosfet:
      return static_cast<const Mosfet&>(dev).drain_current(x);
    case BranchKind::kIsource:
      return static_cast<const CurrentSource&>(dev).current();
    case BranchKind::kCapacitor:
      return static_cast<const Capacitor&>(dev).current(x);
    case BranchKind::kInductor:
      return static_cast<const Inductor&>(dev).current(x);
  }
  return 0.0;  // unreachable
}

/// Branch current of any two-terminal-ish device for I(dev).
double device_branch_current(const Device& dev, const Unknowns& x) {
  const std::optional<BranchKind> kind = classify_branch(dev);
  if (!kind.has_value()) {
    throw CircuitError("I(" + dev.name() +
                       "): device has no branch current (use IC/IB/IE for "
                       "BJTs)");
  }
  return branch_current_of(*kind, dev, x);
}

double bjt_terminal_current(const Bjt& q, Probe::BjtTerminal t,
                            const Unknowns& x) {
  const Bjt::TerminalCurrents i = q.currents(x);
  switch (t) {
    case Probe::BjtTerminal::kCollector: return i.ic;
    case Probe::BjtTerminal::kBase: return i.ib;
    case Probe::BjtTerminal::kEmitter: return i.ie;
    case Probe::BjtTerminal::kSubstrate: return i.isub;
  }
  return 0.0;  // unreachable
}

const char* bjt_terminal_name(Probe::BjtTerminal t) {
  switch (t) {
    case Probe::BjtTerminal::kCollector: return "IC";
    case Probe::BjtTerminal::kBase: return "IB";
    case Probe::BjtTerminal::kEmitter: return "IE";
    case Probe::BjtTerminal::kSubstrate: return "ISUB";
  }
  return "IC";  // unreachable
}

const char* ac_quantity_name(Probe::AcQuantity q) {
  switch (q) {
    case Probe::AcQuantity::kMagnitude: return "VM";
    case Probe::AcQuantity::kDb: return "VDB";
    case Probe::AcQuantity::kPhaseDeg: return "VP";
    case Probe::AcQuantity::kReal: return "VR";
    case Probe::AcQuantity::kImag: return "VI";
  }
  return "VM";  // unreachable
}

/// Scalarise a node phasor for one AC probe quantity.
double ac_quantity_value(Probe::AcQuantity q, const linalg::Complex& v) {
  switch (q) {
    case Probe::AcQuantity::kMagnitude: return std::abs(v);
    case Probe::AcQuantity::kDb: return 20.0 * std::log10(std::abs(v));
    case Probe::AcQuantity::kPhaseDeg: return std::arg(v) * 180.0 / M_PI;
    case Probe::AcQuantity::kReal: return v.real();
    case Probe::AcQuantity::kImag: return v.imag();
  }
  return 0.0;  // unreachable
}

char op_char(Probe::Op op) {
  switch (op) {
    case Probe::Op::kAdd: return '+';
    case Probe::Op::kSub: return '-';
    case Probe::Op::kMul: return '*';
    case Probe::Op::kDiv: return '/';
  }
  return '+';  // unreachable
}

/// Shortest decimal text that strtod parses back to exactly `v`.
std::string format_double_roundtrip(double v) {
  for (int precision = 6; precision <= 17; ++precision) {
    std::ostringstream os;
    os.precision(precision);
    os << v;
    const std::string s = os.str();
    if (std::strtod(s.c_str(), nullptr) == v) return s;
  }
  return std::to_string(v);
}

}  // namespace

double Probe::eval(const Circuit& circuit, const Unknowns& x) const {
  switch (kind_) {
    case Kind::kConstant:
      return value_;
    case Kind::kNodeVoltage: {
      const NodeId n = circuit.find_node(target_);
      if (n < 0) {
        throw CircuitError("V(" + target_ + "): no node with that name");
      }
      if (target2_.empty()) return x.node_voltage(n);
      const NodeId n2 = circuit.find_node(target2_);
      if (n2 < 0) {
        throw CircuitError("V(" + target_ + "," + target2_ +
                           "): no node named '" + target2_ + "'");
      }
      return x.node_voltage(n) - x.node_voltage(n2);
    }
    case Kind::kBranchCurrent: {
      const Device* d = circuit.find(target_);
      if (d == nullptr) {
        throw CircuitError("I(" + target_ + "): no device with that name");
      }
      return device_branch_current(*d, x);
    }
    case Kind::kBjtCurrent:
      return bjt_terminal_current(circuit.get<Bjt>(target_), terminal_, x);
    case Kind::kAcVoltage:
      throw PlanError(to_string() +
                      ": AC probes have no value at a DC operating point "
                      "(run them through an .AC analysis)");
    case Kind::kExpression: {
      const double a = lhs().eval(circuit, x);
      const double b = rhs().eval(circuit, x);
      switch (op_) {
        case Op::kAdd: return a + b;
        case Op::kSub: return a - b;
        case Op::kMul: return a * b;
        case Op::kDiv: return a / b;
      }
      return 0.0;  // unreachable
    }
  }
  return 0.0;  // unreachable
}

std::string Probe::to_string() const {
  switch (kind_) {
    case Kind::kConstant:
      return format_double_roundtrip(value_);
    case Kind::kNodeVoltage:
      return "V(" + target_ + (target2_.empty() ? "" : "," + target2_) + ")";
    case Kind::kBranchCurrent:
      return "I(" + target_ + ")";
    case Kind::kBjtCurrent:
      return std::string(bjt_terminal_name(terminal_)) + "(" + target_ + ")";
    case Kind::kAcVoltage:
      return std::string(ac_quantity_name(quantity_)) + "(" + target_ +
             (target2_.empty() ? "" : "," + target2_) + ")";
    case Kind::kExpression:
      return "(" + lhs().to_string() + op_char(op_) + rhs().to_string() + ")";
  }
  return "0";  // unreachable
}

// -------------------------------------------------------- probe parser ---

namespace {

/// Recursive-descent parser over the probe grammar.
class ProbeParser {
 public:
  explicit ProbeParser(std::string_view text) : text_(text) {}

  Probe parse() {
    Probe p = expr();
    skip_ws();
    if (pos_ != text_.size()) {
      fail("unexpected trailing text '" + std::string(text_.substr(pos_)) +
           "'");
    }
    return p;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw PlanError("parse_probe: " + msg + " in '" + std::string(text_) +
                    "'");
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() {
    skip_ws();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  bool consume(char c) {
    if (peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Probe expr() {
    Probe p = term();
    for (;;) {
      if (consume('+')) {
        p = Probe::expression(Probe::Op::kAdd, std::move(p), term());
      } else if (consume('-')) {
        p = Probe::expression(Probe::Op::kSub, std::move(p), term());
      } else {
        return p;
      }
    }
  }

  Probe term() {
    Probe p = factor();
    for (;;) {
      if (consume('*')) {
        p = Probe::expression(Probe::Op::kMul, std::move(p), factor());
      } else if (consume('/')) {
        p = Probe::expression(Probe::Op::kDiv, std::move(p), factor());
      } else {
        return p;
      }
    }
  }

  Probe factor() {
    const char c = peek();
    if (c == '-') {
      ++pos_;
      Probe f = factor();
      if (f.kind() == Probe::Kind::kConstant) {
        return Probe::constant(-f.value());
      }
      return Probe::expression(Probe::Op::kSub, Probe::constant(0.0),
                               std::move(f));
    }
    if (c == '(') {
      ++pos_;
      Probe p = expr();
      if (!consume(')')) fail("expected ')'");
      return p;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
      return number();
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      return probe_atom();
    }
    fail("unexpected character");
  }

  Probe number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      const bool exp_sign =
          (c == '+' || c == '-') && pos_ > start &&
          (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E');
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '.' ||
          exp_sign) {
        ++pos_;
      } else {
        break;
      }
    }
    try {
      return Probe::constant(
          parse_spice_number(text_.substr(start, pos_ - start)));
    } catch (const NetlistError& e) {
      fail(e.what());
    }
  }

  Probe probe_atom() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    std::string ident(text_.substr(start, pos_ - start));
    for (char& ch : ident) {
      ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
    }
    if (!consume('(')) fail("expected '(' after '" + ident + "'");
    std::string name = atom_name();
    if (ident == "V") {
      // V(a,b) stays one typed pair (NOT sugar for V(a)-V(b)): in an .AC
      // analysis the pair reads the differential phasor's magnitude
      // |V(a)-V(b)|, which real subtraction of two magnitudes cannot
      // express.
      std::string second;
      if (consume(',')) second = atom_name();
      if (!consume(')')) fail("expected ')'");
      return Probe::node_voltage(std::move(name), std::move(second));
    }
    // AC phasor probes keep an optional second node *inside* the atom:
    // VDB(a,b) is the dB magnitude of the differential phasor, which does
    // not desugar to real arithmetic the way V(a,b) does.
    const auto ac_quantity =
        [&]() -> std::optional<Probe::AcQuantity> {
      if (ident == "VM") return Probe::AcQuantity::kMagnitude;
      if (ident == "VDB") return Probe::AcQuantity::kDb;
      if (ident == "VP") return Probe::AcQuantity::kPhaseDeg;
      if (ident == "VR") return Probe::AcQuantity::kReal;
      if (ident == "VI") return Probe::AcQuantity::kImag;
      return std::nullopt;
    }();
    if (ac_quantity.has_value()) {
      std::string second;
      if (consume(',')) second = atom_name();
      if (!consume(')')) fail("expected ')'");
      return Probe::ac_voltage(*ac_quantity, std::move(name),
                               std::move(second));
    }
    if (!consume(')')) fail("expected ')'");
    if (ident == "I") return Probe::branch_current(std::move(name));
    if (ident == "IC") {
      return Probe::bjt_current(std::move(name),
                                Probe::BjtTerminal::kCollector);
    }
    if (ident == "IB") {
      return Probe::bjt_current(std::move(name), Probe::BjtTerminal::kBase);
    }
    if (ident == "IE") {
      return Probe::bjt_current(std::move(name),
                                Probe::BjtTerminal::kEmitter);
    }
    if (ident == "ISUB") {
      return Probe::bjt_current(std::move(name),
                                Probe::BjtTerminal::kSubstrate);
    }
    fail("unknown probe function '" + ident + "'");
  }

  std::string atom_name() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != ')' && text_[pos_] != ',' &&
           !std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a node or device name");
    return std::string(text_.substr(start, pos_ - start));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Probe parse_probe(std::string_view text) { return ProbeParser(text).parse(); }

// ----------------------------------------------------------- SweepGrid ---

SweepGrid SweepGrid::linear(double first, double last, int n) {
  if (n < 2) throw PlanError("SweepGrid::linear: need at least two points");
  SweepGrid g;
  g.spacing_ = Spacing::kLinear;
  g.first_ = first;
  g.last_ = last;
  g.n_ = n;
  return g;
}

SweepGrid SweepGrid::log_decades(double first, double last, int per_decade) {
  if (!(first > 0.0 && last > first)) {
    throw PlanError("SweepGrid::log_decades: need 0 < first < last");
  }
  if (per_decade < 1) {
    throw PlanError("SweepGrid::log_decades: need >= 1 point per decade");
  }
  SweepGrid g;
  g.spacing_ = Spacing::kLogDecades;
  g.first_ = first;
  g.last_ = last;
  g.n_ = per_decade;
  return g;
}

SweepGrid SweepGrid::list(std::vector<double> values) {
  if (values.empty()) throw PlanError("SweepGrid::list: need >= 1 point");
  SweepGrid g;
  g.spacing_ = Spacing::kList;
  g.values_ = std::move(values);
  return g;
}

std::size_t SweepGrid::size() const {
  switch (spacing_) {
    case Spacing::kLinear:
      return static_cast<std::size_t>(n_);
    case Spacing::kLogDecades:
      return points().size();
    case Spacing::kList:
      return values_.size();
  }
  return 0;  // unreachable
}

std::vector<double> SweepGrid::points() const {
  switch (spacing_) {
    case Spacing::kLinear:
      return linspace(first_, last_, n_);
    case Spacing::kLogDecades:
      return logspace_decades(first_, last_, n_);
    case Spacing::kList:
      return values_;
  }
  return {};  // unreachable
}

// --------------------------------------------------------------- AcSpec ---

std::vector<double> AcSpec::frequencies() const {
  if (points < 1) throw PlanError("AcSpec: need at least one point");
  // f = 0 is the DC operating point, not an AC point: a zero (or
  // negative) frequency in any grid shape is a spec error, same as SPICE.
  if (!(fstart > 0.0)) throw PlanError("AcSpec: need fstart > 0");
  if (!(fstop >= fstart)) throw PlanError("AcSpec: need fstop >= fstart");
  switch (spacing) {
    case Spacing::kLinear: {
      if (points == 1 || fstop == fstart) return {fstart};
      return linspace(fstart, fstop, points);
    }
    case Spacing::kDecade:
    case Spacing::kOctave: {
      // f_k = fstart * base^(k / points) up to fstop, endpoint included
      // within one part in 1e9 (the SPICE DEC/OCT stepping rule).
      const double base = spacing == Spacing::kDecade ? 10.0 : 2.0;
      const double step =
          std::pow(base, 1.0 / static_cast<double>(points));
      std::vector<double> out;
      double f = fstart;
      while (f <= fstop * (1.0 + 1e-9)) {
        out.push_back(std::min(f, fstop));
        f *= step;
      }
      if (out.empty()) out.push_back(fstart);
      return out;
    }
  }
  return {};  // unreachable
}

// ----------------------------------------------------------- SweepAxis ---

SweepAxis SweepAxis::vsource(std::string device, SweepGrid grid) {
  return SweepAxis(Kind::kVsource, std::move(device), std::move(grid), false);
}

SweepAxis SweepAxis::isource(std::string device, SweepGrid grid) {
  return SweepAxis(Kind::kIsource, std::move(device), std::move(grid), false);
}

SweepAxis SweepAxis::temperature_kelvin(SweepGrid grid) {
  return SweepAxis(Kind::kTemperature, {}, std::move(grid), false);
}

SweepAxis SweepAxis::temperature_celsius(SweepGrid grid) {
  return SweepAxis(Kind::kTemperature, {}, std::move(grid), true);
}

SweepAxis SweepAxis::resistor(std::string device, SweepGrid grid) {
  return SweepAxis(Kind::kResistor, std::move(device), std::move(grid),
                   false);
}

std::string SweepAxis::label() const {
  if (kind_ == Kind::kTemperature) return celsius_ ? "TEMP" : "TEMP_K";
  return device_;
}

// --------------------------------------------------------- SweepResult ---

double SweepResult::axis_value(std::size_t axis, std::size_t row) const {
  ICVBE_REQUIRE(row < rows_, "SweepResult::axis_value: row out of range");
  if (outer_.empty()) {
    ICVBE_REQUIRE(axis == 0, "SweepResult::axis_value: 1-axis result");
    return inner_[row];
  }
  ICVBE_REQUIRE(axis < 2, "SweepResult::axis_value: axis out of range");
  const std::size_t inner_n = inner_.size();
  return axis == 0 ? outer_[row / inner_n] : inner_[row % inner_n];
}

Series SweepResult::series(std::size_t probe) const {
  ICVBE_REQUIRE(outer_.empty(),
                "SweepResult::series: 2-axis result, use series_family()");
  Series s(probe_labels_.at(probe));
  s.reserve(rows_);
  const std::vector<double>& col = columns_.at(probe);
  for (std::size_t i = 0; i < rows_; ++i) s.push_back(inner_[i], col[i]);
  return s;
}

std::vector<Series> SweepResult::series_family(std::size_t probe) const {
  ICVBE_REQUIRE(!outer_.empty(),
                "SweepResult::series_family: 1-axis result, use series()");
  const std::vector<double>& col = columns_.at(probe);
  std::vector<Series> out;
  out.reserve(outer_.size());
  const std::size_t inner_n = inner_.size();
  for (std::size_t o = 0; o < outer_.size(); ++o) {
    Series s(probe_labels_.at(probe) + " @ " + axis_labels_.at(0) + "=" +
             format_sig(outer_[o], 6));
    s.reserve(inner_n);
    for (std::size_t i = 0; i < inner_n; ++i) {
      s.push_back(inner_[i], col[o * inner_n + i]);
    }
    out.push_back(std::move(s));
  }
  return out;
}

Table SweepResult::table() const {
  std::vector<std::string> header = axis_labels_;
  header.insert(header.end(), probe_labels_.begin(), probe_labels_.end());
  Table t(header);
  const std::size_t n_axes = axis_count();
  for (std::size_t r = 0; r < rows_; ++r) {
    std::vector<std::string> row;
    row.reserve(header.size());
    for (std::size_t a = 0; a < n_axes; ++a) {
      row.push_back(format_sig(axis_value(a, r), 6));
    }
    for (std::size_t p = 0; p < columns_.size(); ++p) {
      row.push_back(format_sig(columns_[p][r], 6));
    }
    t.add_row(std::move(row));
  }
  return t;
}

void SweepResult::write_csv(std::ostream& os) const {
  std::vector<std::string> header = axis_labels_;
  header.insert(header.end(), probe_labels_.begin(), probe_labels_.end());
  // Expand the axis grids into per-row columns, then defer to the shared
  // writer.
  std::vector<std::vector<double>> axis_cols(axis_count());
  for (std::size_t a = 0; a < axis_cols.size(); ++a) {
    axis_cols[a].resize(rows_);
    for (std::size_t r = 0; r < rows_; ++r) {
      axis_cols[a][r] = axis_value(a, r);
    }
  }
  std::vector<const std::vector<double>*> cols;
  cols.reserve(axis_cols.size() + columns_.size());
  for (const auto& c : axis_cols) cols.push_back(&c);
  for (const auto& c : columns_) cols.push_back(&c);
  csv::write_columns(os, header, cols);
}

// ----------------------------------------------------- plan execution ---

namespace {

/// A sweep axis resolved against one concrete circuit: applying a value is
/// a pointer call, no lookups.
struct BoundAxis {
  SweepAxis::Kind kind = SweepAxis::Kind::kTemperature;
  bool celsius = false;
  Circuit* circuit = nullptr;
  VoltageSource* vsource = nullptr;
  CurrentSource* isource = nullptr;
  Resistor* resistor = nullptr;

  void apply(double value) const {
    switch (kind) {
      case SweepAxis::Kind::kVsource:
        vsource->set_voltage(value);
        break;
      case SweepAxis::Kind::kIsource:
        isource->set_current(value);
        break;
      case SweepAxis::Kind::kTemperature:
        circuit->set_temperature(celsius ? to_kelvin(value) : value);
        break;
      case SweepAxis::Kind::kResistor:
        resistor->set_nominal_resistance(value);
        // set_nominal_resistance resets R to the raw nominal; re-apply the
        // circuit temperature so the tempco scaling survives the sweep.
        if (circuit->has_temperature()) {
          resistor->set_temperature(circuit->temperature());
        }
        break;
    }
  }
};

BoundAxis bind_axis(const SweepAxis& axis, Circuit& circuit) {
  BoundAxis b;
  b.kind = axis.kind();
  b.celsius = axis.celsius();
  b.circuit = &circuit;
  switch (axis.kind()) {
    case SweepAxis::Kind::kVsource:
      b.vsource = &circuit.get<VoltageSource>(axis.device());
      break;
    case SweepAxis::Kind::kIsource:
      b.isource = &circuit.get<CurrentSource>(axis.device());
      break;
    case SweepAxis::Kind::kTemperature:
      break;
    case SweepAxis::Kind::kResistor:
      b.resistor = &circuit.get<Resistor>(axis.device());
      break;
  }
  return b;
}

/// One postfix instruction of a compiled probe.
struct ProbeInstr {
  enum class Code {
    kConst,
    kNode,
    kBranch,  ///< dispatch resolved at compile time via `sub`
    kBjt,
    kAcNode,  ///< AC domain: scalarised (differential) node phasor
    kAdd,
    kSub,
    kMul,
    kDiv,
  };

  Code code = Code::kConst;
  double value = 0.0;
  NodeId node = kGround;
  /// kNode / kAcNode differential reference (0 = ground / single-ended).
  NodeId node2 = kGround;
  const Device* dev = nullptr;
  BranchKind sub = BranchKind::kVsource;
  Probe::BjtTerminal terminal = Probe::BjtTerminal::kCollector;
  Probe::AcQuantity quantity = Probe::AcQuantity::kMagnitude;
};

/// A probe compiled against one circuit: a postfix program plus the stack
/// depth it needs. Evaluation is allocation- and lookup-free.
struct CompiledProbe {
  std::vector<ProbeInstr> program;
  std::size_t max_depth = 0;
};

/// Node lookup shared by the DC and AC leaf compilers.
NodeId resolve_node(const Circuit& circuit, const std::string& name,
                    const char* what) {
  const NodeId n = circuit.find_node(name);
  if (n < 0) {
    throw CircuitError(std::string(what) + "(" + name +
                       "): no node with that name");
  }
  return n;
}

void compile_into(const Probe& p, const Circuit& circuit, ProbeDomain domain,
                  std::vector<ProbeInstr>& out, std::size_t& depth,
                  std::size_t& max_depth) {
  switch (p.kind()) {
    case Probe::Kind::kConstant: {
      ProbeInstr i;
      i.code = ProbeInstr::Code::kConst;
      i.value = p.value();
      out.push_back(i);
      max_depth = std::max(max_depth, ++depth);
      return;
    }
    case Probe::Kind::kNodeVoltage: {
      ProbeInstr i;
      i.node = resolve_node(circuit, p.target(), "V");
      i.node2 = p.target2().empty()
                    ? kGround
                    : resolve_node(circuit, p.target2(), "V");
      if (domain == ProbeDomain::kAc) {
        // A bare V(node) in an AC analysis reads the phasor magnitude
        // (the SPICE .PRINT AC convention); V(a,b) the differential
        // phasor's magnitude |V(a)-V(b)|.
        i.code = ProbeInstr::Code::kAcNode;
        i.quantity = Probe::AcQuantity::kMagnitude;
      } else {
        i.code = ProbeInstr::Code::kNode;
      }
      out.push_back(i);
      max_depth = std::max(max_depth, ++depth);
      return;
    }
    case Probe::Kind::kBranchCurrent: {
      if (domain == ProbeDomain::kAc) {
        throw PlanError("I(" + p.target() +
                        "): branch-current probes are not available in an "
                        ".AC analysis (probe V/VM/VDB/VP quantities)");
      }
      const Device* d = circuit.find(p.target());
      if (d == nullptr) {
        throw CircuitError("I(" + p.target() + "): no device with that name");
      }
      const std::optional<BranchKind> kind = classify_branch(*d);
      if (!kind.has_value()) {
        throw CircuitError("I(" + p.target() +
                           "): device has no branch current (use IC/IB/IE "
                           "for BJTs)");
      }
      ProbeInstr i;
      i.code = ProbeInstr::Code::kBranch;
      i.dev = d;
      i.sub = *kind;
      out.push_back(i);
      max_depth = std::max(max_depth, ++depth);
      return;
    }
    case Probe::Kind::kBjtCurrent: {
      if (domain == ProbeDomain::kAc) {
        throw PlanError(std::string(bjt_terminal_name(p.terminal())) + "(" +
                        p.target() +
                        "): BJT terminal probes are not available in an "
                        ".AC analysis");
      }
      ProbeInstr i;
      i.code = ProbeInstr::Code::kBjt;
      i.dev = &circuit.get<Bjt>(p.target());
      i.terminal = p.terminal();
      out.push_back(i);
      max_depth = std::max(max_depth, ++depth);
      return;
    }
    case Probe::Kind::kAcVoltage: {
      if (domain != ProbeDomain::kAc) {
        throw PlanError(p.to_string() +
                        ": AC probes have no value at a DC operating point "
                        "(run them through an .AC analysis)");
      }
      ProbeInstr i;
      i.code = ProbeInstr::Code::kAcNode;
      i.quantity = p.ac_quantity();
      i.node = resolve_node(circuit, p.target(),
                            ac_quantity_name(p.ac_quantity()));
      i.node2 = p.target2().empty()
                    ? kGround
                    : resolve_node(circuit, p.target2(),
                                   ac_quantity_name(p.ac_quantity()));
      out.push_back(i);
      max_depth = std::max(max_depth, ++depth);
      return;
    }
    case Probe::Kind::kExpression: {
      compile_into(p.lhs(), circuit, domain, out, depth, max_depth);
      compile_into(p.rhs(), circuit, domain, out, depth, max_depth);
      ProbeInstr i;
      switch (p.op()) {
        case Probe::Op::kAdd: i.code = ProbeInstr::Code::kAdd; break;
        case Probe::Op::kSub: i.code = ProbeInstr::Code::kSub; break;
        case Probe::Op::kMul: i.code = ProbeInstr::Code::kMul; break;
        case Probe::Op::kDiv: i.code = ProbeInstr::Code::kDiv; break;
      }
      out.push_back(i);
      --depth;
      return;
    }
  }
}

CompiledProbe compile_probe(const Probe& p, const Circuit& circuit,
                            ProbeDomain domain = ProbeDomain::kDc) {
  CompiledProbe c;
  std::size_t depth = 0;
  compile_into(p, circuit, domain, c.program, depth, c.max_depth);
  return c;
}

/// Phasor of unknown index (node - 1); ground reads 0.
linalg::Complex ac_node_phasor(const linalg::ComplexVector& x, NodeId n) {
  return n == kGround ? linalg::Complex{}
                      : x[static_cast<std::size_t>(n - 1)];
}

/// The ONE postfix interpreter both evaluation domains share: constants
/// and the four operators are common; every other opcode is a leaf handed
/// to `leaf(instr)` (the compile-time domain check guarantees only that
/// domain's leaves appear in the program).
template <typename LeafFn>
double run_probe_program(const CompiledProbe& probe,
                         std::vector<double>& stack, LeafFn&& leaf) {
  std::size_t sp = 0;
  for (const ProbeInstr& i : probe.program) {
    switch (i.code) {
      case ProbeInstr::Code::kConst:
        stack[sp++] = i.value;
        break;
      case ProbeInstr::Code::kAdd:
        --sp;
        stack[sp - 1] += stack[sp];
        break;
      case ProbeInstr::Code::kSub:
        --sp;
        stack[sp - 1] -= stack[sp];
        break;
      case ProbeInstr::Code::kMul:
        --sp;
        stack[sp - 1] *= stack[sp];
        break;
      case ProbeInstr::Code::kDiv:
        --sp;
        stack[sp - 1] /= stack[sp];
        break;
      default:
        stack[sp++] = leaf(i);
        break;
    }
  }
  return stack[0];
}

double eval_compiled(const CompiledProbe& probe, const Unknowns& x,
                     std::vector<double>& stack) {
  return run_probe_program(probe, stack, [&x](const ProbeInstr& i) {
    switch (i.code) {
      case ProbeInstr::Code::kNode:
        return x.node_voltage(i.node) - x.node_voltage(i.node2);
      case ProbeInstr::Code::kBranch:
        return branch_current_of(i.sub, *i.dev, x);
      case ProbeInstr::Code::kBjt:
        return bjt_terminal_current(*static_cast<const Bjt*>(i.dev),
                                    i.terminal, x);
      default:
        // kAcNode is unreachable: kDc compilation rejects AC leaves.
        return 0.0;
    }
  });
}

/// AC-domain twin of eval_compiled: leaves read (differential) node
/// phasors out of the complex solution and scalarise them; arithmetic is
/// real as usual.
double eval_compiled_ac(const CompiledProbe& probe,
                        const linalg::ComplexVector& x,
                        std::vector<double>& stack) {
  return run_probe_program(probe, stack, [&x](const ProbeInstr& i) {
    // kAcNode is the only leaf a kAc compilation emits.
    return ac_quantity_value(
        i.quantity, ac_node_phasor(x, i.node) - ac_node_phasor(x, i.node2));
  });
}

/// Everything one executor (the session itself or a per-thread clone)
/// needs to run rows of a plan.
struct BoundPlan {
  BoundAxis outer;  ///< unused for 1-axis plans
  BoundAxis inner;
  std::vector<CompiledProbe> probes;
  std::vector<double> stack;
  std::vector<double> probe_row;  ///< staging row for RunObserver delivery

  BoundPlan(const AnalysisPlan& plan, Circuit& circuit) {
    if (plan.axes.size() == 2) outer = bind_axis(plan.axes.front(), circuit);
    inner = bind_axis(plan.axes.back(), circuit);
    probes.reserve(plan.probes.size());
    std::size_t max_depth = 1;
    for (const Probe& p : plan.probes) {
      probes.push_back(compile_probe(p, circuit));
      max_depth = std::max(max_depth, probes.back().max_depth);
    }
    stack.assign(max_depth, 0.0);
    probe_row.assign(plan.probes.size(), 0.0);
  }
};

/// Shared streaming state of one run() execution: the observer (may be
/// null) plus the cooperative cancel flag every executor -- the session
/// itself or the parallel workers -- polls. Cancellation can only
/// originate from the observer, so a null observer makes the whole
/// streaming path a no-op and keeps the per-point loop allocation-free
/// and bit-identical to the pre-streaming code.
struct ObserverStream {
  RunObserver* observer = nullptr;
  std::atomic<bool> cancelled{false};

  [[nodiscard]] bool active() const noexcept { return observer != nullptr; }

  /// Deliver one completed row; throws CancelledError if this or any
  /// other executor was cancelled. Safe to call from worker threads (the
  /// RunObserver contract makes on_row implementations synchronise).
  void deliver(std::size_t row, const double* axes, std::size_t axis_count,
               const double* probes, std::size_t probe_count,
               const std::string& run_name) {
    if (cancelled.load(std::memory_order_relaxed)) {
      throw CancelledError(run_name + ": cancelled");
    }
    if (!observer->on_row(row, axes, axis_count, probes, probe_count)) {
      cancelled.store(true, std::memory_order_relaxed);
      throw CancelledError(run_name + ": cancelled by observer");
    }
  }
};

/// Sweep the inner axis once, filling rows [row_base, row_base + n) of the
/// result columns. Allocation-free per point on the happy path.
///
/// If a point fails to converge and the run carries a seed (the warm
/// start live when run() was called, e.g. .NODESET hints or an analytic
/// startup guess), the point is retried once from that seed with device
/// state reset -- the plan-level equivalent of solve_warm_or's fallback.
/// Sparse grids can put adjacent points hundreds of kelvin apart, where
/// pure continuation slides into the wrong basin; the retry is
/// deterministic, so thread-count invariance is preserved.
void run_inner_sweep(SimSession& session, BoundPlan& bound,
                     const AnalysisPlan& plan,
                     const std::vector<double>& inner_values,
                     std::size_t row_base, const Unknowns* seed,
                     std::vector<std::vector<double>>& columns,
                     ObserverStream& stream,
                     const double* outer_value = nullptr) {
  for (std::size_t j = 0; j < inner_values.size(); ++j) {
    bound.inner.apply(inner_values[j]);
    const DcResult* r = &session.solve();
    if (!r->converged && seed != nullptr) {
      for (const auto& dev : session.circuit().devices()) dev->reset_state();
      session.invalidate_warm_start();
      session.seed_warm_start(*seed);
      bound.inner.apply(inner_values[j]);
      r = &session.solve();
    }
    if (!r->converged) {
      throw NumericalError(plan.name + ": DC solve failed at " +
                           plan.axes.back().label() + "=" +
                           format_sig(inner_values[j], 6));
    }
    for (std::size_t p = 0; p < bound.probes.size(); ++p) {
      columns[p][row_base + j] =
          eval_compiled(bound.probes[p], r->solution, bound.stack);
    }
    if (stream.active()) {
      double axes[2];
      std::size_t axis_count = 0;
      if (outer_value != nullptr) axes[axis_count++] = *outer_value;
      axes[axis_count++] = inner_values[j];
      for (std::size_t p = 0; p < bound.probes.size(); ++p) {
        bound.probe_row[p] = columns[p][row_base + j];
      }
      stream.deliver(row_base + j, axes, axis_count, bound.probe_row.data(),
                     bound.probe_row.size(), plan.name);
    }
  }
}

/// One outer row from its deterministic start state: devices reset, warm
/// start re-seeded from `seed` (or cold). Row results therefore depend
/// only on (circuit, plan, outer index), never on which executor computed
/// the previous row -- the property that makes any thread count
/// bit-identical.
void run_outer_row(SimSession& session, BoundPlan& bound,
                   const AnalysisPlan& plan,
                   const std::vector<double>& inner_values,
                   std::size_t outer_idx, double outer_value,
                   const Unknowns* seed,
                   std::vector<std::vector<double>>& columns,
                   ObserverStream& stream) {
  for (const auto& dev : session.circuit().devices()) dev->reset_state();
  session.invalidate_warm_start();
  if (seed != nullptr) session.seed_warm_start(*seed);
  bound.outer.apply(outer_value);
  run_inner_sweep(session, bound, plan, inner_values,
                  outer_idx * inner_values.size(), seed, columns, stream,
                  &outer_value);
}

}  // namespace

bool probe_supported_in(const Probe& probe, ProbeDomain domain) noexcept {
  switch (probe.kind()) {
    case Probe::Kind::kConstant:
    case Probe::Kind::kNodeVoltage:
      return true;
    case Probe::Kind::kBranchCurrent:
    case Probe::Kind::kBjtCurrent:
      return domain == ProbeDomain::kDc;
    case Probe::Kind::kAcVoltage:
      return domain == ProbeDomain::kAc;
    case Probe::Kind::kExpression:
      return probe_supported_in(probe.lhs(), domain) &&
             probe_supported_in(probe.rhs(), domain);
  }
  return false;  // unreachable
}

// ------------------------------------------------------- AnalysisKind ---

AnalysisKind analysis_kind(const AnalysisPlan& plan) {
  if (plan.transient.has_value()) return AnalysisKind::kTransient;
  if (plan.ac.has_value()) return AnalysisKind::kAc;
  return AnalysisKind::kDcSweep;
}

const char* to_token(AnalysisKind kind) {
  switch (kind) {
    case AnalysisKind::kDcSweep: return "DC";
    case AnalysisKind::kTransient: return "TRAN";
    case AnalysisKind::kAc: return "AC";
  }
  return "DC";  // unreachable
}

AnalysisKind analysis_kind_from_token(std::string_view token) {
  std::string upper(token);
  for (char& c : upper) c = static_cast<char>(std::toupper(c));
  if (upper == "DC") return AnalysisKind::kDcSweep;
  if (upper == "TRAN") return AnalysisKind::kTransient;
  if (upper == "AC") return AnalysisKind::kAc;
  throw PlanError("unknown analysis '" + std::string(token) +
                  "' (expected DC, TRAN, or AC)");
}

// ----------------------------------------------------- CompiledProbeSet ---

struct CompiledProbeSet::Impl {
  std::vector<CompiledProbe> probes;
  mutable std::vector<double> stack;  ///< shared evaluation stack
};

CompiledProbeSet::CompiledProbeSet(const std::vector<Probe>& probes,
                                   const Circuit& circuit, ProbeDomain domain)
    : impl_(std::make_unique<Impl>()) {
  impl_->probes.reserve(probes.size());
  std::size_t max_depth = 1;
  for (const Probe& p : probes) {
    impl_->probes.push_back(compile_probe(p, circuit, domain));
    max_depth = std::max(max_depth, impl_->probes.back().max_depth);
  }
  impl_->stack.assign(max_depth, 0.0);
}

CompiledProbeSet::~CompiledProbeSet() = default;
CompiledProbeSet::CompiledProbeSet(CompiledProbeSet&&) noexcept = default;
CompiledProbeSet& CompiledProbeSet::operator=(CompiledProbeSet&&) noexcept =
    default;

std::size_t CompiledProbeSet::size() const noexcept {
  return impl_->probes.size();
}

double CompiledProbeSet::eval(std::size_t i, const Unknowns& x) const {
  return eval_compiled(impl_->probes.at(i), x, impl_->stack);
}

double CompiledProbeSet::eval_ac(std::size_t i,
                                 const linalg::ComplexVector& x) const {
  return eval_compiled_ac(impl_->probes.at(i), x, impl_->stack);
}

SweepResult SimSession::run_ac(const AnalysisPlan& plan,
                               RunObserver* observer) {
  const std::vector<double> freqs = plan.ac->frequencies();

  SweepResult out;
  out.axis_labels_ = {"FREQ"};
  out.inner_ = freqs;
  out.rows_ = freqs.size();
  for (const Probe& p : plan.probes) {
    out.probe_labels_.push_back(p.to_string());
  }
  out.columns_.resize(plan.probes.size());
  for (auto& col : out.columns_) col.resize(out.rows_);

  ObserverStream stream{observer};
  if (stream.active()) {
    observer->on_begin(out.axis_labels_, out.probe_labels_, out.rows_);
  }

  // One committed operating point serves the whole sweep. The plan path
  // always SOLVES it -- a live warm-start seed (.NODESET hints, an
  // analytic guess) is a starting point for Newton here, never a
  // substitute for convergence. Solving once up front also pins the copy
  // the parallel workers inherit verbatim, so every thread count
  // linearises about the same bits. (SimSession::solve_ac alone is the
  // low-level hook that accepts a seeded vector as the OP directly; the
  // workers below use exactly that to inherit this op.)
  (void)solve_or_throw();
  const Unknowns op = result_.solution;

  unsigned threads = common::resolve_thread_count(plan.threads);
  threads = std::min<unsigned>(threads, static_cast<unsigned>(freqs.size()));

  if (threads <= 1) {
    // Re-pin the session's cached sparse analysis to THIS plan's first
    // frequency. A previous solve_ac (or a run over a different grid)
    // may have pinned it elsewhere, and the parallel path's fresh
    // workers always prime at freqs.front() -- without the re-pin the
    // serial and parallel factorisations could use different pivot
    // orders and the thread-count bit-identity promise would break.
    ac_prime_omega_ = 2.0 * M_PI * freqs.front();
    ac_pinned_analysis_ = -1;  // any live analysis re-pins on first use
    const CompiledProbeSet probes(plan.probes, *circuit_, ProbeDomain::kAc);
    std::vector<double> probe_row(plan.probes.size(), 0.0);
    for (std::size_t i = 0; i < freqs.size(); ++i) {
      const linalg::ComplexVector& xac = solve_ac(2.0 * M_PI * freqs[i]);
      for (std::size_t p = 0; p < probes.size(); ++p) {
        out.columns_[p][i] = probes.eval_ac(p, xac);
      }
      if (stream.active()) {
        for (std::size_t p = 0; p < probes.size(); ++p) {
          probe_row[p] = out.columns_[p][i];
        }
        stream.deliver(i, &freqs[i], 1, probe_row.data(), probe_row.size(),
                       plan.name);
      }
    }
    return out;
  }

  // Parallel frequency fanout over per-thread circuit clones. Every point
  // is an independent linear solve about the shared OP, so workers pull
  // indices from a counter and write their own preallocated slots.
  // Bit-identity for any thread count needs two pins: the OP is the
  // parent's (seeded, never re-solved), and every worker primes its
  // sparse symbolic analysis at the sweep's FIRST frequency -- otherwise
  // the threshold pivoting would run at whichever point a worker happened
  // to draw first and the factor could differ across schedules.
  NewtonOptions worker_options = plan.options;
  worker_options.sparse =
      use_sparse_ ? SparseMode::kSparse : SparseMode::kDense;
  std::atomic<std::size_t> next{0};
  common::fan_out(threads, [&]() {
    Circuit clone = circuit_->clone();
    SimSession session(clone, worker_options);
    session.seed_warm_start(op);
    const CompiledProbeSet probes(plan.probes, clone, ProbeDomain::kAc);
    std::vector<double> probe_row(plan.probes.size(), 0.0);
    (void)session.solve_ac(2.0 * M_PI * freqs.front());  // prime analysis
    for (;;) {
      if (stream.cancelled.load(std::memory_order_relaxed)) break;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= freqs.size()) break;
      const linalg::ComplexVector& xac =
          session.solve_ac(2.0 * M_PI * freqs[i]);
      for (std::size_t p = 0; p < probes.size(); ++p) {
        out.columns_[p][i] = probes.eval_ac(p, xac);
      }
      if (stream.active()) {
        for (std::size_t p = 0; p < probes.size(); ++p) {
          probe_row[p] = out.columns_[p][i];
        }
        stream.deliver(i, &freqs[i], 1, probe_row.data(), probe_row.size(),
                       plan.name);
      }
    }
  });
  // A cancelling worker throws CancelledError from deliver(); fan_out
  // rethrows it here after every worker has stopped.
  return out;
}

Series SimSession::sweep(const SweepAxis& axis, const SweepProbe& probe,
                         const std::string& name) {
  const BoundAxis bound = bind_axis(axis, *circuit_);
  return sweep(axis.grid().points(),
               [&bound](double v) { bound.apply(v); }, probe, name);
}

SweepResult SimSession::run(const AnalysisPlan& plan, RunObserver* observer) {
  // Run under the plan's solver options; restore the session's own on all
  // exit paths (shared by the transient and sweep branches).
  struct OptionsGuard {
    SimSession* session;
    NewtonOptions saved;
    ~OptionsGuard() { session->options() = saved; }
  } guard{this, options_};
  options_ = plan.options;

  if (plan.transient.has_value() && plan.ac.has_value()) {
    throw PlanError(plan.name +
                    ": a plan carries either a transient or an AC spec, "
                    "not both");
  }
  if (plan.transient.has_value()) {
    if (!plan.axes.empty()) {
      throw PlanError(plan.name +
                      ": a transient plan cannot also carry sweep axes");
    }
    if (plan.probes.empty()) {
      throw PlanError(plan.name + ": plan needs at least one probe");
    }
    TransientSolver solver(*this, *plan.transient);
    return solver.run(plan.probes, observer);
  }
  if (plan.ac.has_value()) {
    if (!plan.axes.empty()) {
      throw PlanError(plan.name +
                      ": an AC plan cannot also carry sweep axes");
    }
    if (plan.probes.empty()) {
      throw PlanError(plan.name + ": plan needs at least one probe");
    }
    return run_ac(plan, observer);
  }
  if (plan.axes.empty()) {
    throw PlanError(plan.name + ": plan needs at least one sweep axis");
  }
  if (plan.axes.size() > 2) {
    throw PlanError(plan.name + ": at most two nested sweep axes");
  }
  if (plan.probes.empty()) {
    throw PlanError(plan.name + ": plan needs at least one probe");
  }
  if (plan.axes.size() == 2) {
    const SweepAxis& outer = plan.axes.front();
    const SweepAxis& inner = plan.axes.back();
    const bool both_temperature =
        outer.kind() == SweepAxis::Kind::kTemperature &&
        inner.kind() == SweepAxis::Kind::kTemperature;
    if (both_temperature ||
        (!outer.device().empty() && outer.device() == inner.device())) {
      throw PlanError(plan.name + ": both axes sweep '" + outer.label() +
                      "' -- the inner axis would silently override the "
                      "outer one");
    }
  }

  SweepResult out;
  const bool two_axis = plan.axes.size() == 2;
  out.inner_ = plan.axes.back().grid().points();
  if (two_axis) out.outer_ = plan.axes.front().grid().points();
  for (const SweepAxis& axis : plan.axes) {
    out.axis_labels_.push_back(axis.label());
  }
  for (const Probe& p : plan.probes) {
    out.probe_labels_.push_back(p.to_string());
  }
  const std::size_t inner_n = out.inner_.size();
  const std::size_t outer_n = two_axis ? out.outer_.size() : 1;
  out.rows_ = inner_n * outer_n;
  out.columns_.resize(plan.probes.size());
  for (auto& col : out.columns_) col.resize(out.rows_);

  std::vector<std::vector<double>>& columns = out.columns_;

  ObserverStream stream{observer};
  if (stream.active()) {
    observer->on_begin(out.axis_labels_, out.probe_labels_, out.rows_);
  }

  // The warm start live at run() entry (e.g. .NODESET hints or an
  // analytic startup guess) doubles as the deterministic seed: 2-axis
  // rows start from it, and failed points retry from it.
  const bool seeded = have_last_;
  const Unknowns row_seed = seeded ? result_.solution : Unknowns{};
  const Unknowns* seed = seeded ? &row_seed : nullptr;

  if (!two_axis) {
    // Single axis: run in place, inheriting the session's continuation
    // state -- identical semantics to sweep().
    BoundPlan bound(plan, *circuit_);
    run_inner_sweep(*this, bound, plan, out.inner_, 0, seed, columns, stream);
    return out;
  }

  unsigned threads = common::resolve_thread_count(plan.threads);
  threads = std::min<unsigned>(threads, static_cast<unsigned>(outer_n));

  // Batched outer-row fanout (.STEP corner families): workers claim
  // lanes-wide groups of rows and drive them through one BatchDcSession --
  // one symbolic analysis and one K-wide LU refactor/solve per Newton
  // iteration instead of per-row scalar factorisations. Sparse engine
  // only (the batch kernel is sparse, and mixing engines would break
  // bit-identity with the scalar path); a row whose lane leaves the
  // lockstep is re-run through the ordinary scalar row path on its clone,
  // which is exactly what the per-row fallback ladder would have done.
  if (plan.lanes > 1 && use_sparse_) {
    NewtonOptions lane_options = plan.options;
    lane_options.sparse = SparseMode::kSparse;
    const auto lane_w = std::min<std::size_t>(plan.lanes, outer_n);
    const std::size_t groups = (outer_n + lane_w - 1) / lane_w;
    unsigned lane_threads = common::resolve_thread_count(plan.threads);
    lane_threads =
        std::min<unsigned>(lane_threads, static_cast<unsigned>(groups));
    const std::size_t inner_n2 = out.inner_.size();
    std::atomic<std::size_t> next_group{0};
    common::fan_out(lane_threads, [&]() {
      std::vector<Circuit> clones;
      clones.reserve(lane_w);
      std::vector<Circuit*> ptrs;
      std::vector<BoundPlan> bounds;
      bounds.reserve(lane_w);
      for (std::size_t l = 0; l < lane_w; ++l) {
        clones.push_back(circuit_->clone());
      }
      for (std::size_t l = 0; l < lane_w; ++l) {
        ptrs.push_back(&clones[l]);
        bounds.emplace_back(plan, clones[l]);
      }
      BatchDcSession batch(std::move(ptrs), lane_options);
      // Deterministic prime: row 0's first point start state -- a pure
      // function of (circuit, plan), so the pinned pivot sequence never
      // depends on which worker claims which group.
      batch.begin_variant(0);
      if (seed != nullptr) batch.seed_warm_start(0, *seed);
      bounds[0].outer.apply(out.outer_[0]);
      bounds[0].inner.apply(out.inner_[0]);
      batch.prime(0);

      std::vector<std::size_t> row(lane_w, 0);
      std::vector<unsigned char> solo(lane_w, 0);
      for (;;) {
        if (stream.cancelled.load(std::memory_order_relaxed)) break;
        const std::size_t g =
            next_group.fetch_add(1, std::memory_order_relaxed);
        if (g >= groups) break;
        const std::size_t first = g * lane_w;
        const std::size_t group_size = std::min(lane_w, outer_n - first);
        for (std::size_t l = 0; l < lane_w; ++l) {
          if (l >= group_size) {
            batch.set_lane_active(l, false);
            continue;
          }
          row[l] = first + l;
          solo[l] = 0;
          // The deterministic row start of run_outer_row: devices reset,
          // warm re-seeded (or cold), outer value applied.
          batch.begin_variant(l);
          if (seed != nullptr) batch.seed_warm_start(l, *seed);
          bounds[l].outer.apply(out.outer_[row[l]]);
          batch.set_lane_active(l, true);
        }
        for (std::size_t j = 0; j < inner_n2; ++j) {
          for (std::size_t l = 0; l < group_size; ++l) {
            if (batch.lane_active(l)) bounds[l].inner.apply(out.inner_[j]);
          }
          batch.solve_active();
          for (std::size_t l = 0; l < group_size; ++l) {
            if (!batch.lane_active(l)) continue;
            if (!batch.status(l).converged) {
              solo[l] = 1;  // scalar rerun replays the full fallback ladder
              batch.set_lane_active(l, false);
              continue;
            }
            const Unknowns& x = batch.solution(l);
            const std::size_t r = row[l] * inner_n2 + j;
            for (std::size_t p = 0; p < bounds[l].probes.size(); ++p) {
              columns[p][r] = eval_compiled(bounds[l].probes[p], x,
                                            bounds[l].stack);
            }
            if (stream.active()) {
              double axes[2] = {out.outer_[row[l]], out.inner_[j]};
              for (std::size_t p = 0; p < bounds[l].probes.size(); ++p) {
                bounds[l].probe_row[p] = columns[p][r];
              }
              stream.deliver(r, axes, 2, bounds[l].probe_row.data(),
                             bounds[l].probe_row.size(), plan.name);
            }
          }
        }
        for (std::size_t l = 0; l < group_size; ++l) {
          if (!solo[l]) continue;
          SimSession solo_session(clones[l], lane_options);
          run_outer_row(solo_session, bounds[l], plan, out.inner_, row[l],
                        out.outer_[row[l]], seed, columns, stream);
        }
      }
    });
    return out;
  }

  if (threads <= 1) {
    BoundPlan bound(plan, *circuit_);
    for (std::size_t o = 0; o < outer_n; ++o) {
      run_outer_row(*this, bound, plan, out.inner_, o, out.outer_[o], seed,
                    columns, stream);
    }
    return out;
  }

  // Parallel outer fanout over per-thread circuit clones: workers pull row
  // indices from a shared counter and write only their own preallocated
  // slots (the LotCampaign discipline) -- scheduling decides who computes
  // a row, never what it yields. Workers are pinned to this session's
  // bind-time linear engine: dense and sparse LU round differently, so a
  // thread-count-dependent engine choice would break bit-identity with
  // the serial path.
  NewtonOptions worker_options = plan.options;
  worker_options.sparse =
      use_sparse_ ? SparseMode::kSparse : SparseMode::kDense;
  std::atomic<std::size_t> next{0};
  common::fan_out(threads, [&]() {
    Circuit clone = circuit_->clone();
    SimSession session(clone, worker_options);
    BoundPlan bound(plan, clone);
    for (;;) {
      if (stream.cancelled.load(std::memory_order_relaxed)) break;
      const std::size_t o = next.fetch_add(1, std::memory_order_relaxed);
      if (o >= outer_n) break;
      run_outer_row(session, bound, plan, out.inner_, o, out.outer_[o], seed,
                    columns, stream);
    }
  });
  // A cancelling worker throws CancelledError from deliver(); fan_out
  // rethrows it here after every worker has stopped.
  return out;
}

}  // namespace icvbe::spice
