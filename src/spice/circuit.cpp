#include "icvbe/spice/circuit.hpp"

#include "icvbe/common/error.hpp"

namespace icvbe::spice {

NodeId Circuit::node(std::string_view name) {
  auto it = node_ids_.find(name);
  if (it != node_ids_.end()) return it->second;
  const NodeId id = static_cast<NodeId>(node_names_.size());
  node_names_.emplace_back(name);
  node_ids_.emplace(std::string(name), id);
  return id;
}

const std::string& Circuit::node_name(NodeId n) const {
  ICVBE_REQUIRE(n >= 0 && n < node_count(), "Circuit::node_name: bad node id");
  return node_names_[static_cast<std::size_t>(n)];
}

NodeId Circuit::find_node(std::string_view name) const {
  auto it = node_ids_.find(name);
  return it == node_ids_.end() ? NodeId{-1} : it->second;
}

Circuit Circuit::clone() const {
  Circuit copy;
  copy.node_names_ = node_names_;
  copy.node_ids_ = node_ids_;
  copy.device_index_ = device_index_;
  copy.temperature_ = temperature_;
  copy.has_temperature_ = has_temperature_;
  copy.devices_.reserve(devices_.size());
  for (const auto& dev : devices_) copy.devices_.push_back(dev->clone());
  return copy;
}

void Circuit::require_unique_name(const std::string& name) const {
  if (device_index_.contains(name)) {
    throw CircuitError("duplicate device name '" + name + "'");
  }
}

template <typename T, typename... Args>
T& Circuit::emplace(Args&&... args) {
  auto dev = std::make_unique<T>(std::forward<Args>(args)...);
  require_unique_name(dev->name());
  T& ref = *dev;
  device_index_.emplace(dev->name(), devices_.size());
  devices_.push_back(std::move(dev));
  return ref;
}

Resistor& Circuit::add_resistor(std::string name, NodeId a, NodeId b,
                                double ohms, double tc1, double tc2) {
  return emplace<Resistor>(std::move(name), a, b, ohms, tc1, tc2);
}

VoltageSource& Circuit::add_vsource(std::string name, NodeId p, NodeId m,
                                    double volts) {
  return emplace<VoltageSource>(std::move(name), p, m, volts);
}

CurrentSource& Circuit::add_isource(std::string name, NodeId p, NodeId m,
                                    double amps) {
  return emplace<CurrentSource>(std::move(name), p, m, amps);
}

Vcvs& Circuit::add_vcvs(std::string name, NodeId p, NodeId m, NodeId cp,
                        NodeId cm, double gain) {
  return emplace<Vcvs>(std::move(name), p, m, cp, cm, gain);
}

OpAmp& Circuit::add_opamp(std::string name, NodeId out, NodeId inp,
                          NodeId inn, double gain, double offset) {
  return emplace<OpAmp>(std::move(name), out, inp, inn, gain, offset);
}

Diode& Circuit::add_diode(std::string name, NodeId anode, NodeId cathode,
                          DiodeModel model, double area) {
  return emplace<Diode>(std::move(name), anode, cathode, model, area);
}

Bjt& Circuit::add_bjt(std::string name, NodeId collector, NodeId base,
                      NodeId emitter, BjtModel model, double area,
                      NodeId substrate) {
  return emplace<Bjt>(std::move(name), collector, base, emitter, model, area,
                      substrate);
}

Mosfet& Circuit::add_mosfet(std::string name, NodeId drain, NodeId gate,
                            NodeId source, MosfetModel model,
                            double w_over_l) {
  return emplace<Mosfet>(std::move(name), drain, gate, source, model,
                         w_over_l);
}

Capacitor& Circuit::add_capacitor(std::string name, NodeId a, NodeId b,
                                  double farads, double ic_volts) {
  return emplace<Capacitor>(std::move(name), a, b, farads, ic_volts);
}

Inductor& Circuit::add_inductor(std::string name, NodeId p, NodeId m,
                                double henries, double ic_amps) {
  return emplace<Inductor>(std::move(name), p, m, henries, ic_amps);
}

Device* Circuit::find(std::string_view name) {
  auto it = device_index_.find(name);
  return it == device_index_.end() ? nullptr : devices_[it->second].get();
}

const Device* Circuit::find(std::string_view name) const {
  auto it = device_index_.find(name);
  return it == device_index_.end() ? nullptr : devices_[it->second].get();
}

int Circuit::assign_unknowns() {
  int next = node_count() - 1;  // node unknowns first (ground excluded)
  for (auto& dev : devices_) {
    if (dev->aux_count() > 0) {
      dev->set_first_aux(next);
      next += dev->aux_count();
    }
  }
  return next;
}

void Circuit::set_temperature(double t_kelvin) {
  temperature_ = t_kelvin;
  has_temperature_ = true;
  for (auto& dev : devices_) {
    dev->set_temperature(t_kelvin);
    dev->reset_state();
  }
}

void Circuit::set_device_temperature(std::string_view name, double t_kelvin) {
  Device* d = find(name);
  if (d == nullptr) {
    throw CircuitError("set_device_temperature: no device named '" +
                       std::string(name) + "'");
  }
  d->set_temperature(t_kelvin);
  d->reset_state();
}

double Circuit::total_power(const Unknowns& x) const {
  double p = 0.0;
  for (const auto& dev : devices_) p += dev->power(x);
  return p;
}

}  // namespace icvbe::spice
