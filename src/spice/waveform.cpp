#include "icvbe/spice/waveform.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "icvbe/common/error.hpp"
#include "icvbe/common/table.hpp"

namespace icvbe::spice {

Waveform Waveform::dc(double value) {
  Waveform w;
  w.kind_ = Kind::kDc;
  w.p_[0] = value;
  return w;
}

Waveform Waveform::pulse(double v1, double v2, double td, double tr,
                         double tf, double pw, double per) {
  ICVBE_REQUIRE(td >= 0.0 && tr >= 0.0 && tf >= 0.0,
                "Waveform::pulse: td/tr/tf must be >= 0");
  if (per > 0.0) {
    ICVBE_REQUIRE(pw >= 0.0, "Waveform::pulse: periodic pulse needs pw >= 0");
    ICVBE_REQUIRE(per >= tr + pw + tf,
                  "Waveform::pulse: period shorter than tr + pw + tf");
  }
  Waveform w;
  w.kind_ = Kind::kPulse;
  w.p_[0] = v1;
  w.p_[1] = v2;
  w.p_[2] = td;
  w.p_[3] = tr;
  w.p_[4] = tf;
  w.p_[5] = pw;
  w.p_[6] = per;
  return w;
}

Waveform Waveform::sin(double vo, double va, double freq, double td,
                       double theta) {
  ICVBE_REQUIRE(freq > 0.0, "Waveform::sin: frequency must be > 0");
  ICVBE_REQUIRE(td >= 0.0, "Waveform::sin: delay must be >= 0");
  Waveform w;
  w.kind_ = Kind::kSin;
  w.p_[0] = vo;
  w.p_[1] = va;
  w.p_[2] = freq;
  w.p_[3] = td;
  w.p_[4] = theta;
  return w;
}

Waveform Waveform::pwl(std::vector<std::pair<double, double>> points) {
  ICVBE_REQUIRE(!points.empty(), "Waveform::pwl: need at least one knot");
  for (std::size_t i = 0; i < points.size(); ++i) {
    ICVBE_REQUIRE(std::isfinite(points[i].first) &&
                      std::isfinite(points[i].second),
                  "Waveform::pwl: knots must be finite");
    if (i > 0) {
      ICVBE_REQUIRE(points[i].first >= points[i - 1].first,
                    "Waveform::pwl: times must be non-decreasing");
    }
  }
  Waveform w;
  w.kind_ = Kind::kPwl;
  w.points_ = std::move(points);
  return w;
}

double Waveform::dc_value() const {
  switch (kind_) {
    case Kind::kDc:
      return p_[0];
    case Kind::kPulse:
      return p_[0];  // v1, the pre-delay level
    case Kind::kSin:
      return p_[0];  // vo, the offset
    case Kind::kPwl:
      return points_.front().second;  // first knot's value
  }
  return 0.0;  // unreachable
}

double Waveform::value_at(double t) const {
  if (t < 0.0) t = 0.0;
  switch (kind_) {
    case Kind::kDc:
      return p_[0];
    case Kind::kPulse: {
      const double v1 = p_[0], v2 = p_[1], td = p_[2], tr = p_[3],
                   tf = p_[4], pw = p_[5], per = p_[6];
      // Inclusive: the value at the exact edge start is still v1, so a
      // td = tr = 0 step reads v1 at t = 0 (the SPICE DC convention) and
      // v2 for any t > 0.
      if (t <= td) return v1;
      double tl = t - td;
      if (per > 0.0) tl = std::fmod(tl, per);
      if (tl < tr) return v1 + (v2 - v1) * (tl / tr);
      tl -= tr;
      if (pw < 0.0 || tl < pw) return v2;  // pw < 0: hold forever (step)
      tl -= pw;
      if (tl < tf) return v2 + (v1 - v2) * (tl / tf);
      return v1;
    }
    case Kind::kSin: {
      const double vo = p_[0], va = p_[1], freq = p_[2], td = p_[3],
                   theta = p_[4];
      if (t < td) return vo;
      const double dt = t - td;
      const double damp = theta != 0.0 ? std::exp(-dt * theta) : 1.0;
      return vo + va * damp * std::sin(2.0 * M_PI * freq * dt);
    }
    case Kind::kPwl: {
      if (t <= points_.front().first) return points_.front().second;
      if (t >= points_.back().first) return points_.back().second;
      // First knot strictly after t; its predecessor starts the segment.
      const auto it = std::upper_bound(
          points_.begin(), points_.end(), t,
          [](double value, const std::pair<double, double>& knot) {
            return value < knot.first;
          });
      const auto& hi = *it;
      const auto& lo = *(it - 1);
      if (hi.first == lo.first) return hi.second;  // vertical jump
      const double f = (t - lo.first) / (hi.first - lo.first);
      return lo.second + f * (hi.second - lo.second);
    }
  }
  return 0.0;  // unreachable
}

void Waveform::append_breakpoints(double tstop, std::vector<double>& out)
    const {
  // The cap is per waveform (not against the shared output vector), so a
  // dense periodic pulse cannot starve later sources of their corners.
  std::size_t pushed = 0;
  auto push = [&](double t) {
    if (t > 0.0 && t <= tstop && pushed < kMaxBreakpoints) {
      out.push_back(t);
      ++pushed;
    }
  };
  switch (kind_) {
    case Kind::kDc:
      return;
    case Kind::kPulse: {
      const double td = p_[2], tr = p_[3], tf = p_[4], pw = p_[5],
                   per = p_[6];
      const double hold = pw < 0.0 ? tstop : pw;
      for (std::size_t k = 0;; ++k) {
        const double base = td + static_cast<double>(k) * per;
        if (base > tstop) break;
        push(base);
        push(base + tr);
        push(base + tr + hold);
        push(base + tr + hold + tf);
        if (per <= 0.0 || pushed >= kMaxBreakpoints) break;
      }
      return;
    }
    case Kind::kSin:
      push(p_[3]);  // damping/oscillation starts at td
      return;
    case Kind::kPwl:
      for (const auto& [t, v] : points_) push(t);
      return;
  }
}

std::string Waveform::to_string() const {
  std::ostringstream os;
  switch (kind_) {
    case Kind::kDc:
      os << format_sig(p_[0], 9);
      break;
    case Kind::kPulse:
      os << "PULSE(" << format_sig(p_[0], 9) << ' ' << format_sig(p_[1], 9)
         << ' ' << format_sig(p_[2], 9) << ' ' << format_sig(p_[3], 9) << ' '
         << format_sig(p_[4], 9) << ' ' << format_sig(p_[5], 9) << ' '
         << format_sig(p_[6], 9) << ')';
      break;
    case Kind::kSin:
      os << "SIN(" << format_sig(p_[0], 9) << ' ' << format_sig(p_[1], 9)
         << ' ' << format_sig(p_[2], 9) << ' ' << format_sig(p_[3], 9) << ' '
         << format_sig(p_[4], 9) << ')';
      break;
    case Kind::kPwl:
      os << "PWL(";
      for (std::size_t i = 0; i < points_.size(); ++i) {
        if (i > 0) os << ' ';
        os << format_sig(points_[i].first, 9) << ' '
           << format_sig(points_[i].second, 9);
      }
      os << ')';
      break;
  }
  return os.str();
}

}  // namespace icvbe::spice
