#include "icvbe/spice/sim_session.hpp"

#include <algorithm>
#include <cmath>

#include "icvbe/common/error.hpp"
#include "icvbe/spice/stamper.hpp"

namespace icvbe::spice {

SimSession::SimSession(Circuit& circuit, NewtonOptions options)
    : circuit_(&circuit), options_(options) {
  rebind();
}

void SimSession::rebind() {
  n_unknowns_ = circuit_->assign_unknowns();
  node_unknowns_ = circuit_->node_count() - 1;
  ICVBE_REQUIRE(n_unknowns_ > 0, "SimSession: circuit has no unknowns");
  bound_device_count_ = circuit_->devices().size();

  const auto n = static_cast<std::size_t>(n_unknowns_);
  b_.assign(n, 0.0);
  x_new_.assign(n, 0.0);
  x_ = Unknowns(n);
  x_stage_ = Unknowns(n);
  result_.solution = Unknowns(n);
  have_last_ = false;

  // Linear-engine choice, fixed until the next rebind. Only the chosen
  // engine's storage is materialised.
  use_sparse_ =
      options_.sparse == SparseMode::kSparse ||
      (options_.sparse == SparseMode::kAuto &&
       n_unknowns_ >= options_.sparse_threshold);
  if (use_sparse_) {
    a_ = linalg::Matrix();
    lu_ = linalg::LuFactorization();
    slu_ = linalg::SparseLuFactorization();
    slu_.set_options(options_.sparse_options);
    // Pattern discovery: one stamp pass registers every (row, col) a
    // device can touch -- stamped values are irrelevant (a zero value
    // still registers its slot), so the zero iterate works. The gmin
    // diagonal slots are part of the pattern too.
    sa_.resize(n, n);
    Stamper st(sa_, b_, node_unknowns_);
    for (const auto& dev : circuit_->devices()) dev->stamp(st, x_);
    for (int i = 0; i < node_unknowns_; ++i) st.add_entry(i, i, 0.0);
    sa_.freeze_pattern();
    // The discovery pass ran device limiting at the zero iterate; wipe
    // that memory and the scratch RHS so the first real solve starts
    // clean.
    for (const auto& dev : circuit_->devices()) dev->reset_state();
    std::fill(b_.begin(), b_.end(), 0.0);
  } else {
    sa_ = linalg::SparseMatrix();
    slu_ = linalg::SparseLuFactorization();
    a_.resize(n, n);
  }

  // Release the complex AC engine; the next solve_ac() rebuilds it at the
  // new size (and re-discovers the sparse pattern).
  ac_ready_ = false;
  ca_ = linalg::ComplexMatrix();
  cb_ = linalg::ComplexVector();
  clu_ = linalg::ComplexLuFactorization();
  csa_ = linalg::ComplexSparseMatrix();
  cslu_ = linalg::ComplexSparseLuFactorization();
  cslu_.set_options(options_.sparse_options);

  vsources_.clear();
  isources_.clear();
  for (const auto& dev : circuit_->devices()) {
    if (auto* v = dynamic_cast<VoltageSource*>(dev.get())) {
      vsources_.push_back(v);
    } else if (auto* i = dynamic_cast<CurrentSource*>(dev.get())) {
      isources_.push_back(i);
    }
  }
  vsource_base_.assign(vsources_.size(), 0.0);
  isource_base_.assign(isources_.size(), 0.0);
}

void SimSession::begin_variant() {
  invalidate_warm_start();
  for (auto& d : circuit_->devices()) d->reset_state();
}

void SimSession::seed_warm_start(const Unknowns& x) {
  if (x.size() == static_cast<std::size_t>(n_unknowns_)) {
    x_ = x;  // same-size copy, no reallocation
    result_.solution = x;
    have_last_ = true;
  }
}

bool SimSession::newton_attempt(double gmin, Unknowns& x, int& iterations) {
  const int n_unknowns = n_unknowns_;
  const int node_unknowns = node_unknowns_;
  const NewtonOptions& opt = options_;

  for (int iter = 0; iter < opt.max_iterations; ++iter) {
    ++iterations;
    linalg::MatrixView a = use_sparse_ ? linalg::MatrixView(sa_)
                                       : linalg::MatrixView(a_);
    a.fill(0.0);
    std::fill(b_.begin(), b_.end(), 0.0);
    Stamper st(a, b_, node_unknowns);
    for (const auto& dev : circuit_->devices()) dev->stamp(st, x);
    for (int i = 0; i < node_unknowns; ++i) st.add_entry(i, i, gmin);

    try {
      if (use_sparse_) {
        slu_.refactor(sa_);
      } else {
        lu_.refactor(a_);
      }
    } catch (const NumericalError&) {
      return false;
    }
    x_new_ = b_;  // same-size copy into the preallocated solve buffer
    if (use_sparse_) {
      slu_.solve_in_place(x_new_);
    } else {
      lu_.solve_in_place(x_new_);
    }

    // Global damping: scale the step so no node voltage moves more than
    // max_step_volts in one iteration (junction limiting inside the
    // devices already handles the exponentials).
    double max_node_dx = 0.0;
    for (int i = 0; i < node_unknowns; ++i) {
      max_node_dx = std::max(max_node_dx,
                             std::abs(x_new_[static_cast<std::size_t>(i)] -
                                      x.raw()[static_cast<std::size_t>(i)]));
    }
    double scale = 1.0;
    if (max_node_dx > opt.max_step_volts) {
      scale = opt.max_step_volts / max_node_dx;
    }

    bool converged = (iter > 0);  // require at least two iterations
    for (int i = 0; i < n_unknowns; ++i) {
      const double xi = x.raw()[static_cast<std::size_t>(i)];
      const double xn =
          xi + scale * (x_new_[static_cast<std::size_t>(i)] - xi);
      const double dx = std::abs(xn - xi);
      const double abstol = (i < node_unknowns) ? opt.v_abstol : opt.i_abstol;
      const double tol =
          abstol + opt.reltol * std::max(std::abs(xi), std::abs(xn));
      if (dx > tol) converged = false;
      x.raw()[static_cast<std::size_t>(i)] = xn;
    }
    if (!std::isfinite(linalg::norm_inf(x.raw()))) return false;
    if (converged && scale == 1.0) return true;
  }
  return false;
}

void SimSession::snapshot_sources() {
  for (std::size_t i = 0; i < vsources_.size(); ++i) {
    vsource_base_[i] = vsources_[i]->voltage();
  }
  for (std::size_t i = 0; i < isources_.size(); ++i) {
    isource_base_[i] = isources_[i]->current();
  }
}

void SimSession::scale_sources(double lambda) {
  for (std::size_t i = 0; i < vsources_.size(); ++i) {
    vsources_[i]->set_voltage(lambda * vsource_base_[i]);
  }
  for (std::size_t i = 0; i < isources_.size(); ++i) {
    isources_[i]->set_current(lambda * isource_base_[i]);
  }
}

const DcResult& SimSession::solve(const Unknowns* initial) {
  if (circuit_->devices().size() != bound_device_count_) {
    throw CircuitError("SimSession: circuit topology changed; call rebind()");
  }

  result_.converged = false;
  result_.iterations = 0;
  result_.strategy.clear();

  // Choose the start point: explicit initial > warm-start continuation >
  // cold (all zeros).
  if (initial != nullptr &&
      initial->size() == static_cast<std::size_t>(n_unknowns_)) {
    x_ = *initial;
  } else if (warm_start_enabled_ && have_last_) {
    x_ = result_.solution;
  } else {
    std::fill(x_.raw().begin(), x_.raw().end(), 0.0);
  }

  // Strategy 1: plain Newton at the floor gmin.
  if (newton_attempt(options_.gmin_floor, x_, result_.iterations)) {
    result_.solution = x_;
    result_.converged = true;
    result_.strategy = "newton";
    have_last_ = true;
    return result_;
  }

  // Strategy 2: gmin stepping, warm-starting each stage.
  {
    std::fill(x_stage_.raw().begin(), x_stage_.raw().end(), 0.0);
    bool ok = true;
    double gmin = 1e-2;
    for (int step = 0; step <= options_.gmin_steps; ++step) {
      for (const auto& dev : circuit_->devices()) dev->reset_state();
      if (!newton_attempt(gmin, x_stage_, result_.iterations)) {
        ok = false;
        break;
      }
      if (gmin <= options_.gmin_floor) break;
      gmin = std::max(gmin * 0.04, options_.gmin_floor);
    }
    if (ok) {
      result_.solution = x_stage_;
      result_.converged = true;
      result_.strategy = "gmin";
      have_last_ = true;
      return result_;
    }
  }

  // Strategy 3: source stepping at floor gmin.
  {
    snapshot_sources();
    // Restore the nominal source values on every exit path, including an
    // exception escaping the loop (the guarantee the legacy RAII
    // SourceScaler gave): a long-lived session must never leak a scaled
    // circuit into subsequent solves.
    struct RestoreSources {
      SimSession* session;
      ~RestoreSources() { session->scale_sources(1.0); }
    } restore{this};
    std::fill(x_stage_.raw().begin(), x_stage_.raw().end(), 0.0);
    bool ok = true;
    for (int step = 1; step <= options_.source_steps; ++step) {
      const double lambda = static_cast<double>(step) /
                            static_cast<double>(options_.source_steps);
      scale_sources(lambda);
      for (const auto& dev : circuit_->devices()) dev->reset_state();
      if (!newton_attempt(options_.gmin_floor, x_stage_,
                          result_.iterations)) {
        ok = false;
        break;
      }
    }
    if (ok) {
      result_.solution = x_stage_;
      result_.converged = true;
      result_.strategy = "source";
      have_last_ = true;
      return result_;
    }
  }

  return result_;  // converged == false
}

const linalg::ComplexVector& SimSession::solve_ac(double omega) {
  if (circuit_->devices().size() != bound_device_count_) {
    throw CircuitError("SimSession: circuit topology changed; call rebind()");
  }
  // The small-signal system linearises about a committed operating point:
  // the last converged solution, a seeded warm start (the parallel AC
  // sweep workers' path -- they inherit the parent's OP verbatim so every
  // thread count produces bit-identical phasors), or a fresh OP solve.
  if (!have_last_) (void)solve_or_throw();
  const Unknowns& op = result_.solution;

  const auto n = static_cast<std::size_t>(n_unknowns_);
  if (!ac_ready_) {
    cb_.assign(n, linalg::Complex{});
    if (use_sparse_) {
      // Pattern discovery, mirroring the real engine: one stamp_ac pass
      // registers every slot (zero values included), gmin diagonal too.
      csa_.resize(n, n);
      AcStamper st(csa_, cb_, node_unknowns_, omega);
      for (const auto& dev : circuit_->devices()) dev->stamp_ac(st, op);
      for (int i = 0; i < node_unknowns_; ++i) {
        st.add_entry(i, i, linalg::Complex{});
      }
      csa_.freeze_pattern();
      std::fill(cb_.begin(), cb_.end(), linalg::Complex{});
    } else {
      ca_.resize(n, n);
    }
    ac_ready_ = true;
  }

  const auto stamp_at = [&](double w) {
    linalg::ComplexMatrixView a = use_sparse_
                                      ? linalg::ComplexMatrixView(csa_)
                                      : linalg::ComplexMatrixView(ca_);
    a.fill(linalg::Complex{});
    std::fill(cb_.begin(), cb_.end(), linalg::Complex{});
    AcStamper st(a, cb_, node_unknowns_, w);
    for (const auto& dev : circuit_->devices()) dev->stamp_ac(st, op);
    for (int i = 0; i < node_unknowns_; ++i) {
      st.add_entry(i, i, linalg::Complex(options_.gmin_floor));
    }
  };

  if (use_sparse_) {
    // Bit-identity discipline: the cached symbolic analysis belongs to
    // the first stamped frequency (the sweep's prime). If a previous
    // point's refactor collapsed the frozen pivots and re-analysed at
    // its own frequency, re-pin a fresh analysis at the prime before
    // this point -- every point's factorisation then depends only on
    // (op, omega, prime omega), never on sweep order or which parallel
    // worker tripped the collapse.
    const bool primed = cslu_.analysis_count() > 0;
    if (primed && cslu_.analysis_count() != ac_pinned_analysis_) {
      cslu_.invalidate_analysis();
      stamp_at(ac_prime_omega_);
      cslu_.refactor(csa_);
      ac_pinned_analysis_ = cslu_.analysis_count();
    }
    stamp_at(omega);
    cslu_.refactor(csa_);
    if (!primed) {
      ac_prime_omega_ = omega;
      ac_pinned_analysis_ = cslu_.analysis_count();
    }
    cslu_.solve_in_place(cb_);
  } else {
    stamp_at(omega);
    clu_.refactor(ca_);
    clu_.solve_in_place(cb_);
  }
  return cb_;
}

const Unknowns& SimSession::solve_or_throw(const Unknowns* initial) {
  const DcResult& r = solve(initial);
  if (!r.converged) {
    throw NumericalError("DC operating point failed to converge after " +
                         std::to_string(r.iterations) + " iterations");
  }
  return r.solution;
}

Series SimSession::sweep(const std::vector<double>& values,
                         const SweepSetter& setter, const SweepProbe& probe,
                         const std::string& name) {
  Series out(name);
  out.reserve(values.size());
  for (double v : values) {
    setter(v);
    const DcResult& r = solve();
    if (!r.converged) {
      throw NumericalError(name + ": DC solve failed at sweep value " +
                           std::to_string(v));
    }
    out.push_back(v, probe(*circuit_, r.solution));
  }
  return out;
}

}  // namespace icvbe::spice
