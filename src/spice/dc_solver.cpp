#include "icvbe/spice/dc_solver.hpp"

#include "icvbe/common/error.hpp"

namespace icvbe::spice {

DcResult solve_dc(Circuit& circuit, const NewtonOptions& options,
                  const Unknowns* initial) {
  SimSession session(circuit, options);
  return session.solve(initial);  // copies out of the session storage
}

Unknowns solve_dc_or_throw(Circuit& circuit, const NewtonOptions& options,
                           const Unknowns* initial) {
  SimSession session(circuit, options);
  return session.solve_or_throw(initial);
}

}  // namespace icvbe::spice
