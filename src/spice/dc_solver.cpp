#include "icvbe/spice/dc_solver.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "icvbe/common/error.hpp"
#include "icvbe/linalg/solve.hpp"

namespace icvbe::spice {

namespace {

/// One Newton attempt at fixed gmin. Returns true on convergence; x holds
/// the final iterate either way. `iterations` accumulates.
bool newton_attempt(Circuit& circuit, int n_unknowns, int node_unknowns,
                    double gmin, const NewtonOptions& opt, Unknowns& x,
                    int& iterations) {
  linalg::Matrix a(static_cast<std::size_t>(n_unknowns),
                   static_cast<std::size_t>(n_unknowns));
  linalg::Vector b(static_cast<std::size_t>(n_unknowns), 0.0);

  for (int iter = 0; iter < opt.max_iterations; ++iter) {
    ++iterations;
    a.fill(0.0);
    std::fill(b.begin(), b.end(), 0.0);
    Stamper st(a, b, node_unknowns);
    for (const auto& dev : circuit.devices()) dev->stamp(st, x);
    for (int i = 0; i < node_unknowns; ++i) {
      a(static_cast<std::size_t>(i), static_cast<std::size_t>(i)) += gmin;
    }

    linalg::Vector x_new;
    try {
      x_new = linalg::lu_solve(a, b);
    } catch (const NumericalError&) {
      return false;
    }

    // Global damping: scale the step so no node voltage moves more than
    // max_step_volts in one iteration (junction limiting inside the
    // devices already handles the exponentials).
    double max_node_dx = 0.0;
    for (int i = 0; i < node_unknowns; ++i) {
      max_node_dx = std::max(max_node_dx,
                             std::abs(x_new[static_cast<std::size_t>(i)] -
                                      x.raw()[static_cast<std::size_t>(i)]));
    }
    double scale = 1.0;
    if (max_node_dx > opt.max_step_volts) {
      scale = opt.max_step_volts / max_node_dx;
    }

    bool converged = (iter > 0);  // require at least two iterations
    for (int i = 0; i < n_unknowns; ++i) {
      const double xi = x.raw()[static_cast<std::size_t>(i)];
      const double xn = xi + scale * (x_new[static_cast<std::size_t>(i)] - xi);
      const double dx = std::abs(xn - xi);
      const double abstol = (i < node_unknowns) ? opt.v_abstol : opt.i_abstol;
      const double tol =
          abstol + opt.reltol * std::max(std::abs(xi), std::abs(xn));
      if (dx > tol) converged = false;
      x.raw()[static_cast<std::size_t>(i)] = xn;
    }
    if (!std::isfinite(linalg::norm_inf(x.raw()))) return false;
    if (converged && scale == 1.0) return true;
  }
  return false;
}

/// Scale every independent source by `lambda`, run an attempt, restore.
class SourceScaler {
 public:
  explicit SourceScaler(Circuit& circuit) {
    for (const auto& dev : circuit.devices()) {
      if (auto* v = dynamic_cast<VoltageSource*>(dev.get())) {
        vsrc_.emplace_back(v, v->voltage());
      } else if (auto* i = dynamic_cast<CurrentSource*>(dev.get())) {
        isrc_.emplace_back(i, i->current());
      }
    }
  }
  ~SourceScaler() { apply(1.0); }

  void apply(double lambda) {
    for (auto& [v, v0] : vsrc_) v->set_voltage(lambda * v0);
    for (auto& [i, i0] : isrc_) i->set_current(lambda * i0);
  }

 private:
  std::vector<std::pair<VoltageSource*, double>> vsrc_;
  std::vector<std::pair<CurrentSource*, double>> isrc_;
};

}  // namespace

DcResult solve_dc(Circuit& circuit, const NewtonOptions& options,
                  const Unknowns* initial) {
  const int n_unknowns = circuit.assign_unknowns();
  const int node_unknowns = circuit.node_count() - 1;
  ICVBE_REQUIRE(n_unknowns > 0, "solve_dc: circuit has no unknowns");

  DcResult result;
  result.solution = Unknowns(static_cast<std::size_t>(n_unknowns));
  if (initial != nullptr && initial->size() ==
                                static_cast<std::size_t>(n_unknowns)) {
    result.solution = *initial;
  }

  // Strategy 1: plain Newton at the floor gmin.
  Unknowns x = result.solution;
  if (newton_attempt(circuit, n_unknowns, node_unknowns, options.gmin_floor,
                     options, x, result.iterations)) {
    result.solution = std::move(x);
    result.converged = true;
    result.strategy = "newton";
    return result;
  }

  // Strategy 2: gmin stepping, warm-starting each stage.
  {
    Unknowns xg(static_cast<std::size_t>(n_unknowns));
    bool ok = true;
    double gmin = 1e-2;
    for (int step = 0; step <= options.gmin_steps; ++step) {
      for (const auto& dev : circuit.devices()) dev->reset_state();
      if (!newton_attempt(circuit, n_unknowns, node_unknowns, gmin, options,
                          xg, result.iterations)) {
        ok = false;
        break;
      }
      if (gmin <= options.gmin_floor) break;
      gmin = std::max(gmin * 0.04, options.gmin_floor);
    }
    if (ok) {
      result.solution = std::move(xg);
      result.converged = true;
      result.strategy = "gmin";
      return result;
    }
  }

  // Strategy 3: source stepping at floor gmin.
  {
    SourceScaler scaler(circuit);
    Unknowns xs(static_cast<std::size_t>(n_unknowns));
    bool ok = true;
    for (int step = 1; step <= options.source_steps; ++step) {
      const double lambda =
          static_cast<double>(step) / static_cast<double>(options.source_steps);
      scaler.apply(lambda);
      for (const auto& dev : circuit.devices()) dev->reset_state();
      if (!newton_attempt(circuit, n_unknowns, node_unknowns,
                          options.gmin_floor, options, xs,
                          result.iterations)) {
        ok = false;
        break;
      }
    }
    if (ok) {
      result.solution = std::move(xs);
      result.converged = true;
      result.strategy = "source";
      return result;
    }
  }

  return result;  // converged == false
}

Unknowns solve_dc_or_throw(Circuit& circuit, const NewtonOptions& options,
                           const Unknowns* initial) {
  DcResult r = solve_dc(circuit, options, initial);
  if (!r.converged) {
    throw NumericalError("DC operating point failed to converge after " +
                         std::to_string(r.iterations) + " iterations");
  }
  return std::move(r.solution);
}

}  // namespace icvbe::spice
