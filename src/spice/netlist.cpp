#include "icvbe/spice/netlist.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <istream>
#include <limits>
#include <sstream>
#include <vector>

#include "icvbe/common/error.hpp"
#include "icvbe/common/table.hpp"

namespace icvbe::spice {

namespace {

std::string to_upper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

[[noreturn]] void fail(int line, const std::string& msg) {
  throw NetlistError("netlist line " + std::to_string(line) + ": " + msg);
}

/// Split a logical line into whitespace-separated tokens; '(' ')' ',' '='
/// become separators but '=' is preserved as its own token so parameter
/// assignments keep their structure.
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::string cur;
  auto flush = [&] {
    if (!cur.empty()) {
      tokens.push_back(cur);
      cur.clear();
    }
  };
  for (char c : line) {
    if (std::isspace(static_cast<unsigned char>(c)) || c == '(' || c == ')' ||
        c == ',') {
      flush();
    } else if (c == '=') {
      flush();
      tokens.emplace_back("=");
    } else {
      cur.push_back(c);
    }
  }
  flush();
  return tokens;
}

/// Parameter assignments "KEY = value" from a token stream starting at i.
std::map<std::string, double> parse_params(
    const std::vector<std::string>& tokens, std::size_t i, int line) {
  std::map<std::string, double> params;
  while (i < tokens.size()) {
    const std::string key = to_upper(tokens[i]);
    if (i + 2 >= tokens.size() + 1 || i + 1 >= tokens.size() ||
        tokens[i + 1] != "=") {
      fail(line, "expected KEY=value, got '" + tokens[i] + "'");
    }
    if (i + 2 >= tokens.size()) fail(line, "missing value for " + key);
    params[key] = parse_spice_number(tokens[i + 2]);
    i += 3;
  }
  return params;
}

double param_or(const std::map<std::string, double>& p, const std::string& k,
                double fallback) {
  auto it = p.find(k);
  return it == p.end() ? fallback : it->second;
}

/// Physical lines -> logical lines ('+' continuation), stripped of
/// comments; returns (text, first physical line number) pairs.
std::vector<std::pair<std::string, int>> logical_lines(std::string_view text) {
  std::vector<std::pair<std::string, int>> out;
  std::istringstream in{std::string(text)};
  std::string raw;
  int lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    // Strip comments: leading '*' kills the line; ';' kills the tail.
    std::string s = raw;
    if (auto pos = s.find(';'); pos != std::string::npos) s.erase(pos);
    auto first = s.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (s[first] == '*') continue;
    if (s[first] == '+') {
      if (out.empty()) {
        throw NetlistError("netlist line " + std::to_string(lineno) +
                           ": continuation with no previous line");
      }
      out.back().first += ' ' + s.substr(first + 1);
    } else {
      out.emplace_back(s.substr(first), lineno);
    }
  }
  return out;
}

BjtModel parse_bjt_model(const std::map<std::string, double>& p,
                         BjtModel::Type type) {
  BjtModel m;
  m.type = type;
  m.is = param_or(p, "IS", m.is);
  m.bf = param_or(p, "BF", m.bf);
  m.br = param_or(p, "BR", m.br);
  m.nf = param_or(p, "NF", m.nf);
  m.nr = param_or(p, "NR", m.nr);
  m.ise = param_or(p, "ISE", m.ise);
  m.ne = param_or(p, "NE", m.ne);
  m.isc = param_or(p, "ISC", m.isc);
  m.nc = param_or(p, "NC", m.nc);
  m.vaf = param_or(p, "VAF", m.vaf);
  m.var = param_or(p, "VAR", m.var);
  m.eg = param_or(p, "EG", m.eg);
  m.xti = param_or(p, "XTI", m.xti);
  m.tnom = param_or(p, "TNOM", m.tnom);
  m.iss = param_or(p, "ISS", m.iss);
  m.ns = param_or(p, "NS", m.ns);
  m.eg_sub = param_or(p, "EGS", m.eg_sub);
  m.xti_sub = param_or(p, "XTIS", m.xti_sub);
  m.iss_e = param_or(p, "ISSE", m.iss_e);
  m.ns_e = param_or(p, "NSE", m.ns_e);
  m.eg_sub_e = param_or(p, "EGSE", m.eg_sub_e);
  m.xti_sub_e = param_or(p, "XTISE", m.xti_sub_e);
  m.bf_sub = param_or(p, "BFS", m.bf_sub);
  return m;
}

DiodeModel parse_diode_model(const std::map<std::string, double>& p) {
  DiodeModel m;
  m.is = param_or(p, "IS", m.is);
  m.n = param_or(p, "N", m.n);
  m.eg = param_or(p, "EG", m.eg);
  m.xti = param_or(p, "XTI", m.xti);
  m.tnom = param_or(p, "TNOM", m.tnom);
  return m;
}

MosfetModel parse_mosfet_model(const std::map<std::string, double>& p,
                               MosfetModel::Type type) {
  MosfetModel m;
  m.type = type;
  m.vto = param_or(p, "VTO", m.vto);
  m.kp = param_or(p, "KP", m.kp);
  m.lambda = param_or(p, "LAMBDA", m.lambda);
  m.tnom = param_or(p, "TNOM", m.tnom);
  m.vto_tc = param_or(p, "VTOTC", m.vto_tc);
  m.mobility_exp = param_or(p, "MOBEXP", m.mobility_exp);
  return m;
}

/// start, start+incr, ... up to stop (inclusive within a tolerance), the
/// SPICE .DC / .STEP stepping rule.
std::vector<double> stepped_values(double start, double stop, double incr,
                                   int line) {
  if (incr == 0.0 || (stop - start) * incr < 0.0) {
    fail(line, "sweep increment must step from start towards stop");
  }
  const double eps = 1e-9 * std::abs(incr);
  std::vector<double> values;
  values.reserve(
      static_cast<std::size_t>(std::abs((stop - start) / incr)) + 1);
  for (int i = 0;; ++i) {
    const double v = start + incr * static_cast<double>(i);
    if (incr > 0.0 ? v > stop + eps : v < stop - eps) break;
    values.push_back(v);
  }
  return values;
}

/// Parse the value part of a V/I source card starting at tokens[i]: either
/// a bare number, "DC <value>", or a PULSE/SIN/PWL waveform (the tokenizer
/// already stripped the parentheses). Returns the waveform; bare numbers
/// come back as Waveform::dc. The source's DC value is value_at(0).
Waveform parse_source_waveform(const std::vector<std::string>& tokens,
                               std::size_t i, int line) {
  if (i >= tokens.size()) fail(line, "source needs a value or waveform");
  const std::string head = to_upper(tokens[i]);
  const auto numbers = [&](std::size_t from) {
    std::vector<double> out;
    for (std::size_t k = from; k < tokens.size(); ++k) {
      out.push_back(parse_spice_number(tokens[k]));
    }
    return out;
  };
  try {
    if (head == "DC") {
      if (i + 1 >= tokens.size()) fail(line, "DC needs a value");
      if (tokens.size() != i + 2) {
        fail(line, "unexpected trailing tokens after DC value");
      }
      return Waveform::dc(parse_spice_number(tokens[i + 1]));
    }
    if (head == "PULSE") {
      const auto v = numbers(i + 1);
      if (v.size() < 2) fail(line, "PULSE needs at least v1 v2");
      if (v.size() > 7) fail(line, "PULSE takes at most 7 arguments");
      return Waveform::pulse(v[0], v[1], v.size() > 2 ? v[2] : 0.0,
                             v.size() > 3 ? v[3] : 0.0,
                             v.size() > 4 ? v[4] : 0.0,
                             v.size() > 5 ? v[5] : -1.0,
                             v.size() > 6 ? v[6] : 0.0);
    }
    if (head == "SIN") {
      const auto v = numbers(i + 1);
      if (v.size() < 3) fail(line, "SIN needs at least vo va freq");
      if (v.size() > 5) fail(line, "SIN takes at most 5 arguments");
      return Waveform::sin(v[0], v[1], v[2], v.size() > 3 ? v[3] : 0.0,
                           v.size() > 4 ? v[4] : 0.0);
    }
    if (head == "PWL") {
      const auto v = numbers(i + 1);
      if (v.size() < 2 || v.size() % 2 != 0) {
        fail(line, "PWL needs an even number of t/v values (>= 1 pair)");
      }
      std::vector<std::pair<double, double>> knots;
      knots.reserve(v.size() / 2);
      for (std::size_t k = 0; k < v.size(); k += 2) {
        knots.emplace_back(v[k], v[k + 1]);
      }
      return Waveform::pwl(std::move(knots));
    }
    if (tokens.size() != i + 1) {
      fail(line, "unexpected trailing tokens after source value");
    }
    return Waveform::dc(parse_spice_number(tokens[i]));
  } catch (const NetlistError&) {
    throw;
  } catch (const Error& e) {
    // Waveform constructor contract failures -> add line context.
    fail(line, e.what());
  }
}

/// Optional small-signal stimulus on a V/I source card: "AC <mag> [phase]".
struct SourceAcSpec {
  bool present = false;
  double magnitude = 0.0;
  double phase_deg = 0.0;
};

/// Strip a trailing "AC <mag> [phase]" group from a source card's tokens
/// (it follows the DC value / waveform, or stands alone for a pure AC
/// stimulus source). Returns the parsed spec; `tokens` loses the group.
SourceAcSpec extract_source_ac(std::vector<std::string>& tokens,
                               std::size_t from, int line) {
  for (std::size_t i = from; i < tokens.size(); ++i) {
    if (to_upper(tokens[i]) != "AC") continue;
    SourceAcSpec spec;
    spec.present = true;
    const std::size_t nargs = tokens.size() - i - 1;
    if (nargs < 1 || nargs > 2) {
      fail(line, "AC spec needs <magnitude> [phase-degrees]");
    }
    spec.magnitude = parse_spice_number(tokens[i + 1]);
    if (nargs == 2) spec.phase_deg = parse_spice_number(tokens[i + 2]);
    tokens.erase(tokens.begin() + static_cast<long>(i), tokens.end());
    return spec;
  }
  return {};
}

/// Shared body of .NODESET and .IC: "V node = value" groups (the tokenizer
/// splits 'V(n)=x' into 'V', 'n', '=', 'x') or bare "node = value" pairs.
void parse_node_value_pairs(const std::vector<std::string>& tokens, int line,
                            const char* directive,
                            std::map<std::string, double>& out) {
  std::size_t i = 1;
  while (i < tokens.size()) {
    if (to_upper(tokens[i]) == "V") ++i;
    if (i + 2 >= tokens.size() || tokens[i + 1] != "=") {
      fail(line, std::string(directive) + " expects V(node)=value groups");
    }
    out[tokens[i]] = parse_spice_number(tokens[i + 2]);
    i += 3;
  }
}

/// Map a .DC/.STEP target token to an axis: TEMP (Celsius), V.../I...
/// sources, R... resistors. Device names are used verbatim (the element
/// cards preserve case too).
SweepAxis axis_for_target(const std::string& target, SweepGrid grid,
                          int line) {
  const std::string upper = to_upper(target);
  if (upper == "TEMP") return SweepAxis::temperature_celsius(std::move(grid));
  if (upper.empty()) fail(line, "missing sweep target");
  switch (upper[0]) {
    case 'V': return SweepAxis::vsource(target, std::move(grid));
    case 'I': return SweepAxis::isource(target, std::move(grid));
    case 'R': return SweepAxis::resistor(target, std::move(grid));
    default:
      fail(line, "cannot sweep '" + target +
                     "' (V/I sources, R resistors, or TEMP)");
  }
}

}  // namespace

namespace {

/// Unit annotations allowed after a scale factor ("2.5kohm", "10uF") or on
/// their own ("5V"). Anything else trailing a number is ambiguous garbage
/// ("10kk", "5x") and is rejected -- a silent scale-by-1 there has bitten
/// real decks. All lowercase; the caller already lowercased the token.
bool is_unit_annotation(std::string_view unit) {
  static constexpr std::string_view kUnits[] = {
      "",    "v",     "volt",  "volts",  "a",   "amp",    "amps",
      "ohm", "ohms",  "f",     "farad",  "h",   "henry",  "henries",
      "hz",  "s",     "sec",   "deg"};
  for (std::string_view u : kUnits) {
    if (unit == u) return true;
  }
  return false;
}

}  // namespace

double parse_spice_number(std::string_view token) {
  // Case-insensitive throughout: the token is lowercased once, so "10MEG",
  // "10Meg" and "10meg" are the same mega suffix (and "10M" the same milli
  // as "10m" -- SPICE's classic MEG-vs-m distinction is by spelling, never
  // by case).
  const std::string t = to_lower(token);
  char* end = nullptr;
  const double base = std::strtod(t.c_str(), &end);
  if (end == t.c_str()) {
    throw NetlistError("not a number: '" + std::string(token) + "'");
  }
  const std::string suffix(end);
  // Recognise at most ONE scale factor, optionally followed by a known
  // unit annotation (e.g. "2.5kohm", "10uF"). "meg" must be checked before
  // the one-letter scales ('m' alone is milli).
  double scale = 1.0;
  std::string unit = suffix;
  if (!suffix.empty()) {
    if (suffix.rfind("meg", 0) == 0) {
      scale = 1e6;
      unit = suffix.substr(3);
    } else {
      switch (suffix[0]) {
        case 'f': scale = 1e-15; unit = suffix.substr(1); break;
        case 'p': scale = 1e-12; unit = suffix.substr(1); break;
        case 'n': scale = 1e-9; unit = suffix.substr(1); break;
        case 'u': scale = 1e-6; unit = suffix.substr(1); break;
        case 'm': scale = 1e-3; unit = suffix.substr(1); break;
        case 'k': scale = 1e3; unit = suffix.substr(1); break;
        case 'g': scale = 1e9; unit = suffix.substr(1); break;
        case 't': scale = 1e12; unit = suffix.substr(1); break;
        default: break;  // no scale; the whole suffix must be a unit
      }
    }
    if (!is_unit_annotation(unit)) {
      throw NetlistError("ambiguous number suffix '" + suffix + "' in '" +
                         std::string(token) +
                         "' (one scale factor plus an optional unit like "
                         "'ohm', 'v', 'a', 'f', 'h', 'hz', 's')");
    }
  }
  return base * scale;
}

ParsedNetlist parse_netlist(std::string_view text) {
  ParsedNetlist out;
  out.circuit = std::make_unique<Circuit>();
  Circuit& c = *out.circuit;

  struct PendingBjt {
    std::string name, collector, base, emitter, model, substrate;
    double area;
    int line;
  };
  struct PendingDiode {
    std::string name, anode, cathode, model;
    double area;
    int line;
  };
  struct PendingMosfet {
    std::string name, drain, gate, source, model;
    double wl;
    int line;
  };
  std::vector<PendingBjt> bjts;
  std::vector<PendingDiode> diodes;
  std::vector<PendingMosfet> mosfets;

  // Analysis directives: .DC specs in deck order (first spec = innermost
  // axis), at most one .STEP (always the outermost axis), .PROBE exprs.
  std::vector<SweepAxis> dc_axes;
  std::optional<SweepAxis> step_axis;
  std::optional<TransientSpec> tran;
  std::optional<AcSpec> ac;
  int analysis_line = 0;

  for (const auto& [line_text, lineno] : logical_lines(text)) {
    const auto tokens = tokenize(line_text);
    if (tokens.empty()) continue;
    const std::string head = to_upper(tokens[0]);

    if (head == ".END") break;
    if (head == ".DC") {
      if (!dc_axes.empty()) fail(lineno, "only one .DC directive per deck");
      if (tokens.size() != 5 && tokens.size() != 9) {
        fail(lineno, ".DC needs <target> <start> <stop> <incr> (optionally "
                     "a second spec)");
      }
      for (std::size_t i = 1; i + 3 < tokens.size(); i += 4) {
        dc_axes.push_back(axis_for_target(
            tokens[i],
            SweepGrid::list(stepped_values(parse_spice_number(tokens[i + 1]),
                                           parse_spice_number(tokens[i + 2]),
                                           parse_spice_number(tokens[i + 3]),
                                           lineno)),
            lineno));
      }
      analysis_line = lineno;
      continue;
    }
    if (head == ".STEP") {
      if (step_axis.has_value()) {
        fail(lineno, "only one .STEP directive per deck");
      }
      if (tokens.size() < 3) fail(lineno, ".STEP needs a target and points");
      const std::string& target = tokens[1];
      const std::string form = to_upper(tokens[2]);
      if (form == "LIST") {
        std::vector<double> values;
        for (std::size_t i = 3; i < tokens.size(); ++i) {
          values.push_back(parse_spice_number(tokens[i]));
        }
        if (values.empty()) fail(lineno, ".STEP LIST needs >= 1 value");
        step_axis = axis_for_target(target, SweepGrid::list(std::move(values)),
                                    lineno);
      } else if (form == "DEC") {
        if (tokens.size() != 6) {
          fail(lineno, ".STEP DEC needs <start> <stop> <points-per-decade>");
        }
        try {
          step_axis = axis_for_target(
              target,
              SweepGrid::log_decades(
                  parse_spice_number(tokens[3]), parse_spice_number(tokens[4]),
                  static_cast<int>(parse_spice_number(tokens[5]))),
              lineno);
        } catch (const PlanError& e) {
          fail(lineno, e.what());
        }
      } else {
        if (tokens.size() != 5) {
          fail(lineno, ".STEP needs <target> <start> <stop> <incr>");
        }
        step_axis = axis_for_target(
            target,
            SweepGrid::list(stepped_values(parse_spice_number(tokens[2]),
                                           parse_spice_number(tokens[3]),
                                           parse_spice_number(tokens[4]),
                                           lineno)),
            lineno);
      }
      analysis_line = lineno;
      continue;
    }
    if (head == ".PROBE") {
      // The standard tokenizer eats '(' ')' ',', so split the raw logical
      // line on whitespace instead; one whitespace-free token per probe
      // expression.
      std::istringstream in(line_text);
      std::string word;
      in >> word;  // the .PROBE keyword itself
      int parsed = 0;
      while (in >> word) {
        try {
          out.probes.push_back(parse_probe(word));
        } catch (const PlanError& e) {
          fail(lineno, e.what());
        }
        ++parsed;
      }
      if (parsed == 0) fail(lineno, ".PROBE needs at least one expression");
      continue;
    }
    if (head == ".TRAN") {
      if (tran.has_value()) fail(lineno, "only one .TRAN directive per deck");
      TransientSpec spec;
      std::vector<double> positional;
      std::size_t i = 1;
      while (i < tokens.size()) {
        const std::string upper = to_upper(tokens[i]);
        if (upper == "UIC") {
          spec.uic = true;
          ++i;
        } else if (upper == "METHOD") {
          if (i + 2 >= tokens.size() || tokens[i + 1] != "=") {
            fail(lineno, "METHOD needs =BE or =TRAP");
          }
          const std::string m = to_upper(tokens[i + 2]);
          if (m == "BE" || m == "EULER") {
            spec.method = IntegrationMethod::kBackwardEuler;
          } else if (m == "TRAP" || m == "TRAPEZOIDAL") {
            spec.method = IntegrationMethod::kTrapezoidal;
          } else {
            fail(lineno, "unknown integration method '" + m +
                             "' (want BE or TRAP)");
          }
          i += 3;
        } else {
          positional.push_back(parse_spice_number(tokens[i]));
          ++i;
        }
      }
      if (positional.size() < 2 || positional.size() > 4) {
        fail(lineno,
             ".TRAN needs <tstep> <tstop> [<tstart> [<tmax>]] [UIC]");
      }
      spec.tstep = positional[0];
      spec.tstop = positional[1];
      if (positional.size() > 2) spec.tstart = positional[2];
      if (positional.size() > 3) spec.tmax = positional[3];
      if (!(spec.tstep > 0.0) || !(spec.tstop > spec.tstart) ||
          spec.tstart < 0.0 || spec.tmax < 0.0) {
        fail(lineno, ".TRAN needs tstep > 0 and tstop > tstart >= 0");
      }
      tran = std::move(spec);
      analysis_line = lineno;
      continue;
    }
    if (head == ".AC") {
      if (ac.has_value()) fail(lineno, "only one .AC directive per deck");
      if (tokens.size() != 5) {
        fail(lineno, ".AC needs <DEC|OCT|LIN> <points> <fstart> <fstop>");
      }
      AcSpec spec;
      const std::string form = to_upper(tokens[1]);
      if (form == "DEC") {
        spec.spacing = AcSpec::Spacing::kDecade;
      } else if (form == "OCT") {
        spec.spacing = AcSpec::Spacing::kOctave;
      } else if (form == "LIN") {
        spec.spacing = AcSpec::Spacing::kLinear;
      } else {
        fail(lineno, ".AC: unknown sweep form '" + tokens[1] +
                         "' (want DEC, OCT, or LIN)");
      }
      spec.points = static_cast<int>(parse_spice_number(tokens[2]));
      spec.fstart = parse_spice_number(tokens[3]);
      spec.fstop = parse_spice_number(tokens[4]);
      try {
        (void)spec.frequencies();  // validate now, with line context
      } catch (const PlanError& e) {
        fail(lineno, e.what());
      }
      ac = spec;
      analysis_line = lineno;
      continue;
    }
    if (head == ".IC") {
      parse_node_value_pairs(tokens, lineno, ".IC", out.ics);
      continue;
    }
    if (head == ".TEMP") {
      if (tokens.size() < 2) fail(lineno, ".TEMP needs a value");
      out.temperature_celsius = parse_spice_number(tokens[1]);
      out.has_temp_directive = true;
      continue;
    }
    if (head == ".NODESET") {
      parse_node_value_pairs(tokens, lineno, ".NODESET", out.nodesets);
      continue;
    }
    if (head == ".MODEL") {
      if (tokens.size() < 3) fail(lineno, ".MODEL needs a name and a type");
      const std::string name = to_upper(tokens[1]);
      const std::string type = to_upper(tokens[2]);
      const auto params = parse_params(tokens, 3, lineno);
      if (type == "NPN") {
        out.bjt_models[name] = parse_bjt_model(params, BjtModel::Type::kNpn);
      } else if (type == "PNP") {
        out.bjt_models[name] = parse_bjt_model(params, BjtModel::Type::kPnp);
      } else if (type == "D") {
        out.diode_models[name] = parse_diode_model(params);
      } else if (type == "NMOS") {
        out.mosfet_models[name] =
            parse_mosfet_model(params, MosfetModel::Type::kNmos);
      } else if (type == "PMOS") {
        out.mosfet_models[name] =
            parse_mosfet_model(params, MosfetModel::Type::kPmos);
      } else {
        fail(lineno, "unknown model type '" + type + "'");
      }
      continue;
    }
    if (head[0] == '.') fail(lineno, "unknown directive '" + head + "'");

    const char kind = head[0];
    try {
      switch (kind) {
      case 'R': {
        if (tokens.size() < 4) fail(lineno, "R: need name, 2 nodes, value");
        const auto params = parse_params(
            tokens, std::min<std::size_t>(4, tokens.size()), lineno);
        c.add_resistor(tokens[0], c.node(tokens[1]), c.node(tokens[2]),
                       parse_spice_number(tokens[3]),
                       param_or(params, "TC1", 0.0),
                       param_or(params, "TC2", 0.0));
        break;
      }
      case 'V': {
        if (tokens.size() < 4) fail(lineno, "V: need name, 2 nodes, value");
        std::vector<std::string> value_tokens = tokens;
        const SourceAcSpec acs = extract_source_ac(value_tokens, 3, lineno);
        // A pure "V1 a b AC 1" stimulus source biases to DC 0.
        const Waveform wf =
            value_tokens.size() == 3
                ? Waveform::dc(0.0)
                : parse_source_waveform(value_tokens, 3, lineno);
        VoltageSource& v = c.add_vsource(tokens[0], c.node(tokens[1]),
                                         c.node(tokens[2]), wf.dc_value());
        if (wf.kind() != Waveform::Kind::kDc) v.set_waveform(wf);
        if (acs.present) v.set_ac(acs.magnitude, acs.phase_deg);
        break;
      }
      case 'I': {
        if (tokens.size() < 4) fail(lineno, "I: need name, 2 nodes, value");
        std::vector<std::string> value_tokens = tokens;
        const SourceAcSpec acs = extract_source_ac(value_tokens, 3, lineno);
        const Waveform wf =
            value_tokens.size() == 3
                ? Waveform::dc(0.0)
                : parse_source_waveform(value_tokens, 3, lineno);
        CurrentSource& src = c.add_isource(tokens[0], c.node(tokens[1]),
                                           c.node(tokens[2]), wf.dc_value());
        if (wf.kind() != Waveform::Kind::kDc) src.set_waveform(wf);
        if (acs.present) src.set_ac(acs.magnitude, acs.phase_deg);
        break;
      }
      case 'C': {
        if (tokens.size() < 4) fail(lineno, "C: need name, 2 nodes, value");
        const auto params = parse_params(tokens, 4, lineno);
        c.add_capacitor(tokens[0], c.node(tokens[1]), c.node(tokens[2]),
                        parse_spice_number(tokens[3]),
                        param_or(params, "IC", std::nan("")));
        break;
      }
      case 'L': {
        if (tokens.size() < 4) fail(lineno, "L: need name, 2 nodes, value");
        const auto params = parse_params(tokens, 4, lineno);
        c.add_inductor(tokens[0], c.node(tokens[1]), c.node(tokens[2]),
                       parse_spice_number(tokens[3]),
                       param_or(params, "IC", std::nan("")));
        break;
      }
      case 'E': {
        if (tokens.size() < 6) {
          fail(lineno, "E: need name, 4 nodes, gain");
        }
        c.add_vcvs(tokens[0], c.node(tokens[1]), c.node(tokens[2]),
                   c.node(tokens[3]), c.node(tokens[4]),
                   parse_spice_number(tokens[5]));
        break;
      }
      case 'U': {
        if (tokens.size() < 4) fail(lineno, "U: need name and 3 nodes");
        const auto params = parse_params(tokens, 4, lineno);
        c.add_opamp(tokens[0], c.node(tokens[1]), c.node(tokens[2]),
                    c.node(tokens[3]), param_or(params, "GAIN", 1e6),
                    param_or(params, "OFFSET", 0.0));
        break;
      }
      case 'D': {
        if (tokens.size() < 4) fail(lineno, "D: need name, 2 nodes, model");
        std::map<std::string, double> params;
        if (tokens.size() > 4) params = parse_params(tokens, 4, lineno);
        diodes.push_back({tokens[0], tokens[1], tokens[2],
                          to_upper(tokens[3]), param_or(params, "AREA", 1.0),
                          lineno});
        break;
      }
      case 'M': {
        if (tokens.size() < 5) {
          fail(lineno, "M: need name, 3 nodes (d g s), model");
        }
        std::map<std::string, double> params;
        if (tokens.size() > 5) params = parse_params(tokens, 5, lineno);
        mosfets.push_back({tokens[0], tokens[1], tokens[2], tokens[3],
                           to_upper(tokens[4]), param_or(params, "WL", 1.0),
                           lineno});
        break;
      }
      case 'Q': {
        if (tokens.size() < 5) fail(lineno, "Q: need name, 3 nodes, model");
        std::map<std::string, double> params;
        std::string substrate = "0";
        // Optional SUBSTRATE=<node> must be handled before numeric params.
        std::vector<std::string> rest(tokens.begin() + 5, tokens.end());
        std::vector<std::string> numeric;
        for (std::size_t i = 0; i < rest.size();) {
          if (to_upper(rest[i]) == "SUBSTRATE" && i + 2 < rest.size() + 1 &&
              i + 1 < rest.size() && rest[i + 1] == "=") {
            if (i + 2 >= rest.size()) fail(lineno, "SUBSTRATE needs a node");
            substrate = rest[i + 2];
            i += 3;
          } else {
            numeric.push_back(rest[i]);
            ++i;
          }
        }
        if (!numeric.empty()) params = parse_params(numeric, 0, lineno);
        bjts.push_back({tokens[0], tokens[1], tokens[2], tokens[3],
                        to_upper(tokens[4]), substrate,
                        param_or(params, "AREA", 1.0), lineno});
        break;
      }
      default:
        fail(lineno, "unknown element '" + tokens[0] + "'");
      }
    } catch (const NetlistError&) {
      throw;  // already carries line context
    } catch (const Error& e) {
      // Duplicate device names, bad element values, device-constructor
      // contract failures (negative R/C/L, ...) -> add the line.
      fail(lineno, e.what());
    }
  }

  // Instantiate semiconductor devices now that all .MODEL cards are known
  // (SPICE decks put models anywhere).
  for (const auto& d : diodes) {
    auto it = out.diode_models.find(d.model);
    if (it == out.diode_models.end()) {
      fail(d.line, "diode model '" + d.model + "' not defined");
    }
    try {
      c.add_diode(d.name, c.node(d.anode), c.node(d.cathode), it->second,
                  d.area);
    } catch (const CircuitError& e) {
      fail(d.line, e.what());
    }
  }
  for (const auto& q : bjts) {
    auto it = out.bjt_models.find(q.model);
    if (it == out.bjt_models.end()) {
      fail(q.line, "BJT model '" + q.model + "' not defined");
    }
    try {
      c.add_bjt(q.name, c.node(q.collector), c.node(q.base),
                c.node(q.emitter), it->second, q.area, c.node(q.substrate));
    } catch (const CircuitError& e) {
      fail(q.line, e.what());
    }
  }
  for (const auto& m : mosfets) {
    auto it = out.mosfet_models.find(m.model);
    if (it == out.mosfet_models.end()) {
      fail(m.line, "MOSFET model '" + m.model + "' not defined");
    }
    try {
      c.add_mosfet(m.name, c.node(m.drain), c.node(m.gate), c.node(m.source),
                   it->second, m.wl);
    } catch (const CircuitError& e) {
      fail(m.line, e.what());
    }
  }

  // Assemble the deck-described analyses. A deck may carry any
  // combination of the three families; the canonical execution order is
  // pinned to [DC/.STEP sweep, .TRAN, .AC] regardless of card order, and
  // each plan gets the .PROBE subset its evaluation domain supports
  // (VM/VDB/... only ride the AC plan, I/IC/... only the DC-domain
  // plans). Within a family, .STEP is always the outermost axis and the
  // first .DC spec is the innermost.
  const bool has_sweep = step_axis.has_value() || !dc_axes.empty();
  const int analysis_count = static_cast<int>(has_sweep) +
                             static_cast<int>(tran.has_value()) +
                             static_cast<int>(ac.has_value());
  const bool multi = analysis_count > 1;

  /// .PROBE subset `domain` can evaluate; empty = deck error for `card`.
  /// Routing only applies to multi-analysis decks -- a single-analysis
  /// deck keeps its probe list verbatim (the historical contract; probe
  /// round trips depend on it) and any domain mismatch surfaces when the
  /// plan compiles its probes.
  const auto domain_probes = [&](ProbeDomain domain,
                                 const char* card) -> std::vector<Probe> {
    if (out.probes.empty()) {
      fail(analysis_line,
           std::string("deck has ") + card + " but no .PROBE");
    }
    if (!multi) return out.probes;
    std::vector<Probe> subset;
    for (const Probe& p : out.probes) {
      if (probe_supported_in(p, domain)) subset.push_back(p);
    }
    if (subset.empty()) {
      fail(analysis_line,
           std::string("deck has ") + card + " but none of its .PROBE " +
               "expressions can evaluate in that analysis (" +
               (domain == ProbeDomain::kAc
                    ? "probe V/VM/VDB/VP/VR/VI quantities"
                    : "AC quantities exist only in .AC") +
               ")");
    }
    return subset;
  };

  if (has_sweep) {
    if (dc_axes.size() + (step_axis.has_value() ? 1u : 0u) > 2u) {
      fail(analysis_line,
           "at most two nested sweep axes (.STEP plus .DC specs)");
    }
    AnalysisPlan plan;
    plan.name = multi ? "deck:DC" : "deck";
    if (step_axis.has_value()) plan.axes.push_back(std::move(*step_axis));
    for (auto it = dc_axes.rbegin(); it != dc_axes.rend(); ++it) {
      plan.axes.push_back(std::move(*it));
    }
    plan.probes = domain_probes(ProbeDomain::kDc, ".DC/.STEP");
    out.plans.push_back(std::move(plan));
  }
  if (tran.has_value()) {
    for (const auto& [node, volts] : out.ics) {
      tran->initial_conditions.emplace_back(node, volts);
    }
    AnalysisPlan plan;
    plan.name = multi ? "deck:TRAN" : "deck";
    plan.transient = std::move(*tran);
    plan.probes = domain_probes(ProbeDomain::kDc, ".TRAN");
    out.plans.push_back(std::move(plan));
  }
  if (ac.has_value()) {
    AnalysisPlan plan;
    plan.name = multi ? "deck:AC" : "deck";
    plan.ac = *ac;
    plan.probes = domain_probes(ProbeDomain::kAc, ".AC");
    out.plans.push_back(std::move(plan));
  }
  if (!out.plans.empty()) out.plan = out.plans.front();
  return out;
}

const AnalysisPlan* ParsedNetlist::find_plan(AnalysisKind kind)
    const noexcept {
  for (const AnalysisPlan& p : plans) {
    if (analysis_kind(p) == kind) return &p;
  }
  return nullptr;
}

ParsedNetlist parse_netlist(std::istream& in) {
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_netlist(buf.str());
}

namespace {
void emit_param(std::ostringstream& os, const char* key, double value,
                double default_value) {
  if (value != default_value && std::isfinite(value)) {
    os << ' ' << key << '=' << format_sig(value, 9);
  }
}
}  // namespace

std::string format_bjt_model(const std::string& name, const BjtModel& m) {
  const BjtModel d;  // defaults
  std::ostringstream os;
  os << ".MODEL " << name << ' '
     << (m.type == BjtModel::Type::kNpn ? "NPN" : "PNP") << " (";
  os << "IS=" << format_sig(m.is, 9);
  emit_param(os, "BF", m.bf, d.bf);
  emit_param(os, "BR", m.br, d.br);
  emit_param(os, "NF", m.nf, d.nf);
  emit_param(os, "NR", m.nr, d.nr);
  emit_param(os, "ISE", m.ise, d.ise);
  emit_param(os, "NE", m.ne, d.ne);
  emit_param(os, "ISC", m.isc, d.isc);
  emit_param(os, "NC", m.nc, d.nc);
  emit_param(os, "VAF", m.vaf, d.vaf);
  emit_param(os, "VAR", m.var, d.var);
  emit_param(os, "EG", m.eg, d.eg);
  emit_param(os, "XTI", m.xti, d.xti);
  emit_param(os, "TNOM", m.tnom, d.tnom);
  emit_param(os, "ISS", m.iss, d.iss);
  emit_param(os, "NS", m.ns, d.ns);
  emit_param(os, "EGS", m.eg_sub, d.eg_sub);
  emit_param(os, "XTIS", m.xti_sub, d.xti_sub);
  emit_param(os, "ISSE", m.iss_e, d.iss_e);
  emit_param(os, "NSE", m.ns_e, d.ns_e);
  emit_param(os, "EGSE", m.eg_sub_e, d.eg_sub_e);
  emit_param(os, "XTISE", m.xti_sub_e, d.xti_sub_e);
  emit_param(os, "BFS", m.bf_sub, d.bf_sub);
  os << ')';
  return os.str();
}

std::string format_diode_model(const std::string& name, const DiodeModel& m) {
  const DiodeModel d;
  std::ostringstream os;
  os << ".MODEL " << name << " D (IS=" << format_sig(m.is, 9);
  emit_param(os, "N", m.n, d.n);
  emit_param(os, "EG", m.eg, d.eg);
  emit_param(os, "XTI", m.xti, d.xti);
  emit_param(os, "TNOM", m.tnom, d.tnom);
  os << ')';
  return os.str();
}

}  // namespace icvbe::spice
