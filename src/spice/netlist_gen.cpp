#include "icvbe/spice/netlist_gen.hpp"

#include <cmath>
#include <sstream>

#include "icvbe/common/error.hpp"
#include "icvbe/common/rng.hpp"

namespace icvbe::spice {

namespace {

/// Ladders hang a diode on every 4th node, a BJT on every 5th, a mesh a
/// diode on every 7th: dense enough to make the Jacobian genuinely
/// nonlinear, sparse enough that generated decks converge from cold at
/// any size.
constexpr int kDiodeEvery = 4;
constexpr int kBjtEvery = 5;
constexpr int kMeshDiodeEvery = 7;

std::string fmt(double v) {
  std::ostringstream os;
  os.precision(8);
  os << v;
  return os.str();
}

void emit_header(std::ostringstream& os, const SyntheticNetlistSpec& spec) {
  os << "* generated synthetic netlist: " << topology_name(spec.topology)
     << ", " << spec.nodes << " nodes, seed " << spec.seed << "\n";
}

void emit_ladder(std::ostringstream& os, const SyntheticNetlistSpec& spec,
                 Rng& rng) {
  const int n = spec.nodes;
  os << "V1 n1 0 5" << (spec.ac_analysis ? " AC 1" : "") << "\n";
  for (int i = 1; i < n; ++i) {
    os << "RS" << i << " n" << i << " n" << (i + 1) << " "
       << fmt(rng.uniform(500.0, 2000.0)) << "\n";
  }
  for (int i = 2; i <= n; ++i) {
    os << "RG" << i << " n" << i << " 0 "
       << fmt(rng.uniform(5000.0, 20000.0)) << "\n";
  }
  if (spec.topology == SyntheticTopology::kDiodeLadder) {
    os << ".MODEL DGEN D (IS=1e-14 N=1.0 EG=1.11 XTI=3 TNOM=300.15)\n";
    for (int i = kDiodeEvery; i <= n; i += kDiodeEvery) {
      os << "D" << i << " n" << i << " 0 DGEN\n";
    }
  } else if (spec.topology == SyntheticTopology::kBjtLadder) {
    os << ".MODEL PNPGEN PNP (IS=2e-16 BF=45 NF=1.0 EG=1.17 XTI=3.5 "
          "TNOM=300.15)\n";
    // Diode-connected vertical PNP to ground, emitter at the ladder node
    // (the paper's test-cell configuration, scaled out).
    for (int i = kBjtEvery; i <= n; i += kBjtEvery) {
      os << "Q" << i << " 0 0 n" << i << " PNPGEN\n";
    }
  }
}

void emit_mesh(std::ostringstream& os, const SyntheticNetlistSpec& spec,
               Rng& rng) {
  const int g = std::max(2, static_cast<int>(std::lround(
                                std::sqrt(static_cast<double>(spec.nodes)))));
  auto node = [g](int r, int c) { return r * g + c + 1; };
  os << "V1 drv 0 5" << (spec.ac_analysis ? " AC 1" : "") << "\n";
  os << "RDRV drv n1 " << fmt(rng.uniform(100.0, 300.0)) << "\n";
  for (int r = 0; r < g; ++r) {
    for (int c = 0; c < g; ++c) {
      if (c + 1 < g) {
        os << "RH" << node(r, c) << " n" << node(r, c) << " n" << node(r, c + 1)
           << " " << fmt(rng.uniform(500.0, 2000.0)) << "\n";
      }
      if (r + 1 < g) {
        os << "RV" << node(r, c) << " n" << node(r, c) << " n" << node(r + 1, c)
           << " " << fmt(rng.uniform(500.0, 2000.0)) << "\n";
      }
    }
  }
  // Load corner to ground, plus a few shunts so the DC point is well set.
  os << "RLOAD n" << node(g - 1, g - 1) << " 0 "
     << fmt(rng.uniform(2000.0, 8000.0)) << "\n";
  os << ".MODEL DGEN D (IS=1e-14 N=1.0 EG=1.11 XTI=3 TNOM=300.15)\n";
  for (int k = kMeshDiodeEvery; k <= g * g; k += kMeshDiodeEvery) {
    os << "D" << k << " n" << k << " 0 DGEN\n";
  }
}

/// Series-R / shunt-C chain driven by a PULSE supply step: the transient
/// startup-settling workload. The slowest time constant of an n-stage RC
/// line grows like n^2 R C, so the emitted .TRAN span scales with it.
void emit_rc_ladder(std::ostringstream& os, const SyntheticNetlistSpec& spec,
                    Rng& rng) {
  const int n = spec.nodes;
  os << "V1 n1 0 PULSE(0 1.8 0 " << fmt(rc_ladder_tstop(spec) * 1e-3) << ")"
     << (spec.ac_analysis ? " AC 1" : "") << "\n";
  for (int i = 1; i < n; ++i) {
    os << "RS" << i << " n" << i << " n" << (i + 1) << " "
       << fmt(rng.uniform(800.0, 1200.0)) << "\n";
  }
  for (int i = 2; i <= n; ++i) {
    os << "CG" << i << " n" << i << " 0 " << fmt(rng.uniform(0.8e-9, 1.2e-9))
       << "\n";
  }
}

/// Purely resistive g x g grid: the ordering/fill stress workload. No
/// diodes, so a 1e5-node deck converges in one Newton iteration and the
/// run time is dominated by exactly what the topology is for -- symbolic
/// analysis and refactor/solve.
void emit_grid(std::ostringstream& os, const SyntheticNetlistSpec& spec,
               Rng& rng) {
  const int g = std::max(2, static_cast<int>(std::lround(
                                std::sqrt(static_cast<double>(spec.nodes)))));
  auto node = [g](int r, int c) { return r * g + c + 1; };
  os << "V1 drv 0 5" << (spec.ac_analysis ? " AC 1" : "") << "\n";
  os << "RDRV drv n1 " << fmt(rng.uniform(100.0, 300.0)) << "\n";
  for (int r = 0; r < g; ++r) {
    for (int c = 0; c < g; ++c) {
      if (c + 1 < g) {
        os << "RH" << node(r, c) << " n" << node(r, c) << " n" << node(r, c + 1)
           << " " << fmt(rng.uniform(500.0, 2000.0)) << "\n";
      }
      if (r + 1 < g) {
        os << "RV" << node(r, c) << " n" << node(r, c) << " n" << node(r + 1, c)
           << " " << fmt(rng.uniform(500.0, 2000.0)) << "\n";
      }
    }
  }
  os << "RLOAD n" << node(g - 1, g - 1) << " 0 "
     << fmt(rng.uniform(2000.0, 8000.0)) << "\n";
}

/// Heap-indexed binary resistor tree (clock-distribution shape): node i
/// feeds children 2i and 2i+1; every leaf carries a shunt load. The
/// elimination graph is a tree -- near-zero fill under a good ordering --
/// so this is the topology where ordering *quality* (not just speed)
/// shows up immediately at 1e5 nodes.
void emit_clock_tree(std::ostringstream& os, const SyntheticNetlistSpec& spec,
                     Rng& rng) {
  const int n = spec.nodes;
  os << "V1 drv 0 5" << (spec.ac_analysis ? " AC 1" : "") << "\n";
  os << "RDRV drv n1 " << fmt(rng.uniform(50.0, 150.0)) << "\n";
  for (int i = 1; i <= n; ++i) {
    const int l = 2 * i, r = 2 * i + 1;
    if (l <= n) {
      os << "RL" << i << " n" << i << " n" << l << " "
         << fmt(rng.uniform(200.0, 800.0)) << "\n";
    }
    if (r <= n) {
      os << "RR" << i << " n" << i << " n" << r << " "
         << fmt(rng.uniform(200.0, 800.0)) << "\n";
    }
    if (l > n) {  // leaf: shunt load to ground
      os << "RG" << i << " n" << i << " 0 "
         << fmt(rng.uniform(5000.0, 20000.0)) << "\n";
    }
  }
}

int mesh_last_node(const SyntheticNetlistSpec& spec) {
  const int g = std::max(2, static_cast<int>(std::lround(
                                std::sqrt(static_cast<double>(spec.nodes)))));
  return g * g;
}

}  // namespace

std::string generated_probe_node(const SyntheticNetlistSpec& spec) {
  const int last = (spec.topology == SyntheticTopology::kMesh ||
                    spec.topology == SyntheticTopology::kGrid)
                       ? mesh_last_node(spec)
                       : spec.nodes;
  std::string name = "n";
  name += std::to_string(last);
  return name;
}

double rc_ladder_tstop(const SyntheticNetlistSpec& spec) {
  // Slowest mode of an n-stage RC line: tau ~ (4 / pi^2) n^2 R C with the
  // nominal R = 1 kOhm, C = 1 nF; give the settling five of those.
  const double n = static_cast<double>(spec.nodes);
  return 5.0 * 0.4 * n * n * 1e-6;
}

std::string generate_netlist(const SyntheticNetlistSpec& spec) {
  ICVBE_REQUIRE(spec.nodes >= 4,
                "generate_netlist: need at least 4 nodes");
  std::ostringstream os;
  emit_header(os, spec);
  Rng rng(spec.seed);
  if (spec.topology == SyntheticTopology::kMesh) {
    emit_mesh(os, spec, rng);
  } else if (spec.topology == SyntheticTopology::kGrid) {
    emit_grid(os, spec, rng);
  } else if (spec.topology == SyntheticTopology::kClockTree) {
    emit_clock_tree(os, spec, rng);
  } else if (spec.topology == SyntheticTopology::kRcLadder) {
    emit_rc_ladder(os, spec, rng);
  } else {
    emit_ladder(os, spec, rng);
  }
  if (spec.with_analysis) {
    if (spec.ac_analysis) {
      // Sweep from well below the rc-ladder's slowest mode up to the
      // per-stage pole (1/(2 pi R C) ~ 160 kHz at the nominal 1 kOhm /
      // 1 nF). Stopping there keeps the far node's magnitude finite in
      // dB even for hundreds of cascaded stages (the attenuation compounds
      // per stage); purely resistive topologies are flat but exercise the
      // same machinery.
      os << ".AC DEC 10 10 100K\n";
      os << ".PROBE VDB(" << generated_probe_node(spec) << ") VP("
         << generated_probe_node(spec) << ")\n";
    } else if (spec.topology == SyntheticTopology::kRcLadder) {
      const double tstop = rc_ladder_tstop(spec);
      os << ".TRAN " << fmt(tstop / 200.0) << ' ' << fmt(tstop) << "\n";
      os << ".PROBE V(" << generated_probe_node(spec) << ") I(V1)\n";
    } else {
      os << ".DC V1 3 6 0.5\n";
      os << ".PROBE V(" << generated_probe_node(spec) << ") I(V1)\n";
    }
  }
  os << ".END\n";
  return os.str();
}

const char* topology_name(SyntheticTopology t) {
  switch (t) {
    case SyntheticTopology::kResistorLadder: return "ladder";
    case SyntheticTopology::kDiodeLadder: return "diode-ladder";
    case SyntheticTopology::kBjtLadder: return "bjt-ladder";
    case SyntheticTopology::kMesh: return "mesh";
    case SyntheticTopology::kRcLadder: return "rc-ladder";
    case SyntheticTopology::kGrid: return "grid";
    case SyntheticTopology::kClockTree: return "clock-tree";
  }
  return "ladder";  // unreachable
}

SyntheticTopology topology_from_name(std::string_view name) {
  if (name == "ladder") return SyntheticTopology::kResistorLadder;
  if (name == "diode-ladder") return SyntheticTopology::kDiodeLadder;
  if (name == "bjt-ladder") return SyntheticTopology::kBjtLadder;
  if (name == "mesh") return SyntheticTopology::kMesh;
  if (name == "rc-ladder") return SyntheticTopology::kRcLadder;
  if (name == "grid") return SyntheticTopology::kGrid;
  if (name == "clock-tree") return SyntheticTopology::kClockTree;
  throw Error("unknown netlist topology '" + std::string(name) +
              "' (want ladder, diode-ladder, bjt-ladder, mesh, "
              "rc-ladder, grid, or clock-tree)");
}

}  // namespace icvbe::spice
