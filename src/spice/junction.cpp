#include "icvbe/spice/junction.hpp"

#include <algorithm>
#include <cmath>

#include "icvbe/common/simd.hpp"

namespace icvbe::spice {

double safe_exp(double x, double cap) {
  // vexp rather than std::exp so the per-die fallback path and the
  // lane-batched stamping (safe_exp_many) run the exact same exp
  // implementation and stay bit-identical; std::exp's rounding differs
  // between libms. The clamped-argument form mirrors the pack kernel's
  // select sequence, NaN included (x > cap is false on NaN, so NaN flows
  // through vexp and propagates).
  const double e = common::vexp(x > cap ? cap : x);
  return x > cap ? e * (1.0 + (x - cap)) : e;
}

void safe_exp_many(const double* x, double* out, std::size_t n, double cap) {
  using P = common::DPack;
  constexpr std::size_t W = common::kPackWidth;
  const P capv = P::broadcast(cap);
  const P one = P::broadcast(1.0);
  std::size_t i = 0;
  for (; i + W <= n; i += W) {
    const P xv = P::load(x + i);
    const P e = common::vexp(P::select_gt(xv, capv, capv, xv));
    // First-order continuation above the cap, as in safe_exp; the linear
    // branch is computed for every lane and discarded where x <= cap.
    const P lin = e * (one + (xv - capv));
    P::select_gt(xv, capv, lin, e).store(out + i);
  }
  for (; i < n; ++i) out[i] = safe_exp(x[i], cap);
}

double pnjlim(double vnew, double vold, double vt, double vcrit) {
  if (vnew > vcrit && std::abs(vnew - vold) > 2.0 * vt) {
    if (vold > 0.0) {
      const double arg = 1.0 + (vnew - vold) / vt;
      vnew = (arg > 0.0) ? vold + vt * std::log(arg) : vcrit;
    } else {
      vnew = vt * std::log(std::max(vnew / vt, 1e-30));
    }
  }
  return vnew;
}

double junction_vcrit(double vt, double is_amps) {
  return vt * std::log(vt / (1.4142135623730951 * std::max(is_amps, 1e-300)));
}

}  // namespace icvbe::spice
