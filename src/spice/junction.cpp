#include "icvbe/spice/junction.hpp"

#include <algorithm>
#include <cmath>

namespace icvbe::spice {

double safe_exp(double x, double cap) {
  if (x > cap) {
    // First-order continuation keeps the derivative continuous at the cap.
    return std::exp(cap) * (1.0 + (x - cap));
  }
  return std::exp(x);
}

double pnjlim(double vnew, double vold, double vt, double vcrit) {
  if (vnew > vcrit && std::abs(vnew - vold) > 2.0 * vt) {
    if (vold > 0.0) {
      const double arg = 1.0 + (vnew - vold) / vt;
      vnew = (arg > 0.0) ? vold + vt * std::log(arg) : vcrit;
    } else {
      vnew = vt * std::log(std::max(vnew / vt, 1e-30));
    }
  }
  return vnew;
}

double junction_vcrit(double vt, double is_amps) {
  return vt * std::log(vt / (1.4142135623730951 * std::max(is_amps, 1e-300)));
}

}  // namespace icvbe::spice
