#include "icvbe/spice/batch_session.hpp"

#include <algorithm>
#include <cmath>

#include "icvbe/common/error.hpp"
#include "icvbe/spice/junction.hpp"
#include "icvbe/spice/stamper.hpp"

namespace icvbe::spice {

BatchDcSession::BatchDcSession(std::vector<Circuit*> lanes,
                               NewtonOptions options)
    : lanes_(std::move(lanes)), options_(options) {
  ICVBE_REQUIRE(!lanes_.empty(), "BatchDcSession: need at least one lane");
  const std::size_t k = lanes_.size();

  n_unknowns_ = lanes_[0]->assign_unknowns();
  node_unknowns_ = lanes_[0]->node_count() - 1;
  ICVBE_REQUIRE(n_unknowns_ > 0, "BatchDcSession: circuit has no unknowns");
  bound_device_count_ = lanes_[0]->devices().size();
  for (std::size_t l = 1; l < k; ++l) {
    ICVBE_REQUIRE(lanes_[l]->assign_unknowns() == n_unknowns_ &&
                      lanes_[l]->node_count() - 1 == node_unknowns_ &&
                      lanes_[l]->devices().size() == bound_device_count_,
                  "BatchDcSession: lanes must share one topology");
  }

  const auto n = static_cast<std::size_t>(n_unknowns_);
  x_.assign(k, Unknowns(n));
  last_solution_.assign(k, Unknowns(n));
  b_lane_.assign(k, linalg::Vector(n, 0.0));
  b_prime_.assign(n, 0.0);
  rhs_.assign(n * k, 0.0);
  active_.assign(k, 1);
  have_last_.assign(k, 0);
  live_.assign(k, 0);
  lane_ok_.assign(k, 0);
  status_.assign(k, BatchLaneStatus{});

  // Pattern discovery on lane 0, exactly as SimSession::rebind does it:
  // one stamp pass registers every slot a device can touch (values are
  // irrelevant), plus the gmin diagonal slots; then the pattern freezes
  // and the discovery pass's limiting-state side effects are wiped.
  sa_.resize(n, n);
  Stamper st(sa_, b_prime_, node_unknowns_);
  for (const auto& dev : lanes_[0]->devices()) dev->stamp(st, x_[0]);
  for (int i = 0; i < node_unknowns_; ++i) st.add_entry(i, i, 0.0);
  sa_.freeze_pattern();
  for (const auto& dev : lanes_[0]->devices()) dev->reset_state();
  std::fill(b_prime_.begin(), b_prime_.end(), 0.0);

  slu_.set_options(options_.sparse_options);
  batch_.bind(sa_, k);

  // Offsets for the lane-batched exponential sweep, from lane 0's device
  // order; the same-topology contract extends to every lane's device
  // sequence contributing the same exp counts (checked below).
  exp_off_.resize(bound_device_count_ + 1);
  std::size_t off = 0;
  const auto& devs0 = lanes_[0]->devices();
  for (std::size_t d = 0; d < bound_device_count_; ++d) {
    exp_off_[d] = off;
    off += static_cast<std::size_t>(std::max(0, devs0[d]->exp_arg_count()));
  }
  exp_off_[bound_device_count_] = off;
  exp_stride_ = off;
  for (std::size_t l = 1; l < k; ++l) {
    const auto& devs = lanes_[l]->devices();
    for (std::size_t d = 0; d < bound_device_count_; ++d) {
      ICVBE_REQUIRE(devs[d]->exp_arg_count() == devs0[d]->exp_arg_count(),
                    "BatchDcSession: lanes must share one device sequence");
    }
  }
  exp_args_.assign(exp_stride_ * k, 0.0);
  exp_vals_.assign(exp_stride_ * k, 0.0);
}

void BatchDcSession::prime(std::size_t reference_lane) {
  Circuit& ref = *lanes_[reference_lane];
  // The reference's start point, chosen like a solve would choose it.
  Unknowns& x = x_[reference_lane];
  if (have_last_[reference_lane]) {
    x = last_solution_[reference_lane];
  } else {
    std::fill(x.raw().begin(), x.raw().end(), 0.0);
  }
  linalg::MatrixView a(sa_);
  a.fill(0.0);
  std::fill(b_prime_.begin(), b_prime_.end(), 0.0);
  Stamper st(a, b_prime_, node_unknowns_);
  for (const auto& dev : ref.devices()) dev->stamp(st, x);
  for (int i = 0; i < node_unknowns_; ++i) {
    st.add_entry(i, i, options_.gmin_floor);
  }
  slu_.invalidate_analysis();
  slu_.refactor(sa_);  // throws NumericalError if singular here
  // The stamp ran device junction limiting; wipe it so priming leaves the
  // reference lane's next real solve trajectory untouched.
  for (const auto& dev : ref.devices()) dev->reset_state();
}

void BatchDcSession::begin_variant(std::size_t lane) {
  have_last_[lane] = 0;
  for (const auto& dev : lanes_[lane]->devices()) dev->reset_state();
}

void BatchDcSession::set_lane_active(std::size_t lane, bool active) {
  active_[lane] = active ? 1 : 0;
}

void BatchDcSession::seed_warm_start(std::size_t lane, const Unknowns& x) {
  if (x.size() == static_cast<std::size_t>(n_unknowns_)) {
    last_solution_[lane] = x;  // same-size copy, no reallocation
    have_last_[lane] = 1;
  }
}

void BatchDcSession::solve_active() {
  const std::size_t k = lanes_.size();
  const int n_unknowns = n_unknowns_;
  const int node_unknowns = node_unknowns_;
  const NewtonOptions& opt = options_;

  // Per-lane start points: warm-start continuation or cold, exactly
  // SimSession::solve's choice (there is no per-lane `initial` channel;
  // seed_warm_start covers that use).
  std::size_t live_count = 0;
  std::size_t first_active = k;
  for (std::size_t l = 0; l < k; ++l) {
    live_[l] = active_[l];
    if (!active_[l]) continue;
    if (first_active == k) first_active = l;
    ++live_count;
    status_[l] = BatchLaneStatus{};
    if (lanes_[l]->devices().size() != bound_device_count_) {
      throw CircuitError(
          "BatchDcSession: lane topology changed since binding");
    }
    if (have_last_[l]) {
      x_[l] = last_solution_[l];
    } else {
      std::fill(x_[l].raw().begin(), x_[l].raw().end(), 0.0);
    }
  }
  if (live_count == 0) return;
  if (!primed()) prime(first_active);

  for (int iter = 0; iter < opt.max_iterations && live_count > 0; ++iter) {
    // Stamp every live lane's value plane and RHS at its own iterate,
    // with the junction exponentials batched: collect every device's exp
    // arguments (phase A, runs the limiting exactly as stamp() would),
    // evaluate them in one vectorized sweep (phase B), then stamp in
    // original device order consuming the precomputed values (phase C).
    // safe_exp_many is element-wise bit-identical to safe_exp and the
    // stamp order is unchanged, so the assembled system matches the
    // one-shot stamp() path bit-for-bit.
    for (std::size_t l = 0; l < k; ++l) {
      if (!live_[l]) continue;
      ++status_[l].iterations;
      linalg::MatrixView a(batch_, l);
      a.fill(0.0);
      std::fill(b_lane_[l].begin(), b_lane_[l].end(), 0.0);
      const auto& devs = lanes_[l]->devices();
      double* args = exp_args_.data() + l * exp_stride_;
      for (std::size_t d = 0; d < devs.size(); ++d) {
        if (exp_off_[d + 1] != exp_off_[d]) {
          devs[d]->collect_exp_args(x_[l], args + exp_off_[d]);
        }
      }
      double* vals = exp_vals_.data() + l * exp_stride_;
      safe_exp_many(args, vals, exp_stride_);
      Stamper st(a, b_lane_[l], node_unknowns);
      for (std::size_t d = 0; d < devs.size(); ++d) {
        if (exp_off_[d + 1] != exp_off_[d]) {
          devs[d]->stamp_with_exps(st, x_[l], vals + exp_off_[d]);
        } else {
          devs[d]->stamp(st, x_[l]);
        }
      }
      for (int i = 0; i < node_unknowns; ++i) {
        st.add_entry(i, i, opt.gmin_floor);
      }
    }

    // One shared refactor carries all live lanes; a lane whose values
    // reject the frozen pivots leaves the lockstep (the scalar path would
    // have re-analysed or fallen down the ladder -- solo does both).
    lane_ok_ = live_;
    slu_.refactor_batch(batch_, lane_ok_);
    for (std::size_t l = 0; l < k; ++l) {
      if (live_[l] && !lane_ok_[l]) {
        status_[l].needs_solo = true;
        live_[l] = 0;
        --live_count;
      }
    }
    if (live_count == 0) break;

    // Pack the RHS planes (lane-fastest) and solve them all together.
    for (int i = 0; i < n_unknowns; ++i) {
      const auto row = static_cast<std::size_t>(i) * k;
      for (std::size_t l = 0; l < k; ++l) {
        rhs_[row + l] = b_lane_[l][static_cast<std::size_t>(i)];
      }
    }
    slu_.solve_batch(rhs_);

    // Per-lane damping + update + convergence test: bit-for-bit
    // SimSession::newton_attempt's epilogue, reading this lane's plane.
    for (std::size_t l = 0; l < k; ++l) {
      if (!live_[l]) continue;
      Unknowns& x = x_[l];
      double max_node_dx = 0.0;
      for (int i = 0; i < node_unknowns; ++i) {
        max_node_dx = std::max(
            max_node_dx,
            std::abs(rhs_[static_cast<std::size_t>(i) * k + l] -
                     x.raw()[static_cast<std::size_t>(i)]));
      }
      double scale = 1.0;
      if (max_node_dx > opt.max_step_volts) {
        scale = opt.max_step_volts / max_node_dx;
      }

      bool converged = (iter > 0);  // require at least two iterations
      for (int i = 0; i < n_unknowns; ++i) {
        const double xi = x.raw()[static_cast<std::size_t>(i)];
        const double xn =
            xi + scale * (rhs_[static_cast<std::size_t>(i) * k + l] - xi);
        const double dx = std::abs(xn - xi);
        const double abstol =
            (i < node_unknowns) ? opt.v_abstol : opt.i_abstol;
        const double tol =
            abstol + opt.reltol * std::max(std::abs(xi), std::abs(xn));
        if (dx > tol) converged = false;
        x.raw()[static_cast<std::size_t>(i)] = xn;
      }
      if (!std::isfinite(linalg::norm_inf(x.raw()))) {
        status_[l].needs_solo = true;
        live_[l] = 0;
        --live_count;
      } else if (converged && scale == 1.0) {
        status_[l].converged = true;
        last_solution_[l] = x;  // same-size copy
        have_last_[l] = 1;
        live_[l] = 0;
        --live_count;
      }
    }
  }

  // Plain Newton exhausted without converging: the scalar path would now
  // try gmin / source stepping -- that is solo work by construction.
  for (std::size_t l = 0; l < k; ++l) {
    if (live_[l]) {
      status_[l].needs_solo = true;
      live_[l] = 0;
    }
  }
}

std::size_t ParamDeltaSet::bind_resistor(std::string_view name) {
  resistors_.push_back(&circuit_->get<Resistor>(name));
  return resistors_.size() - 1;
}

std::size_t ParamDeltaSet::bind_bjt(std::string_view name) {
  bjts_.push_back(&circuit_->get<Bjt>(name));
  return bjts_.size() - 1;
}

std::size_t ParamDeltaSet::bind_opamp(std::string_view name) {
  opamps_.push_back(&circuit_->get<OpAmp>(name));
  return opamps_.size() - 1;
}

std::size_t ParamDeltaSet::bind_isource(std::string_view name) {
  isources_.push_back(&circuit_->get<CurrentSource>(name));
  return isources_.size() - 1;
}

}  // namespace icvbe::spice
