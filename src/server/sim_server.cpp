#include "icvbe/server/sim_server.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "icvbe/common/constants.hpp"
#include "icvbe/common/thread_pool.hpp"
#include "icvbe/server/protocol.hpp"
#include "icvbe/spice/circuit.hpp"
#include "icvbe/spice/dynamic_devices.hpp"
#include "icvbe/spice/linear_devices.hpp"
#include "icvbe/spice/netlist.hpp"
#include "icvbe/spice/plan.hpp"
#include "icvbe/spice/sim_session.hpp"

namespace icvbe::server {

namespace {

/// Write the whole buffer; returns false once the peer is gone (EPIPE /
/// ECONNRESET) -- callers treat a dead peer as cancellation, never as a
/// server error. MSG_NOSIGNAL keeps a raced disconnect from raising
/// SIGPIPE and killing the daemon.
bool write_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

/// Initial-guess vector from a deck's .NODESET hints (the CLI's seeding,
/// reproduced so server runs start from the same bits).
spice::Unknowns guess_from_nodesets(spice::Circuit& c,
                                    const spice::ParsedNetlist& deck) {
  const int n = c.assign_unknowns();
  spice::Unknowns guess(static_cast<std::size_t>(n));
  for (const auto& [node, value] : deck.nodesets) {
    const spice::NodeId id = c.node(node);
    if (id != spice::kGround) {
      guess.raw()[static_cast<std::size_t>(id - 1)] = value;
    }
  }
  return guess;
}

/// One warm circuit: parsed once, session bound once (pattern + symbolic
/// LU cached there), .NODESET seed precomputed.
struct Session {
  spice::ParsedNetlist parsed;
  std::unique_ptr<spice::SimSession> sim;
  spice::Unknowns nodeset_guess;
  bool busy = false;  ///< a RUN is in flight; guarded by Connection state
};

struct RunState {
  std::string id;
  std::string session;
  unsigned threads = 1;
  spice::AnalysisKind kind = spice::AnalysisKind::kDcSweep;
  std::atomic<bool> cancel{false};
};

}  // namespace

struct SimServer::Impl {
  ServerConfig config;
  int listen_fd = -1;
  int resolved_port = -1;
  unsigned worker_count = 0;
  std::atomic<bool> running{false};
  std::thread accept_thread;
  std::unique_ptr<common::ThreadPool> pool;

  struct Connection;
  mutable std::mutex conns_mutex;
  std::vector<std::unique_ptr<Connection>> conns;

  void accept_loop();
  void reap_finished_locked();
};

/// One client: a reader thread owning the command dispatch, a write mutex
/// making frames atomic across the reader and the worker pool, and the
/// per-connection session/run registries.
struct SimServer::Impl::Connection {
  Connection(Impl& server, int fd) : server_(server), fd_(fd) {}

  Impl& server_;
  const int fd_;
  std::thread reader_;

  std::mutex write_mutex_;
  std::atomic<bool> peer_alive{true};

  std::mutex state_mutex_;
  std::condition_variable drained_cv_;
  std::map<std::string, Session> sessions_;
  std::map<std::string, std::shared_ptr<RunState>> runs_;
  std::size_t inflight_ = 0;
  std::atomic<bool> finished{false};  ///< reader exited; reapable

  // ------------------------------------------------------------ output --

  void send_frame(const std::vector<std::string>& head,
                  std::string_view body = {}) {
    const std::string frame = encode_frame(head, body);
    const std::lock_guard<std::mutex> lock(write_mutex_);
    if (!peer_alive.load(std::memory_order_relaxed)) return;
    if (!write_all(fd_, frame)) {
      peer_alive.store(false, std::memory_order_relaxed);
    }
  }

  void send_ok(const std::vector<std::string>& head,
               std::string_view body = {}) {
    std::vector<std::string> full{"OK"};
    full.insert(full.end(), head.begin(), head.end());
    send_frame(full, body);
  }

  void send_err(const std::string& cmd, const std::string& message) {
    send_frame({"ERR", cmd}, message);
  }

  // ----------------------------------------------------------- dispatch --

  void reader_loop() {
    FrameDecoder decoder;
    char buf[64 * 1024];
    try {
      for (;;) {
        std::optional<Frame> frame;
        while (!(frame = decoder.next()).has_value()) {
          const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
          if (n < 0 && errno == EINTR) continue;
          if (n <= 0) goto eof;
          decoder.feed(std::string_view(buf, static_cast<std::size_t>(n)));
        }
        if (!dispatch(*frame)) break;  // CLOSE of the connection / QUIT
      }
    } catch (const ProtocolError& e) {
      // Unframeable input: report once, then give up on the stream (the
      // decoder can no longer find frame boundaries).
      send_err("PROTOCOL", e.what());
    } catch (...) {
      // Dispatch never intentionally throws; treat like a dead peer.
    }
  eof:
    shutdown_runs();
    finished.store(true, std::memory_order_release);
  }

  /// Returns false when the connection should close.
  bool dispatch(const Frame& f) {
    const std::string cmd(f.tok(0));
    if (cmd == "LOAD") return cmd_load(f), true;
    if (cmd == "RUN") return cmd_run(f), true;
    if (cmd == "CANCEL") return cmd_cancel(f), true;
    if (cmd == "PATCH") return cmd_patch(f), true;
    if (cmd == "CLOSE") return cmd_close(f), true;
    if (cmd == "STATUS") return cmd_status(), true;
    if (cmd == "QUIT") return send_ok({"QUIT"}), false;
    send_err(cmd.empty() ? "?" : cmd, "unknown command");
    return true;
  }

  void cmd_load(const Frame& f) {
    const std::string name(f.tok(1));
    if (name.empty() || f.head.size() != 2) {
      return send_err("LOAD", "usage: LOAD <session> (deck text as body)");
    }
    Session fresh;
    try {
      fresh.parsed = spice::parse_netlist(f.body);
      auto& c = *fresh.parsed.circuit;
      c.set_temperature(to_kelvin(fresh.parsed.temperature_celsius));
      fresh.nodeset_guess = guess_from_nodesets(c, fresh.parsed);
      fresh.sim = std::make_unique<spice::SimSession>(c);
    } catch (const Error& e) {
      return send_err("LOAD", e.what());
    }
    std::vector<std::string> head{"LOADED", name};
    for (const auto& plan : fresh.parsed.plans) {
      head.emplace_back(spice::to_token(spice::analysis_kind(plan)));
    }
    {
      const std::lock_guard<std::mutex> lock(state_mutex_);
      const auto it = sessions_.find(name);
      if (it != sessions_.end() && it->second.busy) {
        return send_err("LOAD",
                        "session '" + name + "' busy (run in flight)");
      }
      sessions_[name] = std::move(fresh);
    }
    send_ok(head);
  }

  void cmd_run(const Frame& f) {
    const std::string run_id(f.tok(1));
    const std::string name(f.tok(2));
    if (run_id.empty() || name.empty() || f.head.size() < 4) {
      return send_err(
          "RUN", "usage: RUN <run-id> <session> <DC|TRAN|AC> [THREADS=n]");
    }
    spice::AnalysisKind kind;
    try {
      kind = spice::analysis_kind_from_token(f.tok(3));
    } catch (const Error& e) {
      return send_err("RUN", e.what());
    }
    unsigned threads = 1;
    for (std::size_t i = 4; i < f.head.size(); ++i) {
      const std::string_view opt = f.tok(i);
      if (opt.rfind("THREADS=", 0) == 0) {
        const std::string value(opt.substr(8));
        char* end = nullptr;
        const long parsed = std::strtol(value.c_str(), &end, 10);
        if (end == nullptr || *end != '\0' || parsed < 0 || parsed > 1024) {
          return send_err("RUN", "bad THREADS value '" + value + "'");
        }
        threads = static_cast<unsigned>(parsed);
      } else {
        return send_err("RUN", "unknown option '" + std::string(opt) + "'");
      }
    }

    std::shared_ptr<RunState> run;
    {
      const std::lock_guard<std::mutex> lock(state_mutex_);
      const auto it = sessions_.find(name);
      if (it == sessions_.end()) {
        return send_err("RUN", "no session '" + name + "'");
      }
      if (it->second.busy) {
        return send_err("RUN", "session '" + name + "' busy");
      }
      if (runs_.count(run_id) != 0) {
        return send_err("RUN", "run id '" + run_id + "' already active");
      }
      if (it->second.parsed.find_plan(kind) == nullptr) {
        return send_err("RUN", "deck of session '" + name +
                                   "' describes no " +
                                   std::string(spice::to_token(kind)) +
                                   " analysis");
      }
      run = std::make_shared<RunState>();
      run->id = run_id;
      run->session = name;
      run->threads = threads;
      run->kind = kind;
      it->second.busy = true;
      runs_[run_id] = run;
      ++inflight_;
    }
    send_ok({"RUN", run_id});
    try {
      server_.pool->submit([this, run]() { execute_run(*run); });
    } catch (const Error&) {
      // Pool stopping: the server is shutting down mid-command.
      finish_run(*run, {"FAIL", run->id}, "server shutting down");
    }
  }

  void cmd_cancel(const Frame& f) {
    const std::string run_id(f.tok(1));
    if (run_id.empty() || f.head.size() != 2) {
      return send_err("CANCEL", "usage: CANCEL <run-id>");
    }
    {
      const std::lock_guard<std::mutex> lock(state_mutex_);
      const auto it = runs_.find(run_id);
      // A finished (or never-known) run id is not an error: CANCEL
      // legitimately races DONE.
      if (it != runs_.end()) {
        it->second->cancel.store(true, std::memory_order_relaxed);
      }
    }
    send_ok({"CANCEL", run_id});
  }

  void cmd_patch(const Frame& f) {
    const std::string name(f.tok(1));
    if (name.empty() || f.head.size() != 2) {
      return send_err("PATCH",
                      "usage: PATCH <session> (patch lines as body)");
    }
    std::vector<PatchCommand> patches;
    try {
      patches = parse_patch_body(f.body);
    } catch (const ProtocolError& e) {
      return send_err("PATCH", e.what());
    }
    {
      const std::lock_guard<std::mutex> lock(state_mutex_);
      const auto it = sessions_.find(name);
      if (it == sessions_.end()) {
        return send_err("PATCH", "no session '" + name + "'");
      }
      if (it->second.busy) {
        return send_err("PATCH", "session '" + name + "' busy");
      }
      // Applying under the state mutex is safe: only non-busy sessions
      // get here, so no worker is touching this circuit.
      try {
        apply_patches(it->second, patches);
      } catch (const Error& e) {
        return send_err("PATCH", e.what());
      }
    }
    send_ok({"PATCHED", name, std::to_string(patches.size())});
  }

  static void apply_patches(Session& sess,
                            const std::vector<PatchCommand>& patches) {
    auto& c = *sess.parsed.circuit;
    for (const PatchCommand& p : patches) {
      switch (p.target) {
        case PatchCommand::Target::kResistor: {
          auto& r = c.get<spice::Resistor>(p.name);
          r.set_nominal_resistance(p.value);
          // set_nominal_resistance resets to the raw nominal; re-apply
          // the circuit temperature or the patch silently drops the
          // tempco scaling (the BoundAxis discipline).
          if (c.has_temperature()) r.set_temperature(c.temperature());
          break;
        }
        case PatchCommand::Target::kCapacitor:
          c.get<spice::Capacitor>(p.name).set_capacitance(p.value);
          break;
        case PatchCommand::Target::kInductor:
          c.get<spice::Inductor>(p.name).set_inductance(p.value);
          break;
        case PatchCommand::Target::kVsource:
          c.get<spice::VoltageSource>(p.name).set_voltage(p.value);
          break;
        case PatchCommand::Target::kIsource:
          c.get<spice::CurrentSource>(p.name).set_current(p.value);
          break;
        case PatchCommand::Target::kTemperature:
          c.set_temperature(to_kelvin(p.value));
          break;
      }
    }
  }

  void cmd_close(const Frame& f) {
    const std::string name(f.tok(1));
    if (name.empty() || f.head.size() != 2) {
      return send_err("CLOSE", "usage: CLOSE <session>");
    }
    {
      const std::lock_guard<std::mutex> lock(state_mutex_);
      const auto it = sessions_.find(name);
      if (it == sessions_.end()) {
        return send_err("CLOSE", "no session '" + name + "'");
      }
      if (it->second.busy) {
        return send_err("CLOSE", "session '" + name + "' busy");
      }
      sessions_.erase(it);
    }
    send_ok({"CLOSED", name});
  }

  void cmd_status() {
    std::size_t n_sessions = 0;
    std::size_t n_runs = 0;
    {
      const std::lock_guard<std::mutex> lock(state_mutex_);
      n_sessions = sessions_.size();
      n_runs = runs_.size();
    }
    std::string body;
    body += "SESSIONS " + std::to_string(n_sessions) + "\n";
    body += "RUNS " + std::to_string(n_runs) + "\n";
    body += "WORKERS " + std::to_string(server_.worker_count) + "\n";
    send_ok({"STATUS"}, body);
  }

  // ---------------------------------------------------------- execution --

  /// Streams a run's points as DATA frames; returning false from on_row
  /// (cancel flag, dead peer) makes the engine throw CancelledError.
  class StreamObserver : public spice::RunObserver {
   public:
    StreamObserver(Connection& conn, RunState& run)
        : conn_(conn), run_(run) {}

    void on_begin(const std::vector<std::string>& axis_labels,
                  const std::vector<std::string>& probe_labels,
                  std::size_t expected_rows) override {
      std::string body = "AXES";
      for (const std::string& l : axis_labels) body += '\t' + l;
      body += "\nPROBES";
      for (const std::string& l : probe_labels) body += '\t' + l;
      body += "\nROWS " + std::to_string(expected_rows) + "\n";
      conn_.send_frame({"INIT", run_.id}, body);
    }

    bool on_row(std::size_t row, const double* axes, std::size_t axis_count,
                const double* probes, std::size_t probe_count) override {
      if (run_.cancel.load(std::memory_order_relaxed)) return false;
      if (!conn_.peer_alive.load(std::memory_order_relaxed)) return false;
      std::string body;
      for (std::size_t i = 0; i < axis_count; ++i) {
        if (i > 0) body += ' ';
        body += format_value(axes[i]);
      }
      for (std::size_t i = 0; i < probe_count; ++i) {
        body += ' ';
        body += format_value(probes[i]);
      }
      conn_.send_frame({"DATA", run_.id, std::to_string(row)}, body);
      rows_sent_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }

    [[nodiscard]] std::size_t rows_sent() const noexcept {
      return rows_sent_.load(std::memory_order_relaxed);
    }

   private:
    Connection& conn_;
    RunState& run_;
    std::atomic<std::size_t> rows_sent_{0};  ///< parallel AC workers race
  };

  /// Worker-pool body of one RUN.
  void execute_run(RunState& run) {
    Session* sess = nullptr;
    {
      const std::lock_guard<std::mutex> lock(state_mutex_);
      sess = &sessions_.at(run.session);  // busy flag pins the entry
    }
    StreamObserver observer(*this, run);
    try {
      const spice::AnalysisPlan* deck_plan =
          sess->parsed.find_plan(run.kind);
      spice::AnalysisPlan plan = *deck_plan;
      plan.threads = run.threads;

      // Deterministic start state: device state and warm seed reset to
      // the deck-described start, exactly like a cold CLI run of the
      // (patched) deck -- results are a pure function of (deck, patches,
      // plan), bit-identical for any worker count or client interleaving.
      auto& sim = *sess->sim;
      for (const auto& dev : sim.circuit().devices()) dev->reset_state();
      sim.invalidate_warm_start();
      if (!sess->parsed.nodesets.empty()) {
        sim.seed_warm_start(sess->nodeset_guess);
      }

      (void)sim.run(plan, &observer);
      finish_run(run,
                 {"DONE", run.id, std::to_string(observer.rows_sent())});
    } catch (const spice::CancelledError&) {
      finish_run(
          run,
          {"CANCELLED", run.id, std::to_string(observer.rows_sent())});
    } catch (const std::exception& e) {
      finish_run(run, {"FAIL", run.id}, e.what());
    }
  }

  void finish_run(RunState& run, const std::vector<std::string>& head,
                  std::string_view body = {}) {
    // Release the session *before* the terminal frame goes out: a client
    // that reruns the instant it sees DONE/CANCELLED must never bounce
    // off a stale busy flag. The inflight count, by contrast, drops only
    // after the send -- teardown destroys this connection once it reaches
    // zero, so it must cover every touch of the connection.
    {
      const std::lock_guard<std::mutex> lock(state_mutex_);
      const auto it = sessions_.find(run.session);
      if (it != sessions_.end()) it->second.busy = false;
      runs_.erase(run.id);
    }
    send_frame(head, body);
    {
      // Notify under the lock: the moment a waiter in shutdown_runs can
      // observe inflight_ == 0 the connection may be reaped, so the
      // condvar must not be touched after this mutex is released.
      const std::lock_guard<std::mutex> lock(state_mutex_);
      --inflight_;
      drained_cv_.notify_all();
    }
  }

  // ----------------------------------------------------------- teardown --

  /// Reader is gone (EOF or server stop): flip every cancel flag and wait
  /// until the in-flight count drains so no worker touches the sessions
  /// this connection is about to destroy.
  void shutdown_runs() {
    std::unique_lock<std::mutex> lock(state_mutex_);
    for (auto& [id, run] : runs_) {
      run->cancel.store(true, std::memory_order_relaxed);
    }
    peer_alive.store(false, std::memory_order_relaxed);
    drained_cv_.wait(lock, [&] { return inflight_ == 0; });
  }
};

// ------------------------------------------------------------ SimServer ---

SimServer::SimServer(ServerConfig config)
    : impl_(std::make_unique<Impl>()) {
  impl_->config = std::move(config);
}

SimServer::~SimServer() { stop(); }

void SimServer::start() {
  ICVBE_REQUIRE(!impl_->running.load(), "SimServer: already running");
  Impl& s = *impl_;

  if (!s.config.socket_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (s.config.socket_path.size() >= sizeof addr.sun_path) {
      throw Error("serve: socket path too long: " + s.config.socket_path);
    }
    std::strncpy(addr.sun_path, s.config.socket_path.c_str(),
                 sizeof addr.sun_path - 1);
    s.listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (s.listen_fd < 0) throw Error("serve: socket() failed");
    ::unlink(s.config.socket_path.c_str());  // stale socket from a crash
    if (::bind(s.listen_fd, reinterpret_cast<sockaddr*>(&addr),
               sizeof addr) != 0) {
      ::close(s.listen_fd);
      s.listen_fd = -1;
      throw Error("serve: cannot bind '" + s.config.socket_path +
                  "': " + std::strerror(errno));
    }
  } else {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // local only, always
    addr.sin_port =
        htons(static_cast<std::uint16_t>(s.config.tcp_port));
    s.listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (s.listen_fd < 0) throw Error("serve: socket() failed");
    const int one = 1;
    ::setsockopt(s.listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(s.listen_fd, reinterpret_cast<sockaddr*>(&addr),
               sizeof addr) != 0) {
      ::close(s.listen_fd);
      s.listen_fd = -1;
      throw Error("serve: cannot bind loopback port " +
                  std::to_string(s.config.tcp_port) + ": " +
                  std::strerror(errno));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    ::getsockname(s.listen_fd, reinterpret_cast<sockaddr*>(&bound), &len);
    s.resolved_port = ntohs(bound.sin_port);
  }
  if (::listen(s.listen_fd, 64) != 0) {
    ::close(s.listen_fd);
    s.listen_fd = -1;
    throw Error("serve: listen() failed");
  }

  s.worker_count = common::resolve_thread_count(s.config.workers);
  s.pool = std::make_unique<common::ThreadPool>(s.worker_count);
  s.running.store(true);
  s.accept_thread = std::thread([&s]() { s.accept_loop(); });
}

void SimServer::Impl::accept_loop() {
  while (running.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd, POLLIN, 0};
    const int r = ::poll(&pfd, 1, 100);
    {
      // Opportunistic reap keeps a long-lived daemon's finished
      // connections from accumulating.
      const std::lock_guard<std::mutex> lock(conns_mutex);
      reap_finished_locked();
    }
    if (r <= 0) continue;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) continue;
    auto conn = std::make_unique<Connection>(*this, fd);
    Connection* raw = conn.get();
    raw->reader_ = std::thread([raw]() { raw->reader_loop(); });
    const std::lock_guard<std::mutex> lock(conns_mutex);
    conns.push_back(std::move(conn));
  }
}

void SimServer::Impl::reap_finished_locked() {
  for (auto it = conns.begin(); it != conns.end();) {
    if ((*it)->finished.load(std::memory_order_acquire)) {
      (*it)->reader_.join();
      ::close((*it)->fd_);
      it = conns.erase(it);
    } else {
      ++it;
    }
  }
}

void SimServer::stop() {
  Impl& s = *impl_;
  if (!s.running.exchange(false)) return;
  if (s.accept_thread.joinable()) s.accept_thread.join();
  if (s.listen_fd >= 0) {
    ::close(s.listen_fd);
    s.listen_fd = -1;
  }
  if (!s.config.socket_path.empty()) {
    ::unlink(s.config.socket_path.c_str());
  }
  {
    // Wake every reader with a shutdown so connections drain: cancel
    // their runs, then close the sockets out from under recv().
    const std::lock_guard<std::mutex> lock(s.conns_mutex);
    for (auto& conn : s.conns) {
      const std::lock_guard<std::mutex> state(conn->state_mutex_);
      for (auto& [id, run] : conn->runs_) {
        run->cancel.store(true, std::memory_order_relaxed);
      }
      ::shutdown(conn->fd_, SHUT_RDWR);
    }
  }
  for (;;) {
    {
      const std::lock_guard<std::mutex> lock(s.conns_mutex);
      s.reap_finished_locked();
      if (s.conns.empty()) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  if (s.pool) {
    s.pool->stop_and_join();
    s.pool.reset();
  }
}

bool SimServer::running() const noexcept { return impl_->running.load(); }

const std::string& SimServer::socket_path() const noexcept {
  return impl_->config.socket_path;
}

int SimServer::port() const noexcept { return impl_->resolved_port; }

unsigned SimServer::workers() const noexcept { return impl_->worker_count; }

std::size_t SimServer::connection_count() const {
  const std::lock_guard<std::mutex> lock(impl_->conns_mutex);
  return impl_->conns.size();
}

void SimServer::serve_until(const std::atomic<bool>& interrupt) {
  if (!running()) start();
  while (!interrupt.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  stop();
}

}  // namespace icvbe::server
