#include "icvbe/server/protocol.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "icvbe/spice/netlist.hpp"

namespace icvbe::server {

namespace {

std::vector<std::string> split_tokens(std::string_view line) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && line[i] == ' ') ++i;
    std::size_t j = i;
    while (j < line.size() && line[j] != ' ') ++j;
    if (j > i) out.emplace_back(line.substr(i, j - i));
    i = j;
  }
  return out;
}

}  // namespace

std::string encode_frame(const std::vector<std::string>& head,
                         std::string_view body) {
  std::string payload;
  for (std::size_t i = 0; i < head.size(); ++i) {
    if (i > 0) payload += ' ';
    payload += head[i];
  }
  if (!body.empty()) {
    payload += '\n';
    payload += body;
  }
  std::string frame = std::to_string(payload.size());
  frame += '\n';
  frame += payload;
  return frame;
}

Frame parse_payload(std::string_view payload) {
  Frame f;
  const std::size_t nl = payload.find('\n');
  if (nl == std::string_view::npos) {
    f.head = split_tokens(payload);
  } else {
    f.head = split_tokens(payload.substr(0, nl));
    f.body = std::string(payload.substr(nl + 1));
  }
  return f;
}

std::optional<Frame> FrameDecoder::next() {
  // Compact lazily: moving the tail on every frame would make draining a
  // large buffered stream quadratic.
  if (consumed_ > 0 && consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  }
  const std::string_view rest =
      std::string_view(buffer_).substr(consumed_);
  const std::size_t nl = rest.find('\n');
  if (nl == std::string_view::npos) {
    if (rest.size() > 20) {
      throw ProtocolError("frame length prefix missing its newline");
    }
    return std::nullopt;
  }
  const std::string_view digits = rest.substr(0, nl);
  if (digits.empty() || digits.size() > 12) {
    throw ProtocolError("malformed frame length prefix '" +
                        std::string(digits) + "'");
  }
  std::size_t length = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') {
      throw ProtocolError("malformed frame length prefix '" +
                          std::string(digits) + "'");
    }
    length = length * 10 + static_cast<std::size_t>(c - '0');
  }
  if (length > kMaxFrameBytes) {
    throw ProtocolError("frame of " + std::to_string(length) +
                        " bytes exceeds the " +
                        std::to_string(kMaxFrameBytes) + "-byte limit");
  }
  if (rest.size() < nl + 1 + length) return std::nullopt;  // incomplete
  Frame f = parse_payload(rest.substr(nl + 1, length));
  consumed_ += nl + 1 + length;
  if (consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  }
  return f;
}

std::string format_value(double v) {
  // Shortest decimal that strtod parses back to exactly v (17 significant
  // digits always does; most values need fewer).
  char buf[32];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

std::vector<PatchCommand> parse_patch_body(std::string_view body) {
  std::vector<PatchCommand> out;
  std::size_t pos = 0;
  while (pos <= body.size()) {
    const std::size_t nl = body.find('\n', pos);
    const std::string_view line =
        body.substr(pos, nl == std::string_view::npos ? body.size() - pos
                                                      : nl - pos);
    pos = nl == std::string_view::npos ? body.size() + 1 : nl + 1;

    const std::vector<std::string> toks = split_tokens(line);
    if (toks.empty()) continue;

    const auto value_of = [&](const std::string& text) {
      try {
        return spice::parse_spice_number(text);
      } catch (const Error&) {
        throw ProtocolError("PATCH: bad value in '" + std::string(line) +
                            "'");
      }
    };

    std::string kind = toks[0];
    for (char& c : kind) c = static_cast<char>(std::toupper(c));
    PatchCommand cmd;
    if (kind == "TEMP") {
      if (toks.size() != 2) {
        throw ProtocolError("PATCH: expected 'TEMP <celsius>', got '" +
                            std::string(line) + "'");
      }
      cmd.target = PatchCommand::Target::kTemperature;
      cmd.value = value_of(toks[1]);
    } else {
      if (toks.size() != 3) {
        throw ProtocolError(
            "PATCH: expected '<R|C|L|V|I> <name> <value>', got '" +
            std::string(line) + "'");
      }
      if (kind == "R") {
        cmd.target = PatchCommand::Target::kResistor;
      } else if (kind == "C") {
        cmd.target = PatchCommand::Target::kCapacitor;
      } else if (kind == "L") {
        cmd.target = PatchCommand::Target::kInductor;
      } else if (kind == "V") {
        cmd.target = PatchCommand::Target::kVsource;
      } else if (kind == "I") {
        cmd.target = PatchCommand::Target::kIsource;
      } else {
        throw ProtocolError("PATCH: unknown target '" + toks[0] +
                            "' in '" + std::string(line) + "'");
      }
      cmd.name = toks[1];
      cmd.value = value_of(toks[2]);
    }
    out.push_back(std::move(cmd));
  }
  return out;
}

}  // namespace icvbe::server
