#include "icvbe/server/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace icvbe::server {

namespace {

/// Send the whole buffer; throws on a dead peer.
void write_all(int fd, std::string_view bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
#ifdef MSG_NOSIGNAL
    const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
#else
    const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off, 0);
#endif
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      throw Error("client: server connection lost while sending");
    }
    off += static_cast<std::size_t>(n);
  }
}

std::string join_head(const std::vector<std::string>& head) {
  std::string out;
  for (std::size_t i = 0; i < head.size(); ++i) {
    if (i > 0) out += ' ';
    out += head[i];
  }
  return out;
}

/// Split one line of space-separated format_value numbers; strtod keeps
/// the round-trip bit-exact.
std::vector<double> parse_values(std::string_view line) {
  std::vector<double> out;
  const char* p = line.data();
  const char* const end = p + line.size();
  while (p < end) {
    while (p < end && *p == ' ') ++p;
    if (p >= end) break;
    // The body is NUL-free and ends the frame, but strtod needs a
    // terminator; copy the token.
    const char* q = p;
    while (q < end && *q != ' ') ++q;
    const std::string tok(p, q);
    out.push_back(std::strtod(tok.c_str(), nullptr));
    p = q;
  }
  return out;
}

/// Split tab-separated labels after the leading keyword token.
std::vector<std::string> parse_labels(std::string_view line) {
  std::vector<std::string> out;
  std::size_t pos = line.find('\t');
  while (pos != std::string_view::npos) {
    const std::size_t next = line.find('\t', pos + 1);
    out.emplace_back(line.substr(
        pos + 1,
        next == std::string_view::npos ? line.size() - pos - 1
                                       : next - pos - 1));
    pos = next;
  }
  return out;
}

bool is_stream_head(std::string_view cmd) {
  return cmd == "INIT" || cmd == "DATA" || cmd == "DONE" ||
         cmd == "CANCELLED" || cmd == "FAIL";
}

}  // namespace

Client Client::connect_unix(const std::string& socket_path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw Error("client: socket(): " + std::string(strerror(errno)));
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof addr.sun_path) {
    ::close(fd);
    throw Error("client: socket path too long: " + socket_path);
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    const int err = errno;
    ::close(fd);
    throw Error("client: connect('" + socket_path +
                "'): " + std::string(strerror(err)));
  }
  return Client(fd);
}

Client Client::connect_tcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw Error("client: socket(): " + std::string(strerror(errno)));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    const int err = errno;
    ::close(fd);
    throw Error("client: connect(127.0.0.1:" + std::to_string(port) +
                "): " + std::string(strerror(err)));
  }
  return Client(fd);
}

Client::Client(int fd) : fd_(fd) {}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_),
      decoder_(std::move(other.decoder_)),
      next_run_(other.next_run_) {
  other.fd_ = -1;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Frame Client::read_frame() {
  for (;;) {
    if (auto f = decoder_.next()) return *std::move(f);
    char buf[65536];
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) throw Error("client: server closed the connection");
    decoder_.feed(std::string_view(buf, static_cast<std::size_t>(n)));
  }
}

void Client::send_command(const std::vector<std::string>& head,
                          std::string_view body) {
  write_all(fd_, encode_frame(head, body));
}

Frame Client::wait_reply() {
  for (;;) {
    Frame f = read_frame();
    if (!is_stream_head(f.tok(0))) return f;
  }
}

Frame Client::request(const std::vector<std::string>& head,
                      std::string_view body) {
  send_command(head, body);
  const bool expecting_cancel_ack = !head.empty() && head[0] == "CANCEL";
  for (;;) {
    Frame f = read_frame();
    const std::string_view cmd = f.tok(0);
    if (is_stream_head(cmd)) continue;  // stale tail of an earlier run
    if (cmd == "OK") {
      // CANCEL acks of fire-and-forget cancel() calls may still be in
      // flight; they are not the reply to this request.
      if (f.tok(1) == "CANCEL" && !expecting_cancel_ack) continue;
      return f;
    }
    if (cmd == "ERR") {
      throw CommandError(std::string(f.tok(1)) + ": " +
                         (f.body.empty() ? join_head(f.head) : f.body));
    }
    throw ProtocolError("client: unexpected frame '" + join_head(f.head) +
                        "'");
  }
}

std::vector<std::string> Client::load(const std::string& session,
                                      std::string_view deck) {
  const Frame ok = request({"LOAD", session}, deck);
  // OK LOADED <session> <analysis tokens...>
  std::vector<std::string> analyses(ok.head.begin() + 3, ok.head.end());
  return analyses;
}

RunResult Client::run(const std::string& session, const std::string& analysis,
                      RunHandler* handler, unsigned threads,
                      const std::string& run_id) {
  std::string id;
  if (run_id.empty()) {
    id = std::to_string(next_run_++);
    id.insert(id.begin(), 'r');
  } else {
    id = run_id;
  }
  std::vector<std::string> head{"RUN", id, session, analysis};
  if (threads != 1) head.push_back("THREADS=" + std::to_string(threads));
  send_command(head);

  bool acked = false;
  std::size_t axis_count = 0;
  RunResult result;
  for (;;) {
    Frame f = read_frame();
    const std::string_view cmd = f.tok(0);
    if (cmd == "OK") {
      if (f.tok(1) == "RUN") acked = true;
      continue;  // also swallows CANCEL acks issued from on_data
    }
    if (cmd == "ERR") {
      throw CommandError(std::string(f.tok(1)) + ": " +
                         (f.body.empty() ? join_head(f.head) : f.body));
    }
    if (f.tok(1) != id) {
      throw ProtocolError("client: frame for foreign run '" +
                          join_head(f.head) + "'");
    }
    if (cmd == "INIT") {
      std::vector<std::string> axes;
      std::vector<std::string> probes;
      std::size_t expected = 0;
      std::size_t pos = 0;
      const std::string& b = f.body;
      while (pos < b.size()) {
        const std::size_t nl = b.find('\n', pos);
        const std::string_view line(
            b.data() + pos,
            (nl == std::string::npos ? b.size() : nl) - pos);
        if (line.rfind("AXES", 0) == 0) {
          axes = parse_labels(line);
        } else if (line.rfind("PROBES", 0) == 0) {
          probes = parse_labels(line);
        } else if (line.rfind("ROWS ", 0) == 0) {
          expected = static_cast<std::size_t>(
              std::strtoull(std::string(line.substr(5)).c_str(), nullptr,
                            10));
        }
        pos = nl == std::string::npos ? b.size() : nl + 1;
      }
      axis_count = axes.size();
      if (handler != nullptr) handler->on_init(axes, probes, expected);
      continue;
    }
    if (cmd == "DATA") {
      if (handler != nullptr) {
        const std::size_t row = static_cast<std::size_t>(
            std::strtoull(std::string(f.tok(2)).c_str(), nullptr, 10));
        std::vector<double> values = parse_values(f.body);
        if (values.size() < axis_count) {
          throw ProtocolError("client: DATA row shorter than its axes");
        }
        const std::vector<double> axes(values.begin(),
                                       values.begin() +
                                           static_cast<std::ptrdiff_t>(
                                               axis_count));
        values.erase(values.begin(),
                     values.begin() +
                         static_cast<std::ptrdiff_t>(axis_count));
        handler->on_data(row, axes, values);
      }
      continue;
    }
    // Terminal frames.
    result.rows = static_cast<std::size_t>(
        std::strtoull(std::string(f.tok(2)).c_str(), nullptr, 10));
    if (cmd == "DONE") {
      result.outcome = RunOutcome::kDone;
    } else if (cmd == "CANCELLED") {
      result.outcome = RunOutcome::kCancelled;
    } else {  // FAIL
      result.outcome = RunOutcome::kFailed;
      result.rows = 0;
      result.error = f.body;
    }
    break;
  }
  if (!acked && result.outcome != RunOutcome::kFailed) {
    // DONE before OK cannot happen (the ack is written before the run is
    // queued); defensive only.
    throw ProtocolError("client: run finished without an OK RUN ack");
  }
  return result;
}

void Client::cancel(const std::string& run_id) {
  send_command({"CANCEL", run_id});
}

std::size_t Client::patch(const std::string& session, std::string_view body) {
  const Frame ok = request({"PATCH", session}, body);
  return static_cast<std::size_t>(
      std::strtoull(std::string(ok.tok(3)).c_str(), nullptr, 10));
}

void Client::close_session(const std::string& session) {
  (void)request({"CLOSE", session});
}

std::string Client::status() {
  return request({"STATUS"}).body;
}

}  // namespace icvbe::server
