#include "icvbe/lab/silicon.hpp"

#include "icvbe/common/rng.hpp"

namespace icvbe::lab {

ProcessTruth ProcessTruth::nominal() {
  ProcessTruth t;
  spice::BjtModel& m = t.pnp;
  m.type = spice::BjtModel::Type::kPnp;
  // Substrate PNP in 0.8 ohm-cm n-epi: modest beta, soft Early voltages.
  m.is = 2.0e-16;   // 6 um^2 emitter
  m.bf = 45.0;
  m.br = 4.0;
  m.nf = 1.0;
  m.nr = 1.0;
  m.ise = 4.0e-17;
  m.ne = 1.6;
  m.vaf = 60.0;
  m.var = 8.0;
  // The true temperature parameters the methods must recover. EG includes
  // the ~45 meV emitter bandgap narrowing: 1.1774 - 0.045 ~ 1.132, and the
  // paper-era BiCMOS devices extract XTI well above the textbook 3.
  m.eg = 1.132;
  m.xti = 3.6;
  m.tnom = 298.15;  // 25 C reference, as in the paper's T2
  // Vertical parasitic off the emitter junction (always active in the
  // diode-connected, saturation-limit bias). ns_e != 1 makes QB's 8x
  // parasitic steal a different *fraction* than QA's, producing the
  // non-PTAT dVBE component the paper corrects with RadjA. The stolen
  // fraction grows with temperature iff eg_sub_e > eg (the emission
  // coefficient divides both activations in the SPICE temperature law, so
  // it drops out of the condition). The effective activation 1.45 eV
  // represents junction leakage plus thermally activated transport to the
  // substrate; it gives the strong super-linear hot-end growth behind
  // Fig. 8's "dramatic rise" while staying negligible below ~80 C (so the
  // Table-1 temperature computation at 75 C is barely touched).
  m.iss_e = 1.4e-13;
  m.ns_e = 2.0;
  m.eg_sub_e = 1.632;
  m.xti_sub_e = 3.0;
  m.bf_sub = 2.5;  // lateral-parasitic-class gain: a large base share,
                   // which is what the RadjA trim leg acts on

  // B-C driven substrate path (only active when driven into deep
  // saturation; present for completeness).
  m.iss = 1.0e-17;
  m.ns = 1.1;
  m.eg_sub = 1.05;
  m.xti_sub = 3.0;
  return t;
}

SiliconLot::SiliconLot(ProcessTruth truth, std::uint64_t master_seed)
    : truth_(truth), master_seed_(master_seed) {}

DieSample SiliconLot::sample(int index) const {
  Rng rng = Rng::child(master_seed_, static_cast<std::uint64_t>(index));
  DieSample s;
  s.index = index;

  // Lot-level IS spread is common to every device on the die; pair
  // mismatch perturbs QA and QB independently (they are adjacent and
  // matched, so the mismatch sigma is small).
  const double lot_is = rng.spread_factor(truth_.sigma_is_rel);
  const double lot_beta = rng.spread_factor(0.10);

  s.qa = truth_.pnp;
  s.qa.is *= lot_is * rng.spread_factor(truth_.sigma_pair_mismatch);
  s.qa.bf *= lot_beta;
  s.qb = truth_.pnp;
  s.qb.is *= lot_is * rng.spread_factor(truth_.sigma_pair_mismatch);
  s.qb.bf *= lot_beta;
  s.qin = truth_.pnp;
  s.qin.is *= lot_is * rng.spread_factor(truth_.sigma_pair_mismatch);
  s.qin.bf *= lot_beta;

  // Parasitic magnitude also spreads lot-to-lot.
  const double leak_spread = rng.spread_factor(0.25);
  s.qa.iss_e *= leak_spread;
  s.qb.iss_e *= leak_spread;
  s.qin.iss_e *= leak_spread;

  s.opamp_offset =
      truth_.opamp_offset_mean +
      rng.gaussian(0.0, truth_.opamp_offset_sigma);

  s.fixture = truth_.fixture;
  s.fixture.leak += rng.gaussian(0.0, truth_.sigma_leak);
  if (s.fixture.leak < 0.01) s.fixture.leak = 0.01;
  s.fixture.rth_die *= rng.spread_factor(truth_.sigma_rth_rel);
  s.fixture.aux_power *= rng.spread_factor(0.10);

  s.resistor_scale = rng.spread_factor(truth_.sigma_resistor_rel);
  return s;
}

}  // namespace icvbe::lab
