#include "icvbe/lab/instruments.hpp"

#include <cmath>

namespace icvbe::lab {

Pt100Sensor::Pt100Sensor(Rng rng) : Pt100Sensor(rng, Spec{}) {}

Pt100Sensor::Pt100Sensor(Rng rng, const Spec& spec)
    : rng_(rng),
      spec_(spec),
      offset_(rng_.gaussian(0.0, spec.offset_sigma)),
      gain_(1.0 + rng_.gaussian(0.0, spec.gain_sigma)) {}

double Pt100Sensor::read(double true_kelvin) {
  // Gain error acts on the Celsius-scale span the instrument linearises.
  const double celsius = true_kelvin - 273.15;
  return 273.15 + celsius * gain_ + offset_ +
         rng_.gaussian(0.0, spec_.noise_sigma);
}

SmuChannel::SmuChannel(Rng rng) : SmuChannel(rng, Spec{}) {}

SmuChannel::SmuChannel(Rng rng, const Spec& spec)
    : rng_(rng),
      spec_(spec),
      v_offset_(rng_.gaussian(0.0, spec.v_offset_sigma)),
      v_gain_(1.0 + rng_.gaussian(0.0, spec.v_gain_sigma)),
      i_gain_(1.0 + rng_.gaussian(0.0, spec.i_gain_sigma)) {}

double SmuChannel::measure_voltage(double true_volts) {
  return true_volts * v_gain_ + v_offset_ +
         rng_.gaussian(0.0, spec_.v_noise_sigma);
}

double SmuChannel::measure_current(double true_amps) {
  const double noise = rng_.gaussian(
      0.0, spec_.i_noise_floor + spec_.i_noise_rel * std::abs(true_amps));
  return true_amps * i_gain_ + noise;
}

double SmuChannel::force_voltage(double setpoint_volts) {
  return setpoint_volts * v_gain_ + v_offset_;
}

double SmuChannel::force_current(double setpoint_amps) {
  return setpoint_amps * i_gain_;
}

}  // namespace icvbe::lab
