#include "icvbe/lab/campaign.hpp"

#include <cmath>

#include "icvbe/common/constants.hpp"
#include "icvbe/common/error.hpp"
#include "icvbe/common/table.hpp"
#include "icvbe/spice/analysis.hpp"
#include "icvbe/spice/dc_solver.hpp"
#include "icvbe/spice/plan.hpp"
#include "icvbe/thermal/electrothermal.hpp"

namespace icvbe::lab {

Laboratory::Laboratory(DieSample sample, CampaignConfig config)
    : sample_(std::move(sample)),
      config_(std::move(config)),
      sensor_(Rng::child(config_.seed, 1), config_.sensor_spec),
      smu_vbe_(Rng::child(config_.seed, 2), config_.smu_spec),
      smu_pad_(Rng::child(config_.seed, 3), config_.smu_spec),
      smu_aux_(Rng::child(config_.seed, 4), config_.smu_spec) {}

double Laboratory::die_temperature(double chamber_kelvin,
                                   double power_watts) const {
  if (config_.ideal_thermal) return chamber_kelvin;
  return sample_.fixture.die_temperature(chamber_kelvin, power_watts);
}

Laboratory::CellRig& Laboratory::cell_rig(double radja_ohms) {
  constexpr double kMinTrim = 1e-6;  // matches the build_test_cell clamp
  if (!cell_) {
    cell_ = std::make_unique<CellRig>();
    cell_->handles = build_cell(cell_->circuit, radja_ohms);
    cell_->session.emplace(cell_->circuit, config_.newton);
  } else {
    cell_->circuit.get<spice::Resistor>(cell_->handles.radja)
        .set_nominal_resistance(std::max(radja_ohms, kMinTrim));
  }
  return *cell_;
}

Laboratory::DutRig& Laboratory::vbias_rig() {
  if (!vbias_) {
    vbias_ = std::make_unique<DutRig>();
    spice::Circuit& c = vbias_->circuit;
    vbias_->emitter = c.node("e");
    c.add_vsource("VE", vbias_->emitter, spice::kGround, 0.6);
    c.add_bjt("DUT", spice::kGround, spice::kGround, vbias_->emitter,
              sample_.qin, 1.0, spice::kGround);
    vbias_->session.emplace(c, config_.newton);
  }
  return *vbias_;
}

Laboratory::DutRig& Laboratory::ibias_rig() {
  if (!ibias_) {
    ibias_ = std::make_unique<DutRig>();
    spice::Circuit& c = ibias_->circuit;
    ibias_->emitter = c.node("e");
    c.add_isource("IE", spice::kGround, ibias_->emitter, 1e-6);
    c.add_bjt("DUT", spice::kGround, spice::kGround, ibias_->emitter,
              sample_.qin, 1.0, spice::kGround);
    ibias_->session.emplace(c, config_.newton);
  }
  return *ibias_;
}

std::vector<Series> Laboratory::icvbe_family(
    const std::vector<double>& chamber_celsius, double vbe_min,
    double vbe_max, int points) {
  ICVBE_REQUIRE(points >= 2, "icvbe_family: need >= 2 sweep points");
  std::vector<Series> out;
  out.reserve(chamber_celsius.size());

  // Common-base bias with VCB = 0: emitter driven, base and collector
  // grounded -- the same junction configuration as the diode-connected
  // cell devices. The rig (circuit + solver session) is built once per
  // laboratory session and re-biased point to point.
  DutRig& rig = vbias_rig();

  // Each chamber setting is one declarative 1-axis plan: sweep VE over the
  // *forced* voltages (the SMU applies its systematic source error to the
  // programmed setpoints; forcing draws no per-reading noise) and probe
  // the DUT collector current. The rig session carries warm-start
  // continuation across points and chambers exactly as before.
  const std::vector<double> setpoints =
      spice::linspace(vbe_min, vbe_max, points);
  spice::AnalysisPlan plan;
  plan.name = "icvbe_family";
  plan.probes = {spice::Probe::bjt_current(
      "DUT", spice::Probe::BjtTerminal::kCollector)};

  for (double tc : chamber_celsius) {
    // The DUT dissipates microwatts at the currents of interest, so the
    // die temperature is the fixture value at zero chip power (the rest of
    // the chip is unpowered during single-device characterisation).
    const double t_die = die_temperature(to_kelvin(tc), 0.0);
    rig.circuit.set_temperature(t_die);

    std::vector<double> forced = setpoints;
    if (!config_.ideal_instruments) {
      for (double& v : forced) v = smu_vbe_.force_voltage(v);
    }
    plan.axes = {spice::SweepAxis::vsource(
        "VE", spice::SweepGrid::list(std::move(forced)))};

    spice::SweepResult biased;
    try {
      biased = rig.session->run(plan);
    } catch (const NumericalError&) {
      throw MeasurementError("icvbe_family: bias point failed to solve");
    }

    Series family("IC(VBE) at " + format_fixed(tc, 1) + " C");
    family.reserve(static_cast<std::size_t>(points));
    for (std::size_t i = 0; i < setpoints.size(); ++i) {
      const double ic_true = std::abs(biased.value(0, i));
      const double ic_meas = config_.ideal_instruments
                                 ? ic_true
                                 : smu_aux_.measure_current(ic_true);
      // Record the *programmed* VBE on x (that is how a real analyser
      // reports a forced sweep) and the measured current on y.
      family.push_back(setpoints[i], std::max(ic_meas, 1e-16));
    }
    out.push_back(std::move(family));
  }
  return out;
}

std::vector<VbePoint> Laboratory::vbe_vs_temperature(
    double ic_amps, const std::vector<double>& chamber_celsius) {
  ICVBE_REQUIRE(ic_amps > 0.0, "vbe_vs_temperature: current must be > 0");
  std::vector<VbePoint> out;
  out.reserve(chamber_celsius.size());

  // Forced emitter current into the diode-connected DUT; VBE read at the
  // emitter (VCB = 0). One rig for the whole temperature list.
  DutRig& rig = ibias_rig();
  auto& ie = rig.circuit.get<spice::CurrentSource>("IE");
  const auto& dut = rig.circuit.get<spice::Bjt>("DUT");

  for (double tc : chamber_celsius) {
    const double t_die = die_temperature(to_kelvin(tc), 0.0);

    const double forced = config_.ideal_instruments
                              ? ic_amps
                              : smu_aux_.force_current(ic_amps);
    ie.set_current(forced);
    rig.circuit.set_temperature(t_die);
    const spice::Unknowns& x = rig.session->solve_or_throw();

    VbePoint p;
    p.t_die_true = t_die;
    p.t_sensor = config_.ideal_instruments ? to_kelvin(tc)
                                           : sensor_.read(to_kelvin(tc));
    const double vbe_true = x.node_voltage(rig.emitter);
    p.vbe = config_.ideal_instruments ? vbe_true
                                      : smu_vbe_.measure_voltage(vbe_true);
    const double ic_true = std::abs(dut.currents(x).ic);
    p.ic = config_.ideal_instruments ? ic_true
                                     : smu_aux_.measure_current(ic_true);
    out.push_back(p);
  }
  return out;
}

bandgap::TestCellHandles Laboratory::build_cell(spice::Circuit& circuit,
                                                double radja_ohms) const {
  bandgap::TestCellParams p = config_.cell;
  p.qa_model = sample_.qa;
  p.qb_model = sample_.qb;
  p.opamp_offset = sample_.opamp_offset;
  p.radja = radja_ohms;
  p.rx1 *= sample_.resistor_scale;
  p.rx2 *= sample_.resistor_scale;
  p.rb *= sample_.resistor_scale;
  return bandgap::build_test_cell(circuit, p);
}

std::vector<CellPoint> Laboratory::test_cell_sweep(
    const std::vector<double>& chamber_celsius, double radja_ohms) {
  std::vector<CellPoint> out;
  out.reserve(chamber_celsius.size());

  // One persistent cell rig: circuit assembled once, RADJA re-programmed,
  // every solve of the electro-thermal loop warm-started in the session.
  CellRig& rig = cell_rig(radja_ohms);

  for (double tc : chamber_celsius) {
    // Electro-thermal: the cell's own power plus the chip's auxiliary
    // circuitry heat the die above the fixture-leak-adjusted ambient.
    const double chamber_k = to_kelvin(tc);
    double t_die = die_temperature(chamber_k, 0.0);
    bandgap::CellObservation obs{};
    for (int pass = 0; pass < 8; ++pass) {
      obs = bandgap::solve_cell_at(*rig.session, rig.handles, t_die);
      const double t_new =
          config_.ideal_thermal
              ? chamber_k
              : die_temperature(chamber_k, obs.power);
      if (std::abs(t_new - t_die) < 1e-4) {
        t_die = t_new;
        break;
      }
      t_die = t_new;
    }
    obs = bandgap::solve_cell_at(*rig.session, rig.handles, t_die);

    CellPoint p;
    p.t_die_true = t_die;
    p.t_sensor = config_.ideal_instruments ? chamber_k
                                           : sensor_.read(chamber_k);
    if (config_.ideal_instruments) {
      p.vbe_qa = obs.vbe_qa;
      p.vbe_qb = obs.vbe_qb;
      p.vref = obs.vref;
      p.ic_qa = obs.ic_qa;
      p.ic_qb = obs.ic_qb;
    } else {
      p.vbe_qa = smu_vbe_.measure_voltage(obs.vbe_qa);
      p.vbe_qb = smu_pad_.measure_voltage(obs.vbe_qb);
      p.vref = smu_aux_.measure_voltage(obs.vref);
      p.ic_qa = smu_aux_.measure_current(obs.ic_qa);
      p.ic_qb = smu_aux_.measure_current(obs.ic_qb);
    }
    p.delta_vbe = p.vbe_qa - p.vbe_qb;
    out.push_back(p);
  }
  return out;
}

Series Laboratory::vref_curve(const std::vector<double>& chamber_celsius,
                              double radja_ohms) {
  if (chamber_celsius.empty()) {
    return Series("VREF(T), RadjA=" + format_fixed(radja_ohms / 1e3, 2) +
                  "k");
  }

  // One persistent cell rig; RADJA re-programmed between calls.
  CellRig& rig = cell_rig(radja_ohms);

  // Resolve the electro-thermal operating temperature of every chamber
  // point first -- the fixed point needs intermediate solves and the cell
  // power, so it cannot be a sweep axis...
  std::vector<double> die_temps;
  die_temps.reserve(chamber_celsius.size());
  for (double tc : chamber_celsius) {
    const double chamber_k = to_kelvin(tc);
    double t_die = die_temperature(chamber_k, 0.0);
    for (int pass = 0; pass < 8; ++pass) {
      const bandgap::CellObservation obs =
          bandgap::solve_cell_at(*rig.session, rig.handles, t_die);
      const double t_new = config_.ideal_thermal
                               ? chamber_k
                               : die_temperature(chamber_k, obs.power);
      if (std::abs(t_new - t_die) < 1e-4) {
        t_die = t_new;
        break;
      }
      t_die = t_new;
    }
    die_temps.push_back(t_die);
  }

  // ...the curve itself then is a declarative plan: sweep the resolved die
  // temperatures, probe V(vref). Seed the first point with the cell's
  // analytic startup guess at its own temperature (the last fixed-point
  // iterate may sit at the far end of the grid).
  spice::AnalysisPlan plan;
  plan.name = "vref_curve";
  plan.axes = {spice::SweepAxis::temperature_kelvin(
      spice::SweepGrid::list(die_temps))};
  plan.probes = {spice::Probe::node_voltage(
      rig.circuit.node_name(rig.handles.vref))};
  rig.circuit.set_temperature(die_temps.front());  // the guess reads
                                                   // temperature state
  rig.session->seed_warm_start(bandgap::cell_initial_guess(
      rig.circuit, rig.handles, die_temps.front()));

  std::vector<double> vrefs(chamber_celsius.size());
  try {
    const spice::SweepResult curve = rig.session->run(plan);
    for (std::size_t i = 0; i < vrefs.size(); ++i) {
      vrefs[i] = curve.value(0, i);
    }
  } catch (const NumericalError&) {
    // Sparse grids can put adjacent points hundreds of kelvin apart,
    // where one shared seed cannot rescue the continuation. Fall back to
    // the per-point path, which re-seeds every solve from the cell's
    // analytic startup guess at its own temperature.
    for (std::size_t i = 0; i < vrefs.size(); ++i) {
      vrefs[i] =
          bandgap::solve_cell_at(*rig.session, rig.handles, die_temps[i])
              .vref;
    }
  }

  Series s("VREF(T), RadjA=" + format_fixed(radja_ohms / 1e3, 2) + "k");
  s.reserve(chamber_celsius.size());
  for (std::size_t i = 0; i < chamber_celsius.size(); ++i) {
    const double vref = config_.ideal_instruments
                            ? vrefs[i]
                            : smu_aux_.measure_voltage(vrefs[i]);
    s.push_back(chamber_celsius[i], vref);
  }
  return s;
}

}  // namespace icvbe::lab
