// LotCampaign::run_batched -- the K-lane batched lot driver.
//
// The per-die path (run_die) builds a fresh Laboratory per die: fresh
// circuits, fresh solver sessions (pattern discovery + symbolic analysis
// per die), fresh instrument streams. This driver keeps ONE set of K lane
// circuits per rig per worker, re-programs the per-die parameter values
// between dies (ParamDeltaSet + begin_variant -- value changes never touch
// the frozen pattern), and carries all K dies through every LU
// refactor/solve together (BatchDcSession).
//
// Bit-identity discipline (results must equal run_die's for any thread
// count and any lane count):
//  * every per-die arithmetic expression -- parameter scaling, die
//    temperature, thermal fixed point, measurement draws -- is copied
//    verbatim from the Laboratory path, in per-die order (instrument
//    streams are per-die, so interleaving dies is free);
//  * each worker's batch sessions are primed from the campaign-fixed
//    reference die (first_index) at a deterministic state, so the shared
//    pivot sequence is independent of which worker solves which group;
//  * any lane that leaves the lockstep (pivot rejection, plain-Newton
//    non-convergence, any exception) discards its batch-side work and the
//    die is recomputed with run_die -- same bits by definition.

#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "icvbe/bandgap/test_cell.hpp"
#include "icvbe/common/constants.hpp"
#include "icvbe/common/error.hpp"
#include "icvbe/common/thread_pool.hpp"
#include "icvbe/extract/best_fit.hpp"
#include "icvbe/extract/dataset.hpp"
#include "icvbe/extract/meijer.hpp"
#include "icvbe/lab/instruments.hpp"
#include "icvbe/lab/lot_campaign.hpp"
#include "icvbe/spice/batch_session.hpp"

namespace icvbe::lab {

namespace {

/// Laboratory::build_cell's parameter derivation, expression for
/// expression (same operands, same order, same bits).
bandgap::TestCellParams cell_params_for(const DieSample& sample,
                                        const CampaignConfig& cfg,
                                        double radja_ohms) {
  bandgap::TestCellParams p = cfg.cell;
  p.qa_model = sample.qa;
  p.qb_model = sample.qb;
  p.opamp_offset = sample.opamp_offset;
  p.radja = radja_ohms;
  p.rx1 *= sample.resistor_scale;
  p.rx2 *= sample.resistor_scale;
  p.rb *= sample.resistor_scale;
  return p;
}

/// The cell observation observe_cell (test_cell.cpp) produces, replicated
/// field for field against a lane's solution.
bandgap::CellObservation observe_lane(const spice::Circuit& circuit,
                                      const bandgap::TestCellHandles& handles,
                                      const spice::Unknowns& x,
                                      double t_die_kelvin) {
  bandgap::CellObservation obs;
  obs.t_die = t_die_kelvin;
  obs.vref = x.node_voltage(handles.vref);
  obs.vbe_qa = x.node_voltage(handles.a);
  obs.vbe_qb = x.node_voltage(handles.be);
  obs.delta_vbe = obs.vbe_qa - obs.vbe_qb;
  const auto& qa = circuit.get<spice::Bjt>(handles.qa);
  const auto& qb = circuit.get<spice::Bjt>(handles.qb);
  obs.ic_qa = std::abs(qa.currents(x).ic);
  obs.ic_qb = std::abs(qb.currents(x).ic);
  obs.power = circuit.total_power(x);
  return obs;
}

/// One die's instrument set, drawn exactly as the Laboratory constructor
/// draws it (same child streams, same specs).
struct DieInstruments {
  Pt100Sensor sensor;
  SmuChannel smu_vbe;
  SmuChannel smu_pad;
  SmuChannel smu_aux;
  DieInstruments(std::uint64_t seed, const CampaignConfig& cfg)
      : sensor(Rng::child(seed, 1), cfg.sensor_spec),
        smu_vbe(Rng::child(seed, 2), cfg.smu_spec),
        smu_pad(Rng::child(seed, 3), cfg.smu_spec),
        smu_aux(Rng::child(seed, 4), cfg.smu_spec) {}
};

/// One worker's lane rigs: K ibias circuits + K cell circuits, each pair
/// of batches sharing one pattern and one pinned symbolic analysis.
struct WorkerRigs {
  std::size_t k = 0;

  // Classical-method rig (forced-current diode-connected DUT, n = 1).
  std::vector<std::unique_ptr<spice::Circuit>> ibias_circuit;
  std::vector<spice::NodeId> ibias_emitter;
  std::vector<spice::CurrentSource*> ibias_ie;
  std::vector<const spice::Bjt*> ibias_dut;
  std::optional<spice::BatchDcSession> ibias;

  // Meijer-method rig (the full test cell).
  std::vector<std::unique_ptr<spice::Circuit>> cell_circuit;
  std::vector<bandgap::TestCellHandles> cell_handles;
  std::vector<spice::ParamDeltaSet> cell_delta;
  std::size_t slot_qa = 0, slot_qb = 0, slot_u1 = 0;
  std::size_t slot_rx1 = 0, slot_rx2 = 0, slot_rb = 0;
  std::optional<spice::BatchDcSession> cell;

  WorkerRigs(std::size_t lanes, const SiliconLot& lot,
             const LotCampaignConfig& cfg) {
    k = lanes;
    const DieSample ref = lot.sample(cfg.first_index);

    if (cfg.run_classical && !cfg.classical_celsius.empty()) {
      std::vector<spice::Circuit*> ptrs;
      for (std::size_t l = 0; l < k; ++l) {
        auto c = std::make_unique<spice::Circuit>();
        const spice::NodeId e = c->node("e");
        c->add_isource("IE", spice::kGround, e, 1e-6);
        c->add_bjt("DUT", spice::kGround, spice::kGround, e, ref.qin, 1.0,
                   spice::kGround);
        ibias_emitter.push_back(e);
        ibias_circuit.push_back(std::move(c));
        ptrs.push_back(ibias_circuit.back().get());
      }
      ibias.emplace(std::move(ptrs), cfg.lab.newton);
      for (std::size_t l = 0; l < k; ++l) {
        ibias_ie.push_back(
            &ibias_circuit[l]->get<spice::CurrentSource>("IE"));
        ibias_dut.push_back(&ibias_circuit[l]->get<spice::Bjt>("DUT"));
      }
      // Deterministic prime: the reference die at the first chamber
      // setting and the nominal forced current, cold start -- a pure
      // function of (lot, config), so every worker pins identical pivots.
      const double chamber_k = to_kelvin(cfg.classical_celsius.front());
      const double t_ref = cfg.lab.ideal_thermal
                               ? chamber_k
                               : ref.fixture.die_temperature(chamber_k, 0.0);
      ibias_ie[0]->set_current(cfg.classical_ic);
      ibias_circuit[0]->set_temperature(t_ref);
      ibias->prime(0);
    }

    if (cfg.run_meijer && !cfg.cell_celsius.empty()) {
      const bandgap::TestCellParams ref_params =
          cell_params_for(ref, cfg.lab, 0.0);
      std::vector<spice::Circuit*> ptrs;
      for (std::size_t l = 0; l < k; ++l) {
        auto c = std::make_unique<spice::Circuit>();
        cell_handles.push_back(bandgap::build_test_cell(*c, ref_params));
        cell_circuit.push_back(std::move(c));
        ptrs.push_back(cell_circuit.back().get());
      }
      cell.emplace(std::move(ptrs), cfg.lab.newton);
      for (std::size_t l = 0; l < k; ++l) {
        spice::ParamDeltaSet d(*cell_circuit[l]);
        slot_qa = d.bind_bjt(cell_handles[l].qa);
        slot_qb = d.bind_bjt(cell_handles[l].qb);
        slot_u1 = d.bind_opamp("U1");
        slot_rx1 = d.bind_resistor("RX1");
        slot_rx2 = d.bind_resistor("RX2");
        slot_rb = d.bind_resistor("RB");
        cell_delta.push_back(std::move(d));
      }
      // Deterministic prime: reference die, first cell chamber setting,
      // warm-seeded from the cell's analytic startup guess -- the same
      // state the per-die session analyses at its first Newton iterate.
      const double chamber_k = to_kelvin(cfg.cell_celsius.front());
      const double t_ref = cfg.lab.ideal_thermal
                               ? chamber_k
                               : ref.fixture.die_temperature(chamber_k, 0.0);
      cell_circuit[0]->set_temperature(t_ref);
      cell->seed_warm_start(
          0, bandgap::cell_initial_guess(*cell_circuit[0], cell_handles[0],
                                         t_ref));
      cell->prime(0);
      cell->begin_variant(0);  // wipe the priming seed before real dies
    }
  }

  /// Re-program lane `l` to `sample` and reset it to fresh-rig state.
  void program_die(std::size_t l, const DieSample& sample,
                   const LotCampaignConfig& cfg) {
    if (ibias) {
      ibias_circuit[l]->get<spice::Bjt>("DUT").set_model(sample.qin);
      ibias->begin_variant(l);
      ibias->set_lane_active(l, true);
    }
    if (cell) {
      auto& d = cell_delta[l];
      d.set_bjt_model(slot_qa, sample.qa);
      d.set_bjt_model(slot_qb, sample.qb);
      d.set_opamp_offset(slot_u1, sample.opamp_offset);
      d.set_resistance(slot_rx1, cfg.lab.cell.rx1 * sample.resistor_scale);
      d.set_resistance(slot_rx2, cfg.lab.cell.rx2 * sample.resistor_scale);
      d.set_resistance(slot_rb, cfg.lab.cell.rb * sample.resistor_scale);
      cell->begin_variant(l);
      cell->set_lane_active(l, true);
    }
  }

  void drop_lane(std::size_t l) {
    if (ibias) ibias->set_lane_active(l, false);
    if (cell) cell->set_lane_active(l, false);
  }
};

}  // namespace

std::vector<DieCharacterisation> LotCampaign::run_batched() const {
  ICVBE_REQUIRE(
      config_.lab.newton.sparse == spice::SparseMode::kSparse,
      "LotCampaign: the batched lane path requires lab.newton.sparse == "
      "kSparse (the batch engine is sparse; the per-die path must use the "
      "same engine for bit-identical results)");
  const auto n = static_cast<std::size_t>(config_.samples);
  const std::size_t k = config_.lanes;
  std::vector<DieCharacterisation> results(n);

  const std::size_t groups = (n + k - 1) / k;
  unsigned threads = common::resolve_thread_count(config_.threads);
  threads = std::min<unsigned>(threads, static_cast<unsigned>(groups));

  // Workers pull whole lane groups from a shared counter; every die writes
  // only its own slot, and each worker's rigs are primed from the same
  // campaign-fixed reference, so the output is bit-identical for any
  // thread count and any lane count.
  std::atomic<std::size_t> next{0};
  common::fan_out(threads, [&]() {
    std::optional<WorkerRigs> rigs;
    std::vector<DieSample> sample(k);
    std::vector<std::optional<DieInstruments>> inst(k);
    std::vector<unsigned char> good(k);
    std::vector<unsigned char> iterating(k);
    std::vector<double> t_die(k);
    std::vector<std::vector<VbePoint>> vbe_pts(k);
    std::vector<std::vector<CellPoint>> cell_pts(k);

    for (;;) {
      const std::size_t g = next.fetch_add(1, std::memory_order_relaxed);
      if (g >= groups) break;
      if (!rigs) rigs.emplace(k, lot_, config_);

      const std::size_t first_offset = g * k;
      const std::size_t group_size = std::min(k, n - first_offset);

      // A failure of the shared machinery (not of one lane) falls back to
      // the per-die path for the whole group.
      bool group_failed = false;
      try {
        for (std::size_t l = 0; l < k; ++l) {
          if (l >= group_size) {
            rigs->drop_lane(l);
            good[l] = 0;
            continue;
          }
          const int index =
              config_.first_index + static_cast<int>(first_offset + l);
          sample[l] = lot_.sample(index);
          CampaignConfig cfg = config_.lab;
          cfg.seed =
              config_.seed_base + static_cast<std::uint64_t>(index);
          inst[l].emplace(cfg.seed, cfg);
          rigs->program_die(l, sample[l], config_);
          good[l] = 1;
          vbe_pts[l].clear();
          cell_pts[l].clear();
        }

        // ---- Classical method: VBE(T) of the single DUT ----
        if (config_.run_classical) {
          if (!(config_.classical_ic > 0.0)) {
            // vbe_vs_temperature would throw per die; let run_die record
            // the identical error text for every die in the group.
            throw MeasurementError("vbe_vs_temperature: current must be > 0");
          }
          for (double tc : config_.classical_celsius) {
            const double chamber_k = to_kelvin(tc);
            for (std::size_t l = 0; l < group_size; ++l) {
              if (!good[l]) continue;
              t_die[l] = config_.lab.ideal_thermal
                             ? chamber_k
                             : sample[l].fixture.die_temperature(chamber_k,
                                                                 0.0);
              const double forced =
                  config_.lab.ideal_instruments
                      ? config_.classical_ic
                      : inst[l]->smu_aux.force_current(config_.classical_ic);
              rigs->ibias_ie[l]->set_current(forced);
              rigs->ibias_circuit[l]->set_temperature(t_die[l]);
            }
            rigs->ibias->solve_active();
            for (std::size_t l = 0; l < group_size; ++l) {
              if (!good[l]) continue;
              if (!rigs->ibias->status(l).converged) {
                good[l] = 0;
                rigs->drop_lane(l);
                continue;
              }
              const spice::Unknowns& x = rigs->ibias->solution(l);
              VbePoint p;
              p.t_die_true = t_die[l];
              p.t_sensor = config_.lab.ideal_instruments
                               ? chamber_k
                               : inst[l]->sensor.read(chamber_k);
              const double vbe_true =
                  x.node_voltage(rigs->ibias_emitter[l]);
              p.vbe = config_.lab.ideal_instruments
                          ? vbe_true
                          : inst[l]->smu_vbe.measure_voltage(vbe_true);
              const double ic_true =
                  std::abs(rigs->ibias_dut[l]->currents(x).ic);
              p.ic = config_.lab.ideal_instruments
                         ? ic_true
                         : inst[l]->smu_aux.measure_current(ic_true);
              vbe_pts[l].push_back(p);
            }
          }
        }

        // ---- Meijer method: the test-cell sweep ----
        if (config_.run_meijer) {
          for (double tc : config_.cell_celsius) {
            const double chamber_k = to_kelvin(tc);
            std::size_t n_iterating = 0;
            for (std::size_t l = 0; l < group_size; ++l) {
              iterating[l] = good[l];
              if (!good[l]) continue;
              t_die[l] = config_.lab.ideal_thermal
                             ? chamber_k
                             : sample[l].fixture.die_temperature(chamber_k,
                                                                 0.0);
              ++n_iterating;
            }
            // Electro-thermal fixed point, masked per lane: each lane runs
            // exactly the passes its own scalar loop would (<= 8, tol
            // 1e-4), lanes sitting out once converged.
            for (int pass = 0; pass < 8 && n_iterating > 0; ++pass) {
              for (std::size_t l = 0; l < group_size; ++l) {
                rigs->cell->set_lane_active(l, iterating[l] != 0);
                if (!iterating[l]) continue;
                rigs->cell_circuit[l]->set_temperature(t_die[l]);
                if (!rigs->cell->has_warm_start(l)) {
                  rigs->cell->seed_warm_start(
                      l, bandgap::cell_initial_guess(*rigs->cell_circuit[l],
                                                     rigs->cell_handles[l],
                                                     t_die[l]));
                }
              }
              rigs->cell->solve_active();
              for (std::size_t l = 0; l < group_size; ++l) {
                if (!iterating[l]) continue;
                if (!rigs->cell->status(l).converged) {
                  good[l] = 0;
                  iterating[l] = 0;
                  --n_iterating;
                  rigs->drop_lane(l);
                  continue;
                }
                const bandgap::CellObservation obs = observe_lane(
                    *rigs->cell_circuit[l], rigs->cell_handles[l],
                    rigs->cell->solution(l), t_die[l]);
                const double t_new =
                    config_.lab.ideal_thermal
                        ? chamber_k
                        : sample[l].fixture.die_temperature(chamber_k,
                                                            obs.power);
                if (std::abs(t_new - t_die[l]) < 1e-4) {
                  t_die[l] = t_new;
                  iterating[l] = 0;
                  --n_iterating;
                } else {
                  t_die[l] = t_new;
                }
              }
            }
            // The committed observation at the resolved die temperature.
            for (std::size_t l = 0; l < group_size; ++l) {
              rigs->cell->set_lane_active(l, good[l] != 0);
              if (!good[l]) continue;
              rigs->cell_circuit[l]->set_temperature(t_die[l]);
            }
            rigs->cell->solve_active();
            for (std::size_t l = 0; l < group_size; ++l) {
              if (!good[l]) continue;
              if (!rigs->cell->status(l).converged) {
                good[l] = 0;
                rigs->drop_lane(l);
                continue;
              }
              const bandgap::CellObservation obs = observe_lane(
                  *rigs->cell_circuit[l], rigs->cell_handles[l],
                  rigs->cell->solution(l), t_die[l]);
              CellPoint p;
              p.t_die_true = t_die[l];
              p.t_sensor = config_.lab.ideal_instruments
                               ? chamber_k
                               : inst[l]->sensor.read(chamber_k);
              if (config_.lab.ideal_instruments) {
                p.vbe_qa = obs.vbe_qa;
                p.vbe_qb = obs.vbe_qb;
                p.vref = obs.vref;
                p.ic_qa = obs.ic_qa;
                p.ic_qb = obs.ic_qb;
              } else {
                p.vbe_qa = inst[l]->smu_vbe.measure_voltage(obs.vbe_qa);
                p.vbe_qb = inst[l]->smu_pad.measure_voltage(obs.vbe_qb);
                p.vref = inst[l]->smu_aux.measure_voltage(obs.vref);
                p.ic_qa = inst[l]->smu_aux.measure_current(obs.ic_qa);
                p.ic_qb = inst[l]->smu_aux.measure_current(obs.ic_qb);
              }
              p.delta_vbe = p.vbe_qa - p.vbe_qb;
              cell_pts[l].push_back(p);
            }
          }
        }
      } catch (const std::exception&) {
        group_failed = true;
      }

      // ---- Extraction + assembly, mirroring run_die ----
      for (std::size_t l = 0; l < group_size; ++l) {
        const auto offset = static_cast<int>(first_offset + l);
        if (group_failed || !good[l]) {
          results[first_offset + l] = run_die(offset);
          continue;
        }
        DieCharacterisation out;
        out.index = config_.first_index + offset;
        try {
          if (config_.run_classical) {
            extract::BestFitOptions opt;
            opt.t0 = to_kelvin(25.0);
            out.eg_classical =
                extract::best_fit_eg_xti(
                    extract::samples_from_lab(vbe_pts[l]), opt)
                    .eg;
            out.has_classical = true;
          }
          if (config_.run_meijer) {
            out.cell = cell_pts[l];
            const auto m = extract::meijer_from_cell(
                out.cell, config_.cell_celsius[0], config_.cell_celsius[1],
                config_.cell_celsius[2]);
            out.eg_meijer = m.with_computed_t.eg;
            out.xti_meijer = m.with_computed_t.xti;
            out.eg_measured_t = m.with_measured_t.eg;
            out.xti_measured_t = m.with_measured_t.xti;
            const auto cmp = extract::compare_temperatures(m);
            out.delta_t1 = cmp.delta_t1();
            out.delta_t3 = cmp.delta_t3();
            out.has_meijer = true;
          }
          out.ok = true;
          results[first_offset + l] = std::move(out);
        } catch (const std::exception&) {
          // The scalar path may record this as a failed die or rescue it
          // with its deeper fallback ladder; either way run_die IS that
          // path, so its result is the result.
          results[first_offset + l] = run_die(offset);
        }
      }
    }
  });
  return results;
}

}  // namespace icvbe::lab
