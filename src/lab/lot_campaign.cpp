#include "icvbe/lab/lot_campaign.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "icvbe/common/constants.hpp"
#include "icvbe/common/thread_pool.hpp"
#include "icvbe/common/error.hpp"
#include "icvbe/extract/best_fit.hpp"
#include "icvbe/extract/dataset.hpp"
#include "icvbe/extract/meijer.hpp"

namespace icvbe::lab {

LotStatistic LotStatistic::of(std::vector<double> values) {
  LotStatistic s;
  s.count = values.size();
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.min = values.front();
  s.max = values.back();
  double sum = 0.0;
  for (double v : values) sum += v;
  s.mean = sum / static_cast<double>(values.size());
  // Sample (Bessel-corrected) standard deviation: the lot is a sample of
  // the process, not the whole population of dies it will ever produce.
  double var = 0.0;
  for (double v : values) var += (v - s.mean) * (v - s.mean);
  s.stddev = values.size() > 1
                 ? std::sqrt(var / static_cast<double>(values.size() - 1))
                 : 0.0;
  auto quantile = [&](double q) {
    const double idx = q * static_cast<double>(values.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(idx);
    const double frac = idx - static_cast<double>(lo);
    const std::size_t hi = std::min(lo + 1, values.size() - 1);
    return values[lo] + frac * (values[hi] - values[lo]);
  };
  s.q10 = quantile(0.10);
  s.q50 = quantile(0.50);
  s.q90 = quantile(0.90);
  return s;
}

LotCampaign::LotCampaign(SiliconLot lot, LotCampaignConfig config)
    : lot_(std::move(lot)), config_(std::move(config)) {
  ICVBE_REQUIRE(config_.samples > 0, "LotCampaign: need >= 1 sample");
  if (config_.run_meijer) {
    ICVBE_REQUIRE(config_.cell_celsius.size() == 3,
                  "LotCampaign: the Meijer method needs exactly three "
                  "chamber temperatures");
  }
}

DieCharacterisation LotCampaign::run_die(int die_offset) const {
  DieCharacterisation out;
  out.index = config_.first_index + die_offset;
  try {
    CampaignConfig cfg = config_.lab;
    cfg.seed = config_.seed_base + static_cast<std::uint64_t>(out.index);
    Laboratory laboratory(lot_.sample(out.index), cfg);

    if (config_.run_classical) {
      const auto pts = laboratory.vbe_vs_temperature(
          config_.classical_ic, config_.classical_celsius);
      extract::BestFitOptions opt;
      opt.t0 = to_kelvin(25.0);
      out.eg_classical =
          extract::best_fit_eg_xti(extract::samples_from_lab(pts), opt).eg;
      out.has_classical = true;
    }

    if (config_.run_meijer) {
      out.cell = laboratory.test_cell_sweep(config_.cell_celsius);
      const auto m = extract::meijer_from_cell(
          out.cell, config_.cell_celsius[0], config_.cell_celsius[1],
          config_.cell_celsius[2]);
      out.eg_meijer = m.with_computed_t.eg;
      out.xti_meijer = m.with_computed_t.xti;
      out.eg_measured_t = m.with_measured_t.eg;
      out.xti_measured_t = m.with_measured_t.xti;
      const auto cmp = extract::compare_temperatures(m);
      out.delta_t1 = cmp.delta_t1();
      out.delta_t3 = cmp.delta_t3();
      out.has_meijer = true;
    }
    out.ok = true;
  } catch (const std::exception& e) {
    out.ok = false;
    out.error = e.what();
  }
  return out;
}

std::vector<DieCharacterisation> LotCampaign::run() const {
  if (config_.lanes > 1) return run_batched();
  const auto n = static_cast<std::size_t>(config_.samples);
  std::vector<DieCharacterisation> results(n);

  unsigned threads = common::resolve_thread_count(config_.threads);
  threads = std::min<unsigned>(threads, static_cast<unsigned>(n));

  // Workers pull die offsets from a shared counter; every die writes only
  // its own preallocated slot, so the result is identical for any thread
  // count -- scheduling decides who computes a die, never what it yields.
  std::atomic<int> next{0};
  common::fan_out(threads, [&]() {
    for (;;) {
      const int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= config_.samples) break;
      results[static_cast<std::size_t>(i)] = run_die(i);
    }
  });
  return results;
}

LotSummary LotCampaign::summarise(
    const std::vector<DieCharacterisation>& dies) {
  LotSummary s;
  std::vector<double> eg_c, eg_m, xti_m, d1, d3;
  for (const auto& die : dies) {
    if (!die.ok) {
      ++s.dies_failed;
      continue;
    }
    ++s.dies_ok;
    if (die.has_classical) eg_c.push_back(die.eg_classical);
    if (die.has_meijer) {
      eg_m.push_back(die.eg_meijer);
      xti_m.push_back(die.xti_meijer);
      d1.push_back(die.delta_t1);
      d3.push_back(die.delta_t3);
    }
  }
  s.eg_classical = LotStatistic::of(std::move(eg_c));
  s.eg_meijer = LotStatistic::of(std::move(eg_m));
  s.xti_meijer = LotStatistic::of(std::move(xti_m));
  s.delta_t1 = LotStatistic::of(std::move(d1));
  s.delta_t3 = LotStatistic::of(std::move(d3));
  return s;
}

}  // namespace icvbe::lab
