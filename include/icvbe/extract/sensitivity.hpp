#pragma once
// Error-propagation analyses backing the paper's accuracy claims:
//  * section 3: "a measurement error of 1% on the VBE(T) characteristic may
//    induce up to 8% of error on the extracted values of EG";
//  * section 3 (via [13]): "an error dT2 less than 5 K has no significant
//    influence on the calculated values of EG and XTI";
//  * section 4: the current-ratio coefficient A = (k T2/q) ln X is ~0.3 mV
//    for a 0..100 C pair, i.e. 0.45 % of dVBE(T2) -- negligible.

#include <cstdint>
#include <vector>

#include "icvbe/extract/best_fit.hpp"

namespace icvbe::extract {

/// Monte-Carlo propagation of independent per-point VBE errors through the
/// classical best fit.
struct VbeErrorPropagation {
  double vbe_rel_error = 0.0;   ///< injected 1-sigma relative error
  double eg_rel_rms = 0.0;      ///< RMS relative EG error over trials
  double eg_rel_max = 0.0;      ///< worst-case relative EG error
  double xti_abs_rms = 0.0;     ///< RMS absolute XTI error
  double xti_abs_max = 0.0;     ///< worst-case absolute XTI error
};

/// Perturb each VBE sample with N(0, rel_error * |VBE|) noise `trials`
/// times and re-run the two-parameter best fit. `clean` must be noise-free
/// (synthesised or well-averaged) so the deltas isolate the injected error.
[[nodiscard]] VbeErrorPropagation propagate_vbe_error(
    const std::vector<VbeSample>& clean, double true_eg, double rel_error,
    int trials, const BestFitOptions& options = {}, std::uint64_t seed = 11);

/// Reference-temperature sensitivity of the Meijer extraction: rerun with
/// T2 shifted by each delta (computed T1/T3 rescale with it, as they do in
/// the real procedure) and report the EG/XTI excursions.
struct T2Sensitivity {
  double delta_t2 = 0.0;   ///< injected reference error [K]
  double eg = 0.0;         ///< extracted EG with that error
  double xti = 0.0;        ///< extracted XTI
};
[[nodiscard]] std::vector<T2Sensitivity> meijer_t2_sensitivity(
    double t1, double vbe1, double t2, double vbe2, double t3, double vbe3,
    const std::vector<double>& t2_deltas);

/// Worst-case single-point leverage: perturb one sample by +rel_error and
/// report the largest resulting |dEG|/EG over all sample positions. This is
/// the "up to" in the paper's 8 % claim.
[[nodiscard]] double worst_case_eg_error(const std::vector<VbeSample>& clean,
                                         double true_eg, double rel_error,
                                         const BestFitOptions& options = {});

}  // namespace icvbe::extract
