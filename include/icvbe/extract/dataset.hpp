#pragma once
// Dataset manipulation between the raw lab output and the extractors:
// slicing the Fig.-5 IC(VBE) family into constant-current VBE(T)
// characteristics ("Several VBE(T) characteristics at a fixed collector
// current can be extracted from this set", paper section 5).

#include <vector>

#include "icvbe/common/series.hpp"
#include "icvbe/extract/best_fit.hpp"
#include "icvbe/lab/campaign.hpp"

namespace icvbe::extract {

/// Invert one IC(VBE) curve at a target collector current by interpolating
/// ln(IC) in VBE (exact for an ideal exponential). The curve's x is VBE [V]
/// and y is IC [A]; `ic` must lie inside the measured current range.
[[nodiscard]] double vbe_at_current(const Series& icvbe_curve, double ic);

/// Slice a family of IC(VBE) curves (one per temperature, same order as
/// `t_kelvin`) into a constant-current VBE(T) dataset.
[[nodiscard]] std::vector<VbeSample> vbe_vs_t_at_constant_ic(
    const std::vector<Series>& family, const std::vector<double>& t_kelvin,
    double ic);

/// Convert lab VbePoints into extractor samples using the *sensor*
/// temperatures (what the classical method actually has).
[[nodiscard]] std::vector<VbeSample> samples_from_lab(
    const std::vector<lab::VbePoint>& points);

/// Same conversion but with the ground-truth die temperatures (validation
/// baselines only -- a real lab cannot do this).
[[nodiscard]] std::vector<VbeSample> samples_from_lab_true_t(
    const std::vector<lab::VbePoint>& points);

}  // namespace icvbe::extract
