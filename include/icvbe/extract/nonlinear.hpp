#pragma once
// Extensions beyond the paper's least-squares machinery:
//  * a full nonlinear fit of the printed eq. (13) -- (EG, XTI, VBE(T0))
//    free simultaneously, optional reverse-Early (VAR) correction --
//    via Levenberg-Marquardt;
//  * a robust (Huber / IRLS) variant of the linear fit that survives the
//    outlier points a real thermal-chamber campaign occasionally produces
//    (bad contact at one temperature, etc.).

#include <vector>

#include "icvbe/extract/best_fit.hpp"

namespace icvbe::extract {

/// Result of the three-parameter nonlinear fit.
struct NonlinearFitResult {
  double eg = 0.0;
  double xti = 0.0;
  double vbe_t0 = 0.0;   ///< fitted reference VBE [V]
  double rmse = 0.0;
  bool converged = false;
  int iterations = 0;
};

struct NonlinearFitOptions {
  double t0 = 298.15;      ///< reference temperature [K]
  double var_volts = 0.0;  ///< reverse Early voltage; 0/inf disables
  double eg_start = 1.12;
  double xti_start = 3.0;
};

/// Fit VBE(T) = corr(T) (T/T0) VBE0 + EG (1 - T/T0) - XTI (kT/q) ln(T/T0)
/// with corr the optional VAR factor, by Levenberg-Marquardt. Needs >= 4
/// samples (3 parameters).
[[nodiscard]] NonlinearFitResult nonlinear_fit_eg_xti(
    const std::vector<VbeSample>& data, const NonlinearFitOptions& options = {});

/// Robust linear fit: iteratively reweighted least squares with Huber
/// weights, tuned by `huber_k` (in multiples of the residual scale).
/// Returns the same statistics object as the plain fit; `outlier_mask`
/// (optional out-parameter) flags points that ended up down-weighted.
[[nodiscard]] EgXtiResult robust_fit_eg_xti(
    const std::vector<VbeSample>& data, const BestFitOptions& options = {},
    double huber_k = 1.5, std::vector<bool>* outlier_mask = nullptr);

}  // namespace icvbe::extract
