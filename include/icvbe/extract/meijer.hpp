#pragma once
// The paper's proposed method: analytical (EG, XTI) extraction from three
// temperatures using the programmable test cell (sections 3-4).
//
//  * eq. (16): the die temperature is *computed* from the PTAT dVBE of the
//    QA/QB pair, needing only one measured reference temperature T2:
//        T = T2 * dVBE(T) / dVBE(T2).
//  * eqs. (14)-(15): two Meijer identities on (T1, T2) and (T2, T3) form a
//    2x2 linear system in (EG, XTI).
//  * eqs. (17)-(20): when the two collector currents are not exactly equal
//    (or drift with temperature), the computed temperature gains a
//    correction through X and the coefficient A = (k T2 / q) ln X.

#include <vector>

#include "icvbe/extract/best_fit.hpp"
#include "icvbe/lab/campaign.hpp"

namespace icvbe::extract {

/// eq. (16): computed die temperature from dVBE ratios.
[[nodiscard]] double computed_temperature(double dvbe_t, double dvbe_ref,
                                          double t_ref_kelvin);

/// eq. (20): the collector-current ratio term
///     X = (IC_A(T) * IC_B(Tref)) / (IC_A(Tref) * IC_B(T)).
/// X = 1 when the current *ratio* IC_A/IC_B is temperature independent.
[[nodiscard]] double current_ratio_x(double ic_a_t, double ic_b_t,
                                     double ic_a_ref, double ic_b_ref);

/// The paper's section-4 coefficient A = (k T_ref / q) ln X [V]; quoted as
/// ~0.3 mV (0.45 % of dVBE) for a 0..100 C pair -- i.e. negligible.
[[nodiscard]] double current_correction_coefficient(double t_ref_kelvin,
                                                    double x_ratio);

/// eq. (19): computed temperature corrected for the current-ratio drift.
/// Derivation: dVBE(T) = (kT/q) ln(p r(T)) with r = IC_A/IC_B, so
/// T = T_ref dVBE(T) / (dVBE(T_ref) + (k T_ref/q) ln X) with X as above.
[[nodiscard]] double computed_temperature_corrected(double dvbe_t,
                                                    double dvbe_ref,
                                                    double t_ref_kelvin,
                                                    double x_ratio);

/// The straight line in the (XTI, EG) plane implied by a single Meijer
/// identity (eq. 14) on the pair (t_a, t_b):
///   EG(XTI) = (lhs - XTI coeff_xti) / coeff_eg.
/// This is what the paper's Fig. 6 plots for (C2) and (C3): the *line* is
/// robust even though the 2x2 intersection slides far along it when the
/// temperatures carry errors.
[[nodiscard]] Series meijer_line(double t_a, double vbe_a, double t_b,
                                 double vbe_b,
                                 const std::vector<double>& xti_grid);

/// Solve eqs. (14)-(15) for (EG, XTI) from three (T, VBE) observations.
/// The temperatures may be sensor-measured (the paper's C2 line) or
/// eq.-(16)-computed (the C3 line).
[[nodiscard]] EgXtiResult meijer_extract(double t1, double vbe1, double t2,
                                         double vbe2, double t3, double vbe3);

/// Full method driver on a test-cell sweep. Picks the observations nearest
/// the requested chamber temperatures, computes T1/T3 from dVBE (with the
/// eq.-19 current correction), and extracts (EG, XTI) two ways:
/// with sensor temperatures (C2) and with computed temperatures (C3).
struct MeijerCampaignResult {
  // Selected observations.
  lab::CellPoint p1, p2, p3;
  // eq. (16)/(19) temperatures [K].
  double t1_computed = 0.0;
  double t3_computed = 0.0;
  double t1_computed_uncorrected = 0.0;
  double t3_computed_uncorrected = 0.0;
  double x_ratio_t1 = 1.0;     ///< eq. (20) X between T1 and T2
  double x_ratio_t3 = 1.0;     ///< eq. (20) X between T3 and T2
  // Extractions.
  EgXtiResult with_measured_t;  ///< the paper's (C2)
  EgXtiResult with_computed_t;  ///< the paper's (C3)
};

[[nodiscard]] MeijerCampaignResult meijer_from_cell(
    const std::vector<lab::CellPoint>& sweep, double t1_celsius,
    double t2_celsius, double t3_celsius);

/// Table-1 row: sensor-vs-computed temperature differences for one sample.
struct TemperatureComparison {
  double t1_measured = 0.0, t2_measured = 0.0, t3_measured = 0.0;   // [K]
  double t1_computed = 0.0, t3_computed = 0.0;                      // [K]
  /// T_measured - T_computed at T1 / T3 (T2 pinned to zero by construction).
  [[nodiscard]] double delta_t1() const { return t1_measured - t1_computed; }
  [[nodiscard]] double delta_t3() const { return t3_measured - t3_computed; }
};

[[nodiscard]] TemperatureComparison compare_temperatures(
    const MeijerCampaignResult& result);

}  // namespace icvbe::extract
