#pragma once
// Classical "best fitting" extraction of (EG, XTI) from a measured VBE(T)
// characteristic at constant collector current (paper section 3, eq. 13).
//
// Working form (linear in the parameters, so no iteration -- exactly as the
// paper notes):
//     y(T) := VBE(T) - (T/T0) VBE(T0)
//           = EG (1 - T/T0) - XTI (kT/q) ln(T/T0)
// The two basis functions are nearly collinear over any practical
// temperature range, which is why the fit does not pin down a unique couple
// but a line in the (XTI, EG) plane -- the paper's "characteristic
// straight" (Fig. 6).

#include <vector>

#include "icvbe/common/series.hpp"
#include "icvbe/fit/least_squares.hpp"

namespace icvbe::extract {

/// One temperature observation of the DUT.
struct VbeSample {
  double t_kelvin = 0.0;  ///< temperature the extractor believes [K]
  double vbe = 0.0;       ///< measured VBE [V]
};

/// Result of a two-parameter extraction.
struct EgXtiResult {
  double eg = 0.0;            ///< extracted EG [eV]
  double xti = 0.0;           ///< extracted XTI
  double rmse = 0.0;          ///< fit residual RMSE [V]
  double correlation = 0.0;   ///< fitted EG-XTI correlation coefficient
  double condition = 0.0;     ///< normal-matrix condition estimate
  double sigma_eg = 0.0;      ///< 1-sigma uncertainty on EG [eV]
  double sigma_xti = 0.0;     ///< 1-sigma uncertainty on XTI
};

/// Options for the best-fit extractor.
struct BestFitOptions {
  double t0 = 298.15;      ///< reference temperature [K]
  double vbe_t0 = 0.0;     ///< VBE at t0; 0 = interpolate from the data
  double var_volts = 0.0;  ///< reverse Early voltage for the printed eq.-13
                           ///< correction; 0/inf = no correction
};

/// Full two-parameter least-squares fit (unconstrained couple).
/// Requires at least 3 samples spanning a nonzero temperature range.
[[nodiscard]] EgXtiResult best_fit_eg_xti(const std::vector<VbeSample>& data,
                                          const BestFitOptions& options = {});

/// Constrained fit: hold XTI fixed, solve the 1-D least squares for EG.
[[nodiscard]] double best_fit_eg_given_xti(const std::vector<VbeSample>& data,
                                           double xti,
                                           const BestFitOptions& options = {});

/// Trace the characteristic straight EG(XTI) over a grid of XTI values.
/// Returns a Series (x = XTI, y = EG) plus its straight-line summary.
struct CharacteristicStraight {
  Series couples;       ///< EG vs XTI
  double slope = 0.0;   ///< dEG/dXTI [eV per unit XTI]
  double intercept = 0.0;  ///< EG at XTI = 0 [eV]
  double r_squared = 0.0;  ///< linearity of the locus (should be ~1)
};
[[nodiscard]] CharacteristicStraight characteristic_straight(
    const std::vector<VbeSample>& data, const std::vector<double>& xti_grid,
    const BestFitOptions& options = {});

/// Theoretical slope of the characteristic straight: the paper's eqs.
/// (14)-(15) imply dEG/dXTI = -(k T_a T_b / q) ln(T_b/T_a) / (T_b - T_a)
/// for any pair; over a data set it is the regression of the XTI basis on
/// the EG basis. Exposed for tests and the Fig. 6 bench.
[[nodiscard]] double characteristic_slope_theory(double t_low, double t_high);

/// Predicted VBE(T) from an extracted couple (for overlay plots and
/// residual checks).
[[nodiscard]] double predict_vbe(const EgXtiResult& result, double t_kelvin,
                                 double t0, double vbe_t0);

}  // namespace icvbe::extract
