#pragma once
// MatrixViewT: a non-owning accumulate-only view over either a dense
// MatrixT or a (frozen or building) SparseMatrixT of the same scalar.
//
// This is the stamping contract: devices write their MNA entries through a
// Stamper that holds a MatrixViewT, so the same stamp() code serves the
// dense small-circuit fast path and the sparse large-netlist engine with
// zero duplication. The only operation a stamp needs is `add` (+=), which
// keeps the view trivially cheap: one branch per entry, inlined. The view
// is scalar-generic: MatrixView (double) carries DC/transient Jacobians,
// ComplexMatrixView carries the AC small-signal admittance system -- one
// frozen sparse pattern per engine, stamped through the identical path.
//
// Coordinate contract: `add(r, c, v)` always addresses the *original* MNA
// coordinates. Row/column permutations -- AMD/min-degree pre-ordering, the
// BTF block permutation, threshold-pivoting column swaps -- live entirely
// inside SparseLuFactorizationT's cached symbolic analysis; neither devices
// nor sessions ever see a permuted index, which is what lets the ordering
// default change (SparseOptions) without touching any stamping code.

#include "icvbe/common/error.hpp"
#include "icvbe/linalg/matrix.hpp"
#include "icvbe/linalg/sparse.hpp"

namespace icvbe::linalg {

template <typename Scalar>
class MatrixViewT {
 public:
  /*implicit*/ MatrixViewT(MatrixT<Scalar>& dense)          // NOLINT
      : dense_(&dense) {}
  /*implicit*/ MatrixViewT(SparseMatrixT<Scalar>& sparse)   // NOLINT
      : sparse_(&sparse) {}
  /// View over one lane of a K-wide value batch: the same device stamp()
  /// code fills lane planes for the batched lot solver. The batch must be
  /// bound to a frozen pattern.
  MatrixViewT(SparseValueBatchT<Scalar>& batch, std::size_t lane)
      : batch_(&batch), lane_(lane) {}

  [[nodiscard]] std::size_t rows() const noexcept {
    if (dense_ != nullptr) return dense_->rows();
    return sparse_ != nullptr ? sparse_->rows() : batch_->rows();
  }
  [[nodiscard]] std::size_t cols() const noexcept {
    if (dense_ != nullptr) return dense_->cols();
    return sparse_ != nullptr ? sparse_->cols() : batch_->rows();
  }
  [[nodiscard]] bool is_sparse() const noexcept { return dense_ == nullptr; }

  /// Accumulate v at (r, c). On a frozen sparse target the slot must be
  /// inside the pattern (see SparseMatrixT::add).
  void add(std::size_t r, std::size_t c, Scalar v) {
    if (dense_ != nullptr) {
      (*dense_)(r, c) += v;
    } else if (sparse_ != nullptr) {
      sparse_->add(r, c, v);
    } else {
      batch_->add(r, c, v, lane_);
    }
  }

  /// Reset every stored entry (dense: all elements; sparse: the pattern;
  /// batch: this view's lane -- value must be zero there).
  void fill(Scalar value) {
    if (dense_ != nullptr) {
      dense_->fill(value);
    } else if (sparse_ != nullptr) {
      sparse_->fill(value);
    } else {
      ICVBE_REQUIRE(value == Scalar{},
                    "MatrixView: batch lanes only reset to zero");
      batch_->clear_lane(lane_);
    }
  }

 private:
  MatrixT<Scalar>* dense_ = nullptr;
  SparseMatrixT<Scalar>* sparse_ = nullptr;
  SparseValueBatchT<Scalar>* batch_ = nullptr;
  std::size_t lane_ = 0;
};

using MatrixView = MatrixViewT<double>;
using ComplexMatrixView = MatrixViewT<Complex>;

}  // namespace icvbe::linalg
