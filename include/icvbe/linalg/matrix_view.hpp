#pragma once
// MatrixView: a non-owning accumulate-only view over either a dense Matrix
// or a (frozen or building) SparseMatrix.
//
// This is the stamping contract: devices write their MNA entries through a
// Stamper that holds a MatrixView, so the same stamp() code serves the
// dense small-circuit fast path and the sparse large-netlist engine with
// zero duplication. The only operation a stamp needs is `add` (+=), which
// keeps the view trivially cheap: one branch per entry, inlined.

#include "icvbe/linalg/matrix.hpp"
#include "icvbe/linalg/sparse.hpp"

namespace icvbe::linalg {

class MatrixView {
 public:
  /*implicit*/ MatrixView(Matrix& dense) : dense_(&dense) {}          // NOLINT
  /*implicit*/ MatrixView(SparseMatrix& sparse) : sparse_(&sparse) {} // NOLINT

  [[nodiscard]] std::size_t rows() const noexcept {
    return dense_ != nullptr ? dense_->rows() : sparse_->rows();
  }
  [[nodiscard]] std::size_t cols() const noexcept {
    return dense_ != nullptr ? dense_->cols() : sparse_->cols();
  }
  [[nodiscard]] bool is_sparse() const noexcept { return sparse_ != nullptr; }

  /// Accumulate v at (r, c). On a frozen sparse target the slot must be
  /// inside the pattern (see SparseMatrix::add).
  void add(std::size_t r, std::size_t c, double v) {
    if (dense_ != nullptr) {
      (*dense_)(r, c) += v;
    } else {
      sparse_->add(r, c, v);
    }
  }

  /// Reset every stored entry (dense: all elements; sparse: the pattern).
  void fill(double value) {
    if (dense_ != nullptr) {
      dense_->fill(value);
    } else {
      sparse_->fill(value);
    }
  }

 private:
  Matrix* dense_ = nullptr;
  SparseMatrix* sparse_ = nullptr;
};

}  // namespace icvbe::linalg
