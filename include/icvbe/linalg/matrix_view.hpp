#pragma once
// MatrixViewT: a non-owning accumulate-only view over either a dense
// MatrixT or a (frozen or building) SparseMatrixT of the same scalar.
//
// This is the stamping contract: devices write their MNA entries through a
// Stamper that holds a MatrixViewT, so the same stamp() code serves the
// dense small-circuit fast path and the sparse large-netlist engine with
// zero duplication. The only operation a stamp needs is `add` (+=), which
// keeps the view trivially cheap: one branch per entry, inlined. The view
// is scalar-generic: MatrixView (double) carries DC/transient Jacobians,
// ComplexMatrixView carries the AC small-signal admittance system -- one
// frozen sparse pattern per engine, stamped through the identical path.

#include "icvbe/linalg/matrix.hpp"
#include "icvbe/linalg/sparse.hpp"

namespace icvbe::linalg {

template <typename Scalar>
class MatrixViewT {
 public:
  /*implicit*/ MatrixViewT(MatrixT<Scalar>& dense)          // NOLINT
      : dense_(&dense) {}
  /*implicit*/ MatrixViewT(SparseMatrixT<Scalar>& sparse)   // NOLINT
      : sparse_(&sparse) {}

  [[nodiscard]] std::size_t rows() const noexcept {
    return dense_ != nullptr ? dense_->rows() : sparse_->rows();
  }
  [[nodiscard]] std::size_t cols() const noexcept {
    return dense_ != nullptr ? dense_->cols() : sparse_->cols();
  }
  [[nodiscard]] bool is_sparse() const noexcept { return sparse_ != nullptr; }

  /// Accumulate v at (r, c). On a frozen sparse target the slot must be
  /// inside the pattern (see SparseMatrixT::add).
  void add(std::size_t r, std::size_t c, Scalar v) {
    if (dense_ != nullptr) {
      (*dense_)(r, c) += v;
    } else {
      sparse_->add(r, c, v);
    }
  }

  /// Reset every stored entry (dense: all elements; sparse: the pattern).
  void fill(Scalar value) {
    if (dense_ != nullptr) {
      dense_->fill(value);
    } else {
      sparse_->fill(value);
    }
  }

 private:
  MatrixT<Scalar>* dense_ = nullptr;
  SparseMatrixT<Scalar>* sparse_ = nullptr;
};

using MatrixView = MatrixViewT<double>;
using ComplexMatrixView = MatrixViewT<Complex>;

}  // namespace icvbe::linalg
