#pragma once
// Direct dense solvers: LU with partial pivoting (square systems, MNA --
// scalar-generic, double for DC/transient and complex for AC) and
// Householder QR (least squares, fitting -- real-only).

#include "icvbe/linalg/matrix.hpp"

namespace icvbe::linalg {

/// LU factorisation with partial pivoting of a square matrix. Factor once,
/// solve for many right-hand sides. Generic over the scalar (double /
/// Complex): pivot selection and singularity screening compare magnitudes,
/// so the double instantiation's factorisation arithmetic is bit-for-bit
/// the historical real solver. One deliberate screening change applies to
/// both scalars: singularity is judged column-relatively (see the
/// constructor comment), so a solve that previously threw on a widely
/// column-scaled but nonsingular system now factors it -- the Newton
/// fallback machinery sees strictly fewer NumericalErrors, never more.
///
/// Two usage modes:
///  * one-shot: construct from a MatrixT and call solve();
///  * workspace reuse: default-construct (or keep an instance around) and
///    call refactor() with each new matrix of the same size -- after the
///    first call all storage is reused and refactor()/solve_in_place()
///    perform no heap allocation. This is what SimSession's Newton loop
///    (and its AC frequency sweep) relies on.
template <typename Scalar>
class LuFactorizationT {
 public:
  /// Empty workspace; call refactor() before solving.
  LuFactorizationT() = default;

  /// Factor A (square). Throws NumericalError if A is singular to working
  /// precision: the best pivot magnitude of some column falls below
  /// `pivot_tol` times that column's own max|A| (column-relative, so AC
  /// systems whose columns legitimately span many decades -- j*omega*L
  /// next to microsiemens conductances -- are not misdiagnosed).
  explicit LuFactorizationT(MatrixT<Scalar> a, double pivot_tol = 1e-14);

  /// Re-factor a new matrix, reusing the internal storage. Allocation-free
  /// when `a` has the same dimensions as the previous factorisation.
  /// Throws NumericalError if A is singular to working precision -- the
  /// detection is deterministic at refactor time (exact zero pivots in the
  /// denormal range and non-finite entries included; nothing survives to
  /// fail at the first solve). The workspace stays reusable after a throw.
  void refactor(const MatrixT<Scalar>& a, double pivot_tol = 1e-14);

  /// Solve A x = b.
  [[nodiscard]] VectorT<Scalar> solve(const VectorT<Scalar>& b) const;

  /// Solve A x = rhs with the solution overwriting `rhs`; allocation-free.
  void solve_in_place(VectorT<Scalar>& rhs) const;

  /// Determinant (from U diagonal and pivot sign).
  [[nodiscard]] Scalar determinant() const;

  /// Rough 1-norm condition estimate via |A|_1 * |A^-1 e|_1 probing.
  [[nodiscard]] double condition_estimate() const;

  [[nodiscard]] std::size_t size() const noexcept { return lu_.rows(); }

 private:
  /// Shared factorisation core: factors lu_ in place (piv_ already sized).
  void factor_in_place(double pivot_tol);

  MatrixT<Scalar> lu_;            // packed L (unit diag) and U
  std::vector<std::size_t> piv_;  // row permutation
  std::vector<double> colmax_;    // per-column max|A| for the pivot test
  int pivot_sign_ = 1;
  double a_norm1_ = 0.0;          // 1-norm of original A for cond estimate
};

using LuFactorization = LuFactorizationT<double>;
using ComplexLuFactorization = LuFactorizationT<Complex>;

extern template class LuFactorizationT<double>;
extern template class LuFactorizationT<Complex>;

/// Convenience: solve A x = b once.
[[nodiscard]] Vector lu_solve(Matrix a, const Vector& b);

/// Complex convenience overload (AC systems).
[[nodiscard]] ComplexVector lu_solve(ComplexMatrix a, const ComplexVector& b);

/// Householder QR of an m x n matrix (m >= n), for least squares.
class QrFactorization {
 public:
  /// Factor A. Throws NumericalError if numerically rank-deficient
  /// (|R(k,k)| < rank_tol * |R(0,0)|) when solving.
  explicit QrFactorization(Matrix a);

  /// Minimise |A x - b|_2; returns x of length n.
  [[nodiscard]] Vector solve_least_squares(const Vector& b,
                                           double rank_tol = 1e-12) const;

  /// Diagonal of R -- used for conditioning diagnostics of the normal
  /// equations (the (EG, XTI) collinearity shows up here).
  [[nodiscard]] Vector r_diagonal() const;

  /// Upper-triangular solve R x = y for the leading n x n block of R.
  [[nodiscard]] Vector solve_r(const Vector& y, double rank_tol) const;

  /// Apply Q^T to a vector of length m.
  [[nodiscard]] Vector apply_qt(const Vector& b) const;

  [[nodiscard]] std::size_t rows() const noexcept { return qr_.rows(); }
  [[nodiscard]] std::size_t cols() const noexcept { return qr_.cols(); }

 private:
  Matrix qr_;           // Householder vectors below diagonal, R on/above
  Vector beta_;         // Householder scalars
};

/// Convenience: least-squares solve min |A x - b|.
[[nodiscard]] Vector qr_least_squares(Matrix a, const Vector& b);

/// Solve a 2x2 system (used for the Meijer two-equation extraction). Throws
/// NumericalError if the determinant is ~0.
[[nodiscard]] std::pair<double, double> solve2x2(double a11, double a12,
                                                 double a21, double a22,
                                                 double b1, double b2);

}  // namespace icvbe::linalg
