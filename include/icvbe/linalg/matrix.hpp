#pragma once
// Dense row-major matrix and vector types for the fitting library and the
// MNA solver. Circuits in this project are tiny (tens of nodes), so a
// cache-friendly dense representation beats sparse bookkeeping.

#include <cstddef>
#include <initializer_list>
#include <vector>

namespace icvbe::linalg {

using Vector = std::vector<double>;

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Construct from nested initializer list (row major); all rows must
  /// have identical length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Bounds-checked access (throws icvbe::Error).
  [[nodiscard]] double& at(std::size_t r, std::size_t c);
  [[nodiscard]] double at(std::size_t r, std::size_t c) const;

  /// Reset every element to the given value (used between Newton
  /// iterations to re-stamp the MNA system).
  void fill(double value);

  /// Resize, discarding contents.
  void resize(std::size_t rows, std::size_t cols, double fill = 0.0);

  [[nodiscard]] Matrix transposed() const;

  /// this * other; dimension-checked.
  [[nodiscard]] Matrix multiply(const Matrix& other) const;

  /// this * v; dimension-checked.
  [[nodiscard]] Vector multiply(const Vector& v) const;

  [[nodiscard]] static Matrix identity(std::size_t n);

  /// Max absolute element (infinity norm of vec(A)).
  [[nodiscard]] double max_abs() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Euclidean norm.
[[nodiscard]] double norm2(const Vector& v);

/// Infinity norm.
[[nodiscard]] double norm_inf(const Vector& v);

/// Dot product (dimension-checked).
[[nodiscard]] double dot(const Vector& a, const Vector& b);

/// a - b element-wise (dimension-checked).
[[nodiscard]] Vector subtract(const Vector& a, const Vector& b);

/// a + s*b (dimension-checked).
[[nodiscard]] Vector axpy(const Vector& a, double s, const Vector& b);

}  // namespace icvbe::linalg
