#pragma once
// Dense row-major matrix and vector types for the fitting library and the
// MNA solver, generic over the scalar type.
//
// The whole linalg layer (MatrixT, LuFactorizationT, SparseMatrixT,
// SparseLuFactorizationT, MatrixViewT) is templated on Scalar with exactly
// two sanctioned instantiations: double (DC / transient Newton systems)
// and std::complex<double> (small-signal .AC systems). All pivoting,
// singularity screening and convergence logic compares *magnitudes*
// (scalar_abs, a double for both instantiations), so the symbolic /
// decision-making half of every algorithm is real-valued and identical
// across scalars -- only the stored values and the arithmetic go complex.
// The real instantiations keep the pre-template factorisation arithmetic
// bit-for-bit (asserted by the golden tests); the one deliberate
// behavioural change that rode along for BOTH scalars is the
// column-relative singularity screen (see LuFactorizationT /
// SparseLuFactorizationT), which accepts widely column-scaled systems the
// old global-max test misdiagnosed. Heavy member functions live in the
// .cpp files behind explicit instantiation so the template refactor does
// not bloat every translation unit.

#include <cmath>
#include <complex>
#include <cstddef>
#include <initializer_list>
#include <vector>

namespace icvbe::linalg {

using Complex = std::complex<double>;

template <typename Scalar>
using VectorT = std::vector<Scalar>;

using Vector = VectorT<double>;
using ComplexVector = VectorT<Complex>;

/// Magnitude of a scalar: |x| for double, modulus for complex. Every
/// pivot / tolerance comparison in the linalg layer goes through this, so
/// the decision logic stays real-valued for both instantiations.
inline double scalar_abs(double v) { return std::abs(v); }
inline double scalar_abs(const Complex& v) { return std::abs(v); }

/// Finiteness screen (complex: both components must be finite).
inline bool scalar_is_finite(double v) { return std::isfinite(v); }
inline bool scalar_is_finite(const Complex& v) {
  return std::isfinite(v.real()) && std::isfinite(v.imag());
}

/// Dense row-major matrix of Scalar.
template <typename Scalar>
class MatrixT {
 public:
  MatrixT() = default;
  MatrixT(std::size_t rows, std::size_t cols, Scalar fill = Scalar{});

  /// Construct from nested initializer list (row major); all rows must
  /// have identical length.
  MatrixT(std::initializer_list<std::initializer_list<Scalar>> rows);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] Scalar& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] Scalar operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Bounds-checked access (throws icvbe::Error).
  [[nodiscard]] Scalar& at(std::size_t r, std::size_t c);
  [[nodiscard]] Scalar at(std::size_t r, std::size_t c) const;

  /// Reset every element to the given value (used between Newton
  /// iterations / AC frequency points to re-stamp the MNA system).
  void fill(Scalar value);

  /// Resize, discarding contents.
  void resize(std::size_t rows, std::size_t cols, Scalar fill = Scalar{});

  [[nodiscard]] MatrixT transposed() const;

  /// this * other; dimension-checked.
  [[nodiscard]] MatrixT multiply(const MatrixT& other) const;

  /// this * v; dimension-checked.
  [[nodiscard]] VectorT<Scalar> multiply(const VectorT<Scalar>& v) const;

  [[nodiscard]] static MatrixT identity(std::size_t n);

  /// Max element magnitude (infinity norm of vec(A)); always a double.
  [[nodiscard]] double max_abs() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<Scalar> data_;
};

using Matrix = MatrixT<double>;
using ComplexMatrix = MatrixT<Complex>;

extern template class MatrixT<double>;
extern template class MatrixT<Complex>;

/// Euclidean norm.
[[nodiscard]] double norm2(const Vector& v);

/// Infinity norm.
[[nodiscard]] double norm_inf(const Vector& v);

/// Infinity norm of a complex vector (max modulus).
[[nodiscard]] double norm_inf(const ComplexVector& v);

/// Dot product (dimension-checked).
[[nodiscard]] double dot(const Vector& a, const Vector& b);

/// a - b element-wise (dimension-checked).
[[nodiscard]] Vector subtract(const Vector& a, const Vector& b);

/// a + s*b (dimension-checked).
[[nodiscard]] Vector axpy(const Vector& a, double s, const Vector& b);

}  // namespace icvbe::linalg
