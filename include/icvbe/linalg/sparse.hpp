#pragma once
// Sparse linear algebra for large MNA systems: a CSR matrix with a
// build-once / restamp-many lifecycle and an LU factorisation with a
// reusable symbolic analysis. Generic over the scalar type (double for
// DC/transient Newton systems, Complex for small-signal AC systems).
//
// The dense workspace solver (matrix.hpp / solve.hpp) is ideal for the
// paper's tens-of-node bandgap cells but stores O(n^2) and refactors in
// O(n^3). The netlist parser happily ingests thousands of nodes, where an
// MNA matrix has a handful of entries per row; this header provides the
// engine SimSession switches to above NewtonOptions::sparse_threshold.
//
// Lifecycle, mirroring the dense workspace-reuse discipline:
//  1. building: SparseMatrixT::add(r, c, v) records coordinates (one
//     pattern-discovery stamp of the circuit);
//  2. freeze_pattern(): coordinates are compiled to CSR, duplicates merged;
//  3. steady state: fill(0) + add() re-stamp values into the frozen
//     pattern (binary search over a short sorted row -- allocation-free),
//     and SparseLuFactorizationT::refactor() re-factors numerically along a
//     cached pivot order and fill pattern, also allocation-free.
//
// Scalar genericity: the pattern machinery (COO -> CSR compilation,
// fill-reducing ordering, BTF permutation, fill-pattern discovery) is
// purely structural and identical for every scalar; pivot *selection*
// compares magnitudes (scalar_abs -- a double either way), so the symbolic
// analysis is real-valued for both instantiations and only the numeric
// refactor / solve arithmetic is scalar-typed. An AC frequency sweep
// therefore runs the analysis once at its first stamped frequency and
// re-factors allocation-free at every further point, exactly like a
// Newton loop.
//
// Symbolic scale-up (SparseOptions): the default pre-order is approximate
// minimum degree (AMD) on a quotient graph composed with a block-triangular
// (BTF) permutation, and the trailing fill-dense columns of the factor are
// solved through a dense supernode microkernel. The original exact
// set-based minimum-degree path survives behind SparseOptions::legacy()
// for A/B gating (bench_sparse_solve, test_sparse_ordering).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "icvbe/linalg/matrix.hpp"

namespace icvbe::linalg {

/// Compressed-sparse-row matrix with a two-phase lifecycle (see header
/// comment). All coordinate registrations happen while building -- value
/// zero still registers a pattern entry, so a stamp pass at an arbitrary
/// operating point discovers the full structural pattern.
///
/// Thread-safety: no internal synchronisation; one writer at a time.
/// Distinct instances are fully independent (parallel plan workers each
/// restamp their own copy).
template <typename Scalar>
class SparseMatrixT {
 public:
  SparseMatrixT() = default;
  SparseMatrixT(std::size_t rows, std::size_t cols) { resize(rows, cols); }

  /// Reset to an empty building-phase matrix of the given dimensions.
  void resize(std::size_t rows, std::size_t cols);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool frozen() const noexcept { return frozen_; }
  /// Number of stored entries (post-freeze: duplicates merged).
  [[nodiscard]] std::size_t nonzeros() const noexcept {
    return frozen_ ? values_.size() : coo_values_.size();
  }

  /// Accumulate v at (r, c). Building phase: registers the coordinate
  /// (allocates). Frozen phase: allocation-free accumulation into the
  /// stored slot; throws Error if (r, c) is outside the frozen pattern.
  /// \pre r < rows(), c < cols().
  void add(std::size_t r, std::size_t c, Scalar v) {
    if (frozen_) {
      values_[slot(r, c)] += v;
    } else {
      add_building(r, c, v);
    }
  }

  /// Compile the recorded coordinates into CSR (sorted columns per row,
  /// duplicates merged by summation). No-op if already frozen.
  void freeze_pattern();

  /// Thaw back to the building phase, keeping the current entries as
  /// coordinates (topology changed: new devices stamp new positions).
  void unfreeze();

  /// Set every stored value (frozen only); the pattern is untouched.
  /// fill(0.0) is the per-Newton-iteration / per-frequency re-stamp reset.
  void fill(Scalar value);

  /// Value at (r, c); zero outside the pattern (frozen only).
  [[nodiscard]] Scalar at(std::size_t r, std::size_t c) const;

  /// Process-unique pattern identity assigned by freeze_pattern(). The
  /// factorisation compares it to detect that its cached symbolic
  /// analysis still applies (copies share the stamp -- and the CSR).
  [[nodiscard]] std::uint64_t pattern_stamp() const noexcept {
    return pattern_stamp_;
  }

  // Raw CSR access (frozen only).
  [[nodiscard]] const std::vector<int>& row_ptr() const noexcept {
    return row_ptr_;
  }
  [[nodiscard]] const std::vector<int>& col_index() const noexcept {
    return col_index_;
  }
  [[nodiscard]] const std::vector<Scalar>& values() const noexcept {
    return values_;
  }

  /// Dense copy (tests and diagnostics; O(rows * cols)).
  [[nodiscard]] MatrixT<Scalar> to_dense() const;

  /// this * v (frozen only; dimension-checked).
  [[nodiscard]] VectorT<Scalar> multiply(const VectorT<Scalar>& v) const;

  /// Max stored value magnitude (frozen only; 0.0 for an empty pattern).
  [[nodiscard]] double max_abs() const;

  /// CSR slot of (r, c) (frozen only); throws Error if outside the
  /// pattern. Binary search over the (short, sorted) row -- the same
  /// lookup frozen add() uses, exposed so SparseValueBatchT can stamp
  /// lane planes against this pattern.
  [[nodiscard]] std::size_t slot(std::size_t r, std::size_t c) const;

 private:
  void add_building(std::size_t r, std::size_t c, Scalar v);

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  bool frozen_ = false;
  std::uint64_t pattern_stamp_ = 0;

  // Building phase: COO triplets in registration order.
  std::vector<std::pair<int, int>> coo_coords_;
  std::vector<Scalar> coo_values_;

  // Frozen phase: CSR.
  std::vector<int> row_ptr_;
  std::vector<int> col_index_;
  std::vector<Scalar> values_;
};

using SparseMatrix = SparseMatrixT<double>;
using ComplexSparseMatrix = SparseMatrixT<Complex>;

extern template class SparseMatrixT<double>;
extern template class SparseMatrixT<Complex>;

/// K value planes over one frozen sparse pattern -- the SoA side of the
/// batched lot solver. Lane l of a lot/corner group stamps its own matrix
/// values into plane l; all K planes share the pattern (and therefore the
/// factorisation's one cached symbolic analysis and pivot sequence).
///
/// Layout is lane-fastest: the K values of pattern slot i are contiguous
/// at values()[i * lanes() + l], so the batched refactor/solve inner loops
/// walk unit-stride across the die lane and vectorise.
///
/// The bound pattern matrix is referenced, not copied -- it must outlive
/// the batch and stay frozen (re-freezing changes the pattern stamp and
/// the batch must be re-bound).
template <typename Scalar>
class SparseValueBatchT {
 public:
  SparseValueBatchT() = default;

  /// Bind to a frozen pattern with `lanes` zeroed value planes.
  /// Allocation happens here (and only here): the per-die steady state --
  /// clear_lane / add / load_lane -- is allocation-free.
  void bind(const SparseMatrixT<Scalar>& pattern, std::size_t lanes);

  [[nodiscard]] bool bound() const noexcept { return pattern_ != nullptr; }
  [[nodiscard]] std::size_t lanes() const noexcept { return lanes_; }
  [[nodiscard]] std::size_t rows() const noexcept {
    return pattern_ != nullptr ? pattern_->rows() : 0;
  }
  [[nodiscard]] std::size_t nonzeros() const noexcept {
    return pattern_ != nullptr ? pattern_->nonzeros() : 0;
  }
  [[nodiscard]] std::uint64_t pattern_stamp() const noexcept {
    return pattern_ != nullptr ? pattern_->pattern_stamp() : 0;
  }
  [[nodiscard]] const SparseMatrixT<Scalar>& pattern() const;

  /// Zero every value of one lane (the per-Newton-iteration restamp reset
  /// of that lane). Strided by lanes(); allocation-free.
  void clear_lane(std::size_t lane);

  /// Accumulate v at (r, c) in `lane`. Slot must be inside the frozen
  /// pattern (throws Error otherwise, like frozen SparseMatrixT::add).
  void add(std::size_t r, std::size_t c, Scalar v, std::size_t lane) {
    values_[pattern_->slot(r, c) * lanes_ + lane] += v;
  }

  /// Copy a scalar matrix's values into one lane. The matrix must share
  /// the bound pattern (same pattern stamp).
  void load_lane(std::size_t lane, const SparseMatrixT<Scalar>& m);

  [[nodiscard]] const std::vector<Scalar>& values() const noexcept {
    return values_;
  }

 private:
  const SparseMatrixT<Scalar>* pattern_ = nullptr;
  std::size_t lanes_ = 0;
  std::vector<Scalar> values_;  ///< nnz * lanes, lane-fastest
};

using SparseValueBatch = SparseValueBatchT<double>;
using ComplexSparseValueBatch = SparseValueBatchT<Complex>;

extern template class SparseValueBatchT<double>;
extern template class SparseValueBatchT<Complex>;

/// Symbolic pre-order family for SparseLuFactorizationT (structural only,
/// shared by both scalar instantiations; every choice is deterministic).
enum class SparseOrdering {
  kMinDegree,  ///< exact set-based minimum degree (the original O(n^2)-ish
               ///< path; kept for A/B gating and as a fill reference)
  kAmd,        ///< approximate minimum degree on a quotient graph
               ///< (supervariables + external-degree approximation);
               ///< near-linear analysis, the default
};

/// Symbolic-path configuration. The default is the scaled-up path: AMD
/// pre-ordering inside a block-triangular (BTF) permutation with the
/// fill-dense trailing columns routed through a dense supernode
/// microkernel. legacy() reproduces the pre-AMD engine exactly.
struct SparseOptions {
  SparseOrdering ordering = SparseOrdering::kAmd;
  /// Permute to block-triangular form first (maximum transversal + SCC
  /// condensation) and order/factor each diagonal block independently;
  /// pivoting is confined to the current block. Structurally singular
  /// matrices are rejected at the matching, before any numeric work.
  bool btf = true;
  /// Route the trailing dense part of the factor through the supernode
  /// microkernel when at least this many step-space columns qualify
  /// (0 disables the dense kernel entirely).
  int supernode_min = 32;
  /// Factor density (stored entries / B^2) a trailing block must reach to
  /// qualify as the dense supernode. Below ~0.7 the dense kernel's
  /// structural-zero arithmetic outweighs its locality win over the
  /// indexed sparse replay (measured on 1000-node meshes, where 0.5
  /// admitted a block ~40% slower than just replaying it sparse).
  double supernode_density = 0.8;

  /// The original engine: exact minimum degree, no BTF, no supernodes.
  [[nodiscard]] static SparseOptions legacy() noexcept {
    return SparseOptions{SparseOrdering::kMinDegree, false, 0, 0.0};
  }

  friend bool operator==(const SparseOptions&,
                         const SparseOptions&) = default;
};

/// Exact set-based minimum-degree row pre-ordering over the symmetrised
/// pattern (the original default; O(n^2)-ish). Deterministic: ties break
/// on the smallest node index. Exposed for the ordering test harness.
[[nodiscard]] std::vector<int> minimum_degree_order(
    const std::vector<int>& row_ptr, const std::vector<int>& col_index,
    std::size_t n);

/// Approximate minimum degree on a quotient graph over the symmetrised
/// pattern: supervariable detection (indistinguishable-node merging),
/// element absorption, and the external-degree approximation -- the
/// near-linear replacement for minimum_degree_order. Deterministic:
/// (degree, index) min-selection and index-ordered supervariable
/// emission. Exposed for the ordering test harness.
[[nodiscard]] std::vector<int> amd_order(const std::vector<int>& row_ptr,
                                         const std::vector<int>& col_index,
                                         std::size_t n);

/// Block-triangular decomposition of a square pattern: a maximum
/// transversal (row-perfect matching) followed by the SCC condensation of
/// the matched graph. Rows of block b have entries only in columns of
/// blocks >= b, so LU never creates fill across blocks and pivoting can
/// stay block-confined. Purely structural and deterministic.
struct BtfDecomposition {
  /// Rows concatenated block by block (within a block: ascending row id).
  std::vector<int> row_order;
  /// Offsets into row_order, size block_count() + 1.
  std::vector<int> block_ptr;
  /// Block id of each row (and of its matched column).
  std::vector<int> row_block;
  /// Matched column of each row (the maximum transversal).
  std::vector<int> match_col;

  [[nodiscard]] std::size_t block_count() const noexcept {
    return block_ptr.empty() ? 0 : block_ptr.size() - 1;
  }
};

/// Compute the BTF decomposition of a frozen square CSR pattern. Throws
/// NumericalError if the pattern is structurally singular (no perfect
/// matching exists -- no value assignment could make the matrix
/// non-singular).
[[nodiscard]] BtfDecomposition btf_decompose(const std::vector<int>& row_ptr,
                                             const std::vector<int>& col_index,
                                             std::size_t n);

/// Sparse LU with a reusable symbolic analysis, the SPICE-family engine
/// shape (Nagel's SPICE2 reordering, KLU-style refactorisation):
///
///  * analyse once: a block-triangular permutation plus a fill-reducing
///    row pre-ordering per diagonal block (AMD by default; the exact
///    minimum-degree path behind SparseOptions), then an up-looking row
///    factorisation with threshold column pivoting (Markowitz-flavoured:
///    among numerically acceptable pivots the sparsest column wins),
///    pivots confined to the current BTF block. The pivot order, the
///    complete fill-in pattern of L and U, and the trailing dense
///    supernode (if one qualifies) are cached. Pivot acceptability
///    compares magnitudes, so the analysis decisions are real-valued for
///    both scalar instantiations.
///  * refactor() per Newton iteration / AC frequency point: if the matrix
///    pattern matches the cached analysis, a purely numeric
///    re-factorisation runs along the frozen pivot order and pattern -- no
///    allocation, no searching. If a frozen pivot collapses numerically
///    the analysis is redone once with fresh pivoting (allocates; rare),
///    and NumericalError is thrown only if the matrix is genuinely
///    singular to working precision.
///
/// API mirrors the dense LuFactorizationT so SimSession can hold either.
///
/// Thread-safety: refactor() mutates the cached factors; solve_in_place()
/// is const but uses an internal permutation buffer, so concurrent solves
/// on ONE instance are racy. One instance per thread (the plan-worker
/// discipline) is safe.
template <typename Scalar>
class SparseLuFactorizationT {
 public:
  SparseLuFactorizationT() = default;

  /// Factor a frozen SparseMatrixT. First call (or pattern change) runs the
  /// symbolic analysis; later calls with the same pattern are
  /// allocation-free. Throws NumericalError if A is singular to working
  /// precision: no pivot candidate of some elimination step reaches
  /// pivot_tol times its own column's original max|A| (column-relative,
  /// like the dense engine, so AC systems whose columns legitimately span
  /// many decades are not misdiagnosed).
  /// \pre a.frozen(), a square and non-empty, all values finite (checked:
  ///      non-finite input throws NumericalError deterministically here,
  ///      never surfacing at the first solve).
  /// \post the factors match this matrix's values; a frozen-pivot
  ///       collapse or runaway element growth re-ran the analysis with
  ///       fresh pivoting (allocates; analysis_count() increments).
  void refactor(const SparseMatrixT<Scalar>& a, double pivot_tol = 1e-14);

  /// Solve A x = rhs with the solution overwriting rhs; allocation-free.
  /// \pre refactor() has succeeded; rhs.size() == size().
  void solve_in_place(VectorT<Scalar>& rhs) const;

  /// Solve A x = b.
  [[nodiscard]] VectorT<Scalar> solve(const VectorT<Scalar>& b) const;

  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  /// Entries stored in L + U (including fill-in) plus the raw
  /// off-diagonal-block entries a BTF factorisation keeps unfactored
  /// (diagnostic).
  [[nodiscard]] std::size_t factor_nonzeros() const noexcept {
    return l_step_.size() + u_step_.size() + n_ + off_step_.size();
  }

  /// How many times the symbolic analysis has run (diagnostic; a steady
  /// Newton loop or AC sweep should see exactly 1).
  [[nodiscard]] int analysis_count() const noexcept {
    return analysis_count_;
  }

  /// Drop the cached symbolic analysis: the next refactor() re-analyses
  /// with fresh pivoting (allocates). Lets a driver re-pin the analysis
  /// to a chosen reference matrix after a frozen-pivot collapse
  /// re-ordered it mid-sweep -- the discipline SimSession::solve_ac uses
  /// to keep every frequency point's factorisation a pure function of
  /// (operating point, frequency, prime frequency), independent of which
  /// sweep point (or parallel worker) tripped the collapse.
  void invalidate_analysis() noexcept { analyzed_ = false; }

  /// Select the symbolic path (ordering / BTF / supernode thresholds).
  /// Changing the options drops the cached analysis -- the next refactor()
  /// re-analyses under the new configuration. Same-value calls are no-ops,
  /// so sessions may set options unconditionally at rebind.
  void set_options(const SparseOptions& options) noexcept {
    if (!(options == options_)) analyzed_ = false;
    options_ = options;
  }
  [[nodiscard]] const SparseOptions& options() const noexcept {
    return options_;
  }

  /// Diagonal-block count of the analysed pattern (1 when BTF is off or
  /// the pattern is irreducible; diagnostic, valid after a refactor()).
  [[nodiscard]] std::size_t btf_block_count() const noexcept {
    return btf_blocks_;
  }
  /// Step-space columns the dense supernode microkernel covers (0 when no
  /// trailing block qualified; diagnostic, valid after a refactor()).
  [[nodiscard]] std::size_t supernode_size() const noexcept {
    return analyzed_ ? n_ - sn_start_ : 0;
  }

  /// Numeric refactorisation of K value lanes along the one cached pivot
  /// order -- the batched lot kernel. Each lane runs exactly the frozen
  /// numeric pass refactor() would run on its values (bit-identical
  /// factors, same column-relative pivot screen, same growth guard), but
  /// the inner loops carry all K lanes together through each elimination
  /// step (unit-stride across the lane, vectorisable).
  ///
  /// \pre a cached analysis for batch.pattern() exists: refactor() a
  ///      reference matrix sharing the pattern first. The analysis is
  ///      never redone here -- a lane whose values reject the frozen
  ///      pivots is *flagged*, not re-pivoted, so one bad die can never
  ///      perturb its lane mates' factors.
  /// \param lane_ok in: lanes to factor (non-zero entries); out: 1 iff
  ///        that lane factored cleanly -- finite values, non-zero matrix,
  ///        every frozen pivot above pivot_tol times the lane's own
  ///        column max, bounded element growth. Size must equal
  ///        batch.lanes(). The caller re-runs failed lanes through the
  ///        scalar path (which may re-analyse with fresh pivoting).
  /// Allocation-free once called with a given (analysis, lane-count)
  /// shape; the scalar factors from refactor() are left untouched.
  void refactor_batch(const SparseValueBatchT<Scalar>& batch,
                      std::vector<unsigned char>& lane_ok,
                      double pivot_tol = 1e-14);

  /// Solve A_l x_l = rhs_l for all K lanes of the last refactor_batch().
  /// rhs is lane-fastest (entry i of lane l at rhs[i * K + l], K * size()
  /// total) and is overwritten by the solutions. Lanes that failed (or
  /// were inactive in) refactor_batch() receive unspecified values -- the
  /// arithmetic still runs branch-free across all lanes, and a divide by
  /// a rejected pivot stays confined to its own lane. Allocation-free.
  void solve_batch(std::vector<Scalar>& rhs) const;

  /// Lane count of the last refactor_batch() (0 before the first).
  [[nodiscard]] std::size_t batch_lanes() const noexcept {
    return batch_lanes_;
  }

  /// Toggle the explicit-SIMD batched kernels at runtime (double scalar
  /// only; Complex always runs the scalar-lane loops). Defaults to on. The
  /// off position replays the original runtime-K scalar-lane kernel
  /// verbatim -- results are bit-identical either way, so this is purely a
  /// measurement hook: bench_lot_statistics flips it for the same-build
  /// SIMD-vs-scalar A/B gate, and the equivalence tests pin the bitwise
  /// agreement.
  void set_batch_simd(bool on) noexcept { batch_simd_ = on; }
  [[nodiscard]] bool batch_simd() const noexcept { return batch_simd_; }

  /// Rough 1-norm condition estimate via |A|_1 * |A^-1 e|_1 probing --
  /// the same +/-1-vector probe the dense LuFactorizationT uses, so the
  /// two engines report comparable numbers on the same system (held to
  /// within 10x by test_sparse).
  /// \pre refactor() has succeeded. Allocates two temporary vectors.
  [[nodiscard]] double condition_estimate() const;

 private:
  /// Full factorisation with pivot search; caches order + pattern. Pivot
  /// acceptability is column-relative: pivot_tol * colmax_ (filled by
  /// refactor()).
  void analyze(const SparseMatrixT<Scalar>& a, double pivot_tol);
  /// Numeric-only pass along the cached order/pattern (sparse replay up to
  /// sn_start_, dense supernode microkernel beyond). Returns false on
  /// pivot breakdown (column-relative, via colmax_) or runaway element
  /// growth -- the frozen pivots were chosen for different numerics, e.g.
  /// a transient restamp whose companion conductances dwarf the values
  /// the analysis saw (caller re-analyses). `amax` = max|A| of the
  /// current matrix. `enforce_screens = false` skips both failure checks:
  /// the post-analysis value pass uses it to rewrite the factors through
  /// the very kernel every later refactor runs, making the stored values
  /// (down to the sign of zero) independent of whether the analysis or a
  /// frozen pass produced them.
  [[nodiscard]] bool refactor_frozen(const SparseMatrixT<Scalar>& a,
                                     double pivot_tol, double amax,
                                     bool enforce_screens = true);
  [[nodiscard]] bool pattern_matches(const SparseMatrixT<Scalar>& a) const;

  /// Batched kernel bodies, parameterised over the lane-op policy (the
  /// scalar-lane baseline or the DPack policies -- see sparse.cpp). Every
  /// policy performs the same elementwise FP sequence per lane, so the
  /// instantiations produce bit-identical value planes; refactor_batch /
  /// solve_batch dispatch on batch_simd_ and the lane count.
  template <typename Ops>
  void refactor_batch_kernel(const SparseValueBatchT<Scalar>& batch,
                             std::vector<unsigned char>& lane_ok,
                             double pivot_tol);
  template <typename Ops>
  void solve_batch_kernel(std::vector<Scalar>& rhs) const;

  std::size_t n_ = 0;
  bool analyzed_ = false;
  int analysis_count_ = 0;
  SparseOptions options_{};
  std::size_t btf_blocks_ = 0;  ///< diagonal blocks of the analysed pattern
  double a_norm1_ = 0.0;  ///< 1-norm of the last refactored A
  /// Per-column max|A| of the matrix being refactored (the pivot test's
  /// column-relative scale); refilled by every refactor(), allocation-free
  /// once sized.
  std::vector<double> colmax_;

  // Identity of the analysed pattern (SparseMatrixT::pattern_stamp is
  // process-unique per freeze, so equality means the same frozen CSR).
  std::uint64_t pattern_stamp_ = 0;

  // Permutations: step k processes row rperm_[k]; the pivot of step k is
  // column cperm_[k] (cstep_ is its inverse).
  std::vector<int> rperm_;
  std::vector<int> cperm_;
  std::vector<int> cstep_;

  // Scatter map: A's CSR entry i lands in working slot astep_[i].
  std::vector<int> astep_;

  // Frozen factor, indexed in pivot-step space. L has unit diagonal; U's
  // diagonal lives in udiag_.
  std::vector<int> l_ptr_;
  std::vector<int> l_step_;
  std::vector<Scalar> l_val_;
  std::vector<int> u_ptr_;
  std::vector<int> u_step_;
  std::vector<Scalar> u_val_;
  std::vector<Scalar> udiag_;

  std::vector<Scalar> work_;          ///< dense scatter row (step space)
  mutable std::vector<Scalar> perm_;  ///< solve permutation buffer

  // Block-triangular structure. Blocks occupy contiguous step ranges
  // [bstep_ptr_[b], bstep_ptr_[b+1]); the factor above is block-diagonal,
  // and A entries crossing into a *later* block's columns stay unfactored:
  // they are copied raw each refactor (off_val_[t] = A value at CSR slot
  // off_a_idx_[t], astep_ is -1 there so the scatter skips them) and
  // applied during block back-substitution in solve (x of later blocks is
  // final by then). That is what makes BTF a fill *win*: cross-block
  // columns never join any elimination pattern. Without blocks,
  // bstep_ptr_ = {0, n} and the off arrays are empty.
  std::vector<int> bstep_ptr_;
  std::vector<int> off_ptr_;    ///< per step: range into the off arrays
  std::vector<int> off_a_idx_;  ///< CSR value slot of each off entry
  std::vector<int> off_step_;   ///< pivot step of the entry's column
  std::vector<Scalar> off_val_;

  // Trailing dense supernode: steps [sn_start_, n_) of the factor are
  // dense enough that the numeric pass runs them through a row-major
  // B x B dense microkernel (B = n_ - sn_start_) instead of the sparse
  // replay, then mirrors the pattern positions back into the flat factor
  // arrays so every solve/estimate path is oblivious to it. sn_start_ ==
  // n_ means no block qualified. The mirror maps are built once per
  // analysis.
  std::size_t sn_start_ = 0;
  std::vector<Scalar> sn_val_;  ///< B x B dense block, row-major
  std::vector<int> sn_l_idx_;   ///< l_val_ slots inside the block...
  std::vector<int> sn_l_pos_;   ///< ...and their dense positions
  std::vector<int> sn_u_idx_;   ///< u_val_ slots inside the block...
  std::vector<int> sn_u_pos_;   ///< ...and their dense positions

  // Batched (K-lane) numeric state, lane-fastest planes mirroring the
  // scalar factor arrays. Sized by refactor_batch on shape change only;
  // independent of the scalar factors so reference refactor() and batch
  // passes coexist.
  std::size_t batch_lanes_ = 0;
  bool batch_simd_ = true;  ///< runtime kernel toggle (see set_batch_simd)
  std::vector<Scalar> l_val_b_;
  std::vector<Scalar> u_val_b_;
  std::vector<Scalar> udiag_b_;
  std::vector<Scalar> sn_val_b_;          ///< B x B x K dense block planes
  std::vector<Scalar> work_b_;            ///< step space * K
  std::vector<Scalar> off_val_b_;         ///< off entries * K, raw copies
  std::vector<double> colmax_b_;          ///< cols * K
  std::vector<double> amax_b_;            ///< per-lane max|A|
  std::vector<double> gmax_b_;            ///< per-lane growth tracker
  mutable std::vector<Scalar> perm_b_;    ///< batched solve buffer
};

using SparseLuFactorization = SparseLuFactorizationT<double>;
using ComplexSparseLuFactorization = SparseLuFactorizationT<Complex>;

extern template class SparseLuFactorizationT<double>;
extern template class SparseLuFactorizationT<Complex>;

}  // namespace icvbe::linalg
