#pragma once
// Sparse linear algebra for large MNA systems: a CSR matrix with a
// build-once / restamp-many lifecycle and an LU factorisation with a
// reusable symbolic analysis.
//
// The dense workspace solver (matrix.hpp / solve.hpp) is ideal for the
// paper's tens-of-node bandgap cells but stores O(n^2) and refactors in
// O(n^3). The netlist parser happily ingests thousands of nodes, where an
// MNA matrix has a handful of entries per row; this header provides the
// engine SimSession switches to above NewtonOptions::sparse_threshold.
//
// Lifecycle, mirroring the dense workspace-reuse discipline:
//  1. building: SparseMatrix::add(r, c, v) records coordinates (one
//     pattern-discovery stamp of the circuit);
//  2. freeze_pattern(): coordinates are compiled to CSR, duplicates merged;
//  3. steady state: fill(0) + add() re-stamp values into the frozen
//     pattern (binary search over a short sorted row -- allocation-free),
//     and SparseLuFactorization::refactor() re-factors numerically along a
//     cached pivot order and fill pattern, also allocation-free.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "icvbe/linalg/matrix.hpp"

namespace icvbe::linalg {

/// Compressed-sparse-row matrix with a two-phase lifecycle (see header
/// comment). All coordinate registrations happen while building -- value
/// zero still registers a pattern entry, so a stamp pass at an arbitrary
/// operating point discovers the full structural pattern.
///
/// Thread-safety: no internal synchronisation; one writer at a time.
/// Distinct instances are fully independent (parallel plan workers each
/// restamp their own copy).
class SparseMatrix {
 public:
  SparseMatrix() = default;
  SparseMatrix(std::size_t rows, std::size_t cols) { resize(rows, cols); }

  /// Reset to an empty building-phase matrix of the given dimensions.
  void resize(std::size_t rows, std::size_t cols);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool frozen() const noexcept { return frozen_; }
  /// Number of stored entries (post-freeze: duplicates merged).
  [[nodiscard]] std::size_t nonzeros() const noexcept {
    return frozen_ ? values_.size() : coo_values_.size();
  }

  /// Accumulate v at (r, c). Building phase: registers the coordinate
  /// (allocates). Frozen phase: allocation-free accumulation into the
  /// stored slot; throws Error if (r, c) is outside the frozen pattern.
  /// \pre r < rows(), c < cols().
  void add(std::size_t r, std::size_t c, double v) {
    if (frozen_) {
      values_[slot(r, c)] += v;
    } else {
      add_building(r, c, v);
    }
  }

  /// Compile the recorded coordinates into CSR (sorted columns per row,
  /// duplicates merged by summation). No-op if already frozen.
  void freeze_pattern();

  /// Thaw back to the building phase, keeping the current entries as
  /// coordinates (topology changed: new devices stamp new positions).
  void unfreeze();

  /// Set every stored value (frozen only); the pattern is untouched.
  /// fill(0.0) is the per-Newton-iteration re-stamp reset.
  void fill(double value);

  /// Value at (r, c); 0.0 outside the pattern (frozen only).
  [[nodiscard]] double at(std::size_t r, std::size_t c) const;

  /// Process-unique pattern identity assigned by freeze_pattern(). The
  /// factorisation compares it to detect that its cached symbolic
  /// analysis still applies (copies share the stamp -- and the CSR).
  [[nodiscard]] std::uint64_t pattern_stamp() const noexcept {
    return pattern_stamp_;
  }

  // Raw CSR access (frozen only).
  [[nodiscard]] const std::vector<int>& row_ptr() const noexcept {
    return row_ptr_;
  }
  [[nodiscard]] const std::vector<int>& col_index() const noexcept {
    return col_index_;
  }
  [[nodiscard]] const std::vector<double>& values() const noexcept {
    return values_;
  }

  /// Dense copy (tests and diagnostics; O(rows * cols)).
  [[nodiscard]] Matrix to_dense() const;

  /// this * v (frozen only; dimension-checked).
  [[nodiscard]] Vector multiply(const Vector& v) const;

  /// Max absolute stored value (frozen only; 0.0 for an empty pattern).
  [[nodiscard]] double max_abs() const;

 private:
  void add_building(std::size_t r, std::size_t c, double v);
  /// CSR slot of (r, c); throws Error if outside the pattern.
  [[nodiscard]] std::size_t slot(std::size_t r, std::size_t c) const;

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  bool frozen_ = false;
  std::uint64_t pattern_stamp_ = 0;

  // Building phase: COO triplets in registration order.
  std::vector<std::pair<int, int>> coo_coords_;
  std::vector<double> coo_values_;

  // Frozen phase: CSR.
  std::vector<int> row_ptr_;
  std::vector<int> col_index_;
  std::vector<double> values_;
};

/// Sparse LU with a reusable symbolic analysis, the SPICE-family engine
/// shape (Nagel's SPICE2 reordering, KLU-style refactorisation):
///
///  * analyse once: a fill-reducing minimum-degree row pre-ordering over
///    the symmetrised pattern, then an up-looking row factorisation with
///    threshold column pivoting (Markowitz-flavoured: among numerically
///    acceptable pivots the sparsest column wins). The pivot order and the
///    complete fill-in pattern of L and U are cached.
///  * refactor() per Newton iteration: if the matrix pattern matches the
///    cached analysis, a purely numeric re-factorisation runs along the
///    frozen pivot order and pattern -- no allocation, no searching. If a
///    frozen pivot collapses numerically the analysis is redone once with
///    fresh pivoting (allocates; rare), and NumericalError is thrown only
///    if the matrix is genuinely singular to working precision.
///
/// API mirrors the dense LuFactorization so SimSession can hold either.
///
/// Thread-safety: refactor() mutates the cached factors; solve_in_place()
/// is const but uses an internal permutation buffer, so concurrent solves
/// on ONE instance are racy. One instance per thread (the plan-worker
/// discipline) is safe.
class SparseLuFactorization {
 public:
  SparseLuFactorization() = default;

  /// Factor a frozen SparseMatrix. First call (or pattern change) runs the
  /// symbolic analysis; later calls with the same pattern are
  /// allocation-free. Throws NumericalError if A is singular to working
  /// precision (best available pivot below pivot_tol * max|A|).
  /// \pre a.frozen(), a square and non-empty, all values finite (checked:
  ///      non-finite input throws NumericalError deterministically here,
  ///      never surfacing at the first solve).
  /// \post the factors match this matrix's values; a frozen-pivot
  ///       collapse or runaway element growth re-ran the analysis with
  ///       fresh pivoting (allocates; analysis_count() increments).
  void refactor(const SparseMatrix& a, double pivot_tol = 1e-14);

  /// Solve A x = rhs with the solution overwriting rhs; allocation-free.
  /// \pre refactor() has succeeded; rhs.size() == size().
  void solve_in_place(Vector& rhs) const;

  /// Solve A x = b.
  [[nodiscard]] Vector solve(const Vector& b) const;

  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  /// Entries stored in L + U (including fill-in; diagnostic).
  [[nodiscard]] std::size_t factor_nonzeros() const noexcept {
    return l_step_.size() + u_step_.size() + n_;
  }

  /// How many times the symbolic analysis has run (diagnostic; a steady
  /// Newton loop should see exactly 1).
  [[nodiscard]] int analysis_count() const noexcept {
    return analysis_count_;
  }

  /// Rough 1-norm condition estimate via |A|_1 * |A^-1 e|_1 probing --
  /// the same +/-1-vector probe the dense LuFactorization uses, so the
  /// two engines report comparable numbers on the same system (held to
  /// within 10x by test_sparse).
  /// \pre refactor() has succeeded. Allocates two temporary vectors.
  [[nodiscard]] double condition_estimate() const;

 private:
  /// Full factorisation with pivot search; caches order + pattern.
  /// `tol_abs` = pivot_tol * max|A|, computed once by refactor().
  void analyze(const SparseMatrix& a, double tol_abs);
  /// Numeric-only pass along the cached order/pattern. Returns false on
  /// pivot breakdown or runaway element growth -- the frozen pivots were
  /// chosen for different numerics, e.g. a transient restamp whose
  /// companion conductances dwarf the values the analysis saw (caller
  /// re-analyses). `amax` = max|A| of the current matrix.
  [[nodiscard]] bool refactor_frozen(const SparseMatrix& a, double tol_abs,
                                     double amax);
  [[nodiscard]] bool pattern_matches(const SparseMatrix& a) const;

  std::size_t n_ = 0;
  bool analyzed_ = false;
  int analysis_count_ = 0;
  double a_norm1_ = 0.0;  ///< 1-norm of the last refactored A

  // Identity of the analysed pattern (SparseMatrix::pattern_stamp is
  // process-unique per freeze, so equality means the same frozen CSR).
  std::uint64_t pattern_stamp_ = 0;

  // Permutations: step k processes row rperm_[k]; the pivot of step k is
  // column cperm_[k] (cstep_ is its inverse).
  std::vector<int> rperm_;
  std::vector<int> cperm_;
  std::vector<int> cstep_;

  // Scatter map: A's CSR entry i lands in working slot astep_[i].
  std::vector<int> astep_;

  // Frozen factor, indexed in pivot-step space. L has unit diagonal; U's
  // diagonal lives in udiag_.
  std::vector<int> l_ptr_;
  std::vector<int> l_step_;
  std::vector<double> l_val_;
  std::vector<int> u_ptr_;
  std::vector<int> u_step_;
  std::vector<double> u_val_;
  std::vector<double> udiag_;

  std::vector<double> work_;          ///< dense scatter row (step space)
  mutable std::vector<double> perm_;  ///< solve permutation buffer
};

}  // namespace icvbe::linalg
