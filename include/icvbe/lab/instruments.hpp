#pragma once
// Instrument models: the pt100 temperature sensor (HP34970A front end) and
// the SMU channels of an HP4156-class parameter analyser.
//
// Every instrument instance draws its *systematic* errors (gain, offset)
// once at construction from a seeded Rng, then adds fresh noise per
// reading -- matching how a real bench behaves within one calibration
// cycle.

#include "icvbe/common/rng.hpp"

namespace icvbe::lab {

/// pt100 4-wire sensor, "precision less than 1 degC" (paper section 5).
class Pt100Sensor {
 public:
  struct Spec {
    double offset_sigma = 0.4;   ///< systematic offset spread [K]
    double gain_sigma = 1.5e-3;  ///< relative gain error spread
    double noise_sigma = 0.05;   ///< per-reading noise [K]
  };

  explicit Pt100Sensor(Rng rng);
  Pt100Sensor(Rng rng, const Spec& spec);

  /// Reading [K] for a true contact temperature [K].
  [[nodiscard]] double read(double true_kelvin);

  [[nodiscard]] double systematic_offset() const noexcept { return offset_; }

 private:
  Rng rng_;
  Spec spec_;
  double offset_;
  double gain_;
};

/// One SMU channel: force voltage / measure current, or force current /
/// measure voltage. Numbers follow HP4156-class specs (uV offsets, ppm-level
/// gain, fA-range noise floor at the sensitive ranges used here).
class SmuChannel {
 public:
  struct Spec {
    double v_offset_sigma = 20e-6;   ///< systematic voltage offset [V]
    double v_gain_sigma = 50e-6;     ///< relative voltage gain error
    double v_noise_sigma = 8e-6;     ///< per-reading voltage noise [V]
    double i_gain_sigma = 100e-6;    ///< relative current gain error
    double i_noise_floor = 2e-14;    ///< additive current noise [A]
    double i_noise_rel = 2e-5;       ///< relative current noise
  };

  explicit SmuChannel(Rng rng);
  SmuChannel(Rng rng, const Spec& spec);

  /// Measured value [V] of a true node voltage.
  [[nodiscard]] double measure_voltage(double true_volts);

  /// Measured value [A] of a true branch current.
  [[nodiscard]] double measure_current(double true_amps);

  /// The value actually forced when the operator programs `setpoint` volts
  /// (source errors mirror the measure errors).
  [[nodiscard]] double force_voltage(double setpoint_volts);

  /// The current actually forced for a programmed setpoint.
  [[nodiscard]] double force_current(double setpoint_amps);

 private:
  Rng rng_;
  Spec spec_;
  double v_offset_;
  double v_gain_;
  double i_gain_;
};

}  // namespace icvbe::lab
