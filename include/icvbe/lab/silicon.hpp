#pragma once
// The "silicon": ground-truth process definition and Monte-Carlo die
// samples.
//
// This is the hardware substitution for the paper's ST BiCMOS test chips
// (DESIGN.md section 2). The ProcessTruth holds the *real* device physics
// -- including the true (EG, XTI) the extraction methods are trying to
// recover, the parasitic substrate transistors, and the packaging/fixture
// thermal behaviour. Extraction code never reads ProcessTruth; it only sees
// instrument readings produced by the campaign drivers.

#include <cstdint>

#include "icvbe/spice/bjt.hpp"

namespace icvbe::lab {

/// Fixture/package thermal behaviour. The die does not sit exactly at the
/// chamber temperature: the package leaks heat toward the (room-temperature)
/// lab through cables and fixture metal, and the chip's own dissipation adds
/// self-heating. This is what makes the sensor-vs-die difference of Table 1
/// change sign across the chamber range: at -26 C the die is pulled up
/// toward the room, at +75 C pulled down, and self-heating adds a small
/// positive bias everywhere. (Self-heating alone cannot reproduce Table 1's
/// sign flip; the paper's wording "effects related to packaging" covers the
/// conduction path we model explicitly.)
struct FixtureThermal {
  double leak = 0.095;        ///< fraction of (room - chamber) reaching the die
  double leak_tempco = 0.009; ///< relative leak growth per K above room
                              ///< (convection/radiation strengthen with dT)
  double room_kelvin = 296.15;///< lab ambient the fixture leaks toward [K]
  double rth_die = 350.0;     ///< die-to-chamber thermal resistance [K/W]
  double aux_power = 3.0e-3;  ///< dissipation of surrounding circuitry [W]

  /// Die temperature for a chamber setting and a chip power level.
  [[nodiscard]] double die_temperature(double chamber_kelvin,
                                       double chip_power_watts) const {
    double eff_leak = leak * (1.0 + leak_tempco * (chamber_kelvin - room_kelvin));
    if (eff_leak < 0.0) eff_leak = 0.0;
    return chamber_kelvin + eff_leak * (room_kelvin - chamber_kelvin) +
           rth_die * (chip_power_watts + aux_power);
  }
};

/// Ground-truth process definition (one diffusion lot).
struct ProcessTruth {
  /// The real silicon PNP: true EG/XTI live in pnp.eg / pnp.xti. Defaults
  /// model the paper's 0.8 ohm-cm n-epi BiCMOS substrate PNP.
  spice::BjtModel pnp;

  /// Nominal fixture behaviour (per-sample spread applied on top).
  FixtureThermal fixture;

  /// Op-amp input offset: systematic part [V] plus sample sigma. The
  /// systematic part models the uncompensated amplifier stage the paper
  /// corrects with pads P4/P5.
  double opamp_offset_mean = 1.5e-3;
  double opamp_offset_sigma = 0.8e-3;

  /// Lot spread sigmas (relative unless noted).
  double sigma_is_rel = 0.08;        ///< absolute IS spread, lot level
  double sigma_pair_mismatch = 0.003;///< QA/QB IS mismatch within a die
  double sigma_leak = 0.018;         ///< fixture leak spread (absolute)
  double sigma_rth_rel = 0.15;       ///< thermal resistance spread
  double sigma_resistor_rel = 0.02;  ///< n-well resistor spread

  /// Default truth used across the repository's experiments.
  [[nodiscard]] static ProcessTruth nominal();
};

/// One packaged die: materialised sample-specific models.
struct DieSample {
  int index = 0;
  spice::BjtModel qa;         ///< QA device card (1x)
  spice::BjtModel qb;         ///< QB device card (used with area = ratio)
  spice::BjtModel qin;        ///< single DUT for the classical method
  double opamp_offset = 0.0;  ///< this die's amplifier offset [V]
  FixtureThermal fixture;     ///< this package's thermal behaviour
  double resistor_scale = 1.0;///< multiplies every n-well resistor
};

/// A diffusion lot: deterministic factory of DieSamples.
class SiliconLot {
 public:
  explicit SiliconLot(ProcessTruth truth = ProcessTruth::nominal(),
                      std::uint64_t master_seed = 20020316);  // DATE 2002

  /// Materialise sample `index` (deterministic in (seed, index)).
  [[nodiscard]] DieSample sample(int index) const;

  [[nodiscard]] const ProcessTruth& truth() const noexcept { return truth_; }

  /// The true SPICE parameters a perfect extraction would recover.
  [[nodiscard]] double true_eg() const noexcept { return truth_.pnp.eg; }
  [[nodiscard]] double true_xti() const noexcept { return truth_.pnp.xti; }

 private:
  ProcessTruth truth_;
  std::uint64_t master_seed_;
};

}  // namespace icvbe::lab
