#pragma once
// LotCampaign: lot-level Monte-Carlo characterisation fanned across a
// thread pool.
//
// Each die of the lot gets its own Laboratory (own circuits, solver
// sessions, and instrument streams) seeded deterministically from
// (campaign seed, die index), so the per-die computation is a pure
// function of the configuration. Workers pull die indices from a shared
// counter and write into a preallocated, index-ordered result vector --
// the output is therefore bit-identical regardless of thread count
// (asserted by test_lot_campaign).

#include <cstdint>
#include <string>
#include <vector>

#include "icvbe/lab/campaign.hpp"
#include "icvbe/lab/silicon.hpp"

namespace icvbe::lab {

struct LotCampaignConfig {
  int samples = 25;          ///< number of dies characterised
  int first_index = 1;       ///< lot index of the first die
  unsigned threads = 0;      ///< worker threads; 0 = hardware_concurrency

  /// Batched lot solver: lanes > 1 makes run() group dies into lanes-wide
  /// batches per worker, sharing one sparse pattern + symbolic analysis
  /// per rig and carrying all lanes through each LU refactor/solve
  /// together (BatchDcSession) instead of building fresh circuits and
  /// sessions per die. Requires lab.newton.sparse == kSparse (the batch
  /// engine is sparse; forcing the per-die path onto the same engine is
  /// what keeps the two paths bit-identical). 0 or 1 = classic per-die
  /// path. Results are bit-identical for any lanes value and any thread
  /// count (asserted by test_lot_batch and bench_lot_statistics).
  unsigned lanes = 0;

  /// Per-die instrument master seed is `seed_base + die index` (the same
  /// convention the serial lot studies used).
  std::uint64_t seed_base = 9000;

  /// Chamber settings for the classical method (VBE(T) of the single DUT).
  std::vector<double> classical_celsius{-50.0, -25.0, 0.0,  25.0,
                                        50.0,  75.0,  100.0, 125.0};
  double classical_ic = 1e-6;  ///< forced collector current [A]

  /// Chamber settings for the analytical (Meijer) method; exactly three.
  std::vector<double> cell_celsius{-25.0, 25.0, 75.0};

  bool run_classical = true;  ///< classical best-fit EG
  bool run_meijer = true;     ///< analytical EG/XTI + temperature check

  CampaignConfig lab;  ///< base lab config (its seed is overridden per die)
};

/// Everything recorded for one die. `ok == false` carries the error text
/// instead of results (a die whose campaign failed does not poison the
/// lot; it is excluded from the summary).
struct DieCharacterisation {
  int index = 0;               ///< lot index of this die
  bool ok = false;
  std::string error;
  bool has_classical = false;  ///< classical fields below are populated
  bool has_meijer = false;     ///< analytical fields below are populated

  // Classical method (run_classical).
  double eg_classical = 0.0;

  // Analytical method (run_meijer), with computed (C3) and sensor-measured
  // (C2) temperatures.
  double eg_meijer = 0.0;      ///< C3
  double xti_meijer = 0.0;     ///< C3
  double eg_measured_t = 0.0;  ///< C2
  double xti_measured_t = 0.0; ///< C2
  double delta_t1 = 0.0;       ///< T_measured - T_computed at the cold point
  double delta_t3 = 0.0;       ///< ... at the hot point
  std::vector<CellPoint> cell; ///< raw test-cell observations
};

/// Order statistics of one extracted quantity across the lot.
struct LotStatistic {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (÷(N-1); 0 if N < 2)
  double min = 0.0;
  double max = 0.0;
  double q10 = 0.0;
  double q50 = 0.0;
  double q90 = 0.0;

  [[nodiscard]] static LotStatistic of(std::vector<double> values);
};

struct LotSummary {
  int dies_ok = 0;
  int dies_failed = 0;
  LotStatistic eg_classical;
  LotStatistic eg_meijer;
  LotStatistic xti_meijer;
  LotStatistic delta_t1;
  LotStatistic delta_t3;
};

class LotCampaign {
 public:
  explicit LotCampaign(SiliconLot lot, LotCampaignConfig config = {});

  /// Characterise every die, fanning across the configured thread pool.
  /// Results are ordered by die index and independent of thread count.
  /// With config().lanes > 1, dispatches to run_batched().
  [[nodiscard]] std::vector<DieCharacterisation> run() const;

  /// The batched lot path: workers claim groups of `lanes` consecutive
  /// dies and drive them through shared-analysis BatchDcSessions (one
  /// ibias rig batch, one cell rig batch per worker), re-programming the
  /// lane circuits per die instead of rebuilding them. Any lane that
  /// leaves the lockstep (pivot rejection, non-convergence in plain
  /// Newton, any measurement error) falls back to the per-die run_die()
  /// for that die, so every result is bit-identical to run() with
  /// lanes == 0 under the same (sparse-forced) solver options.
  /// \pre config().lab.newton.sparse == SparseMode::kSparse (throws
  ///      Error otherwise).
  [[nodiscard]] std::vector<DieCharacterisation> run_batched() const;

  /// Characterise a single die (what each worker runs). Deterministic in
  /// (lot, config, die_offset).
  [[nodiscard]] DieCharacterisation run_die(int die_offset) const;

  /// Aggregate statistics over the ok dies.
  [[nodiscard]] static LotSummary summarise(
      const std::vector<DieCharacterisation>& dies);

  [[nodiscard]] const SiliconLot& lot() const noexcept { return lot_; }
  [[nodiscard]] const LotCampaignConfig& config() const noexcept {
    return config_;
  }

 private:
  SiliconLot lot_;
  LotCampaignConfig config_;
};

}  // namespace icvbe::lab
