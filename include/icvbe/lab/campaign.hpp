#pragma once
// Measurement campaigns: the lab procedures of the paper's section 5, run
// against the virtual silicon. Each campaign returns what the *operator*
// records (sensor readings, SMU readings); ground-truth die temperatures are
// carried alongside for test validation only and are never consumed by the
// extraction code.

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "icvbe/bandgap/test_cell.hpp"
#include "icvbe/common/series.hpp"
#include "icvbe/lab/instruments.hpp"
#include "icvbe/lab/silicon.hpp"
#include "icvbe/spice/sim_session.hpp"

namespace icvbe::lab {

/// Campaign-level configuration.
struct CampaignConfig {
  std::uint64_t seed = 7;          ///< instrument-error master seed
  Pt100Sensor::Spec sensor_spec;   ///< pt100 behaviour
  SmuChannel::Spec smu_spec;       ///< HP4156 channel behaviour
  bool ideal_instruments = false;  ///< true: no instrument error at all
  bool ideal_thermal = false;      ///< true: die temperature == chamber
  bandgap::TestCellParams cell;    ///< cell electricals (models overwritten
                                   ///< from the DieSample)
  /// Solver options for every measurement rig the laboratory builds. The
  /// default (auto engine selection) keeps historical behaviour; lot runs
  /// that use the batched lane path force sparse here so the per-die and
  /// batched factorisations share one engine and stay bit-identical.
  spice::NewtonOptions newton;
};

/// One VBE(T) observation on the single DUT (classical-method input).
struct VbePoint {
  double t_sensor = 0.0;   ///< recorded temperature [K]
  double vbe = 0.0;        ///< measured base-emitter voltage [V]
  double ic = 0.0;         ///< measured collector current [A]
  double t_die_true = 0.0; ///< ground truth [K] -- validation only
};

/// One test-cell observation (Meijer-method input / Fig. 8 point).
struct CellPoint {
  double t_sensor = 0.0;
  double vbe_qa = 0.0;     ///< pad P4 reading [V]
  double vbe_qb = 0.0;     ///< pad P5 reading [V]
  double delta_vbe = 0.0;  ///< vbe_qa - vbe_qb as measured
  double ic_qa = 0.0;      ///< branch current of QA [A] (measured)
  double ic_qb = 0.0;      ///< branch current of QB [A] (measured)
  double vref = 0.0;       ///< reference output [V] (measured)
  double t_die_true = 0.0; ///< ground truth [K] -- validation only
};

/// A laboratory session bound to one die sample. Instruments are drawn at
/// construction (one calibration cycle per session).
class Laboratory {
 public:
  Laboratory(DieSample sample, CampaignConfig config = {});

  /// Fig. 5: the IC(VBE) family of the single DUT. One Series per chamber
  /// temperature; x = VBE [V], y = IC [A]. VCB is held at 0 (the
  /// diode-connected saturation-limit bias of the cell).
  [[nodiscard]] std::vector<Series> icvbe_family(
      const std::vector<double>& chamber_celsius, double vbe_min,
      double vbe_max, int points);

  /// Classical-method input: VBE(T) of the single DUT at a forced collector
  /// current, across chamber settings.
  [[nodiscard]] std::vector<VbePoint> vbe_vs_temperature(
      double ic_amps, const std::vector<double>& chamber_celsius);

  /// Meijer-method input + Fig. 8 measured curve: full test-cell sweep.
  /// `radja_ohms` programs the trim resistor (0 = untrimmed).
  [[nodiscard]] std::vector<CellPoint> test_cell_sweep(
      const std::vector<double>& chamber_celsius, double radja_ohms = 0.0);

  /// VREF(T) as a Series (x = chamber Celsius, y = VREF [V]).
  [[nodiscard]] Series vref_curve(const std::vector<double>& chamber_celsius,
                                  double radja_ohms = 0.0);

  [[nodiscard]] const DieSample& sample() const noexcept { return sample_; }
  [[nodiscard]] const CampaignConfig& config() const noexcept {
    return config_;
  }

 private:
  /// Die temperature for a chamber setting and chip power.
  [[nodiscard]] double die_temperature(double chamber_kelvin,
                                       double power_watts) const;

  /// Build a fresh test-cell circuit for this sample.
  [[nodiscard]] bandgap::TestCellHandles build_cell(spice::Circuit& circuit,
                                                    double radja_ohms) const;

  // Persistent measurement rigs. Each circuit is built once per laboratory
  // session and re-biased between measurements; the SimSession keeps the
  // solver workspace and warm-start continuation alive across the whole
  // campaign. unique_ptr keeps the circuit address stable (the session
  // holds a reference into it).
  struct CellRig {
    spice::Circuit circuit;
    bandgap::TestCellHandles handles;
    std::optional<spice::SimSession> session;
  };
  struct DutRig {
    spice::Circuit circuit;
    spice::NodeId emitter = spice::kGround;
    std::optional<spice::SimSession> session;
  };

  /// Test cell with RADJA programmed to `radja_ohms` (built on first use).
  [[nodiscard]] CellRig& cell_rig(double radja_ohms);
  /// Voltage-driven DUT (IC(VBE) families; built on first use).
  [[nodiscard]] DutRig& vbias_rig();
  /// Current-driven diode-connected DUT (VBE(T); built on first use).
  [[nodiscard]] DutRig& ibias_rig();

  DieSample sample_;
  CampaignConfig config_;
  Pt100Sensor sensor_;
  SmuChannel smu_vbe_;   ///< channel on the DUT / pad P4
  SmuChannel smu_pad_;   ///< channel on pad P5
  SmuChannel smu_aux_;   ///< channel for VREF and currents
  std::unique_ptr<CellRig> cell_;
  std::unique_ptr<DutRig> vbias_;
  std::unique_ptr<DutRig> ibias_;
};

}  // namespace icvbe::lab
