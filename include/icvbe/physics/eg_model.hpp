#pragma once
// Temperature models of the silicon energy band gap EG(T).
//
// The paper's Fig. 1 compares five models (eqs. 7-9):
//   eq. (7)  linear:            EG(T) = EG(Tref) - a (T - Tref)
//   eq. (8)  Varshni [Varshni67, ref 8]: EG(T) = EG(0) - alpha T^2 / (T + beta)
//   eq. (9)  Thurmond-log [Thurmond75 / Gambetta-Celi, refs 6-7]:
//            EG(T) = EG(0) + a T + b T ln T
// The log-form (9) is the one compatible with the SPICE IS(T) expression
// (eq. 1) -- that compatibility is established in identify_spice_params().

#include <memory>
#include <string>

namespace icvbe::physics {

/// Interface: band gap [eV] as a function of absolute temperature [K].
class EgModel {
 public:
  virtual ~EgModel() = default;

  /// EG at absolute temperature T [K], in eV.
  [[nodiscard]] virtual double eg(double t_kelvin) const = 0;

  /// dEG/dT at T [eV/K] (analytic in every concrete model).
  [[nodiscard]] virtual double deg_dt(double t_kelvin) const = 0;

  /// Extrapolated band gap at 0 K implied by the tangent at T:
  /// EG0(T) = EG(T) - T dEG/dT. For the log model this is the effective
  /// "EG0" a bandgap-reference designer sees; the paper calls the EG5
  /// tangent extrapolation "EG0" in Fig. 1.
  [[nodiscard]] double tangent_intercept_at_zero(double t_kelvin) const {
    return eg(t_kelvin) - t_kelvin * deg_dt(t_kelvin);
  }

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual std::unique_ptr<EgModel> clone() const = 0;
};

/// eq. (7): EG(T) = eg_ref - a (T - t_ref). The paper's EG1 is the
/// linearisation of EG5 around the chosen reference temperature.
class LinearEgModel final : public EgModel {
 public:
  LinearEgModel(double eg_ref, double slope_a, double t_ref,
                std::string name = "EG linear");

  [[nodiscard]] double eg(double t_kelvin) const override;
  [[nodiscard]] double deg_dt(double t_kelvin) const override;
  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] std::unique_ptr<EgModel> clone() const override;

  [[nodiscard]] double slope() const noexcept { return a_; }

 private:
  double eg_ref_;
  double a_;
  double t_ref_;
  std::string name_;
};

/// eq. (8): EG(T) = EG(0) - alpha T^2 / (T + beta)   (Varshni form).
class VarshniEgModel final : public EgModel {
 public:
  VarshniEgModel(double eg0, double alpha, double beta,
                 std::string name = "EG Varshni");

  [[nodiscard]] double eg(double t_kelvin) const override;
  [[nodiscard]] double deg_dt(double t_kelvin) const override;
  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] std::unique_ptr<EgModel> clone() const override;

  [[nodiscard]] double eg0() const noexcept { return eg0_; }
  [[nodiscard]] double alpha() const noexcept { return alpha_; }
  [[nodiscard]] double beta() const noexcept { return beta_; }

 private:
  double eg0_;
  double alpha_;
  double beta_;
  std::string name_;
};

/// eq. (9): EG(T) = EG(0) + a T + b T ln(T)   (Thurmond / Gambetta-Celi).
/// This is the only form for which the Boltzmann ni(T) expression (eq. 6)
/// collapses back to the SPICE IS(T) power law (eq. 1).
class LogEgModel final : public EgModel {
 public:
  LogEgModel(double eg0, double a, double b, std::string name = "EG log");

  [[nodiscard]] double eg(double t_kelvin) const override;
  [[nodiscard]] double deg_dt(double t_kelvin) const override;
  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] std::unique_ptr<EgModel> clone() const override;

  [[nodiscard]] double eg0() const noexcept { return eg0_; }
  [[nodiscard]] double a() const noexcept { return a_; }
  [[nodiscard]] double b() const noexcept { return b_; }

 private:
  double eg0_;
  double a_;
  double b_;
  std::string name_;
};

/// Passler's analytic model (Phys. Rev. B 66, 085201 (2002)):
///   EG(T) = EG(0) - (alpha Theta / 2) [ (1 + (2T/Theta)^p)^(1/p) - 1 ].
/// Contemporary with the paper and free of the Varshni low-T artefacts;
/// included as the modern comparison point in the Fig.-1 bench.
class PasslerEgModel final : public EgModel {
 public:
  PasslerEgModel(double eg0, double alpha, double theta, double p,
                 std::string name = "EG Passler");

  [[nodiscard]] double eg(double t_kelvin) const override;
  [[nodiscard]] double deg_dt(double t_kelvin) const override;
  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] std::unique_ptr<EgModel> clone() const override;

 private:
  double eg0_;
  double alpha_;
  double theta_;
  double p_;
  std::string name_;
};

// ---------------------------------------------------------------------------
// The five curves of the paper's Fig. 1, with the exact published constants.
// ---------------------------------------------------------------------------

/// EG2(T): Varshni with alpha=7.021e-4 V/K, beta=1108 K, EG(0)=1.1557 eV
/// (Varshni's own silicon fit, paper ref [8]).
[[nodiscard]] VarshniEgModel make_eg2();

/// EG3(T): Varshni with alpha=4.73e-4 V/K, beta=636 K, EG(0)=1.170 eV
/// (Thurmond's recommended Varshni constants, paper ref [7]).
[[nodiscard]] VarshniEgModel make_eg3();

/// EG4(T): log model with EG(0)=1.1663 eV, a=6.141e-4 V/K, b=-1.307e-4
/// (Gambetta-Celi, paper ref [6]).
[[nodiscard]] LogEgModel make_eg4();

/// EG5(T): log model with EG(0)=1.1774 eV, a=3.042e-4 V/K, b=-8.459e-5
/// (Gambetta-Celi, paper ref [6]; the paper's preferred curve).
[[nodiscard]] LogEgModel make_eg5();

/// EG1(T): the linearisation (eq. 7) of EG5 at the reference temperature
/// t_ref (the paper draws it tangent from the chosen reference; default
/// 300 K).
[[nodiscard]] LinearEgModel make_eg1(double t_ref = 300.0);

/// Passler's silicon parameters: EG(0) = 1.1701 eV, alpha = 3.23e-4 eV/K,
/// Theta = 446 K, p = 2.33.
[[nodiscard]] PasslerEgModel make_passler_si();

/// The tangent-extrapolated "EG0" of EG5 at t_ref -- the uppermost marker in
/// Fig. 1 (about 1.2 eV), showing how far the linear extrapolation overshoots
/// the true 0 K gap.
[[nodiscard]] double eg0_extrapolated(double t_ref = 300.0);

}  // namespace icvbe::physics
