#pragma once
// Closed-form VBE(T) temperature model -- the working equation of the
// classical extraction (paper eq. 13) and of the Meijer equations (14)-(15).
//
// Development from eq. (1) with IC = IS(T) exp(VBE / VT):
//
//   VBE(T) = EG (1 - T/T0) + (T/T0) VBE(T0)
//            - XTI (kT/q) ln(T/T0) + (kT/q) ln(IC(T)/IC(T0))
//
// which is *linear in (EG, XTI)* -- "EG and XTI can be determined directly
// from VBE(T) using least square fit without iteration" (paper section 3).
// The optional reverse-Early (VAR) factors of the printed eq. (13) are
// available via `early_correction`.

#include "icvbe/common/constants.hpp"

namespace icvbe::physics {

/// Parameters of the closed-form VBE(T) law.
struct VbeModelParams {
  double eg = 1.17;        ///< effective bandgap voltage [V]
  double xti = 3.0;        ///< saturation-current temperature exponent
  double t0 = 298.15;      ///< reference temperature [K]
  double vbe_t0 = 0.65;    ///< VBE at the reference temperature [V]
};

/// VBE at temperature T for collector-current ratio ic_ratio = IC(T)/IC(T0).
/// ic_ratio = 1 reproduces the constant-current case used by the fits.
[[nodiscard]] double vbe_of_t(const VbeModelParams& p, double t_kelvin,
                              double ic_ratio = 1.0);

/// d VBE / dT at T, constant collector current [V/K]. Used for the
/// CTAT-slope analyses and the self-heating error model.
[[nodiscard]] double dvbe_dt(const VbeModelParams& p, double t_kelvin);

/// PTAT difference of two matched BJTs running at equal collector current
/// with emitter-area ratio `area_ratio` (paper Fig. 2):
/// dVBE(T) = (kT/q) ln(area_ratio).
[[nodiscard]] double delta_vbe_ptat(double t_kelvin, double area_ratio);

/// PTAT difference with unequal collector currents (the eq. 17-18
/// situation): dVBE = (kT/q) ln(area_ratio * icA/icB).
[[nodiscard]] double delta_vbe_general(double t_kelvin, double area_ratio,
                                       double ic_a, double ic_b);

/// Reverse-Early correction factor (VAR - VBE(T0)) / (VAR - VBE(T)) of the
/// printed eq. (13). Multiplies the T/T0 * VBE(T0) term; returns 1 when
/// var_volts is +infinity (no correction).
[[nodiscard]] double early_correction(double var_volts, double vbe_t0,
                                      double vbe_t);

/// Left-hand side of the Meijer identity, eq. (14):
///   T2 VBE(T1) - T1 VBE(T2)  ==  EG (T2 - T1) + XTI (k T1 T2 / q) ln(T2/T1)
/// Helpers to build each side; used by both the extractor and the tests.
struct MeijerEquation {
  double lhs = 0.0;       ///< T_b * VBE(T_a) - T_a * VBE(T_b)
  double coeff_eg = 0.0;  ///< (T_b - T_a)
  double coeff_xti = 0.0; ///< (k T_a T_b / q) ln(T_b / T_a)
};

/// Assemble eq. (14) for the temperature pair (t_a, t_b) and the measured
/// VBE values at those temperatures.
[[nodiscard]] MeijerEquation meijer_equation(double t_a, double vbe_a,
                                             double t_b, double vbe_b);

}  // namespace icvbe::physics
