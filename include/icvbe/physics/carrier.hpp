#pragma once
// Intrinsic carrier statistics and doping-induced bandgap narrowing.
//
// eq. (6):  ni^2(T) = ni^2(T0) (T/T0)^3 exp(-(EG(T)/kT - EG(T0)/kT0))
// eq. (3):  nie^2(T) = ni^2(T) exp(+dEGbgn / kT)
// Bandgap narrowing dEGbgn is ~45 meV in highly-doped Si emitters and up to
// ~150 meV in SiGe HBTs (paper section 1 / ref [2]); the Slotboom model
// below covers the doping dependence.

#include "icvbe/physics/eg_model.hpp"

namespace icvbe::physics {

/// Reference intrinsic concentration of silicon at 300 K [cm^-3]. Used only
/// to anchor absolute magnitudes; the extraction math uses ratios.
inline constexpr double kNi300 = 9.65e9;

/// ni^2(T) per eq. (6), anchored at ni(300 K) = kNi300, with the band gap
/// supplied by `eg`. Units: cm^-6.
[[nodiscard]] double ni_squared(const EgModel& eg, double t_kelvin);

/// Effective (narrowing-corrected) nie^2(T) per eq. (3):
/// nie^2 = ni^2 exp(dEGbgn_ev / (kT/q)).
[[nodiscard]] double nie_squared(const EgModel& eg, double t_kelvin,
                                 double delta_eg_bgn_ev);

/// Slotboom-de Graaff bandgap narrowing [eV] for acceptor doping na_cm3.
/// dEG = V1 ( ln(N/N0) + sqrt(ln^2(N/N0) + 0.5) ), V1 = 9 mV, N0 = 1e17.
/// Returns 0 below the onset doping.
[[nodiscard]] double slotboom_bandgap_narrowing(double na_cm3);

/// Temperature-dependent base transport quantities (eqs. 4-5).
struct BaseTransport {
  double dnb_t0 = 12.0;   ///< electron diffusion constant at T0 [cm^2/s]
  double gummel_t0 = 1.0e13;  ///< Gummel number at T0 [cm^-2] (integral of Nab)
  double en = 0.42;       ///< mobility temperature exponent EN (eq. 4)
  double erho = 0.11;     ///< Gummel-number temperature exponent Erho (eq. 5)
  double t0 = 300.0;      ///< reference temperature [K]

  /// Dnb(T) = Dnb(T0) (T/T0)^(1-EN)  (eq. 4, via Einstein relation).
  [[nodiscard]] double dnb(double t_kelvin) const;

  /// Gummel number NG(T) = NG(T0) (T/T0)^Erho  (eq. 5).
  [[nodiscard]] double gummel_number(double t_kelvin) const;
};

}  // namespace icvbe::physics
