#pragma once
// Saturation-current temperature models.
//
// Two routes to IS(T):
//  * the SPICE compact form (eq. 1) parameterised by (EG, XTI) -- what the
//    simulator and the extraction methods use;
//  * the Gummel-Poon physical form (eqs. 2-11) built from doping, mobility
//    and band-structure quantities -- the "ground truth" physics.
// eq. (12) identifies the two:  EG = EG(0) - dEGbgn,
//                               XTI = 4 - EN - Erho - b/k.

#include "icvbe/physics/carrier.hpp"
#include "icvbe/physics/eg_model.hpp"

namespace icvbe::physics {

/// SPICE saturation-current temperature law, eq. (1):
/// IS(T) = IS(T0) (T/T0)^XTI exp( (q EG / k) (1/T0 - 1/T) ).
/// `eg_ev` in eV; `t0` in K.
[[nodiscard]] double spice_is(double is_t0, double eg_ev, double xti,
                              double t_kelvin, double t0);

/// Natural log of eq. (1) (numerically safe for tiny IS).
[[nodiscard]] double spice_log_is(double log_is_t0, double eg_ev, double xti,
                                  double t_kelvin, double t0);

/// The (EG, XTI) pair that makes eq. (1) reproduce the physical model, per
/// eq. (12).
struct SpiceIsParams {
  double eg = 1.17;   ///< effective gap [eV], EG(0) - dEGbgn
  double xti = 3.0;   ///< temperature exponent
};

/// eq. (12): identify SPICE (EG, XTI) from the physical constants.
/// `b_ev_per_k` is the log-model coefficient b of eq. (9) in eV/K (the
/// published values are given in V = eV for carrier energy), EN and Erho the
/// exponents of eqs. (4)-(5), dEGbgn the bandgap narrowing in eV.
[[nodiscard]] SpiceIsParams identify_spice_params(double eg0_ev,
                                                  double delta_eg_bgn_ev,
                                                  double en, double erho,
                                                  double b_ev_per_k);

/// Gummel-Poon physical saturation current (eqs. 2, 11):
/// IS(T) = q Ae nie^2(T) Dnb(T) / NG(T).
/// Built from an EG(T) log model, bandgap narrowing and BaseTransport; also
/// exposes the exact power-law + activation decomposition of eq. (11).
class GummelPoonIsModel {
 public:
  GummelPoonIsModel(LogEgModel eg_model, double delta_eg_bgn_ev,
                    BaseTransport transport, double emitter_area_cm2);

  /// IS at temperature T [A], eq. (2) evaluated with eqs. (3)-(6).
  [[nodiscard]] double is(double t_kelvin) const;

  /// IS(T)/IS(T0) computed *directly from eq. (11)* -- the closed form the
  /// paper derives. Tests verify is(T)/is(T0) matches this to rounding.
  [[nodiscard]] double is_ratio_closed_form(double t_kelvin) const;

  /// The equivalent SPICE parameters per eq. (12).
  [[nodiscard]] SpiceIsParams spice_params() const;

  [[nodiscard]] double t0() const noexcept { return transport_.t0; }
  [[nodiscard]] const LogEgModel& eg_model() const noexcept {
    return eg_model_;
  }
  [[nodiscard]] double delta_eg_bgn() const noexcept {
    return delta_eg_bgn_ev_;
  }

  /// Relative sensitivity of IS to temperature, (1/IS) dIS/dT [1/K].
  /// The paper (ref [12]) quotes ~20 %/K near room temperature -- which is
  /// why extracting from IS(T) regressions is hopeless compared to VBE(T).
  [[nodiscard]] double relative_sensitivity(double t_kelvin) const;

 private:
  LogEgModel eg_model_;
  double delta_eg_bgn_ev_;
  BaseTransport transport_;
  double area_cm2_;
};

}  // namespace icvbe::physics
