#pragma once
// Deterministic random number generation for the virtual laboratory.
//
// Every stochastic component (instrument noise, process spread, sensor
// error) draws from an icvbe::Rng seeded from a campaign-level master seed,
// so every experiment in the repository is exactly reproducible run-to-run.

#include <cstdint>
#include <random>

namespace icvbe {

/// Thin deterministic wrapper over a 64-bit Mersenne twister with the draw
/// helpers the lab needs. Copyable (copies fork the stream state).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x1CEB00DAULL) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Standard normal draw scaled to the given sigma and mean.
  [[nodiscard]] double gaussian(double mean, double sigma) {
    return std::normal_distribution<double>(mean, sigma)(engine_);
  }

  /// Multiplicative lognormal-ish process spread: returns a factor
  /// exp(N(0, sigma_rel)) ~ 1 +/- sigma_rel for small sigma.
  [[nodiscard]] double spread_factor(double sigma_rel) {
    return std::exp(gaussian(0.0, sigma_rel));
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::uint64_t integer(std::uint64_t lo, std::uint64_t hi) {
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
  }

  /// Derive an independent child stream (e.g. one per lot sample). Uses
  /// splitmix-style scrambling of (seed, index) so children do not collide.
  [[nodiscard]] static Rng child(std::uint64_t master_seed,
                                 std::uint64_t index) {
    std::uint64_t z = master_seed + 0x9E3779B97F4A7C15ULL * (index + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return Rng(z ^ (z >> 31));
  }

 private:
  std::mt19937_64 engine_;
};

}  // namespace icvbe
