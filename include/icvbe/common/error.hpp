#pragma once
// Error handling for the icvbe library.
//
// Library code throws icvbe::Error (or a subclass) on contract violation or
// numerical failure. ICVBE_REQUIRE is used to validate user-facing
// preconditions; internal invariants use assert-like ICVBE_ASSERT which also
// throws (simulation code must never silently return garbage).

#include <stdexcept>
#include <string>

namespace icvbe {

/// Base class for all errors raised by the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when a numerical routine fails to converge or a matrix is
/// singular beyond recoverability.
class NumericalError : public Error {
 public:
  explicit NumericalError(const std::string& what) : Error(what) {}
};

/// Raised on malformed circuit construction (dangling node, duplicate
/// device name, missing ground reference, ...).
class CircuitError : public Error {
 public:
  explicit CircuitError(const std::string& what) : Error(what) {}
};

/// Raised when a measurement campaign is asked for data it cannot produce
/// (temperature outside chamber range, current above SMU compliance, ...).
class MeasurementError : public Error {
 public:
  explicit MeasurementError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throw_requirement_failed(const char* expr, const char* file,
                                           int line, const std::string& msg);
}  // namespace detail

}  // namespace icvbe

/// Validate a user-facing precondition; throws icvbe::Error on failure.
#define ICVBE_REQUIRE(expr, msg)                                         \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::icvbe::detail::throw_requirement_failed(#expr, __FILE__,         \
                                                __LINE__, (msg));        \
    }                                                                    \
  } while (false)

/// Internal invariant check; also throws (never disabled in release --
/// silent corruption is worse than an exception in EDA code).
#define ICVBE_ASSERT(expr, msg) ICVBE_REQUIRE(expr, msg)
