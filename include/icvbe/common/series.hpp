#pragma once
// Series: an ordered (x, y) dataset -- the lingua franca between the SPICE
// engine (sweep outputs), the virtual lab (measured characteristics) and the
// extraction core (fit inputs).

#include <cstddef>
#include <string>
#include <vector>

namespace icvbe {

/// A named, ordered sequence of (x, y) samples. x is typically temperature
/// [K] or voltage [V]; y a voltage or current. No uniqueness or monotonic
/// requirement is imposed at construction; routines that need sorted x say
/// so and verify.
class Series {
 public:
  Series() = default;
  explicit Series(std::string name) : name_(std::move(name)) {}
  Series(std::string name, std::vector<double> x, std::vector<double> y);

  void push_back(double x, double y);
  void reserve(std::size_t n);
  void clear();

  [[nodiscard]] std::size_t size() const noexcept { return x_.size(); }
  [[nodiscard]] bool empty() const noexcept { return x_.empty(); }

  [[nodiscard]] double x(std::size_t i) const { return x_.at(i); }
  [[nodiscard]] double y(std::size_t i) const { return y_.at(i); }
  [[nodiscard]] const std::vector<double>& xs() const noexcept { return x_; }
  [[nodiscard]] const std::vector<double>& ys() const noexcept { return y_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// True if x is strictly increasing.
  [[nodiscard]] bool x_strictly_increasing() const noexcept;

  /// Linear interpolation of y at the given x. Requires at least two
  /// samples and strictly increasing x; extrapolates linearly beyond the
  /// ends (callers in the extraction code stay inside the range).
  [[nodiscard]] double interpolate(double at_x) const;

  /// Index of the sample whose x is closest to `at_x`.
  [[nodiscard]] std::size_t nearest_index(double at_x) const;

  [[nodiscard]] double min_y() const;
  [[nodiscard]] double max_y() const;
  [[nodiscard]] double min_x() const;
  [[nodiscard]] double max_x() const;

  /// Return a copy with y values transformed by natural log. Throws if any
  /// y <= 0 (used to plot Fig. 5 on a log current axis).
  [[nodiscard]] Series log_y() const;

  /// Return a copy sorted by ascending x (stable).
  [[nodiscard]] Series sorted_by_x() const;

 private:
  std::string name_;
  std::vector<double> x_;
  std::vector<double> y_;
};

}  // namespace icvbe
