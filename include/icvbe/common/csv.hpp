#pragma once
// Shared CSV writing for sweep outputs: one place for the header + row
// formatting that the CLI, benches, and SweepResult all need, instead of
// per-call-site hand-rolled printf loops.

#include <iosfwd>
#include <string>
#include <vector>

#include "icvbe/common/series.hpp"

namespace icvbe::csv {

/// Write `header,..` then one row per index across the columns. All
/// columns must have equal length. Values are written with %g-style
/// shortest formatting at 6 significant digits.
void write_columns(std::ostream& os, const std::vector<std::string>& header,
                   const std::vector<const std::vector<double>*>& columns);

/// Write a Series as a two-column CSV with the given header labels.
void write_series(std::ostream& os, const Series& series,
                  const std::string& x_label, const std::string& y_label);

}  // namespace icvbe::csv
