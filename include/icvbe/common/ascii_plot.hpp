#pragma once
// AsciiPlot: renders one or more Series as a text chart. Used by the bench
// binaries to show the *shape* of each reproduced figure directly in the
// terminal (bell curve vs monotonic rise, straight lines, decade families).

#include <iosfwd>
#include <string>
#include <vector>

#include "icvbe/common/series.hpp"

namespace icvbe {

/// Options controlling chart geometry and axes.
struct AsciiPlotOptions {
  int width = 72;        ///< plot area width in characters
  int height = 20;       ///< plot area height in characters
  bool log_y = false;    ///< plot log10(y) instead of y
  std::string x_label;   ///< label under the x axis
  std::string y_label;   ///< label left of the y axis (printed above)
  std::string title;     ///< printed above the chart
};

/// Multi-series ASCII chart. Each series gets a distinct glyph and a legend
/// entry. Axis ranges cover the union of all series.
class AsciiPlot {
 public:
  explicit AsciiPlot(AsciiPlotOptions options = {});

  /// Add a series; glyph '\0' auto-assigns from a palette.
  void add(const Series& series, char glyph = '\0');

  /// Render to the stream.
  void print(std::ostream& os) const;

 private:
  AsciiPlotOptions options_;
  std::vector<Series> series_;
  std::vector<char> glyphs_;
};

}  // namespace icvbe
