#pragma once
// Shared threading primitives.
//
// Two shapes of concurrency exist in the repository and both live here:
//
//  * fan_out(): the one-shot deterministic fanout the parallel analysis
//    paths use (plan.cpp 2-axis rows, plan.cpp AC frequency points,
//    lab::LotCampaign dies). N workers run the same callable to
//    completion; the callable pulls work indices from a caller-owned
//    atomic counter and writes only its own preallocated result slots, so
//    results are bit-identical for any worker count -- scheduling decides
//    who computes an item, never what it yields. fan_out only owns the
//    thread lifecycle and exception capture; the deterministic work
//    partitioning stays at the call site.
//
//  * ThreadPool: a persistent pool with a job queue, built for the
//    long-lived SimServer -- analyses arrive over connections at any time
//    and execute asynchronously on whichever worker frees up first.
//    Determinism is not a pool property here: each submitted job is an
//    independent simulation run whose result is a pure function of its
//    inputs (the SimSession discipline), so which worker executes it is
//    irrelevant.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace icvbe::common {

/// Resolve a thread-count request: 0 = hardware_concurrency (min 1).
[[nodiscard]] unsigned resolve_thread_count(unsigned requested) noexcept;

/// Run `worker` on `threads` threads and join them all. threads <= 1 runs
/// the callable inline on the calling thread (no spawn), which is what
/// keeps serial analysis paths on the session's own thread. If workers
/// throw, every worker still runs to completion and the first captured
/// exception is rethrown in the caller afterwards.
///
/// The callable is invoked once per worker and must be safe to run
/// concurrently with itself; deterministic work partitioning (shared
/// atomic counter + per-item result slots) is the caller's job.
void fan_out(unsigned threads, const std::function<void()>& worker);

/// Fixed-size worker pool over a FIFO job queue.
///
/// Thread-safety: submit() may be called from any thread, including from
/// inside a running job. Jobs must not block waiting for later-queued
/// jobs (the pool has no work stealing; that would deadlock a full pool).
/// Exceptions escaping a job are swallowed -- jobs own their error
/// reporting (the server wraps every run in a try block that turns
/// failures into protocol frames).
class ThreadPool {
 public:
  /// Spawn `threads` workers (0 = hardware_concurrency).
  explicit ThreadPool(unsigned threads);
  /// Drains: blocks until every queued and running job has finished,
  /// then joins the workers (same as stop_and_join()).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a job. Throws icvbe::Error if the pool is stopping.
  void submit(std::function<void()> job);

  /// Workers in the pool.
  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }
  /// Jobs queued but not yet started (snapshot).
  [[nodiscard]] std::size_t queued() const;
  /// Jobs currently executing (snapshot).
  [[nodiscard]] std::size_t running() const noexcept {
    return running_.load(std::memory_order_relaxed);
  }

  /// Stop accepting jobs, run the queue dry, join the workers.
  /// Idempotent. Queued jobs still execute -- a server shutdown first
  /// flips the per-run cancel flags, so drained jobs finish fast.
  void stop_and_join();

 private:
  void worker_loop();

  mutable std::mutex mutex_;
  std::mutex join_mutex_;  ///< serialises stop_and_join() callers
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::atomic<std::size_t> running_{0};
  bool stopping_ = false;
};

}  // namespace icvbe::common
