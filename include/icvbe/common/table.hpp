#pragma once
// Table: small utility for rendering benchmark results as aligned text
// tables (paper-style) and as CSV, so every bench binary can print the rows
// of the table/figure it reproduces.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace icvbe {

/// A rectangular table of strings with a header row. Cells are formatted by
/// the caller (use format_si / format_fixed below for numbers).
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a row; must match the header width.
  void add_row(std::vector<std::string> row);

  /// Number of data rows.
  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t cols() const noexcept { return header_.size(); }
  [[nodiscard]] const std::vector<std::string>& row(std::size_t i) const {
    return rows_.at(i);
  }

  /// Render as an aligned ASCII table.
  void print(std::ostream& os) const;

  /// Render as CSV (RFC-4180-ish; quotes cells containing commas).
  void print_csv(std::ostream& os) const;

  /// Write CSV to a file path, creating/truncating it.
  void write_csv(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed decimals (e.g. 1.2345 -> "1.23").
[[nodiscard]] std::string format_fixed(double v, int decimals);

/// Format with %g-style shortest representation at given significant digits.
[[nodiscard]] std::string format_sig(double v, int significant);

/// Engineering/scientific format, e.g. 1.2e-08.
[[nodiscard]] std::string format_sci(double v, int decimals);

}  // namespace icvbe
