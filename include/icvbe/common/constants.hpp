#pragma once
// Physical constants and derived helpers used throughout the library.
//
// All values follow CODATA-2018 exact definitions (SI redefinition), which
// is what modern SPICE engines ship. The paper's equations use q (electron
// charge), k (Boltzmann) and the thermal voltage VT = kT/q.

namespace icvbe {

/// Elementary charge [C] (exact, SI 2019).
inline constexpr double kElementaryCharge = 1.602176634e-19;

/// Boltzmann constant [J/K] (exact, SI 2019).
inline constexpr double kBoltzmann = 1.380649e-23;

/// Boltzmann constant expressed in eV/K: k/q. Appears in the XTI
/// identification of eq. (12), XTI = 4 - EN - Erho - b/k, where b is in
/// V/K and k must be in eV/K for the ratio to be dimensionless.
inline constexpr double kBoltzmannEv = kBoltzmann / kElementaryCharge;

/// Standard reference temperature used by SPICE model cards [K] (27 degC).
inline constexpr double kTnomKelvin = 300.15;

/// Absolute zero offset between Celsius and Kelvin.
inline constexpr double kCelsiusOffset = 273.15;

/// Thermal voltage VT = kT/q [V] at absolute temperature `t_kelvin`.
[[nodiscard]] constexpr double thermal_voltage(double t_kelvin) noexcept {
  return kBoltzmann * t_kelvin / kElementaryCharge;
}

/// Celsius -> Kelvin.
[[nodiscard]] constexpr double to_kelvin(double t_celsius) noexcept {
  return t_celsius + kCelsiusOffset;
}

/// Kelvin -> Celsius.
[[nodiscard]] constexpr double to_celsius(double t_kelvin) noexcept {
  return t_kelvin - kCelsiusOffset;
}

}  // namespace icvbe
