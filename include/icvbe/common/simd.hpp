#pragma once
// Portable fixed-width SIMD layer: a 4-lane double pack (DPack) over GCC /
// Clang vector extensions, with a plain-array scalar fallback selected at
// configure time (ICVBE_SIMD=OFF, or a compiler without the extensions).
// Both implementations perform the SAME elementwise IEEE-754 operations, so
// any kernel written against DPack produces bit-identical results in either
// build -- the determinism contract the batched lot solver depends on.
//
// Determinism / FMA contract: no operation here contracts a multiply-add
// into an FMA, and the project builds with -ffp-contract=off, so results do
// not depend on the target ISA (baseline x86-64 vs the -march=x86-64-v3 CI
// leg) or on ICVBE_SIMD. A pack op on lanes {a,b,c,d} is exactly the scalar
// op applied to a, b, c, d independently.
//
// vexp: a vectorizable exp(double) used by the junction stamping hot path
// (scalar and pack flavours share one algorithm, so the per-die fallback is
// bit-identical to the batched path). Accuracy: <= 4 ulp of std::exp over
// the full non-flushed range (property-tested in test_simd); outputs below
// the smallest normal (x < ~-708.396) flush to zero instead of producing
// subnormals -- numerically invisible for junction currents, where 1e-308 A
// is zero. Overflow (x > ~709.783) returns +inf; NaN propagates.

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <limits>

#if defined(ICVBE_SIMD) && (defined(__GNUC__) || defined(__clang__))
#define ICVBE_SIMD_VEXT 1
#endif

namespace icvbe::common {

/// True when DPack compiles to real vector registers (ICVBE_SIMD builds on
/// GCC/Clang); false in the scalar-fallback build. Benches use this to pick
/// the gate set for the build flavour.
inline constexpr bool kSimdEnabled =
#ifdef ICVBE_SIMD_VEXT
    true;
#else
    false;
#endif

/// Lanes per pack. Fixed at 4 doubles (one AVX2 register; two SSE2 ops on
/// baseline x86-64) so kernel tiling decisions are build-independent.
inline constexpr std::size_t kPackWidth = 4;

#ifdef ICVBE_SIMD_VEXT

/// 4 x double pack over compiler vector extensions. Unaligned loads/stores
/// (the lane planes are only 8-byte aligned); elementwise arithmetic only.
struct DPack {
  typedef double vec __attribute__((vector_size(4 * sizeof(double))));
  typedef long long ivec __attribute__((vector_size(4 * sizeof(long long))));
  vec v;

  static DPack load(const double* p) noexcept {
    DPack r;
    std::memcpy(&r.v, p, sizeof(vec));
    return r;
  }
  static DPack broadcast(double x) noexcept { return DPack{vec{x, x, x, x}}; }
  static DPack zero() noexcept { return DPack{vec{}}; }
  void store(double* p) const noexcept { std::memcpy(p, &v, sizeof(vec)); }
  double operator[](std::size_t i) const noexcept {
    return v[static_cast<int>(i)];
  }

  friend DPack operator+(DPack a, DPack b) noexcept { return {a.v + b.v}; }
  friend DPack operator-(DPack a, DPack b) noexcept { return {a.v - b.v}; }
  friend DPack operator*(DPack a, DPack b) noexcept { return {a.v * b.v}; }
  friend DPack operator/(DPack a, DPack b) noexcept { return {a.v / b.v}; }

  static DPack min(DPack a, DPack b) noexcept {
    return {a.v < b.v ? a.v : b.v};
  }
  static DPack max(DPack a, DPack b) noexcept {
    return {a.v > b.v ? a.v : b.v};
  }
  static DPack abs(DPack a) noexcept {
    const ivec m = {0x7fffffffffffffffLL, 0x7fffffffffffffffLL,
                    0x7fffffffffffffffLL, 0x7fffffffffffffffLL};
    return {std::bit_cast<vec>(std::bit_cast<ivec>(a.v) & m)};
  }
  /// Per lane: a > b ? t : f. The comparison is false on NaN, matching the
  /// scalar `a > b ? t : f` exactly.
  static DPack select_gt(DPack a, DPack b, DPack t, DPack f) noexcept {
    return {a.v > b.v ? t.v : f.v};
  }
};

#else  // scalar fallback: same elementwise semantics, plain arrays

struct DPack {
  double v[kPackWidth];

  static DPack load(const double* p) noexcept {
    DPack r;
    for (std::size_t i = 0; i < kPackWidth; ++i) r.v[i] = p[i];
    return r;
  }
  static DPack broadcast(double x) noexcept {
    DPack r;
    for (std::size_t i = 0; i < kPackWidth; ++i) r.v[i] = x;
    return r;
  }
  static DPack zero() noexcept { return broadcast(0.0); }
  void store(double* p) const noexcept {
    for (std::size_t i = 0; i < kPackWidth; ++i) p[i] = v[i];
  }
  double operator[](std::size_t i) const noexcept { return v[i]; }

  friend DPack operator+(DPack a, DPack b) noexcept {
    for (std::size_t i = 0; i < kPackWidth; ++i) a.v[i] = a.v[i] + b.v[i];
    return a;
  }
  friend DPack operator-(DPack a, DPack b) noexcept {
    for (std::size_t i = 0; i < kPackWidth; ++i) a.v[i] = a.v[i] - b.v[i];
    return a;
  }
  friend DPack operator*(DPack a, DPack b) noexcept {
    for (std::size_t i = 0; i < kPackWidth; ++i) a.v[i] = a.v[i] * b.v[i];
    return a;
  }
  friend DPack operator/(DPack a, DPack b) noexcept {
    for (std::size_t i = 0; i < kPackWidth; ++i) a.v[i] = a.v[i] / b.v[i];
    return a;
  }

  // The comparisons mirror the vector-extension variant exactly
  // (condition on a, false selects b) so a NaN lane resolves to the same
  // operand in both builds.
  static DPack min(DPack a, DPack b) noexcept {
    for (std::size_t i = 0; i < kPackWidth; ++i) {
      a.v[i] = a.v[i] < b.v[i] ? a.v[i] : b.v[i];
    }
    return a;
  }
  static DPack max(DPack a, DPack b) noexcept {
    for (std::size_t i = 0; i < kPackWidth; ++i) {
      a.v[i] = a.v[i] > b.v[i] ? a.v[i] : b.v[i];
    }
    return a;
  }
  static DPack abs(DPack a) noexcept {
    for (std::size_t i = 0; i < kPackWidth; ++i) {
      a.v[i] = std::bit_cast<double>(std::bit_cast<long long>(a.v[i]) &
                                     0x7fffffffffffffffLL);
    }
    return a;
  }
  static DPack select_gt(DPack a, DPack b, DPack t, DPack f) noexcept {
    for (std::size_t i = 0; i < kPackWidth; ++i) {
      f.v[i] = a.v[i] > b.v[i] ? t.v[i] : f.v[i];
    }
    return f;
  }
};

#endif  // ICVBE_SIMD_VEXT

namespace simd_detail {

// exp(x) = 2^k * exp(r), k = round(x * log2(e)), r = x - k * ln2. The
// constants are the classic cephes split: kLn2Hi carries 21 mantissa bits,
// so k * kLn2Hi is exact for |k| <= 2^11 and the reduction loses nothing.
inline constexpr double kLog2E = 1.4426950408889634073599246810019;
inline constexpr double kLn2Hi = 6.93145751953125e-1;
inline constexpr double kLn2Lo = 1.42860682030941723212e-6;
/// 1.5 * 2^52: adding then subtracting rounds to the nearest integer in
/// round-to-nearest mode, and bits(x + kShift) - bits(kShift) IS that
/// integer while |x| < 2^51 -- one addition doubles as round and convert.
inline constexpr double kShift = 6755399441055744.0;
/// exp overflows double above this...
inline constexpr double kExpHi = 709.78271289338399684324569237317;
/// ...and the result is subnormal below this (ln of the smallest normal);
/// vexp flushes to zero there (see header comment).
inline constexpr double kExpLo = -708.39641853226410621714333962146;

// Degree-13 Taylor coefficients 1/i!, Horner-ordered (degree 13 first).
// Truncation at |r| <= ln2/2: r^14/14! ~ 4e-18, well under half an ulp;
// the measured bound vs std::exp is dominated by Horner rounding.
inline constexpr double kExpPoly[] = {
    1.0 / 6227020800.0,  // 1/13!
    1.0 / 479001600.0,   // 1/12!
    1.0 / 39916800.0,    // 1/11!
    1.0 / 3628800.0,     // 1/10!
    1.0 / 362880.0,      // 1/9!
    1.0 / 40320.0,       // 1/8!
    1.0 / 5040.0,        // 1/7!
    1.0 / 720.0,         // 1/6!
    1.0 / 120.0,         // 1/5!
    1.0 / 24.0,          // 1/4!
    1.0 / 6.0,           // 1/3!
    1.0 / 2.0,           // 1/2!
    1.0,                 // 1/1!
    1.0,                 // 1/0!
};

}  // namespace simd_detail

/// Vectorizable exp(double), scalar flavour -- the same operation sequence
/// as the pack flavour below, applied to one lane, so batched and per-die
/// device evaluation agree bitwise. See the header comment for the accuracy
/// and flush-to-zero contract.
inline double vexp(double x) noexcept {
  using namespace simd_detail;
  const double t = x * kLog2E + kShift;
  const double kf = t - kShift;
  const double r = (x - kf * kLn2Hi) - kf * kLn2Lo;
  double p = kExpPoly[0];
  for (std::size_t i = 1; i < 14; ++i) p = p * r + kExpPoly[i];
  // 2^k split into two halves so k = 1024 (finite results up to DBL_MAX
  // need it) and k = -1022 stay representable; the first scale is exact.
  const long long ki =
      std::bit_cast<long long>(t) - std::bit_cast<long long>(kShift);
  const long long kh = ki >> 1;
  const double s1 = std::bit_cast<double>((kh + 1023LL) << 52);
  const double s2 = std::bit_cast<double>((ki - kh + 1023LL) << 52);
  double res = (p * s1) * s2;
  if (x > kExpHi) res = std::numeric_limits<double>::infinity();
  if (x < kExpLo) res = 0.0;
  return res;  // NaN input propagates through p
}

/// Vectorizable exp(double), 4-lane pack flavour. Elementwise identical to
/// the scalar vexp above.
inline DPack vexp(DPack x) noexcept {
  using namespace simd_detail;
#ifdef ICVBE_SIMD_VEXT
  using vec = DPack::vec;
  using ivec = DPack::ivec;
  const vec t = x.v * kLog2E + kShift;
  const vec kf = t - kShift;
  const vec r = (x.v - kf * kLn2Hi) - kf * kLn2Lo;
  vec p = vec{} + kExpPoly[0];
  for (std::size_t i = 1; i < 14; ++i) p = p * r + kExpPoly[i];
  const ivec ki = std::bit_cast<ivec>(t) -
                  std::bit_cast<long long>(kShift);
  const ivec kh = ki >> 1;
  const vec s1 = std::bit_cast<vec>((kh + 1023LL) << 52);
  const vec s2 = std::bit_cast<vec>((ki - kh + 1023LL) << 52);
  vec res = (p * s1) * s2;
  res = x.v > kExpHi ? vec{} + std::numeric_limits<double>::infinity() : res;
  res = x.v < kExpLo ? vec{} : res;
  return {res};
#else
  DPack r;
  for (std::size_t i = 0; i < kPackWidth; ++i) r.v[i] = vexp(x.v[i]);
  return r;
#endif
}

}  // namespace icvbe::common
