#pragma once
// SimServer: the long-lived simulation-as-a-service daemon.
//
// A server listens on a local endpoint (AF_UNIX socket by default, or
// loopback TCP), speaks the length-prefixed protocol of protocol.hpp /
// docs/PROTOCOL.md, and keeps one *warm* spice::SimSession per loaded
// circuit: the netlist is parsed once, the MNA workspace allocated once,
// and -- on the sparse path -- the matrix pattern frozen and the symbolic
// LU analysis cached once, at LOAD. Every subsequent RUN and every
// value-only PATCH reuses all of it, which is where the interactive-loop
// speedup over cold `icvbe run` processes comes from.
//
// Concurrency model:
//  * one accept thread;
//  * one reader thread per connection, which parses frames and executes
//    the cheap commands (LOAD/PATCH/CANCEL/STATUS/CLOSE) inline;
//  * a shared worker pool (common::ThreadPool) executing RUNs
//    asynchronously. A RUN streams INIT/DATA frames as points complete
//    (spice::RunObserver) and finishes with DONE/CANCELLED/FAIL.
//
// Sessions are scoped to their connection: names are per-connection,
// other clients never see them, and connection teardown cancels the
// connection's in-flight runs and waits for them before the sessions are
// destroyed. Per-session serialisation is a busy flag: a session with a
// run in flight rejects RUN/PATCH/CLOSE/LOAD-over with ERR ... busy
// (other sessions of the same connection proceed in parallel).
//
// Determinism: before every RUN the session's device state and warm-start
// seed are reset to the deck-described start (.NODESET hints re-seeded),
// so a RUN's result is a pure function of (deck, patches applied, plan) --
// bit-identical to a cold `icvbe run/tran/ac` of the equivalently patched
// deck, for any worker count and any interleaving of other clients.

#include <atomic>
#include <memory>
#include <string>

namespace icvbe::server {

struct ServerConfig {
  /// AF_UNIX socket path; wins over tcp_port when nonempty. The file is
  /// unlinked on stop().
  std::string socket_path;
  /// Loopback TCP port when socket_path is empty (0 = kernel-assigned;
  /// read the resolved one back with port()).
  int tcp_port = 0;
  /// Worker threads executing RUNs (0 = hardware_concurrency).
  unsigned workers = 0;
};

class SimServer {
 public:
  explicit SimServer(ServerConfig config);
  /// stop()s if still running.
  ~SimServer();

  SimServer(const SimServer&) = delete;
  SimServer& operator=(const SimServer&) = delete;

  /// Bind, listen, spawn the accept thread and worker pool. Throws
  /// icvbe::Error if the endpoint cannot be bound.
  void start();

  /// Stop accepting, cancel every in-flight run, drain the pool, join
  /// all threads, close all connections. Idempotent.
  void stop();

  [[nodiscard]] bool running() const noexcept;
  /// The bound AF_UNIX path ("" when listening on TCP).
  [[nodiscard]] const std::string& socket_path() const noexcept;
  /// The resolved TCP port (-1 when listening on AF_UNIX).
  [[nodiscard]] int port() const noexcept;
  [[nodiscard]] unsigned workers() const noexcept;
  /// Connections currently alive (snapshot; tests and STATUS use this).
  [[nodiscard]] std::size_t connection_count() const;

  /// start(), then block until `*interrupt` turns true (polled), then
  /// stop(). The CLI's serve loop with its signal flag.
  void serve_until(const std::atomic<bool>& interrupt);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace icvbe::server
