#pragma once
// icvbe::server::Client -- C++ client of the SimServer protocol.
//
// The client mirrors the shape of the ngspice sharedspice callback API:
// a run delivers an init callback (labels, expected row count) and one
// data callback per point as points complete on the server, then a
// terminal outcome. All calls are synchronous on the calling thread; the
// one concession to interactivity is cancel(), which only *writes* a
// CANCEL frame (the socket is full-duplex) and is therefore safe to call
// from inside on_data() -- the canonical "stop this sweep" gesture of an
// interactive front end.
//
// Threading: a Client is NOT thread-safe; drive it from one thread.

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "icvbe/server/protocol.hpp"

namespace icvbe::server {

/// Per-point delivery interface of Client::run (the fnSendInitData /
/// fnSendData shape). Default implementations ignore everything, so a
/// handler overrides only what it needs.
class RunHandler {
 public:
  virtual ~RunHandler() = default;
  virtual void on_init(const std::vector<std::string>& axis_labels,
                       const std::vector<std::string>& probe_labels,
                       std::size_t expected_rows) {
    (void)axis_labels;
    (void)probe_labels;
    (void)expected_rows;
  }
  /// One streamed point. `row` is the result-row index (parallel AC runs
  /// deliver out of order); values are bit-exact vs the server's result.
  virtual void on_data(std::size_t row, const std::vector<double>& axes,
                       const std::vector<double>& probes) {
    (void)row;
    (void)axes;
    (void)probes;
  }
};

/// Terminal state of one run.
enum class RunOutcome { kDone, kCancelled, kFailed };

struct RunResult {
  RunOutcome outcome = RunOutcome::kDone;
  std::size_t rows = 0;   ///< DATA frames the server sent
  std::string error;      ///< FAIL message (empty otherwise)
};

/// Server-side command rejection (an ERR reply).
class CommandError : public Error {
 public:
  explicit CommandError(const std::string& what) : Error(what) {}
};

class Client {
 public:
  /// Connect to an AF_UNIX socket path.
  static Client connect_unix(const std::string& socket_path);
  /// Connect to a loopback TCP port.
  static Client connect_tcp(int port);

  Client(Client&& other) noexcept;
  Client& operator=(Client&&) = delete;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// LOAD a deck into a named server session. Returns the analysis
  /// tokens the deck describes ({"DC","TRAN"}...). Throws CommandError
  /// on rejection (parse error, busy session).
  std::vector<std::string> load(const std::string& session,
                                std::string_view deck);

  /// RUN an analysis and stream it through `handler` until the terminal
  /// frame. `analysis` is "DC", "TRAN", or "AC" (case-insensitive).
  /// `threads` is the server-side plan fanout. `run_id` names the run on
  /// the wire (the protocol's client-chosen ids); empty = auto-generate.
  /// Returns the terminal outcome; throws CommandError only if the RUN
  /// command itself is rejected (run-level FAIL is an outcome, not an
  /// exception).
  RunResult run(const std::string& session, const std::string& analysis,
                RunHandler* handler = nullptr, unsigned threads = 1,
                const std::string& run_id = {});

  /// Send CANCEL for the active (or any) run id. Fire-and-forget: the
  /// OK ack is collected by the inbox loop. Safe from inside on_data().
  void cancel(const std::string& run_id);

  /// PATCH session values; `body` is patch lines ("R R1 2k\nTEMP 85").
  /// Returns the number of applied patches.
  std::size_t patch(const std::string& session, std::string_view body);

  /// CLOSE a server session.
  void close_session(const std::string& session);

  /// STATUS body text ("SESSIONS n\nRUNS n\nWORKERS n\n").
  std::string status();

  // Low-level access (tests exercise error paths through these).

  /// Send a raw command frame.
  void send_command(const std::vector<std::string>& head,
                    std::string_view body = {});
  /// Block until the next non-stream reply (OK/ERR) arrives and return
  /// it. Stream frames arriving in between are discarded.
  Frame wait_reply();
  /// Read the next frame off the socket, whatever it is (blocking).
  /// Throws Error on EOF.
  Frame read_frame();

 private:
  explicit Client(int fd);
  /// Send head/body and wait for its OK/ERR ack; throws CommandError on
  /// ERR. Returns the OK frame.
  Frame request(const std::vector<std::string>& head,
                std::string_view body = {});

  int fd_ = -1;
  FrameDecoder decoder_;
  std::uint64_t next_run_ = 0;  ///< client-chosen run-id counter
};

}  // namespace icvbe::server
