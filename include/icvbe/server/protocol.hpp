#pragma once
// Wire protocol of the SimServer (see docs/PROTOCOL.md for the normative
// description with a worked transcript).
//
// Framing: every message travels as
//
//   <decimal payload byte count>\n<payload>
//
// The payload's first line is the HEAD -- space-separated tokens naming
// the command or event -- and everything after the first newline is the
// BODY (deck text for LOAD, patch lines for PATCH, labels for INIT,
// values for DATA). The length prefix makes the stream self-delimiting:
// deck bodies may contain anything, including blank lines.
//
// Requests (client -> server):
//   LOAD <session>                 body = deck text
//   RUN <run-id> <session> <DC|TRAN|AC> [THREADS=n]
//   CANCEL <run-id>
//   PATCH <session>                body = one patch per line (see below)
//   CLOSE <session>
//   STATUS
//
// The client chooses run ids (unique per connection); that keeps RUN a
// single round trip and lets a CANCEL race the RUN it names without a
// window where the client does not yet know the id.
//
// Replies and stream events (server -> client):
//   OK <CMD> ...                   command acknowledged
//   ERR <CMD> <message>            command rejected (connection lives on)
//   INIT <run-id>                  body = AXES/PROBES/ROWS label lines
//   DATA <run-id> <row>            body = axis+probe values, one line
//   DONE <run-id> <rows>           run finished
//   CANCELLED <run-id> <rows>      run cancelled after <rows> rows
//   FAIL <run-id> <message>        run aborted (solver error) -- this is
//                                  run-level, distinct from command-level
//                                  ERR: the RUN itself was accepted
//
// PATCH body lines re-program VALUES only -- the circuit topology, and
// with it the frozen sparse pattern and cached symbolic LU of the warm
// session, survive every patch:
//   R <name> <value>     resistor nominal ohms
//   C <name> <value>     capacitor farads
//   L <name> <value>     inductor henries
//   V <name> <value>     voltage source DC volts
//   I <name> <value>     current source DC amps
//   TEMP <celsius>       circuit temperature
//
// Numbers in DATA frames are printed with enough digits to round-trip
// bit-exactly (format_value), so a client can compare streamed values
// against a local run with operator==.

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "icvbe/common/error.hpp"

namespace icvbe::server {

/// Malformed frame or payload (bad length prefix, oversized frame,
/// unparseable patch line, ...).
class ProtocolError : public Error {
 public:
  explicit ProtocolError(const std::string& what) : Error(what) {}
};

/// One decoded message: HEAD tokens plus the raw BODY text.
struct Frame {
  std::vector<std::string> head;
  std::string body;

  /// head[i], or "" past the end (keeps call sites branch-free).
  [[nodiscard]] std::string_view tok(std::size_t i) const noexcept {
    return i < head.size() ? std::string_view(head[i]) : std::string_view();
  }
};

/// Frames larger than this are rejected as malformed rather than
/// buffered -- backstop against a corrupt length prefix, far above any
/// real deck or DATA row.
inline constexpr std::size_t kMaxFrameBytes = 64u << 20;

/// Encode one frame: length prefix + head line (+ newline + body when
/// the body is nonempty).
[[nodiscard]] std::string encode_frame(
    const std::vector<std::string>& head, std::string_view body = {});

/// Split a payload into HEAD tokens and BODY.
[[nodiscard]] Frame parse_payload(std::string_view payload);

/// Incremental frame decoder: feed() raw bytes as they arrive, next()
/// pops complete frames in order. Throws ProtocolError on a malformed or
/// oversized length prefix.
class FrameDecoder {
 public:
  void feed(std::string_view bytes) { buffer_.append(bytes); }
  [[nodiscard]] std::optional<Frame> next();

  /// Bytes buffered but not yet consumed by next().
  [[nodiscard]] std::size_t pending() const noexcept {
    return buffer_.size() - consumed_;
  }

 private:
  std::string buffer_;
  std::size_t consumed_ = 0;
};

/// Print a double with enough digits to strtod back to the same bits.
[[nodiscard]] std::string format_value(double v);

/// One parsed PATCH body line.
struct PatchCommand {
  enum class Target {
    kResistor,
    kCapacitor,
    kInductor,
    kVsource,
    kIsource,
    kTemperature,
  };
  Target target = Target::kResistor;
  std::string name;    ///< device name; empty for kTemperature
  double value = 0.0;  ///< ohms/farads/henries/volts/amps/celsius
};

/// Parse a PATCH body (one command per line, blank lines ignored).
/// Throws ProtocolError with the offending line text on malformed input.
[[nodiscard]] std::vector<PatchCommand> parse_patch_body(
    std::string_view body);

}  // namespace icvbe::server
