#pragma once
// Transistor-level CMOS op-amp macrocell -- the BiCMOS alternative to the
// ideal OpAmp device. A classic two-stage Miller-style amplifier (DC only,
// so no compensation): PMOS differential pair, NMOS mirror load, NMOS
// common-source second stage with PMOS current-source load.
//
//  VDD --+-----------+--------------+
//        |           |              |
//      M5 (tail)   mirror bias    M7 (load)
//        |           |              |
//   +----+----+      |             out
//   |         |      |              |
//  M1 (in+)  M2 (in-)|             M6 (CS)
//   |         |      |              |
//  M3 ------ M4 (NMOS mirror)      gnd
//   |         |
//  gnd       gnd
//
// Open-loop gain ~ (gm1 ro)(gm6 ro) ~ 60-80 dB; input offset arises from
// realistic M1/M2 threshold mismatch injected by the caller.

#include <string>

#include "icvbe/spice/circuit.hpp"

namespace icvbe::bandgap {

struct CmosOpAmpParams {
  double vdd = 2.5;            ///< supply [V]
  double bias_current = 20e-6; ///< tail current [A]
  double wl_pair = 40.0;       ///< W/L of the input pair
  double wl_mirror = 10.0;     ///< W/L of the NMOS mirror
  double wl_cs = 60.0;         ///< W/L of the second stage
  double vth_mismatch = 0.0;   ///< M1-vs-M2 threshold skew [V] -> offset
  spice::MosfetModel nmos;     ///< NMOS card (defaults are sane)
  spice::MosfetModel pmos;     ///< PMOS card
};

/// Build the amplifier between the given nodes. `prefix` namespaces the
/// internal device/node names so several instances can coexist. Returns
/// the supply source name so callers can meter the amplifier's current.
std::string build_cmos_opamp(spice::Circuit& circuit,
                             const std::string& prefix, spice::NodeId out,
                             spice::NodeId inp, spice::NodeId inn,
                             const CmosOpAmpParams& params = {});

/// Default device cards for the 0.8 um-class BiCMOS process.
[[nodiscard]] spice::MosfetModel default_nmos();
[[nodiscard]] spice::MosfetModel default_pmos();

/// Measure the DC open-loop differential gain of a freshly built amplifier
/// around the bias point where out ~ vdd/2 (finite-difference on the
/// inputs). Utility for tests and the ablation bench.
[[nodiscard]] double measure_open_loop_gain(const CmosOpAmpParams& params);

}  // namespace icvbe::bandgap
