#pragma once
// Sub-1-V current-mode bandgap (Banba et al., JSSC 1999 -- the paper's
// ref [10]). This is the extension the paper's conclusion points at: "The
// present test structure can be used to prototype the design of more
// accurate low voltage reference circuit."
//
// Topology: a PMOS mirror (M1 = M2 = M3) forces equal currents into two
// branches held at equal potential by the op-amp:
//   branch 1:  R1 || Q1 (1x, diode-connected PNP)    -> I = VBE/R1 + ...
//   branch 2:  R1 || (R0 + Q2 (Nx))                  -> I = VBE/R1 + dVBE/R0
// so the mirrored current is I = VBE/R1 + dVBE/R0 -- a weighted sum of a
// CTAT and a PTAT term -- and the output branch drops it across R2:
//   VREF = (R2/R1) (VBE + (R1/R0) dVBE).
// Unlike the classic 1.2 V cell, VREF scales with R2/R1 and can sit at a
// few hundred millivolts from a ~1 V supply.

#include <string>
#include <vector>

#include "icvbe/spice/circuit.hpp"
#include "icvbe/spice/sim_session.hpp"

namespace icvbe::bandgap {

struct BanbaCellParams {
  spice::BjtModel qa_model;   ///< 1x PNP
  spice::BjtModel qb_model;   ///< Nx PNP (area applied separately)
  double area_ratio = 8.0;
  double vdd = 1.0;           ///< supply [V] -- sub-1-V operation target
  double r0 = 2.44e3;         ///< dVBE resistor [ohm]
  double r1 = 26.1e3;         ///< VBE/CTAT resistor [ohm]
  double r2 = 13.0e3;         ///< output scaling resistor [ohm]
  double resistor_tc1 = 1.2e-3;
  double resistor_tc2 = 0.4e-6;
  double opamp_gain = 1.0e6;
  double opamp_offset = 0.0;
  spice::MosfetModel pmos;    ///< mirror device card
  double mirror_wl = 120.0;   ///< W/L of each mirror device
};

/// Reasonable PMOS card for a ~1 V supply (low |VTO| flavour).
[[nodiscard]] spice::MosfetModel banba_default_pmos();

struct BanbaHandles {
  spice::NodeId vref = spice::kGround;
  spice::NodeId n1 = spice::kGround;   ///< branch-1 head (op-amp +)
  spice::NodeId n2 = spice::kGround;   ///< branch-2 head (op-amp -)
  spice::NodeId vdd = spice::kGround;
  spice::NodeId gate = spice::kGround; ///< mirror gate (op-amp out)
};

/// Build the cell; names are prefixed so it can coexist with other cells.
BanbaHandles build_banba_cell(spice::Circuit& circuit,
                              const BanbaCellParams& params,
                              const std::string& prefix = "bgb");

struct BanbaObservation {
  double t_die = 0.0;
  double vref = 0.0;
  double v_branch = 0.0;   ///< common branch head voltage (~VBE)
  double i_mirror = 0.0;   ///< per-branch mirrored current [A]
};

/// Solve at a die temperature (analytic warm start included, like the
/// classic cell).
[[nodiscard]] BanbaObservation solve_banba_at(spice::Circuit& circuit,
                                              const BanbaHandles& handles,
                                              const BanbaCellParams& params,
                                              double t_die_kelvin);

/// Session variant for repeated solves: warm-starts from the previous
/// operating point, falling back to the analytic guess on failure. Callers
/// should give the session NewtonOptions with max_iterations >= 400 (the
/// sub-1-V loop is stiffer than the classic cell).
[[nodiscard]] BanbaObservation solve_banba_at(spice::SimSession& session,
                                              const BanbaHandles& handles,
                                              const BanbaCellParams& params,
                                              double t_die_kelvin);

/// The analytic startup guess used by solve_banba_at.
[[nodiscard]] spice::Unknowns banba_initial_guess(spice::Circuit& circuit,
                                                  const BanbaHandles& handles,
                                                  const BanbaCellParams& params,
                                                  double t_die_kelvin);

/// First-order prediction VREF = (R2/R1)(VBE + (R1/R0) dVBE).
[[nodiscard]] double banba_ideal_vref(const BanbaCellParams& params,
                                      double vbe, double t_kelvin);

}  // namespace icvbe::bandgap
