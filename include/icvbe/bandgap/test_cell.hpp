#pragma once
// The paper's programmable bandgap test cell (Fig. 3), built as a SPICE
// netlist. Topology (functional equivalent of the published schematic; the
// substitution is documented in DESIGN.md):
//
//            +--------------- op-amp out = VREF ---------------+
//            |                                                  |
//           RX1 (25k)                                          RX2 (25k)
//            |                                                  |
//          node a  -------- op-amp (+) input                 node btop --- (-)
//            |                                                  |
//           QA (1x, PNP, emitter up,                           RB
//            |   collector grounded)                            |
//          base qac -- [RadjB] -- gnd                        node be
//                                                               |
//                                                              QB (8x, PNP,
//                                                               collector gnd)
//                                                               |
//                                                          base qbc -- [RadjA] -- gnd
//
// The op-amp forces V(a) = V(btop) (+ its input offset), so the two 25k
// branches carry equal currents -- the paper's "fixing the same potential
// through RX1 and RX2 imposes the equality between the collector current of
// QA and QB". The PTAT current is dVEB / RB and
//   VREF = VEB(QA) + (RX2 / RB) dVEB  (first order).
// RadjA ("added between P5 and P6 in order to correct the non linear
// component of dVBE due to the substrate leakage current and the offset of
// op-amp stage") trims the curve; ADJ-pad style offset trim maps to RadjB.

#include <string>
#include <vector>

#include "icvbe/spice/circuit.hpp"
#include "icvbe/thermal/electrothermal.hpp"

namespace icvbe::bandgap {

/// Electrical parameters of the test cell.
struct TestCellParams {
  spice::BjtModel qa_model;   ///< 1x device
  spice::BjtModel qb_model;   ///< same card; area applied separately
  double area_ratio = 8.0;    ///< paper: emitter areas 6 um^2 / 48 um^2
  double rx1 = 25e3;          ///< branch resistor [ohm] (paper: 25k)
  double rx2 = 25e3;          ///< branch resistor [ohm] (paper: 25k)
  double rb = 2.44e3;         ///< dVBE-to-current resistor [ohm]
  double radja = 0.0;         ///< trim resistor in QB's collector leg [ohm]
  double radjb = 0.0;         ///< trim resistor in QA's collector leg [ohm]
  double resistor_tc1 = 1.2e-3;  ///< n-well resistor tempco [1/K]
  double resistor_tc2 = 0.4e-6;  ///< n-well resistor tempco [1/K^2]
  double opamp_gain = 1.0e6;
  double opamp_offset = 0.0;  ///< input-referred offset [V]
};

/// Node/device names of a built cell, for probing and reconfiguration.
struct TestCellHandles {
  spice::NodeId vref = spice::kGround;
  spice::NodeId a = spice::kGround;      ///< QA emitter (pad P4)
  spice::NodeId btop = spice::kGround;   ///< top of RB
  spice::NodeId be = spice::kGround;     ///< QB emitter (pad P5)
  spice::NodeId qac = spice::kGround;    ///< QA base node (top of RadjB)
  spice::NodeId qbc = spice::kGround;    ///< QB base node (top of RadjA)
  std::string qa = "QA";
  std::string qb = "QB";
  std::string radja = "RADJA";
  std::string radjb = "RADJB";
};

/// Build the test cell into `circuit`; returns the probe handles. The trim
/// resistors are always instantiated (value clamped to >= 1 micro-ohm) so
/// they can be re-programmed between solves.
TestCellHandles build_test_cell(spice::Circuit& circuit,
                                const TestCellParams& params);

/// One solved cell observation.
struct CellObservation {
  double t_die = 0.0;       ///< junction temperature used [K]
  double vref = 0.0;        ///< reference voltage [V]
  double vbe_qa = 0.0;      ///< V(a): QA emitter voltage = VEB(QA) + trim drop
  double vbe_qb = 0.0;      ///< V(be)
  double delta_vbe = 0.0;   ///< V(a) - V(be) -- the pad-measured dVBE
  double ic_qa = 0.0;       ///< |collector current| of QA [A]
  double ic_qb = 0.0;       ///< |collector current| of QB [A]
  double power = 0.0;       ///< cell dissipation [W]
};

/// Solve the cell at a fixed die temperature (no thermal feedback).
[[nodiscard]] CellObservation solve_cell_at(spice::Circuit& circuit,
                                            const TestCellHandles& handles,
                                            double t_die_kelvin);

/// Session variant for repeated solves (sweeps, trim searches, thermal
/// fixed-point loops): reuses the session workspace and warm-starts from
/// the previous operating point, falling back to the analytic startup
/// guess if the continuation fails. The session must be bound to the
/// circuit the handles refer to.
[[nodiscard]] CellObservation solve_cell_at(spice::SimSession& session,
                                            const TestCellHandles& handles,
                                            double t_die_kelvin);

/// The analytic startup guess used by solve_cell_at (the simulation
/// equivalent of a bandgap startup circuit). Exposed for callers driving a
/// SimSession directly.
[[nodiscard]] spice::Unknowns cell_initial_guess(spice::Circuit& circuit,
                                                 const TestCellHandles& handles,
                                                 double t_die_kelvin);

/// First-order ideal model of the same cell (no parasitics, ideal op-amp):
/// VREF(T) = VEB(T) + (rx2/rb) (kT/q) ln(area_ratio). Used as an analytic
/// cross-check of the netlist.
[[nodiscard]] double ideal_vref(const TestCellParams& params, double t_kelvin,
                                double vbe_t0, double t0, double eg,
                                double xti);

/// Search radja in [0, radja_max] minimising the peak-to-peak VREF spread
/// over the given die-temperature grid. Returns the best radja found.
struct TrimResult {
  double radja = 0.0;
  double vref_spread = 0.0;    ///< peak-to-peak VREF over the grid [V]
  double vref_mean = 0.0;
};
[[nodiscard]] TrimResult trim_radja(spice::Circuit& circuit,
                                    const TestCellHandles& handles,
                                    const std::vector<double>& t_kelvin,
                                    double radja_max, int steps);

/// Session variant: the whole steps x |t_kelvin| grid of solves reuses one
/// workspace with warm-start continuation.
[[nodiscard]] TrimResult trim_radja(spice::SimSession& session,
                                    const TestCellHandles& handles,
                                    const std::vector<double>& t_kelvin,
                                    double radja_max, int steps);

}  // namespace icvbe::bandgap
