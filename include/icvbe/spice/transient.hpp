#pragma once
// TransientSolver: time-domain (.TRAN) analysis on top of a SimSession.
//
// The solver flips every DynamicDevice (capacitor, inductor) of the bound
// circuit into transient mode, initialises their companion state from an
// operating-point solve (or the UIC vector), and then advances time with
// the session's allocation-free Newton inner loop: per timestep it applies
// the source waveforms at the candidate time, programs the companion
// models for (method, h), and calls SimSession::solve() warm-started from
// the previous timepoint.
//
// Step control is local-truncation-error based: the LTE of the candidate
// solution is estimated from divided differences of the accepted solution
// history (order h^2 v'' for backward Euler, h^3 v''' for trapezoidal);
// steps whose error ratio exceeds 1 are rejected and retried smaller, and
// accepted steps grow up to 2x while the error stays low. Waveform corner
// times (PULSE edges, PWL knots) are breakpoints: a step never integrates
// across one, and stepping restarts small right after it. The whole
// sequence is plain double arithmetic with no time-of-day or RNG input, so
// the accepted-step sequence is deterministic (asserted by test_tran).
//
// Lifetime: the solver restores DC mode on the dynamic devices and the
// t = 0 source values when destroyed, so a session can go back to DC
// work afterwards.

#include <vector>

#include "icvbe/spice/plan.hpp"
#include "icvbe/spice/sim_session.hpp"

namespace icvbe::spice {

class TransientSolver {
 public:
  /// Bind to a session. The spec is validated here (tstep > 0,
  /// tstop > tstart >= 0, ...); begin() does the heavy setup.
  /// \pre `session` outlives the solver; the circuit topology must not
  /// change while the solver is alive.
  TransientSolver(SimSession& session, TransientSpec spec);

  /// Restores DC mode on the dynamic devices and the t = 0 source values
  /// (only if begin() ran).
  ~TransientSolver();

  TransientSolver(const TransientSolver&) = delete;
  TransientSolver& operator=(const TransientSolver&) = delete;

  /// Set up the run: solve the operating point (or build the UIC start
  /// vector), apply .IC overrides, initialise companion state, collect
  /// waveform breakpoints, and preallocate the history buffers. All
  /// allocations of the run happen here. Idempotent once begun.
  /// Throws NumericalError if the operating point fails to converge.
  void begin();

  /// Advance one *accepted* timestep (internally retrying smaller steps on
  /// Newton failure or LTE rejection). Returns false once t has reached
  /// tstop. Allocation-free after begin().
  /// Throws NumericalError if the controller cannot find a working step.
  [[nodiscard]] bool advance();

  /// Current time [s] (0 until the first accepted step).
  [[nodiscard]] double time() const noexcept { return t_; }
  /// Solution at the current time (valid after begin()).
  [[nodiscard]] const Unknowns& solution() const noexcept { return x_now_; }
  /// Size of the last accepted step [s].
  [[nodiscard]] double last_step() const noexcept { return h_last_; }

  [[nodiscard]] long steps_accepted() const noexcept { return accepted_; }
  [[nodiscard]] long steps_rejected() const noexcept { return rejected_; }
  [[nodiscard]] long newton_iterations() const noexcept {
    return newton_iterations_;
  }

  [[nodiscard]] const TransientSpec& spec() const noexcept { return spec_; }

  /// Drive the whole run and record `probes` at every accepted timepoint
  /// with t >= tstart (plus the initial point when tstart == 0). The
  /// result's single axis is TIME.
  ///
  /// A non-null `observer` receives on_begin (expected_rows = 0: the
  /// adaptive controller does not know the accepted-point count up front)
  /// and one on_row per recorded timepoint, always from the calling
  /// thread. Cancellation (on_row -> false) throws CancelledError within
  /// one accepted step; the destructor still restores DC mode.
  [[nodiscard]] SweepResult run(const std::vector<Probe>& probes,
                                RunObserver* observer = nullptr);

 private:
  void apply_sources(double t);
  /// Max over node voltages of |LTE| / (abstol + reltol max(|x|)) for the
  /// candidate solution at t_ + h.
  [[nodiscard]] double lte_ratio(const Unknowns& candidate, double h) const;
  [[nodiscard]] int order() const noexcept {
    return spec_.method == IntegrationMethod::kTrapezoidal ? 2 : 1;
  }
  /// Accepted history points the LTE estimate needs (excl. the candidate).
  [[nodiscard]] std::size_t need_history() const noexcept {
    return spec_.method == IntegrationMethod::kTrapezoidal ? 3u : 2u;
  }
  void push_history(double t, const Unknowns& x);

  SimSession& session_;
  TransientSpec spec_;
  double tmax_ = 0.0;   ///< resolved max internal step
  double teps_ = 0.0;   ///< time comparison tolerance
  double h0_ = 0.0;     ///< (re)start step after init / breakpoints
  double hmin_ = 0.0;   ///< controller floor before giving up
  bool began_ = false;
  bool restored_ = false;
  /// Next step is the first after t = 0 or a breakpoint: adaptive runs
  /// take it with backward Euler (the committed derivative is stale).
  bool restart_ = true;

  std::vector<DynamicDevice*> dynamic_;
  std::vector<std::pair<VoltageSource*, const Waveform*>> vwaves_;
  std::vector<std::pair<CurrentSource*, const Waveform*>> iwaves_;
  std::vector<double> vsource_t0_;  ///< restore values (every V source)
  std::vector<double> isource_t0_;

  std::vector<double> breakpoints_;
  std::size_t bp_index_ = 0;

  double t_ = 0.0;
  double h_next_ = 0.0;
  double h_last_ = 0.0;
  Unknowns x_now_;

  // Accepted-solution ring for the divided-difference LTE estimate:
  // hist_x_[(hist_head_ + k) % 3] is the k-th newest accepted point.
  Unknowns hist_x_[3];
  double hist_t_[3] = {0.0, 0.0, 0.0};
  std::size_t hist_head_ = 0;
  std::size_t hist_count_ = 0;

  long accepted_ = 0;
  long rejected_ = 0;
  long newton_iterations_ = 0;
};

}  // namespace icvbe::spice
