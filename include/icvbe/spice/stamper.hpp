#pragma once
// Stamper: the device-facing interface for assembling the MNA system
// G x = b during one Newton iteration.
//
// Conventions (classic MNA):
//  * KCL rows: sum of currents *leaving* a node through devices equals the
//    current *injected* into the node on the RHS.
//  * A conductance g between nodes a and b stamps +g on the diagonals and
//    -g off-diagonal.
//  * A nonlinear branch I(v) linearised at v* stamps its small-signal g and
//    the companion current Ieq = I(v*) - g v* as an RHS extraction.
//  * Aux rows (branch-current unknowns) are stamped with raw add_entry /
//    add_rhs.

#include "icvbe/linalg/matrix_view.hpp"
#include "icvbe/spice/unknowns.hpp"

namespace icvbe::spice {

class Stamper {
 public:
  /// `node_unknowns` = number of non-ground nodes; aux rows follow.
  /// `a` views either the dense workspace matrix or the sparse CSR one
  /// (implicitly constructible from Matrix& or SparseMatrix&): devices
  /// stamp through the same MatrixView contract either way, so the engine
  /// choice never duplicates a device model.
  Stamper(linalg::MatrixView a, linalg::Vector& b, int node_unknowns);

  /// Linear conductance between nodes a and b.
  void add_conductance(NodeId a, NodeId b, double g);

  /// Independent current J injected into node n (flows from ground into n).
  void add_current_into(NodeId n, double j);

  /// Companion model of a nonlinear branch from p to m: current I = g v +
  /// ieq flows p -> m. Stamps the conductance and moves ieq to the RHS.
  void stamp_companion(NodeId p, NodeId m, double g, double ieq);

  /// Transconductance: current leaving node `out_p` (entering `out_m`)
  /// controlled by V(in_p) - V(in_m) with gain gm.
  void add_transconductance(NodeId out_p, NodeId out_m, NodeId in_p,
                            NodeId in_m, double gm);

  /// Raw matrix access for aux rows/columns. Row/col indices are unknown
  /// indices: nodes occupy [0, node_unknowns), aux rows follow. Negative
  /// index (ground) contributions are dropped.
  void add_entry(int row, int col, double v);
  void add_rhs(int row, double v);

  /// Unknown index of a node (-1 for ground).
  [[nodiscard]] int node_index(NodeId n) const { return n - 1; }

  [[nodiscard]] int node_unknowns() const noexcept { return node_unknowns_; }

 private:
  linalg::MatrixView a_;
  linalg::Vector& b_;
  int node_unknowns_;
};

}  // namespace icvbe::spice
