#pragma once
// Stamper: the device-facing interface for assembling the MNA system
// G x = b during one Newton iteration (real scalar) or one AC frequency
// point (complex scalar).
//
// Conventions (classic MNA):
//  * KCL rows: sum of currents *leaving* a node through devices equals the
//    current *injected* into the node on the RHS.
//  * A conductance g between nodes a and b stamps +g on the diagonals and
//    -g off-diagonal (for AC, g generalises to a complex admittance y).
//  * A nonlinear branch I(v) linearised at v* stamps its small-signal g and
//    the companion current Ieq = I(v*) - g v* as an RHS extraction.
//  * Aux rows (branch-current unknowns) are stamped with raw add_entry /
//    add_rhs.

#include "icvbe/linalg/matrix_view.hpp"
#include "icvbe/spice/unknowns.hpp"

namespace icvbe::spice {

template <typename Scalar>
class StamperT {
 public:
  /// `node_unknowns` = number of non-ground nodes; aux rows follow.
  /// `a` views either the dense workspace matrix or the sparse CSR one
  /// (implicitly constructible from MatrixT& or SparseMatrixT&): devices
  /// stamp through the same MatrixViewT contract either way, so the engine
  /// choice never duplicates a device model.
  StamperT(linalg::MatrixViewT<Scalar> a, linalg::VectorT<Scalar>& b,
           int node_unknowns);

  /// Linear conductance (complex: admittance) between nodes a and b.
  void add_conductance(NodeId a, NodeId b, Scalar g);

  /// Independent current J injected into node n (flows from ground into n).
  void add_current_into(NodeId n, Scalar j);

  /// Companion model of a nonlinear branch from p to m: current I = g v +
  /// ieq flows p -> m. Stamps the conductance and moves ieq to the RHS.
  void stamp_companion(NodeId p, NodeId m, Scalar g, Scalar ieq);

  /// Transconductance: current leaving node `out_p` (entering `out_m`)
  /// controlled by V(in_p) - V(in_m) with gain gm.
  void add_transconductance(NodeId out_p, NodeId out_m, NodeId in_p,
                            NodeId in_m, Scalar gm);

  /// Raw matrix access for aux rows/columns. Row/col indices are unknown
  /// indices: nodes occupy [0, node_unknowns), aux rows follow. Negative
  /// index (ground) contributions are dropped.
  void add_entry(int row, int col, Scalar v);
  void add_rhs(int row, Scalar v);

  /// Unknown index of a node (-1 for ground).
  [[nodiscard]] int node_index(NodeId n) const { return n - 1; }

  [[nodiscard]] int node_unknowns() const noexcept { return node_unknowns_; }

 private:
  linalg::MatrixViewT<Scalar> a_;
  linalg::VectorT<Scalar>& b_;
  int node_unknowns_;
};

using Stamper = StamperT<double>;

extern template class StamperT<double>;
extern template class StamperT<linalg::Complex>;

/// The small-signal stamper one AC frequency point is assembled through:
/// the complex-scalar StamperT plus the angular frequency, so a device's
/// stamp_ac() can write its admittance (g + j*omega*C, 1/(j*omega*L), ...)
/// without extra plumbing. Conventions are identical to the DC Stamper;
/// only independent sources with an AC stimulus touch the RHS.
class AcStamper : public StamperT<linalg::Complex> {
 public:
  AcStamper(linalg::ComplexMatrixView a, linalg::ComplexVector& b,
            int node_unknowns, double omega)
      : StamperT<linalg::Complex>(a, b, node_unknowns), omega_(omega) {}

  /// Angular frequency of the point being stamped [rad/s].
  [[nodiscard]] double omega() const noexcept { return omega_; }

 private:
  double omega_;
};

}  // namespace icvbe::spice
