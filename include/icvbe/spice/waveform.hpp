#pragma once
// Time-domain source waveforms: the value a transient analysis drives an
// independent V/I source with at each timepoint.
//
// A Waveform is a plain value (copyable, serialisable in the netlist
// dialect) so decks can describe stimuli and circuit clones carry them
// along. DC analyses never look at a waveform: the parser programs the
// source's DC value from dc_value() -- the waveform's explicit
// initial/offset value, NOT value_at(0) -- and only TransientSolver
// re-applies value_at(t) while stepping. The distinction matters for
// waveforms whose t = 0 sample already carries transient stimulus (a PWL
// with knots before t = 0 interpolates at 0; a damped SIN's offset is vo
// regardless of where its delay puts the first oscillation): the DC / AC
// operating point must be biased by the quiescent value only.
//
// Supported shapes (SPICE argument order):
//   DC    v
//   PULSE v1 v2 [td [tr [tf [pw [per]]]]]
//   SIN   vo va freq [td [theta]]
//   PWL   t1 v1 t2 v2 ...           (piecewise linear, t non-decreasing)

#include <string>
#include <utility>
#include <vector>

namespace icvbe::spice {

class Waveform {
 public:
  enum class Kind { kDc, kPulse, kSin, kPwl };

  /// Constant value (what a bare numeric source card means).
  [[nodiscard]] static Waveform dc(double value);

  /// SPICE PULSE: v1 until td, rise to v2 over tr, hold pw, fall back over
  /// tf, repeat with period `per` if per > 0. tr/tf of 0 are instantaneous
  /// edges (the transient breakpoint machinery keeps them sharp); pw <= 0
  /// means "hold v2 forever" (a step).
  [[nodiscard]] static Waveform pulse(double v1, double v2, double td = 0.0,
                                      double tr = 0.0, double tf = 0.0,
                                      double pw = -1.0, double per = 0.0);

  /// SPICE SIN: vo for t < td, then vo + va e^{-(t-td) theta}
  /// sin(2 pi freq (t-td)).
  [[nodiscard]] static Waveform sin(double vo, double va, double freq,
                                    double td = 0.0, double theta = 0.0);

  /// Piecewise-linear through (t, v) knots; clamps to the first/last value
  /// outside the knot span. Throws Error unless times are finite and
  /// non-decreasing (>= 1 knot).
  [[nodiscard]] static Waveform pwl(std::vector<std::pair<double, double>> points);

  Waveform() = default;  ///< DC 0 (the member defaults)

  [[nodiscard]] Kind kind() const noexcept { return kind_; }

  /// Source value at time t (t < 0 is treated as 0). Allocation-free.
  [[nodiscard]] double value_at(double t) const;

  /// The operating-point value a DC or AC analysis biases the source with:
  /// the waveform's explicit initial/offset value (PULSE -> v1, SIN -> vo,
  /// PWL -> first knot value, DC -> the value). Deliberately NOT
  /// value_at(0), which for stimuli that are already moving at t = 0
  /// (e.g. PWL knots at negative times) would silently fold transient
  /// signal into the operating point.
  [[nodiscard]] double dc_value() const;

  /// Append every time in (0, tstop] where this waveform has a slope
  /// discontinuity (pulse corners, PWL knots, SIN start). The transient
  /// step controller lands a timestep on each so sharp edges are never
  /// integrated across. Each waveform contributes at most
  /// kMaxBreakpoints corners per call, so one dense periodic pulse
  /// cannot starve other sources of their edges.
  void append_breakpoints(double tstop, std::vector<double>& out) const;

  /// Serialise in the netlist card dialect ("PULSE(0 1.8 0 1u ...)").
  [[nodiscard]] std::string to_string() const;

  static constexpr std::size_t kMaxBreakpoints = 65536;

 private:
  Kind kind_ = Kind::kDc;
  // PULSE: v1 v2 td tr tf pw per / SIN: vo va freq td theta / DC: value.
  double p_[7] = {0, 0, 0, 0, 0, 0, 0};
  std::vector<std::pair<double, double>> points_;  ///< PWL knots
};

}  // namespace icvbe::spice
