#pragma once
// Newton-Raphson DC operating-point solver over the MNA system, with the
// two classic globalisation aids: gmin stepping and source stepping.
//
// The engine lives in spice::SimSession (sim_session.hpp), which owns the
// preallocated workspace and warm-start continuation; NewtonOptions and
// DcResult are defined there. The free functions below remain as thin
// wrappers over a temporary session for one-shot callers -- repeated
// solves of the same circuit should hold a SimSession instead.

#include "icvbe/spice/circuit.hpp"
#include "icvbe/spice/sim_session.hpp"

namespace icvbe::spice {

/// Solve the DC operating point of the circuit at its current temperature.
/// `initial` may carry a warm start (previous sweep point); pass nullptr
/// for a cold start.
[[nodiscard]] DcResult solve_dc(Circuit& circuit,
                                const NewtonOptions& options = {},
                                const Unknowns* initial = nullptr);

/// Throwing convenience wrapper: returns the solution or raises
/// NumericalError with diagnostics.
[[nodiscard]] Unknowns solve_dc_or_throw(Circuit& circuit,
                                         const NewtonOptions& options = {},
                                         const Unknowns* initial = nullptr);

}  // namespace icvbe::spice
