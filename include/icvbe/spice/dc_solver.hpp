#pragma once
// Newton-Raphson DC operating-point solver over the MNA system, with the
// two classic globalisation aids: gmin stepping and source stepping.

#include <string>

#include "icvbe/spice/circuit.hpp"

namespace icvbe::spice {

struct NewtonOptions {
  int max_iterations = 200;      ///< per Newton attempt
  double v_abstol = 1e-9;        ///< node voltage absolute tolerance [V]
  double i_abstol = 1e-12;       ///< aux current absolute tolerance [A]
  double reltol = 1e-6;          ///< relative tolerance on all unknowns
  double max_step_volts = 2.0;   ///< damping: max node-voltage change/iter
  double gmin_floor = 1e-12;     ///< final gmin left in the matrix
  int gmin_steps = 8;            ///< decades of gmin ramp when needed
  int source_steps = 10;         ///< source-stepping ramp points when needed
};

struct DcResult {
  Unknowns solution;
  bool converged = false;
  int iterations = 0;        ///< total Newton iterations spent
  std::string strategy;      ///< "newton", "gmin", or "source"
};

/// Solve the DC operating point of the circuit at its current temperature.
/// `initial` may carry a warm start (previous sweep point); pass nullptr
/// for a cold start.
[[nodiscard]] DcResult solve_dc(Circuit& circuit,
                                const NewtonOptions& options = {},
                                const Unknowns* initial = nullptr);

/// Throwing convenience wrapper: returns the solution or raises
/// NumericalError with diagnostics.
[[nodiscard]] Unknowns solve_dc_or_throw(Circuit& circuit,
                                         const NewtonOptions& options = {},
                                         const Unknowns* initial = nullptr);

}  // namespace icvbe::spice
