#pragma once
// Circuit: owns devices and the node table; assigns unknown indices.

#include <cmath>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "icvbe/common/error.hpp"
#include "icvbe/spice/bjt.hpp"
#include "icvbe/spice/device.hpp"
#include "icvbe/spice/diode.hpp"
#include "icvbe/spice/dynamic_devices.hpp"
#include "icvbe/spice/linear_devices.hpp"
#include "icvbe/spice/mosfet.hpp"

namespace icvbe::spice {

class Circuit {
 public:
  Circuit() = default;

  /// Get-or-create a named node. "0" and "gnd" map to ground.
  [[nodiscard]] NodeId node(std::string_view name);

  /// Number of nodes including ground.
  [[nodiscard]] int node_count() const noexcept {
    return static_cast<int>(node_names_.size());
  }

  /// Name of a node id (for diagnostics).
  [[nodiscard]] const std::string& node_name(NodeId n) const;

  /// Look up an existing node without creating it. Returns kGround for
  /// ground aliases and -1 if the name is unknown.
  [[nodiscard]] NodeId find_node(std::string_view name) const;

  // --- typed device factories (return references owned by the circuit) ---
  Resistor& add_resistor(std::string name, NodeId a, NodeId b, double ohms,
                         double tc1 = 0.0, double tc2 = 0.0);
  VoltageSource& add_vsource(std::string name, NodeId p, NodeId m,
                             double volts);
  CurrentSource& add_isource(std::string name, NodeId p, NodeId m,
                             double amps);
  Vcvs& add_vcvs(std::string name, NodeId p, NodeId m, NodeId cp, NodeId cm,
                 double gain);
  OpAmp& add_opamp(std::string name, NodeId out, NodeId inp, NodeId inn,
                   double gain = 1.0e6, double offset = 0.0);
  Diode& add_diode(std::string name, NodeId anode, NodeId cathode,
                   DiodeModel model, double area = 1.0);
  Bjt& add_bjt(std::string name, NodeId collector, NodeId base, NodeId emitter,
               BjtModel model, double area = 1.0, NodeId substrate = kGround);
  Mosfet& add_mosfet(std::string name, NodeId drain, NodeId gate,
                     NodeId source, MosfetModel model, double w_over_l = 1.0);
  Capacitor& add_capacitor(std::string name, NodeId a, NodeId b,
                           double farads, double ic_volts = std::nan(""));
  Inductor& add_inductor(std::string name, NodeId p, NodeId m,
                         double henries, double ic_amps = std::nan(""));

  /// Look up a device by name; throws CircuitError if absent or of the
  /// wrong type.
  template <typename T>
  [[nodiscard]] T& get(std::string_view name) {
    Device* d = find(name);
    if (d == nullptr) {
      throw CircuitError("no device named '" + std::string(name) + "'");
    }
    T* t = dynamic_cast<T*>(d);
    if (t == nullptr) {
      throw CircuitError("device '" + std::string(name) +
                         "' has unexpected type");
    }
    return *t;
  }

  /// Const lookup, for probes and read-only inspection of a solved circuit.
  template <typename T>
  [[nodiscard]] const T& get(std::string_view name) const {
    const Device* d = find(name);
    if (d == nullptr) {
      throw CircuitError("no device named '" + std::string(name) + "'");
    }
    const T* t = dynamic_cast<const T*>(d);
    if (t == nullptr) {
      throw CircuitError("device '" + std::string(name) +
                         "' has unexpected type");
    }
    return *t;
  }

  [[nodiscard]] Device* find(std::string_view name);
  [[nodiscard]] const Device* find(std::string_view name) const;

  [[nodiscard]] const std::vector<std::unique_ptr<Device>>& devices() const {
    return devices_;
  }

  /// Deep copy of the whole circuit: node table plus per-device clone()
  /// (full state, including temperature-derived values). Used for
  /// per-thread clones in parallel plan execution; the copy's unknown
  /// indices are re-assigned by its own SimSession.
  [[nodiscard]] Circuit clone() const;

  /// Total unknown count (non-ground nodes + aux); assigns aux indices.
  [[nodiscard]] int assign_unknowns();

  /// Broadcast a new device temperature and clear iteration state.
  void set_temperature(double t_kelvin);

  /// Last set_temperature value, if any (devices added later, or
  /// re-programmed resistors, need it re-applied to honour tempco).
  [[nodiscard]] bool has_temperature() const noexcept {
    return has_temperature_;
  }
  [[nodiscard]] double temperature() const noexcept { return temperature_; }

  /// Per-device temperature override on top of set_temperature (used by the
  /// electro-thermal loop to give each BJT its own junction temperature).
  void set_device_temperature(std::string_view name, double t_kelvin);

  /// Sum of device power at a solution [W].
  [[nodiscard]] double total_power(const Unknowns& x) const;

 private:
  template <typename T, typename... Args>
  T& emplace(Args&&... args);

  void require_unique_name(const std::string& name) const;

  std::vector<std::unique_ptr<Device>> devices_;
  std::map<std::string, std::size_t, std::less<>> device_index_;
  double temperature_ = 0.0;
  bool has_temperature_ = false;
  std::vector<std::string> node_names_{"0"};
  std::map<std::string, NodeId, std::less<>> node_ids_{{"0", kGround},
                                                       {"gnd", kGround}};
};

}  // namespace icvbe::spice
