#pragma once
// Linear circuit elements: resistor (with temperature coefficients),
// independent voltage/current sources, VCVS, and the op-amp (a VCVS with
// very high gain -- adequate for the bandgap loop which operates the
// amplifier in its linear region).

#include <optional>

#include "icvbe/spice/device.hpp"
#include "icvbe/spice/waveform.hpp"

namespace icvbe::spice {

/// Resistor with optional first/second-order temperature coefficients:
/// R(T) = R0 (1 + tc1 dT + tc2 dT^2), dT = T - tnom.
class Resistor final : public Device {
 public:
  Resistor(std::string name, NodeId a, NodeId b, double ohms, double tc1 = 0.0,
           double tc2 = 0.0, double tnom_kelvin = 300.15);

  void set_temperature(double t_kelvin) override;
  [[nodiscard]] std::unique_ptr<Device> clone() const override;
  void stamp(Stamper& stamper, const Unknowns& prev) override;
  void stamp_ac(AcStamper& ac, const Unknowns& op) const override;
  [[nodiscard]] double power(const Unknowns& x) const override;

  /// Current flowing a -> b at the given solution.
  [[nodiscard]] double current(const Unknowns& x) const;

  [[nodiscard]] double resistance() const noexcept { return r_now_; }
  [[nodiscard]] double nominal_resistance() const noexcept { return r0_; }

  /// Re-program the nominal value (used for the RadjA trim sweeps).
  void set_nominal_resistance(double ohms);

 private:
  NodeId a_;
  NodeId b_;
  double r0_;
  double tc1_;
  double tc2_;
  double tnom_;
  double r_now_;
};

/// Independent DC voltage source; positive terminal p. Uses one aux
/// unknown (the branch current flowing p -> m through the source).
class VoltageSource final : public Device {
 public:
  VoltageSource(std::string name, NodeId p, NodeId m, double volts);

  [[nodiscard]] int aux_count() const override { return 1; }
  [[nodiscard]] std::unique_ptr<Device> clone() const override;
  void stamp(Stamper& stamper, const Unknowns& prev) override;
  /// AC: the branch is a short for small signals (V = AC phasor, 0 without
  /// an AC spec) -- the DC bias never appears in the small-signal system.
  void stamp_ac(AcStamper& ac, const Unknowns& op) const override;

  /// Always 0: sources deliver power, they do not heat the die.
  [[nodiscard]] double power(const Unknowns& x) const override;

  /// Branch current p -> m (positive = conventional current out of the +
  /// terminal through the external circuit is -current()).
  [[nodiscard]] double current(const Unknowns& x) const;

  void set_voltage(double volts) { volts_ = volts; }
  [[nodiscard]] double voltage() const noexcept { return volts_; }

  /// Optional time-domain stimulus. DC analyses ignore it (the DC value
  /// stays whatever set_voltage programmed -- parsers use the waveform's
  /// dc_value(), its initial/offset value); TransientSolver re-applies
  /// value_at(t) while stepping.
  void set_waveform(Waveform w) { waveform_ = std::move(w); }
  [[nodiscard]] bool has_waveform() const noexcept {
    return waveform_.has_value();
  }
  [[nodiscard]] const Waveform& waveform() const { return *waveform_; }

  /// Small-signal stimulus ("AC <mag> [phase]" on the card): magnitude in
  /// volts, phase in degrees. A magnitude of 0 (the default) makes the
  /// source an AC short.
  void set_ac(double magnitude, double phase_deg = 0.0) {
    ac_magnitude_ = magnitude;
    ac_phase_deg_ = phase_deg;
  }
  [[nodiscard]] double ac_magnitude() const noexcept { return ac_magnitude_; }
  [[nodiscard]] double ac_phase_deg() const noexcept { return ac_phase_deg_; }

 private:
  NodeId p_;
  NodeId m_;
  double volts_;
  double ac_magnitude_ = 0.0;
  double ac_phase_deg_ = 0.0;
  std::optional<Waveform> waveform_;
};

/// Independent DC current source driving current `amps` from node p to
/// node m through the source (i.e. injecting into m, extracting from p).
class CurrentSource final : public Device {
 public:
  CurrentSource(std::string name, NodeId p, NodeId m, double amps);

  [[nodiscard]] std::unique_ptr<Device> clone() const override;
  void stamp(Stamper& stamper, const Unknowns& prev) override;
  /// AC: an open circuit for small signals; with an AC spec it injects the
  /// stimulus phasor (p -> m through the source, like the DC convention).
  void stamp_ac(AcStamper& ac, const Unknowns& op) const override;

  void set_current(double amps) { amps_ = amps; }
  [[nodiscard]] double current() const noexcept { return amps_; }

  /// Optional time-domain stimulus (see VoltageSource::set_waveform).
  void set_waveform(Waveform w) { waveform_ = std::move(w); }
  [[nodiscard]] bool has_waveform() const noexcept {
    return waveform_.has_value();
  }
  [[nodiscard]] const Waveform& waveform() const { return *waveform_; }

  /// Small-signal stimulus ("AC <mag> [phase]"): amps / degrees.
  void set_ac(double magnitude, double phase_deg = 0.0) {
    ac_magnitude_ = magnitude;
    ac_phase_deg_ = phase_deg;
  }
  [[nodiscard]] double ac_magnitude() const noexcept { return ac_magnitude_; }
  [[nodiscard]] double ac_phase_deg() const noexcept { return ac_phase_deg_; }

 private:
  NodeId p_;
  NodeId m_;
  double amps_;
  double ac_magnitude_ = 0.0;
  double ac_phase_deg_ = 0.0;
  std::optional<Waveform> waveform_;
};

/// Voltage-controlled voltage source: V(p) - V(m) = gain (V(cp) - V(cm)).
class Vcvs final : public Device {
 public:
  Vcvs(std::string name, NodeId p, NodeId m, NodeId cp, NodeId cm,
       double gain);

  [[nodiscard]] int aux_count() const override { return 1; }
  [[nodiscard]] std::unique_ptr<Device> clone() const override;
  void stamp(Stamper& stamper, const Unknowns& prev) override;
  void stamp_ac(AcStamper& ac, const Unknowns& op) const override;

  [[nodiscard]] double current(const Unknowns& x) const;
  void set_gain(double gain) { gain_ = gain; }
  [[nodiscard]] double gain() const noexcept { return gain_; }

 private:
  NodeId p_;
  NodeId m_;
  NodeId cp_;
  NodeId cm_;
  double gain_;
};

/// Operational amplifier: out = gain (V(inp) - V(inn)) + offset, referenced
/// to ground, with finite open-loop gain (default 1e6) and an input offset
/// voltage -- the paper's "offset of the op amp stage" second-order effect.
class OpAmp final : public Device {
 public:
  OpAmp(std::string name, NodeId out, NodeId inp, NodeId inn,
        double gain = 1.0e6, double offset_volts = 0.0);

  [[nodiscard]] int aux_count() const override { return 1; }
  [[nodiscard]] std::unique_ptr<Device> clone() const override;
  void stamp(Stamper& stamper, const Unknowns& prev) override;
  /// AC: the same gain-normalised constraint row without the offset (an
  /// input offset is bias, not signal).
  void stamp_ac(AcStamper& ac, const Unknowns& op) const override;

  void set_offset(double volts) { offset_ = volts; }
  [[nodiscard]] double offset() const noexcept { return offset_; }

 private:
  NodeId out_;
  NodeId inp_;
  NodeId inn_;
  double gain_;
  double offset_;
};

}  // namespace icvbe::spice
