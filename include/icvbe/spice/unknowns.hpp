#pragma once
// Solution vector of the MNA system: node voltages (ground excluded) plus
// auxiliary branch currents (voltage-source-like devices).

#include <vector>

namespace icvbe::spice {

/// Node identifier. 0 is always ground.
using NodeId = int;
inline constexpr NodeId kGround = 0;

/// MNA unknown vector with node-voltage accessors. Unknown i corresponds to
/// node (i+1) for i < node_count-1; aux unknowns follow.
class Unknowns {
 public:
  Unknowns() = default;
  explicit Unknowns(std::size_t size) : x_(size, 0.0) {}

  [[nodiscard]] double node_voltage(NodeId n) const {
    return n == kGround ? 0.0 : x_[static_cast<std::size_t>(n - 1)];
  }

  [[nodiscard]] double aux(int index) const {
    return x_[static_cast<std::size_t>(index)];
  }

  [[nodiscard]] std::size_t size() const noexcept { return x_.size(); }
  [[nodiscard]] std::vector<double>& raw() noexcept { return x_; }
  [[nodiscard]] const std::vector<double>& raw() const noexcept { return x_; }

 private:
  std::vector<double> x_;
};

}  // namespace icvbe::spice
