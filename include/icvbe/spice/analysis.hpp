#pragma once
// Sweep analyses on top of the DC solver: DC source sweeps (Fig. 5's
// IC(VBE) families) and temperature sweeps (VBE(T), VREF(T)).
//
// These free functions are thin plan-builders: each one assembles a typed
// SweepAxis (plan.hpp) and executes it on a temporary SimSession. They
// remain for one-shot callers and for legacy std::function probes; new
// code should build an AnalysisPlan and call SimSession::run directly.

#include <string>
#include <vector>

#include "icvbe/common/series.hpp"
#include "icvbe/spice/dc_solver.hpp"
#include "icvbe/spice/plan.hpp"
#include "icvbe/spice/sim_session.hpp"

namespace icvbe::spice {

/// Sweep a voltage source and record probe(x) at each point. Points are
/// warm-started from their predecessor; `initial` seeds the first point
/// (e.g. from .NODESET hints).
[[nodiscard]] Series dc_sweep_vsource(Circuit& circuit,
                                      const std::string& source_name,
                                      const std::vector<double>& values,
                                      const SweepProbe& probe,
                                      const NewtonOptions& options = {},
                                      const Unknowns* initial = nullptr);

/// Sweep a current source similarly.
[[nodiscard]] Series dc_sweep_isource(Circuit& circuit,
                                      const std::string& source_name,
                                      const std::vector<double>& values,
                                      const SweepProbe& probe,
                                      const NewtonOptions& options = {},
                                      const Unknowns* initial = nullptr);

/// Sweep the global circuit temperature [K] and record probe(x).
[[nodiscard]] Series temperature_sweep(Circuit& circuit,
                                       const std::vector<double>& t_kelvin,
                                       const SweepProbe& probe,
                                       const NewtonOptions& options = {},
                                       const Unknowns* initial = nullptr);

/// Convenience probe factories. Both return typed spice::Probe values
/// (usable directly as SweepProbe); the circuit argument is used for eager
/// name validation only.
[[nodiscard]] Probe probe_node_voltage(const Circuit& circuit,
                                       const std::string& node_name);
[[nodiscard]] Probe probe_vsource_current(const std::string& device_name);

/// Evenly spaced grid helper [first, last] with n points (n >= 2).
[[nodiscard]] std::vector<double> linspace(double first, double last, int n);

/// Logarithmically spaced grid helper (first, last > 0).
[[nodiscard]] std::vector<double> logspace_decades(double first, double last,
                                                   int per_decade);

}  // namespace icvbe::spice
