#pragma once
// SPICE-like netlist text format: parser (text -> Circuit) and writer
// (Circuit construction script -> text), so test cells and experiments can
// be described in decks instead of C++.
//
// Grammar (case-insensitive keywords, one statement per line, '*' or ';'
// comments, '+' continuation as in SPICE):
//
//   R<name> <n+> <n-> <value> [TC1=x] [TC2=x]
//   V<name> <n+> <n-> <value | waveform> [AC <mag> [phase-deg]]
//   I<name> <n+> <n-> <value | waveform> [AC <mag> [phase-deg]]
//       waveform = DC <v> | PULSE(v1 v2 [td tr tf pw per])
//                | SIN(vo va freq [td theta]) | PWL(t1 v1 t2 v2 ...)
//       (a waveform source's DC value is the waveform's initial/offset
//       value: PULSE v1, SIN vo, PWL first knot; the AC group is the
//       small-signal stimulus, and may also stand alone for a DC-0 source)
//   C<name> <n+> <n-> <farads> [IC=volts]
//   L<name> <n+> <n-> <henries> [IC=amps]
//   E<name> <n+> <n-> <nc+> <nc-> <gain>               (VCVS)
//   U<name> <out> <in+> <in-> [GAIN=x] [OFFSET=x]      (op-amp)
//   D<name> <anode> <cathode> <model> [AREA=x]
//   Q<name> <collector> <base> <emitter> <model> [AREA=x] [SUBSTRATE=node]
//   M<name> <drain> <gate> <source> <model> [WL=x]     (level-1 MOSFET,
//       bulk tied to source; WL is the W/L ratio)
//   .MODEL <name> D   (IS=... N=... EG=... XTI=... TNOM=...)
//   .MODEL <name> NMOS|PMOS (VTO=... KP=... LAMBDA=... TNOM=... VTOTC=...
//                            MOBEXP=...)
//   .MODEL <name> PNP|NPN (IS=... BF=... BR=... NF=... NR=... ISE=... NE=...
//                          ISC=... NC=... VAF=... VAR=... EG=... XTI=...
//                          TNOM=... ISS=... NS=... EGS=... XTIS=...
//                          ISSE=... NSE=... EGSE=... XTISE=... BFS=...)
//   .TEMP <celsius>
//   .NODESET V(<node>)=<value> [V(<node>)=<value> ...]  (initial guess)
//   .IC V(<node>)=<value> [V(<node>)=<value> ...]       (transient ICs)
//   .END                                                (optional)
//
// Analysis directives parse straight into a declarative AnalysisPlan
// (plan.hpp) so a deck fully describes a sweep study:
//
//   .DC <src> <start> <stop> <incr> [<src2> <start2> <stop2> <incr2>]
//       sweep a V/I source, a resistor (R...) or TEMP (Celsius); the first
//       spec is the innermost axis, the optional second the outer one
//   .STEP <what> <start> <stop> <incr>       outer axis, linear steps
//   .STEP <what> DEC <start> <stop> <n>      log grid, n points/decade
//   .STEP <what> LIST <v1> <v2> ...          explicit point list
//   .PROBE <expr> [<expr> ...]               probed quantities, e.g.
//       V(out)  V(a,b)  I(V1)  IC(Q1)  V(a)-V(b)  (no spaces inside one
//       expression; see parse_probe)
//   .TRAN <tstep> <tstop> [<tstart> [<tmax>]] [UIC] [METHOD=BE|TRAP]
//       time-domain analysis (cannot be combined with .DC/.STEP/.AC in one
//       deck); with .PROBE it parses into an AnalysisPlan whose transient
//       spec carries the deck's .IC directives
//   .AC <DEC|OCT|LIN> <points> <fstart> <fstop>
//       small-signal frequency sweep about the DC operating point (one
//       analysis per deck, like .TRAN); .PROBE then takes AC quantities:
//       VM(n) VDB(n) VP(n) VR(n) VI(n), node pairs allowed, bare V(n)
//       reads the magnitude. Sources carrying an "AC <mag> [phase]" group
//       provide the stimulus.
//
// Numbers accept SPICE engineering suffixes: f p n u m k meg g t,
// case-insensitively (M is milli, MEG is mega -- by spelling, never case),
// optionally followed by a unit annotation (ohm, v, a, f, h, hz, s, ...).
// Anything else trailing a number ("10kk") is rejected as ambiguous.
// Node "0" or "gnd" is ground.

#include <iosfwd>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "icvbe/spice/circuit.hpp"
#include "icvbe/spice/plan.hpp"

namespace icvbe::spice {

/// Raised on malformed netlist text; message carries the line number.
class NetlistError : public CircuitError {
 public:
  explicit NetlistError(const std::string& what) : CircuitError(what) {}
};

/// Result of parsing: the circuit plus deck-level directives.
struct ParsedNetlist {
  std::unique_ptr<Circuit> circuit;
  double temperature_celsius = 27.0;  ///< .TEMP, default SPICE 27 C
  bool has_temp_directive = false;
  std::map<std::string, BjtModel> bjt_models;
  std::map<std::string, DiodeModel> diode_models;
  std::map<std::string, MosfetModel> mosfet_models;
  /// .NODESET hints: node name -> initial voltage guess.
  std::map<std::string, double> nodesets;
  /// .IC directives: node name -> transient initial condition [V].
  std::map<std::string, double> ics;
  /// .PROBE expressions in deck order.
  std::vector<Probe> probes;
  /// Deck-described analyses in the pinned canonical execution order
  /// [DC/.STEP sweep, .TRAN, .AC] -- a deck carries at most one plan per
  /// family, and each plan's probes are the .PROBE subset its evaluation
  /// domain supports (see probe_supported_in). Card order in the deck
  /// never changes this ordering.
  std::vector<AnalysisPlan> plans;
  /// First entry of `plans` (the whole story for single-analysis decks),
  /// kept so existing callers read the deck's analysis unchanged.
  std::optional<AnalysisPlan> plan;

  /// The deck's plan of one analysis family, or nullptr if absent.
  [[nodiscard]] const AnalysisPlan* find_plan(AnalysisKind kind)
      const noexcept;
};

/// Parse a netlist from text. Throws NetlistError with line context.
[[nodiscard]] ParsedNetlist parse_netlist(std::string_view text);

/// Parse from a stream (reads to EOF).
[[nodiscard]] ParsedNetlist parse_netlist(std::istream& in);

/// Parse a single SPICE-format number ("2.5k", "1e-15", "10MEG", "47u").
/// Throws NetlistError if the text is not a number.
[[nodiscard]] double parse_spice_number(std::string_view token);

/// Serialise a BJT model card in the dialect above.
[[nodiscard]] std::string format_bjt_model(const std::string& name,
                                           const BjtModel& model);

/// Serialise a diode model card.
[[nodiscard]] std::string format_diode_model(const std::string& name,
                                             const DiodeModel& model);

}  // namespace icvbe::spice
