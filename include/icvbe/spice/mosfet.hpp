#pragma once
// Level-1 (Shichman-Hodges) MOSFET -- the CMOS half of the paper's BiCMOS
// process. Used to build the transistor-level op-amp variant of the test
// cell (the ideal OpAmp device remains the default).

#include "icvbe/spice/device.hpp"

namespace icvbe::spice {

/// Level-1 model card.
struct MosfetModel {
  enum class Type { kNmos, kPmos };
  Type type = Type::kNmos;

  double vto = 0.7;      ///< threshold voltage at tnom [V] (positive for
                         ///< NMOS; PMOS uses -vto internally)
  double kp = 50e-6;     ///< transconductance parameter [A/V^2]
  double lambda = 0.02;  ///< channel-length modulation [1/V]
  double tnom = 300.15;  ///< reference temperature [K]

  // First-order temperature behaviour of the two dominant effects:
  double vto_tc = -2.0e-3;   ///< dVTO/dT [V/K]
  double mobility_exp = 1.5; ///< KP ~ (T/tnom)^-mobility_exp
};

/// Three-terminal MOSFET (bulk tied to source; no body effect -- adequate
/// for the op-amp macrocell where sources sit on rails or mirror nodes).
class Mosfet final : public Device {
 public:
  Mosfet(std::string name, NodeId drain, NodeId gate, NodeId source,
         MosfetModel model, double w_over_l = 1.0);

  void set_temperature(double t_kelvin) override;
  [[nodiscard]] std::unique_ptr<Device> clone() const override;
  void stamp(Stamper& stamper, const Unknowns& prev) override;
  /// AC: gm / gds at the committed OP (no capacitances in the level-1
  /// model, so the small-signal MOSFET is purely conductive).
  void stamp_ac(AcStamper& ac, const Unknowns& op) const override;
  [[nodiscard]] bool is_nonlinear() const override { return true; }
  [[nodiscard]] double power(const Unknowns& x) const override;

  /// Drain current (positive into the drain for NMOS, out for PMOS).
  [[nodiscard]] double drain_current(const Unknowns& x) const;

  /// Gate overdrive VGS - VTH in the type-normalised frame at solution x.
  [[nodiscard]] double overdrive(const Unknowns& x) const;

  [[nodiscard]] const MosfetModel& model() const noexcept { return model_; }
  [[nodiscard]] double w_over_l() const noexcept { return w_over_l_; }

 private:
  struct Eval {
    double id;         // drain current, type frame
    double gm, gds;    // partials wrt vgs, vds (type frame)
  };
  [[nodiscard]] Eval evaluate(double vgs, double vds) const;

  /// Clamp the raw type-frame voltages in place (the iteration limiting)
  /// and evaluate at the clamped point -- the ONE linearisation both
  /// stamp() and stamp_ac() use, so the DC and AC small-signal models
  /// cannot drift. The clamped (vgs, vds) are the linearisation point the
  /// DC companion RHS needs.
  [[nodiscard]] Eval linearise(double& vgs, double& vds) const;

  NodeId d_, g_, s_;
  MosfetModel model_;
  double w_over_l_;
  double sign_;        // +1 NMOS, -1 PMOS
  double vth_now_;     // temperature-updated threshold (positive)
  double beta_now_;    // kp * W/L at temperature
};

}  // namespace icvbe::spice
