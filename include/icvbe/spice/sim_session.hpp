#pragma once
// SimSession: a persistent solver session bound to one Circuit.
//
// The repository's workloads -- IC(VBE) families, VBE(T)/VREF(T) sweeps,
// trim searches, lot-level Monte Carlo -- are thousands of repeated DC
// solves of the *same* topology. A session assigns unknowns once, owns the
// preallocated MNA matrix / RHS / LU workspace, caches the independent
// sources (no dynamic_cast scans per solve), and carries warm-start
// continuation from solve to solve. After the first solve, the Newton
// inner loop performs zero heap allocations (asserted by the alloc-hook
// test and the throughput bench).
//
// The legacy free functions in dc_solver.hpp / analysis.hpp remain as thin
// wrappers over a temporary session.

#include <functional>
#include <string>
#include <vector>

#include "icvbe/common/series.hpp"
#include "icvbe/linalg/solve.hpp"
#include "icvbe/linalg/sparse.hpp"
#include "icvbe/spice/circuit.hpp"

namespace icvbe::spice {

/// Linear-engine selection for a session. kAuto compares the unknown count
/// against NewtonOptions::sparse_threshold at bind time; the choice is
/// fixed until rebind() (and inherited by the per-thread clones of a
/// parallel plan run, so results stay bit-identical for any thread count).
enum class SparseMode {
  kAuto,    ///< sparse iff unknowns >= sparse_threshold (default)
  kDense,   ///< always the dense workspace LU
  kSparse,  ///< always the CSR engine with cached symbolic analysis
};

struct NewtonOptions {
  int max_iterations = 200;      ///< per Newton attempt
  double v_abstol = 1e-9;        ///< node voltage absolute tolerance [V]
  double i_abstol = 1e-12;       ///< aux current absolute tolerance [A]
  double reltol = 1e-6;          ///< relative tolerance on all unknowns
  double max_step_volts = 2.0;   ///< damping: max node-voltage change/iter
  double gmin_floor = 1e-12;     ///< final gmin left in the matrix
  int gmin_steps = 8;            ///< decades of gmin ramp when needed
  int source_steps = 10;         ///< source-stepping ramp points when needed
  SparseMode sparse = SparseMode::kAuto;  ///< linear engine selection
  /// Unknown count at/above which kAuto picks the sparse engine. The
  /// default tracks the measured dense/sparse crossover on generated
  /// netlists (bench_sparse_solve; see results/BENCH_sparse.json).
  int sparse_threshold = 64;
  /// Symbolic-path knobs for the sparse engine (ordering, BTF, supernode
  /// thresholds). Applied to every sparse factorization the session owns
  /// (real DC/TRAN, complex AC, batched lanes) at bind/rebind time.
  /// Defaults select AMD + BTF; `linalg::SparseOptions::legacy()` restores
  /// the original set-based minimum-degree path for A/B comparisons.
  linalg::SparseOptions sparse_options{};
};

struct DcResult {
  Unknowns solution;
  bool converged = false;
  int iterations = 0;        ///< total Newton iterations spent
  std::string strategy;      ///< "newton", "gmin", or "source"
};

/// Legacy function probe: maps a solved operating point to the scalar
/// being recorded. New code should prefer the typed, serialisable
/// spice::Probe (plan.hpp), which converts implicitly to a SweepProbe.
using SweepProbe = std::function<double(const Circuit&, const Unknowns&)>;

/// Setter: applies one sweep value to the circuit (source value,
/// temperature, trim resistance, ...).
using SweepSetter = std::function<void(double)>;

// Declarative analysis values (plan.hpp); execution lives on the session.
struct AnalysisPlan;
class SweepAxis;
class SweepResult;
class RunObserver;

/// Persistent solver session bound to one Circuit (see the header
/// comment for the motivation).
///
/// Thread-safety: a session is single-threaded -- it mutates its bound
/// circuit (device limiting state, source values) on every solve. The
/// sanctioned parallelism is run() with plan.threads != 1, which fans
/// outer rows over per-thread Circuit::clone()s each owning a private
/// session; results are bit-identical for any thread count.
class SimSession {
 public:
  /// Bind to `circuit`, assign unknowns, and preallocate every buffer the
  /// Newton loop needs (including the one-pass sparse pattern discovery
  /// when the CSR engine is selected).
  /// \pre `circuit` has at least one non-ground node or aux unknown, and
  ///      outlives the session.
  /// \post unknown indices are assigned; adding devices or nodes
  ///       afterwards requires rebind().
  explicit SimSession(Circuit& circuit, NewtonOptions options = {});

  SimSession(const SimSession&) = delete;
  SimSession& operator=(const SimSession&) = delete;

  /// Re-assign unknowns and re-size the workspace after a topology change.
  /// \post the warm start is invalidated; the linear engine is re-chosen
  ///       from options() (auto threshold against the new unknown count)
  ///       and the idle engine's storage is released.
  void rebind();

  [[nodiscard]] Circuit& circuit() noexcept { return *circuit_; }
  [[nodiscard]] const Circuit& circuit() const noexcept { return *circuit_; }
  [[nodiscard]] int unknown_count() const noexcept { return n_unknowns_; }
  /// True if this session bound the sparse CSR engine (decided at
  /// construction / rebind() from options().sparse and sparse_threshold).
  [[nodiscard]] bool uses_sparse_engine() const noexcept {
    return use_sparse_;
  }
  [[nodiscard]] NewtonOptions& options() noexcept { return options_; }
  [[nodiscard]] const NewtonOptions& options() const noexcept {
    return options_;
  }

  /// Solve the DC operating point at the current circuit state. The result
  /// references session-owned storage and is valid until the next solve.
  /// Start point priority: `initial` if given, else the previous solution
  /// (warm-start continuation, on by default), else a cold start.
  /// Falls back to gmin stepping, then source stepping, like the legacy
  /// solver.
  /// \pre the circuit's device count is unchanged since bind/rebind()
  ///      (violations throw CircuitError rather than stamping into a
  ///      stale pattern).
  /// \post on convergence the solution doubles as the next warm start;
  ///       source values are restored on every exit path even when source
  ///       stepping was used.
  /// Allocation guarantee: after the first solve at a given size, the
  /// Newton inner loop performs zero heap allocations (asserted by
  /// test_session via the counting operator-new hook).
  const DcResult& solve(const Unknowns* initial = nullptr);

  /// Like solve() but throws NumericalError if not converged.
  const Unknowns& solve_or_throw(const Unknowns* initial = nullptr);

  /// Small-signal (.AC) solve at angular frequency `omega` [rad/s] about
  /// the committed DC operating point -- the last converged solve() result
  /// or an explicitly seeded warm start (seed_warm_start); if neither
  /// exists, the operating point is solved first (solve_or_throw).
  ///
  /// Every device stamps its linearised complex admittance at the OP
  /// through the engine the session bound at rebind time: the dense
  /// complex workspace below the sparse threshold, or a complex CSR
  /// matrix whose frozen pattern is discovered once and whose LU reuses
  /// one cached symbolic analysis across the whole frequency sweep. The
  /// gmin_floor diagonal is included, mirroring the DC system.
  ///
  /// Returns the complex unknown phasors (node voltages then aux branch
  /// currents), session-owned and valid until the next solve_ac call.
  /// Allocation guarantee: after the first solve_ac at a given size (which
  /// materialises the complex engine and, for sparse, runs the symbolic
  /// analysis), further calls perform zero heap allocations (asserted by
  /// test_ac via the counting operator-new hook).
  /// Throws NumericalError if the AC system is singular.
  const linalg::ComplexVector& solve_ac(double omega);

  /// Warm-continuation solve with an analytic fallback -- the pattern the
  /// bandgap cells use. If no warm start is available, seed from
  /// make_guess(); if the continuation then fails to converge (e.g. it
  /// slid into a degenerate basin), retry once from a fresh make_guess()
  /// and throw NumericalError if that also fails.
  template <typename GuessFactory>
  const Unknowns& solve_warm_or(GuessFactory&& make_guess) {
    if (!has_warm_start()) seed_warm_start(make_guess());
    const DcResult& r = solve();
    if (r.converged) return r.solution;
    const Unknowns guess = make_guess();
    return solve_or_throw(&guess);
  }

  /// Start a new parameter variant (a Monte-Carlo die, a .STEP corner) on
  /// the *same* bound topology: forget the warm start and every device's
  /// limiting state, so the next solve's trajectory is bit-identical to a
  /// freshly-constructed session over a freshly-built circuit -- without
  /// paying rebind's pattern discovery or invalidating the cached sparse
  /// symbolic analysis. Call it after re-programming per-die parameter
  /// values (ParamDeltaSet); value changes never alter the frozen pattern.
  void begin_variant();

  /// Warm-start continuation across solves (default on).
  void set_warm_start_enabled(bool on) noexcept { warm_start_enabled_ = on; }
  /// True if a previous (or seeded) solution is available to warm-start.
  [[nodiscard]] bool has_warm_start() const noexcept { return have_last_; }
  /// Forget the previous solution (next solve is cold unless seeded).
  void invalidate_warm_start() noexcept { have_last_ = false; }
  /// Seed the continuation explicitly (e.g. from .NODESET hints or an
  /// analytic guess). Ignored if the size does not match.
  void seed_warm_start(const Unknowns& x);

  /// Batched sweep: for each value call setter(value), solve, and record
  /// probe(circuit, solution). Points warm-start from their predecessor.
  /// Throws NumericalError if any point fails to converge.
  [[nodiscard]] Series sweep(const std::vector<double>& values,
                             const SweepSetter& setter,
                             const SweepProbe& probe,
                             const std::string& name = "sweep");

  /// Typed-axis sweep: bind `axis` to this circuit and sweep it, recording
  /// `probe` at every point (legacy function-probe compatibility channel;
  /// run() below is the fully typed path).
  [[nodiscard]] Series sweep(const SweepAxis& axis, const SweepProbe& probe,
                             const std::string& name = "sweep");

  /// Execute a declarative AnalysisPlan (defined in plan.hpp).
  ///
  /// Points along the innermost axis warm-start from their predecessor.
  /// 1-axis plans run in place and inherit the session's current
  /// continuation state (exactly like sweep()). For 2-axis plans every
  /// outer row starts from a deterministic state -- devices reset, warm
  /// start re-seeded from whatever seed was live when run() was called
  /// (e.g. .NODESET hints), or cold -- so rows are independent of
  /// execution order; with plan.threads != 1 the outer rows are fanned
  /// across a thread pool over per-thread circuit clones and the result is
  /// bit-identical for any thread count (the LotCampaign discipline).
  /// Probes are compiled once per run: the steady-state per-point path
  /// performs no heap allocations and no name lookups.
  ///
  /// Plans with `plan.transient` set run the time-domain path instead
  /// (TransientSolver; axes must be empty, the result's single axis is
  /// TIME at the accepted timepoints).
  /// \pre every probe/axis name resolves against the bound circuit.
  /// \post the session's NewtonOptions are restored on all exit paths
  ///       (the run executes under plan.options).
  /// Throws PlanError on malformed plans, NumericalError if a point fails
  /// to converge.
  ///
  /// A non-null `observer` streams the run incrementally: on_begin once
  /// with the grid shape, then on_row per completed point (see RunObserver
  /// in plan.hpp for the threading/cancellation contract). When the
  /// observer cancels, run() throws CancelledError within one point/step;
  /// the session stays warm and usable. With observer == nullptr the
  /// per-point path is unchanged (and stays allocation-free).
  [[nodiscard]] SweepResult run(const AnalysisPlan& plan,
                                RunObserver* observer = nullptr);

  /// Cached independent sources (discovered once at bind time).
  [[nodiscard]] const std::vector<VoltageSource*>& voltage_sources()
      const noexcept {
    return vsources_;
  }
  [[nodiscard]] const std::vector<CurrentSource*>& current_sources()
      const noexcept {
    return isources_;
  }

 private:
  /// One Newton attempt at fixed gmin; allocation-free. Returns true on
  /// convergence; x holds the final iterate either way.
  bool newton_attempt(double gmin, Unknowns& x, int& iterations);

  /// AC-plan execution (defined with the rest of the plan machinery in
  /// plan.cpp). \pre plan.ac is set and plan.axes is empty.
  [[nodiscard]] SweepResult run_ac(const AnalysisPlan& plan,
                                   RunObserver* observer);

  /// Scale every cached independent source by lambda (source stepping).
  void scale_sources(double lambda);
  /// Snapshot / restore the nominal source values around source stepping.
  void snapshot_sources();

  Circuit* circuit_;
  NewtonOptions options_;
  int n_unknowns_ = 0;
  int node_unknowns_ = 0;
  std::size_t bound_device_count_ = 0;

  // Exactly one linear engine is live per bind: the dense workspace pair
  // (a_, lu_) below threshold, the CSR pair (sa_, slu_) above it. The idle
  // engine's storage is released at rebind() -- a 5000-unknown session
  // must not carry a 200 MB dense matrix it never factors.
  bool use_sparse_ = false;
  linalg::Matrix a_;
  linalg::Vector b_;
  linalg::Vector x_new_;
  linalg::LuFactorization lu_;
  linalg::SparseMatrix sa_;
  linalg::SparseLuFactorization slu_;

  // Complex twin of the bound engine for AC solves, materialised lazily by
  // the first solve_ac() (a DC-only session never pays for it) and
  // released at rebind(). The sparse pattern is discovered by one
  // stamp_ac pass, then frozen -- the same build-once discipline as sa_.
  bool ac_ready_ = false;
  linalg::ComplexMatrix ca_;
  linalg::ComplexVector cb_;
  linalg::ComplexLuFactorization clu_;
  linalg::ComplexSparseMatrix csa_;
  linalg::ComplexSparseLuFactorization cslu_;
  // The sparse symbolic analysis is pinned to the first frequency a
  // session stamped (the sweep's "prime"): if a later point's refactor
  // collapsed the frozen pivots and re-analysed, the next solve_ac
  // re-pins at this omega first, so every point's factorisation is a
  // pure function of (op, omega, prime omega) -- never of sweep order or
  // worker scheduling (the bit-identity discipline; see run_ac).
  double ac_prime_omega_ = 0.0;
  int ac_pinned_analysis_ = 0;

  Unknowns x_;        ///< working iterate
  Unknowns x_stage_;  ///< gmin / source stepping iterate
  DcResult result_;

  std::vector<VoltageSource*> vsources_;
  std::vector<CurrentSource*> isources_;
  std::vector<double> vsource_base_;
  std::vector<double> isource_base_;

  bool warm_start_enabled_ = true;
  bool have_last_ = false;
};

}  // namespace icvbe::spice
