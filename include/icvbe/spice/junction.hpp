#pragma once
// Shared junction numerics: overflow-safe exponential and the classic
// SPICE3 pnjlim junction-voltage limiter that keeps Newton from exploding
// through the exponential.

#include <cstddef>

namespace icvbe::spice {

/// exp(x) linearised above `cap` so companion conductances stay finite
/// during wild Newton excursions. Computed with common::vexp (<= 4 ulp of
/// std::exp, see simd.hpp) so the scalar and batched stamping paths share
/// one exp implementation bit-for-bit.
[[nodiscard]] double safe_exp(double x, double cap = 200.0);

/// safe_exp over a contiguous array, SIMD packs across elements. Each
/// element's result is bit-identical to safe_exp(x[i], cap) -- the batched
/// device-evaluation path depends on that to match the per-die fallback.
void safe_exp_many(const double* x, double* out, std::size_t n,
                   double cap = 200.0);

/// SPICE3 pnjlim: limit the new junction voltage `vnew` given the previous
/// accepted `vold`, thermal voltage `vt` and critical voltage `vcrit`.
[[nodiscard]] double pnjlim(double vnew, double vold, double vt,
                            double vcrit);

/// Critical voltage for a junction with saturation current is_amps at
/// thermal voltage vt: vcrit = vt ln(vt / (sqrt(2) is)).
[[nodiscard]] double junction_vcrit(double vt, double is_amps);

}  // namespace icvbe::spice
