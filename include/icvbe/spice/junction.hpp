#pragma once
// Shared junction numerics: overflow-safe exponential and the classic
// SPICE3 pnjlim junction-voltage limiter that keeps Newton from exploding
// through the exponential.

namespace icvbe::spice {

/// exp(x) linearised above `cap` so companion conductances stay finite
/// during wild Newton excursions.
[[nodiscard]] double safe_exp(double x, double cap = 200.0);

/// SPICE3 pnjlim: limit the new junction voltage `vnew` given the previous
/// accepted `vold`, thermal voltage `vt` and critical voltage `vcrit`.
[[nodiscard]] double pnjlim(double vnew, double vold, double vt,
                            double vcrit);

/// Critical voltage for a junction with saturation current is_amps at
/// thermal voltage vt: vcrit = vt ln(vt / (sqrt(2) is)).
[[nodiscard]] double junction_vcrit(double vt, double is_amps);

}  // namespace icvbe::spice
