#pragma once
// BatchDcSession: lockstep DC Newton solver for K same-topology circuits
// ("lanes") sharing one frozen sparse pattern and one cached symbolic
// analysis -- the solver half of the batched lot engine.
//
// A lot of dies (or a .STEP corner family) is thousands of solves of the
// *same* topology where only parameter values differ: every die shares the
// sparse pattern and, in practice, the pivot sequence. The per-die path
// pays pattern discovery + symbolic analysis + a scalar refactor/solve per
// die; this session pays them once, then carries K dies per Newton
// iteration through SparseLuFactorizationT::refactor_batch/solve_batch
// (SoA value planes, lane-fastest inner loops).
//
// Determinism contract (what makes batched results bit-identical to the
// per-die scalar path, for any thread count and any lane count):
//  * each lane's per-iteration arithmetic -- stamping, damping, tolerance
//    checks -- is exactly SimSession::newton_attempt's, and the batched
//    refactor/solve produce bit-identical factors/solutions to the scalar
//    sparse engine under the same pivot sequence;
//  * the analysis is primed once from a caller-chosen reference state
//    (prime()), never re-pivoted mid-flight, so no lane's values can
//    perturb another lane's factors;
//  * a lane whose values reject the frozen pivots, fail to converge in
//    plain Newton, or go non-finite is *flagged* (needs_solo) and the
//    caller re-runs that die through the ordinary scalar path -- which is
//    the same fallback ladder the per-die path would have taken.
//
// The implicit assumption -- every die's own symbolic analysis would have
// chosen the same pivot sequence as the reference -- holds for lot-scale
// parameter spreads (percent-level value changes against a 0.5 relative
// pivot threshold) and is asserted bit-exactly by test_lot_batch and the
// bench gate over thousands of dies.

#include <cstddef>
#include <vector>

#include "icvbe/linalg/sparse.hpp"
#include "icvbe/spice/bjt.hpp"
#include "icvbe/spice/circuit.hpp"
#include "icvbe/spice/linear_devices.hpp"
#include "icvbe/spice/sim_session.hpp"

namespace icvbe::spice {

/// Per-lane outcome of BatchDcSession::solve_active().
struct BatchLaneStatus {
  bool converged = false;   ///< plain Newton converged; solution() is valid
  bool needs_solo = false;  ///< lane left the lockstep; re-run it solo
  int iterations = 0;       ///< Newton iterations this lane consumed
};

/// See header comment. Lanes are bound once (same topology required:
/// equal unknown/node/device counts, and devices stamping the same
/// pattern); per-die parameter values are then re-programmed between
/// solves (ParamDeltaSet + begin_variant) without any rebinding.
///
/// Thread-safety: single-threaded, like SimSession; parallel lot workers
/// each own a private BatchDcSession over private circuit lanes.
class BatchDcSession {
 public:
  /// Bind to `lanes` circuits. Runs one pattern-discovery stamp pass on
  /// lane 0 and preallocates every buffer; the sparse batch engine is
  /// always used (that is the point), regardless of options.sparse.
  /// \pre all lanes share the topology of lane 0 and outlive the session.
  explicit BatchDcSession(std::vector<Circuit*> lanes,
                          NewtonOptions options = {});

  BatchDcSession(const BatchDcSession&) = delete;
  BatchDcSession& operator=(const BatchDcSession&) = delete;

  [[nodiscard]] std::size_t lanes() const noexcept { return lanes_.size(); }
  [[nodiscard]] int unknown_count() const noexcept { return n_unknowns_; }
  [[nodiscard]] Circuit& lane_circuit(std::size_t lane) {
    return *lanes_[lane];
  }
  [[nodiscard]] const NewtonOptions& options() const noexcept {
    return options_;
  }

  /// Pin the shared symbolic analysis: stamp `reference_lane`'s circuit at
  /// its current start state (warm seed if set, else cold) and run the
  /// scalar analysis on it. Call once with a group-independent reference
  /// (e.g. the campaign's nominal die) so the pivot sequence -- and hence
  /// every result bit -- is independent of lane grouping, thread count,
  /// and K. solve_active() primes from the first active lane if the
  /// caller never did. Throws NumericalError if the reference matrix is
  /// singular at that state.
  void prime(std::size_t reference_lane = 0);
  [[nodiscard]] bool primed() const noexcept {
    return slu_.analysis_count() > 0;
  }

  /// Reset lane `lane` for a new parameter variant (die/corner): forget
  /// its warm start and its devices' limiting state, exactly the state a
  /// freshly-built per-die rig would start from. The shared pattern and
  /// analysis are untouched.
  void begin_variant(std::size_t lane);

  /// Lanes excluded from solve_active() (default: all active).
  void set_lane_active(std::size_t lane, bool active);
  [[nodiscard]] bool lane_active(std::size_t lane) const {
    return active_[lane] != 0;
  }

  // Per-lane warm-start continuation, mirroring SimSession.
  void seed_warm_start(std::size_t lane, const Unknowns& x);
  [[nodiscard]] bool has_warm_start(std::size_t lane) const {
    return have_last_[lane] != 0;
  }
  void invalidate_warm_start(std::size_t lane) { have_last_[lane] = 0; }

  /// Solve every active lane's DC operating point in lockstep plain
  /// Newton at gmin_floor (strategy 1 of SimSession::solve). Per lane the
  /// trajectory -- start point, stamps, damping, convergence test -- is
  /// exactly the scalar one; lanes leave the lockstep individually as
  /// they converge or fail. After the first call at a given shape the
  /// whole solve performs zero heap allocations.
  void solve_active();

  [[nodiscard]] const BatchLaneStatus& status(std::size_t lane) const {
    return status_[lane];
  }
  /// Last converged solution of `lane` (valid when status().converged or
  /// has_warm_start()).
  [[nodiscard]] const Unknowns& solution(std::size_t lane) const {
    return last_solution_[lane];
  }

 private:
  std::vector<Circuit*> lanes_;
  NewtonOptions options_;
  int n_unknowns_ = 0;
  int node_unknowns_ = 0;
  std::size_t bound_device_count_ = 0;

  linalg::SparseMatrix sa_;          ///< shared pattern + prime/reference values
  linalg::SparseValueBatch batch_;   ///< K value planes over sa_'s pattern
  linalg::SparseLuFactorization slu_;

  std::vector<Unknowns> x_;              ///< per-lane working iterate
  std::vector<Unknowns> last_solution_;  ///< per-lane warm-start source
  std::vector<linalg::Vector> b_lane_;   ///< per-lane stamped RHS
  linalg::Vector b_prime_;               ///< scratch RHS for prime()
  std::vector<double> rhs_;              ///< packed lane-fastest RHS planes

  // Lane-batched device exponentials (Device::collect_exp_args /
  // stamp_with_exps): per-device offsets into a lane's argument span, the
  // span length, and the preallocated argument/value buffers (one span per
  // lane), so one vectorized safe_exp_many sweep serves every junction a
  // lane stamps -- allocation-free after binding.
  std::vector<std::size_t> exp_off_;  ///< device -> offset, size devices+1
  std::size_t exp_stride_ = 0;        ///< exp args per lane
  std::vector<double> exp_args_;      ///< [lane][exp_stride_] arguments
  std::vector<double> exp_vals_;      ///< [lane][exp_stride_] safe_exp out
  std::vector<unsigned char> active_;
  std::vector<unsigned char> have_last_;
  std::vector<unsigned char> live_;      ///< still iterating this solve
  std::vector<unsigned char> lane_ok_;   ///< refactor_batch in/out mask
  std::vector<BatchLaneStatus> status_;
};

/// A compiled set of per-die parameter bindings against one circuit: the
/// name lookups and type checks happen once at bind time, so a lot driver
/// re-programs its lane circuits between dies allocation-free. Parameter
/// *value* changes never require a session rebind -- the frozen pattern
/// and symbolic analysis only depend on topology -- which is exactly why
/// the batched path can amortise them across a whole lot.
class ParamDeltaSet {
 public:
  explicit ParamDeltaSet(Circuit& circuit) : circuit_(&circuit) {}

  /// Each bind resolves a device by name (throws CircuitError if absent
  /// or of the wrong type) and returns the slot for the matching set_*.
  [[nodiscard]] std::size_t bind_resistor(std::string_view name);
  [[nodiscard]] std::size_t bind_bjt(std::string_view name);
  [[nodiscard]] std::size_t bind_opamp(std::string_view name);
  [[nodiscard]] std::size_t bind_isource(std::string_view name);

  void set_resistance(std::size_t slot, double ohms) {
    resistors_[slot]->set_nominal_resistance(ohms);
  }
  void set_bjt_model(std::size_t slot, const BjtModel& model) {
    bjts_[slot]->set_model(model);
  }
  void set_opamp_offset(std::size_t slot, double volts) {
    opamps_[slot]->set_offset(volts);
  }
  void set_current(std::size_t slot, double amps) {
    isources_[slot]->set_current(amps);
  }

 private:
  Circuit* circuit_;
  std::vector<Resistor*> resistors_;
  std::vector<Bjt*> bjts_;
  std::vector<OpAmp*> opamps_;
  std::vector<CurrentSource*> isources_;
};

}  // namespace icvbe::spice
