#pragma once
// Synthetic netlist generation: seeded, reproducible R/diode/BJT ladder
// and mesh decks at arbitrary node counts, in the parser's own dialect.
//
// These are the stress workloads for the sparse linear engine -- the
// paper's bandgap cells top out at tens of nodes, so scaling claims
// (dense/sparse crossover, zero-alloc large-plan runs, CI stress jobs)
// need circuits the repository can manufacture on demand. Generating deck
// *text* rather than Circuit objects means every stress test also
// exercises the parser end to end, and `icvbe gen` can hand the same
// decks to external tools.

#include <cstdint>
#include <string>
#include <string_view>

namespace icvbe::spice {

/// Topology of a generated deck.
enum class SyntheticTopology {
  kResistorLadder,  ///< linear: series/shunt resistor chain
  kDiodeLadder,     ///< ladder with diodes to ground every few nodes
  kBjtLadder,       ///< ladder with diode-connected PNPs to ground
  kMesh,            ///< 2-D resistor grid with sprinkled diodes
  kRcLadder,        ///< series-R / shunt-C chain driven by a PULSE step
                    ///< (transient startup-settling workload; the
                    ///< analysis directive is .TRAN instead of .DC)
  kGrid,            ///< purely resistive 2-D grid (no diodes): the linear
                    ///< symbolic-analysis stress workload at 1e4-1e5
                    ///< nodes, where ordering quality dominates fill
  kClockTree,       ///< heap-indexed binary resistor tree with leaf loads
                    ///< (clock-distribution shape): deep, nearly
                    ///< fill-free -- exercises BTF/elimination ordering
                    ///< on tree-structured patterns at 1e5 nodes
};

struct SyntheticNetlistSpec {
  SyntheticTopology topology = SyntheticTopology::kResistorLadder;
  /// Target circuit size in nodes (exact for ladders; a mesh rounds to
  /// the nearest full grid). Must be >= 4.
  int nodes = 100;
  /// Seed for the element-value randomisation (values only -- the
  /// topology at a given node count is fixed).
  std::uint64_t seed = 1;
  /// Append a .DC sweep of the drive source plus .PROBE directives, so
  /// the deck is runnable through `icvbe run` / SimSession::run as-is.
  bool with_analysis = true;
  /// Emit a small-signal study instead of the default analysis: the drive
  /// source gains an "AC 1" stimulus and the analysis directive becomes
  /// `.AC DEC ...` over the topology's interesting band with VDB/VP
  /// probes of the far node (the `gen_netlist --ac` flag). The rc-ladder
  /// becomes a many-pole low-pass; resistive ladders give flat dividers
  /// -- both are valid dense-vs-sparse complex workloads.
  bool ac_analysis = false;
};

/// Render the deck text for a spec. Deterministic: same spec, same text.
[[nodiscard]] std::string generate_netlist(const SyntheticNetlistSpec& spec);

/// Name of the node the generated .PROBE watches ("vout" equivalent).
[[nodiscard]] std::string generated_probe_node(const SyntheticNetlistSpec& spec);

/// Stop time [s] of the .TRAN analysis a kRcLadder deck embeds: roughly
/// five of the chain's slowest time constants (~0.4 n^2 R C), so the deck
/// simulates a complete startup settling at any size.
[[nodiscard]] double rc_ladder_tstop(const SyntheticNetlistSpec& spec);

/// CLI-facing topology names: "ladder", "diode-ladder", "bjt-ladder",
/// "mesh", "rc-ladder", "grid", "clock-tree".
[[nodiscard]] const char* topology_name(SyntheticTopology t);
/// Inverse of topology_name; throws Error on an unknown name.
[[nodiscard]] SyntheticTopology topology_from_name(std::string_view name);

}  // namespace icvbe::spice
