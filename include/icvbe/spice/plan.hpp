#pragma once
// Declarative analysis plans: typed, serialisable descriptions of the one
// shape of work every figure and table of the paper is made of -- a grid of
// DC operating points over one or two swept parameters with a handful of
// probed quantities.
//
//   Probe        what is recorded: V(node), I(dev), IC/IB/IE/ISUB(bjt),
//                constants, and arithmetic expressions of those
//   SweepGrid    the point set of one axis: linear, log-decade, or list
//   SweepAxis    what is swept: source value, temperature, resistance
//   AnalysisPlan 1-2 nested axes + N probes + NewtonOptions
//   SweepResult  the filled grid: axis values + one column per probe
//
// Because an analysis is a value rather than a set of capture-by-reference
// callbacks, it can be named, printed, parsed back (`parse_probe` /
// `to_string` round-trip), written into a netlist deck (.DC / .STEP /
// .PROBE), and sharded across threads. Execution lives on the session:
// `SimSession::run(plan)` warm-starts along the innermost axis and, for
// 2-axis plans, can fan outer-axis rows across a thread pool using
// per-thread circuit clones (same deterministic-fanout discipline as
// lab::LotCampaign -- results are bit-identical for any thread count).

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "icvbe/common/error.hpp"
#include "icvbe/common/series.hpp"
#include "icvbe/common/table.hpp"
#include "icvbe/spice/sim_session.hpp"

namespace icvbe::spice {

/// Raised on malformed plans (no axes, too many axes, empty probe list,
/// degenerate grids). Name-resolution failures raise CircuitError instead.
class PlanError : public Error {
 public:
  explicit PlanError(const std::string& what) : Error(what) {}
};

/// Raised by SimSession::run / TransientSolver::run when a RunObserver
/// requested cancellation (on_row returned false). The run stops with
/// bounded latency -- within one grid point / accepted timestep -- and the
/// session remains usable: warm state, frozen patterns, and cached
/// symbolic analyses all survive a cancelled run.
class CancelledError : public Error {
 public:
  explicit CancelledError(const std::string& what) : Error(what) {}
};

/// Incremental consumer of an executing plan, mirroring the sharedspice
/// callback shape (fnSendInitData -> on_begin, fnSendData -> on_row). The
/// SimServer streams probe rows to clients through one of these; tests
/// watch progress and drive cancellation the same way.
///
/// Threading contract: on_begin is called once from the thread that
/// entered run(), before any row. on_row may be called concurrently from
/// plan worker threads (2-axis outer fanout, AC frequency fanout) --
/// implementations must synchronise their own state. Rows are identified
/// by their result-grid index, so out-of-order delivery from parallel
/// workers is unambiguous; the serial paths deliver strictly in order.
///
/// Returning false from on_row requests cooperative cancellation: every
/// executor stops at its next point/step check and run() throws
/// CancelledError. The observer is never invoked again after the run
/// returns or throws.
class RunObserver {
 public:
  virtual ~RunObserver() = default;

  /// Called once before any row with the result-grid shape.
  /// `expected_rows` is the grid size, or 0 when unknown up front (the
  /// adaptive transient path).
  virtual void on_begin(const std::vector<std::string>& axis_labels,
                        const std::vector<std::string>& probe_labels,
                        std::size_t expected_rows) {
    (void)axis_labels;
    (void)probe_labels;
    (void)expected_rows;
  }

  /// Row `row` of the result grid is complete. `axes` holds the axis
  /// values (outer first for 2-axis plans; TIME for transient; FREQ for
  /// AC), `probes` one value per plan probe, in plan order. The pointers
  /// are only valid during the call. Return false to cancel the run.
  virtual bool on_row(std::size_t row, const double* axes,
                      std::size_t axis_count, const double* probes,
                      std::size_t probe_count) {
    (void)row;
    (void)axes;
    (void)axis_count;
    (void)probes;
    (void)probe_count;
    return true;
  }
};

// --------------------------------------------------------------- Probe ---

/// A typed, serialisable measurement: maps a solved operating point (or,
/// for the AC kinds, one small-signal frequency point) to one scalar.
/// Replaces the old capture-by-reference std::function probes -- a Probe
/// can be printed, parsed, stored in a deck, and compiled once per run
/// into an allocation-free evaluator.
///
/// Grammar (parse_probe):
///   V(node)              node voltage
///   V(a,b)               differential voltage: V(a) - V(b) at a DC point,
///                        the differential *phasor's* magnitude in an .AC
///                        analysis (kept as one typed pair, not desugared
///                        to real arithmetic, exactly so the AC reading is
///                        |V(a)-V(b)| and not |V(a)|-|V(b)|)
///   I(dev)               branch current of a V-source, resistor, diode,
///                        VCVS, MOSFET (drain) or I-source
///   IC(q) IB(q) IE(q)    BJT terminal currents (ISUB(q) for substrate)
///   VM(n) VDB(n) VP(n)   AC node phasor: magnitude, dB (20 log10 |V|),
///   VR(n) VI(n)          phase [deg], real, imaginary part; all accept a
///                        node pair (VDB(a,b) = of the differential
///                        phasor). Only meaningful in an .AC analysis;
///                        a bare V(node) there reads the magnitude.
///   1.25e-3, 2.5k        numeric literal (SPICE suffixes accepted)
///   expr + expr, -, *, / arithmetic, usual precedence, parentheses ok
class Probe {
 public:
  enum class Kind {
    kConstant,       ///< numeric literal
    kNodeVoltage,    ///< V(node)
    kBranchCurrent,  ///< I(dev)
    kBjtCurrent,     ///< IC/IB/IE/ISUB(dev)
    kAcVoltage,      ///< VM/VDB/VP/VR/VI(node[,node2])
    kExpression,     ///< lhs op rhs
  };
  enum class Op { kAdd, kSub, kMul, kDiv };

  /// BJT terminal selector for kBjtCurrent.
  enum class BjtTerminal { kCollector, kBase, kEmitter, kSubstrate };

  /// Scalarisation of a complex node phasor for kAcVoltage.
  enum class AcQuantity { kMagnitude, kDb, kPhaseDeg, kReal, kImag };

  Probe() = default;  ///< constant 0

  [[nodiscard]] static Probe constant(double value);
  /// Node voltage; a non-empty `node2` makes it differential (see the
  /// grammar comment for the DC vs AC semantics of the pair).
  [[nodiscard]] static Probe node_voltage(std::string node,
                                          std::string node2 = {});
  [[nodiscard]] static Probe branch_current(std::string device);
  [[nodiscard]] static Probe bjt_current(std::string device,
                                         BjtTerminal terminal);
  /// AC phasor probe; an empty `node2` means single-ended (vs ground).
  [[nodiscard]] static Probe ac_voltage(AcQuantity quantity, std::string node,
                                        std::string node2 = {});
  [[nodiscard]] static Probe expression(Op op, Probe lhs, Probe rhs);

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] Op op() const noexcept { return op_; }
  [[nodiscard]] double value() const noexcept { return value_; }
  /// Node or device name (kNodeVoltage / kBranchCurrent / kBjtCurrent /
  /// kAcVoltage).
  [[nodiscard]] const std::string& target() const noexcept { return target_; }
  /// Second node of a differential kNodeVoltage / kAcVoltage ("" =
  /// single-ended).
  [[nodiscard]] const std::string& target2() const noexcept {
    return target2_;
  }
  [[nodiscard]] BjtTerminal terminal() const noexcept { return terminal_; }
  [[nodiscard]] AcQuantity ac_quantity() const noexcept { return quantity_; }
  [[nodiscard]] const Probe& lhs() const { return children_.at(0); }
  [[nodiscard]] const Probe& rhs() const { return children_.at(1); }

  /// Evaluate against a solved operating point. Resolves names on every
  /// call -- convenient for one-off use and as a drop-in SweepProbe
  /// (operator() below); SimSession::run compiles plans instead so the
  /// steady-state path does no lookups. AC probes (kAcVoltage) have no
  /// meaning at a DC point and throw PlanError here; they evaluate through
  /// the AC plan path instead.
  /// \pre every referenced node/device name exists in `circuit` (throws
  ///      CircuitError otherwise) and `x` is that circuit's solution.
  /// Allocation-free on the happy path; const and safe to share across
  /// threads (a Probe is an immutable value once built).
  [[nodiscard]] double eval(const Circuit& circuit, const Unknowns& x) const;

  /// A Probe is directly usable wherever a SweepProbe std::function is
  /// expected.
  double operator()(const Circuit& circuit, const Unknowns& x) const {
    return eval(circuit, x);
  }

  /// Serialise in the parse_probe grammar; parse_probe(to_string()) yields
  /// a structurally identical probe.
  [[nodiscard]] std::string to_string() const;

 private:
  Kind kind_ = Kind::kConstant;
  Op op_ = Op::kAdd;
  double value_ = 0.0;
  std::string target_;
  /// kNodeVoltage / kAcVoltage differential pair ("" = single-ended).
  std::string target2_;
  BjtTerminal terminal_ = BjtTerminal::kCollector;
  AcQuantity quantity_ = AcQuantity::kMagnitude;
  std::vector<Probe> children_;  ///< two entries for kExpression
};

/// Parse a probe expression ("V(out)", "IC(Q1)/IC(Q2)", "V(a)-V(b)").
/// Throws PlanError on malformed text.
[[nodiscard]] Probe parse_probe(std::string_view text);

/// Evaluation domain a probe set is compiled for: a DC/transient operating
/// point (real Unknowns) or one AC frequency point (complex phasors).
enum class ProbeDomain { kDc, kAc };

/// True if `probe` can evaluate in `domain` -- the name/topology-free
/// subset of the CompiledProbeSet compile-time rules: AC-quantity leaves
/// (VM/VDB/VP/VR/VI) exist only in kAc; current leaves (I/IC/IB/IE/ISUB)
/// only in kDc; node voltages and constants in both; an expression needs
/// every leaf supported. Multi-analysis decks use this to route each
/// .PROBE to the analyses that can evaluate it.
[[nodiscard]] bool probe_supported_in(const Probe& probe,
                                      ProbeDomain domain) noexcept;

/// Probes compiled once against one circuit: per-point evaluation is
/// allocation- and lookup-free (the same machinery SimSession::run uses
/// for its per-point path, exposed for other drivers -- TransientSolver
/// records through one of these).
///
/// Compiled for a domain: kDc evaluates with eval() against an Unknowns
/// vector (AC probes are rejected at compile time with PlanError); kAc
/// evaluates with eval_ac() against the complex phasor vector a
/// SimSession::solve_ac returned -- there, a bare V(node) reads the
/// phasor magnitude and current/BJT probes are rejected (PlanError).
/// \pre the circuit outlives the set and its topology does not change.
/// Not thread-safe: eval() uses an internal evaluation stack; compile one
/// set per thread (the parallel-plan-worker discipline).
class CompiledProbeSet {
 public:
  /// Resolve and compile. Throws CircuitError if a probe references an
  /// unknown node or device, PlanError if a probe kind does not exist in
  /// the requested domain.
  CompiledProbeSet(const std::vector<Probe>& probes, const Circuit& circuit,
                   ProbeDomain domain = ProbeDomain::kDc);
  ~CompiledProbeSet();
  CompiledProbeSet(CompiledProbeSet&&) noexcept;
  CompiledProbeSet& operator=(CompiledProbeSet&&) noexcept;

  [[nodiscard]] std::size_t size() const noexcept;
  /// Value of probe `i` at solution `x`; allocation-free (kDc domain).
  [[nodiscard]] double eval(std::size_t i, const Unknowns& x) const;
  /// Value of probe `i` at the AC phasor solution; allocation-free (kAc
  /// domain).
  [[nodiscard]] double eval_ac(std::size_t i,
                               const linalg::ComplexVector& x) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// ----------------------------------------------------------- SweepGrid ---

/// The point set of one sweep axis.
class SweepGrid {
 public:
  enum class Spacing { kLinear, kLogDecades, kList };

  /// n evenly spaced points over [first, last], n >= 2.
  [[nodiscard]] static SweepGrid linear(double first, double last, int n);
  /// Logarithmic grid (0 < first < last), >= 1 points per decade.
  [[nodiscard]] static SweepGrid log_decades(double first, double last,
                                             int per_decade);
  /// Explicit point list (>= 1 point).
  [[nodiscard]] static SweepGrid list(std::vector<double> values);

  [[nodiscard]] Spacing spacing() const noexcept { return spacing_; }
  [[nodiscard]] std::size_t size() const;
  /// Materialise the grid points in sweep order.
  [[nodiscard]] std::vector<double> points() const;

 private:
  SweepGrid() = default;
  Spacing spacing_ = Spacing::kList;
  double first_ = 0.0;
  double last_ = 0.0;
  int n_ = 0;  ///< points (linear) or points per decade (log)
  std::vector<double> values_;
};

// ----------------------------------------------------------- SweepAxis ---

/// What one axis sweeps. Temperature axes carry their unit so deck-level
/// Celsius directives and engine-level Kelvin sweeps both round-trip; the
/// *recorded* axis value is always the grid value as given.
class SweepAxis {
 public:
  enum class Kind { kVsource, kIsource, kTemperature, kResistor };

  [[nodiscard]] static SweepAxis vsource(std::string device, SweepGrid grid);
  [[nodiscard]] static SweepAxis isource(std::string device, SweepGrid grid);
  [[nodiscard]] static SweepAxis temperature_kelvin(SweepGrid grid);
  [[nodiscard]] static SweepAxis temperature_celsius(SweepGrid grid);
  /// Sweep a resistor's nominal value (trim curves). Values in ohms.
  [[nodiscard]] static SweepAxis resistor(std::string device, SweepGrid grid);

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  /// Swept device name; empty for temperature axes.
  [[nodiscard]] const std::string& device() const noexcept { return device_; }
  /// True if a temperature axis is in Celsius.
  [[nodiscard]] bool celsius() const noexcept { return celsius_; }
  [[nodiscard]] const SweepGrid& grid() const noexcept { return grid_; }

  /// Column label: device name, "TEMP" (Celsius) or "TEMP_K" (Kelvin).
  [[nodiscard]] std::string label() const;

 private:
  SweepAxis(Kind kind, std::string device, SweepGrid grid, bool celsius)
      : kind_(kind),
        device_(std::move(device)),
        grid_(std::move(grid)),
        celsius_(celsius) {}

  Kind kind_ = Kind::kTemperature;
  std::string device_;
  SweepGrid grid_ = SweepGrid::list({0.0});
  bool celsius_ = false;
};

// ------------------------------------------------------- TransientSpec ---

/// Declarative description of one time-domain (.TRAN) analysis: the value
/// counterpart of the sweep axes. Executed by TransientSolver
/// (spice/transient.hpp) or, via AnalysisPlan::transient, by
/// SimSession::run.
struct TransientSpec {
  /// Output/step ceiling [s]: the controller never takes an internal step
  /// larger than tmax (default = tstep), so tstep doubles as the result's
  /// approximate time resolution. Must be > 0.
  double tstep = 0.0;
  double tstop = 0.0;   ///< simulate [0, tstop]; must be > tstart
  double tstart = 0.0;  ///< recording starts here (stepping starts at 0)
  double tmax = 0.0;    ///< max internal step; 0 = use tstep
  /// Skip the operating-point solve and start from all-zero node voltages
  /// plus the initial conditions (SPICE UIC).
  bool uic = false;
  IntegrationMethod method = IntegrationMethod::kTrapezoidal;
  /// Local-truncation-error step control. When false every step is
  /// exactly tstep (uniform grid -- what the closed-form tests use).
  bool adaptive = true;
  double lte_reltol = 1e-3;  ///< per-node LTE: rel part of the tolerance
  double lte_abstol = 1e-6;  ///< per-node LTE: abs part [V]
  /// .IC directives: node name -> initial voltage. Without UIC these
  /// override the solved operating point; with UIC they seed the start
  /// vector directly.
  std::vector<std::pair<std::string, double>> initial_conditions;
};

// --------------------------------------------------------------- AcSpec ---

/// Declarative description of one small-signal (.AC) analysis: a frequency
/// grid swept about the committed DC operating point. The value
/// counterpart of the sweep axes, executed by SimSession::run via
/// solve_ac(2 pi f) per point.
struct AcSpec {
  /// Grid shape, mirroring the SPICE .AC forms.
  enum class Spacing {
    kDecade,  ///< `points` per decade, logarithmic
    kOctave,  ///< `points` per octave, logarithmic
    kLinear,  ///< `points` total, evenly spaced
  };
  Spacing spacing = Spacing::kDecade;
  int points = 10;      ///< per decade/octave, or total for kLinear
  double fstart = 1.0;  ///< first frequency [Hz]; > 0 for log grids
  double fstop = 1.0;   ///< last frequency [Hz]; >= fstart

  /// Materialise the frequency points [Hz] in sweep order. Throws
  /// PlanError on a degenerate spec (points < 1, fstart <= 0 on a log
  /// grid, fstop < fstart).
  [[nodiscard]] std::vector<double> frequencies() const;
};

// -------------------------------------------------------- AnalysisPlan ---

/// A complete declarative analysis: either 1-2 nested sweep axes
/// (axes.front() is the outer loop), a transient spec, or an AC spec, at
/// least one probe, and the solver options to run under. Plans are plain
/// values: build them in C++, parse them from deck directives, or
/// generate them programmatically.
struct AnalysisPlan {
  std::string name = "analysis";
  std::vector<SweepAxis> axes;
  /// Present = time-domain analysis (axes must then be empty; the result's
  /// single axis is TIME at the accepted timepoints).
  std::optional<TransientSpec> transient;
  /// Present = small-signal analysis (axes/transient must be absent; the
  /// result's single axis is FREQ in Hz). Probes are evaluated in the AC
  /// domain: VM/VDB/VP/VR/VI (and bare V = magnitude) over the node
  /// phasors, arithmetic and constants as usual.
  std::optional<AcSpec> ac;
  std::vector<Probe> probes;
  NewtonOptions options{};
  /// Worker threads for 2-axis plans (outer rows) and AC plans (frequency
  /// points): 1 = serial in-place (default), 0 = hardware_concurrency,
  /// N = N workers over per-thread circuit clones. Results are
  /// bit-identical for any value.
  unsigned threads = 1;
  /// Batched outer-row fanout for 2-axis DC plans on the sparse engine
  /// (.STEP corner families): lanes > 1 groups outer rows into lanes-wide
  /// batches per worker, sharing one symbolic analysis and carrying all
  /// lanes through each LU refactor/solve together (BatchDcSession). A
  /// row whose lane leaves the lockstep is re-run through the ordinary
  /// scalar row path on its clone. Ignored (scalar path) unless the plan
  /// has two axes and the session bound the sparse engine. Results are
  /// bit-identical for any lanes value and any thread count.
  unsigned lanes = 0;
};

/// The analysis family a plan describes -- the selector decks, the CLI,
/// and the server RUN command share (a multi-analysis deck carries up to
/// one plan per family; see ParsedNetlist::plans).
enum class AnalysisKind {
  kDcSweep,    ///< .DC/.STEP sweep axes
  kTransient,  ///< .TRAN
  kAc,         ///< .AC
};

/// Classify a plan. Sweep plans are the default family (axes, or nothing
/// set yet); transient/AC plans are recognised by their spec.
[[nodiscard]] AnalysisKind analysis_kind(const AnalysisPlan& plan);

/// "DC", "TRAN", or "AC" -- the token the deck dialect, the CLI, and the
/// wire protocol all use.
[[nodiscard]] const char* to_token(AnalysisKind kind);

/// Parse a "DC"/"TRAN"/"AC" token (case-insensitive). Throws PlanError on
/// anything else.
[[nodiscard]] AnalysisKind analysis_kind_from_token(std::string_view token);

// --------------------------------------------------------- SweepResult ---

/// The executed grid. Point p of a 2-axis plan maps to
/// (outer index = p / inner_size, inner index = p % inner_size); 1-axis
/// plans have rows() == inner grid size. Transient results are 1-axis
/// with TIME as the axis and one row per accepted timepoint.
///
/// A SweepResult is a plain value, detached from the session that filled
/// it: copy, move, and read it from any thread.
class SweepResult {
 public:
  SweepResult() = default;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t probe_count() const noexcept {
    return columns_.size();
  }
  [[nodiscard]] std::size_t axis_count() const noexcept {
    return outer_.empty() ? 1 : 2;
  }

  /// Grid values of the outer / inner axis (outer empty for 1-axis plans).
  [[nodiscard]] const std::vector<double>& outer_values() const noexcept {
    return outer_;
  }
  [[nodiscard]] const std::vector<double>& inner_values() const noexcept {
    return inner_;
  }

  [[nodiscard]] const std::vector<std::string>& axis_labels() const noexcept {
    return axis_labels_;
  }
  [[nodiscard]] const std::vector<std::string>& probe_labels() const noexcept {
    return probe_labels_;
  }

  /// Axis value at a row: axis 0 = outer (or the only axis), axis 1 = inner.
  [[nodiscard]] double axis_value(std::size_t axis, std::size_t row) const;
  /// Probe column value at a row.
  [[nodiscard]] double value(std::size_t probe, std::size_t row) const {
    return columns_.at(probe).at(row);
  }
  [[nodiscard]] const std::vector<double>& column(std::size_t probe) const {
    return columns_.at(probe);
  }

  /// 1-axis plans: Series of one probe over the axis.
  [[nodiscard]] Series series(std::size_t probe = 0) const;
  /// 2-axis plans: one Series per outer point (inner value on x).
  [[nodiscard]] std::vector<Series> series_family(std::size_t probe = 0) const;
  /// Full grid as a Table (axis columns then probe columns).
  [[nodiscard]] Table table() const;
  /// CSV via the shared common/csv writer.
  void write_csv(std::ostream& os) const;

 private:
  friend class SimSession;
  friend class TransientSolver;
  std::size_t rows_ = 0;
  std::vector<double> outer_;  ///< empty for 1-axis plans
  std::vector<double> inner_;
  std::vector<std::string> axis_labels_;
  std::vector<std::string> probe_labels_;
  std::vector<std::vector<double>> columns_;  ///< [probe][row]
};

}  // namespace icvbe::spice
