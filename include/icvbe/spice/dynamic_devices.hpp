#pragma once
// Dynamic (energy-storage) devices: capacitor and inductor.
//
// Both stamp classic SPICE companion models through the same
// Stamper/MatrixView contract every static device uses, so the dense and
// sparse linear engines serve them unchanged. A dynamic device is in one
// of two modes:
//
//  * DC mode (default): the device contributes its steady-state behaviour
//    -- a capacitor is an open circuit, an inductor a short (a 0 V branch
//    via its aux current). Crucially, DC-mode stamps still *register every
//    matrix slot the transient companion will later write* (zero-valued
//    entries register pattern slots, see SparseMatrix), so a sparse
//    session's frozen pattern discovered at bind time is valid for both
//    analyses.
//  * transient mode (TransientSolver only): begin_step(method, h) selects
//    the integration scheme for the next timestep and stamp() writes the
//    companion conductance/current linearised around the committed state
//    of the previous accepted timepoint; commit(x) advances that state.
//
// Companion models (current i flows a -> b / p -> m):
//   C, backward Euler:  i = (C/h)  v - (C/h) v_prev
//   C, trapezoidal:     i = (2C/h) v - (2C/h) v_prev - i_prev
//   L, backward Euler:  v = (L/h)  i - (L/h) i_prev      (aux row)
//   L, trapezoidal:     v = (2L/h) i - (2L/h) i_prev - v_prev

#include <cmath>

#include "icvbe/spice/device.hpp"

namespace icvbe::spice {

/// Integration scheme of one transient timestep.
enum class IntegrationMethod {
  kBackwardEuler,  ///< A-stable, first order, damps ringing
  kTrapezoidal,    ///< A-stable, second order, energy-preserving
};

/// Base class of the energy-storage devices. TransientSolver discovers
/// dynamic devices once per run, flips them into transient mode, drives
/// begin_step()/commit() around each timestep, and restores DC mode when
/// it is destroyed. All methods are allocation-free.
class DynamicDevice : public Device {
 public:
  using Device::Device;

  /// Leave transient mode; stamps revert to the DC steady-state model.
  void set_dc_mode() noexcept { transient_ = false; }

  /// Select the integration scheme and timestep for the next stamp.
  /// \pre h > 0.
  void begin_step(IntegrationMethod method, double h) noexcept {
    transient_ = true;
    method_ = method;
    h_ = h;
  }

  [[nodiscard]] bool transient_mode() const noexcept { return transient_; }

  /// Advance the companion state to the accepted solution `x` (called once
  /// per *accepted* timestep; rejected Newton solves never commit).
  virtual void commit(const Unknowns& x) = 0;

  /// Initialise the companion state from the transient start point
  /// (operating point or UIC vector). A device-level IC (the card's IC=
  /// parameter) overrides the corresponding quantity.
  virtual void init_state(const Unknowns& x) = 0;

  /// Write the device-level IC (if any) into the start vector so t = 0
  /// probes read it (inductor current lives in an aux slot; capacitor
  /// branch voltage has no single slot, so C implements this as a no-op).
  virtual void imprint_ic(Unknowns& /*x*/) const {}

  /// Device-level initial condition from the card's IC= parameter
  /// (volts across a capacitor, amps through an inductor); NaN if absent.
  [[nodiscard]] double initial_condition() const noexcept { return ic_; }
  [[nodiscard]] bool has_initial_condition() const noexcept {
    return !std::isnan(ic_);
  }

 protected:
  bool transient_ = false;
  IntegrationMethod method_ = IntegrationMethod::kBackwardEuler;
  double h_ = 0.0;
  double ic_ = std::nan("");
};

/// Linear capacitor between nodes a and b.
class Capacitor final : public DynamicDevice {
 public:
  /// \pre farads > 0, a != b. `ic_volts` is the optional initial branch
  /// voltage V(a) - V(b) (NaN = derive from the start point).
  Capacitor(std::string name, NodeId a, NodeId b, double farads,
            double ic_volts = std::nan(""));

  [[nodiscard]] std::unique_ptr<Device> clone() const override;
  void stamp(Stamper& stamper, const Unknowns& prev) override;
  /// AC: the admittance j*omega*C between a and b (the capacitor's actual
  /// value, independent of the DC/transient companion mode).
  void stamp_ac(AcStamper& ac, const Unknowns& op) const override;
  void commit(const Unknowns& x) override;
  void init_state(const Unknowns& x) override;

  /// Current flowing a -> b: the committed companion current of the last
  /// accepted timepoint in transient mode (probes are evaluated at
  /// accepted points, after commit), 0 in DC mode (a capacitor blocks DC).
  [[nodiscard]] double current(const Unknowns& x) const;

  [[nodiscard]] double capacitance() const noexcept { return farads_; }
  /// Re-program the value (a server PATCH). Touches only the coefficient
  /// the companion derives per step, so the matrix pattern -- and with it
  /// a sparse session's cached symbolic analysis -- stays valid.
  /// \pre farads > 0; not while in transient mode.
  void set_capacitance(double farads);
  /// Committed branch voltage of the previous accepted timepoint.
  [[nodiscard]] double state_voltage() const noexcept { return v_prev_; }

 private:
  /// Companion coefficients for the current method/step.
  [[nodiscard]] double geq() const noexcept {
    return (method_ == IntegrationMethod::kTrapezoidal ? 2.0 : 1.0) *
           farads_ / h_;
  }
  [[nodiscard]] double ieq() const noexcept {
    return method_ == IntegrationMethod::kTrapezoidal
               ? -geq() * v_prev_ - i_prev_
               : -geq() * v_prev_;
  }

  NodeId a_;
  NodeId b_;
  double farads_;
  double v_prev_ = 0.0;  ///< committed V(a) - V(b)
  double i_prev_ = 0.0;  ///< committed current a -> b (trapezoidal memory)
};

/// Linear inductor between nodes p and m; its branch current is an aux
/// unknown (flowing p -> m), like a voltage source's.
class Inductor final : public DynamicDevice {
 public:
  /// \pre henries > 0, p != m. `ic_amps` is the optional initial branch
  /// current (NaN = derive from the start point).
  Inductor(std::string name, NodeId p, NodeId m, double henries,
           double ic_amps = std::nan(""));

  [[nodiscard]] int aux_count() const override { return 1; }
  [[nodiscard]] std::unique_ptr<Device> clone() const override;
  void stamp(Stamper& stamper, const Unknowns& prev) override;
  /// AC: the branch relation V(p) - V(m) = j*omega*L * i on the aux row
  /// (omega = 0 degenerates to the DC short).
  void stamp_ac(AcStamper& ac, const Unknowns& op) const override;
  void commit(const Unknowns& x) override;
  void init_state(const Unknowns& x) override;
  void imprint_ic(Unknowns& x) const override;

  /// Branch current p -> m (the aux unknown).
  [[nodiscard]] double current(const Unknowns& x) const;

  [[nodiscard]] double inductance() const noexcept { return henries_; }
  /// Re-program the value (a server PATCH); pattern-preserving like
  /// Capacitor::set_capacitance.
  /// \pre henries > 0; not while in transient mode.
  void set_inductance(double henries);
  /// Committed branch current of the previous accepted timepoint.
  [[nodiscard]] double state_current() const noexcept { return i_prev_; }

 private:
  NodeId p_;
  NodeId m_;
  double henries_;
  double i_prev_ = 0.0;  ///< committed branch current p -> m
  double v_prev_ = 0.0;  ///< committed V(p) - V(m) (trapezoidal memory)
};

}  // namespace icvbe::spice
