#pragma once
// Junction diode with the eq.-(1) saturation-current temperature law.

#include "icvbe/spice/device.hpp"

namespace icvbe::spice {

/// Diode model card.
struct DiodeModel {
  double is = 1e-14;      ///< saturation current at tnom [A]
  double n = 1.0;         ///< emission coefficient
  double eg = 1.11;       ///< activation energy [eV]
  double xti = 3.0;       ///< IS temperature exponent
  double tnom = 300.15;   ///< model reference temperature [K]
};

/// Two-terminal junction diode anode -> cathode. (No series resistance:
/// model an explicit Resistor when needed.)
class Diode final : public Device {
 public:
  Diode(std::string name, NodeId anode, NodeId cathode, DiodeModel model,
        double area = 1.0);

  void set_temperature(double t_kelvin) override;
  [[nodiscard]] std::unique_ptr<Device> clone() const override;
  void stamp(Stamper& stamper, const Unknowns& prev) override;
  /// AC: the junction conductance g = dI/dV at the committed OP.
  void stamp_ac(AcStamper& ac, const Unknowns& op) const override;
  [[nodiscard]] bool is_nonlinear() const override { return true; }
  void reset_state() override;
  [[nodiscard]] double power(const Unknowns& x) const override;

  /// One junction exponential per evaluation, batched through the
  /// session's vectorized safe_exp sweep.
  [[nodiscard]] int exp_arg_count() const override { return 1; }
  void collect_exp_args(const Unknowns& prev, double* out) override;
  void stamp_with_exps(Stamper& stamper, const Unknowns& prev,
                       const double* exps) override;

  /// Diode current anode -> cathode at solution x.
  [[nodiscard]] double current(const Unknowns& x) const;

  /// Effective IS(T) after the last set_temperature.
  [[nodiscard]] double is_at_temperature() const noexcept { return is_t_; }

 private:
  /// Small-signal conductance dI/dV from the precomputed junction
  /// exponential e = exp(v / vt) (with the matrix-regularising floor) --
  /// shared by stamp() and stamp_ac() so the DC and AC linearisations
  /// cannot drift, while stamp() keeps its single exp() per iteration.
  [[nodiscard]] double conductance_from_exp(double e) const;

  NodeId anode_;
  NodeId cathode_;
  DiodeModel model_;
  double area_;
  double is_t_;     // IS at current temperature
  double vt_;       // N * kT/q
  double vcrit_;
  double v_state_;  // junction-limited voltage from the last iteration
};

}  // namespace icvbe::spice
