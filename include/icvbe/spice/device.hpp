#pragma once
// Device: base class of every circuit element.
//
// Lifecycle per DC solve:
//   1. set_temperature(T)   -- update temperature-dependent parameters
//   2. reset_state()        -- clear junction-limiting memory
//   3. stamp(stamper, prev) -- once per Newton iteration, linearised at prev
//   4. power(solution)      -- dissipation for the electro-thermal loop

#include <memory>
#include <string>

#include "icvbe/spice/stamper.hpp"
#include "icvbe/spice/unknowns.hpp"

namespace icvbe::spice {

class Device {
 public:
  explicit Device(std::string name) : name_(std::move(name)) {}
  virtual ~Device() = default;

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Update temperature-dependent parameters (default: none).
  virtual void set_temperature(double /*t_kelvin*/) {}

  /// Number of auxiliary (branch-current) unknowns this device needs.
  [[nodiscard]] virtual int aux_count() const { return 0; }

  /// Called by the circuit when unknown indices are assigned.
  void set_first_aux(int index) { first_aux_ = index; }
  [[nodiscard]] int first_aux() const noexcept { return first_aux_; }

  /// Deep copy carrying the full device state (parameters, temperature-
  /// derived values, iteration memory). Aux indices are NOT copied -- the
  /// clone's circuit re-assigns them. Enables per-thread circuit clones
  /// for parallel plan execution (SimSession::run).
  [[nodiscard]] virtual std::unique_ptr<Device> clone() const = 0;

  /// Stamp the linearised model around the previous iterate. Non-const so
  /// nonlinear devices can keep junction-limiting state between iterations.
  virtual void stamp(Stamper& stamper, const Unknowns& prev) = 0;

  /// True if the device is nonlinear (forces Newton iteration).
  [[nodiscard]] virtual bool is_nonlinear() const { return false; }

  /// Clear iteration state before a fresh solve.
  virtual void reset_state() {}

  /// Dissipated power at the given solution [W] (default 0; used by the
  /// electro-thermal self-heating loop).
  [[nodiscard]] virtual double power(const Unknowns& /*x*/) const {
    return 0.0;
  }

 private:
  std::string name_;
  int first_aux_ = -1;
};

}  // namespace icvbe::spice
