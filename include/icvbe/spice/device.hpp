#pragma once
// Device: base class of every circuit element.
//
// Lifecycle per DC solve:
//   1. set_temperature(T)   -- update temperature-dependent parameters
//   2. reset_state()        -- clear junction-limiting memory
//   3. stamp(stamper, prev) -- once per Newton iteration, linearised at prev
//   4. power(solution)      -- dissipation for the electro-thermal loop
//
// Small-signal contract (AC analysis): after a DC operating point has been
// committed, stamp_ac(ac, op) writes the device's *linearised* complex
// admittance into the AC system at ac.omega() -- conductances and
// transconductances evaluated at `op` for the static/nonlinear devices,
// j*omega*C / 1/(j*omega*L) reactances for the dynamic ones, and AC
// stimulus phasors on the RHS for independent sources carrying an AC spec.
// stamp_ac is const and must not touch iteration state: one committed OP
// serves a whole frequency sweep, and parallel sweep workers may share the
// circuit read-only.

#include <memory>
#include <string>

#include "icvbe/spice/stamper.hpp"
#include "icvbe/spice/unknowns.hpp"

namespace icvbe::spice {

class Device {
 public:
  explicit Device(std::string name) : name_(std::move(name)) {}
  virtual ~Device() = default;

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Update temperature-dependent parameters (default: none).
  virtual void set_temperature(double /*t_kelvin*/) {}

  /// Number of auxiliary (branch-current) unknowns this device needs.
  [[nodiscard]] virtual int aux_count() const { return 0; }

  /// Called by the circuit when unknown indices are assigned.
  void set_first_aux(int index) { first_aux_ = index; }
  [[nodiscard]] int first_aux() const noexcept { return first_aux_; }

  /// Deep copy carrying the full device state (parameters, temperature-
  /// derived values, iteration memory). Aux indices are NOT copied -- the
  /// clone's circuit re-assigns them. Enables per-thread circuit clones
  /// for parallel plan execution (SimSession::run).
  [[nodiscard]] virtual std::unique_ptr<Device> clone() const = 0;

  /// Stamp the linearised model around the previous iterate. Non-const so
  /// nonlinear devices can keep junction-limiting state between iterations.
  virtual void stamp(Stamper& stamper, const Unknowns& prev) = 0;

  /// Stamp the small-signal model linearised at the committed operating
  /// point `op` into the complex AC system at ac.omega() (see the header
  /// comment for the contract). Every device implements this: the matrix
  /// part must agree with the Jacobian stamp() writes at a converged `op`
  /// when omega -> 0 (asserted by test_ac), so the DC and AC views of a
  /// device can never drift apart silently.
  virtual void stamp_ac(AcStamper& ac, const Unknowns& op) const = 0;

  /// True if the device is nonlinear (forces Newton iteration).
  [[nodiscard]] virtual bool is_nonlinear() const { return false; }

  // Lane-batched exponential evaluation (BatchDcSession). Junction devices
  // split one stamp into three phases so a whole lane's exp() arguments can
  // run through one vectorized safe_exp_many sweep:
  //   A. collect_exp_args(prev, out) -- run junction limiting against
  //      `prev` (updating limiting state exactly as stamp() would) and
  //      write exp_arg_count() exponent arguments to `out`;
  //   B. the session evaluates safe_exp over every collected argument;
  //   C. stamp_with_exps(stamper, prev, exps) -- stamp consuming the
  //      precomputed safe_exp values, same order as written in phase A.
  // safe_exp_many is element-wise bit-identical to safe_exp, and phases
  // run in original device order, so the three-phase stamp reproduces
  // stamp()'s matrix and RHS bit-for-bit.

  /// Number of exp() arguments this device contributes per evaluation
  /// (0 = device does not participate; stamp() is used directly).
  [[nodiscard]] virtual int exp_arg_count() const { return 0; }
  /// Phase A (see above). Only called when exp_arg_count() > 0.
  virtual void collect_exp_args(const Unknowns& /*prev*/, double* /*out*/) {}
  /// Phase C (see above). Default falls back to the one-shot stamp().
  virtual void stamp_with_exps(Stamper& stamper, const Unknowns& prev,
                               const double* /*exps*/) {
    stamp(stamper, prev);
  }

  /// Clear iteration state before a fresh solve.
  virtual void reset_state() {}

  /// Dissipated power at the given solution [W] (default 0; used by the
  /// electro-thermal self-heating loop).
  [[nodiscard]] virtual double power(const Unknowns& /*x*/) const {
    return 0.0;
  }

 private:
  std::string name_;
  int first_aux_ = -1;
};

}  // namespace icvbe::spice
