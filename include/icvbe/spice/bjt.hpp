#pragma once
// Gummel-Poon bipolar transistor (DC subset) with:
//  * the eq.-(1) IS(T) temperature law parameterised by (EG, XTI) -- the
//    exact parameters the paper's methods extract;
//  * forward/reverse Early effect (VAF / VAR);
//  * B-E and B-C leakage diodes (ISE/NE, ISC/NC);
//  * an optional parasitic substrate transistor: a temperature-activated
//    junction current from the collector to the substrate node driven by
//    the forward-biased B-C junction. This is the paper's "leakage current
//    of the parasitic transistor" that matters "at the limit of the
//    saturation" and scales with emitter area (8x for QB).

#include <limits>

#include "icvbe/spice/device.hpp"

namespace icvbe::spice {

/// BJT model card (DC parameters only -- this library never transients).
struct BjtModel {
  enum class Type { kNpn, kPnp };
  Type type = Type::kNpn;

  double is = 1e-16;    ///< transport saturation current at tnom [A]
  double bf = 100.0;    ///< forward beta
  double br = 1.0;      ///< reverse beta
  double nf = 1.0;      ///< forward emission coefficient
  double nr = 1.0;      ///< reverse emission coefficient
  double ise = 0.0;     ///< B-E leakage saturation current [A]
  double ne = 1.5;      ///< B-E leakage emission coefficient
  double isc = 0.0;     ///< B-C leakage saturation current [A]
  double nc = 2.0;      ///< B-C leakage emission coefficient
  double vaf = std::numeric_limits<double>::infinity();  ///< fwd Early [V]
  double var = std::numeric_limits<double>::infinity();  ///< rev Early [V]

  double eg = 1.17;     ///< eq. (1) activation energy [eV]
  double xti = 3.0;     ///< eq. (1) temperature exponent
  double tnom = 300.15; ///< model reference temperature [K]

  // Parasitic substrate transistor, B-C-junction driven (0 disables). The
  // parasitic collects carriers injected by the forward-biased B-C junction
  // into the substrate; it has its own temperature law (different junction
  // depth and doping), which is what makes the corruption non-PTAT.
  double iss = 0.0;     ///< substrate parasitic saturation current [A]
  double ns = 1.0;      ///< substrate parasitic emission coefficient
  double eg_sub = 1.05; ///< substrate parasitic activation energy [eV]
  double xti_sub = 3.0; ///< substrate parasitic temperature exponent

  // Vertical parasitic transistor off the *emitter* junction (0 disables).
  // In the paper's lateral/substrate PNPs the emitter p+ injects into the
  // n-well and down to the substrate whenever the E-B junction is forward
  // biased; a diode-connected device (VCB = 0, "the limit of the
  // saturation") always exercises this path. ns_e != 1 makes the stolen
  // fraction area-dependent, which is how QB's 8x parasitic corrupts dVBE.
  double iss_e = 0.0;       ///< emitter-junction parasitic sat. current [A]
  double ns_e = 1.2;        ///< its emission coefficient
  double eg_sub_e = 1.02;   ///< its activation energy [eV]
  double xti_sub_e = 3.0;   ///< its temperature exponent
  /// Current gain of the vertical parasitic transistor. Its base terminal
  /// is the main device's base (the n-well), so a fraction 1/bf_sub of the
  /// parasitic current exits through the base node -- which is what makes
  /// the RadjA trim in the base leg able to cancel the parasitic's
  /// super-linear temperature component. Infinity = no base routing.
  double bf_sub = std::numeric_limits<double>::infinity();
};

/// Four-terminal BJT: collector, base, emitter, substrate. `area` scales
/// IS/ISE/ISC/ISS (the paper's QB uses area = 8).
class Bjt final : public Device {
 public:
  Bjt(std::string name, NodeId collector, NodeId base, NodeId emitter,
      BjtModel model, double area = 1.0, NodeId substrate = kGround);

  void set_temperature(double t_kelvin) override;
  [[nodiscard]] std::unique_ptr<Device> clone() const override;
  void stamp(Stamper& stamper, const Unknowns& prev) override;
  /// AC: the full conductance/transconductance Jacobian at the committed
  /// OP -- the matrix part of stamp() without the companion RHS.
  void stamp_ac(AcStamper& ac, const Unknowns& op) const override;
  [[nodiscard]] bool is_nonlinear() const override { return true; }
  void reset_state() override;
  [[nodiscard]] double power(const Unknowns& x) const override;

  /// The six junction exponentials of one evaluation (transport fwd/rev,
  /// B-E / B-C leakage, substrate, emitter-side parasitic), batched
  /// through the session's vectorized safe_exp sweep.
  static constexpr int kExpArgs = 6;
  [[nodiscard]] int exp_arg_count() const override { return kExpArgs; }
  void collect_exp_args(const Unknowns& prev, double* out) override;
  void stamp_with_exps(Stamper& stamper, const Unknowns& prev,
                       const double* exps) override;

  /// Terminal currents at solution x, positive flowing *into* the terminal
  /// from the node (SPICE convention).
  struct TerminalCurrents {
    double ic = 0.0;
    double ib = 0.0;
    double ie = 0.0;
    double isub = 0.0;
  };
  [[nodiscard]] TerminalCurrents currents(const Unknowns& x) const;

  /// Junction voltages at solution x in the forward (type-normalised)
  /// frame: vbe = s (Vb - Ve), vbc = s (Vb - Vc), with s = +1 for NPN and
  /// -1 for PNP.
  [[nodiscard]] double vbe(const Unknowns& x) const;
  [[nodiscard]] double vbc(const Unknowns& x) const;

  /// Swap the model card in place (same validation as the constructor) and
  /// re-derive every temperature-dependent quantity at the current device
  /// temperature. Limiting state is reset, so the next solve starts exactly
  /// as a freshly-constructed device would -- this is what lets a lot
  /// campaign re-program one bound circuit per die instead of rebuilding
  /// it. The device type (NPN/PNP) must not change: the sign convention is
  /// baked into the bound stamp pattern.
  void set_model(const BjtModel& model);

  [[nodiscard]] const BjtModel& model() const noexcept { return model_; }
  [[nodiscard]] double area() const noexcept { return area_; }
  [[nodiscard]] double is_at_temperature() const noexcept { return is_t_; }
  [[nodiscard]] double temperature() const noexcept { return temp_; }

 private:
  /// Currents and conductances in the type-normalised frame at junction
  /// voltages (v1 = vbe, v2 = vbc).
  struct Eval {
    double it, ibe, ibc, isub, isub_e;   // branch currents
    double git1, git2;                   // d it / d v1, v2
    double gbe, gbc, gsub, gsub_e;       // diode conductances
  };
  [[nodiscard]] Eval evaluate(double v1, double v2) const;
  /// The kExpArgs exponent arguments of an evaluation at (v1, v2), in the
  /// order stamp_with_exps consumes them.
  void exp_args(double v1, double v2, double* out) const;
  /// evaluate() with the junction exponentials precomputed (e[i] =
  /// safe_exp of exp_args()[i]); evaluate() routes through this so the
  /// scalar and batched paths share one model body.
  [[nodiscard]] Eval evaluate_from_exps(double v1, double v2,
                                        const double* e) const;
  /// Everything stamp() does after junction limiting and evaluation --
  /// shared by stamp() and stamp_with_exps().
  void stamp_core(Stamper& stamper, double v1, double v2, const Eval& ev);

  /// The four terminal-current partials d J{c,b,e,s} / d {v1,v2} derived
  /// from an Eval -- the ONE place the Jacobian structure lives, shared
  /// by the large-signal stamp() and the small-signal stamp_ac() so the
  /// two linearisations can never drift apart.
  struct RowJacobian {
    double djc_dv1, djc_dv2;
    double djb_dv1, djb_dv2;
    double dje_dv1, dje_dv2;
    double djs_dv1, djs_dv2;
  };
  [[nodiscard]] RowJacobian row_jacobian(const Eval& ev) const;

  NodeId c_, b_, e_, s_node_;
  BjtModel model_;
  double area_;
  double sign_;     // +1 NPN, -1 PNP
  double temp_;
  double vt_;       // kT/q
  double is_t_, ise_t_, isc_t_, iss_t_, iss_e_t_;  // temp-updated, area-scaled
  double vcrit_be_, vcrit_bc_;
  double v1_state_, v2_state_;  // limited junction voltages
};

}  // namespace icvbe::spice
