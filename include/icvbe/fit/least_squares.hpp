#pragma once
// Linear least squares with full fit statistics.
//
// The paper's classical extraction (eq. 13) is linear in (EG, XTI) once
// VBE(T0) is known, so the best-fit method reduces to the routines in this
// header. The parameter *correlation* reported here is what produces the
// "characteristic straight" of Fig. 6.

#include <functional>
#include <vector>

#include "icvbe/linalg/matrix.hpp"

namespace icvbe::fit {

/// Result of a (possibly weighted) linear least-squares fit.
struct LinearFitResult {
  linalg::Vector parameters;      ///< fitted coefficients
  linalg::Vector residuals;       ///< y - A x at the solution
  double rss = 0.0;               ///< residual sum of squares
  double rmse = 0.0;              ///< sqrt(rss / (m - n))
  double r_squared = 0.0;         ///< coefficient of determination
  linalg::Matrix covariance;      ///< sigma^2 (A^T A)^-1
  linalg::Matrix correlation;     ///< normalised covariance
  double condition_number = 0.0;  ///< cond estimate of A^T A from R diag

  /// Pearson correlation between parameters i and j in [-1, 1].
  [[nodiscard]] double param_correlation(std::size_t i, std::size_t j) const {
    return correlation(i, j);
  }
  [[nodiscard]] double param_sigma(std::size_t i) const;
};

/// Solve min |A x - y|_2 and compute statistics. A is the design matrix
/// (one row per observation, one column per parameter). Throws
/// NumericalError on rank deficiency.
[[nodiscard]] LinearFitResult linear_least_squares(const linalg::Matrix& a,
                                                   const linalg::Vector& y);

/// Weighted variant: each row is scaled by sqrt(w_i); w_i > 0 required.
[[nodiscard]] LinearFitResult weighted_linear_least_squares(
    const linalg::Matrix& a, const linalg::Vector& y,
    const linalg::Vector& weights);

/// Build a design matrix from basis functions evaluated at sample points:
/// A(i, j) = basis[j](x[i]).
[[nodiscard]] linalg::Matrix design_matrix(
    const std::vector<double>& x,
    const std::vector<std::function<double(double)>>& basis);

/// Fit a polynomial of the given degree: y ~ c0 + c1 x + ... + cd x^d.
/// Returns coefficients in ascending-power order inside the result.
[[nodiscard]] LinearFitResult polynomial_fit(const std::vector<double>& x,
                                             const std::vector<double>& y,
                                             int degree);

/// Evaluate an ascending-power polynomial at x.
[[nodiscard]] double polyval(const linalg::Vector& coeffs, double x);

/// Ordinary straight-line fit y ~ a + b x; returns {intercept, slope} plus
/// statistics. Used for the characteristic-straight slope measurements.
struct LineFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r_squared = 0.0;
  double sigma_intercept = 0.0;
  double sigma_slope = 0.0;
};
[[nodiscard]] LineFit fit_line(const std::vector<double>& x,
                               const std::vector<double>& y);

}  // namespace icvbe::fit
