#pragma once
// Levenberg-Marquardt nonlinear least squares.
//
// Used where the fit is not linear in the parameters: extracting IS and the
// emission coefficient from IC(VBE) curves, fitting Varshni/Thurmond EG(T)
// model coefficients, and the reverse-Early-corrected form of eq. (13).

#include <functional>
#include <string>
#include <vector>

#include "icvbe/linalg/matrix.hpp"

namespace icvbe::fit {

/// Residual function: given parameters p, fill r with m residuals.
using ResidualFn =
    std::function<void(const linalg::Vector& p, linalg::Vector& r)>;

/// Optional analytic Jacobian: J(i, j) = d r_i / d p_j. When absent the
/// solver uses forward differences.
using JacobianFn =
    std::function<void(const linalg::Vector& p, linalg::Matrix& jac)>;

struct LmOptions {
  int max_iterations = 200;
  double gradient_tol = 1e-12;   ///< stop when |J^T r|_inf below this
  double step_tol = 1e-14;       ///< stop when |dp| / |p| below this
  double cost_tol = 1e-15;       ///< stop on relative cost improvement
  double initial_lambda = 1e-3;
  double lambda_up = 10.0;
  double lambda_down = 0.5;
  double max_lambda = 1e12;
  double fd_step = 1e-7;         ///< relative forward-difference step
};

struct LmResult {
  linalg::Vector parameters;
  double cost = 0.0;             ///< 0.5 |r|^2 at the solution
  int iterations = 0;
  bool converged = false;
  std::string stop_reason;
  linalg::Matrix covariance;     ///< sigma^2 (J^T J)^-1 at the solution
};

/// Minimise 0.5 |r(p)|^2 starting from p0. `residual_count` is the number
/// of residuals (m); must be >= p0.size().
[[nodiscard]] LmResult levenberg_marquardt(const ResidualFn& residuals,
                                           std::size_t residual_count,
                                           linalg::Vector p0,
                                           const LmOptions& options = {},
                                           const JacobianFn& jacobian = {});

}  // namespace icvbe::fit
