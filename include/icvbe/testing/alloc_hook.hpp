#pragma once
// Allocation-counting test hook. A binary that links the icvbe_alloc_hook
// library gets counting replacements of the global allocation functions;
// allocation_count() then reports the number of operator-new calls since
// process start. Used to verify the SimSession Newton loop allocates
// nothing after setup. Binaries that do not link the hook must not call
// allocation_count() (the symbol is only defined in the hook library).

#include <cstdint>

namespace icvbe::testing {

/// Total operator-new calls since process start (monotonic; never reset --
/// take differences around the region of interest).
[[nodiscard]] std::uint64_t allocation_count() noexcept;

}  // namespace icvbe::testing
