#pragma once
// Electro-thermal coupling: the die runs warmer than the chamber because
// the circuit dissipates power. The paper attributes the several-kelvin
// difference between sensor and die temperature (Table 1) to "the bias
// current of the circuit, and then to self-heating of QA, QB and the other
// components on the chip".
//
// Model: one thermal node per named device plus a shared die node,
//   T_device = T_ambient + rth_die * P_total + rth_self * P_device,
// solved by damped fixed-point iteration around the DC operating point
// (power levels here are micro/milliwatt, so the loop converges in a few
// passes).

#include <map>
#include <string>
#include <vector>

#include "icvbe/spice/dc_solver.hpp"

namespace icvbe::thermal {

/// Thermal description of one device (junction-to-die).
struct DeviceThermal {
  std::string device;        ///< circuit device name
  double rth_self = 0.0;     ///< junction-to-die thermal resistance [K/W]
};

/// Chip-level thermal environment.
struct ChipThermal {
  double rth_die = 350.0;    ///< die-to-ambient thermal resistance [K/W]
  double aux_power = 0.0;    ///< fixed dissipation of surrounding circuitry [W]
  std::vector<DeviceThermal> devices;  ///< devices with their own heating
};

struct ElectroThermalOptions {
  int max_iterations = 40;
  double temp_tol = 1e-4;    ///< [K] fixed-point convergence tolerance
  double damping = 0.8;      ///< under-relaxation of temperature updates
  spice::NewtonOptions newton;
};

struct ElectroThermalResult {
  spice::Unknowns solution;
  double die_temperature = 0.0;             ///< shared die node [K]
  std::map<std::string, double> device_temperature;  ///< per tracked device
  double total_power = 0.0;                 ///< electrical dissipation [W]
  int iterations = 0;
  bool converged = false;
};

/// Solve the coupled electro-thermal operating point at the given ambient
/// temperature. Devices listed in `chip.devices` get individual junction
/// temperatures; everything else sits at the die temperature.
[[nodiscard]] ElectroThermalResult solve_electrothermal(
    spice::Circuit& circuit, const ChipThermal& chip, double t_ambient_kelvin,
    const ElectroThermalOptions& options = {});

}  // namespace icvbe::thermal
