// SimSession solver throughput: the per-solve cost of the legacy
// free-function path (fresh circuit + fresh solver workspace per point,
// the idiom the lab drivers used before the session refactor) against one
// persistent SimSession (workspace reuse + warm-start continuation) on a
// 100-point temperature sweep of the Banba sub-1-V test cell.
//
// This binary links the icvbe_alloc_hook counting operator new/delete, so
// it also reports allocations per solve: the session path must be
// allocation-free in steady state.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "icvbe/bandgap/banba_cell.hpp"
#include "icvbe/common/constants.hpp"
#include "icvbe/lab/silicon.hpp"
#include "icvbe/spice/analysis.hpp"
#include "icvbe/spice/sim_session.hpp"
#include "icvbe/testing/alloc_hook.hpp"

namespace {

using namespace icvbe;
using Clock = std::chrono::steady_clock;

constexpr int kPoints = 100;

bandgap::BanbaCellParams nominal_banba() {
  const lab::SiliconLot lot;
  bandgap::BanbaCellParams p;
  p.qa_model = lot.truth().pnp;
  p.qb_model = lot.truth().pnp;
  p.pmos = bandgap::banba_default_pmos();
  return p;
}

std::vector<double> sweep_grid() {
  return spice::linspace(to_kelvin(-55.0), to_kelvin(125.0), kPoints);
}

/// Legacy idiom: every point rebuilds the cell and solves with a one-shot
/// workspace (what lab::Laboratory did per chamber setting before the
/// session refactor).
std::vector<double> run_legacy(const bandgap::BanbaCellParams& p,
                               const std::vector<double>& temps) {
  std::vector<double> vref;
  vref.reserve(temps.size());
  for (double t : temps) {
    spice::Circuit c;
    const bandgap::BanbaHandles h = bandgap::build_banba_cell(c, p);
    vref.push_back(bandgap::solve_banba_at(c, h, p, t).vref);
  }
  return vref;
}

/// Session path: one circuit, one workspace, warm-started points. `vref`
/// is preallocated by the caller so the timed region stays heap-silent.
/// `reverse` sweeps the grid top-down -- repetitions alternate direction
/// (boustrophedon) so every point warm-starts from an adjacent one, as a
/// real chamber campaign would.
void run_session(const bandgap::BanbaCellParams& p,
                 const std::vector<double>& temps,
                 const bandgap::BanbaHandles& h, spice::SimSession& session,
                 std::vector<double>& vref, bool reverse) {
  vref.clear();
  const std::size_t n = temps.size();
  for (std::size_t i = 0; i < n; ++i) {
    const double t = temps[reverse ? n - 1 - i : i];
    vref.push_back(bandgap::solve_banba_at(session, h, p, t).vref);
  }
  if (reverse) std::reverse(vref.begin(), vref.end());
}

void reproduce_throughput() {
  bench::banner(
      "Solver throughput: legacy per-solve path vs persistent SimSession "
      "(100-point temperature sweep, Banba sub-1-V cell)");

  const auto p = nominal_banba();
  const auto temps = sweep_grid();
  constexpr int kReps = 5;  // best-of-N to shrug off scheduler noise

  // --- legacy ---
  std::vector<double> vref_legacy;
  const std::uint64_t a0 = testing::allocation_count();
  double us_legacy = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto t0 = Clock::now();
    vref_legacy = run_legacy(p, temps);
    const auto t1 = Clock::now();
    const double us =
        std::chrono::duration<double, std::micro>(t1 - t0).count();
    us_legacy = rep == 0 ? us : std::min(us_legacy, us);
  }
  const std::uint64_t a1 = testing::allocation_count();

  // --- session (built + warmed once, like a real campaign) ---
  spice::Circuit c;
  const bandgap::BanbaHandles h = bandgap::build_banba_cell(c, p);
  spice::NewtonOptions opt;
  opt.max_iterations = 400;
  spice::SimSession session(c, opt);
  (void)bandgap::solve_banba_at(session, h, p, temps.front());  // warm-up
  std::vector<double> vref_session;
  vref_session.reserve(temps.size());

  const std::uint64_t a2 = testing::allocation_count();
  double us_session = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto t2 = Clock::now();
    run_session(p, temps, h, session, vref_session, rep % 2 != 0);
    const auto t3 = Clock::now();
    const double us =
        std::chrono::duration<double, std::micro>(t3 - t2).count();
    us_session = rep == 0 ? us : std::min(us_session, us);
  }
  const std::uint64_t a3 = testing::allocation_count();

  // --- agreement ---
  double max_dv = 0.0;
  for (int i = 0; i < kPoints; ++i) {
    max_dv = std::max(max_dv, std::abs(vref_legacy[static_cast<std::size_t>(
                                           i)] -
                                       vref_session[static_cast<std::size_t>(
                                           i)]));
  }

  const double solves_legacy = 1e6 * kPoints / us_legacy;
  const double solves_session = 1e6 * kPoints / us_session;
  const int total_solves = kReps * kPoints;

  Table t({"path", "time/solve [us]", "solves/sec", "allocs/solve"});
  t.add_row({"legacy free functions", format_fixed(us_legacy / kPoints, 1),
             format_fixed(solves_legacy, 0),
             format_fixed(static_cast<double>(a1 - a0) / total_solves, 1)});
  t.add_row({"SimSession (reused)", format_fixed(us_session / kPoints, 1),
             format_fixed(solves_session, 0),
             format_fixed(static_cast<double>(a3 - a2) / total_solves, 1)});
  bench::emit(t, "solver_throughput.csv");

  std::cout << "speedup: " << format_fixed(us_legacy / us_session, 2)
            << "x   max |dVREF| between paths: " << max_dv << " V\n";
  std::cout << "session steady-state allocations over " << total_solves
            << " solves: " << (a3 - a2) << "\n";
}

void bm_legacy_solve(benchmark::State& state) {
  const auto p = nominal_banba();
  double t = to_kelvin(25.0);
  for (auto _ : state) {
    spice::Circuit c;
    const bandgap::BanbaHandles h = bandgap::build_banba_cell(c, p);
    benchmark::DoNotOptimize(bandgap::solve_banba_at(c, h, p, t));
    t += 0.1;
  }
}
BENCHMARK(bm_legacy_solve)->Unit(benchmark::kMicrosecond);

void bm_plan_run_sweep(benchmark::State& state) {
  // Declarative path: the same 100-point temperature sweep expressed as an
  // AnalysisPlan and executed via SimSession::run (typed axis, compiled
  // probe, allocation-free per point). Apples-to-apples with
  // bm_session_solve x 100.
  const auto p = nominal_banba();
  spice::Circuit c;
  const bandgap::BanbaHandles h = bandgap::build_banba_cell(c, p);
  spice::NewtonOptions opt;
  opt.max_iterations = 400;
  spice::SimSession session(c, opt);
  const auto temps = sweep_grid();
  (void)bandgap::solve_banba_at(session, h, p, temps.front());  // warm-up

  // Alternate sweep direction per repetition (boustrophedon, like
  // run_session): every point -- including the first of each run --
  // warm-starts from an adjacent temperature.
  spice::AnalysisPlan up;
  up.name = "banba_vref_sweep";
  up.options = opt;
  up.axes = {spice::SweepAxis::temperature_kelvin(spice::SweepGrid::list(
      temps))};
  up.probes = {spice::Probe::node_voltage(c.node_name(h.vref))};
  spice::AnalysisPlan down = up;
  down.axes = {spice::SweepAxis::temperature_kelvin(spice::SweepGrid::list(
      {temps.rbegin(), temps.rend()}))};

  bool reverse = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.run(reverse ? down : up));
    reverse = !reverse;
  }
  state.SetItemsProcessed(state.iterations() * kPoints);
}
BENCHMARK(bm_plan_run_sweep)->Unit(benchmark::kMillisecond);

void bm_session_solve(benchmark::State& state) {
  const auto p = nominal_banba();
  spice::Circuit c;
  const bandgap::BanbaHandles h = bandgap::build_banba_cell(c, p);
  spice::NewtonOptions opt;
  opt.max_iterations = 400;
  spice::SimSession session(c, opt);
  (void)bandgap::solve_banba_at(session, h, p, to_kelvin(25.0));
  double t = to_kelvin(25.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bandgap::solve_banba_at(session, h, p, t));
    t += 0.1;
  }
}
BENCHMARK(bm_session_solve)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  reproduce_throughput();
  return icvbe::bench::run_benchmarks(argc, argv);
}
