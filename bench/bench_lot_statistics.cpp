// Monte-Carlo lot study (extension of Fig. 6 / Table 1): run both
// extraction methods over 25 packaged samples and characterise the
// distributions. The paper measured 5 samples; the virtual lab lets us
// show the population-level structure -- every extracted couple falls on
// the characteristic straight, and only the computed-temperature method
// clusters around the silicon truth.

#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "icvbe/common/ascii_plot.hpp"
#include "icvbe/common/constants.hpp"
#include "icvbe/extract/best_fit.hpp"
#include "icvbe/extract/dataset.hpp"
#include "icvbe/extract/meijer.hpp"
#include "icvbe/lab/campaign.hpp"

namespace {

using namespace icvbe;

constexpr int kSamples = 25;

struct Quantiles {
  double q10 = 0.0, q50 = 0.0, q90 = 0.0;
};

Quantiles quantiles(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  auto at = [&](double q) {
    const double idx = q * static_cast<double>(v.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(idx);
    const double frac = idx - static_cast<double>(lo);
    return v[lo] + frac * (v[std::min(lo + 1, v.size() - 1)] - v[lo]);
  };
  return {at(0.10), at(0.50), at(0.90)};
}

void run_lot_study() {
  bench::banner("Monte-Carlo lot study: 25 samples, both methods");
  lab::SiliconLot lot;

  std::vector<double> eg_c1, eg_c3, xti_c3, d1s, d3s;
  Series c3_couples("(C3) couples");
  Series c2_couples("(C2) couples");

  for (int i = 1; i <= kSamples; ++i) {
    lab::CampaignConfig cfg;
    cfg.seed = 9000 + static_cast<std::uint64_t>(i);
    lab::Laboratory laboratory(lot.sample(i), cfg);

    const auto pts = laboratory.vbe_vs_temperature(
        1e-6, {-50.0, -25.0, 0.0, 25.0, 50.0, 75.0, 100.0, 125.0});
    extract::BestFitOptions opt;
    opt.t0 = to_kelvin(25.0);
    const auto c1 =
        extract::best_fit_eg_xti(extract::samples_from_lab(pts), opt);
    eg_c1.push_back(c1.eg);

    const auto sweep = laboratory.test_cell_sweep({-25.0, 25.0, 75.0});
    const auto m = extract::meijer_from_cell(sweep, -25.0, 25.0, 75.0);
    eg_c3.push_back(m.with_computed_t.eg);
    xti_c3.push_back(m.with_computed_t.xti);
    c3_couples.push_back(m.with_computed_t.xti, m.with_computed_t.eg);
    c2_couples.push_back(m.with_measured_t.xti, m.with_measured_t.eg);
    const auto cmp = extract::compare_temperatures(m);
    d1s.push_back(cmp.delta_t1());
    d3s.push_back(cmp.delta_t3());
  }

  Table t({"quantity", "q10", "median", "q90", "truth"});
  const auto q_eg_c1 = quantiles(eg_c1);
  const auto q_eg_c3 = quantiles(eg_c3);
  const auto q_xti_c3 = quantiles(xti_c3);
  const auto q_d1 = quantiles(d1s);
  const auto q_d3 = quantiles(d3s);
  t.add_row({"classical EG [eV]", format_fixed(q_eg_c1.q10, 4),
             format_fixed(q_eg_c1.q50, 4), format_fixed(q_eg_c1.q90, 4),
             format_fixed(lot.true_eg(), 4)});
  t.add_row({"analytical EG [eV]", format_fixed(q_eg_c3.q10, 4),
             format_fixed(q_eg_c3.q50, 4), format_fixed(q_eg_c3.q90, 4),
             format_fixed(lot.true_eg(), 4)});
  t.add_row({"analytical XTI", format_fixed(q_xti_c3.q10, 2),
             format_fixed(q_xti_c3.q50, 2), format_fixed(q_xti_c3.q90, 2),
             format_fixed(lot.true_xti(), 2)});
  t.add_row({"dT1 [K]", format_fixed(q_d1.q10, 2), format_fixed(q_d1.q50, 2),
             format_fixed(q_d1.q90, 2), "paper: -4.6..-1.8"});
  t.add_row({"dT3 [K]", format_fixed(q_d3.q10, 2), format_fixed(q_d3.q50, 2),
             format_fixed(q_d3.q90, 2), "paper: +4.0..+7.3"});
  bench::emit(t, "lot_statistics.csv");

  // Couples cloud: every couple sits near the characteristic straight.
  Series truth("truth");
  truth.push_back(lot.true_xti(), lot.true_eg());
  AsciiPlotOptions popt;
  popt.title = "Extracted couples across the lot (cf. Fig. 6)";
  popt.x_label = "XTI";
  popt.y_label = "EG [eV]";
  popt.height = 16;
  AsciiPlot plot(popt);
  plot.add(c3_couples, '3');
  plot.add(c2_couples, '2');
  plot.add(truth, 'T');
  plot.print(std::cout);

  // Collinearity check: regression of EG on XTI over the C3 cloud should
  // match the characteristic-straight slope.
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < c3_couples.size(); ++i) {
    sx += c3_couples.x(i);
    sy += c3_couples.y(i);
    sxx += c3_couples.x(i) * c3_couples.x(i);
    sxy += c3_couples.x(i) * c3_couples.y(i);
  }
  const double n = static_cast<double>(c3_couples.size());
  const double slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
  std::cout << "C3 cloud regression slope: " << format_fixed(slope * 1e3, 1)
            << " mV/XTI vs characteristic-straight theory "
            << format_fixed(extract::characteristic_slope_theory(
                                to_kelvin(-25.0), to_kelvin(25.0)) * 1e3, 1)
            << " mV/XTI\n";
}

void bm_one_sample_both_methods(benchmark::State& state) {
  lab::SiliconLot lot;
  int i = 0;
  for (auto _ : state) {
    lab::CampaignConfig cfg;
    cfg.seed = 9000 + static_cast<std::uint64_t>(++i);
    lab::Laboratory laboratory(lot.sample(i % 25), cfg);
    const auto sweep = laboratory.test_cell_sweep({-25.0, 25.0, 75.0});
    benchmark::DoNotOptimize(
        extract::meijer_from_cell(sweep, -25.0, 25.0, 75.0));
  }
}
BENCHMARK(bm_one_sample_both_methods)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_lot_study();
  return icvbe::bench::run_benchmarks(argc, argv);
}
