// Monte-Carlo lot study (extension of Fig. 6 / Table 1): run both
// extraction methods over 25 packaged samples and characterise the
// distributions. The paper measured 5 samples; the virtual lab lets us
// show the population-level structure -- every extracted couple falls on
// the characteristic straight, and only the computed-temperature method
// clusters around the silicon truth.

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <limits>
#include <vector>

#include "bench_util.hpp"
#include "icvbe/common/ascii_plot.hpp"
#include "icvbe/common/constants.hpp"
#include "icvbe/common/simd.hpp"
#include "icvbe/common/thread_pool.hpp"
#include "icvbe/extract/meijer.hpp"
#include "icvbe/lab/lot_campaign.hpp"
#include "icvbe/linalg/sparse.hpp"

namespace {

using namespace icvbe;
using Clock = std::chrono::steady_clock;

constexpr int kSamples = 25;

// Batched-lot gate configuration (see run_batched_gate below).
constexpr int kGateDies = 1000;
constexpr unsigned kGateLanes = 8;
constexpr double kSolverSpeedupGate = 5.0;  // lot-solver throughput
// End-to-end campaign speedup is bounded by per-die BJT stamping and
// instrument modelling (pinned per die by the bit-identity contract):
// measured ~1.4x on a quiet machine. Gated with headroom for noisy
// shared CI runners -- the regression this guards is the batched path
// degenerating to (or below) per-die cost, not the last 10%.
constexpr double kCampaignSpeedupGate = 1.15;
// SIMD value-plane kernel A/B: the same batched loop with the pack
// kernel (set_batch_simd(true), the default) vs the scalar per-lane
// reference kernel. In the scalar-fallback build (ICVBE_SIMD=OFF) both
// kernels compile to scalar loops, so the gate only guards against the
// pack-shaped code being pathologically slower than the reference.
constexpr double kSimdKernelGate = common::kSimdEnabled ? 1.5 : 0.75;

void run_lot_study() {
  bench::banner(
      "Monte-Carlo lot study: 25 samples, both methods (parallel "
      "LotCampaign)");
  lab::SiliconLot lot;

  lab::LotCampaignConfig cfg;
  cfg.samples = kSamples;
  cfg.seed_base = 9000;
  const lab::LotCampaign campaign(lot, cfg);
  const auto dies = campaign.run();
  const lab::LotSummary s = lab::LotCampaign::summarise(dies);

  Series c3_couples("(C3) couples");
  Series c2_couples("(C2) couples");
  for (const auto& d : dies) {
    if (!d.ok) continue;
    c3_couples.push_back(d.xti_meijer, d.eg_meijer);
    c2_couples.push_back(d.xti_measured_t, d.eg_measured_t);
  }

  Table t({"quantity", "q10", "median", "q90", "truth"});
  t.add_row({"classical EG [eV]", format_fixed(s.eg_classical.q10, 4),
             format_fixed(s.eg_classical.q50, 4),
             format_fixed(s.eg_classical.q90, 4),
             format_fixed(lot.true_eg(), 4)});
  t.add_row({"analytical EG [eV]", format_fixed(s.eg_meijer.q10, 4),
             format_fixed(s.eg_meijer.q50, 4),
             format_fixed(s.eg_meijer.q90, 4),
             format_fixed(lot.true_eg(), 4)});
  t.add_row({"analytical XTI", format_fixed(s.xti_meijer.q10, 2),
             format_fixed(s.xti_meijer.q50, 2),
             format_fixed(s.xti_meijer.q90, 2),
             format_fixed(lot.true_xti(), 2)});
  t.add_row({"dT1 [K]", format_fixed(s.delta_t1.q10, 2),
             format_fixed(s.delta_t1.q50, 2),
             format_fixed(s.delta_t1.q90, 2), "paper: -4.6..-1.8"});
  t.add_row({"dT3 [K]", format_fixed(s.delta_t3.q10, 2),
             format_fixed(s.delta_t3.q50, 2),
             format_fixed(s.delta_t3.q90, 2), "paper: +4.0..+7.3"});
  bench::emit(t, "lot_statistics.csv");

  // Couples cloud: every couple sits near the characteristic straight.
  Series truth("truth");
  truth.push_back(lot.true_xti(), lot.true_eg());
  AsciiPlotOptions popt;
  popt.title = "Extracted couples across the lot (cf. Fig. 6)";
  popt.x_label = "XTI";
  popt.y_label = "EG [eV]";
  popt.height = 16;
  AsciiPlot plot(popt);
  plot.add(c3_couples, '3');
  plot.add(c2_couples, '2');
  plot.add(truth, 'T');
  plot.print(std::cout);

  // Collinearity check: regression of EG on XTI over the C3 cloud should
  // match the characteristic-straight slope.
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < c3_couples.size(); ++i) {
    sx += c3_couples.x(i);
    sy += c3_couples.y(i);
    sxx += c3_couples.x(i) * c3_couples.x(i);
    sxy += c3_couples.x(i) * c3_couples.y(i);
  }
  const double n = static_cast<double>(c3_couples.size());
  const double slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
  std::cout << "C3 cloud regression slope: " << format_fixed(slope * 1e3, 1)
            << " mV/XTI vs characteristic-straight theory "
            << format_fixed(extract::characteristic_slope_theory(
                                to_kelvin(-25.0), to_kelvin(25.0)) * 1e3, 1)
            << " mV/XTI\n";
}

// ------------------------------------------------ batched-lot gate ---
//
// The tentpole claim of the batched solver is about LOT-SOLVER
// throughput: the per-die path pays pattern construction + symbolic
// analysis + a pivoting factorisation for every die, while the batched
// path pays one analysis for the whole lot and then streams K value
// planes through each frozen refactor/solve. The end-to-end campaign
// speedup is necessarily smaller (device stamping and instrument
// modelling are per-die by the bit-identity contract), so it is gated
// separately at an honest, measured level.

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

/// Cell-shaped MNA test system: n = 7 like the paper's test cell, ring +
/// diagonal pattern, diagonally dominant so the Monte-Carlo value spread
/// never moves a pivot.
struct DieSystem {
  static constexpr std::size_t kN = 7;
  std::vector<std::size_t> row, col;
  std::vector<double> base;

  DieSystem() {
    for (std::size_t i = 0; i < kN; ++i) {
      push(i, i, 4.0 + 0.3 * static_cast<double>(i));
      push(i, (i + 1) % kN, -1.0);
      push((i + 1) % kN, i, -0.8);
    }
    push(0, 3, -0.5);
    push(3, 0, -0.4);
  }
  void push(std::size_t r, std::size_t c, double v) {
    row.push_back(r);
    col.push_back(c);
    base.push_back(v);
  }
  [[nodiscard]] std::size_t nnz() const { return base.size(); }

  /// Deterministic per-die value: a few-percent process-like spread.
  [[nodiscard]] double value(int die, std::size_t s) const {
    return base[s] *
           (1.0 + 0.02 * std::sin(0.7 * static_cast<double>(die) +
                                  1.3 * static_cast<double>(s)));
  }
};

struct SolverTimings {
  double per_die_ms = 0.0;
  double batched_ms = 0.0;
  // Per-stage breakdown of the batched path, medians across reps:
  // stamp = lane loading + RHS packing, reduce = solution scatter-back.
  double stamp_ms = 0.0;
  double refactor_ms = 0.0;
  double solve_ms = 0.0;
  double reduce_ms = 0.0;
  bool bit_identical = false;
};

/// Time kGateDies solves through both paths and bit-compare every
/// solution. Returns medians of `reps` repetitions.
SolverTimings time_lot_solver() {
  const DieSystem sys;
  const std::size_t n = DieSystem::kN;
  const std::size_t k = kGateLanes;

  // Materialise every die's values up front: generation cost is shared by
  // construction, so the timed contrast is pure solver work.
  std::vector<double> vals(static_cast<std::size_t>(kGateDies) * sys.nnz());
  for (int die = 0; die < kGateDies; ++die)
    for (std::size_t s = 0; s < sys.nnz(); ++s)
      vals[static_cast<std::size_t>(die) * sys.nnz() + s] =
          sys.value(die, s);

  std::vector<double> x_per_die(static_cast<std::size_t>(kGateDies) * n);
  std::vector<double> x_batched(static_cast<std::size_t>(kGateDies) * n);

  // Batched path: one pattern, one analysis, K value planes per
  // refactor_batch/solve_batch. `stages` collects the {stamp, refactor,
  // solve, reduce} split for this run.
  auto run_batched = [&](std::vector<double>& x_out, double* stages) {
    linalg::SparseMatrix pattern(n, n);
    for (std::size_t s = 0; s < sys.nnz(); ++s)
      pattern.add(sys.row[s], sys.col[s], sys.base[s]);
    pattern.freeze_pattern();
    linalg::SparseLuFactorization lu;
    lu.refactor(pattern);  // pins the shared symbolic analysis
    linalg::SparseValueBatch batch;
    batch.bind(pattern, k);
    std::vector<unsigned char> lane_ok(k);
    std::vector<double> rhs(n * k);
    for (int first = 0; first < kGateDies;
         first += static_cast<int>(k)) {
      const std::size_t lanes_now =
          std::min(k, static_cast<std::size_t>(kGateDies - first));
      const auto s0 = Clock::now();
      for (std::size_t l = 0; l < lanes_now; ++l) {
        batch.clear_lane(l);
        const double* v =
            &vals[(static_cast<std::size_t>(first) + l) * sys.nnz()];
        for (std::size_t s = 0; s < sys.nnz(); ++s)
          batch.add(sys.row[s], sys.col[s], v[s], l);
        lane_ok[l] = 1;
      }
      for (std::size_t l = lanes_now; l < k; ++l) {
        batch.clear_lane(l);
        batch.add(0, 0, 1.0, l);  // park unused tail lanes on identity-ish
        lane_ok[l] = 0;
      }
      for (std::size_t i = 0; i < n; ++i)
        for (std::size_t l = 0; l < k; ++l) rhs[i * k + l] = 1.0;
      const auto s1 = Clock::now();
      lu.refactor_batch(batch, lane_ok);
      const auto s2 = Clock::now();
      lu.solve_batch(rhs);
      const auto s3 = Clock::now();
      for (std::size_t l = 0; l < lanes_now; ++l)
        for (std::size_t i = 0; i < n; ++i)
          x_out[(static_cast<std::size_t>(first) + l) * n + i] =
              rhs[i * k + l];
      if (stages != nullptr) {
        using Ms = std::chrono::duration<double, std::milli>;
        stages[0] += Ms(s1 - s0).count();
        stages[1] += Ms(s2 - s1).count();
        stages[2] += Ms(s3 - s2).count();
        stages[3] += Ms(Clock::now() - s3).count();
      }
    }
  };

  constexpr int kReps = 5;
  std::vector<double> per_die_runs, batched_runs;
  std::vector<std::array<double, 4>> stage_runs;

  for (int rep = 0; rep < kReps; ++rep) {
    // Per-die path: what LotCampaign's per-die rigs pay per die --
    // pattern build + freeze + symbolic analysis + pivoting refactor +
    // solve, from scratch every time.
    const auto t0 = Clock::now();
    for (int die = 0; die < kGateDies; ++die) {
      linalg::SparseMatrix m(n, n);
      const double* v = &vals[static_cast<std::size_t>(die) * sys.nnz()];
      for (std::size_t s = 0; s < sys.nnz(); ++s)
        m.add(sys.row[s], sys.col[s], v[s]);
      m.freeze_pattern();
      linalg::SparseLuFactorization lu;
      lu.refactor(m);
      linalg::Vector b(n, 1.0);
      lu.solve_in_place(b);
      for (std::size_t i = 0; i < n; ++i)
        x_per_die[static_cast<std::size_t>(die) * n + i] = b[i];
    }
    per_die_runs.push_back(ms_since(t0));

    std::array<double, 4> stages{};
    const auto t1 = Clock::now();
    run_batched(x_batched, stages.data());
    batched_runs.push_back(ms_since(t1));
    stage_runs.push_back(stages);
  }

  SolverTimings out;
  std::sort(per_die_runs.begin(), per_die_runs.end());
  std::sort(batched_runs.begin(), batched_runs.end());
  out.per_die_ms = per_die_runs[per_die_runs.size() / 2];
  out.batched_ms = batched_runs[batched_runs.size() / 2];
  auto stage_median = [&](std::size_t s) {
    std::vector<double> v;
    for (const auto& r : stage_runs) v.push_back(r[s]);
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  out.stamp_ms = stage_median(0);
  out.refactor_ms = stage_median(1);
  out.solve_ms = stage_median(2);
  out.reduce_ms = stage_median(3);
  out.bit_identical = x_per_die == x_batched;  // exact, every die
  return out;
}

// ---------------------------------------------- SIMD kernel A/B gate ---
//
// The value-plane kernel A/B needs a system where the lane arithmetic --
// not lane loading or pattern bookkeeping -- is the cost, so it runs the
// same 1000-die / K-lane loop on a 20x20 conductance mesh (n = 400, dense
// trailing supernode engaged) and times only refactor_batch + solve_batch.
// The n = 7 cell above is stamp-bound: both kernels tie there by design.

struct SimdAbTimings {
  double pack_ms = 0.0;    // refactor+solve, pack kernel (default)
  double scalar_ms = 0.0;  // refactor+solve, scalar lane reference kernel
  std::size_t n = 0;
  std::size_t supernode = 0;
  bool bit_identical = false;
};

SimdAbTimings time_simd_kernel_ab() {
  constexpr int kG = 20;
  const std::size_t n = static_cast<std::size_t>(kG) * kG;
  const std::size_t k = kGateLanes;

  // Deterministic mesh values (no RNG: reproducible across runs/builds).
  linalg::SparseMatrix mesh(n, n);
  std::vector<double> diag(n, 1e-3);
  auto idx = [](int x, int y) {
    return static_cast<std::size_t>(x * kG + y);
  };
  auto weight = [](std::size_t a, std::size_t b) {
    return 1.0 + 0.5 * std::sin(0.37 * static_cast<double>(a) +
                                0.73 * static_cast<double>(b));
  };
  for (int x = 0; x < kG; ++x) {
    for (int y = 0; y < kG; ++y) {
      const std::size_t i = idx(x, y);
      if (x + 1 < kG) {
        const std::size_t j = idx(x + 1, y);
        const double c = weight(i, j);
        mesh.add(i, j, -c);
        mesh.add(j, i, -c);
        diag[i] += c;
        diag[j] += c;
      }
      if (y + 1 < kG) {
        const std::size_t j = idx(x, y + 1);
        const double c = weight(i, j);
        mesh.add(i, j, -c);
        mesh.add(j, i, -c);
        diag[i] += c;
        diag[j] += c;
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) mesh.add(i, i, diag[i]);
  mesh.freeze_pattern();

  SimdAbTimings out;
  out.n = n;
  std::vector<double> x_pack(static_cast<std::size_t>(kGateDies) * n);
  std::vector<double> x_scalar(static_cast<std::size_t>(kGateDies) * n);

  constexpr int kReps = 3;
  // Interleave the kernels and keep each one's best rep: on a shared
  // runner the minimum is the truer kernel cost, and the ratio of two
  // minima is far more stable than the ratio of two medians.
  for (int rep = 0; rep < kReps; ++rep) {
    for (int pack = 1; pack >= 0; --pack) {
      linalg::SparseLuFactorization lu;
      linalg::SparseOptions o;  // force the dense trailing supernode in
      o.supernode_min = 8;      // (the mesh tail is dense under AMD)
      o.supernode_density = 0.3;
      lu.set_options(o);
      lu.set_batch_simd(pack != 0);
      lu.refactor(mesh);
      if (rep == 0 && pack == 1) out.supernode = lu.supernode_size();
      linalg::SparseValueBatch batch;
      batch.bind(mesh, k);
      // Lanes load once; each group then nudges the corner diagonal in
      // place (refactor_batch never writes the value planes, and add()
      // accumulates). Reloading 8 full planes per group would stream
      // ~150 KB through the cache between refactors and measure the
      // memcpy, not the kernel; the nudge keeps per-die values distinct
      // at kernel-only cost. Both legs run the same sequence, so the
      // bit-compare still covers every die.
      for (std::size_t l = 0; l < k; ++l) {
        batch.load_lane(l, mesh);
        batch.add(0, 0, 1e-4 * static_cast<double>(l), l);
      }
      std::vector<unsigned char> lane_ok(k);
      std::vector<double> rhs(n * k);
      std::vector<double>& x_out = pack != 0 ? x_pack : x_scalar;
      double kernel_ms = 0.0;
      for (int first = 0; first < kGateDies;
           first += static_cast<int>(k)) {
        const std::size_t lanes_now =
            std::min(k, static_cast<std::size_t>(kGateDies - first));
        for (std::size_t l = 0; l < k; ++l) {
          batch.add(0, 0, 1e-6, l);  // per-group spread, never moves a pivot
          lane_ok[l] = l < lanes_now ? 1 : 0;
        }
        for (std::size_t i = 0; i < n; ++i)
          for (std::size_t l = 0; l < k; ++l) rhs[i * k + l] = 1.0;
        const auto t0 = Clock::now();
        lu.refactor_batch(batch, lane_ok);
        lu.solve_batch(rhs);
        kernel_ms += ms_since(t0);
        for (std::size_t l = 0; l < lanes_now; ++l)
          for (std::size_t i = 0; i < n; ++i)
            x_out[(static_cast<std::size_t>(first) + l) * n + i] =
                rhs[i * k + l];
      }
      double& best = pack != 0 ? out.pack_ms : out.scalar_ms;
      if (rep == 0 || kernel_ms < best) best = kernel_ms;
    }
  }
  out.bit_identical = x_pack == x_scalar;  // both kernels, every die
  return out;
}

struct CampaignTimings {
  double per_die_ms = 0.0;
  double batched_ms = 0.0;
  bool summary_bit_identical = false;
  unsigned threads = 0;
};

/// Run the real 1000-die campaign through both paths (same sparse-forced
/// engine, same thread pool) and bit-compare the LotSummary.
CampaignTimings time_campaign() {
  lab::LotCampaignConfig cfg;
  cfg.samples = kGateDies;
  cfg.seed_base = 9000;
  cfg.lab.newton.sparse = spice::SparseMode::kSparse;
  const lab::SiliconLot lot;

  CampaignTimings out;
  out.threads = common::resolve_thread_count(0);

  // Best of two runs per path: one 1000-die campaign is long enough to
  // catch scheduler noise, and the faster run is the truer cost.
  cfg.lanes = 0;
  const lab::LotCampaign per_die(lot, cfg);
  std::vector<lab::DieCharacterisation> dies_ref;
  out.per_die_ms = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 2; ++rep) {
    const auto t0 = Clock::now();
    dies_ref = per_die.run();
    out.per_die_ms = std::min(out.per_die_ms, ms_since(t0));
  }

  cfg.lanes = kGateLanes;
  const lab::LotCampaign batched(lot, cfg);
  std::vector<lab::DieCharacterisation> dies_batched;
  out.batched_ms = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 2; ++rep) {
    const auto t1 = Clock::now();
    dies_batched = batched.run();
    out.batched_ms = std::min(out.batched_ms, ms_since(t1));
  }

  const lab::LotSummary a = lab::LotCampaign::summarise(dies_ref);
  const lab::LotSummary b = lab::LotCampaign::summarise(dies_batched);
  auto stat_eq = [](const lab::LotStatistic& x, const lab::LotStatistic& y) {
    return x.count == y.count && x.mean == y.mean && x.stddev == y.stddev &&
           x.min == y.min && x.max == y.max && x.q10 == y.q10 &&
           x.q50 == y.q50 && x.q90 == y.q90;
  };
  out.summary_bit_identical =
      a.dies_ok == b.dies_ok && a.dies_failed == b.dies_failed &&
      stat_eq(a.eg_classical, b.eg_classical) &&
      stat_eq(a.eg_meijer, b.eg_meijer) &&
      stat_eq(a.xti_meijer, b.xti_meijer) &&
      stat_eq(a.delta_t1, b.delta_t1) && stat_eq(a.delta_t3, b.delta_t3);
  return out;
}

void write_gate_json(const SolverTimings& solver, bool solver_passed,
                     const SimdAbTimings& ab, bool simd_passed,
                     const CampaignTimings& campaign, bool campaign_passed,
                     const std::string& path) {
  const double solver_speedup =
      solver.batched_ms > 0.0 ? solver.per_die_ms / solver.batched_ms : 0.0;
  const double simd_speedup =
      ab.pack_ms > 0.0 ? ab.scalar_ms / ab.pack_ms : 0.0;
  const double campaign_speedup =
      campaign.batched_ms > 0.0 ? campaign.per_die_ms / campaign.batched_ms
                                : 0.0;
  std::ofstream os(path);
  os << "{\n"
     << "  \"bench\": \"bench_lot_statistics\",\n"
     << "  \"kernel\": \"batched lot solver (one symbolic analysis, "
     << kGateLanes << " dies per refactor) vs per-die rebuild\",\n"
     << "  \"dies\": " << kGateDies << ",\n"
     << "  \"lanes\": " << kGateLanes << ",\n"
     << "  \"threads\": " << campaign.threads << ",\n"
     << "  \"solver\": {\n"
     << "    \"per_die_ms\": " << solver.per_die_ms << ",\n"
     << "    \"batched_ms\": " << solver.batched_ms << ",\n"
     << "    \"speedup\": " << solver_speedup << ",\n"
     << "    \"gate\": " << kSolverSpeedupGate << ",\n"
     << "    \"stages_ms\": {\n"
     << "      \"stamp\": " << solver.stamp_ms << ",\n"
     << "      \"refactor\": " << solver.refactor_ms << ",\n"
     << "      \"solve\": " << solver.solve_ms << ",\n"
     << "      \"reduce\": " << solver.reduce_ms << "\n"
     << "    },\n"
     << "    \"bit_identical\": "
     << (solver.bit_identical ? "true" : "false") << ",\n"
     << "    \"passed\": " << (solver_passed ? "true" : "false") << "\n"
     << "  },\n"
     << "  \"simd_kernel\": {\n"
     << "    \"enabled\": "
     << (common::kSimdEnabled ? "true" : "false") << ",\n"
     << "    \"system\": \"mesh n=" << ab.n << ", supernode " << ab.supernode
     << ", refactor_batch+solve_batch only\",\n"
     << "    \"pack_kernel_ms\": " << ab.pack_ms << ",\n"
     << "    \"scalar_kernel_ms\": " << ab.scalar_ms << ",\n"
     << "    \"speedup\": " << simd_speedup << ",\n"
     << "    \"gate\": " << kSimdKernelGate << ",\n"
     << "    \"bit_identical\": "
     << (ab.bit_identical ? "true" : "false") << ",\n"
     << "    \"passed\": " << (simd_passed ? "true" : "false") << "\n"
     << "  },\n"
     << "  \"campaign\": {\n"
     << "    \"per_die_ms\": " << campaign.per_die_ms << ",\n"
     << "    \"batched_ms\": " << campaign.batched_ms << ",\n"
     << "    \"speedup\": " << campaign_speedup << ",\n"
     << "    \"gate\": " << kCampaignSpeedupGate << ",\n"
     << "    \"passed\": " << (campaign_passed ? "true" : "false") << "\n"
     << "  },\n"
     << "  \"summary_bit_identical\": "
     << (campaign.summary_bit_identical ? "true" : "false") << "\n"
     << "}\n";
}

/// Returns false when any gate fails.
bool run_batched_gate() {
  bench::banner(
      "Batched lot solver gate: 1000 dies, one symbolic analysis, " +
      std::to_string(kGateLanes) + " dies per refactor");

  const SolverTimings solver = time_lot_solver();
  const double solver_speedup =
      solver.batched_ms > 0.0 ? solver.per_die_ms / solver.batched_ms : 0.0;
  const bool solver_passed =
      solver.bit_identical && solver_speedup >= kSolverSpeedupGate;

  const SimdAbTimings ab = time_simd_kernel_ab();
  const double simd_speedup =
      ab.pack_ms > 0.0 ? ab.scalar_ms / ab.pack_ms : 0.0;
  const bool simd_passed =
      ab.bit_identical && simd_speedup >= kSimdKernelGate;

  const CampaignTimings campaign = time_campaign();
  const double campaign_speedup =
      campaign.batched_ms > 0.0 ? campaign.per_die_ms / campaign.batched_ms
                                : 0.0;
  const bool campaign_passed = campaign.summary_bit_identical &&
                               campaign_speedup >= kCampaignSpeedupGate;

  Table t({"path", "baseline [ms]", "batched [ms]", "speedup", "gate"});
  t.add_row({"lot solver (1000 dies)", format_sig(solver.per_die_ms, 4),
             format_sig(solver.batched_ms, 4),
             format_sig(solver_speedup, 3),
             ">= " + format_sig(kSolverSpeedupGate, 2)});
  t.add_row({"SIMD vs scalar lane kernel", format_sig(ab.scalar_ms, 4),
             format_sig(ab.pack_ms, 4), format_sig(simd_speedup, 3),
             ">= " + format_sig(kSimdKernelGate, 2)});
  t.add_row({"campaign end-to-end", format_sig(campaign.per_die_ms, 4),
             format_sig(campaign.batched_ms, 4),
             format_sig(campaign_speedup, 3),
             ">= " + format_sig(kCampaignSpeedupGate, 2)});
  bench::emit(t, "lot_batched_gate.csv");

  std::printf("solver: %.2fx (gate >= %.1fx), solutions bit-identical: %s "
              "-- %s\n",
              solver_speedup, kSolverSpeedupGate,
              solver.bit_identical ? "yes" : "NO",
              solver_passed ? "PASS" : "FAIL");
  std::printf("solver stages [ms]: stamp %.2f, refactor %.2f, solve %.2f, "
              "reduce %.2f\n",
              solver.stamp_ms, solver.refactor_ms, solver.solve_ms,
              solver.reduce_ms);
  std::printf("simd kernel (%s build, n=%zu mesh, supernode %zu): %.2fx vs "
              "scalar lane kernel (gate >= %.2fx), bit-identical: %s -- %s\n",
              common::kSimdEnabled ? "SIMD" : "scalar-fallback", ab.n,
              ab.supernode, simd_speedup, kSimdKernelGate,
              ab.bit_identical ? "yes" : "NO",
              simd_passed ? "PASS" : "FAIL");
  std::printf("campaign: %.2fx (gate >= %.2fx, %u threads), LotSummary "
              "bit-identical: %s -- %s\n",
              campaign_speedup, kCampaignSpeedupGate, campaign.threads,
              campaign.summary_bit_identical ? "yes" : "NO",
              campaign_passed ? "PASS" : "FAIL");

  const std::string json_path = bench::results_dir() + "/BENCH_lot.json";
  write_gate_json(solver, solver_passed, ab, simd_passed, campaign,
                  campaign_passed, json_path);
  std::printf("[json] %s\n", json_path.c_str());
  return solver_passed && simd_passed && campaign_passed;
}

void bm_one_sample_both_methods(benchmark::State& state) {
  lab::SiliconLot lot;
  int i = 0;
  for (auto _ : state) {
    lab::CampaignConfig cfg;
    cfg.seed = 9000 + static_cast<std::uint64_t>(++i);
    lab::Laboratory laboratory(lot.sample(i % 25), cfg);
    const auto sweep = laboratory.test_cell_sweep({-25.0, 25.0, 75.0});
    benchmark::DoNotOptimize(
        extract::meijer_from_cell(sweep, -25.0, 25.0, 75.0));
  }
}
BENCHMARK(bm_one_sample_both_methods)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_lot_study();
  const bool gate_passed = run_batched_gate();
  const int bench_rc = icvbe::bench::run_benchmarks(argc, argv);
  return gate_passed ? bench_rc : 1;
}
