// Monte-Carlo lot study (extension of Fig. 6 / Table 1): run both
// extraction methods over 25 packaged samples and characterise the
// distributions. The paper measured 5 samples; the virtual lab lets us
// show the population-level structure -- every extracted couple falls on
// the characteristic straight, and only the computed-temperature method
// clusters around the silicon truth.

#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "icvbe/common/ascii_plot.hpp"
#include "icvbe/common/constants.hpp"
#include "icvbe/extract/meijer.hpp"
#include "icvbe/lab/lot_campaign.hpp"

namespace {

using namespace icvbe;

constexpr int kSamples = 25;

void run_lot_study() {
  bench::banner(
      "Monte-Carlo lot study: 25 samples, both methods (parallel "
      "LotCampaign)");
  lab::SiliconLot lot;

  lab::LotCampaignConfig cfg;
  cfg.samples = kSamples;
  cfg.seed_base = 9000;
  const lab::LotCampaign campaign(lot, cfg);
  const auto dies = campaign.run();
  const lab::LotSummary s = lab::LotCampaign::summarise(dies);

  Series c3_couples("(C3) couples");
  Series c2_couples("(C2) couples");
  for (const auto& d : dies) {
    if (!d.ok) continue;
    c3_couples.push_back(d.xti_meijer, d.eg_meijer);
    c2_couples.push_back(d.xti_measured_t, d.eg_measured_t);
  }

  Table t({"quantity", "q10", "median", "q90", "truth"});
  t.add_row({"classical EG [eV]", format_fixed(s.eg_classical.q10, 4),
             format_fixed(s.eg_classical.q50, 4),
             format_fixed(s.eg_classical.q90, 4),
             format_fixed(lot.true_eg(), 4)});
  t.add_row({"analytical EG [eV]", format_fixed(s.eg_meijer.q10, 4),
             format_fixed(s.eg_meijer.q50, 4),
             format_fixed(s.eg_meijer.q90, 4),
             format_fixed(lot.true_eg(), 4)});
  t.add_row({"analytical XTI", format_fixed(s.xti_meijer.q10, 2),
             format_fixed(s.xti_meijer.q50, 2),
             format_fixed(s.xti_meijer.q90, 2),
             format_fixed(lot.true_xti(), 2)});
  t.add_row({"dT1 [K]", format_fixed(s.delta_t1.q10, 2),
             format_fixed(s.delta_t1.q50, 2),
             format_fixed(s.delta_t1.q90, 2), "paper: -4.6..-1.8"});
  t.add_row({"dT3 [K]", format_fixed(s.delta_t3.q10, 2),
             format_fixed(s.delta_t3.q50, 2),
             format_fixed(s.delta_t3.q90, 2), "paper: +4.0..+7.3"});
  bench::emit(t, "lot_statistics.csv");

  // Couples cloud: every couple sits near the characteristic straight.
  Series truth("truth");
  truth.push_back(lot.true_xti(), lot.true_eg());
  AsciiPlotOptions popt;
  popt.title = "Extracted couples across the lot (cf. Fig. 6)";
  popt.x_label = "XTI";
  popt.y_label = "EG [eV]";
  popt.height = 16;
  AsciiPlot plot(popt);
  plot.add(c3_couples, '3');
  plot.add(c2_couples, '2');
  plot.add(truth, 'T');
  plot.print(std::cout);

  // Collinearity check: regression of EG on XTI over the C3 cloud should
  // match the characteristic-straight slope.
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < c3_couples.size(); ++i) {
    sx += c3_couples.x(i);
    sy += c3_couples.y(i);
    sxx += c3_couples.x(i) * c3_couples.x(i);
    sxy += c3_couples.x(i) * c3_couples.y(i);
  }
  const double n = static_cast<double>(c3_couples.size());
  const double slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
  std::cout << "C3 cloud regression slope: " << format_fixed(slope * 1e3, 1)
            << " mV/XTI vs characteristic-straight theory "
            << format_fixed(extract::characteristic_slope_theory(
                                to_kelvin(-25.0), to_kelvin(25.0)) * 1e3, 1)
            << " mV/XTI\n";
}

void bm_one_sample_both_methods(benchmark::State& state) {
  lab::SiliconLot lot;
  int i = 0;
  for (auto _ : state) {
    lab::CampaignConfig cfg;
    cfg.seed = 9000 + static_cast<std::uint64_t>(++i);
    lab::Laboratory laboratory(lot.sample(i % 25), cfg);
    const auto sweep = laboratory.test_cell_sweep({-25.0, 25.0, 75.0});
    benchmark::DoNotOptimize(
        extract::meijer_from_cell(sweep, -25.0, 25.0, 75.0));
  }
}
BENCHMARK(bm_one_sample_both_methods)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_lot_study();
  return icvbe::bench::run_benchmarks(argc, argv);
}
