#pragma once
// Shared helpers for the reproduction benches. Each bench binary
//  1. regenerates its paper table/figure and prints it (plus CSV under
//     results/), then
//  2. runs google-benchmark timings of the computational kernels involved.

#include <benchmark/benchmark.h>

#include <filesystem>
#include <iostream>
#include <string>

#include "icvbe/common/table.hpp"

namespace icvbe::bench {

/// Directory for CSV artefacts (created on demand).
inline std::string results_dir() {
  const char* env = std::getenv("ICVBE_RESULTS_DIR");
  std::string dir = env != nullptr ? env : "results";
  std::filesystem::create_directories(dir);
  return dir;
}

/// Print a section banner.
inline void banner(const std::string& title) {
  std::cout << '\n'
            << "==============================================================="
            << "=\n"
            << title << '\n'
            << "==============================================================="
            << "=\n";
}

/// Print a table and also write it as CSV under results/.
inline void emit(const Table& table, const std::string& csv_name) {
  table.print(std::cout);
  const std::string path = results_dir() + "/" + csv_name;
  table.write_csv(path);
  std::cout << "[csv] " << path << '\n';
}

/// Run the reproduction (already printed) then the registered
/// google-benchmark timings. Call from main().
inline int run_benchmarks(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace icvbe::bench
