// Reproduction of Fig. 1: the five EG(T) models over 0-450 K, the 0 K
// spread, and the eq.-(12) identification of SPICE parameters from the
// Gummel-Poon physical model (section 2).

#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "icvbe/common/ascii_plot.hpp"
#include "icvbe/common/constants.hpp"
#include "icvbe/physics/carrier.hpp"
#include "icvbe/physics/eg_model.hpp"
#include "icvbe/physics/saturation_current.hpp"

namespace {

using namespace icvbe;

void reproduce_fig1() {
  bench::banner(
      "Fig. 1 -- temperature variation of the Si energy band gap, five "
      "models");

  const auto eg1 = physics::make_eg1(300.0);
  const auto eg2 = physics::make_eg2();
  const auto eg3 = physics::make_eg3();
  const auto eg4 = physics::make_eg4();
  const auto eg5 = physics::make_eg5();
  const physics::EgModel* models[] = {&eg1, &eg2, &eg3, &eg4, &eg5};

  Table t({"T [K]", "EG1 lin", "EG2 Varshni[8]", "EG3 Varshni[7]",
           "EG4 log[6]", "EG5 log[6]"});
  Series s1("EG1"), s2("EG2"), s3("EG3"), s4("EG4"), s5("EG5");
  Series* series[] = {&s1, &s2, &s3, &s4, &s5};
  for (double temp = 0.0; temp <= 450.0; temp += 25.0) {
    std::vector<std::string> row{format_fixed(temp, 0)};
    for (int m = 0; m < 5; ++m) {
      const double eg = models[m]->eg(temp);
      row.push_back(format_fixed(eg, 4));
      series[m]->push_back(temp, eg);
    }
    t.add_row(std::move(row));
  }
  bench::emit(t, "fig1_eg_models.csv");

  AsciiPlotOptions opt;
  opt.title = "Fig. 1: EG(T) [eV] vs T [K]";
  opt.x_label = "Temperature [K]";
  opt.y_label = "Energy band gap of Si [eV]";
  opt.height = 18;
  AsciiPlot plot(opt);
  for (int m = 0; m < 5; ++m) plot.add(*series[m]);
  plot.print(std::cout);

  bench::banner("Fig. 1 headline numbers vs the paper");
  Table h({"quantity", "paper", "reproduced"});
  h.add_row({"EG5(0) - EG2(0) spread", "~22 mV",
             format_fixed((eg5.eg(0.0) - eg2.eg(0.0)) * 1e3, 1) + " mV"});
  const double eg0 = physics::eg0_extrapolated(300.0);
  h.add_row({"EG0 tangent extrapolation", "~1.2 eV (above all models)",
             format_fixed(eg0, 4) + " eV"});
  const double worst =
      eg0 - (eg5.eg(0.0) - 0.045);  // with 45 meV bandgap narrowing
  h.add_row({"error incl. bandgap narrowing", "up to ~90 mV",
             format_fixed(worst * 1e3, 1) + " mV"});
  bench::emit(h, "fig1_headlines.csv");

  bench::banner("Section 2 -- eq. (12) identification from physics");
  physics::BaseTransport bt;
  bt.en = 0.42;
  bt.erho = 0.11;
  bt.t0 = 300.0;
  const physics::GummelPoonIsModel gp(physics::make_eg5(), 0.045, bt, 48e-8);
  const auto p = gp.spice_params();
  Table id({"quantity", "value"});
  id.add_row({"EG(0) (EG5 model)", format_fixed(physics::make_eg5().eg0(), 4) + " eV"});
  id.add_row({"dEG bandgap narrowing", "45.0 meV"});
  id.add_row({"EN (mobility exponent)", format_fixed(bt.en, 2)});
  id.add_row({"Erho (Gummel-number exponent)", format_fixed(bt.erho, 2)});
  id.add_row({"b (EG5 log coefficient)", format_sci(physics::make_eg5().b(), 3) + " eV/K"});
  id.add_row({"=> SPICE EG (eq. 12)", format_fixed(p.eg, 4) + " eV"});
  id.add_row({"=> SPICE XTI (eq. 12)", format_fixed(p.xti, 3)});
  id.add_row({"IS(T) sensitivity at 300 K (paper ref [12]: ~20 %/K)",
              format_fixed(gp.relative_sensitivity(300.0) * 100.0, 1) +
                  " %/K"});
  bench::emit(id, "fig1_eq12_identification.csv");
}

void bm_eg_log_eval(benchmark::State& state) {
  const auto eg5 = physics::make_eg5();
  double t = 200.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(eg5.eg(t));
    t = (t < 450.0) ? t + 1.0 : 200.0;
  }
}
BENCHMARK(bm_eg_log_eval);

void bm_gummel_poon_is(benchmark::State& state) {
  physics::BaseTransport bt;
  const physics::GummelPoonIsModel gp(physics::make_eg5(), 0.045, bt, 48e-8);
  double t = 220.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gp.is(t));
    t = (t < 420.0) ? t + 1.0 : 220.0;
  }
}
BENCHMARK(bm_gummel_poon_is);

void bm_spice_is(benchmark::State& state) {
  double t = 220.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(physics::spice_is(1e-16, 1.132, 3.6, t, 298.15));
    t = (t < 420.0) ? t + 1.0 : 220.0;
  }
}
BENCHMARK(bm_spice_is);

}  // namespace

int main(int argc, char** argv) {
  reproduce_fig1();
  return icvbe::bench::run_benchmarks(argc, argv);
}
