// Reproduction of Fig. 6: the EG(XTI) "characteristic straights" from
//   (C1) the classical best fit of VBE(T) over IC in [1e-8, 1e-5] A,
//   (C2) the analytical (Meijer) method with sensor-measured temperatures,
//   (C3) the analytical method with eq.-(16)-computed die temperatures.
// The paper's findings: C1 and C2 correlate (same temperature corruption);
// C3 sits apart and carries the real device behaviour.

#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "icvbe/common/ascii_plot.hpp"
#include "icvbe/common/constants.hpp"
#include "icvbe/extract/best_fit.hpp"
#include "icvbe/extract/dataset.hpp"
#include "icvbe/extract/meijer.hpp"
#include "icvbe/lab/campaign.hpp"

namespace {

using namespace icvbe;

std::vector<double> xti_grid() {
  std::vector<double> g;
  for (double x = 0.5; x <= 6.5; x += 0.25) g.push_back(x);
  return g;
}

void reproduce_fig6() {
  bench::banner(
      "Fig. 6 -- characteristic straights EG(XTI): best fit (C1), "
      "analytical with measured T (C2), analytical with computed T (C3)");

  lab::SiliconLot lot;
  lab::CampaignConfig cfg;
  cfg.seed = 66;
  lab::Laboratory laboratory(lot.sample(1), cfg);

  // (C1): classical fit on VBE(T) sliced from the IC(VBE) family over the
  // paper's current range 1e-8..1e-5 A.
  const std::vector<double> temps_c = {-50.0, -25.0, 0.0, 25.0,
                                       50.0,  75.0,  100.0, 125.0};
  const auto family = laboratory.icvbe_family(temps_c, 0.10, 1.00, 61);
  const auto pts = laboratory.vbe_vs_temperature(1e-6, temps_c);
  std::vector<double> temps_sensor;
  for (const auto& p : pts) temps_sensor.push_back(p.t_sensor);

  extract::BestFitOptions opt;
  opt.t0 = to_kelvin(25.0);
  const auto grid = xti_grid();

  // One C1 line per decade of collector current; they coincide, which is
  // the "infinite number of EG and XTI couples" observation.
  Series c1_line("(C1) best fit");
  Table couples({"IC [A]", "unconstrained EG", "unconstrained XTI",
                 "EG at XTI=3 (on line)", "EG-XTI correlation"});
  for (double ic : {1e-8, 1e-7, 1e-6, 1e-5}) {
    const auto samples =
        extract::vbe_vs_t_at_constant_ic(family, temps_sensor, ic);
    const auto fit = extract::best_fit_eg_xti(samples, opt);
    const auto line = extract::characteristic_straight(samples, grid, opt);
    if (ic == 1e-6) c1_line = line.couples;
    couples.add_row({format_sci(ic, 0), format_fixed(fit.eg, 4),
                     format_fixed(fit.xti, 2),
                     format_fixed(line.intercept + line.slope * 3.0, 4),
                     format_fixed(fit.correlation, 4)});
  }
  bench::emit(couples, "fig6_c1_couples_per_current.csv");

  // (C2)/(C3): cell campaign at the paper's three temperatures.
  const auto sweep = laboratory.test_cell_sweep({-25.0, 25.0, 75.0});
  const auto m = extract::meijer_from_cell(sweep, -25.0, 25.0, 75.0);

  Series c2_line = extract::meijer_line(m.p1.t_sensor, m.p1.vbe_qa,
                                        m.p2.t_sensor, m.p2.vbe_qa, grid);
  c2_line.set_name("(C2) measured T");
  Series c3_line = extract::meijer_line(m.t1_computed, m.p1.vbe_qa,
                                        m.p2.t_sensor, m.p2.vbe_qa, grid);
  c3_line.set_name("(C3) computed T");

  Table lines({"XTI", "(C1) EG", "(C2) EG", "(C3) EG"});
  for (std::size_t i = 0; i < grid.size(); i += 2) {
    lines.add_row({format_fixed(grid[i], 2), format_fixed(c1_line.y(i), 4),
                   format_fixed(c2_line.y(i), 4),
                   format_fixed(c3_line.y(i), 4)});
  }
  bench::emit(lines, "fig6_characteristic_straights.csv");

  AsciiPlotOptions popt;
  popt.title = "Fig. 6: extracted EG [eV] vs XTI";
  popt.x_label = "XTI";
  popt.y_label = "Extracted EG [eV]";
  popt.height = 18;
  AsciiPlot plot(popt);
  plot.add(c1_line, '1');
  plot.add(c2_line, '2');
  plot.add(c3_line, '3');
  plot.print(std::cout);

  bench::banner("Fig. 6 structure checks vs the paper");
  const double eg1_at3 = c1_line.y(c1_line.nearest_index(3.0));
  const double eg2_at3 = c2_line.y(c2_line.nearest_index(3.0));
  const double eg3_at3 = c3_line.y(c3_line.nearest_index(3.0));
  Table h({"check", "paper", "reproduced"});
  h.add_row({"C1-C2 gap at XTI=3 [mV]", "small (C1 ~ C2)",
             format_fixed(std::abs(eg1_at3 - eg2_at3) * 1e3, 1)});
  h.add_row({"C1-C3 gap at XTI=3 [mV]", "large (poor agreement)",
             format_fixed(std::abs(eg1_at3 - eg3_at3) * 1e3, 1)});
  h.add_row({"line slope dEG/dXTI [mV]",
             format_fixed(extract::characteristic_slope_theory(
                              to_kelvin(-25.0), to_kelvin(25.0)) * 1e3, 1) +
                 " (theory)",
             format_fixed((c3_line.y(c3_line.size() - 1) - c3_line.y(0)) /
                              (grid.back() - grid.front()) * 1e3, 1)});
  h.add_row({"C3 EG at the true XTI vs true EG [mV]", "close (method works)",
             format_fixed(std::abs(c3_line.y(c3_line.nearest_index(
                              lot.true_xti())) - lot.true_eg()) * 1e3, 1)});
  h.add_row({"2x2 intersection (C3 couple)",
             "EG/XTI in the plot window",
             "EG=" + format_fixed(m.with_computed_t.eg, 4) +
                 ", XTI=" + format_fixed(m.with_computed_t.xti, 2)});
  bench::emit(h, "fig6_structure_checks.csv");
}

void bm_best_fit(benchmark::State& state) {
  std::vector<extract::VbeSample> data;
  for (double t = 223.0; t <= 398.0; t += 25.0) {
    data.push_back({t, 0.65 - 1.9e-3 * (t - 298.0)});
  }
  extract::BestFitOptions opt;
  opt.t0 = 298.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(extract::best_fit_eg_xti(data, opt));
  }
}
BENCHMARK(bm_best_fit);

void bm_characteristic_straight(benchmark::State& state) {
  std::vector<extract::VbeSample> data;
  for (double t = 223.0; t <= 398.0; t += 25.0) {
    data.push_back({t, 0.65 - 1.9e-3 * (t - 298.0)});
  }
  extract::BestFitOptions opt;
  opt.t0 = 298.0;
  std::vector<double> grid;
  for (double x = 0.5; x <= 6.5; x += 0.25) grid.push_back(x);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        extract::characteristic_straight(data, grid, opt));
  }
}
BENCHMARK(bm_characteristic_straight);

void bm_meijer_extract(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(extract::meijer_extract(
        247.0, 0.745, 297.0, 0.650, 348.0, 0.548));
  }
}
BENCHMARK(bm_meijer_extract);

void bm_full_cell_campaign(benchmark::State& state) {
  lab::SiliconLot lot;
  lab::CampaignConfig cfg;
  cfg.seed = 66;
  for (auto _ : state) {
    lab::Laboratory laboratory(lot.sample(1), cfg);
    auto sweep = laboratory.test_cell_sweep({-25.0, 25.0, 75.0});
    benchmark::DoNotOptimize(
        extract::meijer_from_cell(sweep, -25.0, 25.0, 75.0));
  }
}
BENCHMARK(bm_full_cell_campaign)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  reproduce_fig6();
  return icvbe::bench::run_benchmarks(argc, argv);
}
