// Dense-vs-sparse linear engine crossover on generated netlists.
//
// Stage 1 (reproduction-style report): for each topology/size, stamp the
// MNA system at its solved DC operating point and time the
// refactor+solve loop both engines run inside every Newton iteration.
// Prints the crossover, compares it with the NewtonOptions auto
// threshold, and records the study in results/BENCH_sparse.json (plus the
// usual CSV).
//
// Stage 2: google-benchmark timings of the same kernels plus a full
// session-level DC solve on the sparse path.

#include <chrono>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "icvbe/linalg/solve.hpp"
#include "icvbe/linalg/sparse.hpp"
#include "icvbe/spice/netlist.hpp"
#include "icvbe/spice/netlist_gen.hpp"
#include "icvbe/spice/sim_session.hpp"
#include "icvbe/spice/stamper.hpp"

namespace {

using namespace icvbe;
using Clock = std::chrono::steady_clock;

/// One circuit's MNA system, stamped at its converged operating point --
/// exactly the matrix a Newton iteration hands to the linear engine.
struct StampedSystem {
  std::unique_ptr<spice::Circuit> circuit;
  int unknowns = 0;
  linalg::Matrix dense;
  linalg::SparseMatrix sparse;
  linalg::Vector rhs;
};

StampedSystem make_system(spice::SyntheticTopology topology, int nodes,
                          std::uint64_t seed = 42) {
  spice::SyntheticNetlistSpec spec;
  spec.topology = topology;
  spec.nodes = nodes;
  spec.seed = seed;
  auto parsed = spice::parse_netlist(spice::generate_netlist(spec));

  StampedSystem out;
  out.circuit = std::move(parsed.circuit);
  spice::SimSession session(*out.circuit);
  const spice::Unknowns& x = session.solve_or_throw();
  const int n = session.unknown_count();
  const int node_unknowns = out.circuit->node_count() - 1;
  out.unknowns = n;

  const auto un = static_cast<std::size_t>(n);
  out.rhs.assign(un, 0.0);
  out.dense.resize(un, un);
  {
    spice::Stamper st(out.dense, out.rhs, node_unknowns);
    for (const auto& dev : out.circuit->devices()) dev->stamp(st, x);
    for (int i = 0; i < node_unknowns; ++i) st.add_entry(i, i, 1e-12);
  }
  std::fill(out.rhs.begin(), out.rhs.end(), 0.0);
  out.sparse.resize(un, un);
  {
    spice::Stamper st(out.sparse, out.rhs, node_unknowns);
    for (const auto& dev : out.circuit->devices()) dev->stamp(st, x);
    for (int i = 0; i < node_unknowns; ++i) st.add_entry(i, i, 1e-12);
  }
  out.sparse.freeze_pattern();
  return out;
}

/// Microseconds per call, adaptively repeated to >= ~60 ms of work.
template <typename F>
double time_us(F&& f) {
  f();  // warm-up (first sparse refactor runs the symbolic analysis)
  int reps = 1;
  for (;;) {
    const auto t0 = Clock::now();
    for (int i = 0; i < reps; ++i) f();
    const double us =
        std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
    if (us >= 60000.0 || reps >= 1 << 20) return us / reps;
    reps *= 4;
  }
}

struct CrossoverRow {
  std::string topology;
  int nodes = 0;
  int unknowns = 0;
  double dense_us = 0.0;
  double sparse_us = 0.0;
  std::size_t factor_nnz = 0;
};

std::vector<CrossoverRow> run_crossover_study() {
  std::vector<CrossoverRow> rows;
  const int sizes[] = {16, 32, 48, 64, 100, 200, 500, 1000};
  for (auto topology : {spice::SyntheticTopology::kDiodeLadder,
                        spice::SyntheticTopology::kMesh}) {
    for (int nodes : sizes) {
      StampedSystem sys = make_system(topology, nodes);
      const auto un = static_cast<std::size_t>(sys.unknowns);
      linalg::Vector x(un);

      linalg::LuFactorization dlu;
      const double dense_us = time_us([&] {
        dlu.refactor(sys.dense);
        x = sys.rhs;
        dlu.solve_in_place(x);
      });
      linalg::SparseLuFactorization slu;
      const double sparse_us = time_us([&] {
        slu.refactor(sys.sparse);
        x = sys.rhs;
        slu.solve_in_place(x);
      });

      CrossoverRow row;
      row.topology = spice::topology_name(topology);
      row.nodes = nodes;
      row.unknowns = sys.unknowns;
      row.dense_us = dense_us;
      row.sparse_us = sparse_us;
      row.factor_nnz = slu.factor_nonzeros();
      rows.push_back(row);
    }
  }
  return rows;
}

/// Smallest unknown count from which the sparse engine stays ahead. When
/// sparse wins every measured size (the usual outcome), this reports the
/// smallest size measured -- the true crossover is at or below it.
int crossover_unknowns(const std::vector<CrossoverRow>& rows) {
  int crossover = 0;
  int smallest = 0;
  for (const CrossoverRow& r : rows) {
    smallest = smallest == 0 ? r.unknowns : std::min(smallest, r.unknowns);
    if (r.sparse_us > r.dense_us) {
      crossover = std::max(crossover, r.unknowns + 1);
    }
  }
  return crossover == 0 ? smallest : crossover;
}

void write_json(const std::vector<CrossoverRow>& rows, int crossover,
                const std::string& path) {
  std::ofstream os(path);
  os << "{\n"
     << "  \"bench\": \"bench_sparse_solve\",\n"
     << "  \"kernel\": \"MNA refactor+solve per Newton iteration\",\n"
     << "  \"measured_crossover_unknowns\": " << crossover << ",\n"
     << "  \"auto_threshold_default\": "
     << spice::NewtonOptions{}.sparse_threshold << ",\n"
     << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const CrossoverRow& r = rows[i];
    os << "    {\"topology\": \"" << r.topology << "\", \"nodes\": "
       << r.nodes << ", \"unknowns\": " << r.unknowns
       << ", \"dense_us\": " << r.dense_us
       << ", \"sparse_us\": " << r.sparse_us
       << ", \"speedup\": " << (r.dense_us / r.sparse_us)
       << ", \"factor_nnz\": " << r.factor_nnz << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

/// Returns false if the PR acceptance gate (>= 3x at >= 500 nodes) is
/// missed, which fails the bench binary -- the sparse-stress CI job runs
/// it, so a kernel regression cannot slip through as a green build.
[[nodiscard]] bool report() {
  bench::banner(
      "Dense vs sparse refactor+solve on generated netlists (us/iteration)");
  const std::vector<CrossoverRow> rows = run_crossover_study();

  Table t({"topology", "nodes", "unknowns", "dense [us]", "sparse [us]",
           "speedup", "factor nnz"});
  for (const CrossoverRow& r : rows) {
    t.add_row({r.topology, std::to_string(r.nodes),
               std::to_string(r.unknowns), format_sig(r.dense_us, 4),
               format_sig(r.sparse_us, 4),
               format_sig(r.dense_us / r.sparse_us, 3),
               std::to_string(r.factor_nnz)});
  }
  bench::emit(t, "sparse_crossover.csv");

  const int crossover = crossover_unknowns(rows);
  const int threshold = spice::NewtonOptions{}.sparse_threshold;
  std::printf(
      "\nmeasured crossover: sparse wins from <= %d unknowns on the "
      "refactor+solve kernel.\n"
      "NewtonOptions auto threshold = %d -- deliberately above the kernel "
      "crossover so the\npaper's small bandgap cells keep the dense "
      "engine's bit-exact legacy behaviour;\nlower options.sparse_threshold "
      "(or force SparseMode::kSparse) to claim the win earlier.\n",
      crossover, threshold);

  // Acceptance gate of this PR: >= 3x on a >= 500-node netlist.
  bool gate_ok = true;
  for (const CrossoverRow& r : rows) {
    if (r.nodes >= 500 && r.dense_us < 3.0 * r.sparse_us) {
      std::printf("GATE FAILED: %s/%d speedup %.2fx below the 3x target\n",
                  r.topology.c_str(), r.nodes, r.dense_us / r.sparse_us);
      gate_ok = false;
    }
  }

  const std::string json_path = bench::results_dir() + "/BENCH_sparse.json";
  write_json(rows, crossover, json_path);
  std::printf("[json] %s\n", json_path.c_str());
  return gate_ok;
}

// ------------------------------------------- registered microbenchmarks --

void BM_DenseRefactorSolve(benchmark::State& state) {
  StampedSystem sys = make_system(spice::SyntheticTopology::kMesh,
                                  static_cast<int>(state.range(0)));
  linalg::LuFactorization lu;
  linalg::Vector x(static_cast<std::size_t>(sys.unknowns));
  lu.refactor(sys.dense);
  for (auto _ : state) {
    lu.refactor(sys.dense);
    x = sys.rhs;
    lu.solve_in_place(x);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_DenseRefactorSolve)->Arg(100)->Arg(500);

void BM_SparseRefactorSolve(benchmark::State& state) {
  StampedSystem sys = make_system(spice::SyntheticTopology::kMesh,
                                  static_cast<int>(state.range(0)));
  linalg::SparseLuFactorization lu;
  linalg::Vector x(static_cast<std::size_t>(sys.unknowns));
  lu.refactor(sys.sparse);
  for (auto _ : state) {
    lu.refactor(sys.sparse);
    x = sys.rhs;
    lu.solve_in_place(x);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_SparseRefactorSolve)->Arg(100)->Arg(500)->Arg(1000);

void BM_SparseSessionDcSolve(benchmark::State& state) {
  spice::SyntheticNetlistSpec spec;
  spec.topology = spice::SyntheticTopology::kMesh;
  spec.nodes = static_cast<int>(state.range(0));
  auto parsed = spice::parse_netlist(spice::generate_netlist(spec));
  spice::NewtonOptions opt;
  opt.sparse = spice::SparseMode::kSparse;
  spice::SimSession session(*parsed.circuit, opt);
  auto& v1 = parsed.circuit->get<spice::VoltageSource>("V1");
  (void)session.solve_or_throw();
  double dv = 0.0;
  for (auto _ : state) {
    v1.set_voltage(5.0 + 0.01 * (dv = 0.01 - dv));  // nudge, stay warm
    const spice::DcResult& r = session.solve();
    benchmark::DoNotOptimize(r.converged);
  }
}
BENCHMARK(BM_SparseSessionDcSolve)->Arg(500)->Arg(1000);

}  // namespace

int main(int argc, char** argv) {
  const bool gate_ok = report();
  const int rc = bench::run_benchmarks(argc, argv);
  return gate_ok ? rc : 1;
}
