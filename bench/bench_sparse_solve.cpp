// Dense-vs-sparse linear engine crossover on generated netlists.
//
// Stage 1 (reproduction-style report): for each topology/size, stamp the
// MNA system at its solved DC operating point and time the
// refactor+solve loop both engines run inside every Newton iteration.
// Prints the crossover, compares it with the NewtonOptions auto
// threshold, and records the study in results/BENCH_sparse.json (plus the
// usual CSV).
//
// Stage 2 (ordering A/B): legacy set-based minimum degree vs the AMD +
// BTF/supernode default (SparseOptions) at 1000-node ladder/mesh --
// symbolic-analysis time, steady refactor+solve time, and factor fill.
// Gate: the new default's steady refactor+solve is no slower than legacy
// within 1.25x noise slack.
//
// Stage 3 (stress, ICVBE_SPARSE_STRESS=1): single-shot analysis timing at
// a 10k-node grid (gate: AMD symbolic analysis >= 10x faster than legacy)
// plus an AMD-only 1e5-node clock-tree row. CI runs this in the
// sparse-stress job and uploads results/BENCH_sparse.json.
//
// Stage 4: google-benchmark timings of the same kernels plus a full
// session-level DC solve on the sparse path.

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "icvbe/linalg/solve.hpp"
#include "icvbe/linalg/sparse.hpp"
#include "icvbe/spice/netlist.hpp"
#include "icvbe/spice/netlist_gen.hpp"
#include "icvbe/spice/sim_session.hpp"
#include "icvbe/spice/stamper.hpp"

namespace {

using namespace icvbe;
using Clock = std::chrono::steady_clock;

/// One circuit's MNA system, stamped at its converged operating point --
/// exactly the matrix a Newton iteration hands to the linear engine.
struct StampedSystem {
  std::unique_ptr<spice::Circuit> circuit;
  int unknowns = 0;
  linalg::Matrix dense;
  linalg::SparseMatrix sparse;
  linalg::Vector rhs;
};

StampedSystem make_system(spice::SyntheticTopology topology, int nodes,
                          std::uint64_t seed = 42) {
  spice::SyntheticNetlistSpec spec;
  spec.topology = topology;
  spec.nodes = nodes;
  spec.seed = seed;
  auto parsed = spice::parse_netlist(spice::generate_netlist(spec));

  StampedSystem out;
  out.circuit = std::move(parsed.circuit);
  spice::SimSession session(*out.circuit);
  const spice::Unknowns& x = session.solve_or_throw();
  const int n = session.unknown_count();
  const int node_unknowns = out.circuit->node_count() - 1;
  out.unknowns = n;

  const auto un = static_cast<std::size_t>(n);
  out.rhs.assign(un, 0.0);
  out.dense.resize(un, un);
  {
    spice::Stamper st(out.dense, out.rhs, node_unknowns);
    for (const auto& dev : out.circuit->devices()) dev->stamp(st, x);
    for (int i = 0; i < node_unknowns; ++i) st.add_entry(i, i, 1e-12);
  }
  std::fill(out.rhs.begin(), out.rhs.end(), 0.0);
  out.sparse.resize(un, un);
  {
    spice::Stamper st(out.sparse, out.rhs, node_unknowns);
    for (const auto& dev : out.circuit->devices()) dev->stamp(st, x);
    for (int i = 0; i < node_unknowns; ++i) st.add_entry(i, i, 1e-12);
  }
  out.sparse.freeze_pattern();
  return out;
}

/// Microseconds per call, adaptively repeated to >= ~60 ms of work.
template <typename F>
double time_us(F&& f) {
  f();  // warm-up (first sparse refactor runs the symbolic analysis)
  int reps = 1;
  for (;;) {
    const auto t0 = Clock::now();
    for (int i = 0; i < reps; ++i) f();
    const double us =
        std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
    if (us >= 60000.0 || reps >= 1 << 20) return us / reps;
    reps *= 4;
  }
}

struct CrossoverRow {
  std::string topology;
  int nodes = 0;
  int unknowns = 0;
  double dense_us = 0.0;
  double sparse_us = 0.0;
  std::size_t factor_nnz = 0;
};

std::vector<CrossoverRow> run_crossover_study() {
  std::vector<CrossoverRow> rows;
  const int sizes[] = {16, 32, 48, 64, 100, 200, 500, 1000};
  for (auto topology : {spice::SyntheticTopology::kDiodeLadder,
                        spice::SyntheticTopology::kMesh}) {
    for (int nodes : sizes) {
      StampedSystem sys = make_system(topology, nodes);
      const auto un = static_cast<std::size_t>(sys.unknowns);
      linalg::Vector x(un);

      linalg::LuFactorization dlu;
      const double dense_us = time_us([&] {
        dlu.refactor(sys.dense);
        x = sys.rhs;
        dlu.solve_in_place(x);
      });
      linalg::SparseLuFactorization slu;
      const double sparse_us = time_us([&] {
        slu.refactor(sys.sparse);
        x = sys.rhs;
        slu.solve_in_place(x);
      });

      CrossoverRow row;
      row.topology = spice::topology_name(topology);
      row.nodes = nodes;
      row.unknowns = sys.unknowns;
      row.dense_us = dense_us;
      row.sparse_us = sparse_us;
      row.factor_nnz = slu.factor_nonzeros();
      rows.push_back(row);
    }
  }
  return rows;
}

// ------------------------------------------------ ordering A/B (stage 2) --

struct OrderingRow {
  std::string topology;
  int nodes = 0;
  int unknowns = 0;
  double legacy_analysis_us = 0.0;
  double amd_analysis_us = 0.0;
  double legacy_steady_us = 0.0;
  double amd_steady_us = 0.0;
  std::size_t legacy_nnz = 0;
  std::size_t amd_nnz = 0;
};

/// Measure one ordering on one stamped system: steady refactor+solve and
/// symbolic-analysis cost (fresh analyze+refactor minus the steady
/// refactor, clamped at zero -- isolates the symbolic work).
void measure_ordering(const StampedSystem& sys,
                      const linalg::SparseOptions& opts, double& analysis_us,
                      double& steady_us, std::size_t& nnz) {
  linalg::SparseLuFactorization f;
  f.set_options(opts);
  linalg::Vector x(static_cast<std::size_t>(sys.unknowns));
  steady_us = time_us([&] {
    f.refactor(sys.sparse);
    x = sys.rhs;
    f.solve_in_place(x);
  });
  const double fresh_us = time_us([&] {
    f.invalidate_analysis();
    f.refactor(sys.sparse);
  });
  analysis_us = std::max(0.0, fresh_us - steady_us);
  nnz = f.factor_nonzeros();
}

std::vector<OrderingRow> run_ordering_study() {
  std::vector<OrderingRow> rows;
  for (auto topology : {spice::SyntheticTopology::kResistorLadder,
                        spice::SyntheticTopology::kMesh}) {
    OrderingRow row;
    row.topology = spice::topology_name(topology);
    row.nodes = 1000;
    StampedSystem sys = make_system(topology, row.nodes);
    row.unknowns = sys.unknowns;
    measure_ordering(sys, linalg::SparseOptions::legacy(),
                     row.legacy_analysis_us, row.legacy_steady_us,
                     row.legacy_nnz);
    measure_ordering(sys, linalg::SparseOptions{}, row.amd_analysis_us,
                     row.amd_steady_us, row.amd_nnz);
    rows.push_back(row);
  }
  return rows;
}

// ------------------------------------------------ stress gate (stage 3) --

bool stress_enabled() {
  const char* v = std::getenv("ICVBE_SPARSE_STRESS");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

struct StressReport {
  bool ran = false;
  int grid_unknowns = 0;
  double grid_legacy_analysis_us = 0.0;
  double grid_amd_analysis_us = 0.0;
  std::size_t grid_legacy_nnz = 0;
  std::size_t grid_amd_nnz = 0;
  int tree_unknowns = 0;
  double tree_amd_analysis_us = 0.0;
  double tree_amd_steady_us = 0.0;
  std::size_t tree_amd_nnz = 0;
};

/// Single-shot analyze+refactor timing (the legacy ordering at 10k nodes
/// is way too slow for the adaptive repeat loop).
double single_shot_us(linalg::SparseLuFactorization& f,
                      const linalg::SparseMatrix& m) {
  const auto t0 = Clock::now();
  f.invalidate_analysis();
  f.refactor(m);
  return std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
}

StressReport run_stress_study() {
  StressReport rep;
  rep.ran = true;

  // 10k-node grid: legacy vs AMD, analysis isolated by subtracting one
  // steady refactor from the fresh analyze+refactor shot.
  {
    StampedSystem sys = make_system(spice::SyntheticTopology::kGrid, 10000);
    rep.grid_unknowns = sys.unknowns;
    linalg::SparseLuFactorization leg;
    leg.set_options(linalg::SparseOptions::legacy());
    const double leg_fresh = single_shot_us(leg, sys.sparse);
    const auto t0 = Clock::now();
    leg.refactor(sys.sparse);
    const double leg_steady =
        std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
    rep.grid_legacy_analysis_us = std::max(0.0, leg_fresh - leg_steady);
    rep.grid_legacy_nnz = leg.factor_nonzeros();

    linalg::SparseLuFactorization amd;
    const double amd_fresh = single_shot_us(amd, sys.sparse);
    const auto t1 = Clock::now();
    amd.refactor(sys.sparse);
    const double amd_steady =
        std::chrono::duration<double, std::micro>(Clock::now() - t1).count();
    rep.grid_amd_analysis_us = std::max(1.0, amd_fresh - amd_steady);
    rep.grid_amd_nnz = amd.factor_nonzeros();
  }

  // 1e5-node clock tree: AMD-only (legacy would take minutes); the tree
  // pattern has near-zero fill under a good ordering, so nnz is the
  // quality check here.
  {
    StampedSystem sys =
        make_system(spice::SyntheticTopology::kClockTree, 100000);
    rep.tree_unknowns = sys.unknowns;
    linalg::SparseLuFactorization amd;
    const double fresh = single_shot_us(amd, sys.sparse);
    linalg::Vector x(static_cast<std::size_t>(sys.unknowns));
    const auto t0 = Clock::now();
    amd.refactor(sys.sparse);
    x = sys.rhs;
    amd.solve_in_place(x);
    rep.tree_amd_steady_us =
        std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
    rep.tree_amd_analysis_us = std::max(0.0, fresh - rep.tree_amd_steady_us);
    rep.tree_amd_nnz = amd.factor_nonzeros();
  }
  return rep;
}

/// Smallest unknown count from which the sparse engine stays ahead. When
/// sparse wins every measured size (the usual outcome), this reports the
/// smallest size measured -- the true crossover is at or below it.
int crossover_unknowns(const std::vector<CrossoverRow>& rows) {
  int crossover = 0;
  int smallest = 0;
  for (const CrossoverRow& r : rows) {
    smallest = smallest == 0 ? r.unknowns : std::min(smallest, r.unknowns);
    if (r.sparse_us > r.dense_us) {
      crossover = std::max(crossover, r.unknowns + 1);
    }
  }
  return crossover == 0 ? smallest : crossover;
}

void write_json(const std::vector<CrossoverRow>& rows, int crossover,
                const std::vector<OrderingRow>& ordering,
                const StressReport& stress, const std::string& path) {
  std::ofstream os(path);
  os << "{\n"
     << "  \"bench\": \"bench_sparse_solve\",\n"
     << "  \"kernel\": \"MNA refactor+solve per Newton iteration\",\n"
     << "  \"measured_crossover_unknowns\": " << crossover << ",\n"
     << "  \"auto_threshold_default\": "
     << spice::NewtonOptions{}.sparse_threshold << ",\n"
     << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const CrossoverRow& r = rows[i];
    os << "    {\"topology\": \"" << r.topology << "\", \"nodes\": "
       << r.nodes << ", \"unknowns\": " << r.unknowns
       << ", \"dense_us\": " << r.dense_us
       << ", \"sparse_us\": " << r.sparse_us
       << ", \"speedup\": " << (r.dense_us / r.sparse_us)
       << ", \"factor_nnz\": " << r.factor_nnz << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ],\n"
     << "  \"ordering_rows\": [\n";
  for (std::size_t i = 0; i < ordering.size(); ++i) {
    const OrderingRow& r = ordering[i];
    os << "    {\"topology\": \"" << r.topology << "\", \"nodes\": "
       << r.nodes << ", \"unknowns\": " << r.unknowns
       << ", \"legacy_analysis_us\": " << r.legacy_analysis_us
       << ", \"amd_analysis_us\": " << r.amd_analysis_us
       << ", \"legacy_steady_us\": " << r.legacy_steady_us
       << ", \"amd_steady_us\": " << r.amd_steady_us
       << ", \"legacy_factor_nnz\": " << r.legacy_nnz
       << ", \"amd_factor_nnz\": " << r.amd_nnz << "}"
       << (i + 1 < ordering.size() ? "," : "") << "\n";
  }
  os << "  ]";
  if (stress.ran) {
    os << ",\n  \"stress\": {\n"
       << "    \"grid_10k\": {\"unknowns\": " << stress.grid_unknowns
       << ", \"legacy_analysis_us\": " << stress.grid_legacy_analysis_us
       << ", \"amd_analysis_us\": " << stress.grid_amd_analysis_us
       << ", \"analysis_speedup\": "
       << (stress.grid_legacy_analysis_us / stress.grid_amd_analysis_us)
       << ", \"legacy_factor_nnz\": " << stress.grid_legacy_nnz
       << ", \"amd_factor_nnz\": " << stress.grid_amd_nnz << "},\n"
       << "    \"clock_tree_100k\": {\"unknowns\": " << stress.tree_unknowns
       << ", \"amd_analysis_us\": " << stress.tree_amd_analysis_us
       << ", \"amd_refactor_solve_us\": " << stress.tree_amd_steady_us
       << ", \"amd_factor_nnz\": " << stress.tree_amd_nnz << "}\n"
       << "  }";
  }
  os << "\n}\n";
}

/// Returns false if the PR acceptance gate (>= 3x at >= 500 nodes) is
/// missed, which fails the bench binary -- the sparse-stress CI job runs
/// it, so a kernel regression cannot slip through as a green build.
[[nodiscard]] bool report() {
  bench::banner(
      "Dense vs sparse refactor+solve on generated netlists (us/iteration)");
  const std::vector<CrossoverRow> rows = run_crossover_study();

  Table t({"topology", "nodes", "unknowns", "dense [us]", "sparse [us]",
           "speedup", "factor nnz"});
  for (const CrossoverRow& r : rows) {
    t.add_row({r.topology, std::to_string(r.nodes),
               std::to_string(r.unknowns), format_sig(r.dense_us, 4),
               format_sig(r.sparse_us, 4),
               format_sig(r.dense_us / r.sparse_us, 3),
               std::to_string(r.factor_nnz)});
  }
  bench::emit(t, "sparse_crossover.csv");

  const int crossover = crossover_unknowns(rows);
  const int threshold = spice::NewtonOptions{}.sparse_threshold;
  std::printf(
      "\nmeasured crossover: sparse wins from <= %d unknowns on the "
      "refactor+solve kernel.\n"
      "NewtonOptions auto threshold = %d -- deliberately above the kernel "
      "crossover so the\npaper's small bandgap cells keep the dense "
      "engine's bit-exact legacy behaviour;\nlower options.sparse_threshold "
      "(or force SparseMode::kSparse) to claim the win earlier.\n",
      crossover, threshold);

  // Crossover gate: >= 3x on a >= 500-node netlist.
  bool gate_ok = true;
  for (const CrossoverRow& r : rows) {
    if (r.nodes >= 500 && r.dense_us < 3.0 * r.sparse_us) {
      std::printf("GATE FAILED: %s/%d speedup %.2fx below the 3x target\n",
                  r.topology.c_str(), r.nodes, r.dense_us / r.sparse_us);
      gate_ok = false;
    }
  }

  // Stage 2: ordering A/B. Gate: the AMD+BTF+supernode default must not
  // slow the steady refactor+solve path at existing sizes (1.25x slack
  // absorbs timer noise on shared runners).
  bench::banner("Ordering A/B: legacy min-degree vs AMD+BTF+supernode");
  const std::vector<OrderingRow> ordering = run_ordering_study();
  Table ot({"topology", "unknowns", "legacy analysis [us]", "amd analysis [us]",
            "legacy steady [us]", "amd steady [us]", "legacy nnz", "amd nnz"});
  for (const OrderingRow& r : ordering) {
    ot.add_row({r.topology, std::to_string(r.unknowns),
                format_sig(r.legacy_analysis_us, 4),
                format_sig(r.amd_analysis_us, 4),
                format_sig(r.legacy_steady_us, 4),
                format_sig(r.amd_steady_us, 4), std::to_string(r.legacy_nnz),
                std::to_string(r.amd_nnz)});
  }
  bench::emit(ot, "sparse_ordering.csv");
  for (const OrderingRow& r : ordering) {
    if (r.amd_steady_us > 1.25 * r.legacy_steady_us) {
      std::printf(
          "GATE FAILED: %s/%d AMD steady refactor+solve %.1f us vs legacy "
          "%.1f us (> 1.25x)\n",
          r.topology.c_str(), r.nodes, r.amd_steady_us, r.legacy_steady_us);
      gate_ok = false;
    }
  }

  // Stage 3: the 10k/100k stress gate, opt-in (ICVBE_SPARSE_STRESS=1) --
  // the legacy ordering alone costs ~seconds at 10k nodes.
  StressReport stress;
  if (stress_enabled()) {
    bench::banner("Symbolic stress gate (ICVBE_SPARSE_STRESS=1)");
    stress = run_stress_study();
    const double speedup =
        stress.grid_legacy_analysis_us / stress.grid_amd_analysis_us;
    std::printf(
        "grid 10k (%d unknowns): legacy analysis %.0f us, AMD analysis "
        "%.0f us -> %.1fx (gate >= 10x)\n"
        "  factor nnz: legacy %zu, AMD %zu\n"
        "clock-tree 100k (%d unknowns): AMD analysis %.0f us, "
        "refactor+solve %.0f us, factor nnz %zu\n",
        stress.grid_unknowns, stress.grid_legacy_analysis_us,
        stress.grid_amd_analysis_us, speedup, stress.grid_legacy_nnz,
        stress.grid_amd_nnz, stress.tree_unknowns,
        stress.tree_amd_analysis_us, stress.tree_amd_steady_us,
        stress.tree_amd_nnz);
    if (speedup < 10.0) {
      std::printf(
          "GATE FAILED: AMD symbolic analysis only %.1fx faster than legacy "
          "at the 10k grid (>= 10x required)\n",
          speedup);
      gate_ok = false;
    }
  } else {
    std::printf(
        "\n[stress] skipped (set ICVBE_SPARSE_STRESS=1 for the 10k-grid "
        "analysis gate and the 1e5 clock-tree row)\n");
  }

  const std::string json_path = bench::results_dir() + "/BENCH_sparse.json";
  write_json(rows, crossover, ordering, stress, json_path);
  std::printf("[json] %s\n", json_path.c_str());
  return gate_ok;
}

// ------------------------------------------- registered microbenchmarks --

void BM_DenseRefactorSolve(benchmark::State& state) {
  StampedSystem sys = make_system(spice::SyntheticTopology::kMesh,
                                  static_cast<int>(state.range(0)));
  linalg::LuFactorization lu;
  linalg::Vector x(static_cast<std::size_t>(sys.unknowns));
  lu.refactor(sys.dense);
  for (auto _ : state) {
    lu.refactor(sys.dense);
    x = sys.rhs;
    lu.solve_in_place(x);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_DenseRefactorSolve)->Arg(100)->Arg(500);

void BM_SparseRefactorSolve(benchmark::State& state) {
  StampedSystem sys = make_system(spice::SyntheticTopology::kMesh,
                                  static_cast<int>(state.range(0)));
  linalg::SparseLuFactorization lu;
  linalg::Vector x(static_cast<std::size_t>(sys.unknowns));
  lu.refactor(sys.sparse);
  for (auto _ : state) {
    lu.refactor(sys.sparse);
    x = sys.rhs;
    lu.solve_in_place(x);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_SparseRefactorSolve)->Arg(100)->Arg(500)->Arg(1000);

void BM_SparseSessionDcSolve(benchmark::State& state) {
  spice::SyntheticNetlistSpec spec;
  spec.topology = spice::SyntheticTopology::kMesh;
  spec.nodes = static_cast<int>(state.range(0));
  auto parsed = spice::parse_netlist(spice::generate_netlist(spec));
  spice::NewtonOptions opt;
  opt.sparse = spice::SparseMode::kSparse;
  spice::SimSession session(*parsed.circuit, opt);
  auto& v1 = parsed.circuit->get<spice::VoltageSource>("V1");
  (void)session.solve_or_throw();
  double dv = 0.0;
  for (auto _ : state) {
    v1.set_voltage(5.0 + 0.01 * (dv = 0.01 - dv));  // nudge, stay warm
    const spice::DcResult& r = session.solve();
    benchmark::DoNotOptimize(r.converged);
  }
}
BENCHMARK(BM_SparseSessionDcSolve)->Arg(500)->Arg(1000);

}  // namespace

int main(int argc, char** argv) {
  const bool gate_ok = report();
  const int rc = bench::run_benchmarks(argc, argv);
  return gate_ok ? rc : 1;
}
