// Ablation studies for the design choices recorded in DESIGN.md section 7:
//  A. thermal/corruption model: which ingredient produces the Table-1 sign
//     flip and the Fig.-8 rise (fixture leak vs self-heating vs op-amp
//     offset vs substrate parasitic);
//  B. solver: analytic warm start vs cold start on the bandgap cell, and
//     the op-amp row normalisation;
//  C. op-amp realism: ideal high-gain element vs the transistor-level CMOS
//     two-stage amplifier.

#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "icvbe/bandgap/cmos_opamp.hpp"
#include "icvbe/bandgap/test_cell.hpp"
#include "icvbe/common/constants.hpp"
#include "icvbe/extract/meijer.hpp"
#include "icvbe/lab/campaign.hpp"
#include "icvbe/spice/dc_solver.hpp"

namespace {

using namespace icvbe;

// --- A: corruption-model ablation -----------------------------------------

struct AblationRow {
  std::string name;
  double d1 = 0.0;  // T_measured - T_computed at T1
  double d3 = 0.0;
  double vref_rise = 0.0;  // measured VREF(125C) - VREF(-55C)
};

AblationRow run_variant(const std::string& name, bool leak, bool heating,
                        bool offset, bool parasitic) {
  lab::SiliconLot lot;
  lab::DieSample s = lot.sample(2);
  if (!leak) {
    s.fixture.leak = 0.0;
    s.fixture.leak_tempco = 0.0;
  }
  if (!heating) {
    s.fixture.rth_die = 0.0;
    s.fixture.aux_power = 0.0;
  }
  if (!offset) s.opamp_offset = 0.0;
  if (!parasitic) {
    s.qa.iss_e = s.qb.iss_e = s.qin.iss_e = 0.0;
    s.qa.iss = s.qb.iss = s.qin.iss = 0.0;
  }
  lab::CampaignConfig cfg;
  cfg.ideal_instruments = true;  // isolate the physical effects
  lab::Laboratory laboratory(s, cfg);

  AblationRow row;
  row.name = name;
  const auto sweep = laboratory.test_cell_sweep({-26.15, 23.85, 74.85});
  const auto m = extract::meijer_from_cell(sweep, -26.15, 23.85, 74.85);
  const auto c = extract::compare_temperatures(m);
  row.d1 = c.delta_t1();
  row.d3 = c.delta_t3();
  const auto curve = laboratory.vref_curve({-55.0, 125.0});
  row.vref_rise = curve.y(1) - curve.y(0);
  return row;
}

void ablate_corruption_model() {
  bench::banner(
      "Ablation A -- which physical ingredient produces which published "
      "signature (Table-1 deltas and the Fig.-8 rise)");
  Table t({"variant", "dT1 [K] (paper -1.8..-4.6)",
           "dT3 [K] (paper +4.0..+7.3)",
           "VREF(125) - VREF(-55) [mV] (paper: rise)"});
  for (const AblationRow& r : {
           run_variant("full model", true, true, true, true),
           run_variant("no fixture leak", false, true, true, true),
           run_variant("no self-heating", true, false, true, true),
           run_variant("no op-amp offset", true, true, false, true),
           run_variant("no substrate parasitic", true, true, true, false),
           run_variant("leak only", true, false, false, false),
           run_variant("parasitic only", false, false, false, true),
       }) {
    t.add_row({r.name, format_fixed(r.d1, 2), format_fixed(r.d3, 2),
               format_fixed(r.vref_rise * 1e3, 1)});
  }
  bench::emit(t, "ablation_corruption_model.csv");
  std::cout
      << "Reading: only variants with the fixture leak flip the dT sign "
         "across T2; only variants with\nthe parasitic push the hot end of "
         "VREF up. Self-heating and offset alone do neither -- the\n"
         "combination in DESIGN.md section 7 is the minimal one.\n";
}

// --- B: solver ablation ----------------------------------------------------

void ablate_solver() {
  bench::banner("Ablation B -- DC solver strategies on the bandgap cell");
  lab::SiliconLot lot;
  const lab::DieSample s = lot.sample(1);
  bandgap::TestCellParams p;
  p.qa_model = s.qa;
  p.qb_model = s.qb;
  p.opamp_offset = s.opamp_offset;

  Table t({"temperature [C]", "warm start: iters / strategy",
           "cold start: iters / strategy / vref"});
  for (double tc : {-55.0, 25.0, 125.0}) {
    spice::Circuit warm_c;
    auto h = bandgap::build_test_cell(warm_c, p);
    // Warm-start path (what solve_cell_at does internally).
    const auto obs = bandgap::solve_cell_at(warm_c, h, to_kelvin(tc));
    (void)obs;
    // Count iterations by re-running via solve_dc with the analytic guess.
    warm_c.set_temperature(to_kelvin(tc));
    const int n = warm_c.assign_unknowns();
    spice::Unknowns guess(static_cast<std::size_t>(n));
    // Approximate analytic guess (same construction as solve_cell_at).
    auto set = [&](spice::NodeId node, double v) {
      if (node != spice::kGround) guess.raw()[node - 1] = v;
    };
    set(h.a, obs.vbe_qa);
    set(h.btop, obs.vbe_qa);
    set(h.be, obs.vbe_qb);
    set(h.vref, obs.vref);
    const auto warm = spice::solve_dc(warm_c, {}, &guess);

    spice::Circuit cold_c;
    auto h2 = bandgap::build_test_cell(cold_c, p);
    (void)h2;
    cold_c.set_temperature(to_kelvin(tc));
    const auto cold = spice::solve_dc(cold_c);
    const double cold_vref =
        cold.converged ? cold.solution.node_voltage(h2.vref) : 0.0;
    t.add_row({format_fixed(tc, 0),
               std::to_string(warm.iterations) + " / " + warm.strategy,
               cold.converged
                   ? std::to_string(cold.iterations) + " / " + cold.strategy +
                         " / " + format_fixed(cold_vref, 3) +
                         (cold_vref < 0.5 ? " (degenerate zero state!)" : "")
                   : "FAILED (" + std::to_string(cold.iterations) + ")"});
  }
  bench::emit(t, "ablation_solver.csv");
  std::cout << "Reading: without the analytic warm start the cell either "
               "lands in the degenerate all-off\nsolution or fails outright "
               "-- the simulation equivalent of a missing startup circuit.\n";
}

// --- C: ideal vs transistor-level op-amp -----------------------------------

void ablate_opamp() {
  bench::banner(
      "Ablation C -- ideal op-amp element vs transistor-level CMOS "
      "amplifier (both close the same bandgap loop)");
  const double gain = bandgap::measure_open_loop_gain([] {
    bandgap::CmosOpAmpParams p;
    p.nmos = bandgap::default_nmos();
    p.pmos = bandgap::default_pmos();
    return p;
  }());
  std::cout << "transistor-level amplifier: open-loop gain "
            << format_fixed(std::abs(gain), 0) << " ("
            << format_fixed(20.0 * std::log10(std::abs(gain)), 1)
            << " dB), 8 MOSFETs + bias leg\n";

  // Bandgap loop closed by the CMOS amplifier.
  lab::SiliconLot lot;
  const lab::DieSample s = lot.sample(0);
  Table t({"T [C]", "VREF, ideal op-amp [V]", "VREF, CMOS op-amp [V]",
           "difference [mV]"});
  for (double tc : {-25.0, 25.0, 75.0}) {
    // Ideal element.
    bandgap::TestCellParams p;
    p.qa_model = s.qa;
    p.qb_model = s.qb;
    spice::Circuit ci;
    auto hi = bandgap::build_test_cell(ci, p);
    const double v_ideal =
        bandgap::solve_cell_at(ci, hi, to_kelvin(tc)).vref;

    // Transistor-level loop: same branches, amplifier from MOSFETs.
    spice::Circuit ct;
    const auto vref = ct.node("vref");
    const auto a = ct.node("a");
    const auto btop = ct.node("btop");
    const auto be = ct.node("be");
    ct.add_resistor("RX1", vref, a, p.rx1, p.resistor_tc1, p.resistor_tc2);
    ct.add_resistor("RX2", vref, btop, p.rx2, p.resistor_tc1,
                    p.resistor_tc2);
    ct.add_resistor("RB", btop, be, p.rb, p.resistor_tc1, p.resistor_tc2);
    ct.add_bjt("QA", spice::kGround, spice::kGround, a, s.qa, 1.0);
    ct.add_bjt("QB", spice::kGround, spice::kGround, be, s.qb, 8.0);
    bandgap::CmosOpAmpParams op;
    op.nmos = bandgap::default_nmos();
    op.pmos = bandgap::default_pmos();
    op.vdd = 2.5;
    bandgap::build_cmos_opamp(ct, "oa", vref, a, btop, op);
    ct.set_temperature(to_kelvin(tc));
    const int n = ct.assign_unknowns();
    spice::Unknowns guess(static_cast<std::size_t>(n));
    auto set = [&](spice::NodeId node, double v) {
      if (node != spice::kGround) guess.raw()[node - 1] = v;
    };
    const double vbe_guess = 0.65 - 1.9e-3 * (tc - 25.0);
    set(a, vbe_guess);
    set(btop, vbe_guess);
    set(be, vbe_guess - 0.05);
    set(vref, 1.22);
    set(ct.node("oa.vdd"), op.vdd);
    set(ct.node("oa.bias"), 1.4);
    set(ct.node("oa.tail"), 2.2);
    set(ct.node("oa.d1"), 1.0);
    set(ct.node("oa.d2"), 0.8);
    spice::NewtonOptions nopt;
    nopt.max_iterations = 500;
    const auto r = spice::solve_dc(ct, nopt, &guess);
    const double v_cmos =
        r.converged ? r.solution.node_voltage(vref) : std::nan("");
    t.add_row({format_fixed(tc, 0), format_fixed(v_ideal, 4),
               r.converged ? format_fixed(v_cmos, 4) : "no convergence",
               r.converged ? format_fixed((v_cmos - v_ideal) * 1e3, 2)
                           : "-"});
  }
  bench::emit(t, "ablation_opamp.csv");
  std::cout << "Reading: the transistor-level loop works but carries a "
               "systematic, temperature-dependent\ninput offset (mirror "
               "imbalance), shifting VREF by tens of mV -- the physical "
               "reason the\npaper's cell has ADJ trim pads, and why the "
               "default experiments use the ideal element\nplus an explicit "
               "measured offset.\n";
}

void bm_cell_warm_start(benchmark::State& state) {
  lab::SiliconLot lot;
  const lab::DieSample s = lot.sample(1);
  bandgap::TestCellParams p;
  p.qa_model = s.qa;
  p.qb_model = s.qb;
  spice::Circuit c;
  auto h = bandgap::build_test_cell(c, p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bandgap::solve_cell_at(c, h, 298.15));
  }
}
BENCHMARK(bm_cell_warm_start)->Unit(benchmark::kMicrosecond);

void bm_mosfet_opamp_solve(benchmark::State& state) {
  for (auto _ : state) {
    spice::Circuit c;
    const auto out = c.node("out");
    const auto inp = c.node("inp");
    const auto inn = c.node("inn");
    c.add_vsource("VP", inp, spice::kGround, 1.25);
    c.add_vsource("VN", inn, spice::kGround, 1.25);
    bandgap::CmosOpAmpParams p;
    p.nmos = bandgap::default_nmos();
    p.pmos = bandgap::default_pmos();
    bandgap::build_cmos_opamp(c, "oa", out, inp, inn, p);
    benchmark::DoNotOptimize(spice::solve_dc(c));
  }
}
BENCHMARK(bm_mosfet_opamp_solve)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  ablate_corruption_model();
  ablate_solver();
  ablate_opamp();
  return icvbe::bench::run_benchmarks(argc, argv);
}
