// SimServer warm-session benchmark and load generator.
//
// Stage 1 (report): an in-process SimServer on an AF_UNIX socket serves a
// generated ~400-node resistor-ladder deck whose .DC plan has only a
// handful of points -- so per-run cost is dominated by setup (parse, MNA
// bind, sparse pattern + symbolic LU), exactly the cost the warm session
// amortises. Two interactive loops are timed over many iterations:
//
//   cold:  LOAD (re-parse + rebind) then RUN       -- `icvbe run` shape
//   warm:  PATCH one value then RUN on the warm session
//
// The per-iteration medians feed results/BENCH_server.json, and the run
// ASSERTS the warm loop is at least kWarmSpeedupGate x faster than the
// cold one (exit 1 otherwise) -- the daemon's reason to exist, kept
// honest in CI. A concurrent stage then hammers the shared worker pool
// with several connections to report aggregate runs/second.
//
// Stage 2: google-benchmark timing of the warm PATCH+RUN round trip.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "icvbe/server/client.hpp"
#include "icvbe/server/sim_server.hpp"
#include "icvbe/spice/netlist_gen.hpp"

namespace {

using namespace icvbe;
using Clock = std::chrono::steady_clock;

constexpr int kLadderNodes = 400;
constexpr int kIterations = 21;
constexpr double kWarmSpeedupGate = 1.5;

std::string ladder_deck() {
  spice::SyntheticNetlistSpec spec;
  spec.topology = spice::SyntheticTopology::kResistorLadder;
  spec.nodes = kLadderNodes;
  spec.seed = 7;
  return spice::generate_netlist(spec);
}

std::string socket_path() {
  return "/tmp/icvbe_bench_" + std::to_string(::getpid()) + ".sock";
}

/// Interpolated quantile of the sorted sample (q in [0, 1]).
double percentile(std::vector<double> v, double q) {
  std::sort(v.begin(), v.end());
  const double idx = q * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const double frac = idx - static_cast<double>(lo);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  return v[lo] + frac * (v[hi] - v[lo]);
}

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

struct LoopStats {
  double median_ms = 0.0;  ///< p50 per-iteration latency
  double p99_ms = 0.0;     ///< tail per-iteration latency
  std::size_t rows = 0;

  void fill_latencies(std::vector<double> ms) {
    median_ms = percentile(ms, 0.50);
    p99_ms = percentile(std::move(ms), 0.99);
  }
};

/// Cold loop: every iteration re-LOADs the deck (parse + bind + symbolic
/// analysis) before running -- the cost profile of one `icvbe run`
/// process per analysis, minus even the process spawn.
LoopStats cold_loop(server::Client& client, const std::string& deck) {
  LoopStats stats;
  std::vector<double> ms;
  for (int i = 0; i < kIterations; ++i) {
    const auto t0 = Clock::now();
    (void)client.load("cold", deck);
    const server::RunResult r = client.run("cold", "DC");
    ms.push_back(ms_since(t0));
    stats.rows = r.rows;
  }
  stats.fill_latencies(std::move(ms));
  return stats;
}

/// Warm loop: the session survives; each iteration re-programs one
/// resistor value (pattern and symbolic LU untouched) and reruns.
LoopStats warm_loop(server::Client& client, const std::string& deck) {
  (void)client.load("warm", deck);
  LoopStats stats;
  std::vector<double> ms;
  for (int i = 0; i < kIterations; ++i) {
    const double ohms = 500.0 + 10.0 * i;
    const auto t0 = Clock::now();
    (void)client.patch("warm", "R RS5 " + std::to_string(ohms) + "\n");
    const server::RunResult r = client.run("warm", "DC");
    ms.push_back(ms_since(t0));
    stats.rows = r.rows;
  }
  stats.fill_latencies(std::move(ms));
  return stats;
}

/// Load generator: `clients` connections, each its own warm session,
/// all rerunning concurrently through the shared worker pool.
double concurrent_runs_per_second(const server::SimServer& server,
                                  const std::string& deck, int clients,
                                  int runs_each) {
  std::vector<std::thread> threads;
  const auto t0 = Clock::now();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      server::Client client =
          server::Client::connect_unix(server.socket_path());
      (void)client.load("mine", deck);
      for (int i = 0; i < runs_each; ++i) {
        (void)client.run("mine", "DC");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall_s = ms_since(t0) / 1e3;
  return static_cast<double>(clients * runs_each) / wall_s;
}

void write_json(const LoopStats& cold, const LoopStats& warm,
                double speedup, bool gate_passed, double runs_per_s,
                const std::string& path) {
  std::ofstream os(path);
  os << "{\n"
     << "  \"bench\": \"bench_server\",\n"
     << "  \"kernel\": \"SimServer warm-session PATCH+RUN vs cold "
        "LOAD+RUN on a "
     << kLadderNodes << "-node resistor ladder\",\n"
     << "  \"ladder_nodes\": " << kLadderNodes << ",\n"
     << "  \"iterations\": " << kIterations << ",\n"
     << "  \"rows_per_run\": " << warm.rows << ",\n"
     << "  \"cold_load_run_ms\": " << cold.median_ms << ",\n"
     << "  \"cold_load_run_p99_ms\": " << cold.p99_ms << ",\n"
     << "  \"warm_patch_run_ms\": " << warm.median_ms << ",\n"
     << "  \"warm_patch_run_p99_ms\": " << warm.p99_ms << ",\n"
     << "  \"warm_speedup\": ";
  // JSON has no Infinity: a warm loop below the timer resolution is
  // reported as the explicit string "inf", never as a fake number.
  if (std::isfinite(speedup)) {
    os << speedup;
  } else {
    os << '"' << (speedup > 0.0 ? "inf" : "unmeasurable") << '"';
  }
  os << ",\n"
     << "  \"speedup_gate\": " << kWarmSpeedupGate << ",\n"
     << "  \"gate_passed\": " << (gate_passed ? "true" : "false") << ",\n"
     << "  \"concurrent_runs_per_s\": " << runs_per_s << "\n"
     << "}\n";
}

/// Returns false when the warm-rerun gate fails.
bool report() {
  bench::banner("SimServer warm-session reuse (cold LOAD+RUN vs warm "
                "PATCH+RUN)");
  const std::string deck = ladder_deck();

  server::ServerConfig cfg;
  cfg.socket_path = socket_path();
  cfg.workers = 4;
  server::SimServer server(cfg);
  server.start();

  server::Client client = server::Client::connect_unix(server.socket_path());
  const LoopStats cold = cold_loop(client, deck);
  const LoopStats warm = warm_loop(client, deck);
  // A warm median of zero means "below the clock's resolution", which is
  // the best possible outcome, not a 0x speedup: report it as an explicit
  // infinity (the old code reported 0.0 and failed the gate). If the cold
  // loop is immeasurable too there is nothing to compare: fail loudly.
  double speedup;
  if (warm.median_ms > 0.0) {
    speedup = cold.median_ms / warm.median_ms;
  } else if (cold.median_ms > 0.0) {
    speedup = std::numeric_limits<double>::infinity();
  } else {
    speedup = -std::numeric_limits<double>::infinity();  // unmeasurable
  }
  const bool gate_passed = speedup >= kWarmSpeedupGate;
  const double runs_per_s =
      concurrent_runs_per_second(server, deck, /*clients=*/4,
                                 /*runs_each=*/10);

  Table t({"loop", "p50 [ms]", "p99 [ms]", "rows/run"});
  t.add_row({"cold LOAD+RUN", format_sig(cold.median_ms, 4),
             format_sig(cold.p99_ms, 4), std::to_string(cold.rows)});
  t.add_row({"warm PATCH+RUN", format_sig(warm.median_ms, 4),
             format_sig(warm.p99_ms, 4), std::to_string(warm.rows)});
  bench::emit(t, "server_warm_reuse.csv");
  if (std::isfinite(speedup)) {
    std::printf("warm speedup: %.2fx (gate: >= %.1fx) -- %s\n", speedup,
                kWarmSpeedupGate, gate_passed ? "PASS" : "FAIL");
  } else {
    std::printf("warm speedup: %s (gate: >= %.1fx) -- %s\n",
                speedup > 0.0 ? "inf (warm below timer resolution)"
                              : "unmeasurable (both loops below timer "
                                "resolution)",
                kWarmSpeedupGate, gate_passed ? "PASS" : "FAIL");
  }
  std::printf("concurrent load: %.1f runs/s (4 clients on 4 workers)\n",
              runs_per_s);

  const std::string json_path = bench::results_dir() + "/BENCH_server.json";
  write_json(cold, warm, speedup, gate_passed, runs_per_s, json_path);
  std::printf("[json] %s\n", json_path.c_str());

  server.stop();
  return gate_passed;
}

// ------------------------------------------- registered microbenchmarks --

void BM_WarmPatchRun(benchmark::State& state) {
  server::ServerConfig cfg;
  cfg.socket_path = socket_path() + ".bm";
  cfg.workers = 2;
  server::SimServer server(cfg);
  server.start();
  server::Client client = server::Client::connect_unix(server.socket_path());
  (void)client.load("bm", ladder_deck());
  double ohms = 500.0;
  for (auto _ : state) {
    ohms += 1.0;
    (void)client.patch("bm", "R RS5 " + std::to_string(ohms) + "\n");
    benchmark::DoNotOptimize(client.run("bm", "DC"));
  }
  state.SetItemsProcessed(state.iterations());
  server.stop();
}
BENCHMARK(BM_WarmPatchRun)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const bool gate_passed = report();
  const int bench_rc = icvbe::bench::run_benchmarks(argc, argv);
  return gate_passed ? bench_rc : 1;
}
