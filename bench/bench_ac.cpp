// AC small-signal sweep throughput, dense vs sparse complex engines.
//
// Stage 1 (report): for generated rc-ladder decks of growing size, time
// the per-frequency-point solve_ac() kernel -- complex restamp + LU
// refactor + solve -- on both engines after their setup (the sparse
// engine's one symbolic analysis included in setup, exactly like a
// Newton loop's). Reports points/second, asserts the >= 3x sparse gate
// at >= 200 nodes, and records the study in results/BENCH_ac.json plus
// the usual CSV.
//
// Stage 2: google-benchmark timings of the same kernel plus a whole
// .AC plan run through SimSession::run.

#include <chrono>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "icvbe/spice/netlist.hpp"
#include "icvbe/spice/netlist_gen.hpp"
#include "icvbe/spice/plan.hpp"
#include "icvbe/spice/sim_session.hpp"

namespace {

using namespace icvbe;
using Clock = std::chrono::steady_clock;

spice::ParsedNetlist make_ac_deck(int nodes, std::uint64_t seed = 42) {
  spice::SyntheticNetlistSpec spec;
  spec.topology = spice::SyntheticTopology::kRcLadder;
  spec.nodes = nodes;
  spec.seed = seed;
  spec.ac_analysis = true;
  return spice::parse_netlist(spice::generate_netlist(spec));
}

/// Mean microseconds per AC point over the deck's frequency grid,
/// repeated until >= ~60 ms of work. The session is primed (OP solved,
/// complex engine materialised, symbolic analysis cached) before timing.
double time_ac_point_us(spice::SimSession& session,
                        const std::vector<double>& freqs) {
  (void)session.solve_or_throw();
  (void)session.solve_ac(2.0 * M_PI * freqs.front());  // setup + analysis
  int reps = 1;
  for (;;) {
    const auto t0 = Clock::now();
    for (int r = 0; r < reps; ++r) {
      for (double f : freqs) (void)session.solve_ac(2.0 * M_PI * f);
    }
    const double us =
        std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
    if (us >= 60000.0 || reps >= 1 << 16) {
      return us / (static_cast<double>(reps) *
                   static_cast<double>(freqs.size()));
    }
    reps *= 4;
  }
}

struct AcRow {
  int nodes = 0;
  int unknowns = 0;
  std::size_t points = 0;
  double dense_us = 0.0;
  double sparse_us = 0.0;
};

std::vector<AcRow> run_study() {
  std::vector<AcRow> rows;
  for (int nodes : {50, 100, 200, 500}) {
    AcRow row;
    row.nodes = nodes;
    {
      auto parsed = make_ac_deck(nodes);
      const std::vector<double> freqs = parsed.plan->ac->frequencies();
      row.points = freqs.size();
      spice::NewtonOptions opt;
      opt.sparse = spice::SparseMode::kDense;
      spice::SimSession session(*parsed.circuit, opt);
      row.unknowns = session.unknown_count();
      row.dense_us = time_ac_point_us(session, freqs);
    }
    {
      auto parsed = make_ac_deck(nodes);
      const std::vector<double> freqs = parsed.plan->ac->frequencies();
      spice::NewtonOptions opt;
      opt.sparse = spice::SparseMode::kSparse;
      spice::SimSession session(*parsed.circuit, opt);
      row.sparse_us = time_ac_point_us(session, freqs);
    }
    rows.push_back(row);
  }
  return rows;
}

void write_json(const std::vector<AcRow>& rows, const std::string& path) {
  std::ofstream os(path);
  os << "{\n"
     << "  \"bench\": \"bench_ac\",\n"
     << "  \"kernel\": \"solve_ac per frequency point (restamp + complex "
        "refactor + solve)\",\n"
     << "  \"workload\": \"rc-ladder --ac, .AC DEC 10 10 100K\",\n"
     << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const AcRow& r = rows[i];
    os << "    {\"nodes\": " << r.nodes << ", \"unknowns\": " << r.unknowns
       << ", \"points\": " << r.points
       << ", \"dense_us_per_point\": " << r.dense_us
       << ", \"sparse_us_per_point\": " << r.sparse_us
       << ", \"dense_points_per_sec\": " << 1e6 / r.dense_us
       << ", \"sparse_points_per_sec\": " << 1e6 / r.sparse_us
       << ", \"speedup\": " << (r.dense_us / r.sparse_us) << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

/// Returns false if the acceptance gate (sparse >= 3x dense on a
/// >= 200-node AC ladder sweep) is missed; the sparse-stress CI job runs
/// this binary, so a complex-engine regression cannot slip through green.
[[nodiscard]] bool report() {
  bench::banner(
      "AC sweep throughput: dense vs sparse complex engines (us/point)");
  const std::vector<AcRow> rows = run_study();

  Table t({"nodes", "unknowns", "points", "dense [us/pt]", "sparse [us/pt]",
           "dense [pt/s]", "sparse [pt/s]", "speedup"});
  for (const AcRow& r : rows) {
    t.add_row({std::to_string(r.nodes), std::to_string(r.unknowns),
               std::to_string(r.points), format_sig(r.dense_us, 4),
               format_sig(r.sparse_us, 4), format_sig(1e6 / r.dense_us, 4),
               format_sig(1e6 / r.sparse_us, 4),
               format_sig(r.dense_us / r.sparse_us, 3)});
  }
  bench::emit(t, "ac_sweep.csv");

  bool gate_ok = true;
  for (const AcRow& r : rows) {
    if (r.nodes >= 200 && r.dense_us < 3.0 * r.sparse_us) {
      std::printf("GATE FAILED: %d-node AC ladder speedup %.2fx below the "
                  "3x target\n",
                  r.nodes, r.dense_us / r.sparse_us);
      gate_ok = false;
    }
  }

  const std::string json_path = bench::results_dir() + "/BENCH_ac.json";
  write_json(rows, json_path);
  std::printf("[json] %s\n", json_path.c_str());
  return gate_ok;
}

// ------------------------------------------- registered microbenchmarks --

void BM_AcPointDense(benchmark::State& state) {
  auto parsed = make_ac_deck(static_cast<int>(state.range(0)));
  spice::NewtonOptions opt;
  opt.sparse = spice::SparseMode::kDense;
  spice::SimSession session(*parsed.circuit, opt);
  (void)session.solve_or_throw();
  (void)session.solve_ac(2.0 * M_PI * 10.0);
  double f = 10.0;
  for (auto _ : state) {
    f = f < 1e5 ? f * 1.2589254117941673 : 10.0;
    const auto& x = session.solve_ac(2.0 * M_PI * f);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_AcPointDense)->Arg(100)->Arg(200);

void BM_AcPointSparse(benchmark::State& state) {
  auto parsed = make_ac_deck(static_cast<int>(state.range(0)));
  spice::NewtonOptions opt;
  opt.sparse = spice::SparseMode::kSparse;
  spice::SimSession session(*parsed.circuit, opt);
  (void)session.solve_or_throw();
  (void)session.solve_ac(2.0 * M_PI * 10.0);
  double f = 10.0;
  for (auto _ : state) {
    f = f < 1e5 ? f * 1.2589254117941673 : 10.0;
    const auto& x = session.solve_ac(2.0 * M_PI * f);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_AcPointSparse)->Arg(100)->Arg(200)->Arg(500);

void BM_AcPlanRun(benchmark::State& state) {
  auto parsed = make_ac_deck(static_cast<int>(state.range(0)));
  spice::SimSession session(*parsed.circuit);
  for (auto _ : state) {
    const spice::SweepResult r = session.run(*parsed.plan);
    benchmark::DoNotOptimize(r.rows());
  }
}
BENCHMARK(BM_AcPlanRun)->Arg(200);

}  // namespace

int main(int argc, char** argv) {
  const bool gate_ok = report();
  const int rc = bench::run_benchmarks(argc, argv);
  return gate_ok ? rc : 1;
}
