// Transient startup-settling throughput on generated RC-ladder decks.
//
// Stage 1 (report): for each ladder size, run the deck's full .TRAN
// startup settling (PULSE supply step into an n-stage RC line) with the
// adaptive trapezoidal controller on both linear engines, and record
// wall time, accepted/rejected steps, Newton iterations, and timestep
// throughput into results/BENCH_tran.json (plus the usual CSV).
//
// Stage 2: google-benchmark timings of the bare TransientSolver::advance()
// stepping kernel (the allocation-free inner loop) for both integration
// methods.

#include <chrono>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "icvbe/spice/netlist.hpp"
#include "icvbe/spice/netlist_gen.hpp"
#include "icvbe/spice/sim_session.hpp"
#include "icvbe/spice/transient.hpp"

namespace {

using namespace icvbe;
using Clock = std::chrono::steady_clock;

spice::ParsedNetlist make_ladder(int nodes, std::uint64_t seed = 42) {
  spice::SyntheticNetlistSpec spec;
  spec.topology = spice::SyntheticTopology::kRcLadder;
  spec.nodes = nodes;
  spec.seed = seed;
  return spice::parse_netlist(spice::generate_netlist(spec));
}

struct SettleRow {
  int nodes = 0;
  int unknowns = 0;
  bool sparse = false;
  double wall_ms = 0.0;
  long accepted = 0;
  long rejected = 0;
  long newton_iterations = 0;
  [[nodiscard]] double steps_per_second() const {
    return wall_ms > 0.0 ? 1e3 * static_cast<double>(accepted) / wall_ms
                         : 0.0;
  }
};

SettleRow run_settling(int nodes, spice::SparseMode mode) {
  auto parsed = make_ladder(nodes);
  spice::NewtonOptions options;
  options.sparse = mode;
  spice::SimSession session(*parsed.circuit, options);
  spice::TransientSolver solver(session, *parsed.plan->transient);
  solver.begin();
  const auto t0 = Clock::now();
  while (solver.advance()) {
  }
  const auto t1 = Clock::now();
  SettleRow row;
  row.nodes = nodes;
  row.unknowns = session.unknown_count();
  row.sparse = session.uses_sparse_engine();
  row.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  row.accepted = solver.steps_accepted();
  row.rejected = solver.steps_rejected();
  row.newton_iterations = solver.newton_iterations();
  return row;
}

void write_json(const std::vector<SettleRow>& rows, const std::string& path) {
  std::ofstream os(path);
  os << "{\n"
     << "  \"bench\": \"bench_tran\",\n"
     << "  \"kernel\": \"adaptive trapezoidal .TRAN startup settling on "
        "generated RC-ladder decks\",\n"
     << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SettleRow& r = rows[i];
    os << "    {\"nodes\": " << r.nodes << ", \"unknowns\": " << r.unknowns
       << ", \"engine\": \"" << (r.sparse ? "sparse" : "dense") << "\""
       << ", \"wall_ms\": " << r.wall_ms << ", \"steps\": " << r.accepted
       << ", \"rejected\": " << r.rejected
       << ", \"newton_iterations\": " << r.newton_iterations
       << ", \"steps_per_s\": " << r.steps_per_second() << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

void report() {
  bench::banner(
      "Transient startup settling on generated RC ladders (.TRAN, "
      "adaptive trapezoidal)");
  std::vector<SettleRow> rows;
  const int sizes[] = {20, 50, 100, 200};
  for (int nodes : sizes) {
    rows.push_back(run_settling(nodes, spice::SparseMode::kDense));
    rows.push_back(run_settling(nodes, spice::SparseMode::kSparse));
  }

  Table t({"nodes", "unknowns", "engine", "wall [ms]", "steps", "rejected",
           "newton iters", "steps/s"});
  for (const SettleRow& r : rows) {
    t.add_row({std::to_string(r.nodes), std::to_string(r.unknowns),
               r.sparse ? "sparse" : "dense", format_sig(r.wall_ms, 4),
               std::to_string(r.accepted), std::to_string(r.rejected),
               std::to_string(r.newton_iterations),
               format_sig(r.steps_per_second(), 4)});
  }
  bench::emit(t, "tran_settling.csv");

  const std::string json_path = bench::results_dir() + "/BENCH_tran.json";
  write_json(rows, json_path);
  std::printf("[json] %s\n", json_path.c_str());
}

// ------------------------------------------- registered microbenchmarks --

void bm_advance(benchmark::State& state, spice::IntegrationMethod method) {
  auto parsed = make_ladder(static_cast<int>(state.range(0)));
  spice::SimSession session(*parsed.circuit);
  spice::TransientSpec spec = *parsed.plan->transient;
  spec.method = method;
  spec.tstop *= 1e3;  // effectively unbounded: the loop below sets the pace
  spice::TransientSolver solver(session, spec);
  solver.begin();
  for (int i = 0; i < 20; ++i) {
    if (!solver.advance()) break;  // warm-up past breakpoints/analysis
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.advance());
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_TransientAdvanceBE(benchmark::State& state) {
  bm_advance(state, spice::IntegrationMethod::kBackwardEuler);
}
BENCHMARK(BM_TransientAdvanceBE)->Arg(50);

void BM_TransientAdvanceTrap(benchmark::State& state) {
  bm_advance(state, spice::IntegrationMethod::kTrapezoidal);
}
BENCHMARK(BM_TransientAdvanceTrap)->Arg(50)->Arg(200);

}  // namespace

int main(int argc, char** argv) {
  report();
  return icvbe::bench::run_benchmarks(argc, argv);
}
