// Reproduction of Fig. 8: temperature variation of the reference voltage.
//   * measured   -- the packaged cell in the virtual lab (monotonic rise),
//   * (S0)       -- simulation with the *best-fit* model card on a clean
//                   deck: the textbook bell that fails to predict the rise,
//   * (S1)-(S4)  -- simulation with the analytically extracted card on the
//                   parasitic-aware deck, RadjA = 0 / 1.8k / 2.5k / 2.7k:
//                   S1 tracks the measured rise, the trims flatten it.
//
// Model-card protocol (documented in EXPERIMENTS.md):
//  * S0 uses the *standard foundry model card*: the classical best fit run
//    at wafer level (thermochuck, die temperature accurate), projected to
//    the conventional XTI = 3 ("couples belonging to each characteristic
//    straight have been introduced in the model card"). The S0 deck has no
//    substrate parasitic and no amplifier offset -- the paper notes the
//    standard card "does not point out" those effects. This is the card a
//    designer had before the test structure existed.
//  * S1-S4 use the C3 (computed-temperature) 2x2 couple on a deck that
//    retains the parasitic and the offset the test structure itself
//    exposes through pads P4/P5.

#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "icvbe/common/ascii_plot.hpp"
#include "icvbe/common/constants.hpp"
#include "icvbe/extract/best_fit.hpp"
#include "icvbe/extract/dataset.hpp"
#include "icvbe/extract/meijer.hpp"
#include "icvbe/lab/campaign.hpp"

namespace {

using namespace icvbe;

std::vector<double> fig8_grid() {
  std::vector<double> g;
  for (double t = -80.0; t <= 145.0; t += 12.5) g.push_back(t);
  return g;
}

struct Cards {
  double s0_eg = 0.0, s0_xti = 3.0;  // C1 couple at XTI = 3
  double s1_eg = 0.0, s1_xti = 0.0;  // C3 2x2 couple
};

Cards extract_cards(lab::SiliconLot& lot) {
  // Foundry card: wafer-level classical best fit (thermochuck => accurate
  // die temperature, ideal_thermal), projected to XTI = 3.
  lab::CampaignConfig foundry_cfg;
  foundry_cfg.ideal_thermal = true;
  foundry_cfg.seed = 880;
  lab::Laboratory foundry(lot.sample(0), foundry_cfg);
  const auto pts = foundry.vbe_vs_temperature(
      1e-6, {-50.0, -25.0, 0.0, 25.0, 50.0, 75.0, 100.0, 125.0});
  extract::BestFitOptions opt;
  opt.t0 = to_kelvin(25.0);
  const auto line = extract::characteristic_straight(
      extract::samples_from_lab(pts), {1.0, 2.0, 3.0, 4.0, 5.0}, opt);

  // C3: the proposed method on the packaged cell.
  lab::CampaignConfig cfg;
  cfg.seed = 88;
  lab::Laboratory laboratory(lot.sample(1), cfg);
  const auto sweep = laboratory.test_cell_sweep({-25.0, 25.0, 75.0});
  const auto m = extract::meijer_from_cell(sweep, -25.0, 25.0, 75.0);

  Cards cards;
  cards.s0_eg = line.intercept + line.slope * cards.s0_xti;
  cards.s1_eg = m.with_computed_t.eg;
  cards.s1_xti = m.with_computed_t.xti;
  return cards;
}

Series simulate_card(const lab::SiliconLot& lot, double eg, double xti,
                     bool with_parasitics, double radja,
                     const std::vector<double>& grid, std::string name) {
  lab::DieSample deck = lot.sample(1);
  if (!with_parasitics) {
    // Standard-card deck: no parasitic elements and no amplifier offset --
    // neither appears in the foundry's wafer-level characterisation.
    deck.opamp_offset = 0.0;
    deck.qa.iss_e = deck.qb.iss_e = 0.0;
    deck.qa.iss = deck.qb.iss = 0.0;
  }
  // else: the improved deck keeps the parasitics and the offset the test
  // structure measured on this very sample.
  deck.qa.eg = deck.qb.eg = eg;
  deck.qa.xti = deck.qb.xti = xti;
  lab::CampaignConfig cfg;
  cfg.ideal_instruments = true;
  cfg.ideal_thermal = true;  // the designer simulates at face-value temps
  lab::Laboratory sim(deck, cfg);
  Series s = sim.vref_curve(grid, radja);
  s.set_name(std::move(name));
  return s;
}

void reproduce_fig8() {
  bench::banner(
      "Fig. 8 -- VREF(T): measured cell vs model-card simulations, with "
      "RadjA trim steps");

  lab::SiliconLot lot;
  const auto grid = fig8_grid();
  const Cards cards = extract_cards(lot);

  std::cout << "S0 card (best fit, on C1 line at XTI=3): EG = "
            << format_fixed(cards.s0_eg, 4) << ", XTI = 3.00\n"
            << "S1 card (analytical, computed T):        EG = "
            << format_fixed(cards.s1_eg, 4)
            << ", XTI = " << format_fixed(cards.s1_xti, 2) << '\n';

  lab::CampaignConfig meas_cfg;
  meas_cfg.seed = 88;
  lab::Laboratory meas(lot.sample(1), meas_cfg);
  Series measured = meas.vref_curve(grid, 0.0);
  measured.set_name("measured");

  Series s0 = simulate_card(lot, cards.s0_eg, cards.s0_xti, false, 0.0, grid,
                            "(S0) best-fit card");
  Series s1 = simulate_card(lot, cards.s1_eg, cards.s1_xti, true, 0.0, grid,
                            "(S1) RadjA=0");
  Series s2 = simulate_card(lot, cards.s1_eg, cards.s1_xti, true, 1.8e3, grid,
                            "(S2) RadjA=1.8k");
  Series s3 = simulate_card(lot, cards.s1_eg, cards.s1_xti, true, 2.5e3, grid,
                            "(S3) RadjA=2.5k");
  Series s4 = simulate_card(lot, cards.s1_eg, cards.s1_xti, true, 2.7e3, grid,
                            "(S4) RadjA=2.7k");

  Table t({"T [C]", "measured", "(S0)", "(S1)", "(S2)", "(S3)", "(S4)"});
  for (std::size_t i = 0; i < grid.size(); i += 2) {
    t.add_row({format_fixed(grid[i], 1), format_fixed(measured.y(i), 4),
               format_fixed(s0.y(i), 4), format_fixed(s1.y(i), 4),
               format_fixed(s2.y(i), 4), format_fixed(s3.y(i), 4),
               format_fixed(s4.y(i), 4)});
  }
  bench::emit(t, "fig8_vref_curves.csv");

  AsciiPlotOptions popt;
  popt.title = "Fig. 8: reference voltage [V] vs temperature [C]";
  popt.x_label = "Temperature (C)";
  popt.y_label = "Reference Voltage (V)";
  popt.height = 20;
  AsciiPlot plot(popt);
  plot.add(measured, '*');
  plot.add(s0, '0');
  plot.add(s1, '1');
  plot.add(s2, '2');
  plot.add(s3, '3');
  plot.add(s4, '4');
  plot.print(std::cout);

  bench::banner("Fig. 8 shape checks vs the paper");
  auto argmax = [](const Series& s) {
    std::size_t arg = 0;
    for (std::size_t i = 1; i < s.size(); ++i) {
      if (s.y(i) > s.y(arg)) arg = i;
    }
    return arg;
  };
  const std::size_t s0_apex = argmax(s0);
  Table h({"check", "paper", "reproduced"});
  h.add_row({"measured rises with T",
             "yes ('dramatic rise of VREF(T)')",
             measured.y(measured.size() - 1) > measured.y(0) + 2e-3
                 ? "yes (+" + format_fixed((measured.y(measured.size() - 1) -
                                            measured.y(0)) * 1e3, 1) + " mV)"
                 : "NO"});
  h.add_row({"S0 is a bell with interior apex", "yes ('expected typical shape')",
             (s0_apex > 0 && s0_apex < s0.size() - 1)
                 ? "yes (apex at " + format_fixed(s0.x(s0_apex), 0) + " C)"
                 : "NO"});
  double max_dev = 0.0;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    max_dev = std::max(max_dev, std::abs(s1.y(i) - measured.y(i)));
  }
  h.add_row({"S1 tracks measured", "very good correlation",
             "max deviation " + format_fixed(max_dev * 1e3, 1) + " mV"});
  const double spread1 = s1.max_y() - s1.min_y();
  const double spread4 = s4.max_y() - s4.min_y();
  h.add_row({"trim flattens the curve", "S2-S4 progressively flatter",
             format_fixed(spread1 * 1e3, 1) + " mV (S1) -> " +
                 format_fixed(spread4 * 1e3, 1) + " mV (S4)"});
  bench::emit(h, "fig8_shape_checks.csv");
}

void bm_vref_point(benchmark::State& state) {
  lab::SiliconLot lot;
  lab::CampaignConfig cfg;
  cfg.ideal_instruments = true;
  lab::Laboratory sim(lot.sample(1), cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.vref_curve({25.0}, 0.0));
  }
}
BENCHMARK(bm_vref_point)->Unit(benchmark::kMillisecond);

void bm_vref_full_curve(benchmark::State& state) {
  lab::SiliconLot lot;
  lab::CampaignConfig cfg;
  cfg.ideal_instruments = true;
  cfg.ideal_thermal = true;
  lab::Laboratory sim(lot.sample(1), cfg);
  const auto grid = fig8_grid();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.vref_curve(grid, 0.0));
  }
}
BENCHMARK(bm_vref_full_curve)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  reproduce_fig8();
  return icvbe::bench::run_benchmarks(argc, argv);
}
