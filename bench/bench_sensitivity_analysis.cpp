// Reproduction of the paper's quantitative accuracy claims:
//   section 3: a 1 % VBE measurement error may induce up to 8 % EG error
//              in the classical extraction;
//   section 3 (Meijer, ref [13]): a reference-temperature error dT2 < 5 K
//              has no significant influence on EG and XTI;
//   section 4: the collector-current correction coefficient
//              A = (k T2 / q) ln X is ~0.3 mV (0.45 % of dVBE) for a
//              0..100 C pair -- i.e. the current drift is negligible;
//   ref [12]:  IS(T) sensitivity ~20 %/K, which is why fitting IS(T)
//              directly is hopeless compared to VBE(T).

#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "icvbe/common/constants.hpp"
#include "icvbe/extract/meijer.hpp"
#include "icvbe/extract/sensitivity.hpp"
#include "icvbe/lab/campaign.hpp"
#include "icvbe/physics/saturation_current.hpp"
#include "icvbe/physics/vbe_model.hpp"

namespace {

using namespace icvbe;

std::vector<extract::VbeSample> clean_dataset() {
  physics::VbeModelParams p{1.132, 3.6, 298.15, 0.653};
  std::vector<extract::VbeSample> out;
  for (double t = 223.15; t <= 398.16; t += 25.0) {
    out.push_back({t, physics::vbe_of_t(p, t)});
  }
  return out;
}

void claim_vbe_error() {
  bench::banner(
      "Section-3 claim: 1 % VBE error -> up to 8 % EG error (classical "
      "method)");
  const auto data = clean_dataset();
  extract::BestFitOptions opt;
  opt.t0 = 298.15;

  Table t({"VBE rel. error", "EG rel. RMS", "EG rel. max (MC)",
           "EG worst single-point", "XTI abs. RMS"});
  for (double rel : {0.001, 0.0025, 0.005, 0.01, 0.02}) {
    const auto prop =
        extract::propagate_vbe_error(data, 1.132, rel, 400, opt);
    const double worst = extract::worst_case_eg_error(data, 1.132, rel, opt);
    t.add_row({format_fixed(rel * 100.0, 2) + " %",
               format_fixed(prop.eg_rel_rms * 100.0, 2) + " %",
               format_fixed(prop.eg_rel_max * 100.0, 2) + " %",
               format_fixed(worst * 100.0, 2) + " %",
               format_fixed(prop.xti_abs_rms, 2)});
  }
  bench::emit(t, "sensitivity_vbe_error.csv");
  std::cout << "paper: \"a measurement error of 1% on the VBE(T) "
               "characteristic may induce up to 8% of error on the "
               "extracted values of EG\"\n";
}

void claim_t2_error() {
  bench::banner(
      "Meijer robustness: dT2 < 5 K has no significant influence on EG, "
      "XTI");
  physics::VbeModelParams p{1.132, 3.6, 297.0, 0.64};
  const auto rows = extract::meijer_t2_sensitivity(
      247.0, physics::vbe_of_t(p, 247.0), 297.0, physics::vbe_of_t(p, 297.0),
      348.0, physics::vbe_of_t(p, 348.0),
      {-5.0, -3.0, -1.0, 0.0, 1.0, 3.0, 5.0});
  Table t({"dT2 [K]", "EG [eV]", "EG error [%]", "XTI", "XTI error"});
  for (const auto& r : rows) {
    t.add_row({format_fixed(r.delta_t2, 1), format_fixed(r.eg, 4),
               format_fixed((r.eg - 1.132) / 1.132 * 100.0, 2),
               format_fixed(r.xti, 3), format_fixed(r.xti - 3.6, 3)});
  }
  bench::emit(t, "sensitivity_t2_error.csv");
  std::cout << "Contrast: the same 5 K error applied to T1 *alone* (not a "
               "common scale) is catastrophic:\n";
  const auto bad = extract::meijer_extract(
      252.0, physics::vbe_of_t(p, 247.0), 297.0, physics::vbe_of_t(p, 297.0),
      348.0, physics::vbe_of_t(p, 348.0));
  std::cout << "  T1 mis-measured by +5 K -> EG = " << format_fixed(bad.eg, 4)
            << ", XTI = " << format_fixed(bad.xti, 2)
            << "  (vs true 1.1320 / 3.60)\n";
}

void claim_current_coefficient() {
  bench::banner(
      "Section-4 claim: A = (k T2/q) ln X ~ 0.3 mV (0.45 % of dVBE) -- the "
      "current drift is a weak effect");
  // Evaluate the coefficient for the paper's worked example (T1 = 0 C,
  // T2 = 100 C) across a range of current-ratio drifts X, and for the
  // drift actually observed in the virtual test cell.
  const double t2 = to_kelvin(100.0);
  Table t({"X (eq. 20)", "A = (kT2/q) ln X", "A / dVBE(T2) (70 mV)"});
  for (double x : {1.001, 1.005, 1.0094, 1.02, 1.05}) {
    const double a = extract::current_correction_coefficient(t2, x);
    t.add_row({format_fixed(x, 4), format_fixed(a * 1e3, 3) + " mV",
               format_fixed(a / 70e-3 * 100.0, 2) + " %"});
  }
  bench::emit(t, "sensitivity_current_coefficient.csv");

  lab::SiliconLot lot;
  lab::CampaignConfig cfg;
  cfg.seed = 17;
  lab::Laboratory laboratory(lot.sample(2), cfg);
  const auto sweep = laboratory.test_cell_sweep({0.0, 100.0});
  const double x_cell = extract::current_ratio_x(
      sweep[0].ic_qa, sweep[0].ic_qb, sweep[1].ic_qa, sweep[1].ic_qb);
  const double a_cell = extract::current_correction_coefficient(
      sweep[1].t_sensor, x_cell);
  std::cout << "virtual cell, T1 = 0 C vs T2 = 100 C: X = "
            << format_fixed(x_cell, 5) << ", A = "
            << format_fixed(a_cell * 1e3, 3) << " mV ("
            << format_fixed(a_cell / sweep[1].delta_vbe * 100.0, 2)
            << " % of dVBE(T2))\n"
            << "paper: A ~ 0.3 mV, 0.45 % of dVBE(T2) = 70 mV -> \"the "
               "temperature variation of IC has a weak influence\"\n";
}

void claim_is_sensitivity() {
  bench::banner(
      "Ref [12]: IS(T) sensitivity ~20 %/K -- why IS(T) regression is not "
      "used");
  Table t({"T [K]", "(1/IS) dIS/dT [%/K]", "VBE change for +1 K [mV]"});
  physics::BaseTransport bt;
  bt.en = 0.42;
  bt.erho = 0.11;
  bt.t0 = 300.0;
  const physics::GummelPoonIsModel gp(physics::make_eg5(), 0.045, bt, 48e-8);
  physics::VbeModelParams p{1.132, 3.6, 298.15, 0.653};
  for (double temp : {250.0, 275.0, 300.0, 325.0, 350.0}) {
    const double s = gp.relative_sensitivity(temp) * 100.0;
    const double dvbe =
        (physics::vbe_of_t(p, temp + 1.0) - physics::vbe_of_t(p, temp)) * 1e3;
    t.add_row({format_fixed(temp, 0), format_fixed(s, 1),
               format_fixed(dvbe, 3)});
  }
  bench::emit(t, "sensitivity_is_temperature.csv");
  std::cout << "IS moves ~15-20 %/K while VBE moves ~2 mV/K (0.3 %/K): the "
               "paper fits VBE(T), \"which is more accurate because VBE(T) "
               "is processed from direct measurements\"\n";
}

void bm_propagation(benchmark::State& state) {
  const auto data = clean_dataset();
  extract::BestFitOptions opt;
  opt.t0 = 298.15;
  for (auto _ : state) {
    benchmark::DoNotOptimize(extract::propagate_vbe_error(
        data, 1.132, 0.01, static_cast<int>(state.range(0)), opt));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(bm_propagation)->Arg(100)->Arg(400);

void bm_t2_sensitivity(benchmark::State& state) {
  physics::VbeModelParams p{1.132, 3.6, 297.0, 0.64};
  const std::vector<double> deltas{-5, -3, -1, 0, 1, 3, 5};
  for (auto _ : state) {
    benchmark::DoNotOptimize(extract::meijer_t2_sensitivity(
        247.0, physics::vbe_of_t(p, 247.0), 297.0,
        physics::vbe_of_t(p, 297.0), 348.0, physics::vbe_of_t(p, 348.0),
        deltas));
  }
}
BENCHMARK(bm_t2_sensitivity);

}  // namespace

int main(int argc, char** argv) {
  claim_vbe_error();
  claim_t2_error();
  claim_current_coefficient();
  claim_is_sensitivity();
  return icvbe::bench::run_benchmarks(argc, argv);
}
