// Reproduction of Table 1: comparison of the sensor-measured and the
// eq.-(16)-computed temperatures for five samples of the bandgap test
// cell. Paper values: T1 = 247 K row in [-4.61, -1.82] K, T2 = 297 K row
// pinned at 0, T3 = 348 K row in [+3.99, +7.28] K.

#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "icvbe/common/constants.hpp"
#include "icvbe/extract/meijer.hpp"
#include "icvbe/lab/campaign.hpp"

namespace {

using namespace icvbe;

// Paper Table 1 rows for side-by-side comparison.
constexpr double kPaperT1[] = {-3.60, -4.53, -4.35, -4.61, -1.82};
constexpr double kPaperT3[] = {6.61, 5.64, 3.99, 4.02, 7.28};

void reproduce_table1() {
  bench::banner(
      "Table 1 -- T_measured - T_computed [K] for five samples of the test "
      "cell (T1 = 247 K, T2 = 297 K pinned, T3 = 348 K)");

  lab::SiliconLot lot;
  Table t({"row", "sample 1", "sample 2", "sample 3", "sample 4",
           "sample 5", "paper range"});
  std::vector<std::string> row_t1{"T1 = 247 K"};
  std::vector<std::string> row_t2{"T2 = 297 K"};
  std::vector<std::string> row_t3{"T3 = 348 K"};
  std::vector<std::string> paper_t1{"paper T1"};
  std::vector<std::string> paper_t3{"paper T3"};

  // Ground-truth die context for EXPERIMENTS.md.
  Table ctx({"sample", "die T at T1 [K]", "die T at T2 [K]",
             "die T at T3 [K]", "X (eq. 20, T1 vs T2)",
             "C3 EG [eV]", "C3 XTI"});

  for (int i = 1; i <= 5; ++i) {
    lab::CampaignConfig cfg;
    cfg.seed = 100 + static_cast<std::uint64_t>(i);
    lab::Laboratory laboratory(lot.sample(i), cfg);
    // Chamber settings chosen so the *sensor* reads ~247/297/348 K.
    const auto sweep = laboratory.test_cell_sweep({-26.15, 23.85, 74.85});
    const auto m = extract::meijer_from_cell(sweep, -26.15, 23.85, 74.85);
    const auto c = extract::compare_temperatures(m);
    row_t1.push_back(format_fixed(c.delta_t1(), 2));
    row_t2.push_back("0 (pinned)");
    row_t3.push_back(format_fixed(c.delta_t3(), 2));
    paper_t1.push_back(format_fixed(kPaperT1[i - 1], 2));
    paper_t3.push_back(format_fixed(kPaperT3[i - 1], 2));

    ctx.add_row({std::to_string(i), format_fixed(m.p1.t_die_true, 1),
                 format_fixed(m.p2.t_die_true, 1),
                 format_fixed(m.p3.t_die_true, 1),
                 format_fixed(m.x_ratio_t1, 5),
                 format_fixed(m.with_computed_t.eg, 4),
                 format_fixed(m.with_computed_t.xti, 2)});
  }
  row_t1.push_back("[-4.61, -1.82]");
  row_t2.push_back("0 by construction");
  row_t3.push_back("[+3.99, +7.28]");
  paper_t1.push_back("(paper values)");
  paper_t3.push_back("(paper values)");

  t.add_row(row_t1);
  t.add_row(paper_t1);
  t.add_row(row_t2);
  t.add_row(row_t3);
  t.add_row(paper_t3);
  bench::emit(t, "table1_temperature_error.csv");

  bench::banner("Ground-truth context (not available in a real lab)");
  ctx.print(std::cout);
  std::cout << "True silicon card: EG = " << format_fixed(lot.true_eg(), 4)
            << " eV, XTI = " << format_fixed(lot.true_xti(), 2) << '\n';

  bench::banner("Table 1 shape checks vs the paper");
  Table h({"check", "paper", "reproduced"});
  h.add_row({"sign at T1", "negative for all 5 samples", "see row above"});
  h.add_row({"sign at T3", "positive for all 5 samples", "see row above"});
  h.add_row({"|T3 row| > |T1 row|", "yes (4.0-7.3 vs 1.8-4.6)",
             "yes (fixture leak grows with dT)"});
  h.add_row({"dVBE slope change at 25 C", "~8 %",
             "~6-9 % (leak-compressed die range)"});
  bench::emit(h, "table1_checks.csv");
}

void bm_cell_solve(benchmark::State& state) {
  lab::SiliconLot lot;
  lab::CampaignConfig cfg;
  lab::Laboratory laboratory(lot.sample(1), cfg);
  for (auto _ : state) {
    auto sweep = laboratory.test_cell_sweep({25.0});
    benchmark::DoNotOptimize(sweep);
  }
  state.SetLabel("one electro-thermal cell point");
}
BENCHMARK(bm_cell_solve)->Unit(benchmark::kMillisecond);

void bm_computed_temperature(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        extract::computed_temperature(0.0446, 0.0536, 297.0));
  }
}
BENCHMARK(bm_computed_temperature);

void bm_monte_carlo_lot(benchmark::State& state) {
  lab::SiliconLot lot;
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lot.sample(i++));
  }
}
BENCHMARK(bm_monte_carlo_lot);

}  // namespace

int main(int argc, char** argv) {
  reproduce_table1();
  return icvbe::bench::run_benchmarks(argc, argv);
}
