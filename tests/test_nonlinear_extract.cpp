// Tests for the nonlinear and robust extraction extensions.

#include <gtest/gtest.h>

#include <cmath>

#include "icvbe/common/error.hpp"
#include "icvbe/common/rng.hpp"
#include "icvbe/extract/nonlinear.hpp"
#include "icvbe/physics/vbe_model.hpp"

namespace icvbe::extract {
namespace {

std::vector<VbeSample> synth(double eg, double xti, double t0, double vbe_t0) {
  physics::VbeModelParams p{eg, xti, t0, vbe_t0};
  std::vector<VbeSample> out;
  for (double t = 223.15; t <= 398.16; t += 17.5) {
    out.push_back({t, physics::vbe_of_t(p, t)});
  }
  return out;
}

TEST(NonlinearFit, RecoversAllThreeParameters) {
  const auto data = synth(1.17, 3.3, 298.15, 0.625);
  NonlinearFitOptions opt;
  opt.t0 = 298.15;
  const auto r = nonlinear_fit_eg_xti(data, opt);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.eg, 1.17, 1e-6);
  EXPECT_NEAR(r.xti, 3.3, 1e-4);
  EXPECT_NEAR(r.vbe_t0, 0.625, 1e-7);
  EXPECT_LT(r.rmse, 1e-9);
}

TEST(NonlinearFit, AgreesWithLinearFitOnCleanData) {
  const auto data = synth(1.14, 2.7, 298.15, 0.64);
  BestFitOptions lopt;
  lopt.t0 = 298.15;
  const auto lin = best_fit_eg_xti(data, lopt);
  NonlinearFitOptions nopt;
  nopt.t0 = 298.15;
  const auto nl = nonlinear_fit_eg_xti(data, nopt);
  EXPECT_NEAR(nl.eg, lin.eg, 5e-3);
  EXPECT_NEAR(nl.xti, lin.xti, 0.3);
}

TEST(NonlinearFit, HandlesEarlyCorrectedData) {
  // Generate data with the VAR correction applied, then fit with and
  // without it: the matched model must fit better.
  const double t0 = 298.15, vbe0 = 0.63, var = 8.0;
  physics::VbeModelParams p{1.15, 3.1, t0, vbe0};
  std::vector<VbeSample> data;
  for (double t = 223.15; t <= 398.16; t += 17.5) {
    const double base = physics::vbe_of_t(p, t);
    const double corr = physics::early_correction(var, vbe0, base);
    // eq. (13) printed form: the transfer term carries the correction.
    const double v = base + (corr - 1.0) * (t / t0) * vbe0;
    data.push_back({t, v});
  }
  NonlinearFitOptions with_var;
  with_var.t0 = t0;
  with_var.var_volts = var;
  NonlinearFitOptions without;
  without.t0 = t0;
  const auto r_with = nonlinear_fit_eg_xti(data, with_var);
  const auto r_without = nonlinear_fit_eg_xti(data, without);
  EXPECT_LT(r_with.rmse, 0.5 * r_without.rmse);
  // The correction factor is evaluated at the measured VBE rather than the
  // ideal one, so recovery is close but not exact on the correlated pair.
  EXPECT_NEAR(r_with.eg, 1.15, 2e-2);
}

TEST(NonlinearFit, RequiresFourSamples) {
  std::vector<VbeSample> three = {{250.0, 0.72}, {300.0, 0.65},
                                  {350.0, 0.56}};
  EXPECT_THROW((void)nonlinear_fit_eg_xti(three), Error);
}

TEST(RobustFit, MatchesPlainFitOnCleanData) {
  const auto data = synth(1.16, 3.0, 298.15, 0.62);
  BestFitOptions opt;
  opt.t0 = 298.15;
  const auto plain = best_fit_eg_xti(data, opt);
  const auto robust = robust_fit_eg_xti(data, opt);
  EXPECT_NEAR(robust.eg, plain.eg, 2e-3);
  EXPECT_NEAR(robust.xti, plain.xti, 0.15);
}

TEST(RobustFit, SurvivesSingleOutlier) {
  auto data = synth(1.16, 3.0, 298.15, 0.62);
  // Corrupt one mid-range point by +10 mV (bad thermal contact).
  data[4].vbe += 10e-3;
  BestFitOptions opt;
  opt.t0 = 298.15;
  opt.vbe_t0 = 0.62;
  const auto plain = best_fit_eg_xti(data, opt);
  std::vector<bool> mask;
  const auto robust = robust_fit_eg_xti(data, opt, 1.5, &mask);
  // Plain fit is dragged far along the characteristic straight; the
  // robust fit stays close to the truth.
  EXPECT_GT(std::abs(plain.eg - 1.16), 3.0 * std::abs(robust.eg - 1.16));
  EXPECT_NEAR(robust.eg, 1.16, 0.01);
  EXPECT_TRUE(mask[4]);
  int flagged = 0;
  for (bool b : mask) flagged += b ? 1 : 0;
  EXPECT_LE(flagged, 2);
}

TEST(RobustFit, SurvivesTwoOutliers) {
  auto data = synth(1.13, 3.5, 298.15, 0.65);
  data[1].vbe -= 8e-3;
  data[8].vbe += 6e-3;
  BestFitOptions opt;
  opt.t0 = 298.15;
  opt.vbe_t0 = 0.65;
  const auto robust = robust_fit_eg_xti(data, opt);
  EXPECT_NEAR(robust.eg, 1.13, 0.02);
}

TEST(RobustFit, NoisyDataUnbiased) {
  Rng rng(404);
  auto data = synth(1.17, 3.0, 298.15, 0.63);
  for (auto& p : data) p.vbe += rng.gaussian(0.0, 50e-6);
  BestFitOptions opt;
  opt.t0 = 298.15;
  opt.vbe_t0 = 0.63;
  const auto robust = robust_fit_eg_xti(data, opt);
  EXPECT_NEAR(robust.eg, 1.17, 0.02);
}

}  // namespace
}  // namespace icvbe::extract
