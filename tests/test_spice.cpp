// Tests for icvbe/spice: MNA stamps, linear solves, diode/BJT Newton
// convergence, temperature behaviour, and the sweep analyses.

#include <gtest/gtest.h>

#include <cmath>

#include "icvbe/common/constants.hpp"
#include "icvbe/common/error.hpp"
#include "icvbe/spice/analysis.hpp"
#include "icvbe/spice/circuit.hpp"
#include "icvbe/spice/dc_solver.hpp"
#include "icvbe/spice/junction.hpp"

namespace icvbe::spice {
namespace {

TEST(Junction, SafeExpLinearisesAboveCap) {
  EXPECT_DOUBLE_EQ(safe_exp(1.0), std::exp(1.0));
  const double at_cap = safe_exp(200.0);
  EXPECT_DOUBLE_EQ(safe_exp(201.0), at_cap * 2.0);
  EXPECT_TRUE(std::isfinite(safe_exp(1e6)));
}

TEST(Junction, PnjlimLimitsLargeSteps) {
  const double vt = 0.026;
  const double vcrit = 0.7;
  // Small steps pass through unchanged.
  EXPECT_DOUBLE_EQ(pnjlim(0.65, 0.64, vt, vcrit), 0.65);
  // A jump from 0.6 to 5 V gets logarithmically limited.
  const double limited = pnjlim(5.0, 0.6, vt, vcrit);
  EXPECT_LT(limited, 1.0);
  EXPECT_GT(limited, 0.6);
}

TEST(CircuitTest, NodeNamesAndGroundAliases) {
  Circuit c;
  EXPECT_EQ(c.node("0"), kGround);
  EXPECT_EQ(c.node("gnd"), kGround);
  const NodeId a = c.node("a");
  EXPECT_EQ(c.node("a"), a);
  EXPECT_NE(c.node("b"), a);
  EXPECT_EQ(c.node_name(a), "a");
}

TEST(CircuitTest, DuplicateDeviceNameRejected) {
  Circuit c;
  const NodeId a = c.node("a");
  c.add_resistor("R1", a, kGround, 1e3);
  EXPECT_THROW(c.add_resistor("R1", a, kGround, 2e3), CircuitError);
}

TEST(CircuitTest, GetByNameTypeChecked) {
  Circuit c;
  const NodeId a = c.node("a");
  c.add_resistor("R1", a, kGround, 1e3);
  EXPECT_NO_THROW((void)c.get<Resistor>("R1"));
  EXPECT_THROW((void)c.get<VoltageSource>("R1"), CircuitError);
  EXPECT_THROW((void)c.get<Resistor>("nope"), CircuitError);
}

TEST(DcSolver, ResistorDivider) {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId mid = c.node("mid");
  c.add_vsource("V1", in, kGround, 10.0);
  c.add_resistor("R1", in, mid, 1e3);
  c.add_resistor("R2", mid, kGround, 3e3);
  const Unknowns x = solve_dc_or_throw(c);
  // gmin (1e-12 S to ground) leaks a few nA, so tolerances are ~1e-7.
  EXPECT_NEAR(x.node_voltage(mid), 7.5, 1e-7);
  // Source current: 10 V across 4k -> 2.5 mA drawn from the + terminal.
  EXPECT_NEAR(c.get<VoltageSource>("V1").current(x), -2.5e-3, 1e-8);
}

TEST(DcSolver, CurrentSourceIntoResistor) {
  Circuit c;
  const NodeId n = c.node("n");
  // 1 mA from ground into n through the source, 2k to ground.
  c.add_isource("I1", kGround, n, 1e-3);
  c.add_resistor("R1", n, kGround, 2e3);
  const Unknowns x = solve_dc_or_throw(c);
  EXPECT_NEAR(x.node_voltage(n), 2.0, 1e-7);
}

TEST(DcSolver, VcvsAmplifies) {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add_vsource("V1", in, kGround, 0.1);
  c.add_vcvs("E1", out, kGround, in, kGround, 20.0);
  c.add_resistor("RL", out, kGround, 1e4);
  const Unknowns x = solve_dc_or_throw(c);
  EXPECT_NEAR(x.node_voltage(out), 2.0, 1e-9);
}

TEST(DcSolver, OpAmpFollowerWithOffset) {
  // Unity follower: out = in + offset (offset adds at the + input).
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add_vsource("V1", in, kGround, 1.0);
  c.add_opamp("U1", out, in, out, 1e7, 2e-3);
  c.add_resistor("RL", out, kGround, 1e5);
  const Unknowns x = solve_dc_or_throw(c);
  EXPECT_NEAR(x.node_voltage(out), 1.002, 1e-6);
}

TEST(DcSolver, ResistorTemperatureCoefficients) {
  Circuit c;
  const NodeId n = c.node("n");
  c.add_isource("I1", kGround, n, 1e-3);
  auto& r = c.add_resistor("R1", n, kGround, 1e3, 2e-3, 0.0);
  c.set_temperature(to_kelvin(127.0));  // +100 K over tnom
  const Unknowns x = solve_dc_or_throw(c);
  EXPECT_NEAR(r.resistance(), 1e3 * (1.0 + 2e-3 * 100.0), 1e-6);
  EXPECT_NEAR(x.node_voltage(n), 1.2, 1e-6);
}

TEST(DcSolver, DiodeForwardDrop) {
  Circuit c;
  const NodeId a = c.node("a");
  DiodeModel dm;
  dm.is = 1e-14;
  c.add_isource("I1", kGround, a, 1e-3);
  c.add_diode("D1", a, kGround, dm);
  const Unknowns x = solve_dc_or_throw(c);
  // v = VT ln(I/IS): ~0.65 V at 1 mA for IS = 1e-14 at 300.15 K.
  const double expected =
      thermal_voltage(300.15) * std::log(1e-3 / 1e-14);
  EXPECT_NEAR(x.node_voltage(a), expected, 1e-6);
}

TEST(DcSolver, DiodeReverseLeakage) {
  Circuit c;
  const NodeId a = c.node("a");
  DiodeModel dm;
  dm.is = 1e-14;
  c.add_vsource("V1", a, kGround, -5.0);
  auto& d = c.add_diode("D1", a, kGround, dm);
  const Unknowns x = solve_dc_or_throw(c);
  EXPECT_NEAR(d.current(x), -1e-14, 1e-16);
}

TEST(DcSolver, DiodeSeriesResistorAnalytic) {
  // I source through diode: exact; with the voltage source and resistor the
  // solution must satisfy both device equations simultaneously.
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId a = c.node("a");
  DiodeModel dm;
  dm.is = 1e-14;
  c.add_vsource("V1", in, kGround, 3.0);
  c.add_resistor("R1", in, a, 1e3);
  auto& d = c.add_diode("D1", a, kGround, dm);
  const Unknowns x = solve_dc_or_throw(c);
  const double id = d.current(x);
  const double va = x.node_voltage(a);
  EXPECT_NEAR((3.0 - va) / 1e3, id, 1e-9);
  EXPECT_NEAR(va, thermal_voltage(300.15) * std::log(id / 1e-14), 1e-6);
}

BjtModel npn_default() {
  BjtModel m;
  m.type = BjtModel::Type::kNpn;
  m.is = 1e-16;
  m.bf = 150.0;
  m.br = 2.0;
  return m;
}

BjtModel pnp_default() {
  BjtModel m = npn_default();
  m.type = BjtModel::Type::kPnp;
  m.bf = 60.0;
  return m;
}

TEST(BjtTest, ForwardActiveCollectorCurrent) {
  // NPN with VBE forced to 0.65 V, collector at 3 V: IC = IS e^{VBE/VT}.
  Circuit c;
  const NodeId b = c.node("b");
  const NodeId col = c.node("c");
  c.add_vsource("VB", b, kGround, 0.65);
  c.add_vsource("VC", col, kGround, 3.0);
  auto& q = c.add_bjt("Q1", col, b, kGround, npn_default());
  const Unknowns x = solve_dc_or_throw(c);
  const auto tc = q.currents(x);
  const double expected =
      1e-16 * (std::exp(0.65 / thermal_voltage(300.15)) - 1.0);
  EXPECT_NEAR(tc.ic / expected, 1.0, 1e-6);
  EXPECT_NEAR(tc.ib, tc.ic / 150.0, tc.ic / 150.0 * 1.01);
  EXPECT_NEAR(tc.ic + tc.ib + tc.ie + tc.isub, 0.0, 1e-12);
}

TEST(BjtTest, AreaScalesCollectorCurrent) {
  Circuit c;
  const NodeId b = c.node("b");
  const NodeId c1 = c.node("c1");
  const NodeId c2 = c.node("c2");
  c.add_vsource("VB", b, kGround, 0.6);
  c.add_vsource("VC1", c1, kGround, 2.0);
  c.add_vsource("VC2", c2, kGround, 2.0);
  auto& qa = c.add_bjt("QA", c1, b, kGround, npn_default(), 1.0);
  auto& qb = c.add_bjt("QB", c2, b, kGround, npn_default(), 8.0);
  const Unknowns x = solve_dc_or_throw(c);
  EXPECT_NEAR(qb.currents(x).ic / qa.currents(x).ic, 8.0, 1e-6);
}

TEST(BjtTest, DeltaVbeOfMatchedPairIsPtat) {
  // Two diode-connected NPNs at the same forced current, area 1 vs 8:
  // dVBE = (kT/q) ln 8 -- the Fig. 2 principle, here from the full solver.
  for (double t_c : {-25.0, 25.0, 75.0}) {
    Circuit c;
    const NodeId a1 = c.node("a1");
    const NodeId a2 = c.node("a2");
    c.add_isource("I1", kGround, a1, 1e-5);
    c.add_isource("I2", kGround, a2, 1e-5);
    c.add_bjt("QA", a1, a1, kGround, npn_default(), 1.0);
    c.add_bjt("QB", a2, a2, kGround, npn_default(), 8.0);
    c.set_temperature(to_kelvin(t_c));
    const Unknowns x = solve_dc_or_throw(c);
    const double dvbe = x.node_voltage(a1) - x.node_voltage(a2);
    EXPECT_NEAR(dvbe, thermal_voltage(to_kelvin(t_c)) * std::log(8.0), 1e-7)
        << "at " << t_c << " C";
  }
}

TEST(BjtTest, PnpForwardActive) {
  // PNP: emitter at 1 V, base at 0.35 V (VEB = 0.65), collector grounded.
  Circuit c;
  const NodeId e = c.node("e");
  const NodeId b = c.node("b");
  c.add_vsource("VE", e, kGround, 1.0);
  c.add_vsource("VB", b, kGround, 0.35);
  auto& q = c.add_bjt("Q1", kGround, b, e, pnp_default());
  const Unknowns x = solve_dc_or_throw(c);
  const auto tc = q.currents(x);
  // PNP: conventional current flows out of the collector terminal.
  EXPECT_LT(tc.ic, 0.0);
  const double expected =
      -1e-16 * (std::exp(0.65 / thermal_voltage(300.15)) - 1.0);
  EXPECT_NEAR(tc.ic / expected, 1.0, 1e-5);
}

TEST(BjtTest, EarlyEffectIncreasesIc) {
  BjtModel m = npn_default();
  m.vaf = 50.0;
  Circuit c;
  const NodeId b = c.node("b");
  const NodeId col = c.node("c");
  c.add_vsource("VB", b, kGround, 0.6);
  auto& vc = c.add_vsource("VC", col, kGround, 1.0);
  auto& q = c.add_bjt("Q1", col, b, kGround, m);
  const Unknowns x1 = solve_dc_or_throw(c);
  const double ic1 = q.currents(x1).ic;
  vc.set_voltage(10.0);
  const Unknowns x2 = solve_dc_or_throw(c);
  const double ic2 = q.currents(x2).ic;
  // VBC goes from -0.4 to -9.4: (1 - vbc/VAF) ratio ~ (1+9.4/50)/(1+0.4/50).
  EXPECT_NEAR(ic2 / ic1, (1.0 + 9.4 / 50.0) / (1.0 + 0.4 / 50.0), 2e-3);
}

TEST(BjtTest, VbeDecreasesWithTemperatureAtConstantCurrent) {
  Circuit c;
  const NodeId a = c.node("a");
  c.add_isource("I1", kGround, a, 1e-5);
  c.add_bjt("Q1", a, a, kGround, npn_default());
  auto series = temperature_sweep(
      c, {to_kelvin(-50.0), to_kelvin(0.0), to_kelvin(50.0), to_kelvin(100.0)},
      probe_node_voltage(c, "a"));
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_LT(series.y(i), series.y(i - 1));
  }
  // Slope ~ -1.5 to -2.2 mV/K for these parameters.
  const double slope = (series.y(3) - series.y(0)) / (series.x(3) - series.x(0));
  EXPECT_GT(slope, -2.4e-3);
  EXPECT_LT(slope, -1.2e-3);
}

TEST(BjtTest, SubstrateParasiticStealsCurrentInSaturation) {
  BjtModel m = npn_default();
  m.iss = 1e-15;  // parasitic 10x the main IS
  Circuit c;
  const NodeId b = c.node("b");
  const NodeId col = c.node("c");
  c.add_vsource("VB", b, kGround, 0.65);
  auto& vc = c.add_vsource("VC", col, kGround, 2.0);
  auto& q = c.add_bjt("Q1", col, b, kGround, m);
  // Forward active: substrate current negligible.
  Unknowns x = solve_dc_or_throw(c);
  EXPECT_LT(std::abs(q.currents(x).isub), 1e-12);
  // Saturation (VC = 0.05 -> VBC = +0.6): parasitic turns on.
  vc.set_voltage(0.05);
  x = solve_dc_or_throw(c);
  EXPECT_GT(std::abs(q.currents(x).isub), 1e-9);
}

TEST(BjtTest, PowerIsPositiveAndPlausible) {
  Circuit c;
  const NodeId b = c.node("b");
  const NodeId col = c.node("c");
  c.add_vsource("VB", b, kGround, 0.65);
  c.add_vsource("VC", col, kGround, 3.0);
  auto& q = c.add_bjt("Q1", col, b, kGround, npn_default());
  const Unknowns x = solve_dc_or_throw(c);
  const double ic = q.currents(x).ic;
  EXPECT_NEAR(q.power(x), 3.0 * ic + 0.65 * q.currents(x).ib, 0.05 * 3 * ic);
}

TEST(Analysis, DcSweepVsourceWarmStarts) {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId a = c.node("a");
  DiodeModel dm;
  c.add_vsource("V1", in, kGround, 0.0);
  c.add_resistor("R1", in, a, 1e3);
  c.add_diode("D1", a, kGround, dm);
  auto vals = linspace(0.0, 2.0, 21);
  auto series =
      dc_sweep_vsource(c, "V1", vals, probe_node_voltage(c, "a"));
  EXPECT_EQ(series.size(), 21u);
  EXPECT_TRUE(series.x_strictly_increasing());
  // Diode clamps near 0.7 V at the top of the sweep.
  EXPECT_LT(series.max_y(), 0.85);
}

TEST(Analysis, LinspaceAndLogspace) {
  auto l = linspace(0.0, 1.0, 5);
  ASSERT_EQ(l.size(), 5u);
  EXPECT_DOUBLE_EQ(l[1], 0.25);
  auto g = logspace_decades(1e-8, 1e-5, 3);
  EXPECT_NEAR(g.front(), 1e-8, 1e-20);
  EXPECT_NEAR(g.back(), 1e-5, 1e-12);
  for (std::size_t i = 1; i < g.size(); ++i) EXPECT_GT(g[i], g[i - 1]);
}

TEST(Analysis, ProbeVsourceCurrent) {
  Circuit c;
  const NodeId in = c.node("in");
  c.add_vsource("V1", in, kGround, 1.0);
  c.add_resistor("R1", in, kGround, 1e3);
  auto series = dc_sweep_vsource(c, "V1", {1.0, 2.0},
                                 probe_vsource_current("V1"));
  EXPECT_NEAR(series.y(0), -1e-3, 1e-9);
  EXPECT_NEAR(series.y(1), -2e-3, 1e-9);
}

TEST(DcSolver, FailsGracefullyOnSingularCircuit) {
  // Two ideal voltage sources in parallel with conflicting values cannot be
  // satisfied; expect converged == false or a NumericalError, never a hang.
  Circuit c;
  const NodeId a = c.node("a");
  c.add_vsource("V1", a, kGround, 1.0);
  c.add_vsource("V2", a, kGround, 2.0);
  const DcResult r = solve_dc(c);
  EXPECT_FALSE(r.converged);
}

TEST(DcSolver, StrategyReportedOnEasyCircuit) {
  Circuit c;
  const NodeId a = c.node("a");
  c.add_vsource("V1", a, kGround, 1.0);
  c.add_resistor("R1", a, kGround, 1.0e3);
  const DcResult r = solve_dc(c);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.strategy, "newton");
}

}  // namespace
}  // namespace icvbe::spice
