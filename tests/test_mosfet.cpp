// Tests for the level-1 MOSFET and the transistor-level CMOS op-amp.

#include <gtest/gtest.h>

#include <cmath>

#include "icvbe/bandgap/cmos_opamp.hpp"
#include "icvbe/common/constants.hpp"
#include "icvbe/common/error.hpp"
#include "icvbe/spice/circuit.hpp"
#include "icvbe/spice/dc_solver.hpp"

namespace icvbe::spice {
namespace {

MosfetModel nmos() {
  MosfetModel m;
  m.vto = 0.7;
  m.kp = 50e-6;
  m.lambda = 0.0;
  return m;
}

TEST(MosfetTest, CutoffBelowThreshold) {
  Circuit c;
  const NodeId d = c.node("d");
  const NodeId g = c.node("g");
  c.add_vsource("VD", d, kGround, 2.0);
  c.add_vsource("VG", g, kGround, 0.3);  // below VTO = 0.7
  auto& m = c.add_mosfet("M1", d, g, kGround, nmos(), 10.0);
  const Unknowns x = solve_dc_or_throw(c);
  EXPECT_NEAR(m.drain_current(x), 0.0, 1e-12);
}

TEST(MosfetTest, SaturationSquareLaw) {
  Circuit c;
  const NodeId d = c.node("d");
  const NodeId g = c.node("g");
  c.add_vsource("VD", d, kGround, 3.0);
  c.add_vsource("VG", g, kGround, 1.2);  // VOV = 0.5, VDS = 3 > VOV
  auto& m = c.add_mosfet("M1", d, g, kGround, nmos(), 10.0);
  const Unknowns x = solve_dc_or_throw(c);
  // ID = 0.5 * KP * W/L * VOV^2 = 0.5 * 50u * 10 * 0.25 = 62.5 uA.
  EXPECT_NEAR(m.drain_current(x), 62.5e-6, 1e-9);
}

TEST(MosfetTest, TriodeRegion) {
  Circuit c;
  const NodeId d = c.node("d");
  const NodeId g = c.node("g");
  c.add_vsource("VD", d, kGround, 0.2);  // VDS = 0.2 < VOV = 0.5
  c.add_vsource("VG", g, kGround, 1.2);
  auto& m = c.add_mosfet("M1", d, g, kGround, nmos(), 10.0);
  const Unknowns x = solve_dc_or_throw(c);
  // ID = KP W/L (VOV - VDS/2) VDS = 50u*10*(0.5-0.1)*0.2 = 40 uA.
  EXPECT_NEAR(m.drain_current(x), 40e-6, 1e-9);
}

TEST(MosfetTest, ChannelLengthModulation) {
  MosfetModel m = nmos();
  m.lambda = 0.1;
  Circuit c;
  const NodeId d = c.node("d");
  const NodeId g = c.node("g");
  auto& vd = c.add_vsource("VD", d, kGround, 2.0);
  c.add_vsource("VG", g, kGround, 1.2);
  auto& q = c.add_mosfet("M1", d, g, kGround, m, 10.0);
  const Unknowns x1 = solve_dc_or_throw(c);
  const double i1 = q.drain_current(x1);
  vd.set_voltage(4.0);
  const Unknowns x2 = solve_dc_or_throw(c);
  const double i2 = q.drain_current(x2);
  EXPECT_NEAR(i2 / i1, (1.0 + 0.1 * 4.0) / (1.0 + 0.1 * 2.0), 1e-9);
}

TEST(MosfetTest, PmosMirrorsNmosBehaviour) {
  MosfetModel pm;
  pm.type = MosfetModel::Type::kPmos;
  pm.vto = 0.7;
  pm.kp = 50e-6;
  pm.lambda = 0.0;
  Circuit c;
  const NodeId s = c.node("s");
  const NodeId d = c.node("d");
  const NodeId g = c.node("g");
  c.add_vsource("VS", s, kGround, 3.0);
  c.add_vsource("VG", g, kGround, 1.8);  // VSG = 1.2, VOV = 0.5
  c.add_vsource("VD", d, kGround, 0.0);  // VSD = 3
  auto& q = c.add_mosfet("M1", d, g, s, pm, 10.0);
  const Unknowns x = solve_dc_or_throw(c);
  // PMOS: conventional current flows out of the drain: -62.5 uA into it.
  EXPECT_NEAR(q.drain_current(x), -62.5e-6, 1e-9);
}

TEST(MosfetTest, ResistorLoadedInverterSolves) {
  // Nonlinear loop: NMOS with 100k drain resistor from 3 V.
  Circuit c;
  const NodeId d = c.node("d");
  const NodeId g = c.node("g");
  const NodeId vdd = c.node("vdd");
  c.add_vsource("VDD", vdd, kGround, 3.0);
  c.add_vsource("VG", g, kGround, 1.0);
  c.add_resistor("RL", vdd, d, 1e5);
  auto& q = c.add_mosfet("M1", d, g, kGround, nmos(), 4.0);
  const Unknowns x = solve_dc_or_throw(c);
  const double vd = x.node_voltage(d);
  // KCL: (3 - vd)/100k = id(vd).
  EXPECT_NEAR((3.0 - vd) / 1e5, q.drain_current(x), 1e-10);
  EXPECT_GT(vd, 0.0);
  EXPECT_LT(vd, 3.0);
}

TEST(MosfetTest, ThresholdDropsWithTemperature) {
  Circuit c;
  const NodeId d = c.node("d");
  const NodeId g = c.node("g");
  c.add_vsource("VD", d, kGround, 3.0);
  c.add_vsource("VG", g, kGround, 0.72);  // barely on at 25 C
  auto& q = c.add_mosfet("M1", d, g, kGround, nmos(), 10.0);
  c.set_temperature(298.15);
  const Unknowns x_cold = solve_dc_or_throw(c);
  const double i_cold = q.drain_current(x_cold);
  c.set_temperature(398.15);
  const Unknowns x_hot = solve_dc_or_throw(c);
  const double i_hot = q.drain_current(x_hot);
  // VTH dropped 0.2 V: much more overdrive beats the mobility loss here.
  EXPECT_GT(i_hot, 5.0 * std::max(i_cold, 1e-12));
}

TEST(MosfetTest, RejectsBadParameters) {
  Circuit c;
  EXPECT_THROW(c.add_mosfet("M1", c.node("a"), c.node("b"), kGround,
                            MosfetModel{}, -1.0),
               Error);
}

}  // namespace
}  // namespace icvbe::spice

namespace icvbe::bandgap {
namespace {

TEST(CmosOpAmp, BiasLegConductsDesignCurrent) {
  spice::Circuit c;
  const auto out = c.node("out");
  const auto inp = c.node("inp");
  const auto inn = c.node("inn");
  c.add_vsource("VP", inp, spice::kGround, 1.25);
  c.add_vsource("VN", inn, spice::kGround, 1.25);
  CmosOpAmpParams p;
  p.nmos = default_nmos();
  p.pmos = default_pmos();
  build_cmos_opamp(c, "oa", out, inp, inn, p);
  const spice::Unknowns x = solve_dc_or_throw(c);
  auto& rb = c.get<spice::Resistor>("oa.RB");
  const double i_bias = rb.current(x);
  EXPECT_GT(i_bias, 5e-6);
  EXPECT_LT(i_bias, 60e-6);
}

TEST(CmosOpAmp, OutputSwingsWithDifferentialInput) {
  auto out_for = [](double dv) {
    spice::Circuit c;
    const auto out = c.node("out");
    const auto inp = c.node("inp");
    const auto inn = c.node("inn");
    c.add_vsource("VP", inp, spice::kGround, 1.25 + dv);
    c.add_vsource("VN", inn, spice::kGround, 1.25);
    CmosOpAmpParams p;
    p.nmos = default_nmos();
    p.pmos = default_pmos();
    build_cmos_opamp(c, "oa", out, inp, inn, p);
    return solve_dc_or_throw(c).node_voltage(out);
  };
  // PMOS-input pair into NMOS mirror, then inverting CS stage: raising the
  // + input must move the output in one consistent direction by rail-scale
  // amounts for mV-scale inputs.
  const double lo = out_for(-3e-3);
  const double hi = out_for(+3e-3);
  EXPECT_GT(std::abs(hi - lo), 0.5);
}

TEST(CmosOpAmp, OpenLoopGainIsTensOfDb) {
  CmosOpAmpParams p;
  p.nmos = default_nmos();
  p.pmos = default_pmos();
  const double gain = std::abs(measure_open_loop_gain(p));
  EXPECT_GT(gain, 300.0);     // >= ~50 dB
  EXPECT_LT(gain, 3.0e5);     // sane for two stages at this bias
}

TEST(CmosOpAmp, ThresholdMismatchCreatesOffset) {
  // With a VTH skew on M1 the follower settles with a systematic
  // input-referred offset of the same order as the skew.
  auto follower_error = [](double skew) {
    spice::Circuit c;
    const auto out = c.node("out");
    const auto inp = c.node("inp");
    c.add_vsource("VP", inp, spice::kGround, 1.25);
    CmosOpAmpParams p;
    p.nmos = default_nmos();
    p.pmos = default_pmos();
    p.vth_mismatch = skew;
    build_cmos_opamp(c, "oa", out, inp, out, p);  // unity follower
    spice::NewtonOptions opt;
    opt.max_iterations = 400;
    return solve_dc_or_throw(c, opt).node_voltage(out) - 1.25;
  };
  const double base = follower_error(0.0);
  const double skewed = follower_error(4e-3);
  EXPECT_GT(std::abs(skewed - base), 1e-3);
  EXPECT_LT(std::abs(skewed - base), 10e-3);
}

}  // namespace
}  // namespace icvbe::bandgap
