// Tests for the declarative analysis-plan API (spice/plan.hpp): probe
// parse/print round-trips, grids, SimSession::run golden equivalence
// against the legacy sweep paths, deterministic parallel 2-axis execution,
// and the zero-allocation-per-point guarantee (this binary links the
// icvbe_alloc_hook counting operator new/delete).

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <mutex>
#include <sstream>
#include <utility>

#include "icvbe/bandgap/test_cell.hpp"
#include "icvbe/common/constants.hpp"
#include "icvbe/common/error.hpp"
#include "icvbe/lab/campaign.hpp"
#include "icvbe/lab/silicon.hpp"
#include "icvbe/spice/analysis.hpp"
#include "icvbe/spice/netlist.hpp"
#include "icvbe/spice/plan.hpp"
#include "icvbe/testing/alloc_hook.hpp"

namespace icvbe::spice {
namespace {

void build_diode_rig(Circuit& c) {
  DiodeModel dm;
  dm.is = 1e-14;
  const NodeId in = c.node("in");
  const NodeId a = c.node("a");
  c.add_vsource("V1", in, kGround, 0.0);
  c.add_resistor("R1", in, a, 1e3);
  c.add_diode("D1", a, kGround, dm);
}

bandgap::TestCellParams nominal_cell_params() {
  const lab::SiliconLot lot;
  bandgap::TestCellParams p;
  p.qa_model = lot.truth().pnp;
  p.qb_model = lot.truth().pnp;
  return p;
}

// ------------------------------------------------------------- probes ---

TEST(ProbeTest, ParseToStringRoundTrip) {
  const char* exprs[] = {
      "V(out)",
      "I(V1)",
      "IC(Q1)",
      "IB(Q1)",
      "IE(Q1)",
      "ISUB(Q1)",
      "(V(a)-V(b))",
      "((V(a)-V(b))*1000)",
      "(IC(QA)/IC(QB))",
      "0.00125",
  };
  for (const char* text : exprs) {
    const Probe p = parse_probe(text);
    EXPECT_EQ(p.to_string(), text) << "first print of " << text;
    EXPECT_EQ(parse_probe(p.to_string()).to_string(), p.to_string())
        << "round trip of " << text;
  }
}

TEST(ProbeTest, ParsePrecedenceAndSugar) {
  // * binds tighter than +.
  EXPECT_EQ(parse_probe("V(a)+V(b)*2").to_string(), "(V(a)+(V(b)*2))");
  // V(a,b) stays one typed differential pair (NOT expression sugar: in an
  // .AC analysis it must read |V(a)-V(b)|, which real subtraction of two
  // magnitudes cannot express).
  const Probe diff = parse_probe("V(a,b)");
  EXPECT_EQ(diff.kind(), Probe::Kind::kNodeVoltage);
  EXPECT_EQ(diff.target(), "a");
  EXPECT_EQ(diff.target2(), "b");
  EXPECT_EQ(diff.to_string(), "V(a,b)");
  // SPICE number suffixes work inside expressions.
  EXPECT_EQ(parse_probe("2.5k").value(), 2500.0);
  // Unary minus folds into constants.
  EXPECT_EQ(parse_probe("-3").value(), -3.0);
}

TEST(ProbeTest, ParseRejectsGarbage) {
  EXPECT_THROW((void)parse_probe(""), PlanError);
  EXPECT_THROW((void)parse_probe("V(out"), PlanError);
  EXPECT_THROW((void)parse_probe("W(out)"), PlanError);
  EXPECT_THROW((void)parse_probe("V(a))"), PlanError);
  EXPECT_THROW((void)parse_probe("V()"), PlanError);
  EXPECT_THROW((void)parse_probe("1 + "), PlanError);
}

TEST(ProbeTest, EvalAgainstSolvedCircuit) {
  Circuit c;
  build_diode_rig(c);
  c.get<VoltageSource>("V1").set_voltage(1.0);
  SimSession session(c);
  const Unknowns& x = session.solve_or_throw();

  const double v_a = x.node_voltage(c.find_node("a"));
  const double v_in = x.node_voltage(c.find_node("in"));
  EXPECT_DOUBLE_EQ(parse_probe("V(a)").eval(c, x), v_a);
  EXPECT_DOUBLE_EQ(parse_probe("V(in,a)").eval(c, x), v_in - v_a);
  EXPECT_DOUBLE_EQ(parse_probe("I(R1)").eval(c, x),
                   c.get<Resistor>("R1").current(x));
  EXPECT_DOUBLE_EQ(parse_probe("I(V1)").eval(c, x),
                   c.get<VoltageSource>("V1").current(x));
  EXPECT_DOUBLE_EQ(parse_probe("V(a)*2+1").eval(c, x), v_a * 2.0 + 1.0);
  EXPECT_THROW((void)parse_probe("V(nope)").eval(c, x), CircuitError);
  EXPECT_THROW((void)parse_probe("I(nope)").eval(c, x), CircuitError);
  EXPECT_THROW((void)parse_probe("IC(R1)").eval(c, x), CircuitError);
}

// -------------------------------------------------------------- grids ---

TEST(SweepGridTest, MaterialiseAndValidate) {
  const auto lin = SweepGrid::linear(0.0, 1.0, 5).points();
  ASSERT_EQ(lin.size(), 5u);
  EXPECT_DOUBLE_EQ(lin[0], 0.0);
  EXPECT_DOUBLE_EQ(lin[2], 0.5);
  EXPECT_DOUBLE_EQ(lin[4], 1.0);

  const auto lst = SweepGrid::list({3.0, 1.0, 2.0}).points();
  ASSERT_EQ(lst.size(), 3u);
  EXPECT_DOUBLE_EQ(lst[0], 3.0);

  const auto log = SweepGrid::log_decades(1.0, 100.0, 2).points();
  EXPECT_DOUBLE_EQ(log.front(), 1.0);
  EXPECT_NEAR(log.back(), 100.0, 1e-9);

  EXPECT_THROW((void)SweepGrid::linear(0.0, 1.0, 1), PlanError);
  EXPECT_THROW((void)SweepGrid::list({}), PlanError);
  EXPECT_THROW((void)SweepGrid::log_decades(-1.0, 1.0, 3), PlanError);
}

// ----------------------------------------------------- run(): golden ---

TEST(AnalysisPlanTest, RunMatchesLegacyVsourceSweep) {
  const auto values = linspace(0.0, 2.0, 41);

  Circuit legacy;
  build_diode_rig(legacy);
  const Series golden = dc_sweep_vsource(legacy, "V1", values,
                                         probe_node_voltage(legacy, "a"));

  Circuit c;
  build_diode_rig(c);
  SimSession session(c);
  AnalysisPlan plan;
  plan.name = "diode_sweep";
  plan.axes = {SweepAxis::vsource("V1", SweepGrid::list(values))};
  plan.probes = {Probe::node_voltage("a")};
  const SweepResult got = session.run(plan);

  ASSERT_EQ(got.rows(), golden.size());
  for (std::size_t i = 0; i < golden.size(); ++i) {
    EXPECT_NEAR(got.value(0, i), golden.y(i), 1e-12) << "point " << i;
  }
}

TEST(AnalysisPlanTest, RunMatchesLegacyTemperatureSweepOnTestCell) {
  // The full bandgap test cell over temperature: the declarative plan path
  // must reproduce the legacy temperature_sweep free function to <= 1e-12.
  const auto params = nominal_cell_params();
  const auto temps = linspace(to_kelvin(-40.0), to_kelvin(120.0), 9);

  Circuit legacy;
  const auto hl = bandgap::build_test_cell(legacy, params);
  legacy.set_temperature(temps[0]);  // the guess reads temperature state
  const Unknowns seed = bandgap::cell_initial_guess(legacy, hl, temps[0]);
  const Series golden =
      temperature_sweep(legacy, temps,
                        probe_node_voltage(legacy, legacy.node_name(hl.vref)),
                        {}, &seed);

  Circuit c;
  const auto h = bandgap::build_test_cell(c, params);
  SimSession session(c);
  c.set_temperature(temps[0]);
  session.seed_warm_start(bandgap::cell_initial_guess(c, h, temps[0]));
  AnalysisPlan plan;
  plan.name = "vref_sweep";
  plan.axes = {SweepAxis::temperature_kelvin(SweepGrid::list(temps))};
  plan.probes = {Probe::node_voltage(c.node_name(h.vref))};
  const SweepResult got = session.run(plan);

  ASSERT_EQ(got.rows(), golden.size());
  for (std::size_t i = 0; i < golden.size(); ++i) {
    EXPECT_NEAR(got.value(0, i), golden.y(i), 1e-12) << "T=" << temps[i];
  }
}

TEST(AnalysisPlanTest, LabIcvbeFamilyMatchesHandRolledLoop) {
  // Fig. 5 golden: the plan-based Laboratory::icvbe_family must reproduce
  // the legacy hand-rolled bias loop exactly (ideal instruments/thermal
  // isolate the solver path).
  lab::SiliconLot lot;
  lab::CampaignConfig cfg;
  cfg.ideal_instruments = true;
  cfg.ideal_thermal = true;
  lab::Laboratory laboratory(lot.sample(0), cfg);
  const std::vector<double> chambers{-50.0, 25.0, 125.0};
  const double vbe_min = 0.3, vbe_max = 0.75;
  const int points = 21;
  const auto family = laboratory.icvbe_family(chambers, vbe_min, vbe_max,
                                              points);

  // Legacy reference: fresh rig, explicit per-point set/solve/probe loop
  // (the pre-plan implementation).
  Circuit c;
  const NodeId e = c.node("e");
  c.add_vsource("VE", e, kGround, 0.6);
  c.add_bjt("DUT", kGround, kGround, e, lot.sample(0).qin, 1.0, kGround);
  SimSession session(c);
  auto& ve = c.get<VoltageSource>("VE");
  const auto& dut = c.get<Bjt>("DUT");

  ASSERT_EQ(family.size(), chambers.size());
  for (std::size_t f = 0; f < chambers.size(); ++f) {
    c.set_temperature(to_kelvin(chambers[f]));
    for (int i = 0; i < points; ++i) {
      const double setpoint =
          vbe_min + (vbe_max - vbe_min) * static_cast<double>(i) /
                        static_cast<double>(points - 1);
      ve.set_voltage(setpoint);
      const DcResult& r = session.solve();
      ASSERT_TRUE(r.converged);
      const double ic =
          std::max(std::abs(dut.currents(r.solution).ic), 1e-16);
      EXPECT_NEAR(family[f].y(static_cast<std::size_t>(i)), ic,
                  1e-12 * std::max(1.0, ic))
          << "chamber " << chambers[f] << " point " << i;
      EXPECT_DOUBLE_EQ(family[f].x(static_cast<std::size_t>(i)), setpoint);
    }
  }
}

// ------------------------------------------- 2-axis + parallelism ---

TEST(AnalysisPlanTest, TwoAxisParallelIsBitIdenticalForAnyThreadCount) {
  AnalysisPlan plan;
  plan.name = "grid";
  plan.axes = {SweepAxis::temperature_kelvin(SweepGrid::linear(250.0, 400.0,
                                                               6)),
               SweepAxis::vsource("V1", SweepGrid::linear(0.0, 2.0, 17))};
  plan.probes = {Probe::node_voltage("a"), Probe::branch_current("V1")};

  SweepResult results[3];
  const unsigned thread_counts[] = {1, 2, 5};
  for (int k = 0; k < 3; ++k) {
    Circuit c;
    build_diode_rig(c);
    SimSession session(c);
    plan.threads = thread_counts[k];
    results[k] = session.run(plan);
  }

  ASSERT_EQ(results[0].rows(), 6u * 17u);
  for (int k = 1; k < 3; ++k) {
    ASSERT_EQ(results[k].rows(), results[0].rows());
    for (std::size_t p = 0; p < results[0].probe_count(); ++p) {
      for (std::size_t r = 0; r < results[0].rows(); ++r) {
        EXPECT_DOUBLE_EQ(results[k].value(p, r), results[0].value(p, r))
            << "threads=" << thread_counts[k] << " probe=" << p
            << " row=" << r;
      }
    }
  }
}

TEST(AnalysisPlanTest, TwoAxisLanedFanoutIsBitIdenticalToScalar) {
  // plan.lanes > 1 routes the outer-axis fanout through BatchDcSession on
  // the sparse engine: whole lane groups of outer rows share one symbolic
  // analysis and go through each refactor/solve together. The recorded
  // probes must be bit-identical to the scalar path for any lane count
  // and any thread count.
  AnalysisPlan plan;
  plan.name = "laned_grid";
  plan.axes = {SweepAxis::temperature_kelvin(SweepGrid::linear(250.0, 400.0,
                                                               7)),
               SweepAxis::vsource("V1", SweepGrid::linear(0.0, 2.0, 9))};
  plan.probes = {Probe::node_voltage("a"), Probe::branch_current("V1")};

  NewtonOptions opt;
  opt.sparse = SparseMode::kSparse;  // the batch engine is sparse-only

  SweepResult reference;
  {
    Circuit c;
    build_diode_rig(c);
    SimSession session(c, opt);
    plan.threads = 1;
    plan.lanes = 0;
    reference = session.run(plan);
  }
  ASSERT_EQ(reference.rows(), 7u * 9u);

  const unsigned lane_counts[] = {2, 4, 16};
  const unsigned thread_counts[] = {1, 3};
  for (unsigned lanes : lane_counts) {
    for (unsigned threads : thread_counts) {
      Circuit c;
      build_diode_rig(c);
      SimSession session(c, opt);
      plan.threads = threads;
      plan.lanes = lanes;
      const SweepResult got = session.run(plan);
      ASSERT_EQ(got.rows(), reference.rows());
      for (std::size_t p = 0; p < reference.probe_count(); ++p) {
        for (std::size_t r = 0; r < reference.rows(); ++r) {
          EXPECT_EQ(got.value(p, r), reference.value(p, r))
              << "lanes=" << lanes << " threads=" << threads
              << " probe=" << p << " row=" << r;
        }
      }
    }
  }
}

TEST(AnalysisPlanTest, TwoAxisResistorStepMatchesManualReprogramming) {
  // Outer axis re-programs a resistor (the trim-curve shape); compare one
  // row against a manually re-programmed 1-axis run.
  AnalysisPlan plan;
  plan.name = "load_step";
  plan.axes = {SweepAxis::resistor("R1", SweepGrid::list({500.0, 2e3})),
               SweepAxis::vsource("V1", SweepGrid::linear(0.5, 1.5, 5))};
  plan.probes = {Probe::node_voltage("a")};

  Circuit c;
  build_diode_rig(c);
  SimSession session(c);
  const SweepResult grid = session.run(plan);

  Circuit c2;
  build_diode_rig(c2);
  c2.get<Resistor>("R1").set_nominal_resistance(2e3);
  SimSession s2(c2);
  AnalysisPlan row;
  row.axes = {SweepAxis::vsource("V1", SweepGrid::linear(0.5, 1.5, 5))};
  row.probes = {Probe::node_voltage("a")};
  const SweepResult second_row = s2.run(row);

  for (std::size_t i = 0; i < 5u; ++i) {
    EXPECT_NEAR(grid.value(0, 5u + i), second_row.value(0, i), 1e-12);
  }
}

TEST(AnalysisPlanTest, ResistorAxisHonoursTemperatureCoefficient) {
  // set_nominal_resistance resets R to the raw nominal; the axis must
  // re-apply the circuit temperature or every point silently loses the
  // tempco scaling (1k TC1=2m at 127 C is 1.2k, not 1k).
  const char* deck = R"(
I1 0 n 1m
R1 n 0 1k TC1=2m
.TEMP 127
.DC R1 1k 2k 1k
.PROBE V(n)
)";
  auto parsed = parse_netlist(deck);
  auto& c = *parsed.circuit;
  c.set_temperature(to_kelvin(parsed.temperature_celsius));
  SimSession session(c);
  const SweepResult r = session.run(*parsed.plan);
  ASSERT_EQ(r.rows(), 2u);
  EXPECT_NEAR(r.value(0, 0), 1.2, 1e-4);   // 1k * 1.2 * 1mA
  EXPECT_NEAR(r.value(0, 1), 2.4, 1e-4);   // 2k * 1.2 * 1mA
}

TEST(AnalysisPlanTest, RejectsSameTargetOnBothAxes) {
  Circuit c;
  build_diode_rig(c);
  SimSession session(c);

  AnalysisPlan twice;
  twice.axes = {SweepAxis::vsource("V1", SweepGrid::list({1.0, 2.0})),
                SweepAxis::vsource("V1", SweepGrid::linear(0.0, 1.0, 3))};
  twice.probes = {Probe::node_voltage("a")};
  EXPECT_THROW((void)session.run(twice), PlanError);

  AnalysisPlan two_temps;
  two_temps.axes = {SweepAxis::temperature_celsius(SweepGrid::list({25.0})),
                    SweepAxis::temperature_kelvin(
                        SweepGrid::list({300.0, 310.0}))};
  two_temps.probes = {Probe::node_voltage("a")};
  EXPECT_THROW((void)session.run(two_temps), PlanError);
}

// --------------------------------------------------- result shaping ---

TEST(SweepResultTest, ConversionsAndCsv) {
  Circuit c;
  build_diode_rig(c);
  SimSession session(c);

  AnalysisPlan plan;
  plan.name = "shapes";
  plan.axes = {SweepAxis::vsource("V1", SweepGrid::linear(0.0, 1.0, 3))};
  plan.probes = {Probe::node_voltage("a"), Probe::branch_current("V1")};
  const SweepResult r = session.run(plan);

  EXPECT_EQ(r.axis_count(), 1u);
  EXPECT_EQ(r.probe_count(), 2u);
  EXPECT_EQ(r.axis_labels()[0], "V1");
  EXPECT_EQ(r.probe_labels()[0], "V(a)");
  const Series s = r.series(0);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s.x(1), 0.5);
  EXPECT_DOUBLE_EQ(s.y(1), r.value(0, 1));
  EXPECT_THROW((void)r.series_family(0), Error);

  const Table t = r.table();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 3u);

  std::ostringstream os;
  r.write_csv(os);
  EXPECT_EQ(os.str().substr(0, 10), "V1,V(a),I(");

  // 2-axis: family conversion.
  AnalysisPlan plan2 = plan;
  plan2.axes = {SweepAxis::temperature_kelvin(SweepGrid::list({300.0,
                                                               350.0})),
                SweepAxis::vsource("V1", SweepGrid::linear(0.0, 1.0, 3))};
  const SweepResult r2 = session.run(plan2);
  EXPECT_EQ(r2.axis_count(), 2u);
  EXPECT_DOUBLE_EQ(r2.axis_value(0, 4), 350.0);
  EXPECT_DOUBLE_EQ(r2.axis_value(1, 4), 0.5);
  const auto fam = r2.series_family(0);
  ASSERT_EQ(fam.size(), 2u);
  EXPECT_EQ(fam[0].size(), 3u);
  EXPECT_THROW((void)r2.series(0), Error);
}

TEST(AnalysisPlanTest, ValidatesShape) {
  Circuit c;
  build_diode_rig(c);
  SimSession session(c);

  AnalysisPlan no_axes;
  no_axes.probes = {Probe::node_voltage("a")};
  EXPECT_THROW((void)session.run(no_axes), PlanError);

  AnalysisPlan no_probes;
  no_probes.axes = {SweepAxis::vsource("V1", SweepGrid::list({1.0}))};
  EXPECT_THROW((void)session.run(no_probes), PlanError);

  AnalysisPlan three_axes;
  three_axes.axes = {SweepAxis::vsource("V1", SweepGrid::list({1.0})),
                     SweepAxis::vsource("V1", SweepGrid::list({1.0})),
                     SweepAxis::vsource("V1", SweepGrid::list({1.0}))};
  three_axes.probes = {Probe::node_voltage("a")};
  EXPECT_THROW((void)session.run(three_axes), PlanError);

  AnalysisPlan bad_device;
  bad_device.axes = {SweepAxis::vsource("NOPE", SweepGrid::list({1.0}))};
  bad_device.probes = {Probe::node_voltage("a")};
  EXPECT_THROW((void)session.run(bad_device), CircuitError);
}

// -------------------------------------------------- deck end-to-end ---

TEST(AnalysisPlanTest, DeckDescribedAnalysisExecutes) {
  const char* deck = R"(
V1 in 0 5
R1 in out 1k
R2 out 0 3k
.STEP R2 LIST 1k 3k
.DC V1 0 4 1
.PROBE V(out) I(V1) V(in,out)
)";
  auto parsed = parse_netlist(deck);
  ASSERT_TRUE(parsed.plan.has_value());
  auto& c = *parsed.circuit;
  c.set_temperature(to_kelvin(parsed.temperature_celsius));
  SimSession session(c);
  const SweepResult r = session.run(*parsed.plan);

  ASSERT_EQ(r.rows(), 2u * 5u);
  for (std::size_t o = 0; o < 2; ++o) {
    const double r2 = o == 0 ? 1e3 : 3e3;
    for (std::size_t i = 0; i < 5; ++i) {
      const double v = static_cast<double>(i);
      const double expect_out = v * r2 / (1e3 + r2);
      // Tolerances sit above the solver's gmin floor (1e-12 S to ground).
      EXPECT_NEAR(r.value(0, o * 5 + i), expect_out, 1e-7);
      EXPECT_NEAR(r.value(1, o * 5 + i), -v / (1e3 + r2), 1e-10);
      EXPECT_NEAR(r.value(2, o * 5 + i), v - expect_out, 1e-7);
    }
  }
}

// ------------------------------------------------- zero allocations ---

// ------------------------------------------------- streaming observer ---

/// Records every callback; optionally cancels after `cancel_after` rows.
class RecordingObserver : public RunObserver {
 public:
  explicit RecordingObserver(std::size_t cancel_after = SIZE_MAX)
      : cancel_after_(cancel_after) {}

  void on_begin(const std::vector<std::string>& axis_labels,
                const std::vector<std::string>& probe_labels,
                std::size_t expected_rows) override {
    ++begins_;
    axis_labels_ = axis_labels;
    probe_labels_ = probe_labels;
    expected_rows_ = expected_rows;
  }

  bool on_row(std::size_t row, const double* axes, std::size_t axis_count,
              const double* probes, std::size_t probe_count) override {
    Row r;
    r.row = row;
    r.axes.assign(axes, axes + axis_count);
    r.probes.assign(probes, probes + probe_count);
    rows_.push_back(std::move(r));
    return rows_.size() < cancel_after_;
  }

  struct Row {
    std::size_t row = 0;
    std::vector<double> axes;
    std::vector<double> probes;
  };
  int begins_ = 0;
  std::vector<std::string> axis_labels_;
  std::vector<std::string> probe_labels_;
  std::size_t expected_rows_ = 0;
  std::vector<Row> rows_;
  std::size_t cancel_after_;
};

TEST(RunObserverTest, DcSweepStreamsEveryRowInOrder) {
  Circuit c;
  build_diode_rig(c);
  SimSession session(c);

  AnalysisPlan plan;
  plan.name = "stream";
  plan.axes = {SweepAxis::vsource("V1", SweepGrid::linear(0.0, 2.0, 9))};
  plan.probes = {Probe::node_voltage("a"), Probe::branch_current("V1")};

  RecordingObserver obs;
  const SweepResult r = session.run(plan, &obs);

  EXPECT_EQ(obs.begins_, 1);
  EXPECT_EQ(obs.axis_labels_, r.axis_labels());
  EXPECT_EQ(obs.probe_labels_, r.probe_labels());
  EXPECT_EQ(obs.expected_rows_, r.rows());
  ASSERT_EQ(obs.rows_.size(), r.rows());
  for (std::size_t i = 0; i < r.rows(); ++i) {
    EXPECT_EQ(obs.rows_[i].row, i) << "serial delivery is in row order";
    ASSERT_EQ(obs.rows_[i].axes.size(), 1u);
    EXPECT_EQ(obs.rows_[i].axes[0], r.axis_value(0, i));
    ASSERT_EQ(obs.rows_[i].probes.size(), 2u);
    // Streamed values must be the exact bits the result holds.
    EXPECT_EQ(obs.rows_[i].probes[0], r.value(0, i));
    EXPECT_EQ(obs.rows_[i].probes[1], r.value(1, i));
  }
}

TEST(RunObserverTest, TwoAxisParallelStreamsEveryRowExactlyOnce) {
  // Parallel delivery order is unspecified, but every row arrives exactly
  // once with the exact result bits (the observer is called from worker
  // threads; RecordingObserver is safe here because deliveries are
  // serialised per... no -- they are NOT serialised. Guard with a mutex.)
  class LockedObserver : public RunObserver {
   public:
    bool on_row(std::size_t row, const double* axes, std::size_t axis_count,
                const double* probes, std::size_t probe_count) override {
      const std::lock_guard<std::mutex> lock(mutex_);
      (void)axes;
      (void)axis_count;
      rows_.emplace_back(row, std::vector<double>(probes,
                                                  probes + probe_count));
      return true;
    }
    std::mutex mutex_;
    std::vector<std::pair<std::size_t, std::vector<double>>> rows_;
  };

  AnalysisPlan plan;
  plan.name = "grid";
  plan.axes = {SweepAxis::temperature_kelvin(SweepGrid::linear(250.0, 400.0,
                                                               4)),
               SweepAxis::vsource("V1", SweepGrid::linear(0.0, 2.0, 9))};
  plan.probes = {Probe::node_voltage("a")};
  plan.threads = 4;

  Circuit c;
  build_diode_rig(c);
  SimSession session(c);
  LockedObserver obs;
  const SweepResult r = session.run(plan, &obs);

  ASSERT_EQ(obs.rows_.size(), r.rows());
  std::vector<bool> seen(r.rows(), false);
  for (const auto& [row, probes] : obs.rows_) {
    ASSERT_LT(row, r.rows());
    EXPECT_FALSE(seen[row]) << "row " << row << " delivered twice";
    seen[row] = true;
    ASSERT_EQ(probes.size(), 1u);
    EXPECT_EQ(probes[0], r.value(0, row));
  }
}

TEST(RunObserverTest, AcStreamsFrequencyRows) {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  VoltageSource& v1 = c.add_vsource("V1", in, kGround, 0.0);
  v1.set_ac(1.0);
  c.add_resistor("R1", in, out, 1.0e3);
  c.add_capacitor("C1", out, kGround, 1.0e-6);
  SimSession session(c);

  AnalysisPlan plan;
  plan.name = "ac";
  AcSpec spec;
  spec.spacing = AcSpec::Spacing::kDecade;
  spec.points = 5;
  spec.fstart = 1.0;
  spec.fstop = 1.0e4;
  plan.ac = spec;
  plan.probes = {parse_probe("VDB(out)")};

  RecordingObserver obs;
  const SweepResult r = session.run(plan, &obs);

  EXPECT_EQ(obs.axis_labels_, std::vector<std::string>{"FREQ"});
  EXPECT_EQ(obs.expected_rows_, r.rows());
  ASSERT_EQ(obs.rows_.size(), r.rows());
  for (std::size_t i = 0; i < r.rows(); ++i) {
    EXPECT_EQ(obs.rows_[i].axes[0], r.axis_value(0, i));
    EXPECT_EQ(obs.rows_[i].probes[0], r.value(0, i));
  }
}

TEST(RunObserverTest, TransientStreamsTimepoints) {
  const char* deck = R"(
V1 in 0 PULSE(0 1 1u 1u 1u 10u 40u)
R1 in out 1k
C1 out 0 1n
.TRAN 0.5u 20u
.PROBE V(out)
)";
  auto parsed = parse_netlist(deck);
  SimSession session(*parsed.circuit);

  RecordingObserver obs;
  const SweepResult r = session.run(*parsed.plan, &obs);

  EXPECT_EQ(obs.axis_labels_, std::vector<std::string>{"TIME"});
  EXPECT_EQ(obs.expected_rows_, 0u)
      << "adaptive stepping cannot predict the row count";
  ASSERT_EQ(obs.rows_.size(), r.rows());
  for (std::size_t i = 0; i < r.rows(); ++i) {
    EXPECT_EQ(obs.rows_[i].row, i);
    EXPECT_EQ(obs.rows_[i].axes[0], r.axis_value(0, i));
    EXPECT_EQ(obs.rows_[i].probes[0], r.value(0, i));
  }
}

TEST(RunObserverTest, CancellationThrowsAndSessionStaysUsable) {
  Circuit c;
  build_diode_rig(c);
  SimSession session(c);

  AnalysisPlan plan;
  plan.name = "cancel-me";
  plan.axes = {SweepAxis::vsource("V1", SweepGrid::linear(0.0, 2.0, 21))};
  plan.probes = {Probe::node_voltage("a")};

  RecordingObserver obs(5);  // cancel after 5 rows
  EXPECT_THROW((void)session.run(plan, &obs), CancelledError);
  EXPECT_EQ(obs.rows_.size(), 5u);

  // A cancelled run must not poison the session: the same plan runs to
  // completion immediately afterwards.
  const SweepResult r = session.run(plan);
  EXPECT_EQ(r.rows(), 21u);
}

TEST(RunObserverTest, ParallelCancellationStopsWorkers) {
  class CancelAfter : public RunObserver {
   public:
    bool on_row(std::size_t, const double*, std::size_t, const double*,
                std::size_t) override {
      return count_.fetch_add(1) < 3;
    }
    std::atomic<int> count_{0};
  };

  AnalysisPlan plan;
  plan.name = "grid-cancel";
  plan.axes = {SweepAxis::temperature_kelvin(SweepGrid::linear(250.0, 400.0,
                                                               8)),
               SweepAxis::vsource("V1", SweepGrid::linear(0.0, 2.0, 9))};
  plan.probes = {Probe::node_voltage("a")};
  plan.threads = 4;

  Circuit c;
  build_diode_rig(c);
  SimSession session(c);
  CancelAfter obs;
  EXPECT_THROW((void)session.run(plan, &obs), CancelledError);
  // Cancellation is cooperative at row granularity: each worker delivers
  // at most the row it is on, so the total is bounded well below the full
  // 72-row grid.
  EXPECT_LT(obs.count_.load(), 72);
}

TEST(RunObserverTest, TransientCancellationRestoresDcMode) {
  const char* deck = R"(
V1 in 0 PULSE(0 1 1u 1u 1u 10u 40u)
R1 in out 1k
C1 out 0 1n
.TRAN 0.5u 20u
.PROBE V(out)
)";
  auto parsed = parse_netlist(deck);
  SimSession session(*parsed.circuit);

  RecordingObserver obs(3);
  EXPECT_THROW((void)session.run(*parsed.plan, &obs), CancelledError);

  // The solver's destructor restored DC mode: a fresh full run succeeds
  // and matches an uncancelled session.
  const SweepResult again = session.run(*parsed.plan);
  EXPECT_GT(again.rows(), 10u);
}

TEST(AnalysisPlanTest, SteadyStateAllocationsIndependentOfPointCount) {
  // The per-point path of run() must not touch the heap: executing 10x the
  // points performs exactly the same number of allocations (result storage
  // is sized upfront; probes are compiled once).
  const auto params = nominal_cell_params();
  Circuit c;
  const auto h = bandgap::build_test_cell(c, params);
  SimSession session(c);
  session.seed_warm_start(
      bandgap::cell_initial_guess(c, h, to_kelvin(25.0)));

  AnalysisPlan small;
  small.name = "alloc";
  small.axes = {SweepAxis::temperature_kelvin(
      SweepGrid::linear(to_kelvin(20.0), to_kelvin(45.0), 50))};
  small.probes = {Probe::node_voltage(c.node_name(h.vref))};
  AnalysisPlan large = small;
  large.axes = {SweepAxis::temperature_kelvin(
      SweepGrid::linear(to_kelvin(20.0), to_kelvin(45.0), 500))};

  (void)session.run(small);  // warm-up: lazily sized solver buffers

  const std::uint64_t a0 = icvbe::testing::allocation_count();
  const SweepResult rs = session.run(small);
  const std::uint64_t a1 = icvbe::testing::allocation_count();
  const SweepResult rl = session.run(large);
  const std::uint64_t a2 = icvbe::testing::allocation_count();

  EXPECT_EQ(rs.rows(), 50u);
  EXPECT_EQ(rl.rows(), 500u);
  EXPECT_EQ(a1 - a0, a2 - a1)
      << "run() allocation count scales with point count -- the per-point "
         "path touched the heap";
}

}  // namespace
}  // namespace icvbe::spice
