// End-to-end tests of the SimServer daemon through the C++ client: LOAD /
// RUN / streaming, bit-identity of streamed results against local
// SimSession runs (the server's determinism contract), value-only PATCH on
// a warm session, mid-run cancellation, per-session busy serialisation,
// command error paths, multi-session concurrency, and the TCP endpoint.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstddef>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "icvbe/common/constants.hpp"
#include "icvbe/server/client.hpp"
#include "icvbe/server/sim_server.hpp"
#include "icvbe/spice/circuit.hpp"
#include "icvbe/spice/netlist.hpp"
#include "icvbe/spice/plan.hpp"
#include "icvbe/spice/sim_session.hpp"

namespace icvbe::server {
namespace {

// A deck describing all three analysis families; DC sweeps the source,
// TRAN sees a pulse, AC sees the unit stimulus.
const char* kComboDeck = R"(
V1 in 0 1 AC 1
R1 in out 1k
C1 out 0 1u
.DC V1 0 1 0.1
.TRAN 10u 1m
.AC DEC 5 1 1k
.PROBE V(out)
)";

// A transient with thousands of accepted points -- long enough that a
// CANCEL issued from the stream always lands mid-run.
const char* kLongTranDeck = R"(
V1 in 0 PULSE(0 1 1u 1u 1u 10u 40u)
R1 in out 1k
C1 out 0 1n
.TRAN 0.5u 2m
.PROBE V(out)
)";

std::string unique_socket_path() {
  static std::atomic<int> counter{0};
  return "/tmp/icvbe_srv_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

/// The reference the server must match bit-for-bit: a cold CLI-style run
/// of the deck text (parse, set temperature, seed .NODESETs, run).
spice::SweepResult local_run(const std::string& deck_text,
                             spice::AnalysisKind kind, unsigned threads = 1) {
  auto parsed = spice::parse_netlist(deck_text);
  auto& c = *parsed.circuit;
  c.set_temperature(to_kelvin(parsed.temperature_celsius));
  spice::SimSession sim(c);
  if (!parsed.nodesets.empty()) {
    const int n = c.assign_unknowns();
    spice::Unknowns guess(static_cast<std::size_t>(n));
    for (const auto& [node, value] : parsed.nodesets) {
      const spice::NodeId id = c.node(node);
      if (id != spice::kGround) {
        guess.raw()[static_cast<std::size_t>(id - 1)] = value;
      }
    }
    sim.seed_warm_start(guess);
  }
  const spice::AnalysisPlan* deck_plan = parsed.find_plan(kind);
  EXPECT_NE(deck_plan, nullptr);
  spice::AnalysisPlan plan = *deck_plan;
  plan.threads = threads;
  return sim.run(plan);
}

/// Collects a streamed run; rows keyed by result-row index because
/// parallel AC workers deliver out of order.
class Collector : public RunHandler {
 public:
  void on_init(const std::vector<std::string>& axis_labels,
               const std::vector<std::string>& probe_labels,
               std::size_t expected_rows) override {
    axis_labels_ = axis_labels;
    probe_labels_ = probe_labels;
    expected_rows_ = expected_rows;
    ++inits_;
  }

  void on_data(std::size_t row, const std::vector<double>& axes,
               const std::vector<double>& probes) override {
    const bool fresh = rows_.emplace(row, std::make_pair(axes, probes)).second;
    EXPECT_TRUE(fresh) << "row " << row << " streamed twice";
  }

  std::vector<std::string> axis_labels_;
  std::vector<std::string> probe_labels_;
  std::size_t expected_rows_ = 0;
  int inits_ = 0;
  std::map<std::size_t,
           std::pair<std::vector<double>, std::vector<double>>>
      rows_;
};

/// Every streamed row must equal the local result's bits (operator== on
/// doubles; format_value round-trips exactly).
void expect_stream_matches(const Collector& got,
                           const spice::SweepResult& want) {
  EXPECT_EQ(got.axis_labels_, want.axis_labels());
  EXPECT_EQ(got.probe_labels_, want.probe_labels());
  ASSERT_EQ(got.rows_.size(), want.rows());
  for (const auto& [row, data] : got.rows_) {
    const auto& [axes, probes] = data;
    ASSERT_EQ(axes.size(), want.axis_count());
    ASSERT_EQ(probes.size(), want.probe_count());
    for (std::size_t a = 0; a < axes.size(); ++a) {
      EXPECT_EQ(axes[a], want.axis_value(a, row)) << "axis " << a << " row "
                                                  << row;
    }
    for (std::size_t p = 0; p < probes.size(); ++p) {
      EXPECT_EQ(probes[p], want.value(p, row)) << "probe " << p << " row "
                                               << row;
    }
  }
}

class ServerTest : public ::testing::Test {
 protected:
  void start(unsigned workers = 2, bool tcp = false) {
    ServerConfig cfg;
    if (tcp) {
      cfg.tcp_port = 0;
    } else {
      cfg.socket_path = unique_socket_path();
    }
    cfg.workers = workers;
    server_ = std::make_unique<SimServer>(cfg);
    server_->start();
  }

  Client connect() { return Client::connect_unix(server_->socket_path()); }

  void TearDown() override {
    if (server_) server_->stop();
  }

  std::unique_ptr<SimServer> server_;
};

TEST_F(ServerTest, LoadReportsTheDeckAnalyses) {
  start();
  Client client = connect();
  const auto analyses = client.load("combo", kComboDeck);
  EXPECT_EQ(analyses, (std::vector<std::string>{"DC", "TRAN", "AC"}));
}

TEST_F(ServerTest, StreamedRunIsBitIdenticalToALocalRun) {
  start();
  Client client = connect();
  (void)client.load("combo", kComboDeck);

  for (const char* analysis : {"DC", "TRAN", "AC"}) {
    Collector got;
    const RunResult r = client.run("combo", analysis, &got);
    EXPECT_EQ(r.outcome, RunOutcome::kDone) << analysis;
    EXPECT_EQ(r.rows, got.rows_.size()) << analysis;
    EXPECT_EQ(got.inits_, 1) << analysis;
    const spice::SweepResult want =
        local_run(kComboDeck, spice::analysis_kind_from_token(analysis));
    expect_stream_matches(got, want);
  }
}

TEST_F(ServerTest, ResultsAreBitIdenticalForAnyWorkerCount) {
  // The determinism contract: plan fanout (THREADS=) and server worker
  // count never change a bit of the result. AC is the parallel path.
  const spice::SweepResult want =
      local_run(kComboDeck, spice::AnalysisKind::kAc);
  for (const unsigned workers : {1u, 4u}) {
    start(workers);
    Client client = connect();
    (void)client.load("combo", kComboDeck);
    for (const unsigned threads : {1u, 4u}) {
      Collector got;
      const RunResult r = client.run("combo", "AC", &got, threads);
      EXPECT_EQ(r.outcome, RunOutcome::kDone);
      expect_stream_matches(got, want);
    }
    server_->stop();
    server_.reset();
  }
}

TEST_F(ServerTest, PatchedWarmRerunMatchesAColdRunOfThePatchedDeck) {
  start();
  Client client = connect();
  (void)client.load("combo", kComboDeck);
  Collector before;
  (void)client.run("combo", "DC", &before);

  // Re-program values only; the session keeps its pattern + symbolic LU.
  const std::size_t applied =
      client.patch("combo", "R R1 2.2k\nC C1 2u\nTEMP 85\n");
  EXPECT_EQ(applied, 3u);

  Collector got;
  const RunResult r = client.run("combo", "DC", &got);
  EXPECT_EQ(r.outcome, RunOutcome::kDone);

  // The reference is a cold run of the equivalent deck text.
  std::string patched_deck = kComboDeck;
  patched_deck.replace(patched_deck.find("R1 in out 1k"),
                       std::string("R1 in out 1k").size(),
                       "R1 in out 2.2k");
  patched_deck.replace(patched_deck.find("C1 out 0 1u"),
                       std::string("C1 out 0 1u").size(), "C1 out 0 2u");
  patched_deck.insert(patched_deck.find(".DC"), ".TEMP 85\n");
  const spice::SweepResult want =
      local_run(patched_deck, spice::AnalysisKind::kDcSweep);
  expect_stream_matches(got, want);

  // And the patch genuinely changed the answer.
  ASSERT_EQ(before.rows_.size(), got.rows_.size());
  EXPECT_NE(before.rows_.at(5).second[0], got.rows_.at(5).second[0]);
}

TEST_F(ServerTest, CancelMidRunStopsStreamingAndKeepsTheSessionUsable) {
  start();
  Client client = connect();
  (void)client.load("tran", kLongTranDeck);

  // Cancel from inside the stream after a handful of rows -- the
  // interactive front-end gesture.
  class CancelAfter : public RunHandler {
   public:
    CancelAfter(Client& c, std::string id) : client_(c), id_(std::move(id)) {}
    void on_data(std::size_t, const std::vector<double>&,
                 const std::vector<double>&) override {
      if (++rows_ == 5) client_.cancel(id_);
    }
    Client& client_;
    std::string id_;
    std::size_t rows_ = 0;
  };

  CancelAfter handler(client, "tr1");
  const RunResult r =
      client.run("tran", "TRAN", &handler, /*threads=*/1, "tr1");
  EXPECT_EQ(r.outcome, RunOutcome::kCancelled);

  const spice::SweepResult full =
      local_run(kLongTranDeck, spice::AnalysisKind::kTransient);
  // Cancellation is cooperative at row granularity plus stream latency,
  // but it must land far before the end of a 4000-point transient.
  EXPECT_GE(handler.rows_, 5u);
  EXPECT_LT(handler.rows_, full.rows() / 2);
  EXPECT_LT(r.rows, full.rows() / 2);

  // The cancelled session reruns to completion, bit-identical to cold.
  Collector got;
  const RunResult again = client.run("tran", "TRAN", &got);
  EXPECT_EQ(again.outcome, RunOutcome::kDone);
  expect_stream_matches(got, full);
}

TEST_F(ServerTest, BusySessionRejectsRunPatchCloseAndLoadOver) {
  start();
  Client client = connect();
  (void)client.load("s", kLongTranDeck);

  // Raw frames: queue a long run, then hit the busy session with every
  // command while it is in flight. The server's reader dispatches them in
  // order, so the run is guaranteed registered (busy) before they land.
  client.send_command({"RUN", "busy1", "s", "TRAN"});
  client.send_command({"RUN", "busy2", "s", "TRAN"});
  client.send_command({"PATCH", "s"}, "R R1 2k\n");
  client.send_command({"CLOSE", "s"});
  client.send_command({"LOAD", "s"}, kLongTranDeck);

  Frame f = client.wait_reply();
  EXPECT_EQ(f.head, (std::vector<std::string>{"OK", "RUN", "busy1"}));
  for (const char* cmd : {"RUN", "PATCH", "CLOSE", "LOAD"}) {
    f = client.wait_reply();
    ASSERT_EQ(f.tok(0), "ERR") << cmd;
    EXPECT_EQ(f.tok(1), cmd);
    EXPECT_NE(f.body.find("busy"), std::string::npos) << cmd;
  }

  // Other sessions are unaffected while this one runs.
  client.send_command({"LOAD", "other"}, kComboDeck);
  f = client.wait_reply();
  EXPECT_EQ(f.tok(0), "OK");

  // Wind the run down and verify the session survives its busy episode.
  client.cancel("busy1");
  for (;;) {
    f = client.read_frame();
    if (f.tok(0) == "CANCELLED" || f.tok(0) == "DONE") {
      EXPECT_EQ(f.tok(1), "busy1");
      break;
    }
  }
  Collector got;
  const RunResult r = client.run("s", "TRAN", &got);
  EXPECT_EQ(r.outcome, RunOutcome::kDone);
}

TEST_F(ServerTest, CommandErrorsAreReportedAndTheConnectionSurvives) {
  start();
  Client client = connect();

  // Parse errors at LOAD.
  EXPECT_THROW((void)client.load("bad", "R1 in\n"), CommandError);
  // Unknown session.
  EXPECT_THROW((void)client.run("ghost", "DC"), CommandError);
  // Unknown analysis token.
  (void)client.load("s", kLongTranDeck);
  EXPECT_THROW((void)client.run("s", "NOISE"), CommandError);
  // Analysis the deck does not describe.
  try {
    (void)client.run("s", "AC");
    FAIL() << "expected CommandError";
  } catch (const CommandError& e) {
    EXPECT_NE(std::string(e.what()).find("no AC analysis"),
              std::string::npos);
  }
  // CANCEL of an unknown run id is not an error (it races DONE). STATUS
  // afterwards drains the fire-and-forget ack.
  client.cancel("never-existed");
  (void)client.status();
  // Unknown command.
  client.send_command({"FROBNICATE"});
  const Frame f = client.wait_reply();
  EXPECT_EQ(f.tok(0), "ERR");

  // After all of that, the connection still works end to end.
  Collector got;
  const RunResult r = client.run("s", "TRAN", &got);
  EXPECT_EQ(r.outcome, RunOutcome::kDone);
  EXPECT_GT(got.rows_.size(), 0u);
}

TEST_F(ServerTest, TwoSessionsOfOneConnectionRunConcurrently) {
  start(/*workers=*/2);
  Client client = connect();
  (void)client.load("a", kLongTranDeck);
  (void)client.load("b", kLongTranDeck);

  // Queue both runs back to back; with two workers they execute in
  // parallel and their DATA frames interleave on the one socket.
  client.send_command({"RUN", "ra", "a", "TRAN"});
  client.send_command({"RUN", "rb", "b", "TRAN"});

  std::map<std::string, std::size_t> data_rows;
  std::set<std::string> done;
  while (done.size() < 2) {
    const Frame f = client.read_frame();
    const std::string cmd(f.tok(0));
    if (cmd == "DATA") {
      ++data_rows[std::string(f.tok(1))];
    } else if (cmd == "DONE") {
      done.insert(std::string(f.tok(1)));
    } else {
      ASSERT_TRUE(cmd == "OK" || cmd == "INIT") << cmd;
    }
  }
  EXPECT_EQ(done, (std::set<std::string>{"ra", "rb"}));
  const spice::SweepResult full =
      local_run(kLongTranDeck, spice::AnalysisKind::kTransient);
  EXPECT_EQ(data_rows["ra"], full.rows());
  EXPECT_EQ(data_rows["rb"], full.rows());
}

TEST_F(ServerTest, SeparateConnectionsHaveSeparateSessionNamespaces) {
  start();
  Client c1 = connect();
  Client c2 = connect();
  (void)c1.load("shared-name", kComboDeck);
  // c2 does not see c1's session...
  EXPECT_THROW((void)c2.run("shared-name", "DC"), CommandError);
  // ...and may reuse the name for a different deck.
  (void)c2.load("shared-name", kLongTranDeck);
  Collector got;
  EXPECT_EQ(c2.run("shared-name", "TRAN", &got).outcome, RunOutcome::kDone);
  EXPECT_EQ(server_->connection_count(), 2u);
}

TEST_F(ServerTest, StatusReportsSessionsRunsAndWorkers) {
  start(/*workers=*/3);
  Client client = connect();
  (void)client.load("one", kComboDeck);
  (void)client.load("two", kComboDeck);
  const std::string body = client.status();
  EXPECT_NE(body.find("SESSIONS 2\n"), std::string::npos) << body;
  EXPECT_NE(body.find("RUNS 0\n"), std::string::npos) << body;
  EXPECT_NE(body.find("WORKERS 3\n"), std::string::npos) << body;
  EXPECT_EQ(server_->workers(), 3u);
}

TEST_F(ServerTest, CloseDropsTheSession) {
  start();
  Client client = connect();
  (void)client.load("s", kComboDeck);
  client.close_session("s");
  EXPECT_THROW((void)client.run("s", "DC"), CommandError);
  EXPECT_THROW(client.close_session("s"), CommandError);
}

TEST_F(ServerTest, TcpLoopbackEndpointSpeaksTheSameProtocol) {
  start(/*workers=*/2, /*tcp=*/true);
  ASSERT_GT(server_->port(), 0);
  EXPECT_TRUE(server_->socket_path().empty());
  Client client = Client::connect_tcp(server_->port());
  (void)client.load("combo", kComboDeck);
  Collector got;
  const RunResult r = client.run("combo", "DC", &got);
  EXPECT_EQ(r.outcome, RunOutcome::kDone);
  expect_stream_matches(got,
                        local_run(kComboDeck, spice::AnalysisKind::kDcSweep));
}

TEST_F(ServerTest, SoakWarmSessionSurvivesManyPatchRunCycles) {
  // The interactive loop the daemon exists for: one warm session, many
  // patch/rerun cycles, every result bit-identical to a cold run of the
  // equivalently patched deck.
  start();
  Client client = connect();
  (void)client.load("combo", kComboDeck);
  for (int i = 0; i < 20; ++i) {
    const double r_ohm = 500.0 + 250.0 * i;
    (void)client.patch("combo", "R R1 " + std::to_string(r_ohm) + "\n");
    Collector got;
    const RunResult r = client.run("combo", "DC", &got);
    ASSERT_EQ(r.outcome, RunOutcome::kDone) << "cycle " << i;

    std::string patched_deck = kComboDeck;
    patched_deck.replace(patched_deck.find("R1 in out 1k"),
                         std::string("R1 in out 1k").size(),
                         "R1 in out " + std::to_string(r_ohm));
    expect_stream_matches(
        got, local_run(patched_deck, spice::AnalysisKind::kDcSweep));
  }
}

TEST_F(ServerTest, ConcurrentConnectionsSoak) {
  // Several clients hammer the shared worker pool at once; every stream
  // must stay internally consistent and bit-identical to the local run.
  start(/*workers=*/4);
  const spice::SweepResult want =
      local_run(kComboDeck, spice::AnalysisKind::kDcSweep);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      try {
        Client client = connect();
        (void)client.load("mine", kComboDeck);
        for (int i = 0; i < 5; ++i) {
          Collector got;
          const RunResult r = client.run("mine", "DC", &got);
          if (r.outcome != RunOutcome::kDone ||
              got.rows_.size() != want.rows()) {
            ++failures;
            return;
          }
          for (const auto& [row, data] : got.rows_) {
            if (data.second[0] != want.value(0, row)) {
              ++failures;
              return;
            }
          }
        }
      } catch (...) {
        ++failures;
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(ServerTest, QuitEndsTheConnection) {
  start();
  Client client = connect();
  client.send_command({"QUIT"});
  const Frame f = client.wait_reply();
  EXPECT_EQ(f.head, (std::vector<std::string>{"OK", "QUIT"}));
  EXPECT_THROW((void)client.read_frame(), Error);
}

TEST_F(ServerTest, StopWithInflightRunsDoesNotHang) {
  start();
  auto client = std::make_unique<Client>(connect());
  (void)client->load("s", kLongTranDeck);
  client->send_command({"RUN", "r1", "s", "TRAN"});
  // Give the run a moment to start streaming, then tear the server down
  // under it; stop() must cancel the run and join everything.
  const Frame ok = client->wait_reply();
  EXPECT_EQ(ok.tok(0), "OK");
  server_->stop();
  EXPECT_FALSE(server_->running());
  server_.reset();
}

}  // namespace
}  // namespace icvbe::server
